#include "sim/calibrate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "synth/generator.hpp"
#include "trace/index.hpp"

namespace hpcfail::sim {
namespace {

using trace::FailureDataset;
using trace::SystemCatalog;

TEST(Calibrate, ProducesOneConfigPerNode) {
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const auto& catalog = SystemCatalog::lanl();
  const auto nodes = calibrate_nodes(ds, catalog, 20);
  ASSERT_EQ(nodes.size(),
            static_cast<std::size_t>(catalog.system(20).nodes));
  for (const ClusterNodeConfig& n : nodes) {
    EXPECT_GT(n.mtbf_seconds, 0.0);
    EXPECT_GT(n.repair_median_seconds, 0.0);
    EXPECT_GT(n.repair_mean_seconds, n.repair_median_seconds);
  }
}

TEST(Calibrate, MtbfReflectsObservedCounts) {
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const auto& catalog = SystemCatalog::lanl();
  const auto nodes = calibrate_nodes(ds, catalog, 20);
  const auto counts = ds.view().for_system(20).failures_per_node();
  const auto& sys = catalog.system(20);
  for (const auto& [node, count] : counts) {
    const auto& cat = sys.category_for_node(node);
    const double exposure =
        static_cast<double>(cat.production_end - cat.production_start);
    EXPECT_DOUBLE_EQ(
        nodes[static_cast<std::size_t>(node)].mtbf_seconds,
        exposure / static_cast<double>(count));
  }
  // Fig 3(a)'s hot graphics nodes (21-23) must come out less reliable
  // than the median compute node.
  std::vector<double> mtbfs;
  for (const ClusterNodeConfig& n : nodes) mtbfs.push_back(n.mtbf_seconds);
  std::nth_element(mtbfs.begin(), mtbfs.begin() + mtbfs.size() / 2,
                   mtbfs.end());
  const double median_mtbf = mtbfs[mtbfs.size() / 2];
  for (const int hot : {21, 22, 23}) {
    EXPECT_LT(nodes[static_cast<std::size_t>(hot)].mtbf_seconds,
              median_mtbf);
  }
}

TEST(Calibrate, CalibratedClusterSimulates) {
  // The whole point: calibrated configs feed straight into the simulator.
  const FailureDataset ds = synth::generate_lanl_trace(42);
  ClusterConfig cfg;
  cfg.nodes = calibrate_nodes(ds, SystemCatalog::lanl(), 20);
  cfg.job_width = 4;
  cfg.job_work_seconds = 6.0 * 3600.0;
  cfg.job_count = 50;
  hpcfail::Rng rng(7);
  const ClusterStats stats = simulate_cluster(cfg, rng);
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.useful_work, 0.0);
}

TEST(Calibrate, ThrowsWhenSystemAbsent) {
  // System 1 exists in the catalog; an empty dataset has no records.
  EXPECT_THROW(
      calibrate_nodes(FailureDataset{}, SystemCatalog::lanl(), 1),
      InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::sim
