#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"

namespace hpcfail::sim {
namespace {

constexpr double kDay = 86400.0;

TEST(Checkpoint, FailureFreeRunHasOnlyCheckpointOverhead) {
  // MTBF enormously larger than the job: effectively failure-free.
  const hpcfail::dist::Exponential rare(1e-12);
  CheckpointConfig cfg;
  cfg.work_seconds = 10000.0;
  cfg.checkpoint_cost = 100.0;
  cfg.restart_cost = 50.0;
  cfg.interval = 1000.0;
  hpcfail::Rng rng(1);
  const CheckpointStats s = simulate_checkpoint(rare, nullptr, cfg, rng);
  EXPECT_EQ(s.failures, 0u);
  EXPECT_DOUBLE_EQ(s.useful_work, 10000.0);
  EXPECT_DOUBLE_EQ(s.lost_work, 0.0);
  // 10 segments, checkpoint after each but the last: 9 * 100.
  EXPECT_DOUBLE_EQ(s.checkpoint_overhead, 900.0);
  EXPECT_DOUBLE_EQ(s.wall_clock, 10900.0);
}

TEST(Checkpoint, WorkConservationHoldsExactly) {
  const hpcfail::dist::Weibull failures(0.7, 2.0 * kDay);
  const auto repair =
      hpcfail::dist::LogNormal::from_mean_median(6.0 * 3600.0, 3600.0);
  CheckpointConfig cfg;
  cfg.work_seconds = 30.0 * kDay;
  cfg.checkpoint_cost = 600.0;
  cfg.restart_cost = 300.0;
  cfg.interval = 3.0 * 3600.0;
  hpcfail::Rng rng(2);
  for (int run = 0; run < 20; ++run) {
    const CheckpointStats s =
        simulate_checkpoint(failures, &repair, cfg, rng);
    EXPECT_NEAR(s.wall_clock,
                s.useful_work + s.checkpoint_overhead + s.lost_work +
                    s.restart_overhead + s.downtime,
                1e-6 * s.wall_clock);
    EXPECT_DOUBLE_EQ(s.useful_work, cfg.work_seconds);
    EXPECT_GE(s.slowdown(), 1.0);
  }
}

TEST(Checkpoint, MoreFailuresMeanMoreLostWork) {
  CheckpointConfig cfg;
  cfg.work_seconds = 30.0 * kDay;
  cfg.checkpoint_cost = 600.0;
  cfg.restart_cost = 300.0;
  cfg.interval = 6.0 * 3600.0;
  const hpcfail::dist::Exponential frequent(1.0 / kDay);
  const hpcfail::dist::Exponential rare(1.0 / (20.0 * kDay));
  hpcfail::Rng rng(3);
  const CheckpointStats busy =
      simulate_checkpoint_mean(frequent, nullptr, cfg, rng, 40);
  const CheckpointStats calm =
      simulate_checkpoint_mean(rare, nullptr, cfg, rng, 40);
  EXPECT_GT(busy.failures, calm.failures * 5);
  EXPECT_GT(busy.lost_work, calm.lost_work);
  EXPECT_GT(busy.wall_clock, calm.wall_clock);
}

TEST(Checkpoint, YoungIntervalFormula) {
  EXPECT_DOUBLE_EQ(young_interval(86400.0, 600.0),
                   std::sqrt(2.0 * 600.0 * 86400.0));
  EXPECT_THROW(young_interval(0.0, 600.0), hpcfail::InvalidArgument);
  EXPECT_THROW(young_interval(86400.0, 0.0), hpcfail::InvalidArgument);
}

TEST(Checkpoint, DalyRefinesYoung) {
  const double mtbf = 86400.0;
  const double cost = 600.0;
  const double young = young_interval(mtbf, cost);
  const double daly = daly_interval(mtbf, cost);
  // Daly's correction is small but positive for C << MTBF minus C.
  EXPECT_NEAR(daly, young, 0.1 * young);
  EXPECT_NE(daly, young);
  // Degenerate regime falls back to MTBF.
  EXPECT_DOUBLE_EQ(daly_interval(100.0, 300.0), 100.0);
}

TEST(Checkpoint, SimulatedOptimumNearDalyUnderExponentialFailures) {
  // Under the classical exponential assumption the simulated best
  // interval should bracket the analytic one.
  const double mtbf = 1.0 * kDay;
  const double cost = 600.0;
  const hpcfail::dist::Exponential failures(1.0 / mtbf);
  CheckpointConfig cfg;
  cfg.work_seconds = 20.0 * kDay;
  cfg.checkpoint_cost = cost;
  cfg.restart_cost = 60.0;
  const double daly = daly_interval(mtbf, cost);
  std::vector<double> candidates;
  for (double f = 0.125; f <= 8.0; f *= 2.0) candidates.push_back(daly * f);
  hpcfail::Rng rng(5);
  const double best = best_interval_by_simulation(
      failures, nullptr, cfg, candidates, rng, 64);
  EXPECT_GE(best, daly * 0.25);
  EXPECT_LE(best, daly * 4.0);
}

TEST(Checkpoint, IntervalLargerThanWorkStillCompletes) {
  const hpcfail::dist::Exponential rare(1e-9);
  CheckpointConfig cfg;
  cfg.work_seconds = 100.0;
  cfg.checkpoint_cost = 10.0;
  cfg.restart_cost = 5.0;
  cfg.interval = 1e6;
  hpcfail::Rng rng(7);
  const CheckpointStats s = simulate_checkpoint(rare, nullptr, cfg, rng);
  EXPECT_DOUBLE_EQ(s.useful_work, 100.0);
  EXPECT_DOUBLE_EQ(s.checkpoint_overhead, 0.0);  // single final segment
}

TEST(Checkpoint, RejectsBadConfig) {
  const hpcfail::dist::Exponential f(1.0);
  hpcfail::Rng rng(9);
  CheckpointConfig cfg;
  cfg.work_seconds = 0.0;
  cfg.interval = 1.0;
  EXPECT_THROW(simulate_checkpoint(f, nullptr, cfg, rng),
               hpcfail::InvalidArgument);
  cfg.work_seconds = 10.0;
  cfg.interval = 0.0;
  EXPECT_THROW(simulate_checkpoint(f, nullptr, cfg, rng),
               hpcfail::InvalidArgument);
  cfg.interval = 1.0;
  cfg.checkpoint_cost = -1.0;
  EXPECT_THROW(simulate_checkpoint(f, nullptr, cfg, rng),
               hpcfail::InvalidArgument);
  cfg.checkpoint_cost = 1.0;
  EXPECT_THROW(simulate_checkpoint_mean(f, nullptr, cfg, rng, 0),
               hpcfail::InvalidArgument);
  EXPECT_THROW(best_interval_by_simulation(f, nullptr, cfg, {}, rng),
               hpcfail::InvalidArgument);
}

TEST(Checkpoint, RepairDowntimeIsAccounted) {
  const hpcfail::dist::Exponential failures(1.0 / (0.5 * kDay));
  const auto repair =
      hpcfail::dist::LogNormal::from_mean_median(7200.0, 1800.0);
  CheckpointConfig cfg;
  cfg.work_seconds = 10.0 * kDay;
  cfg.checkpoint_cost = 300.0;
  cfg.restart_cost = 120.0;
  cfg.interval = 2.0 * 3600.0;
  hpcfail::Rng rng(11);
  const CheckpointStats s =
      simulate_checkpoint_mean(failures, &repair, cfg, rng, 20);
  EXPECT_GT(s.failures, 0u);
  EXPECT_GT(s.downtime, 0.0);
  // Mean downtime per failure should be near the repair mean.
  EXPECT_NEAR(s.downtime / static_cast<double>(s.failures) / 20.0 * 20.0,
              7200.0, 3600.0);
}

}  // namespace
}  // namespace hpcfail::sim
