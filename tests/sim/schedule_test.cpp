// Tests for scheduled (adaptive-interval) checkpointing.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "dist/weibull.hpp"
#include "sim/checkpoint.hpp"

namespace hpcfail::sim {
namespace {

constexpr double kDay = 86400.0;

TEST(CheckpointSchedule, ConstantScheduleMatchesFixedInterval) {
  const hpcfail::dist::Weibull failures(0.7, 2.0 * kDay);
  CheckpointConfig cfg;
  cfg.work_seconds = 10.0 * kDay;
  cfg.checkpoint_cost = 600.0;
  cfg.restart_cost = 120.0;
  cfg.interval = 4.0 * 3600.0;
  hpcfail::Rng r1(5);
  hpcfail::Rng r2(5);
  const CheckpointStats fixed =
      simulate_checkpoint(failures, nullptr, cfg, r1);
  const CheckpointStats scheduled = simulate_checkpoint_schedule(
      failures, nullptr, cfg, [](double) { return 4.0 * 3600.0; }, r2);
  EXPECT_DOUBLE_EQ(fixed.wall_clock, scheduled.wall_clock);
  EXPECT_EQ(fixed.failures, scheduled.failures);
  EXPECT_DOUBLE_EQ(fixed.lost_work, scheduled.lost_work);
}

TEST(CheckpointSchedule, WorkConservationHolds) {
  const hpcfail::dist::Weibull failures(0.7, 1.0 * kDay);
  CheckpointConfig cfg;
  cfg.work_seconds = 20.0 * kDay;
  cfg.checkpoint_cost = 300.0;
  cfg.restart_cost = 60.0;
  hpcfail::Rng rng(7);
  const auto schedule = hazard_aware_schedule(failures, 300.0);
  for (int run = 0; run < 10; ++run) {
    const CheckpointStats s = simulate_checkpoint_schedule(
        failures, nullptr, cfg, schedule, rng);
    EXPECT_NEAR(s.wall_clock,
                s.useful_work + s.checkpoint_overhead + s.lost_work +
                    s.restart_overhead + s.downtime,
                1e-6 * s.wall_clock);
    EXPECT_DOUBLE_EQ(s.useful_work, cfg.work_seconds);
  }
}

TEST(CheckpointSchedule, RejectsNonPositiveIntervals) {
  const hpcfail::dist::Exponential failures(1.0 / kDay);
  CheckpointConfig cfg;
  cfg.work_seconds = 1000.0;
  cfg.checkpoint_cost = 10.0;
  hpcfail::Rng rng(9);
  EXPECT_THROW(simulate_checkpoint_schedule(
                   failures, nullptr, cfg, [](double) { return 0.0; },
                   rng),
               hpcfail::InvalidArgument);
}

TEST(HazardAwareSchedule, GrowsAfterFailureForDecreasingHazard) {
  const hpcfail::dist::Weibull failures(0.6, 6.0 * 3600.0);
  const auto schedule = hazard_aware_schedule(failures, 600.0, 60.0,
                                              kDay);
  const double right_after = schedule(10.0);
  const double much_later = schedule(2.0 * kDay);
  EXPECT_LT(right_after, much_later);
}

TEST(HazardAwareSchedule, ConstantForExponential) {
  const hpcfail::dist::Exponential failures(1.0 / kDay);
  const auto schedule = hazard_aware_schedule(failures, 600.0, 60.0,
                                              7.0 * kDay);
  // Memoryless: the schedule equals Young's interval everywhere.
  const double young = young_interval(kDay, 600.0);
  EXPECT_NEAR(schedule(10.0), young, 1.0);
  EXPECT_NEAR(schedule(5.0 * kDay), young, 1.0);
}

TEST(HazardAwareSchedule, RespectsClamps) {
  const hpcfail::dist::Weibull failures(0.4, 3600.0);
  const auto schedule =
      hazard_aware_schedule(failures, 600.0, 1800.0, 7200.0);
  EXPECT_GE(schedule(0.0), 1800.0);
  EXPECT_LE(schedule(365.0 * kDay), 7200.0);
}

TEST(HazardAwareSchedule, ValidatesArguments) {
  const hpcfail::dist::Exponential failures(1.0);
  EXPECT_THROW(hazard_aware_schedule(failures, 0.0),
               hpcfail::InvalidArgument);
  EXPECT_THROW(hazard_aware_schedule(failures, 10.0, 100.0, 50.0),
               hpcfail::InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::sim
