// Checkpoint/restart equivalence: a failure at an exact checkpoint
// boundary must cost exactly one attempt plus the restart, and the
// post-restart trajectory must be bit-identical to an uninterrupted run
// of the remaining work. All times are exact binary doubles, so every
// equality below is ==, not near.
//
// Also: the calibrate_nodes -> simulate_cluster loop (calibrated configs
// behave like hand-written ones) as a smoke contract.
#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/calibrate.hpp"
#include "sim/checkpoint.hpp"
#include "sim/cluster.hpp"
#include "synth/generator.hpp"
#include "trace/catalog.hpp"

namespace {

// Deterministic failure process: emits a scripted time-to-failure
// sequence, then "never fails again" (a huge gap). Lets the test place
// failures at exact instants instead of sampling them.
class ScriptedProcess final : public hpcfail::dist::Distribution {
 public:
  explicit ScriptedProcess(std::vector<double> times)
      : times_(std::move(times)) {}

  double sample(hpcfail::Rng&) const override {
    if (next_ < times_.size()) return times_[next_++];
    return 1e18;  // beyond any horizon: no further failures
  }

  double log_pdf(double) const override { return 0.0; }
  double cdf(double) const override { return 0.0; }
  double quantile(double) const override { return 0.0; }
  double mean() const override { return 0.0; }
  double variance() const override { return 0.0; }
  std::string name() const override { return "scripted"; }
  std::string describe() const override { return "scripted()"; }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<ScriptedProcess>(times_);
  }

 private:
  std::vector<double> times_;
  mutable std::size_t next_ = 0;
};

// W = 8 segments of 1024s with 64s checkpoints; every quantity is an
// exact integer in double, so sums cannot round.
hpcfail::sim::CheckpointConfig exact_config(double work = 8192.0) {
  hpcfail::sim::CheckpointConfig config;
  config.work_seconds = work;
  config.checkpoint_cost = 64.0;
  config.restart_cost = 32.0;
  config.interval = 1024.0;
  return config;
}

TEST(RestartEquivalence, UninterruptedRunAccountsExactly) {
  const ScriptedProcess never({});
  hpcfail::Rng rng(1);
  const auto stats = hpcfail::sim::simulate_checkpoint(
      never, nullptr, exact_config(), rng);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.useful_work, 8192.0);
  // 7 attempts of 1088 (the final segment writes no checkpoint) + 1024.
  EXPECT_EQ(stats.wall_clock, 7 * 1088.0 + 1024.0);
  EXPECT_EQ(stats.checkpoint_overhead, 7 * 64.0);
  EXPECT_EQ(stats.lost_work, 0.0);
  EXPECT_EQ(stats.restart_overhead, 0.0);
}

TEST(RestartEquivalence, RestartFromCheckpointEqualsUninterruptedRemainder) {
  // Fail exactly when the 3rd attempt's checkpoint completes (t = 3 *
  // 1088): the run restarts from the 2nd checkpoint with 2048s saved.
  const ScriptedProcess fails_once({3.0 * 1088.0});
  hpcfail::Rng rng(1);
  const auto interrupted = hpcfail::sim::simulate_checkpoint(
      fails_once, nullptr, exact_config(), rng);

  const ScriptedProcess never({});
  hpcfail::Rng rng2(1);
  const auto full_run = hpcfail::sim::simulate_checkpoint(
      never, nullptr, exact_config(), rng2);
  hpcfail::Rng rng3(1);
  const auto remainder_run = hpcfail::sim::simulate_checkpoint(
      never, nullptr, exact_config(8192.0 - 2048.0), rng3);

  EXPECT_EQ(interrupted.failures, 1u);
  EXPECT_EQ(interrupted.useful_work, full_run.useful_work);
  // Exactly one attempt (its segment + its checkpoint) is redone ...
  EXPECT_EQ(interrupted.lost_work, 1024.0);
  EXPECT_EQ(interrupted.wall_clock,
            full_run.wall_clock + 1088.0 + 32.0);
  // ... and the post-restart trajectory is the uninterrupted run of the
  // remaining 6144s of work, to the last bit of wall clock:
  // time-to-failure + restart + remainder == total.
  EXPECT_EQ(interrupted.wall_clock,
            3.0 * 1088.0 + 32.0 + remainder_run.wall_clock);
  EXPECT_EQ(interrupted.checkpoint_overhead,
            full_run.checkpoint_overhead + 64.0);
}

TEST(RestartEquivalence, MidSegmentFailureLosesOnlyThatSegment) {
  // Fail 100s into the 3rd segment (t = 2*1088 + 100): saved work stays
  // 2048 and only the 100 in-flight seconds are lost.
  const ScriptedProcess fails_once({2.0 * 1088.0 + 100.0});
  hpcfail::Rng rng(1);
  const auto stats = hpcfail::sim::simulate_checkpoint(
      fails_once, nullptr, exact_config(), rng);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.lost_work, 100.0);
  EXPECT_EQ(stats.useful_work, 8192.0);
  const ScriptedProcess never({});
  hpcfail::Rng rng2(1);
  const auto full_run = hpcfail::sim::simulate_checkpoint(
      never, nullptr, exact_config(), rng2);
  EXPECT_EQ(stats.wall_clock, full_run.wall_clock + 100.0 + 32.0);
}

TEST(RestartEquivalence, ScriptedRunsAreIndependentOfTheRngSeed) {
  // The scripted process never touches the rng, so the whole simulation
  // is rng-independent — the degenerate case of determinism.
  const ScriptedProcess first({3.0 * 1088.0});
  const ScriptedProcess second({3.0 * 1088.0});
  hpcfail::Rng a(1);
  hpcfail::Rng b(999);
  const auto ra =
      hpcfail::sim::simulate_checkpoint(first, nullptr, exact_config(), a);
  const auto rb =
      hpcfail::sim::simulate_checkpoint(second, nullptr, exact_config(), b);
  EXPECT_EQ(ra.wall_clock, rb.wall_clock);
  EXPECT_EQ(ra.failures, rb.failures);
}

TEST(RestartEquivalence, CalibratedClusterConfigRunsLikeDefault) {
  // calibrate_nodes output must drop into simulate_cluster unchanged and
  // complete the same workload a hand-written config does.
  const auto ds = hpcfail::synth::generate_lanl_trace(11);
  const auto& catalog = hpcfail::trace::SystemCatalog::lanl();
  const auto calibrated =
      hpcfail::sim::calibrate_nodes(ds, catalog, 20);
  ASSERT_FALSE(calibrated.empty());
  for (const auto& node : calibrated) {
    EXPECT_GT(node.mtbf_seconds, 0.0);
    EXPECT_GT(node.repair_mean_seconds, 0.0);
    EXPECT_GT(node.repair_median_seconds, 0.0);
  }

  hpcfail::sim::ClusterConfig config;
  config.nodes = std::vector<hpcfail::sim::ClusterNodeConfig>(
      calibrated.begin(), calibrated.begin() + 16);
  config.job_width = 4;
  config.job_work_seconds = 6.0 * 3600.0;
  config.job_count = 24;
  config.checkpoint_interval = 3600.0;

  hpcfail::Rng rng(77);
  const auto stats = hpcfail::sim::simulate_cluster(config, rng);
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_EQ(stats.useful_work,
            config.job_work_seconds * config.job_width *
                static_cast<double>(config.job_count));

  hpcfail::sim::ClusterConfig defaults = config;
  defaults.nodes.assign(16, {3.0e6, 6.0 * 3600.0, 4.0 * 3600.0});
  hpcfail::Rng rng2(77);
  const auto default_stats = hpcfail::sim::simulate_cluster(defaults, rng2);
  EXPECT_EQ(default_stats.useful_work, stats.useful_work);
}

}  // namespace
