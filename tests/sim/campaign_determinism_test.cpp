// Campaign determinism contract: results are bit-identical at any thread
// count (each run is a pure function of (spec, cell, replicate) on its
// own forked RNG stream), across checkpoint-resume at any thread count,
// and with observability on or off.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/campaign.hpp"
#include "sim/policy.hpp"
#include "sim/scenario.hpp"
#include "testkit/calibration.hpp"

namespace {

using namespace hpcfail;

/// A small grid that still exercises every engine path: scripted cascade
/// kills, renewal sampling, and crew-limited repair queueing, against
/// all three default policies (including the RNG-consuming random
/// placement and the ranked placement).
sim::CampaignSpec mixed_spec() {
  sim::CampaignSpec spec;
  spec.scenarios = {
      sim::staggered_cascade_scenario(16, 0.25, 1000.0, 200.0, 3600.0),
      sim::weibull_renewal_scenario(10, 86400.0, 4.0 * 86400.0),
      sim::repair_contention_scenario(8, 1),
  };
  spec.policies = sim::default_policy_set();
  spec.runs_per_cell = 3;
  return spec;
}

TEST(CampaignDeterminism, BitIdenticalAcrossThreadCounts) {
  const sim::Campaign campaign(mixed_spec());
  EXPECT_TRUE(testkit::identical_across_threads(
      [&campaign] { return campaign.run().runs; }));
}

TEST(CampaignDeterminism, SchedulesAreIdenticalAcrossThreadCounts) {
  const sim::Campaign campaign(mixed_spec());
  EXPECT_TRUE(testkit::identical_across_threads(
      [&campaign] { return campaign.schedule_for(4, 1); }));
}

TEST(CampaignDeterminism, ResumeIsBitIdenticalAtEveryThreadCount) {
  const sim::Campaign campaign(mixed_spec());
  set_parallelism(1);
  const std::vector<sim::CampaignRunResult> reference = campaign.run().runs;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_parallelism(threads);
    const sim::CampaignCheckpoint partial = campaign.run_partial(10);
    const sim::CampaignResult resumed = campaign.run(&partial);
    EXPECT_EQ(resumed.runs, reference) << "at " << threads << " threads";
  }
  set_parallelism(0);
}

TEST(CampaignDeterminism, ObservabilityDoesNotPerturbResults) {
  const sim::Campaign campaign(mixed_spec());
  const std::vector<sim::CampaignRunResult> with_obs = campaign.run().runs;
  obs::disable();
  const std::vector<sim::CampaignRunResult> without_obs = campaign.run().runs;
  obs::enable();
  EXPECT_EQ(with_obs, without_obs);
}

}  // namespace
