// Campaign engine contract: spec validation, scenario-library shapes,
// exact fault accounting (all times are exact binary doubles, so every
// equality is ==, not near), checkpoint round-trips, and the
// mid-interruption resume regression — a campaign resumed from a partial
// checkpoint must reproduce the uninterrupted campaign bit for bit.
#include <cstdint>
#include <fstream>
#include <set>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "sim/campaign.hpp"
#include "sim/policy.hpp"
#include "sim/scenario.hpp"
#include "synth/generator.hpp"
#include "testkit/reference.hpp"
#include "trace/index.hpp"

namespace {

using namespace hpcfail;

// A two-node gang with integer-valued costs: every accounting quantity
// below is exact in double.
sim::CampaignScenario exact_scenario(std::vector<sim::InjectedFault> faults) {
  sim::CampaignScenario scenario;
  scenario.name = "exact";
  scenario.node_count = 2;
  scenario.faults = sim::scripted_fault_model(std::move(faults));
  scenario.job_width = 2;
  scenario.job_work_seconds = 1024.0;
  scenario.job_count = 1;
  scenario.checkpoint_cost = 64.0;
  scenario.restart_cost = 32.0;
  return scenario;
}

sim::CampaignSpec exact_spec(std::vector<sim::InjectedFault> faults,
                             double checkpoint_interval) {
  sim::CampaignSpec spec;
  spec.scenarios = {exact_scenario(std::move(faults))};
  sim::CampaignPolicy policy = sim::no_protection_policy();
  if (checkpoint_interval > 0.0) {
    policy = sim::periodic_checkpoint_policy(checkpoint_interval);
  }
  spec.policies = {policy};
  spec.runs_per_cell = 1;
  return spec;
}

TEST(CampaignValidation, RejectsMalformedSpecs) {
  sim::CampaignSpec empty;
  empty.policies = {sim::no_protection_policy()};
  empty.runs_per_cell = 1;
  EXPECT_THROW(sim::Campaign{empty}, InvalidArgument);

  sim::CampaignSpec no_runs = exact_spec({}, 0.0);
  no_runs.runs_per_cell = 0;
  EXPECT_THROW(sim::Campaign{no_runs}, InvalidArgument);

  sim::CampaignSpec dup_policies = exact_spec({}, 0.0);
  dup_policies.policies = {sim::no_protection_policy(),
                           sim::no_protection_policy()};
  EXPECT_THROW(sim::Campaign{dup_policies}, InvalidArgument);

  // Scripted faults must be time-ascending and on real nodes.
  sim::CampaignSpec descending = exact_spec({{200.0, 0, 1.0}, {100.0, 1, 1.0}},
                                            0.0);
  EXPECT_THROW(sim::Campaign{descending}, InvalidArgument);
  sim::CampaignSpec bad_node = exact_spec({{100.0, 7, 1.0}}, 0.0);
  EXPECT_THROW(sim::Campaign{bad_node}, InvalidArgument);

  sim::CampaignSpec wide = exact_spec({}, 0.0);
  wide.scenarios[0].job_width = 3;  // > node_count
  EXPECT_THROW(sim::Campaign{wide}, InvalidArgument);
}

TEST(CampaignScenarioLibrary, CascadeIsStaggeredOverDistinctNodes) {
  const sim::CampaignScenario scenario = sim::staggered_cascade_scenario();
  const auto& faults = scenario.faults.scripted;
  // 21% of 72 nodes, rounded down.
  ASSERT_EQ(faults.size(), 15u);
  std::set<int> victims;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(faults[i].time, 3000.0 + 500.0 * static_cast<double>(i));
    EXPECT_EQ(faults[i].repair_seconds, 4.0 * 3600.0);
    victims.insert(faults[i].node);
  }
  EXPECT_EQ(victims.size(), faults.size());  // distinct nodes
}

TEST(CampaignScenarioLibrary, BurstsFailSimultaneously) {
  const sim::CampaignScenario scenario = sim::correlated_burst_scenario();
  const auto& faults = scenario.faults.scripted;
  ASSERT_EQ(faults.size(), 48u);  // 6 bursts x 8 nodes
  for (std::size_t b = 0; b < 6; ++b) {
    std::set<int> members;
    for (std::size_t j = 0; j < 8; ++j) {
      const sim::InjectedFault& f = faults[b * 8 + j];
      // The Fig 6c signature: exact-zero interarrivals within a burst.
      EXPECT_EQ(f.time, static_cast<double>(b + 1) * 2.0 * 3600.0);
      members.insert(f.node);
    }
    EXPECT_EQ(members.size(), 8u);
  }
}

TEST(CampaignScenarioLibrary, RenewalSchedulesRespectTheHorizon) {
  sim::CampaignSpec spec;
  spec.scenarios = {sim::weibull_renewal_scenario(8, 86400.0, 10.0 * 86400.0)};
  spec.policies = {sim::no_protection_policy()};
  spec.runs_per_cell = 2;
  const sim::Campaign campaign(spec);
  const auto schedule = campaign.schedule_for(0, 0);
  ASSERT_FALSE(schedule.empty());
  double last = 0.0;
  for (const sim::InjectedFault& f : schedule) {
    EXPECT_GE(f.time, last);
    EXPECT_LE(f.time, 10.0 * 86400.0);
    EXPECT_GE(f.node, 0);
    EXPECT_LT(f.node, 8);
    EXPECT_GE(f.repair_seconds, 0.0);
    last = f.time;
  }
  // Replicates draw distinct schedules from their own streams ...
  EXPECT_NE(campaign.schedule_for(0, 1), schedule);
  // ... and re-materializing is deterministic.
  EXPECT_EQ(campaign.schedule_for(0, 0), schedule);
}

TEST(CampaignScenarioLibrary, ReplayMirrorsTheTraceSystem) {
  const auto ds = synth::generate_lanl_trace(11);
  const sim::CampaignScenario scenario = sim::replay_scenario(ds, 20);
  const auto view = ds.view().for_system(20);
  ASSERT_EQ(scenario.faults.scripted.size(), view.size());
  EXPECT_EQ(scenario.faults.scripted.front().time, 0.0);  // offset to first
  for (const sim::InjectedFault& f : scenario.faults.scripted) {
    EXPECT_GE(f.node, 0);
    EXPECT_LT(static_cast<std::size_t>(f.node), scenario.node_count);
  }
  EXPECT_THROW(sim::replay_scenario(ds, 9999), ValidationError);
}

TEST(CampaignAccounting, UninterruptedRunAccountsExactly) {
  const sim::Campaign campaign(exact_spec({}, 256.0));
  const sim::CampaignRunResult r = campaign.execute_run(0, 0);
  // 4 segments of 256s, 3 checkpoint writes of 64s, width 2.
  EXPECT_EQ(r.makespan, 1024.0 + 3.0 * 64.0);
  EXPECT_EQ(r.useful_work, 2.0 * 1024.0);
  EXPECT_EQ(r.checkpoint_overhead, 2.0 * 3.0 * 64.0);
  EXPECT_EQ(r.wasted_work, 0.0);
  EXPECT_EQ(r.restart_overhead, 0.0);
  EXPECT_EQ(r.faults_injected, 0u);
  EXPECT_EQ(r.interruptions, 0u);
  EXPECT_EQ(r.waste_fraction(),
            (2.0 * 3.0 * 64.0) / (2.0 * 1024.0 + 2.0 * 3.0 * 64.0));
}

TEST(CampaignAccounting, KillAtCheckpointBoundaryLosesNothing) {
  // Fault lands exactly when the first checkpoint write completes
  // (t = 256 + 64): one cycle is saved, zero seconds are wasted.
  const sim::Campaign campaign(exact_spec({{320.0, 0, 1000.0}}, 256.0));
  const sim::CampaignRunResult r = campaign.execute_run(0, 0);
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_absorbed, 0u);
  EXPECT_EQ(r.interruptions, 1u);
  EXPECT_EQ(r.wasted_work, 0.0);
  // 256s saved at the kill + the 768s remainder completed later.
  EXPECT_EQ(r.useful_work, 2.0 * 1024.0);
  // 1 write before the kill + 2 writes in the remainder attempt.
  EXPECT_EQ(r.checkpoint_overhead, 2.0 * 3.0 * 64.0);
  EXPECT_EQ(r.restart_overhead, 2.0 * 32.0);
  // The gang needs both nodes: it waits for the 1000s repair, then runs
  // 32 (restart) + 768 + 2*64 seconds.
  EXPECT_EQ(r.makespan, 320.0 + 1000.0 + 32.0 + 768.0 + 2.0 * 64.0);
  EXPECT_EQ(r.downtime, 1000.0);
  EXPECT_EQ(r.repair_wait, 0.0);
}

TEST(CampaignAccounting, FaultOnDownNodeIsAbsorbed) {
  const sim::Campaign campaign(
      exact_spec({{320.0, 0, 1000.0}, {400.0, 0, 500.0}}, 256.0));
  const sim::CampaignRunResult r = campaign.execute_run(0, 0);
  EXPECT_EQ(r.faults_injected, 2u);
  EXPECT_EQ(r.faults_absorbed, 1u);
  // The absorbed fault changes nothing else.
  EXPECT_EQ(r.interruptions, 1u);
  EXPECT_EQ(r.downtime, 1000.0);
  EXPECT_EQ(r.makespan, 320.0 + 1000.0 + 32.0 + 768.0 + 2.0 * 64.0);
}

TEST(CampaignAccounting, SingleCrewQueuesTheSecondRepair) {
  sim::CampaignSpec spec = exact_spec(
      {{100.0, 0, 50.0}, {100.0, 1, 70.0}}, 0.0);
  spec.scenarios[0].repair_concurrency = 1;
  const sim::Campaign campaign(spec);
  const sim::CampaignRunResult r = campaign.execute_run(0, 0);
  EXPECT_EQ(r.faults_injected, 2u);
  EXPECT_EQ(r.interruptions, 1u);  // the second fault hits an idle node
  // No checkpointing: the first 100s are lost outright on both nodes.
  EXPECT_EQ(r.wasted_work, 2.0 * 100.0);
  // Node 1's repair waits 50s for the only crew.
  EXPECT_EQ(r.repair_wait, 50.0);
  EXPECT_EQ(r.downtime, 50.0 + (50.0 + 70.0));
  // Both nodes back at t=220; restart 32 + the full 1024s of work.
  EXPECT_EQ(r.makespan, 220.0 + 32.0 + 1024.0);
  EXPECT_EQ(r.useful_work, 2.0 * 1024.0);
  EXPECT_EQ(r.restart_overhead, 2.0 * 32.0);
}

TEST(CampaignCheckpointIo, RoundTripsExactly) {
  sim::CampaignSpec spec;
  spec.scenarios = {sim::staggered_cascade_scenario(12, 0.25, 500.0, 100.0,
                                                    1800.0)};
  spec.policies = sim::default_policy_set();
  spec.runs_per_cell = 3;
  const sim::Campaign campaign(spec);
  const sim::CampaignCheckpoint partial = campaign.run_partial(5);
  EXPECT_EQ(partial.completed.size(), 5u);
  EXPECT_FALSE(partial.complete());

  const std::string path = testing::TempDir() + "campaign_ckpt_test.txt";
  sim::save_campaign_checkpoint(path, partial);
  const sim::CampaignCheckpoint loaded = sim::load_campaign_checkpoint(path);
  EXPECT_EQ(loaded.fingerprint, partial.fingerprint);
  EXPECT_EQ(loaded.total_runs, partial.total_runs);
  // Doubles survive the text round trip to the last bit.
  EXPECT_EQ(loaded.completed, partial.completed);
}

TEST(CampaignCheckpointIo, RejectsForeignAndMalformedCheckpoints) {
  sim::CampaignSpec spec = exact_spec({{320.0, 0, 1000.0}}, 256.0);
  spec.runs_per_cell = 2;
  const sim::Campaign campaign(spec);
  const sim::CampaignCheckpoint partial = campaign.run_partial(1);

  // A spec with a different seed fingerprints differently: resuming from
  // the old checkpoint must be rejected, not silently mixed.
  sim::CampaignSpec other = spec;
  other.seed = 43;
  const sim::Campaign other_campaign(other);
  EXPECT_NE(other_campaign.fingerprint(), campaign.fingerprint());
  EXPECT_THROW(other_campaign.run(&partial), ValidationError);
  EXPECT_THROW(other_campaign.summarize(partial), ValidationError);
  // Summarizing an incomplete checkpoint is also an error.
  EXPECT_THROW(campaign.summarize(partial), ValidationError);

  EXPECT_THROW(sim::load_campaign_checkpoint("/nonexistent/ckpt.txt"),
               IoError);
  const std::string path = testing::TempDir() + "campaign_bad_ckpt.txt";
  {
    std::ofstream out(path);
    out << "not a campaign checkpoint\n";
  }
  EXPECT_THROW(sim::load_campaign_checkpoint(path), ParseError);
}

// The satellite bugfix regression, extending the PR 5 restart test to
// multi-run campaigns: interrupting a campaign mid-shard and resuming
// from the saved checkpoint must reproduce the uninterrupted campaign
// exactly under the sharded RNG — every double of every run.
TEST(CampaignResume, InterruptedCampaignEqualsUninterrupted) {
  sim::CampaignSpec spec;
  spec.scenarios = {sim::staggered_cascade_scenario(12, 0.25, 500.0, 100.0,
                                                    1800.0),
                    sim::weibull_renewal_scenario(8, 86400.0, 4.0 * 86400.0)};
  spec.policies = sim::default_policy_set();
  spec.runs_per_cell = 2;
  const sim::Campaign campaign(spec);
  const sim::CampaignResult full = campaign.run();
  ASSERT_EQ(full.runs.size(), campaign.total_runs());

  for (const std::size_t interrupt_after : {1u, 4u, 7u, 11u}) {
    const sim::CampaignCheckpoint partial =
        campaign.run_partial(interrupt_after);
    // Round-trip through the on-disk format, as a real resume would.
    const std::string path = testing::TempDir() + "campaign_resume_" +
                             std::to_string(interrupt_after) + ".txt";
    sim::save_campaign_checkpoint(path, partial);
    const sim::CampaignCheckpoint loaded = sim::load_campaign_checkpoint(path);
    const sim::CampaignResult resumed = campaign.run(&loaded);
    EXPECT_EQ(resumed.runs, full.runs)
        << "resume after " << interrupt_after << " runs diverged";
  }
}

TEST(CampaignSummaries, MatchTheReferenceAggregate) {
  sim::CampaignSpec spec;
  spec.scenarios = {sim::correlated_burst_scenario(16, 3, 4, 3600.0, 1800.0)};
  spec.policies = sim::default_policy_set();
  spec.runs_per_cell = 12;
  const sim::Campaign campaign(spec);
  const sim::CampaignResult result = campaign.run();
  ASSERT_EQ(result.cells.size(), campaign.cell_count());
  for (std::size_t cell = 0; cell < result.cells.size(); ++cell) {
    const sim::CampaignCellSummary& summary = result.cells[cell];
    const auto agg = testkit::ref_campaign_aggregate(
        std::span(result.runs).subspan(cell * spec.runs_per_cell,
                                       spec.runs_per_cell));
    // Bootstrap point estimates are the statistic of the original
    // sample — bit-identical to the naive loop.
    EXPECT_EQ(summary.makespan.point, agg.mean_makespan);
    EXPECT_EQ(summary.waste_fraction.point, agg.mean_waste_fraction);
    EXPECT_EQ(summary.interruptions.point, agg.mean_interruptions);
    EXPECT_EQ(summary.faults_injected, agg.faults_injected);
    EXPECT_EQ(summary.runs, spec.runs_per_cell);
    // The interval brackets its point.
    EXPECT_LE(summary.makespan.lo, summary.makespan.point);
    EXPECT_GE(summary.makespan.hi, summary.makespan.point);
  }
}

TEST(CampaignObs, CountersAndGaugesAccumulate) {
  obs::registry().reset();
  sim::CampaignSpec spec;
  spec.scenarios = {sim::correlated_burst_scenario(16, 3, 4, 3600.0, 1800.0)};
  spec.policies = {sim::periodic_checkpoint_policy(3600.0)};
  spec.runs_per_cell = 3;
  const sim::Campaign campaign(spec);
  const sim::CampaignResult result = campaign.run();
  EXPECT_EQ(obs::registry().counter("campaign.faults_injected").value(),
            result.total_faults_injected());
  EXPECT_GE(obs::registry().gauge("campaign.shard_ms").value(), 0.0);
  EXPECT_EQ(obs::registry().counter("campaign.resumes").value(), 0u);

  const sim::CampaignCheckpoint partial = campaign.run_partial(1);
  (void)campaign.run(&partial);
  EXPECT_EQ(obs::registry().counter("campaign.resumes").value(), 1u);
  obs::registry().reset();
}

}  // namespace
