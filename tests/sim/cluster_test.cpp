#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail::sim {
namespace {

constexpr double kDay = 86400.0;

ClusterNodeConfig reliable_node(double mtbf_days) {
  ClusterNodeConfig n;
  n.mtbf_seconds = mtbf_days * kDay;
  n.repair_mean_seconds = 6.0 * 3600.0;
  n.repair_median_seconds = 3600.0;
  return n;
}

TEST(Cluster, CompletesAllJobsWithoutFailures) {
  ClusterConfig cfg;
  cfg.nodes = std::vector<ClusterNodeConfig>(8, reliable_node(1e9));
  cfg.job_width = 2;
  cfg.job_work_seconds = 3600.0;
  cfg.job_count = 16;
  hpcfail::Rng rng(1);
  const ClusterStats s = simulate_cluster(cfg, rng);
  EXPECT_EQ(s.interruptions, 0u);
  EXPECT_DOUBLE_EQ(s.wasted_work, 0.0);
  EXPECT_DOUBLE_EQ(s.useful_work, 16.0 * 2.0 * 3600.0);
  // 4 concurrent slots, 16 jobs of an hour: 4 waves.
  EXPECT_NEAR(s.makespan, 4.0 * 3600.0, 1.0);
}

TEST(Cluster, MaxConcurrentJobsLimitsParallelism) {
  ClusterConfig cfg;
  cfg.nodes = std::vector<ClusterNodeConfig>(8, reliable_node(1e9));
  cfg.job_width = 2;
  cfg.job_work_seconds = 3600.0;
  cfg.job_count = 16;
  cfg.max_concurrent_jobs = 2;
  hpcfail::Rng rng(1);
  const ClusterStats s = simulate_cluster(cfg, rng);
  EXPECT_NEAR(s.makespan, 8.0 * 3600.0, 1.0);
}

TEST(Cluster, FailuresCauseWasteAndInterruptions) {
  ClusterConfig cfg;
  cfg.nodes = std::vector<ClusterNodeConfig>(8, reliable_node(0.5));
  cfg.job_width = 4;
  cfg.job_work_seconds = 12.0 * 3600.0;
  cfg.job_count = 20;
  hpcfail::Rng rng(3);
  const ClusterStats s = simulate_cluster(cfg, rng);
  EXPECT_GT(s.interruptions, 0u);
  EXPECT_GT(s.wasted_work, 0.0);
  EXPECT_GT(s.node_failures, 0u);
  EXPECT_DOUBLE_EQ(s.useful_work, 20.0 * 4.0 * 12.0 * 3600.0);
}

TEST(Cluster, ReliabilityRankedBeatsRandomUnderPartialLoad) {
  // Heterogeneous nodes with a hot tail, half-loaded cluster: preferring
  // long-MTBF nodes must reduce waste (Section 5.1's motivation).
  ClusterConfig cfg;
  cfg.nodes = heterogeneous_nodes(64, 20.0 * kDay, 0.3, 0.08, 5.0, 99);
  cfg.job_width = 8;
  cfg.job_work_seconds = 24.0 * 3600.0;
  cfg.job_count = 150;
  cfg.max_concurrent_jobs = 4;
  double random_waste = 0.0;
  double ranked_waste = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    hpcfail::Rng r1(seed);
    hpcfail::Rng r2(seed);
    cfg.policy = PlacementPolicy::random;
    random_waste += simulate_cluster(cfg, r1).waste_fraction();
    cfg.policy = PlacementPolicy::reliability_ranked;
    ranked_waste += simulate_cluster(cfg, r2).waste_fraction();
  }
  EXPECT_LT(ranked_waste, random_waste);
}

TEST(Cluster, HeterogeneousNodesRespectHotFactor) {
  const auto nodes = heterogeneous_nodes(100, 10.0 * kDay, 0.0, 0.1, 4.0,
                                         7);
  ASSERT_EQ(nodes.size(), 100u);
  // First 10 nodes are "hot": MTBF divided by 4 (no jitter here).
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(nodes[i].mtbf_seconds, 10.0 * kDay / 4.0, 1.0);
  }
  for (std::size_t i = 10; i < 100; ++i) {
    EXPECT_NEAR(nodes[i].mtbf_seconds, 10.0 * kDay, 1.0);
  }
}

TEST(Cluster, HeterogeneousNodesValidateArguments) {
  EXPECT_THROW(heterogeneous_nodes(0, kDay, 0.3, 0.1, 4.0, 1),
               hpcfail::InvalidArgument);
  EXPECT_THROW(heterogeneous_nodes(10, -1.0, 0.3, 0.1, 4.0, 1),
               hpcfail::InvalidArgument);
  EXPECT_THROW(heterogeneous_nodes(10, kDay, 0.3, 1.5, 4.0, 1),
               hpcfail::InvalidArgument);
  EXPECT_THROW(heterogeneous_nodes(10, kDay, 0.3, 0.1, 0.5, 1),
               hpcfail::InvalidArgument);
}

TEST(Cluster, RejectsImpossibleConfigs) {
  hpcfail::Rng rng(1);
  ClusterConfig cfg;
  EXPECT_THROW(simulate_cluster(cfg, rng), hpcfail::InvalidArgument);

  cfg.nodes = std::vector<ClusterNodeConfig>(2, reliable_node(1.0));
  cfg.job_width = 4;  // wider than the cluster
  cfg.job_work_seconds = 10.0;
  cfg.job_count = 1;
  EXPECT_THROW(simulate_cluster(cfg, rng), hpcfail::InvalidArgument);

  cfg.job_width = 1;
  cfg.job_work_seconds = 0.0;
  EXPECT_THROW(simulate_cluster(cfg, rng), hpcfail::InvalidArgument);

  cfg.job_work_seconds = 10.0;
  cfg.nodes[0].repair_median_seconds = cfg.nodes[0].repair_mean_seconds;
  EXPECT_THROW(simulate_cluster(cfg, rng), hpcfail::InvalidArgument);
}

TEST(Cluster, CheckpointingReducesWasteAndMakespan) {
  ClusterConfig cfg;
  cfg.nodes = std::vector<ClusterNodeConfig>(16, reliable_node(1.0));
  cfg.job_width = 4;
  cfg.job_work_seconds = 2.0 * kDay;  // long jobs on flaky nodes
  cfg.job_count = 30;
  hpcfail::Rng r1(21);
  hpcfail::Rng r2(21);
  cfg.checkpoint_interval = 0.0;  // restart from scratch
  const ClusterStats scratch = simulate_cluster(cfg, r1);
  cfg.checkpoint_interval = 2.0 * 3600.0;  // save every 2 hours
  const ClusterStats checkpointed = simulate_cluster(cfg, r2);
  EXPECT_GT(scratch.interruptions, 0u);
  EXPECT_LT(checkpointed.wasted_work, scratch.wasted_work);
  EXPECT_LT(checkpointed.makespan, scratch.makespan);
  // Useful work is the full workload either way.
  EXPECT_DOUBLE_EQ(checkpointed.useful_work,
                   30.0 * 4.0 * 2.0 * kDay);
  EXPECT_DOUBLE_EQ(scratch.useful_work, checkpointed.useful_work);
}

TEST(Cluster, CheckpointProgressIsQuantized) {
  // One node, one job, a failure mid-run: the job resumes from the last
  // whole checkpoint, so total elapsed work time exceeds the work by the
  // replayed remainder.
  ClusterConfig cfg;
  cfg.nodes = std::vector<ClusterNodeConfig>(1, reliable_node(1e9));
  cfg.job_width = 1;
  cfg.job_work_seconds = 10.0 * 3600.0;
  cfg.job_count = 1;
  cfg.checkpoint_interval = 3600.0;
  hpcfail::Rng rng(5);
  const ClusterStats s = simulate_cluster(cfg, rng);
  EXPECT_EQ(s.interruptions, 0u);
  EXPECT_DOUBLE_EQ(s.useful_work, 10.0 * 3600.0);
}

TEST(Cluster, RejectsNegativeCheckpointInterval) {
  ClusterConfig cfg;
  cfg.nodes = std::vector<ClusterNodeConfig>(2, reliable_node(1.0));
  cfg.job_width = 1;
  cfg.job_work_seconds = 10.0;
  cfg.job_count = 1;
  cfg.checkpoint_interval = -1.0;
  hpcfail::Rng rng(1);
  EXPECT_THROW(simulate_cluster(cfg, rng), hpcfail::InvalidArgument);
}

TEST(Cluster, DeterministicGivenSeed) {
  ClusterConfig cfg;
  cfg.nodes = heterogeneous_nodes(16, 5.0 * kDay, 0.2, 0.1, 3.0, 5);
  cfg.job_width = 4;
  cfg.job_work_seconds = 6.0 * 3600.0;
  cfg.job_count = 30;
  hpcfail::Rng r1(77);
  hpcfail::Rng r2(77);
  const ClusterStats a = simulate_cluster(cfg, r1);
  const ClusterStats b = simulate_cluster(cfg, r2);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.interruptions, b.interruptions);
  EXPECT_DOUBLE_EQ(a.wasted_work, b.wasted_work);
}

}  // namespace
}  // namespace hpcfail::sim
