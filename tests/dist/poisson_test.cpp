#include "dist/poisson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::dist {
namespace {

TEST(Poisson, PmfKnownValues) {
  const Poisson d(2.0);
  EXPECT_NEAR(d.pmf(0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(d.pmf(2), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.pmf(-1), 0.0);
}

TEST(Poisson, PmfSumsToOne) {
  const Poisson d(7.5);
  double total = 0.0;
  for (long long k = 0; k <= 100; ++k) total += d.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Poisson, CdfMatchesPartialSums) {
  const Poisson d(4.2);
  double partial = 0.0;
  for (long long k = 0; k <= 15; ++k) {
    partial += d.pmf(k);
    EXPECT_NEAR(d.cdf(static_cast<double>(k)), partial, 1e-10) << "k=" << k;
    // Step function: flat between integers.
    EXPECT_NEAR(d.cdf(static_cast<double>(k) + 0.5), partial, 1e-10);
  }
  EXPECT_DOUBLE_EQ(d.cdf(-0.5), 0.0);
}

TEST(Poisson, QuantileIsSmallestKReachingP) {
  const Poisson d(3.0);
  for (const double p : {0.05, 0.3, 0.5, 0.9, 0.999}) {
    const double k = d.quantile(p);
    EXPECT_GE(d.cdf(k), p);
    if (k > 0.0) {
      EXPECT_LT(d.cdf(k - 1.0), p);
    }
  }
}

TEST(Poisson, MeanEqualsVariance) {
  const Poisson d(6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 6.0);
  EXPECT_DOUBLE_EQ(d.variance(), 6.0);
  EXPECT_NEAR(d.cv_squared(), 1.0 / 6.0, 1e-12);
}

TEST(Poisson, SampleMomentsMatchSmallMean) {
  const Poisson d(3.5);
  hpcfail::Rng rng(59);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = d.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 3.5, 0.05);
  EXPECT_NEAR(sum_sq / kDraws - mean * mean, 3.5, 0.1);
}

TEST(Poisson, SampleMomentsMatchLargeMean) {
  // Exercises the halving recursion (mean > 30).
  const Poisson d(120.0);
  hpcfail::Rng rng(61);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = d.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 120.0, 0.5);
  EXPECT_NEAR(sum_sq / kDraws - mean * mean, 120.0, 3.0);
}

TEST(Poisson, FitIsSampleMean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(Poisson::fit_mle(xs).lambda(), 3.0);
}

TEST(Poisson, FitRejectsBadSamples) {
  EXPECT_THROW(Poisson::fit_mle(std::vector<double>{}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(Poisson::fit_mle(std::vector<double>{0.0, 0.0}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(Poisson::fit_mle(std::vector<double>{1.0, -1.0}),
               hpcfail::InvalidArgument);
}

TEST(Poisson, RejectsBadParameters) {
  EXPECT_THROW(Poisson(0.0), hpcfail::InvalidArgument);
  EXPECT_THROW(Poisson(-3.0), hpcfail::InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::dist
