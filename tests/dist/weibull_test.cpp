#include "dist/weibull.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::dist {
namespace {

TEST(Weibull, ReducesToExponentialAtShapeOne) {
  const Weibull w(1.0, 2.0);
  EXPECT_NEAR(w.cdf(3.0), 1.0 - std::exp(-1.5), 1e-12);
  EXPECT_NEAR(w.mean(), 2.0, 1e-12);
  EXPECT_NEAR(w.variance(), 4.0, 1e-12);
}

TEST(Weibull, DecreasingHazardBelowShapeOne) {
  // The paper's central hazard-rate finding: shape 0.7-0.8 means a long
  // failure-free interval makes the next failure *less* likely soon.
  const Weibull w(0.7, 1000.0);
  EXPECT_TRUE(w.decreasing_hazard());
  EXPECT_GT(w.hazard(10.0), w.hazard(100.0));
  EXPECT_GT(w.hazard(100.0), w.hazard(1000.0));
}

TEST(Weibull, IncreasingHazardAboveShapeOne) {
  const Weibull w(2.0, 1000.0);
  EXPECT_FALSE(w.decreasing_hazard());
  EXPECT_LT(w.hazard(10.0), w.hazard(100.0));
}

TEST(Weibull, QuantileInvertsCdf) {
  const Weibull w(0.78, 3600.0);
  for (const double p : {0.001, 0.25, 0.5, 0.75, 0.999}) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-12) << "p = " << p;
  }
}

TEST(Weibull, MedianFormula) {
  const Weibull w(0.7, 100.0);
  EXPECT_NEAR(w.quantile(0.5),
              100.0 * std::pow(std::log(2.0), 1.0 / 0.7), 1e-9);
}

TEST(Weibull, SampleMomentsMatch) {
  const Weibull w(0.75, 500.0);
  hpcfail::Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += w.sample(rng);
  EXPECT_NEAR(sum / kDraws / w.mean(), 1.0, 0.02);
}

TEST(Weibull, FitRecoversPaperShape) {
  // The regime the paper reports: shape 0.7-0.8 on second-scale data.
  const Weibull truth(0.7, 86400.0);
  hpcfail::Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const Weibull fit = Weibull::fit_mle(xs);
  EXPECT_NEAR(fit.shape(), 0.7, 0.02);
  EXPECT_NEAR(fit.scale() / truth.scale(), 1.0, 0.05);
}

TEST(Weibull, FitToleratesZeros) {
  // Simultaneous failures produce exact-zero interarrivals; the fitter
  // floors them instead of failing on log(0).
  const Weibull truth(0.9, 100.0);
  hpcfail::Rng rng(17);
  std::vector<double> xs = {0.0, 0.0, 0.0};
  for (int i = 0; i < 5000; ++i) xs.push_back(truth.sample(rng));
  const Weibull fit = Weibull::fit_mle(xs, /*floor_at=*/1.0);
  EXPECT_NEAR(fit.shape(), 0.9, 0.15);
}

TEST(Weibull, FitRejectsDegenerateSamples) {
  EXPECT_THROW(Weibull::fit_mle(std::vector<double>{1.0}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(Weibull::fit_mle(std::vector<double>{2.0, 2.0, 2.0}),
               hpcfail::FitError);
  EXPECT_THROW(Weibull::fit_mle(std::vector<double>{1.0, -1.0}),
               hpcfail::InvalidArgument);
}

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), hpcfail::InvalidArgument);
  EXPECT_THROW(Weibull(1.0, 0.0), hpcfail::InvalidArgument);
  EXPECT_THROW(Weibull(-1.0, 1.0), hpcfail::InvalidArgument);
}

TEST(Weibull, LogPdfOutsideSupport) {
  const Weibull w(0.7, 1.0);
  EXPECT_TRUE(std::isinf(w.log_pdf(0.0)));
  EXPECT_TRUE(std::isinf(w.log_pdf(-1.0)));
  EXPECT_DOUBLE_EQ(w.pdf(-1.0), 0.0);
}

}  // namespace
}  // namespace hpcfail::dist
