// Calibration oracle for the SuffStats contract (dist/suffstats.hpp):
// parameters derived from the one-pass sufficient statistics must agree
// with the direct span-based fit_mle overloads to floating-point noise.
// The accumulation order is the same forward pass, so the sums themselves
// are bit-identical; derived parameters are allowed last-ulp slack where
// the algebra is rearranged (the lognormal one-pass variance, the weibull
// warm-started solver, which converges from a different bracket to the
// same root within the solver's 1e-12 position tolerance).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dist/exponential.hpp"
#include "dist/gamma.hpp"
#include "dist/lognormal.hpp"
#include "dist/suffstats.hpp"
#include "dist/weibull.hpp"

namespace {

using hpcfail::Rng;
using hpcfail::dist::Exponential;
using hpcfail::dist::GammaDist;
using hpcfail::dist::LogNormal;
using hpcfail::dist::SuffStats;
using hpcfail::dist::Weibull;

std::vector<double> weibull_sample(std::size_t n, double shape,
                                   std::uint64_t seed) {
  const Weibull truth(shape, 86400.0);
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(truth.sample(rng));
  return xs;
}

void expect_close(double a, double b, double rel, const char* what,
                  std::size_t n) {
  EXPECT_NEAR(a, b, rel * std::max(std::abs(a), std::abs(b)))
      << what << " at n=" << n;
}

TEST(SuffStatsOracle, SumsMatchADirectPassBitForBit) {
  for (const std::size_t n : {64u, 1000u, 10000u}) {
    const auto xs = weibull_sample(n, 0.75, 1234 + n);
    constexpr double kFloor = 1.0;
    const SuffStats stats = SuffStats::compute(xs, kFloor);

    double sum_raw = 0.0;
    double sum = 0.0;
    double sum_log = 0.0;
    double sum_log_sq = 0.0;
    double mn = xs[0] < kFloor ? kFloor : xs[0];
    double mx = mn;
    for (const double x : xs) {
      const double v = x < kFloor ? kFloor : x;
      sum_raw += x;
      sum += v;
      const double lx = std::log(v);
      sum_log += lx;
      sum_log_sq += lx * lx;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_EQ(stats.n, n);
    EXPECT_EQ(stats.sum_raw, sum_raw) << "n=" << n;
    EXPECT_EQ(stats.sum, sum) << "n=" << n;
    EXPECT_EQ(stats.sum_log, sum_log) << "n=" << n;
    EXPECT_EQ(stats.sum_log_sq, sum_log_sq) << "n=" << n;
    EXPECT_EQ(stats.min, mn) << "n=" << n;
    EXPECT_EQ(stats.max, mx) << "n=" << n;
  }
}

TEST(SuffStatsOracle, FitsAgreeWithDirectSpanOverloads) {
  for (const std::size_t n : {64u, 1000u, 10000u}) {
    for (const double shape : {0.75, 1.4}) {
      const auto xs = weibull_sample(n, shape, 99 + n);
      constexpr double kFloor = 1.0;
      const SuffStats stats = SuffStats::compute(xs, kFloor);

      const Exponential exp_span = Exponential::fit_mle(xs);
      const Exponential exp_stats = Exponential::fit_mle(stats);
      expect_close(exp_stats.rate(), exp_span.rate(), 1e-12, "exp rate", n);

      const GammaDist gamma_span = GammaDist::fit_mle(xs, kFloor);
      const GammaDist gamma_stats = GammaDist::fit_mle(stats);
      expect_close(gamma_stats.shape(), gamma_span.shape(), 1e-9,
                   "gamma shape", n);
      expect_close(gamma_stats.scale(), gamma_span.scale(), 1e-9,
                   "gamma scale", n);

      const LogNormal ln_span = LogNormal::fit_mle(xs, kFloor);
      const LogNormal ln_stats = LogNormal::fit_mle(stats);
      expect_close(ln_stats.mu(), ln_span.mu(), 1e-12, "lognormal mu", n);
      expect_close(ln_stats.sigma(), ln_span.sigma(), 1e-9,
                   "lognormal sigma", n);

      const Weibull wb_span = Weibull::fit_mle(xs, kFloor);
      const Weibull wb_stats = Weibull::fit_mle(xs, stats);
      expect_close(wb_stats.shape(), wb_span.shape(), 1e-8,
                   "weibull shape", n);
      expect_close(wb_stats.scale(), wb_span.scale(), 1e-8,
                   "weibull scale", n);
    }
  }
}

TEST(SuffStatsOracle, WarmStartHintBracketsTheTrueShape) {
  // The hint (pi/sqrt(6)) / stddev(log x) must land within the solver's
  // initial bracket [hint/1.5, hint*1.5] of the converged MLE for
  // realistic interarrival shapes, or the warm start degenerates into
  // bracket expansion and the batched path loses its advantage.
  for (const double shape : {0.6, 0.75, 1.0, 1.4}) {
    const auto xs = weibull_sample(20000, shape, 7);
    const SuffStats stats = SuffStats::compute(xs, 1.0);
    const double hint = Weibull::shape_hint_from(stats);
    const double fitted = Weibull::fit_mle(xs, stats).shape();
    ASSERT_GT(hint, 0.0);
    EXPECT_LT(fitted / hint, 1.5) << "shape " << shape;
    EXPECT_GT(fitted / hint, 1.0 / 1.5) << "shape " << shape;
  }
}

}  // namespace
