// Property-based sweeps over every continuous family and a grid of
// parameterizations: CDF/pdf/quantile/hazard consistency, sampling
// moments, and MLE parameter recovery. These are the invariants the
// paper's methodology (MLE + CDF comparison) silently relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/exponential.hpp"
#include "dist/fit.hpp"
#include "dist/gamma.hpp"
#include "dist/lognormal.hpp"
#include "dist/normal.hpp"
#include "dist/weibull.hpp"

namespace hpcfail::dist {
namespace {

struct Case {
  std::string label;
  Family family;
  double p0;
  double p1;  // unused for exponential
};

std::unique_ptr<Distribution> make(const Case& c) {
  switch (c.family) {
    case Family::exponential:
      return std::make_unique<Exponential>(c.p0);
    case Family::weibull:
      return std::make_unique<Weibull>(c.p0, c.p1);
    case Family::gamma:
      return std::make_unique<GammaDist>(c.p0, c.p1);
    case Family::lognormal:
      return std::make_unique<LogNormal>(c.p0, c.p1);
    case Family::normal:
      return std::make_unique<Normal>(c.p0, c.p1);
    case Family::poisson:
      break;
  }
  throw hpcfail::InvalidArgument("unsupported family in property test");
}

class ContinuousDistributionProperty
    : public ::testing::TestWithParam<Case> {};

TEST_P(ContinuousDistributionProperty, CdfIsMonotoneWithCorrectLimits) {
  const auto d = make(GetParam());
  const double lo = d->quantile(1e-6);
  const double hi = d->quantile(1.0 - 1e-6);
  double prev = -1e-15;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    const double f = d->cdf(x);
    ASSERT_GE(f, prev - 1e-12) << "x = " << x;
    ASSERT_GE(f, 0.0);
    ASSERT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_LT(d->cdf(lo), 1e-4);
  EXPECT_GT(d->cdf(hi), 1.0 - 1e-4);
}

TEST_P(ContinuousDistributionProperty, QuantileInvertsCdf) {
  const auto d = make(GetParam());
  for (double p = 0.02; p < 0.999; p += 0.02) {
    ASSERT_NEAR(d->cdf(d->quantile(p)), p, 1e-8) << "p = " << p;
  }
}

TEST_P(ContinuousDistributionProperty, PdfIsDerivativeOfCdf) {
  const auto d = make(GetParam());
  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double x = d->quantile(p);
    const double h = std::max(1e-6, std::fabs(x) * 1e-6);
    const double numeric = (d->cdf(x + h) - d->cdf(x - h)) / (2.0 * h);
    const double analytic = d->pdf(x);
    ASSERT_NEAR(numeric, analytic,
                1e-4 * std::max(1.0, std::fabs(analytic)))
        << "p = " << p;
  }
}

TEST_P(ContinuousDistributionProperty, HazardEqualsPdfOverSurvival) {
  const auto d = make(GetParam());
  for (const double p : {0.2, 0.5, 0.8}) {
    const double x = d->quantile(p);
    ASSERT_NEAR(d->hazard(x), d->pdf(x) / (1.0 - d->cdf(x)), 1e-9);
  }
}

TEST_P(ContinuousDistributionProperty, SampleMeanConvergesToAnalytic) {
  const auto d = make(GetParam());
  hpcfail::Rng rng(0xFEED ^ std::hash<std::string>{}(GetParam().label));
  double sum = 0.0;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) sum += d->sample(rng);
  const double sample_mean = sum / kDraws;
  const double tolerance =
      5.0 * std::sqrt(d->variance() / kDraws) + 1e-9;
  EXPECT_NEAR(sample_mean, d->mean(), tolerance);
}

TEST_P(ContinuousDistributionProperty, SamplesStayInSupport) {
  const Case c = GetParam();
  const auto d = make(c);
  hpcfail::Rng rng(0xBEEF);
  for (int i = 0; i < 10000; ++i) {
    const double x = d->sample(rng);
    ASSERT_TRUE(std::isfinite(x));
    if (c.family != Family::normal) {
      ASSERT_GT(x, 0.0);
    }
  }
}

TEST_P(ContinuousDistributionProperty, MleRecoversParameters) {
  const Case c = GetParam();
  const auto d = make(c);
  hpcfail::Rng rng(0xABCD ^ std::hash<std::string>{}(GetParam().label));
  std::vector<double> xs;
  xs.reserve(20000);
  for (int i = 0; i < 20000; ++i) xs.push_back(d->sample(rng));
  const FitResult fit = hpcfail::dist::fit(c.family, xs);
  // Parameter recovery asserted through the moments the family pins down.
  EXPECT_NEAR(fit.model->mean() / d->mean(),
              1.0, c.family == Family::lognormal ? 0.25 : 0.1)
      << fit.model->describe();
  // The refitted model must explain the data at least as well as a
  // mildly perturbed version of the truth (sanity on the optimizer).
  EXPECT_LE(-fit.model->log_likelihood(xs),
            -d->log_likelihood(xs) + 1.0);
}

TEST_P(ContinuousDistributionProperty, CloneBehavesIdentically) {
  const auto d = make(GetParam());
  const auto copy = d->clone();
  for (const double p : {0.1, 0.5, 0.9}) {
    const double x = d->quantile(p);
    ASSERT_DOUBLE_EQ(copy->cdf(x), d->cdf(x));
    ASSERT_DOUBLE_EQ(copy->pdf(x), d->pdf(x));
  }
  EXPECT_EQ(copy->describe(), d->describe());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ContinuousDistributionProperty,
    ::testing::Values(
        Case{"exp_fast", Family::exponential, 2.0, 0.0},
        Case{"exp_slow", Family::exponential, 1.0 / 86400.0, 0.0},
        Case{"weibull_paper_07", Family::weibull, 0.7, 3600.0},
        Case{"weibull_paper_078", Family::weibull, 0.78, 250000.0},
        Case{"weibull_increasing", Family::weibull, 1.8, 10.0},
        Case{"gamma_sub_exponential", Family::gamma, 0.65, 5000.0},
        Case{"gamma_erlang", Family::gamma, 3.0, 2.0},
        Case{"lognormal_repair", Family::lognormal, 4.0, 1.6},
        Case{"lognormal_narrow", Family::lognormal, 0.0, 0.4},
        Case{"normal_counts", Family::normal, 120.0, 30.0}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace hpcfail::dist
