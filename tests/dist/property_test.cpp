// Property-based laws for every continuous family, driven by the testkit
// property engine (random probability/sample inputs with shrinking and a
// reproducing seed) instead of the fixed grids this file used to sweep:
// CDF monotonicity, quantile/CDF inversion, pdf-as-derivative, hazard
// identity, support of sampling, and clone fidelity. These are the
// invariants the paper's methodology (MLE + CDF comparison) silently
// relies on. Statistical convergence (moments, MLE recovery) lives in
// the calibration tier (tests/calibration/), which measures it properly
// against sample size.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/exponential.hpp"
#include "dist/fit.hpp"
#include "dist/gamma.hpp"
#include "dist/hyperexp.hpp"
#include "dist/lognormal.hpp"
#include "dist/normal.hpp"
#include "dist/pareto.hpp"
#include "dist/weibull.hpp"
#include "testkit/generators.hpp"
#include "testkit/property.hpp"

namespace hpcfail::dist {
namespace {

using hpcfail::testkit::check_property;
using hpcfail::testkit::Gen;
using hpcfail::testkit::PropertyOptions;
using hpcfail::testkit::reals;
using hpcfail::testkit::sorted_vectors;

struct Case {
  std::string label;
  Family family;
  double p0;
  double p1;  // unused for exponential
  double p2;  // hyperexp only
};

std::unique_ptr<Distribution> make(const Case& c) {
  switch (c.family) {
    case Family::exponential:
      return std::make_unique<Exponential>(c.p0);
    case Family::weibull:
      return std::make_unique<Weibull>(c.p0, c.p1);
    case Family::gamma:
      return std::make_unique<GammaDist>(c.p0, c.p1);
    case Family::lognormal:
      return std::make_unique<LogNormal>(c.p0, c.p1);
    case Family::normal:
      return std::make_unique<Normal>(c.p0, c.p1);
    case Family::pareto:
      return std::make_unique<Pareto>(c.p0, c.p1);
    case Family::hyperexp:
      return std::make_unique<HyperExp>(c.p0, c.p1, c.p2);
    case Family::poisson:
      break;  // discrete; covered by dist/poisson_test.cpp
  }
  throw hpcfail::InvalidArgument("unsupported family in property test");
}

// Probabilities away from the extreme tails, where quantile() is well
// conditioned for every family under test.
Gen<double> probabilities() { return reals(0.01, 0.99); }

class ContinuousDistributionProperty
    : public ::testing::TestWithParam<Case> {};

TEST_P(ContinuousDistributionProperty, CdfIsMonotoneWithCorrectLimits) {
  const auto d = make(GetParam());
  // Monotonicity on random sorted pairs mapped through the quantile
  // function (so the pair lands anywhere in the support, tails included).
  const auto result = check_property(
      sorted_vectors(reals(0.001, 0.999), 2, 2),
      [&](const std::vector<double>& ps) {
        const double a = d->quantile(ps[0]);
        const double b = d->quantile(ps[1]);
        const double fa = d->cdf(a);
        const double fb = d->cdf(b);
        return fa >= 0.0 && fb <= 1.0 && fb >= fa - 1e-12;
      });
  EXPECT_TRUE(result.passed) << result.message;
  EXPECT_LT(d->cdf(d->quantile(1e-6)), 1e-4);
  EXPECT_GT(d->cdf(d->quantile(1.0 - 1e-6)), 1.0 - 1e-4);
}

TEST_P(ContinuousDistributionProperty, QuantileInvertsCdf) {
  const auto d = make(GetParam());
  const auto result =
      check_property(probabilities(), [&](double p) {
        return std::fabs(d->cdf(d->quantile(p)) - p) < 1e-8;
      });
  EXPECT_TRUE(result.passed) << result.message;
}

TEST_P(ContinuousDistributionProperty, PdfIsDerivativeOfCdf) {
  const auto d = make(GetParam());
  const auto result = check_property(reals(0.05, 0.95), [&](double p) {
    const double x = d->quantile(p);
    const double h = std::max(1e-6, std::fabs(x) * 1e-6);
    const double numeric = (d->cdf(x + h) - d->cdf(x - h)) / (2.0 * h);
    const double analytic = d->pdf(x);
    return std::fabs(numeric - analytic) <=
           1e-4 * std::max(1.0, std::fabs(analytic));
  });
  EXPECT_TRUE(result.passed) << result.message;
}

TEST_P(ContinuousDistributionProperty, HazardEqualsPdfOverSurvival) {
  const auto d = make(GetParam());
  const auto result = check_property(reals(0.05, 0.9), [&](double p) {
    const double x = d->quantile(p);
    const double direct = d->pdf(x) / (1.0 - d->cdf(x));
    return std::fabs(d->hazard(x) - direct) <=
           1e-9 * std::max(1.0, std::fabs(direct));
  });
  EXPECT_TRUE(result.passed) << result.message;
}

TEST_P(ContinuousDistributionProperty, SamplesStayInSupport) {
  const Case c = GetParam();
  const auto d = make(c);
  // The generator *is* the distribution's sampler: every draw must be
  // finite and inside the support.
  Gen<double> draws;
  draws.sample = [&](hpcfail::Rng& rng) { return d->sample(rng); };
  PropertyOptions options;
  options.cases = 2000;
  const auto result = check_property(
      draws,
      [&](double x) {
        if (!std::isfinite(x)) return false;
        return c.family == Family::normal || x > 0.0;
      },
      options);
  EXPECT_TRUE(result.passed) << result.message;
}

TEST_P(ContinuousDistributionProperty, QuantilesAreFiniteAndOrderedInP) {
  const auto d = make(GetParam());
  const auto result = check_property(
      sorted_vectors(reals(0.01, 0.99), 2, 2),
      [&](const std::vector<double>& ps) {
        const double a = d->quantile(ps[0]);
        const double b = d->quantile(ps[1]);
        return std::isfinite(a) && std::isfinite(b) && a <= b + 1e-12;
      });
  EXPECT_TRUE(result.passed) << result.message;
}

TEST_P(ContinuousDistributionProperty, CloneBehavesIdentically) {
  const auto d = make(GetParam());
  const auto copy = d->clone();
  const auto result = check_property(probabilities(), [&](double p) {
    const double x = d->quantile(p);
    return copy->cdf(x) == d->cdf(x) && copy->pdf(x) == d->pdf(x);
  });
  EXPECT_TRUE(result.passed) << result.message;
  EXPECT_EQ(copy->describe(), d->describe());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ContinuousDistributionProperty,
    ::testing::Values(
        Case{"exp_fast", Family::exponential, 2.0, 0.0, 0.0},
        Case{"exp_slow", Family::exponential, 1.0 / 86400.0, 0.0, 0.0},
        Case{"weibull_paper_07", Family::weibull, 0.7, 3600.0, 0.0},
        Case{"weibull_paper_078", Family::weibull, 0.78, 250000.0, 0.0},
        Case{"weibull_increasing", Family::weibull, 1.8, 10.0, 0.0},
        Case{"gamma_sub_exponential", Family::gamma, 0.65, 5000.0, 0.0},
        Case{"gamma_erlang", Family::gamma, 3.0, 2.0, 0.0},
        Case{"lognormal_repair", Family::lognormal, 4.0, 1.6, 0.0},
        Case{"lognormal_narrow", Family::lognormal, 0.0, 0.4, 0.0},
        Case{"normal_counts", Family::normal, 120.0, 30.0, 0.0},
        Case{"pareto_tail", Family::pareto, 2.5, 10.0, 0.0},
        Case{"hyperexp_bursty", Family::hyperexp, 0.4, 1.0 / 500.0,
             1.0 / 5000.0}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace hpcfail::dist
