#include "dist/exponential.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::dist {
namespace {

TEST(Exponential, Moments) {
  const Exponential d(0.5);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 4.0);
  EXPECT_DOUBLE_EQ(d.cv_squared(), 1.0);  // the paper's key objection
}

TEST(Exponential, FromMean) {
  EXPECT_DOUBLE_EQ(Exponential::from_mean(4.0).rate(), 0.25);
}

TEST(Exponential, PdfAndCdfKnownValues) {
  const Exponential d(1.0);
  EXPECT_NEAR(d.pdf(0.0), 1.0, 1e-12);
  EXPECT_NEAR(d.pdf(1.0), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_NEAR(d.cdf(1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
}

TEST(Exponential, MemorylessHazardIsConstant) {
  const Exponential d(0.7);
  EXPECT_NEAR(d.hazard(0.1), 0.7, 1e-10);
  EXPECT_NEAR(d.hazard(10.0), 0.7, 1e-9);
  EXPECT_NEAR(d.hazard(100.0), 0.7, 1e-6);
}

TEST(Exponential, QuantileInvertsCdf) {
  const Exponential d(2.5);
  for (const double p : {0.01, 0.5, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
  EXPECT_THROW(d.quantile(0.0), hpcfail::InvalidArgument);
  EXPECT_THROW(d.quantile(1.0), hpcfail::InvalidArgument);
}

TEST(Exponential, FitRecoversRate) {
  const Exponential truth(1.0 / 3600.0);
  hpcfail::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const Exponential fit = Exponential::fit_mle(xs);
  EXPECT_NEAR(fit.rate() / truth.rate(), 1.0, 0.03);
}

TEST(Exponential, FitRejectsBadSamples) {
  EXPECT_THROW(Exponential::fit_mle(std::vector<double>{}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(Exponential::fit_mle(std::vector<double>{1.0, -2.0}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(Exponential::fit_mle(std::vector<double>{0.0, 0.0}),
               hpcfail::InvalidArgument);
}

TEST(Exponential, RejectsBadParameters) {
  EXPECT_THROW(Exponential(0.0), hpcfail::InvalidArgument);
  EXPECT_THROW(Exponential(-1.0), hpcfail::InvalidArgument);
}

TEST(Exponential, DescribeAndClone) {
  const Exponential d(2.0);
  EXPECT_EQ(d.name(), "exponential");
  EXPECT_NE(d.describe().find("rate=2"), std::string::npos);
  const auto copy = d.clone();
  EXPECT_DOUBLE_EQ(copy->mean(), d.mean());
}

}  // namespace
}  // namespace hpcfail::dist
