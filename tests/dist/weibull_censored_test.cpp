// Right-censored Weibull MLE: the estimator the hazard analysis needs to
// use every node's final failure-free interval without bias.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/weibull.hpp"

namespace hpcfail::dist {
namespace {

struct CensoredSample {
  std::vector<double> events;
  std::vector<double> censored;
};

// Draws from `truth` with Type-I censoring at `horizon`.
CensoredSample draw_censored(const Weibull& truth, double horizon,
                             std::size_t n, std::uint64_t seed) {
  hpcfail::Rng rng(seed);
  CensoredSample sample;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = truth.sample(rng);
    if (x < horizon) {
      sample.events.push_back(x);
    } else {
      sample.censored.push_back(horizon);
    }
  }
  return sample;
}

TEST(WeibullCensored, MatchesUncensoredFitWhenNothingIsCensored) {
  const Weibull truth(0.75, 1000.0);
  hpcfail::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(truth.sample(rng));
  const Weibull plain = Weibull::fit_mle(xs);
  const Weibull censored = Weibull::fit_mle_censored(xs, {});
  EXPECT_NEAR(censored.shape(), plain.shape(), 1e-9);
  EXPECT_NEAR(censored.scale(), plain.scale(), 1e-6 * plain.scale());
}

TEST(WeibullCensored, RecoversTruthUnderHeavyCensoring) {
  // Censor at the ~60th percentile: 40% of observations are cut off.
  const Weibull truth(0.7, 1000.0);
  const double horizon = truth.quantile(0.6);
  const CensoredSample sample = draw_censored(truth, horizon, 20000, 7);
  ASSERT_GT(sample.censored.size(), 6000u);
  const Weibull fit =
      Weibull::fit_mle_censored(sample.events, sample.censored);
  EXPECT_NEAR(fit.shape(), 0.7, 0.03);
  EXPECT_NEAR(fit.scale() / 1000.0, 1.0, 0.06);
}

TEST(WeibullCensored, NaiveFitIsBiasedCensoredFitIsNot) {
  // The point of the estimator: dropping (or truncating into events) the
  // censored intervals biases both parameters; the censored MLE fixes it.
  const Weibull truth(0.8, 500.0);
  const double horizon = truth.quantile(0.5);
  const CensoredSample sample = draw_censored(truth, horizon, 20000, 11);
  const Weibull naive = Weibull::fit_mle(sample.events);
  const Weibull proper =
      Weibull::fit_mle_censored(sample.events, sample.censored);
  // Naive scale collapses toward the censoring horizon.
  EXPECT_LT(naive.scale(), 0.8 * 500.0);
  EXPECT_NEAR(proper.scale() / 500.0, 1.0, 0.1);
  EXPECT_LT(std::fabs(proper.shape() - 0.8),
            std::fabs(naive.shape() - 0.8) + 0.05);
}

TEST(WeibullCensored, WorksAcrossShapeRegimes) {
  for (const double shape : {0.6, 1.0, 1.7}) {
    const Weibull truth(shape, 2000.0);
    const double horizon = truth.quantile(0.7);
    const CensoredSample sample =
        draw_censored(truth, horizon, 15000, 13);
    const Weibull fit =
        Weibull::fit_mle_censored(sample.events, sample.censored);
    EXPECT_NEAR(fit.shape() / shape, 1.0, 0.06) << "shape " << shape;
  }
}

TEST(WeibullCensored, ValidatesInput) {
  const std::vector<double> one_event = {5.0};
  const std::vector<double> censored = {10.0, 20.0};
  EXPECT_THROW(Weibull::fit_mle_censored(one_event, censored),
               hpcfail::InvalidArgument);
  const std::vector<double> constant = {3.0, 3.0};
  EXPECT_THROW(Weibull::fit_mle_censored(constant, {}),
               hpcfail::FitError);
  const std::vector<double> negative = {3.0, -1.0};
  EXPECT_THROW(Weibull::fit_mle_censored(negative, censored),
               hpcfail::InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::dist
