// Model-comparison tests: fit_report must rank the true family first (or
// tied) on synthetic data, reproducing the paper's methodology of MLE +
// negative log-likelihood selection.
#include "dist/fit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"

namespace hpcfail::dist {
namespace {

std::vector<double> draw(const Distribution& d, std::size_t n,
                         std::uint64_t seed) {
  hpcfail::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(d.sample(rng));
  return xs;
}

TEST(FitReport, SelectsWeibullForWeibullData) {
  // The paper's TBF regime: shape 0.7 on second-scale gaps.
  const Weibull truth(0.7, 90000.0);
  const auto xs = draw(truth, 10000, 101);
  const auto results = fit_report(xs, standard_families());
  EXPECT_EQ(results.front().family, Family::weibull);
  // Exponential must be clearly worse (the paper's headline negative).
  const auto& worst = results.back();
  EXPECT_EQ(worst.family, Family::exponential);
}

TEST(FitReport, SelectsLognormalForLognormalData) {
  const LogNormal truth(4.0, 2.0);  // repair-time regime
  const auto xs = draw(truth, 10000, 103);
  const auto results = fit_report(xs, standard_families());
  EXPECT_EQ(results.front().family, Family::lognormal);
}

TEST(FitReport, ExponentialDataIsNotMisrankedBadly) {
  // On truly exponential data the exponential should be within a
  // whisker of the best (Weibull/gamma nest it, so exact ordering can
  // tie); assert the negLL gap is negligible per observation.
  const Exponential truth(1.0 / 3600.0);
  const auto xs = draw(truth, 10000, 107);
  const auto results = fit_report(xs, standard_families());
  double exp_nll = 0.0;
  for (const auto& r : results) {
    if (r.family == Family::exponential) exp_nll = r.nll;
  }
  const double best_nll = results.front().nll;
  EXPECT_LT((exp_nll - best_nll) / static_cast<double>(xs.size()), 1e-3);
}

TEST(FitReport, ResultsAreSortedByNegLogLikelihood) {
  const Weibull truth(0.9, 100.0);
  const auto xs = draw(truth, 2000, 109);
  const auto results = fit_report(xs, standard_families());
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].nll,
              results[i].nll);
  }
}

TEST(FitReport, AicPenalizesParameterCount) {
  const Exponential truth(0.5);
  const auto xs = draw(truth, 500, 113);
  for (const auto& r : fit_report(xs, standard_families())) {
    EXPECT_NEAR(r.aic,
                2.0 * parameter_count(r.family) + 2.0 * r.nll,
                1e-9);
  }
}

TEST(FitReport, KsFieldsPopulated) {
  const Weibull truth(0.8, 50.0);
  const auto xs = draw(truth, 3000, 127);
  for (const auto& r : fit_report(xs, standard_families())) {
    EXPECT_GT(r.ks, 0.0);
    EXPECT_LE(r.ks, 1.0);
    EXPECT_GE(r.ks_pvalue, 0.0);
    EXPECT_LE(r.ks_pvalue, 1.0);
  }
}

TEST(FitReport, BestFitHasHighestKsPvalueAmongContenders) {
  const LogNormal truth(2.0, 1.5);
  const auto xs = draw(truth, 5000, 131);
  const auto results = fit_report(xs, standard_families());
  const auto& best = results.front();
  const auto& worst = results.back();
  EXPECT_GT(best.ks_pvalue, worst.ks_pvalue);
}

TEST(FitReport, SkipsFamiliesThatCannotFit) {
  // A constant positive sample: exponential and poisson-free families
  // with closed forms still fit, two-parameter families throw and are
  // skipped.
  const std::vector<double> xs = {5.0, 5.0, 5.0, 5.0};
  const auto results = fit_report(xs, standard_families());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.front().family, Family::exponential);
}

TEST(FitReport, ThrowsWhenNothingFits) {
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  // Every positive-support family floors to a constant sample and
  // throws; normal throws on zero variance.
  const Family families[] = {Family::weibull, Family::gamma,
                             Family::lognormal, Family::normal};
  // FitError derives from NumericError, so both handlers work.
  EXPECT_THROW(fit_report(zeros, families), FitError);
  EXPECT_THROW(fit_report(zeros, families), NumericError);
}

TEST(FitReport, RecordsSampleAndFailureMetadata) {
  const std::vector<double> xs = {5.0, 5.0, 5.0, 5.0};
  const FitReport report = fit_report(xs, standard_families());
  EXPECT_EQ(report.sample_size, xs.size());
  // Exponential is closed-form; weibull/gamma/lognormal throw on the
  // constant sample.
  EXPECT_EQ(report.failed_families, 3u);
  EXPECT_EQ(report.size(), 1u);
  EXPECT_FALSE(report.empty());
  EXPECT_EQ(&report.best(), &report.front());
  EXPECT_EQ(&report[0], &report.front());
}

TEST(FitReport, CountsSolverIterationsForIterativeFamilies) {
  const Weibull truth(0.7, 90000.0);
  const auto xs = draw(truth, 2000, 211);
  const FitReport report = fit_report(xs, standard_families());
  // The Weibull shape MLE is a 1-d root find: it must have iterated.
  std::uint64_t weibull_iters = 0;
  std::uint64_t exponential_iters = 1;
  for (const auto& r : report) {
    if (r.family == Family::weibull) weibull_iters = r.iterations;
    if (r.family == Family::exponential) exponential_iters = r.iterations;
  }
  EXPECT_GT(weibull_iters, 0u);
  EXPECT_EQ(exponential_iters, 0u);  // closed form, no solver
  EXPECT_GE(report.total_iterations, weibull_iters);
}

TEST(FitReportMany, EmptyAndDegenerateSamplesYieldEmptyReports) {
  const Weibull truth(0.8, 100.0);
  const std::vector<std::vector<double>> samples = {
      draw(truth, 500, 223), {}, {0.0, 0.0, 0.0}};
  const Family families[] = {Family::weibull, Family::gamma};
  const auto reports = fit_report_many(samples, families, 1e-9);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_FALSE(reports[0].empty());
  EXPECT_TRUE(reports[1].empty());
  EXPECT_TRUE(reports[2].empty());
  EXPECT_EQ(reports[2].failed_families, 2u);
}

TEST(Fit, RejectsEmptySample) {
  EXPECT_THROW(fit(Family::weibull, std::vector<double>{}),
               InvalidArgument);
}

TEST(BestStandardFit, ReturnsLowestNll) {
  const Weibull truth(0.75, 7200.0);
  const auto xs = draw(truth, 5000, 137);
  const FitResult best = best_standard_fit(xs);
  EXPECT_EQ(best.family, Family::weibull);
  ASSERT_NE(best.model, nullptr);
}

TEST(FitResult, CopyIsDeep) {
  const Weibull truth(0.75, 7200.0);
  const auto xs = draw(truth, 500, 139);
  const FitResult a = fit(Family::weibull, xs);
  FitResult b = a;  // copy
  EXPECT_NE(a.model.get(), b.model.get());
  EXPECT_EQ(a.model->describe(), b.model->describe());
  EXPECT_DOUBLE_EQ(a.nll, b.nll);
}

TEST(FamilyNames, RoundTrip) {
  EXPECT_EQ(to_string(Family::exponential), "exponential");
  EXPECT_EQ(to_string(Family::weibull), "weibull");
  EXPECT_EQ(to_string(Family::gamma), "gamma");
  EXPECT_EQ(to_string(Family::lognormal), "lognormal");
  EXPECT_EQ(to_string(Family::normal), "normal");
  EXPECT_EQ(to_string(Family::poisson), "poisson");
  EXPECT_EQ(to_string(Family::pareto), "pareto");
  EXPECT_EQ(to_string(Family::hyperexp), "hyperexp");
}

TEST(Families, AllFamiliesCoversTheEnumInOrder) {
  const auto all = all_families();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all.front(), Family::exponential);
  EXPECT_EQ(all.back(), Family::hyperexp);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(static_cast<int>(all[i - 1]), static_cast<int>(all[i]));
  }
}

TEST(Fit, ConstantSampleThrowsTypedFitErrorPerFamily) {
  // Regression: a constant-valued sample used to spin two-parameter
  // solvers to their iteration cap; now every family that cannot
  // represent zero variance rejects it immediately with FitError.
  const std::vector<double> xs = {7.5, 7.5, 7.5, 7.5, 7.5, 7.5, 7.5, 7.5};
  for (const Family family :
       {Family::weibull, Family::gamma, Family::lognormal, Family::normal,
        Family::pareto, Family::hyperexp}) {
    EXPECT_THROW(fit(family, xs), FitError) << to_string(family);
  }
  // The closed-form rate/count families still fit a constant sample.
  EXPECT_NO_THROW(fit(Family::exponential, xs));
}

TEST(FitReport, ConstantSampleLandsInFailedFamiliesNotIterations) {
  const std::vector<double> xs(32, 7.5);
  const FitReport report = fit_report(xs, all_families());
  // exponential and poisson fit; the six variance-requiring families
  // are counted as failed instead of burning solver iterations.
  EXPECT_EQ(report.failed_families, 6u);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report.total_iterations, 0u);
}

}  // namespace
}  // namespace hpcfail::dist
