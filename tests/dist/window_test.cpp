// Streaming-accumulator oracles: SuffStats::add/merge against the batch
// compute() pass, SlidingSuffStats windows against brute-force rescans,
// and fit_report_from_stats against the rescanning fit_report. Lives in
// the calibration tier with the other differential oracles.
#include "dist/window.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "dist/fit.hpp"
#include "dist/suffstats.hpp"

namespace hpcfail::dist {
namespace {

std::vector<double> lognormal_sample(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::lognormal_distribution<double> d(2.0, 1.2);
  std::vector<double> xs(n);
  for (double& x : xs) x = d(rng);
  return xs;
}

TEST(SuffStatsStreaming, AddIsBitIdenticalToCompute) {
  const std::vector<double> xs = lognormal_sample(500, 7);
  const double floor = 0.5;
  const SuffStats batch = SuffStats::compute(xs, floor);
  SuffStats streamed;
  streamed.floor_at = floor;
  for (const double x : xs) streamed.add(x);
  EXPECT_EQ(streamed.n, batch.n);
  EXPECT_EQ(streamed.sum_raw, batch.sum_raw);
  EXPECT_EQ(streamed.sum, batch.sum);
  EXPECT_EQ(streamed.sum_sq, batch.sum_sq);
  EXPECT_EQ(streamed.sum_log, batch.sum_log);
  EXPECT_EQ(streamed.sum_log_sq, batch.sum_log_sq);
  EXPECT_EQ(streamed.min, batch.min);
  EXPECT_EQ(streamed.max, batch.max);
}

TEST(SuffStatsStreaming, MergeMatchesConcatenationToFloatNoise) {
  const std::vector<double> xs = lognormal_sample(800, 13);
  const SuffStats whole = SuffStats::compute(xs, 1e-9);
  SuffStats left = SuffStats::compute(
      std::vector<double>(xs.begin(), xs.begin() + 300), 1e-9);
  const SuffStats right = SuffStats::compute(
      std::vector<double>(xs.begin() + 300, xs.end()), 1e-9);
  left.merge(right);
  EXPECT_EQ(left.n, whole.n);
  EXPECT_NEAR(left.sum, whole.sum, 1e-9 * std::abs(whole.sum));
  EXPECT_NEAR(left.sum_log, whole.sum_log, 1e-9 * std::abs(whole.sum_log));
  EXPECT_NEAR(left.sum_sq, whole.sum_sq, 1e-9 * std::abs(whole.sum_sq));
  EXPECT_EQ(left.min, whole.min);
  EXPECT_EQ(left.max, whole.max);
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9 * whole.mean());
  EXPECT_NEAR(left.cv_squared(), whole.cv_squared(), 1e-6);
}

TEST(SuffStatsStreaming, MergeRejectsFloorMismatch) {
  SuffStats a;
  a.floor_at = 1.0;
  a.add(2.0);
  SuffStats b;
  b.floor_at = 2.0;
  b.add(3.0);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  // Merging an empty accumulator is a no-op regardless of floor.
  SuffStats empty;
  empty.floor_at = 123.0;
  EXPECT_NO_THROW(a.merge(empty));
  EXPECT_EQ(a.n, 1u);
}

// One synthetic event stream shared by the sliding-window oracles.
struct Event {
  Seconds at;
  double value;
};

std::vector<Event> event_stream(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Seconds> gap(1, 7200);
  std::lognormal_distribution<double> value(3.0, 1.5);
  std::vector<Event> events;
  Seconds at = to_epoch(2004, 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    at += gap(rng);
    events.push_back({at, value(rng)});
  }
  return events;
}

/// Brute-force reference with the documented bucket semantics: the
/// window covers every event whose *bucket* intersects [now - w, now].
SuffStats brute_force_window(const std::vector<Event>& events, Seconds now,
                             Seconds window, Seconds bucket,
                             double floor_at) {
  const auto bucket_index = [bucket](Seconds at) {
    Seconds q = at / bucket;
    if (at % bucket != 0 && at < 0) --q;
    return q;
  };
  const Seconds lo = bucket_index(now - window);
  const Seconds hi = bucket_index(now);
  std::vector<double> xs;
  for (const Event& e : events) {
    const Seconds idx = bucket_index(e.at);
    if (idx >= lo && idx <= hi) xs.push_back(e.value);
  }
  SuffStats out;
  out.floor_at = floor_at;
  if (!xs.empty()) out = SuffStats::compute(xs, floor_at);
  return out;
}

TEST(SlidingSuffStats, WindowMatchesBruteForceRescan) {
  const std::vector<Event> events = event_stream(2000, 17);
  SlidingSuffStats::Options opts;
  opts.bucket_seconds = kSecondsPerHour;
  opts.max_buckets = 100000;  // retain everything: pure window semantics
  opts.floor_at = 1e-9;
  SlidingSuffStats sliding(opts);
  for (const Event& e : events) sliding.add(e.at, e.value);

  const Seconds now = sliding.latest_at();
  for (const Seconds window :
       {Seconds{1}, kSecondsPerHour, 24 * kSecondsPerHour,
        24 * 7 * kSecondsPerHour, 24 * 365 * kSecondsPerHour}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    const SuffStats got = sliding.window_stats(now, window);
    const SuffStats want = brute_force_window(events, now, window,
                                              opts.bucket_seconds,
                                              opts.floor_at);
    EXPECT_EQ(got.n, want.n);
    if (want.n == 0) continue;
    EXPECT_NEAR(got.sum, want.sum, 1e-9 * std::abs(want.sum));
    EXPECT_NEAR(got.sum_log, want.sum_log,
                1e-9 * std::abs(want.sum_log) + 1e-12);
    EXPECT_EQ(got.min, want.min);
    EXPECT_EQ(got.max, want.max);
  }
  // The widest window covers the whole stream.
  EXPECT_EQ(
      sliding.window_stats(now, 24 * 365 * kSecondsPerHour).n,
      events.size());
}

TEST(SlidingSuffStats, MidStreamWindowsMatchTotalUpToNow) {
  // Windows queried while events keep arriving (the daemon's real mode).
  const std::vector<Event> events = event_stream(1000, 29);
  SlidingSuffStats sliding;
  std::vector<Event> seen;
  for (std::size_t i = 0; i < events.size(); ++i) {
    sliding.add(events[i].at, events[i].value);
    seen.push_back(events[i]);
    if (i % 97 != 0) continue;
    const Seconds now = sliding.latest_at();
    const Seconds window = 24 * kSecondsPerHour;
    const SuffStats got = sliding.window_stats(now, window);
    const SuffStats want = brute_force_window(
        seen, now, window, kSecondsPerHour, sliding.options().floor_at);
    ASSERT_EQ(got.n, want.n) << "after event " << i;
  }
}

TEST(SlidingSuffStats, EvictsOldBucketsAndCountsDrops) {
  SlidingSuffStats::Options opts;
  opts.bucket_seconds = 60;
  opts.max_buckets = 3;
  SlidingSuffStats sliding(opts);
  for (int i = 0; i < 10; ++i) {
    sliding.add(static_cast<Seconds>(i) * 60, 1.0);
  }
  EXPECT_EQ(sliding.bucket_count(), 3u);
  EXPECT_EQ(sliding.dropped(), 7u);
  EXPECT_EQ(sliding.size(), 3u);
  // A stale arrival older than the retained range is dropped, not added.
  sliding.add(0, 1.0);
  EXPECT_EQ(sliding.dropped(), 8u);
  EXPECT_EQ(sliding.size(), 3u);
}

TEST(SlidingSuffStats, EvictBeforeMergesExactlyTheBucketsBelowTheHorizon) {
  SlidingSuffStats::Options opts;
  opts.bucket_seconds = 60;
  SlidingSuffStats sliding(opts);
  for (int i = 0; i < 10; ++i) {
    sliding.add(static_cast<Seconds>(i) * 60, static_cast<double>(i + 1));
  }
  ASSERT_EQ(sliding.size(), 10u);

  // Horizon lands mid-bucket 4: buckets 0..3 go, bucket 4 onward stays.
  const SuffStats evicted = sliding.evict_before(4 * 60 + 30);
  EXPECT_EQ(evicted.n, 4u);
  EXPECT_DOUBLE_EQ(evicted.sum_raw, 1.0 + 2.0 + 3.0 + 4.0);
  EXPECT_EQ(sliding.size(), 6u);
  EXPECT_EQ(sliding.bucket_count(), 6u);
  EXPECT_EQ(sliding.dropped(), 4u);

  // The remaining window still answers queries over the surviving buckets.
  const SuffStats rest = sliding.total_stats();
  EXPECT_EQ(rest.n, 6u);
  EXPECT_DOUBLE_EQ(rest.sum_raw, 5.0 + 6.0 + 7.0 + 8.0 + 9.0 + 10.0);
}

TEST(SlidingSuffStats, EventOnTheEvictionBoundaryIsDroppedNotResurrected) {
  SlidingSuffStats::Options opts;
  opts.bucket_seconds = 100;
  SlidingSuffStats sliding(opts);
  sliding.add(0, 1.0);
  sliding.add(500, 1.0);
  const SuffStats evicted = sliding.evict_before(500);  // bucket 0..4 go
  EXPECT_EQ(evicted.n, 1u);
  ASSERT_EQ(sliding.size(), 1u);

  // A late arrival landing on an evicted bucket's index must be counted in
  // dropped() and must never reopen that bucket.
  const std::uint64_t dropped_before = sliding.dropped();
  sliding.add(499, 7.0);  // bucket 4: strictly below the horizon bucket
  EXPECT_EQ(sliding.dropped(), dropped_before + 1);
  EXPECT_EQ(sliding.size(), 1u);
  EXPECT_EQ(sliding.total_stats().n, 1u);

  // Exactly at the horizon bucket is still live.
  sliding.add(501, 2.0);
  EXPECT_EQ(sliding.size(), 2u);
}

TEST(SlidingSuffStats, EvictionFloorSurvivesAnEmptiedWindow) {
  SlidingSuffStats::Options opts;
  opts.bucket_seconds = 60;
  SlidingSuffStats sliding(opts);
  sliding.add(0, 1.0);
  sliding.add(60, 1.0);
  const SuffStats evicted = sliding.evict_before(10'000);  // evicts everything
  EXPECT_EQ(evicted.n, 2u);
  EXPECT_EQ(sliding.size(), 0u);
  EXPECT_EQ(sliding.bucket_count(), 0u);

  // With no buckets left there is no front-index guard: only the remembered
  // floor can block resurrection of the evicted range.
  sliding.add(120, 5.0);
  EXPECT_EQ(sliding.size(), 0u);
  EXPECT_EQ(sliding.dropped(), 3u);
  sliding.add(10'020, 5.0);  // at/after the horizon bucket: accepted
  EXPECT_EQ(sliding.size(), 1u);
}

TEST(SlidingSuffStats, EvictBeforeMatchesAnEventListModel) {
  SlidingSuffStats::Options opts;
  opts.bucket_seconds = kSecondsPerHour;
  SlidingSuffStats sliding(opts);
  const auto bucket_index = [&](Seconds at) { return at / opts.bucket_seconds; };

  std::mt19937 rng(99);
  std::vector<Event> events = event_stream(600, 23);
  std::vector<Event> live;  // the model: events not yet evicted/dropped
  std::uint64_t model_dropped = 0;
  std::uint64_t model_evicted = 0;
  std::int64_t model_floor = std::numeric_limits<std::int64_t>::min();
  const auto front_index = [&] {
    std::int64_t front = std::numeric_limits<std::int64_t>::max();
    for (const Event& ev : live) front = std::min(front, bucket_index(ev.at));
    return front;
  };

  std::uniform_int_distribution<int> action(0, 19);
  std::uniform_int_distribution<std::size_t> pick(0, events.size() - 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Mostly in-order arrivals, occasionally a random (possibly stale) event,
    // occasionally a compaction cut at a previously seen timestamp.
    Event e = events[i];
    const int roll = action(rng);
    if (roll < 3) e = events[pick(rng)];
    const std::int64_t idx = bucket_index(e.at);
    sliding.add(e.at, e.value);
    // The documented drop rule: below the eviction floor, or staler than
    // every retained bucket.
    if (idx < model_floor || (!live.empty() && idx < front_index())) {
      ++model_dropped;
    } else {
      live.push_back(e);
    }

    if (roll == 19) {
      const Seconds horizon = events[pick(rng)].at;
      const SuffStats evicted = sliding.evict_before(horizon);
      model_floor = std::max(model_floor, bucket_index(horizon));
      std::vector<Event> survivors;
      std::uint64_t cut = 0;
      for (const Event& ev : live) {
        if (bucket_index(ev.at) < bucket_index(horizon)) {
          ++cut;
        } else {
          survivors.push_back(ev);
        }
      }
      live.swap(survivors);
      model_evicted += cut;
      ASSERT_EQ(evicted.n, cut) << "evict at step " << i;
    }
    ASSERT_EQ(sliding.size(), live.size()) << "after step " << i;
    ASSERT_EQ(sliding.dropped(), model_dropped + model_evicted)
        << "after step " << i;
    ASSERT_EQ(sliding.total_stats().n, live.size()) << "after step " << i;
  }
  EXPECT_GT(model_evicted, 0u);
  EXPECT_GT(model_dropped, 0u);
}

TEST(StreamingFits, MatchRescanningFitReport) {
  const std::vector<double> xs = lognormal_sample(1500, 41);
  const double floor = 1e-9;
  const SuffStats stats = SuffStats::compute(xs, floor);

  const FitReport streaming = fit_report_from_stats(stats);
  const FitReport rescan = fit_report(xs, streamable_families(), floor);

  ASSERT_EQ(streaming.size(), rescan.size());
  EXPECT_EQ(streaming.sample_size, rescan.sample_size);
  for (std::size_t i = 0; i < streaming.size(); ++i) {
    EXPECT_EQ(streaming[i].family, rescan[i].family) << "rank " << i;
    EXPECT_NEAR(streaming[i].nll, rescan[i].nll,
                1e-6 * std::abs(rescan[i].nll))
        << to_string(streaming[i].family);
    EXPECT_NEAR(streaming[i].aic, rescan[i].aic,
                1e-6 * std::abs(rescan[i].aic));
    EXPECT_NEAR(streaming[i].model->mean(), rescan[i].model->mean(),
                1e-6 * std::abs(rescan[i].model->mean()));
  }
}

TEST(StreamingFits, DegenerateStatsThrowOrShrink) {
  EXPECT_THROW(fit_report_from_stats(SuffStats{}), FitError);
  // A constant sample: exponential still fits, the two-parameter
  // families are degenerate and must be counted, not crash.
  SuffStats constant;
  constant.floor_at = 1e-9;
  for (int i = 0; i < 10; ++i) constant.add(5.0);
  const FitReport report = fit_report_from_stats(constant);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.best().family, Family::exponential);
  EXPECT_EQ(report.failed_families, 2u);
}

}  // namespace
}  // namespace hpcfail::dist
