#include "dist/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::dist {
namespace {

TEST(Normal, Moments) {
  const Normal d(10.0, 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 10.0);
  EXPECT_DOUBLE_EQ(d.variance(), 9.0);
}

TEST(Normal, StandardCdfValues) {
  const Normal d(0.0, 1.0);
  EXPECT_NEAR(d.cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(d.cdf(1.96), 0.9750021048517795, 1e-10);
  EXPECT_NEAR(d.cdf(-3.0), 0.0013498980316300933, 1e-12);
}

TEST(Normal, LocationScaleShift) {
  const Normal d(100.0, 15.0);
  const Normal std_normal(0.0, 1.0);
  EXPECT_NEAR(d.cdf(115.0), std_normal.cdf(1.0), 1e-14);
  EXPECT_NEAR(d.quantile(0.25), 100.0 + 15.0 * std_normal.quantile(0.25),
              1e-10);
}

TEST(Normal, QuantileInvertsCdf) {
  const Normal d(-5.0, 2.0);
  for (const double p : {0.001, 0.5, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(Normal, SampleMomentsMatch) {
  const Normal d(42.0, 7.0);
  hpcfail::Rng rng(47);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = d.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 42.0, 0.1);
  EXPECT_NEAR(sum_sq / kDraws - mean * mean, 49.0, 1.0);
}

TEST(Normal, FitRecoversParameters) {
  const Normal truth(121.0, 35.0);  // failures-per-node-like counts
  hpcfail::Rng rng(53);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const Normal fit = Normal::fit_mle(xs);
  EXPECT_NEAR(fit.mu(), truth.mu(), 1.0);
  EXPECT_NEAR(fit.sigma(), truth.sigma(), 1.0);
}

TEST(Normal, FitRejectsDegenerateSamples) {
  EXPECT_THROW(Normal::fit_mle(std::vector<double>{1.0}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(Normal::fit_mle(std::vector<double>{2.0, 2.0}),
               hpcfail::FitError);
}

TEST(Normal, RejectsBadParameters) {
  EXPECT_THROW(Normal(0.0, 0.0), hpcfail::InvalidArgument);
  EXPECT_THROW(Normal(0.0, -1.0), hpcfail::InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::dist
