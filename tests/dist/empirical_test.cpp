#include "dist/empirical.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/lognormal.hpp"

namespace hpcfail::dist {
namespace {

TEST(Empirical, MomentsMatchSample) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Empirical d(xs);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_NEAR(d.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(d.size(), 8u);
}

TEST(Empirical, CdfIsExactEcdf) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Empirical d(xs);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
}

TEST(Empirical, QuantileMatchesEcdf) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  const Empirical d(xs);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.26), 20.0);
  EXPECT_THROW(d.quantile(0.0), hpcfail::InvalidArgument);
}

TEST(Empirical, SampleOnlyProducesObservedValues) {
  const std::vector<double> xs = {1.0, 5.0, 9.0};
  const Empirical d(xs);
  hpcfail::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 5.0 || x == 9.0);
  }
}

TEST(Empirical, ResamplingReproducesMean) {
  const dist::LogNormal truth(2.0, 1.0);
  hpcfail::Rng data_rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(truth.sample(data_rng));
  const Empirical d(xs);
  hpcfail::Rng rng(7);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kDraws / d.mean(), 1.0, 0.03);
}

TEST(Empirical, LogPdfIsFiniteAndDensityIntegratesToOne) {
  const std::vector<double> xs = {1.0, 2.0, 2.5, 3.0, 4.0, 4.2, 5.0};
  const Empirical d(xs, /*density_bins=*/4);
  // Density over the 4 bins integrates to 1.
  const double width = (5.0 - 1.0) / 4.0;
  double integral = 0.0;
  for (int b = 0; b < 4; ++b) {
    integral += d.pdf(1.0 + (b + 0.5) * width) * width;
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
  // Outside the range the density floors but stays finite in log space.
  EXPECT_TRUE(std::isfinite(d.log_pdf(100.0)));
}

TEST(Empirical, HandlesConstantSample) {
  const std::vector<double> xs = {7.0, 7.0, 7.0};
  const Empirical d(xs);
  EXPECT_DOUBLE_EQ(d.mean(), 7.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  hpcfail::Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 7.0);
}

TEST(Empirical, RejectsEmptySample) {
  EXPECT_THROW(Empirical(std::vector<double>{}), hpcfail::InvalidArgument);
}

TEST(Empirical, CloneAndDescribe) {
  const std::vector<double> xs = {1.0, 2.0};
  const Empirical d(xs);
  EXPECT_EQ(d.name(), "empirical");
  EXPECT_EQ(d.describe(), "empirical(n=2)");
  const auto copy = d.clone();
  EXPECT_DOUBLE_EQ(copy->mean(), d.mean());
}

}  // namespace
}  // namespace hpcfail::dist
