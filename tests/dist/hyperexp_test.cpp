#include "dist/hyperexp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/exponential.hpp"
#include "dist/fit.hpp"

namespace hpcfail::dist {
namespace {

TEST(HyperExp, MomentFormulas) {
  const HyperExp d(0.5, 2.0, 0.5);
  EXPECT_NEAR(d.mean(), 0.5 / 2.0 + 0.5 / 0.5, 1e-12);
  // Second moment 2(p/r1^2 + q/r2^2) = 2(0.125 + 2) = 4.25.
  EXPECT_NEAR(d.variance(), 4.25 - d.mean() * d.mean(), 1e-12);
  // H2 is always at least as variable as an exponential.
  EXPECT_GE(d.cv_squared(), 1.0 - 1e-12);
}

TEST(HyperExp, ReducesToExponentialWhenRatesEqual) {
  const HyperExp h(0.3, 1.5, 1.5);
  const Exponential e(1.5);
  for (const double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(h.cdf(x), e.cdf(x), 1e-12);
    EXPECT_NEAR(h.pdf(x), e.pdf(x), 1e-12);
  }
}

TEST(HyperExp, CdfQuantileRoundTrip) {
  const HyperExp d(0.7, 5.0, 0.1);
  for (const double p : {0.01, 0.3, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-9) << "p = " << p;
  }
}

TEST(HyperExp, SampleMomentsMatch) {
  const HyperExp d(0.6, 3.0, 0.2);
  hpcfail::Rng rng(17);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kDraws / d.mean(), 1.0, 0.02);
}

TEST(HyperExp, EmRecoversParameters) {
  const HyperExp truth(0.65, 1.0 / 600.0, 1.0 / 86400.0);
  hpcfail::Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) xs.push_back(truth.sample(rng));
  const HyperExp fit = HyperExp::fit_em(xs);
  EXPECT_NEAR(fit.weight(), 0.65, 0.05);
  EXPECT_NEAR(fit.rate1() / truth.rate1(), 1.0, 0.1);
  EXPECT_NEAR(fit.rate2() / truth.rate2(), 1.0, 0.1);
  EXPECT_NEAR(fit.mean() / truth.mean(), 1.0, 0.05);
}

TEST(HyperExp, EmImprovesOnSingleExponentialForBimodalData) {
  const HyperExp truth(0.5, 10.0, 0.1);
  hpcfail::Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(truth.sample(rng));
  const HyperExp h2 = HyperExp::fit_em(xs);
  const Exponential e1 = Exponential::fit_mle(xs);
  EXPECT_GT(h2.log_likelihood(xs), e1.log_likelihood(xs) + 100.0);
}

TEST(HyperExp, EmNeverBeatsItselfAfterRefit) {
  // Fitting data drawn from the fit must not lose likelihood vs truth.
  const HyperExp truth(0.4, 2.0, 0.05);
  hpcfail::Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(truth.sample(rng));
  const HyperExp fit = HyperExp::fit_em(xs);
  EXPECT_GE(fit.log_likelihood(xs), truth.log_likelihood(xs) - 5.0);
}

TEST(HyperExp, CanonicalPhaseOrder) {
  hpcfail::Rng rng(31);
  const HyperExp truth(0.5, 0.01, 5.0);  // phases given slow-first
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(truth.sample(rng));
  const HyperExp fit = HyperExp::fit_em(xs);
  EXPECT_GE(fit.rate1(), fit.rate2());  // fast phase first after fitting
}

TEST(HyperExp, EmRejectsBadSamples) {
  EXPECT_THROW(HyperExp::fit_em(std::vector<double>{1.0, 2.0}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(HyperExp::fit_em(std::vector<double>{3.0, 3.0, 3.0, 3.0}),
               hpcfail::FitError);
  EXPECT_THROW(
      HyperExp::fit_em(std::vector<double>{1.0, 2.0, -1.0, 4.0}),
      hpcfail::InvalidArgument);
}

TEST(HyperExp, RejectsBadParameters) {
  EXPECT_THROW(HyperExp(-0.1, 1.0, 1.0), hpcfail::InvalidArgument);
  EXPECT_THROW(HyperExp(1.1, 1.0, 1.0), hpcfail::InvalidArgument);
  EXPECT_THROW(HyperExp(0.5, 0.0, 1.0), hpcfail::InvalidArgument);
  EXPECT_THROW(HyperExp(0.5, 1.0, -1.0), hpcfail::InvalidArgument);
}

TEST(HyperExp, SupportIsNonNegative) {
  const HyperExp d(0.5, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(-1.0), 0.0);
}

}  // namespace
}  // namespace hpcfail::dist
