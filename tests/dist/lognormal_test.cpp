#include "dist/lognormal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::dist {
namespace {

TEST(LogNormal, MomentFormulas) {
  const LogNormal d(1.0, 0.5);
  EXPECT_NEAR(d.mean(), std::exp(1.125), 1e-12);
  EXPECT_NEAR(d.median(), std::exp(1.0), 1e-12);
  EXPECT_NEAR(d.variance(),
              (std::exp(0.25) - 1.0) * std::exp(2.25), 1e-10);
}

TEST(LogNormal, FromMeanMedianRoundTrips) {
  // Table 2's software row: mean 369, median 33 minutes.
  const LogNormal d = LogNormal::from_mean_median(369.0, 33.0);
  EXPECT_NEAR(d.mean(), 369.0, 1e-9);
  EXPECT_NEAR(d.median(), 33.0, 1e-9);
  // Highly variable, as the paper stresses (C^2 >> 1).
  EXPECT_GT(d.cv_squared(), 50.0);
}

TEST(LogNormal, FromMeanMedianRejectsBadMoments) {
  EXPECT_THROW(LogNormal::from_mean_median(10.0, 10.0),
               hpcfail::InvalidArgument);
  EXPECT_THROW(LogNormal::from_mean_median(5.0, 10.0),
               hpcfail::InvalidArgument);
  EXPECT_THROW(LogNormal::from_mean_median(10.0, 0.0),
               hpcfail::InvalidArgument);
}

TEST(LogNormal, CdfAtMedianIsHalf) {
  const LogNormal d(2.3, 1.7);
  EXPECT_NEAR(d.cdf(d.median()), 0.5, 1e-12);
}

TEST(LogNormal, QuantileInvertsCdf) {
  const LogNormal d(0.0, 1.0);
  for (const double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-10);
  }
}

TEST(LogNormal, SampleMomentsMatch) {
  const LogNormal d(3.0, 0.8);
  hpcfail::Rng rng(41);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kDraws / d.mean(), 1.0, 0.02);
}

TEST(LogNormal, FitRecoversParameters) {
  const LogNormal truth(4.0, 2.2);  // repair-like: heavy tail
  hpcfail::Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const LogNormal fit = LogNormal::fit_mle(xs);
  EXPECT_NEAR(fit.mu(), truth.mu(), 0.05);
  EXPECT_NEAR(fit.sigma(), truth.sigma(), 0.05);
}

TEST(LogNormal, FitRejectsDegenerateSamples) {
  EXPECT_THROW(LogNormal::fit_mle(std::vector<double>{1.0}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(LogNormal::fit_mle(std::vector<double>{2.0, 2.0}),
               hpcfail::FitError);
  EXPECT_THROW(LogNormal::fit_mle(std::vector<double>{1.0, -1.0}),
               hpcfail::InvalidArgument);
}

TEST(LogNormal, RejectsBadParameters) {
  EXPECT_THROW(LogNormal(0.0, 0.0), hpcfail::InvalidArgument);
  EXPECT_THROW(LogNormal(0.0, -1.0), hpcfail::InvalidArgument);
}

TEST(LogNormal, SupportIsPositive) {
  const LogNormal d(0.0, 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(0.0), 0.0);
}

}  // namespace
}  // namespace hpcfail::dist
