#include "dist/gamma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::dist {
namespace {

TEST(GammaDist, Moments) {
  const GammaDist d(3.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 6.0);
  EXPECT_DOUBLE_EQ(d.variance(), 12.0);
  EXPECT_NEAR(d.cv_squared(), 1.0 / 3.0, 1e-12);
}

TEST(GammaDist, ReducesToExponentialAtShapeOne) {
  const GammaDist g(1.0, 4.0);
  EXPECT_NEAR(g.cdf(4.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(g.pdf(0.5), std::exp(-0.125) / 4.0, 1e-12);
}

TEST(GammaDist, ErlangCdfKnownValue) {
  // Erlang(2, 1): F(x) = 1 - e^{-x}(1 + x).
  const GammaDist g(2.0, 1.0);
  for (const double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(g.cdf(x), 1.0 - std::exp(-x) * (1.0 + x), 1e-12);
  }
}

TEST(GammaDist, QuantileInvertsCdf) {
  const GammaDist g(0.8, 1800.0);
  for (const double p : {0.01, 0.3, 0.5, 0.7, 0.99}) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-10) << "p = " << p;
  }
}

TEST(GammaDist, SampleMomentsMatch) {
  hpcfail::Rng rng(3);
  for (const double shape : {0.5, 1.0, 4.0}) {
    const GammaDist g(shape, 2.0);
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
      const double x = g.sample(rng);
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / kDraws;
    const double var = sum_sq / kDraws - mean * mean;
    EXPECT_NEAR(mean / g.mean(), 1.0, 0.03) << "shape = " << shape;
    EXPECT_NEAR(var / g.variance(), 1.0, 0.08) << "shape = " << shape;
  }
}

TEST(GammaDist, FitRecoversParameters) {
  const GammaDist truth(0.65, 5000.0);
  hpcfail::Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const GammaDist fit = GammaDist::fit_mle(xs);
  EXPECT_NEAR(fit.shape(), truth.shape(), 0.03);
  EXPECT_NEAR(fit.mean() / truth.mean(), 1.0, 0.05);
}

TEST(GammaDist, FitRecoversLargeShape) {
  const GammaDist truth(20.0, 1.0);
  hpcfail::Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const GammaDist fit = GammaDist::fit_mle(xs);
  EXPECT_NEAR(fit.shape() / truth.shape(), 1.0, 0.06);
}

TEST(GammaDist, FitRejectsDegenerateSamples) {
  EXPECT_THROW(GammaDist::fit_mle(std::vector<double>{1.0}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(GammaDist::fit_mle(std::vector<double>{3.0, 3.0}),
               hpcfail::FitError);
  EXPECT_THROW(GammaDist::fit_mle(std::vector<double>{1.0, -0.5}),
               hpcfail::InvalidArgument);
}

TEST(GammaDist, RejectsBadParameters) {
  EXPECT_THROW(GammaDist(0.0, 1.0), hpcfail::InvalidArgument);
  EXPECT_THROW(GammaDist(1.0, -2.0), hpcfail::InvalidArgument);
}

TEST(GammaDist, HazardDecreasesForShapeBelowOne) {
  const GammaDist g(0.7, 1000.0);
  EXPECT_GT(g.hazard(10.0), g.hazard(100.0));
  EXPECT_GT(g.hazard(100.0), g.hazard(1000.0));
}

}  // namespace
}  // namespace hpcfail::dist
