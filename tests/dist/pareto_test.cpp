#include "dist/pareto.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::dist {
namespace {

TEST(Pareto, CdfAndPdfKnownValues) {
  const Pareto d(2.0, 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
  EXPECT_NEAR(d.cdf(2.0), 1.0 - 0.25, 1e-12);
  EXPECT_NEAR(d.pdf(2.0), 2.0 / 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.pdf(0.5), 0.0);
}

TEST(Pareto, MomentsAndInfiniteRegimes) {
  const Pareto d(3.0, 2.0);
  EXPECT_NEAR(d.mean(), 3.0, 1e-12);
  EXPECT_NEAR(d.variance(), 4.0 * 3.0 / (4.0 * 1.0), 1e-12);
  EXPECT_TRUE(std::isinf(Pareto(1.0, 1.0).mean()));
  EXPECT_TRUE(std::isinf(Pareto(2.0, 1.0).variance()));
}

TEST(Pareto, QuantileInvertsCdf) {
  const Pareto d(1.5, 60.0);
  for (const double p : {0.01, 0.5, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(Pareto, HazardAlwaysDecreasing) {
  const Pareto d(0.9, 10.0);
  EXPECT_GT(d.hazard(10.0), d.hazard(100.0));
  EXPECT_NEAR(d.hazard(50.0), 0.9 / 50.0, 1e-12);
}

TEST(Pareto, SampleStaysOnSupportWithMatchingMean) {
  const Pareto d(3.5, 5.0);
  hpcfail::Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 5.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws / d.mean(), 1.0, 0.02);
}

TEST(Pareto, FitRecoversAlpha) {
  const Pareto truth(1.3, 30.0);
  hpcfail::Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const Pareto fit = Pareto::fit_mle(xs);
  EXPECT_NEAR(fit.alpha(), 1.3, 0.05);
  EXPECT_NEAR(fit.x_min(), 30.0, 0.5);
}

TEST(Pareto, FitRejectsDegenerateSamples) {
  EXPECT_THROW(Pareto::fit_mle(std::vector<double>{5.0}),
               hpcfail::InvalidArgument);
  EXPECT_THROW(Pareto::fit_mle(std::vector<double>{5.0, 5.0}),
               hpcfail::FitError);
  EXPECT_THROW(Pareto::fit_mle(std::vector<double>{1.0, -1.0}),
               hpcfail::InvalidArgument);
}

TEST(Pareto, RejectsBadParameters) {
  EXPECT_THROW(Pareto(0.0, 1.0), hpcfail::InvalidArgument);
  EXPECT_THROW(Pareto(1.0, 0.0), hpcfail::InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::dist
