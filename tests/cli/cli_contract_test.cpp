// The CLI's exit-code contract, table-driven over every subcommand:
//   0 success, 1 runtime failure (io / validation / fit / ...),
//   2 usage error (unknown command/option, missing required option).
// Each row shells out to the real binary (HPCFAIL_CLI_PATH, injected by
// CMake) and checks the exit code plus the stderr prefix the top-level
// error taxonomy promises.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Runs `hpcfail <args>` with stdout/stderr captured to temp files.
RunResult run_cli(const std::string& args) {
  // Per (process, invocation) name: ctest runs each test in its own
  // process with a shared TempDir, so a bare counter collides.
  static int invocation = 0;
  const std::string stem =
      (std::filesystem::path(::testing::TempDir()) /
       ("cli_run_" + std::to_string(::getpid()) + "_" +
        std::to_string(invocation++)))
          .string();
  const std::string out_path = stem + ".out";
  const std::string err_path = stem + ".err";
  const std::string command = std::string(HPCFAIL_CLI_PATH) + " " + args +
                              " > " + out_path + " 2> " + err_path;
  const int raw = std::system(command.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  result.out = read_file(out_path);
  result.err = read_file(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return result;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

// One row of the contract: a command line, the promised exit code, and
// (for failures) the stderr prefix of the error taxonomy.
struct ContractRow {
  std::string args;
  int exit_code;
  std::string err_prefix;  // empty = don't care
};

const std::vector<std::string>& all_subcommands() {
  static const std::vector<std::string> kNames = {
      "generate", "catalog",      "validate", "fit",      "repair", "report",
      "availability", "profile",  "campaign", "serve",    "replay",
      "compare"};
  return kNames;
}

TEST(CliContract, SubcommandTableMatchesHelpOutput) {
  // Keeps all_subcommands() honest: a new subcommand must be added to
  // this contract suite or this test fails.
  const auto help = run_cli("help");
  EXPECT_EQ(help.exit_code, 0);  // global usage, on stdout
  for (const auto& name : all_subcommands()) {
    EXPECT_NE(help.out.find("  " + name), std::string::npos)
        << "usage does not list " << name;
  }
  // And nothing extra: count the command lines between "commands:" and
  // the blank line that follows the list.
  const auto begin = help.out.find("commands:");
  ASSERT_NE(begin, std::string::npos);
  const auto end = help.out.find("\n\n", begin);
  ASSERT_NE(end, std::string::npos);
  std::size_t listed = 0;
  for (std::size_t pos = begin; pos < end;
       pos = help.out.find('\n', pos + 1)) {
    if (help.out.compare(pos, 3, "\n  ") == 0) ++listed;
  }
  EXPECT_EQ(listed, all_subcommands().size());
}

TEST(CliContract, EverySubcommandHonoursHelpAndRejectsUnknownOptions) {
  for (const auto& name : all_subcommands()) {
    const auto help = run_cli(name + " --help");
    EXPECT_EQ(help.exit_code, 0) << name;
    EXPECT_NE(help.out.find("usage: hpcfail " + name), std::string::npos)
        << name;

    const auto unknown = run_cli(name + " --definitely-not-an-option 1");
    EXPECT_EQ(unknown.exit_code, 2) << name;
    EXPECT_TRUE(starts_with(unknown.err, "parse error:")) << name << ": "
                                                          << unknown.err;
  }
}

TEST(CliContract, ExitCodeTable) {
  const std::string missing = "/nonexistent/no_such_trace.csv";
  const std::vector<ContractRow> rows = {
      // usage errors -> 2
      {"", 2, ""},
      {"frobnicate", 2, ""},
      {"generate", 2, "parse error:"},          // missing required --out
      {"validate", 2, "parse error:"},          // missing required --trace
      {"fit", 2, "parse error:"},               // missing required --system
      {"fit --system", 2, "parse error:"},      // option without a value
      {"fit --system notanint", 2, "parse error:"},
      {"repair --seed -3", 2, "parse error:"},  // uint64 cannot be negative
      {"serve --max-events -1", 2, "parse error:"},
      {"replay", 2, "parse error:"},  // missing required --trace/--port
      {"replay --trace " + missing, 2, "parse error:"},  // missing --port
      // --speedup takes a real; rejected at parse time, before any io
      {"replay --trace " + missing + " --port 1 --speedup fast", 2,
       "parse error:"},
      // runtime failures -> 1
      {"serve --ingest-port 70000 --max-events 1", 1, "validation error:"},
      {"serve --host not.an.ip --max-events 1", 1, "validation error:"},
      {"serve --ingest-threads 0 --max-events 1", 1, "validation error:"},
      {"serve --ingest-threads 65 --max-events 1", 1, "validation error:"},
      {"serve --trace " + missing + " --max-events 1", 1, "io error:"},
      {"replay --trace " + missing + " --port 80", 1, "io error:"},
      {"fit --system 20 --trace " + missing, 1, "io error:"},
      {"validate --trace " + missing, 1, "io error:"},
      {"repair --trace " + missing, 1, "io error:"},
      {"report --trace " + missing, 1, "io error:"},
      {"generate --out /nonexistent-dir/sub/trace.csv", 1, "io error:"},
      {"catalog --metrics-out /nonexistent-dir/m.json", 1, "io error:"},
      {"fit --system 20 --seed 1 --threads 0", 1, "validation error:"},
      {"fit --system 999 --seed 1", 1, ""},  // no such system in the trace
      // successes -> 0
      {"--version", 0, ""},
      {"catalog", 0, ""},
  };

  for (const auto& row : rows) {
    const auto result = run_cli(row.args);
    EXPECT_EQ(result.exit_code, row.exit_code)
        << "hpcfail " << row.args << "\nstderr: " << result.err;
    if (!row.err_prefix.empty()) {
      EXPECT_TRUE(starts_with(result.err, row.err_prefix))
          << "hpcfail " << row.args << "\nstderr: " << result.err;
    }
  }
}

TEST(CliContract, MetricsOutUnwritablePathFailsWithIoError) {
  // --metrics-out is a global option: the pipeline runs, then the export
  // fails cleanly with the io taxonomy, not a crash or silent success.
  const auto result = run_cli(
      "catalog --metrics-out /nonexistent-dir/deep/metrics.json "
      "--metrics-format json");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_TRUE(starts_with(result.err, "io error:")) << result.err;
}

TEST(CliContract, MetricsFormatIsValidated) {
  const auto result = run_cli("catalog --metrics-out m.json "
                              "--metrics-format yaml");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_TRUE(starts_with(result.err, "validation error:")) << result.err;
}

TEST(CliContract, ValidateFlagsSuspectTraceWithExitTwo) {
  // A readable trace with a record validate must flag (a system id no
  // LANL catalog entry knows): exit 2 = "issues found", distinct from
  // exit 1 = could not even read the trace.
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "suspect.csv").string();
  {
    std::ofstream out(path);
    out << "system,node,start,end,workload,cause,detail\n";
    out << "99,3,2005-01-02 09:00:00,2005-01-02 10:00:00,compute,hardware,"
           "memory_dimm\n";
  }
  const auto result = run_cli("validate --trace " + path);
  EXPECT_EQ(result.exit_code, 2) << result.err << result.out;
  std::remove(path.c_str());
}

TEST(CliContract, ReplayValidatesOptionsAfterReadingTheTrace) {
  // With a readable trace, bad replay options surface as validation
  // errors (exit 1), distinct from the parse taxonomy.
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "replay_opts.csv")
          .string();
  {
    std::ofstream out(path);
    out << "system,node,start,end,workload,cause,detail\n";
    out << "20,3,2005-01-02 09:00:00,2005-01-02 10:00:00,compute,hardware,"
           "memory_dimm\n";
  }
  for (const std::string bad :
       {std::string("--port 70000"), std::string("--port 1 --speedup -2"),
        std::string("--port 1 --connections 0"),
        std::string("--port 1 --host not.an.ip")}) {
    const auto result = run_cli("replay --trace " + path + " " + bad);
    EXPECT_EQ(result.exit_code, 1) << bad << "\nstderr: " << result.err;
    EXPECT_TRUE(starts_with(result.err, "validation error:"))
        << bad << "\nstderr: " << result.err;
  }
  std::remove(path.c_str());
}

TEST(CliContract, InconsistentTraceRecordIsAParseError) {
  // end < start is rejected while reading the CSV ("parse error: line
  // 2: inconsistent record"), before validate ever runs — a usage-level
  // failure, distinct from validate's own issues-found exit.
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "corrupt.csv").string();
  {
    std::ofstream out(path);
    out << "system,node,start,end,workload,cause,detail\n";
    out << "20,3,2005-01-02 10:00:00,2005-01-02 09:00:00,compute,hardware,"
           "memory_dimm\n";
  }
  const auto result = run_cli("validate --trace " + path);
  EXPECT_EQ(result.exit_code, 2) << result.err << result.out;
  EXPECT_TRUE(starts_with(result.err, "parse error:")) << result.err;
  std::remove(path.c_str());
}

}  // namespace
