// Golden snapshot of the full `hpcfail report` output (the composite
// Figs 1/2/6 + Table 2 text report on the default seed-42 trace).
//
// The comparison is token-wise with a tiny relative tolerance: the
// report's numbers come through iterative MLE solvers, where the last
// printed digit can legitimately differ across optimization levels and
// libm versions, but the layout, labels, and ranking order must match
// exactly. Regenerate with HPCFAIL_UPDATE_GOLDENS=1 (the env var is
// forwarded to golden_compare in-process, so the same ctest run updates
// this snapshot too).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "testkit/golden.hpp"

namespace {

std::string run_report(const std::string& extra_args) {
  // Name the capture per (process, invocation): ctest runs each test in
  // its own process with a shared TempDir, so a bare counter collides.
  static int invocation = 0;
  const std::string out_path =
      (std::filesystem::path(::testing::TempDir()) /
       ("report_" + std::to_string(::getpid()) + "_" +
        std::to_string(invocation++) + ".out"))
          .string();
  const std::string command = std::string(HPCFAIL_CLI_PATH) +
                              " report --seed 42 " + extra_args + " > " +
                              out_path + " 2> /dev/null";
  const int raw = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(raw) && WEXITSTATUS(raw) == 0)
      << "hpcfail report exited with " << raw;
  std::ifstream in(out_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(out_path.c_str());
  return buffer.str();
}

TEST(CliReportGolden, ReportMatchesSnapshot) {
  const std::string output = run_report("--threads 2");
  hpcfail::testkit::GoldenOptions options;
  options.rel_tol = 1e-6;
  options.abs_tol = 1e-9;
  const auto result = hpcfail::testkit::golden_compare(
      std::string(HPCFAIL_GOLDEN_DIR) + "/cli_report.golden", output,
      options);
  EXPECT_TRUE(static_cast<bool>(result)) << result.message;
}

TEST(CliReportGolden, ReportIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = run_report("--threads 1");
  const std::string parallel = run_report("--threads 8");
  EXPECT_EQ(serial, parallel);
}

}  // namespace
