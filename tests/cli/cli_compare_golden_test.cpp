// Golden snapshots of `hpcfail compare`: the side-by-side text report
// and the per-site CSV over two synthetic site profiles at the default
// seed. Token-wise numeric tolerance absorbs last-ulp solver noise; the
// layout, metric rows, site columns, and family rankings must match
// exactly. Regenerate with HPCFAIL_UPDATE_GOLDENS=1.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "testkit/golden.hpp"

namespace {

std::string temp_path(const std::string& tag) {
  static int invocation = 0;
  return (std::filesystem::path(::testing::TempDir()) /
          ("compare_" + tag + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(invocation++) + ".out"))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string run_compare(const std::string& args) {
  const std::string out_path = temp_path("stdout");
  const std::string command = std::string(HPCFAIL_CLI_PATH) + " compare " +
                              args + " > " + out_path + " 2> /dev/null";
  const int raw = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(raw) && WEXITSTATUS(raw) == 0)
      << "hpcfail compare exited with " << raw;
  const std::string output = slurp(out_path);
  std::remove(out_path.c_str());
  return output;
}

hpcfail::testkit::GoldenOptions tolerant() {
  hpcfail::testkit::GoldenOptions options;
  options.rel_tol = 1e-6;
  options.abs_tol = 1e-9;
  return options;
}

TEST(CompareCliGolden, TextReportMatchesSnapshot) {
  const std::string output =
      run_compare("--site lu,tan --seed 42 --threads 2");
  const auto result = hpcfail::testkit::golden_compare(
      std::string(HPCFAIL_GOLDEN_DIR) + "/cli_compare.golden", output,
      tolerant());
  EXPECT_TRUE(static_cast<bool>(result)) << result.message;
}

TEST(CompareCliGolden, CsvMatchesSnapshot) {
  const std::string csv_path = temp_path("csv");
  run_compare("--site lu,tan --seed 42 --threads 2 --csv-out " + csv_path);
  const std::string csv = slurp(csv_path);
  std::remove(csv_path.c_str());
  const auto result = hpcfail::testkit::golden_compare(
      std::string(HPCFAIL_GOLDEN_DIR) + "/cli_compare_csv.golden", csv,
      tolerant());
  EXPECT_TRUE(static_cast<bool>(result)) << result.message;
}

TEST(CompareCliGolden, OutFileMatchesStdout) {
  const std::string out_file = temp_path("outfile");
  const std::string stdout_text =
      run_compare("--site mistral --seed 42 --out " + out_file);
  const std::string file_text = slurp(out_file);
  std::remove(out_file.c_str());
  EXPECT_EQ(stdout_text, file_text);
}

TEST(CompareCliGolden, ForeignTraceEntriesLoadThroughAdapters) {
  // generate a lu-profile trace, write it in the lu foreign format via
  // replay-less CLI surface: compare --site lu vs compare --trace
  // file:lu must agree byte for byte on the battery columns.
  const std::string trace_path = temp_path("trace");
  // Produce the foreign file with a tiny shell pipeline through the
  // compare CSV: instead, reuse --site to pin expected output and let
  // the dedicated unit tests cover adapters; here we only check the
  // PATH:FORMAT spelling is accepted end to end.
  const std::string command =
      std::string(HPCFAIL_CLI_PATH) + " generate --out " + trace_path +
      " --seed 7 > /dev/null 2> /dev/null";
  ASSERT_EQ(std::system(command.c_str()) & 0x7f, 0);
  const std::string output = run_compare("--trace " + trace_path);
  EXPECT_NE(output.find("1 site(s)"), std::string::npos);
  std::remove(trace_path.c_str());
}

}  // namespace
