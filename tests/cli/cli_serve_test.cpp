// Smoke test of `hpcfail serve` through the real binary: tail a trace
// file, stop at --max-events, and verify the metrics dump carries the
// serve.* counters the daemon promises.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) /
          (name + "_" + std::to_string(::getpid())))
      .string();
}

TEST(CliServe, TailsFileUntilMaxEventsAndDumpsMetrics) {
  const std::string trace = temp_path("serve_smoke_trace") + ".csv";
  const std::string metrics = temp_path("serve_smoke_metrics") + ".json";
  const std::string out_path = temp_path("serve_smoke") + ".out";
  {
    std::ofstream out(trace);
    out << "system,node,start,end,workload,cause,detail\n";
    for (int i = 0; i < 60; ++i) {
      const int hour = i % 24;
      const int day = 1 + i / 24;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "20,%d,2005-01-%02d %02d:00:00,2005-01-%02d %02d:30:00,"
                    "compute,hardware,memory_dimm\n",
                    i % 8, day, hour, day, hour);
      out << line;
    }
    out << "one malformed line\n";
  }

  const std::string command = std::string(HPCFAIL_CLI_PATH) +
                              " serve --tail " + trace +
                              " --max-events 60 --metrics-out " + metrics +
                              " > " + out_path + " 2>&1";
  const int raw = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(raw));
  const std::string output = read_file(out_path);
  EXPECT_EQ(WEXITSTATUS(raw), 0) << output;

  EXPECT_NE(output.find("ingest_port="), std::string::npos) << output;
  EXPECT_NE(output.find("http_port="), std::string::npos) << output;
  EXPECT_NE(output.find("ingested 60 events (1 rejected)"),
            std::string::npos)
      << output;

  const std::string dump = read_file(metrics);
  for (const char* needle :
       {"serve.events_ingested", "serve.rejected_events", "ingest.epoch",
        "serve.events_per_sec"}) {
    EXPECT_NE(dump.find(needle), std::string::npos) << needle << "\n"
                                                    << dump;
  }

  std::remove(trace.c_str());
  std::remove(metrics.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
