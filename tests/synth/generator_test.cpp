#include "synth/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "trace/index.hpp"
#include "trace/validate.hpp"
#include "stats/descriptive.hpp"

namespace hpcfail::synth {
namespace {

using trace::FailureDataset;
using trace::FailureRecord;
using trace::SystemCatalog;

TEST(LanlScenario, CoversAllSystemsWithPaperAnchors) {
  const ScenarioConfig cfg = lanl_scenario();
  EXPECT_EQ(cfg.systems.size(), 22u);
  for (const SystemScenario& s : cfg.systems) {
    EXPECT_TRUE(SystemCatalog::lanl().contains(s.system_id));
  }
  // The paper's quoted extremes: 17/yr (system 2) and 1159/yr (system 7).
  EXPECT_DOUBLE_EQ(cfg.systems[1].failures_per_year, 17.0);
  EXPECT_DOUBLE_EQ(cfg.systems[6].failures_per_year, 1159.0);
}

TEST(Generator, IsDeterministic) {
  const TraceGenerator gen(SystemCatalog::lanl(), lanl_scenario(7));
  const auto a = gen.generate_system(12);
  const auto b = gen.generate_system(12);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Generator, DifferentSeedsGiveDifferentTraces) {
  const TraceGenerator a(SystemCatalog::lanl(), lanl_scenario(1));
  const TraceGenerator b(SystemCatalog::lanl(), lanl_scenario(2));
  EXPECT_NE(a.generate_system(12).size() * 1000 +
                a.generate_system(12).front().start % 1000,
            b.generate_system(12).size() * 1000 +
                b.generate_system(12).front().start % 1000);
}

TEST(Generator, SubsetRegeneratesIdentically) {
  // Per-(system, node) seeding: generating system 13 alone must equal
  // its slice of the full trace.
  const TraceGenerator gen(SystemCatalog::lanl(), lanl_scenario(42));
  const FailureDataset full = gen.generate();
  const FailureDataset solo(gen.generate_system(13));
  const trace::DatasetView slice = full.view().for_system(13);
  ASSERT_EQ(solo.size(), slice.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(solo.records()[i], slice.records()[i]);
  }
}

TEST(Generator, AllRecordsAreConsistentAndInProduction) {
  const TraceGenerator gen(SystemCatalog::lanl(), lanl_scenario(42));
  for (const int id : {2, 5, 20, 22}) {
    const auto& sys = SystemCatalog::lanl().system(id);
    for (const FailureRecord& r : gen.generate_system(id)) {
      ASSERT_TRUE(r.is_consistent());
      ASSERT_EQ(r.system_id, id);
      ASSERT_GE(r.node_id, 0);
      ASSERT_LT(r.node_id, sys.nodes);
      const auto& cat = sys.category_for_node(r.node_id);
      ASSERT_GE(r.start, cat.production_start);
      ASSERT_LT(r.start, cat.production_end);
      ASSERT_GE(r.downtime_seconds(), 60);  // minute resolution floor
      ASSERT_EQ(r.workload, sys.workload_of(r.node_id));
    }
  }
}

TEST(Generator, CalibratedRatesLandNearTargets) {
  const TraceGenerator gen(SystemCatalog::lanl(), lanl_scenario(42));
  for (const SystemScenario& scen : gen.config().systems) {
    if (scen.failures_per_year < 100.0) continue;  // too noisy to pin
    const auto& sys = SystemCatalog::lanl().system(scen.system_id);
    const double observed =
        static_cast<double>(gen.generate_system(scen.system_id).size()) /
        sys.production_years();
    EXPECT_NEAR(observed / scen.failures_per_year, 1.0, 0.20)
        << "system " << scen.system_id;
  }
}

TEST(Generator, FullTraceHasPaperScaleAndSpan) {
  const FailureDataset ds = generate_lanl_trace(42);
  // The paper analyzes ~23000 failures over 1996-2005.
  EXPECT_GT(ds.size(), 18000u);
  EXPECT_LT(ds.size(), 32000u);
  EXPECT_GE(ds.first_start(), to_epoch(1996, 6, 1));
  EXPECT_LE(ds.first_start(), to_epoch(1998, 1, 1));
  EXPECT_EQ(ds.system_ids().size(), 22u);
}

TEST(Generator, GraphicsNodesAreFailureHotSpots) {
  // Fig 3(a): system 20's three graphics nodes (6% of nodes) hold ~20%
  // of its failures.
  const TraceGenerator gen(SystemCatalog::lanl(), lanl_scenario(42));
  const FailureDataset ds(gen.generate_system(20));
  const auto counts = ds.view().for_system(20).failures_per_node();
  std::size_t total = 0;
  std::size_t graphics = 0;
  for (const auto& [node, count] : counts) {
    total += count;
    if (node >= 21 && node <= 23) graphics += count;
  }
  const double share =
      static_cast<double>(graphics) / static_cast<double>(total);
  EXPECT_GT(share, 0.12);
  EXPECT_LT(share, 0.30);
}

TEST(Generator, EarlyEraHasSimultaneousFailures) {
  // Fig 6(c): >30% of system-wide interarrivals are zero early on.
  const TraceGenerator gen(SystemCatalog::lanl(), lanl_scenario(42));
  const FailureDataset ds(gen.generate_system(20));
  const auto early = ds.view()
                         .for_system(20)
                         .between(to_epoch(1997, 1, 1), to_epoch(2000, 1, 1))
                         .system_interarrivals();
  ASSERT_GT(early.size(), 100u);
  std::size_t zeros = 0;
  for (const double g : early) {
    if (g == 0.0) ++zeros;
  }
  EXPECT_GT(static_cast<double>(zeros) / static_cast<double>(early.size()),
            0.30);
  // Late era: far fewer simultaneous failures.
  const auto late = ds.view()
                        .for_system(20)
                        .between(to_epoch(2001, 1, 1), to_epoch(2006, 1, 1))
                        .system_interarrivals();
  std::size_t late_zeros = 0;
  for (const double g : late) {
    if (g == 0.0) ++late_zeros;
  }
  EXPECT_LT(static_cast<double>(late_zeros) /
                static_cast<double>(late.size()),
            0.15);
}

TEST(Generator, LateEraInterarrivalsAreOverdispersed) {
  // The paper's C^2 of 1.9 at node 22 of system 20 (2000-2005): demand
  // C^2 > 1.3 so the exponential assumption is visibly wrong.
  const TraceGenerator gen(SystemCatalog::lanl(), lanl_scenario(42));
  const FailureDataset ds(gen.generate_system(20));
  const auto gaps = ds.view()
                        .for_system(20)
                        .between(to_epoch(2000, 1, 1), to_epoch(2006, 1, 1))
                        .node_interarrivals(22);
  ASSERT_GT(gaps.size(), 50u);
  EXPECT_GT(hpcfail::stats::cv_squared(gaps), 1.3);
}

TEST(Generator, WorksWithCustomCatalogs) {
  // The generator is not tied to the LANL site: a hypothetical two-system
  // catalog with its own scenario must calibrate and validate the same
  // way (this is the API the scaling bench uses).
  trace::SystemInfo small;
  small.id = 1;
  small.hw_type = 'F';
  small.numa = false;
  small.nodes = 16;
  small.procs = 32;
  small.categories = {{0, 16, 2, 4.0, 1, to_epoch(2004, 1, 1),
                       to_epoch(2006, 1, 1)}};
  trace::SystemInfo large = small;
  large.id = 2;
  large.nodes = 64;
  large.procs = 128;
  large.categories = {{0, 64, 2, 4.0, 1, to_epoch(2004, 1, 1),
                       to_epoch(2006, 1, 1)}};
  const trace::SystemCatalog catalog({small, large});

  ScenarioConfig cfg;
  cfg.seed = 5;
  for (const auto& [id, per_year] : {std::pair{1, 80.0},
                                     std::pair{2, 320.0}}) {
    SystemScenario s;
    s.system_id = id;
    s.failures_per_year = per_year;
    s.lifecycle.amplitude = 0.0;  // flat
    cfg.systems.push_back(s);
  }
  const TraceGenerator gen(catalog, cfg);
  const trace::FailureDataset ds = gen.generate();
  EXPECT_TRUE(trace::validate(ds, catalog).clean() ||
              trace::validate(ds, catalog)
                      .count(trace::ValidationIssueKind::
                                 overlapping_repair) ==
                  trace::validate(ds, catalog).issues.size());
  const double small_rate =
      static_cast<double>(ds.view().for_system(1).size()) / 2.0;
  const double large_rate =
      static_cast<double>(ds.view().for_system(2).size()) / 2.0;
  EXPECT_NEAR(small_rate / 80.0, 1.0, 0.25);
  EXPECT_NEAR(large_rate / 320.0, 1.0, 0.25);
  // Linear scaling: 4x the nodes at 4x the target rate.
  EXPECT_NEAR(large_rate / small_rate, 4.0, 1.0);
}

TEST(Generator, RejectsUnknownSystemInScenario) {
  ScenarioConfig cfg = lanl_scenario();
  cfg.systems[0].system_id = 99;
  EXPECT_THROW(TraceGenerator(SystemCatalog::lanl(), cfg),
               hpcfail::InvalidArgument);
}

TEST(Generator, RejectsBadParameters) {
  ScenarioConfig cfg = lanl_scenario();
  cfg.systems[0].failures_per_year = 0.0;
  EXPECT_THROW(TraceGenerator(SystemCatalog::lanl(), cfg),
               hpcfail::InvalidArgument);

  ScenarioConfig cfg2 = lanl_scenario();
  cfg2.systems[0].early_burst_probability = 1.5;
  EXPECT_THROW(TraceGenerator(SystemCatalog::lanl(), cfg2),
               hpcfail::InvalidArgument);

  EXPECT_THROW(TraceGenerator(SystemCatalog::lanl(), ScenarioConfig{}),
               hpcfail::InvalidArgument);
}

TEST(Generator, GenerateSystemRejectsUnconfiguredId) {
  ScenarioConfig cfg = lanl_scenario();
  cfg.systems.resize(3);  // systems 1-3 only
  const TraceGenerator gen(SystemCatalog::lanl(), cfg);
  EXPECT_THROW(gen.generate_system(20), hpcfail::InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::synth
