#include "synth/site.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "common/time.hpp"
#include "trace/adapters/adapter.hpp"
#include "trace/record.hpp"

namespace hpcfail::synth {
namespace {

TEST(SiteProfileRegistry, ListsProfilesAscendingByName) {
  const auto profiles = all_site_profiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0]->name, "lu");
  EXPECT_EQ(profiles[1]->name, "mistral");
  EXPECT_EQ(profiles[2]->name, "tan");
  EXPECT_EQ(site_profile_names(), "lu, mistral, tan");
  EXPECT_THROW(site_profile("bluegene"), ValidationError);
}

TEST(SiteProfileRegistry, ProfilesAreInternallyConsistent) {
  for (const SiteProfile* profile : all_site_profiles()) {
    EXPECT_GT(profile->nodes, 0) << profile->name;
    EXPECT_GE(profile->procs, profile->nodes) << profile->name;
    EXPECT_GT(profile->duration_years, 0.0) << profile->name;
    EXPECT_GT(profile->failures_per_proc_year, 0.0) << profile->name;
    EXPECT_GT(profile->weibull_shape, 0.0) << profile->name;
    EXPECT_GT(profile->repair.mean_minutes, profile->repair.median_minutes)
        << profile->name << ": lognormal repairs are right-skewed";
    double mix = 0.0;
    for (const double p : profile->cause_mix) mix += p;
    EXPECT_NEAR(mix, 1.0, 1e-12) << profile->name;
    // Each profile's native format names a registered adapter.
    EXPECT_NO_THROW(trace::adapter_for(profile->format)) << profile->name;
  }
}

TEST(SiteTrace, IsDeterministicInSeed) {
  const SiteProfile& profile = site_profile("lu");
  const trace::FailureDataset a = generate_site_trace(profile, 7);
  const trace::FailureDataset b = generate_site_trace(profile, 7);
  const trace::FailureDataset c = generate_site_trace(profile, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.records()[i], b.records()[i]);
  }
  EXPECT_NE(a.size(), c.size());
}

TEST(SiteTrace, StaysInsideTheObservationWindow) {
  for (const SiteProfile* profile : all_site_profiles()) {
    const trace::FailureDataset ds = generate_site_trace(*profile, 42);
    ASSERT_GT(ds.size(), 0u) << profile->name;
    const Seconds window_end =
        profile->start + static_cast<Seconds>(profile->duration_years *
                                              kSecondsPerYear);
    for (const trace::FailureRecord& r : ds.records()) {
      EXPECT_EQ(r.system_id, profile->system_id);
      EXPECT_GE(r.node_id, 0);
      EXPECT_LT(r.node_id, profile->nodes);
      EXPECT_GE(r.start, profile->start);
      EXPECT_LT(r.start, window_end);
      EXPECT_GE(r.end, r.start);
      EXPECT_TRUE(r.is_consistent());
    }
  }
}

TEST(SiteTrace, EventCountTracksThePublishedRate) {
  // Loose envelope (±35%): the exact recovery check is the calibration
  // oracle's job, this pins gross miscalibration cheaply.
  for (const SiteProfile* profile : all_site_profiles()) {
    const trace::FailureDataset ds = generate_site_trace(*profile, 42);
    const double expected = profile->failures_per_proc_year *
                            profile->procs * profile->duration_years;
    EXPECT_GT(static_cast<double>(ds.size()), 0.65 * expected)
        << profile->name;
    EXPECT_LT(static_cast<double>(ds.size()), 1.35 * expected)
        << profile->name;
  }
}

TEST(SiteTrace, DurationScaleStretchesTheWindow) {
  const SiteProfile& profile = site_profile("mistral");
  const trace::FailureDataset one = generate_site_trace(profile, 3, 1.0);
  const trace::FailureDataset two = generate_site_trace(profile, 3, 2.0);
  EXPECT_GT(two.size(), one.size() * 3 / 2);
  EXPECT_THROW(generate_site_trace(profile, 3, 0.0), InvalidArgument);
  EXPECT_THROW(generate_site_trace(profile, 3, -1.0), InvalidArgument);
}

TEST(SiteTrace, RoundTripsThroughItsOwnAdapterBitIdentically) {
  // The tentpole contract end to end: a whole synthetic site trace
  // written in its native foreign format and read back through the
  // adapter is the identical dataset.
  for (const SiteProfile* profile : all_site_profiles()) {
    const trace::FailureDataset ds = generate_site_trace(*profile, 11);
    const trace::Adapter& adapter = trace::adapter_for(profile->format);
    const std::string path =
        "site_roundtrip_" + std::string(profile->name) + ".txt";
    trace::write_adapter_file(path, ds, adapter);
    const trace::FailureDataset back = trace::read_adapter_file(path, adapter);
    ASSERT_EQ(back.size(), ds.size()) << profile->name;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      ASSERT_EQ(back.records()[i], ds.records()[i]) << profile->name;
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace hpcfail::synth
