#include "synth/profile.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail::synth {
namespace {

using trace::DetailCause;
using trace::RootCause;

double detail_weight(const DetailMix& mix, DetailCause detail) {
  double total = 0.0;
  double hit = 0.0;
  for (const auto& [d, w] : mix) {
    total += w;
    if (d == detail) hit = w;
  }
  return total > 0.0 ? hit / total : 0.0;
}

TEST(Profiles, AllTypesExistAndMixesSumToOne) {
  for (const char t : {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}) {
    const HardwareProfile& p = profile_for(t);
    EXPECT_EQ(p.hw_type, t);
    double sum = 0.0;
    for (const double w : p.cause_mix) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "type " << t;
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_FALSE(p.detail_mix[i].empty()) << "type " << t << " cause " << i;
      // Every detail in the mix must belong to the cause it is listed
      // under, or records would fail their consistency check.
      for (const auto& [detail, weight] : p.detail_mix[i]) {
        EXPECT_EQ(trace::cause_index(category_of(detail)), i)
            << "type " << t;
        EXPECT_GT(weight, 0.0);
      }
    }
  }
  EXPECT_THROW(profile_for('Z'), hpcfail::InvalidArgument);
}

TEST(Profiles, HardwareIsLargestCauseEverywhere) {
  // Fig 1(a): hardware is the single largest component, 30-60+%.
  for (const char t : {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}) {
    const HardwareProfile& p = profile_for(t);
    const double hw = p.cause_mix[cause_index(RootCause::hardware)];
    EXPECT_GE(hw, 0.30) << "type " << t;
    for (std::size_t i = 1; i < 6; ++i) {
      EXPECT_GE(hw, p.cause_mix[i]) << "type " << t;
    }
  }
}

TEST(Profiles, SoftwareIsSecondLargest) {
  // Fig 1(a): software 5-24%, second after hardware (unknown aside).
  for (const char t : {'D', 'E', 'F', 'H'}) {
    const HardwareProfile& p = profile_for(t);
    const double sw = p.cause_mix[cause_index(RootCause::software)];
    EXPECT_GE(sw, 0.05) << "type " << t;
    EXPECT_LE(sw, 0.30) << "type " << t;
  }
}

TEST(Profiles, TypeDHasNearlyEqualHardwareAndSoftware) {
  const HardwareProfile& p = profile_for('D');
  const double hw = p.cause_mix[cause_index(RootCause::hardware)];
  const double sw = p.cause_mix[cause_index(RootCause::software)];
  EXPECT_LT(hw / sw, 1.5);  // "almost equally frequent"
}

TEST(Profiles, TypeEHasFewUnknowns) {
  // Fig 1(a): type E < 5% unknown; most others 20-30%.
  EXPECT_LT(profile_for('E').cause_mix[cause_index(RootCause::unknown)],
            0.05);
  EXPECT_GE(profile_for('G').cause_mix[cause_index(RootCause::unknown)],
            0.20);
  EXPECT_GE(profile_for('D').cause_mix[cause_index(RootCause::unknown)],
            0.20);
}

TEST(Profiles, MemoryIsOverTenPercentOfAllFailures) {
  // Section 4: "For all systems, more than 10% of all failures ... were
  // due to memory", except type E where CPU dominates hardware.
  for (const char t : {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}) {
    const HardwareProfile& p = profile_for(t);
    const std::size_t hw = cause_index(RootCause::hardware);
    const double memory_share =
        p.cause_mix[hw] * detail_weight(p.detail_mix[hw],
                                        DetailCause::memory_dimm);
    EXPECT_GE(memory_share, 0.095) << "type " << t;
  }
  // F and H: memory over 25% of all failures.
  for (const char t : {'F', 'H'}) {
    const HardwareProfile& p = profile_for(t);
    const std::size_t hw = cause_index(RootCause::hardware);
    EXPECT_GE(p.cause_mix[hw] * detail_weight(p.detail_mix[hw],
                                              DetailCause::memory_dimm),
              0.25)
        << "type " << t;
  }
}

TEST(Profiles, TypeECpuDesignFlaw) {
  // Section 4: type E saw >50% of all failures from CPU.
  const HardwareProfile& p = profile_for('E');
  const std::size_t hw = cause_index(RootCause::hardware);
  EXPECT_GE(p.cause_mix[hw] * detail_weight(p.detail_mix[hw],
                                            DetailCause::cpu),
            0.50);
}

TEST(Profiles, TopSoftwareCausePerType) {
  // Section 4: OS tops E, parallel FS tops F, scheduler tops H,
  // unspecified software tops D and G.
  const auto top = [](const DetailMix& mix) {
    DetailCause best = mix.front().first;
    double w = mix.front().second;
    for (const auto& [d, weight] : mix) {
      if (weight > w) {
        best = d;
        w = weight;
      }
    }
    return best;
  };
  const std::size_t sw = cause_index(RootCause::software);
  EXPECT_EQ(top(profile_for('E').detail_mix[sw]),
            DetailCause::operating_system);
  EXPECT_EQ(top(profile_for('F').detail_mix[sw]), DetailCause::parallel_fs);
  EXPECT_EQ(top(profile_for('H').detail_mix[sw]), DetailCause::scheduler);
  EXPECT_EQ(top(profile_for('D').detail_mix[sw]),
            DetailCause::other_software);
  EXPECT_EQ(top(profile_for('G').detail_mix[sw]),
            DetailCause::other_software);
}

TEST(Profiles, RepairMomentsAreLognormalCompatible) {
  // Every (type, cause) pair must satisfy mean > median > 0 so
  // LogNormal::from_mean_median accepts it.
  for (const char t : {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}) {
    const HardwareProfile& p = profile_for(t);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_GT(p.repair[i].median_minutes, 0.0) << "type " << t;
      EXPECT_GT(p.repair[i].mean_minutes, p.repair[i].median_minutes)
          << "type " << t << " cause " << i;
    }
  }
}

TEST(Profiles, NumaTypesRepairSlower) {
  // Fig 7(b)/(c): repair time depends on hardware type; the NUMA types
  // (G, H) are the slow end, the small early systems the fast end.
  const std::size_t hw = cause_index(RootCause::hardware);
  EXPECT_GT(profile_for('G').repair[hw].mean_minutes,
            profile_for('E').repair[hw].mean_minutes);
  EXPECT_GT(profile_for('H').repair[hw].mean_minutes,
            profile_for('A').repair[hw].mean_minutes);
}

TEST(Profiles, UnknownRepairsLongOnlyForPioneerTypes) {
  // Fig 1(b): unknown causes are <5% of downtime for most systems but
  // >5% for D and G.
  const std::size_t unknown = cause_index(RootCause::unknown);
  for (const char t : {'D', 'G'}) {
    EXPECT_GE(profile_for(t).repair[unknown].mean_minutes, 200.0)
        << "type " << t;
  }
  for (const char t : {'A', 'E', 'F', 'H'}) {
    EXPECT_LE(profile_for(t).repair[unknown].mean_minutes, 100.0)
        << "type " << t;
  }
}

}  // namespace
}  // namespace hpcfail::synth
