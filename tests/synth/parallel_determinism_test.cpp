// The parallel generator's core guarantee: because every (seed, system,
// node) triple has its own PRNG stream and shards are concatenated in
// deterministic order before the dataset sort, generate() output is
// byte-identical at any thread count.
#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.hpp"
#include "synth/generator.hpp"
#include "trace/catalog.hpp"

namespace {

using hpcfail::synth::ScenarioConfig;
using hpcfail::synth::TraceGenerator;
using hpcfail::trace::FailureRecord;

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ~ParallelDeterminismTest() override { hpcfail::set_parallelism(0); }
};

void expect_identical(const std::vector<FailureRecord>& a,
                      const std::vector<FailureRecord>& b,
                      unsigned threads) {
  ASSERT_EQ(a.size(), b.size()) << "at " << threads << " threads";
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "record " << i << " at " << threads
                          << " threads";
  }
}

TEST_F(ParallelDeterminismTest, FullTraceIdenticalAt1And2And8Threads) {
  hpcfail::set_parallelism(1);
  const auto sequential = hpcfail::synth::generate_lanl_trace(7);
  const std::vector<FailureRecord> baseline(
      sequential.records().begin(), sequential.records().end());

  for (const unsigned threads : {2u, 8u}) {
    hpcfail::set_parallelism(threads);
    const auto parallel = hpcfail::synth::generate_lanl_trace(7);
    const std::vector<FailureRecord> records(parallel.records().begin(),
                                             parallel.records().end());
    expect_identical(baseline, records, threads);
  }
}

TEST_F(ParallelDeterminismTest, GenerateSystemIdenticalAcrossThreadCounts) {
  // System 7 has 1024 nodes, so it decomposes into many shards; system 2
  // is smaller than one shard and exercises the single-shard path.
  const TraceGenerator generator(hpcfail::trace::SystemCatalog::lanl(),
                                 hpcfail::synth::lanl_scenario(13));
  for (const int system_id : {2, 7}) {
    hpcfail::set_parallelism(1);
    const auto baseline = generator.generate_system(system_id);
    ASSERT_FALSE(baseline.empty());
    for (const unsigned threads : {2u, 8u}) {
      hpcfail::set_parallelism(threads);
      expect_identical(baseline, generator.generate_system(system_id),
                       threads);
    }
  }
}

}  // namespace
