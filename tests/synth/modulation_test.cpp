#include "synth/modulation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail::synth {
namespace {

TEST(DiurnalFactor, PeakToTroughRatioNearTwo) {
  // Fig 5: daytime peak failure rate is ~2x the overnight trough.
  double lo = 1e9;
  double hi = 0.0;
  for (int h = 0; h < 24; ++h) {
    const double f = diurnal_factor(h);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_NEAR(hi / lo, 2.0, 0.15);
  EXPECT_GT(diurnal_factor(14), diurnal_factor(2));  // peak mid-afternoon
}

TEST(DiurnalFactor, MeanIsApproximatelyOne) {
  double sum = 0.0;
  for (int h = 0; h < 24; ++h) sum += diurnal_factor(h);
  EXPECT_NEAR(sum / 24.0, 1.0, 0.01);
}

TEST(DiurnalFactor, RejectsOutOfRange) {
  EXPECT_THROW(diurnal_factor(-1), hpcfail::InvalidArgument);
  EXPECT_THROW(diurnal_factor(24), hpcfail::InvalidArgument);
}

TEST(WeeklyFactor, WeekdayToWeekendRatioNearTwo) {
  EXPECT_NEAR(weekly_factor(1) / weekly_factor(0), 1.75, 0.1);
  EXPECT_EQ(weekly_factor(0), weekly_factor(6));  // both weekend days
  for (int d = 1; d <= 5; ++d) {
    EXPECT_EQ(weekly_factor(d), weekly_factor(1));
  }
}

TEST(WeeklyFactor, MeanIsOne) {
  double sum = 0.0;
  for (int d = 0; d < 7; ++d) sum += weekly_factor(d);
  EXPECT_NEAR(sum / 7.0, 1.0, 1e-12);
}

TEST(WeeklyFactor, RejectsOutOfRange) {
  EXPECT_THROW(weekly_factor(-1), hpcfail::InvalidArgument);
  EXPECT_THROW(weekly_factor(7), hpcfail::InvalidArgument);
}

TEST(WorkloadModulation, CombinesBothFactors) {
  // Tuesday 1997-01-07 at 14:00 vs Sunday 02:00 differ by ~3.5x.
  const Seconds weekday_peak =
      to_epoch(1997, 1, 7) + 14 * kSecondsPerHour;
  const Seconds weekend_trough =
      to_epoch(1997, 1, 5) + 2 * kSecondsPerHour;
  EXPECT_GT(workload_modulation(weekday_peak) /
                workload_modulation(weekend_trough),
            3.0);
}

TEST(LifecycleFactor, BurnInDecaysMonotonically) {
  Lifecycle lc;
  lc.shape = LifecycleShape::burn_in;
  lc.amplitude = 3.0;
  lc.tau_months = 3.0;
  EXPECT_NEAR(lifecycle_factor(lc, 0.0), 4.0, 1e-12);
  double prev = lifecycle_factor(lc, 0.0);
  for (double m = 1.0; m <= 48.0; m += 1.0) {
    const double f = lifecycle_factor(lc, m);
    EXPECT_LT(f, prev);
    prev = f;
  }
  EXPECT_NEAR(lifecycle_factor(lc, 60.0), 1.0, 0.01);  // settles to base
}

TEST(LifecycleFactor, RampUpPeaksNearPeakMonth) {
  Lifecycle lc;
  lc.shape = LifecycleShape::ramp_up;
  lc.low = 0.35;
  lc.peak = 2.6;
  lc.peak_month = 20.0;
  EXPECT_NEAR(lifecycle_factor(lc, 0.0), 0.35, 1e-12);
  EXPECT_NEAR(lifecycle_factor(lc, 20.0), 2.6, 1e-12);
  // Rising before the peak, falling after (Fig 4b).
  EXPECT_LT(lifecycle_factor(lc, 5.0), lifecycle_factor(lc, 15.0));
  EXPECT_GT(lifecycle_factor(lc, 20.0), lifecycle_factor(lc, 40.0));
  // Back near the floor by month 60, as Fig 4(b) shows.
  EXPECT_LT(lifecycle_factor(lc, 60.0), 0.5 * lc.peak);
}

TEST(LifecycleFactor, ClampsNegativeMonths) {
  Lifecycle lc;
  EXPECT_DOUBLE_EQ(lifecycle_factor(lc, -5.0), lifecycle_factor(lc, 0.0));
}

}  // namespace
}  // namespace hpcfail::synth
