// generate() assembles the full trace by writing columns shard-by-shard
// and merging them with a stable radix sort on packed (start, system,
// node) keys. The reference semantics are simpler: concatenate every
// system's AoS records and let the FailureDataset constructor comparison
// sort them. These tests pin the two paths bit-identical — including tie
// order among simultaneous failures — across seeds and thread counts, and
// check the extraction surfaces agree on both.
#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"
#include "trace/catalog.hpp"
#include "trace/dataset.hpp"
#include "trace/index.hpp"

namespace {

using hpcfail::synth::TraceGenerator;
using hpcfail::trace::FailureDataset;
using hpcfail::trace::FailureRecord;

class MergeIdentityTest : public ::testing::Test {
 protected:
  ~MergeIdentityTest() override { hpcfail::set_parallelism(0); }
};

FailureDataset reference_dataset(const TraceGenerator& gen) {
  std::vector<FailureRecord> all;
  for (const auto& scen : gen.config().systems) {
    const auto records = gen.generate_system(scen.system_id);
    all.insert(all.end(), records.begin(), records.end());
  }
  return FailureDataset(std::move(all));
}

void expect_columns_identical(const FailureDataset& merged,
                              const FailureDataset& reference) {
  ASSERT_EQ(merged.size(), reference.size());
  const auto& a = merged.columns();
  const auto& b = reference.columns();
  EXPECT_EQ(a.system_id, b.system_id);
  EXPECT_EQ(a.node_id, b.node_id);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.cause, b.cause);
  EXPECT_EQ(a.detail, b.detail);
}

TEST_F(MergeIdentityTest, RadixMergeMatchesComparisonSortAcrossSeeds) {
  for (const std::uint64_t seed : {42ull, 7ull, 2024ull}) {
    const TraceGenerator gen(hpcfail::trace::SystemCatalog::lanl(),
                             hpcfail::synth::lanl_scenario(seed));
    expect_columns_identical(gen.generate(), reference_dataset(gen));
  }
}

TEST_F(MergeIdentityTest, MergedPathIdenticalAt1And2And8Threads) {
  const TraceGenerator gen(hpcfail::trace::SystemCatalog::lanl(),
                           hpcfail::synth::lanl_scenario(42));
  const FailureDataset reference = reference_dataset(gen);
  for (const unsigned threads : {1u, 2u, 8u}) {
    hpcfail::set_parallelism(threads);
    expect_columns_identical(gen.generate(), reference);
  }
}

TEST_F(MergeIdentityTest, ExtractionAgreesOnBothPaths) {
  const TraceGenerator gen(hpcfail::trace::SystemCatalog::lanl(),
                           hpcfail::synth::lanl_scenario(7));
  const FailureDataset merged = gen.generate();
  const FailureDataset reference = reference_dataset(gen);

  EXPECT_EQ(merged.repair_times_minutes(), reference.repair_times_minutes());
  EXPECT_EQ(merged.system_ids(), reference.system_ids());
  for (const int system : merged.system_ids()) {
    const auto a = merged.view().for_system(system).node_interarrival_groups();
    const auto b =
        reference.view().for_system(system).node_interarrival_groups();
    ASSERT_EQ(a.size(), b.size()) << "system " << system;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node_id, b[i].node_id);
      EXPECT_EQ(a[i].gaps_seconds, b[i].gaps_seconds);
    }
  }
}

}  // namespace
