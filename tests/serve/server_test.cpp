// End-to-end tests of the streaming daemon over real sockets: ephemeral
// ports, a raw line-protocol client, HTTP readers querying *during*
// ingest, reject-and-count on malformed lines, and both shutdown paths.
#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "serve/analytics.hpp"
#include "serve/replay.hpp"
#include "trace/adapters/adapter.hpp"
#include "trace/dataset.hpp"
#include "trace/record.hpp"

namespace hpcfail::serve {
namespace {

trace::FailureRecord rec(int system, int node, Seconds start,
                         Seconds duration) {
  trace::FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + duration;
  r.cause = trace::RootCause::hardware;
  r.detail = trace::DetailCause::memory_dimm;
  return r;
}

std::string csv_line(const trace::FailureRecord& r) {
  return std::to_string(r.system_id) + "," + std::to_string(r.node_id) +
         "," + format_timestamp(r.start) + "," + format_timestamp(r.end) +
         ",compute,hardware,memory_dimm\n";
}

const Seconds t0 = to_epoch(2004, 6, 1);

// --- LiveAnalytics unit coverage -----------------------------------------

TEST(LiveAnalytics, WindowedReportMatchesHandComputation) {
  LiveAnalytics analytics;
  // Three failures on one node, one hour apart, 30 minutes down each.
  analytics.observe(rec(3, 1, t0, 1800));
  analytics.observe(rec(3, 1, t0 + 3600, 1800));
  analytics.observe(rec(3, 1, t0 + 7200, 1800));
  EXPECT_EQ(analytics.events_observed(), 3u);
  EXPECT_EQ(analytics.latest_at(), t0 + 7200);

  const WindowReport report =
      analytics.report(3, 24 * kSecondsPerHour);
  EXPECT_EQ(report.events_total, 3u);
  EXPECT_EQ(report.repair_minutes.n, 3u);
  EXPECT_DOUBLE_EQ(report.repair_minutes.mean(), 30.0);
  EXPECT_EQ(report.node_gaps_seconds.n, 2u);
  EXPECT_DOUBLE_EQ(report.node_gaps_seconds.mean(), 3600.0);
  EXPECT_EQ(report.system_gaps_seconds.n, 2u);
  ASSERT_EQ(report.by_cause.size(), 1u);
  EXPECT_EQ(report.by_cause[0].cause, trace::RootCause::hardware);
  EXPECT_EQ(report.by_cause[0].repair_minutes.n, 3u);
}

TEST(LiveAnalytics, WindowExcludesOldEvents) {
  LiveAnalytics analytics;
  analytics.observe(rec(1, 0, t0, 600));
  analytics.observe(rec(1, 0, t0 + 40 * kSecondsPerHour, 600));
  // A 2-hour window anchored at the latest event excludes the first.
  const WindowReport narrow = analytics.report(1, 2 * kSecondsPerHour);
  EXPECT_EQ(narrow.repair_minutes.n, 1u);
  const WindowReport wide = analytics.report(1, 100 * kSecondsPerHour);
  EXPECT_EQ(wide.repair_minutes.n, 2u);
}

TEST(LiveAnalytics, UnknownSystemYieldsEmptyReport) {
  LiveAnalytics analytics;
  analytics.observe(rec(1, 0, t0, 600));
  const WindowReport report = analytics.report(42, kSecondsPerHour);
  EXPECT_EQ(report.events_total, 0u);
  EXPECT_EQ(report.repair_minutes.n, 0u);
  EXPECT_TRUE(report.repair_fits.empty());
}

TEST(LiveAnalytics, ReportJsonHasSchemaAndSections) {
  LiveAnalytics analytics;
  for (int i = 0; i < 40; ++i) {
    analytics.observe(rec(2, i % 4, t0 + i * 900, 60 + i * 30));
  }
  const std::string json =
      to_json(analytics.report(2, 24 * kSecondsPerHour));
  for (const char* needle :
       {"\"schema\":\"hpcfail.serve.report\"", "\"version\":1",
        "\"system\":2", "\"repair_minutes\"", "\"node_gaps_seconds\"",
        "\"system_gaps_seconds\"", "\"by_cause\"", "\"repair_fits\"",
        "\"node_gap_fits\"", "\"mean\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n"
                                                    << json;
  }
}

// --- socket helpers -------------------------------------------------------

int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + sent, text.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

struct HttpResponse {
  int status = 0;
  std::string body;
};

HttpResponse http_get(int port, const std::string& target) {
  const int fd = connect_to(port);
  send_all(fd, "GET " + target + " HTTP/1.0\r\n\r\n");
  std::string raw;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  HttpResponse response;
  const std::size_t space = raw.find(' ');
  if (space != std::string::npos) {
    response.status = std::stoi(raw.substr(space + 1, 3));
  }
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    response.body = raw.substr(header_end + 4);
  }
  return response;
}

void wait_until_ingested(const Server& server, std::uint64_t count) {
  for (int i = 0; i < 500 && server.events_ingested() < count; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(server.events_ingested(), count);
}

// --- option validation ----------------------------------------------------

TEST(Server, RejectsInvalidOptions) {
  {
    ServerOptions opts;
    opts.ingest_port = 70000;
    EXPECT_THROW(Server s(opts), ValidationError);
  }
  {
    ServerOptions opts;
    opts.host = "not an address";
    EXPECT_THROW(Server s(opts), ValidationError);
  }
  {
    ServerOptions opts;
    opts.bucket_seconds = 0;
    EXPECT_THROW(Server s(opts), ValidationError);
  }
  {
    ServerOptions opts;
    opts.window_seconds = -5;
    EXPECT_THROW(Server s(opts), ValidationError);
  }
  {
    ServerOptions opts;
    opts.ingest_threads = 0;
    EXPECT_THROW(Server s(opts), ValidationError);
  }
  {
    ServerOptions opts;
    opts.http_request_deadline_ms = 0;
    EXPECT_THROW(Server s(opts), ValidationError);
  }
}

// --- end-to-end -----------------------------------------------------------

TEST(Server, IngestsStreamRejectsMalformedAndServesReaders) {
  ServerOptions opts;
  opts.epoch.min_rebuild_tail = 64;  // exercise several epochs
  Server server(opts);
  server.start();
  ASSERT_GT(server.ingest_port(), 0);
  ASSERT_GT(server.http_port(), 0);

  EXPECT_EQ(http_get(server.http_port(), "/healthz").body, "ok\n");

  const int client = connect_to(server.ingest_port());
  std::string payload;
  const std::size_t kEvents = 500;
  for (std::size_t i = 0; i < kEvents; ++i) {
    payload += csv_line(rec(7, static_cast<int>(i % 8),
                            t0 + static_cast<Seconds>(i) * 120, 300));
  }
  payload += "this is not an event\n";
  send_all(client, payload);
  wait_until_ingested(server, kEvents);
  for (int i = 0; i < 500 && server.events_rejected() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.events_rejected(), 1u);

  // Readers are served while the connection is still open (no rebuild
  // or drain-to-idle needed first).
  const HttpResponse stats = http_get(server.http_port(), "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"events_ingested\":500"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"events_rejected\":1"), std::string::npos);

  const HttpResponse report =
      http_get(server.http_port(), "/report?system=7&window_hours=48");
  EXPECT_EQ(report.status, 200);
  EXPECT_NE(report.body.find("\"schema\":\"hpcfail.serve.report\""),
            std::string::npos);
  EXPECT_NE(report.body.find("\"repair_fits\""), std::string::npos);

  EXPECT_EQ(http_get(server.http_port(), "/report?system=999").status,
            404);
  EXPECT_EQ(http_get(server.http_port(), "/report?system=oops").status,
            400);
  EXPECT_EQ(http_get(server.http_port(), "/nope").status, 404);

  const HttpResponse metrics = http_get(server.http_port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);

  ::close(client);
  server.stop();
  server.wait();
  // The final seal folds the tail into the published snapshot.
  EXPECT_EQ(server.dataset().snapshot()->size(), kEvents);
  EXPECT_GE(server.dataset().epoch(), 2u);
}

TEST(Server, ConcurrentReadersDuringSustainedIngest) {
  ServerOptions opts;
  opts.epoch.min_rebuild_tail = 128;
  Server server(opts);
  server.start();

  std::atomic<bool> done{false};
  std::atomic<int> reads{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load()) {
        const HttpResponse r =
            http_get(server.http_port(), "/report?system=5");
        // 404 until the first event lands, 200 after; anything else
        // (or a dropped connection) is a failure.
        if (r.status != 200 && r.status != 404) failures.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }

  const int client = connect_to(server.ingest_port());
  const std::size_t kEvents = 2000;
  std::string payload;
  for (std::size_t i = 0; i < kEvents; ++i) {
    payload += csv_line(rec(5, static_cast<int>(i % 16),
                            t0 + static_cast<Seconds>(i) * 60, 120));
  }
  send_all(client, payload);
  wait_until_ingested(server, kEvents);
  ::close(client);

  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(http_get(server.http_port(), "/report?system=5").status, 200);

  server.stop();
  server.wait();
}

TEST(Server, MaxEventsStopsTheDaemon) {
  ServerOptions opts;
  opts.max_events = 10;
  Server server(opts);
  server.start();
  const int client = connect_to(server.ingest_port());
  std::string payload;
  for (int i = 0; i < 25; ++i) {
    payload += csv_line(rec(1, 0, t0 + i * 60, 30));
  }
  send_all(client, payload);
  server.wait();  // returns because max_events tripped, not stop()
  ::close(client);
  EXPECT_GE(server.events_ingested(), 10u);
  EXPECT_EQ(server.dataset().snapshot()->size(), server.events_ingested());
}

TEST(Server, ShutdownEndpointStopsTheDaemon) {
  Server server(ServerOptions{});
  server.start();
  const HttpResponse r = http_get(server.http_port(), "/shutdown");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("shutting_down"), std::string::npos);
  server.wait();
  EXPECT_FALSE(server.running());
}

TEST(Server, SeededServerServesReportsBeforeAnyIngest) {
  std::vector<trace::FailureRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(rec(4, i % 4, t0 + i * 3600, 600));
  }
  Server server(ServerOptions{}, trace::FailureDataset(std::move(records)));
  server.start();
  const HttpResponse report =
      http_get(server.http_port(), "/report?system=4&window_hours=200");
  EXPECT_EQ(report.status, 200);
  EXPECT_NE(report.body.find("\"events_total\":100"), std::string::npos)
      << report.body;
  server.stop();
  server.wait();
  EXPECT_EQ(server.dataset().snapshot()->size(), 100u);
}

TEST(Server, TailsAnAppendedFile) {
  const std::string path =
      ::testing::TempDir() + "/serve_tail_" +
      std::to_string(::getpid()) + ".csv";
  std::remove(path.c_str());

  ServerOptions opts;
  opts.tail_path = path;
  Server server(opts);
  server.start();
  {
    std::string text = "system,node,start,end,workload,cause,detail\n";
    for (int i = 0; i < 20; ++i) text += csv_line(rec(6, 0, t0 + i * 60, 30));
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  wait_until_ingested(server, 20);
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << csv_line(rec(6, 1, t0 + 9000, 30));
  }
  wait_until_ingested(server, 21);
  server.stop();
  server.wait();
  std::remove(path.c_str());
  EXPECT_EQ(server.dataset().snapshot()->size(), 21u);
}

// --- HTTP hardening (slow-loris + interrupted sends) ----------------------

// Regression: the old loop bounded each recv (2s SO_RCVTIMEO) but not
// the request, so a client trickling one byte per interval held the sole
// HTTP thread forever and starved every other reader.
TEST(Server, SlowLorisRequestIsBoundedByAnOverallDeadline) {
  ServerOptions opts;
  opts.http_request_deadline_ms = 250;
  Server server(opts);
  server.start();

  const int slow = connect_to(server.http_port());
  std::atomic<bool> trickling{true};
  std::thread trickler([&] {
    const char byte = 'G';  // never completes a request line
    for (int i = 0; i < 30 && trickling.load(); ++i) {
      if (::send(slow, &byte, 1, MSG_NOSIGNAL) <= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  // A reader queued behind the slow request must be served once the
  // deadline trips — not after the trickler gives up (3s).
  const auto begin = std::chrono::steady_clock::now();
  const HttpResponse health = http_get(server.http_port(), "/healthz");
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");
  EXPECT_LT(waited.count(), 1500) << "healthz starved by a slow-loris peer";
  for (int i = 0; i < 200 && server.http_request_timeouts() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.http_request_timeouts(), 1u);

  trickling.store(false);
  trickler.join();
  ::close(slow);
  server.stop();
  server.wait();
}

// Regression: the old response loop aborted on any send() <= 0, so an
// EINTR under signal load silently truncated /metrics and /report.
TEST(Server, SendFullyRetriesInterruptedSends) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  struct sigaction action {};
  action.sa_handler = +[](int) {};  // interrupt blocking sends, do nothing
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  // Far larger than the socketpair buffer, so the sender blocks and the
  // signals land mid-send.
  const std::string payload(8 * 1024 * 1024, 'x');
  std::atomic<std::size_t> sent{0};
  std::thread sender(
      [&] { sent.store(send_fully(fds[0], payload)); });

  std::size_t received = 0;
  char buffer[4096];
  while (received < payload.size()) {
    pthread_kill(sender.native_handle(), SIGUSR1);
    const ssize_t n = ::recv(fds[1], buffer, sizeof(buffer), 0);
    ASSERT_GT(n, 0);
    received += static_cast<std::size_t>(n);
  }
  sender.join();
  EXPECT_EQ(sent.load(), payload.size());
  EXPECT_EQ(received, payload.size());

  ::sigaction(SIGUSR1, &previous, nullptr);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Server, SendFullyReturnsShortWhenThePeerIsGone) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  const std::string payload(1024 * 1024, 'y');
  // Must not raise SIGPIPE (MSG_NOSIGNAL) and must report the shortfall.
  EXPECT_LT(send_fully(fds[0], payload), payload.size());
  ::close(fds[0]);
}

// --- sharded ingest end-to-end --------------------------------------------

TEST(Server, ShardedIngestSealsIdenticalToBatch) {
  ServerOptions opts;
  opts.ingest_threads = 4;
  opts.epoch.min_rebuild_tail = 256;  // several seals mid-stream
  Server server(opts);
  server.start();

  std::vector<trace::FailureRecord> records;
  const std::size_t kEvents = 2000;
  for (std::size_t i = 0; i < kEvents; ++i) {
    records.push_back(rec(1 + static_cast<int>(i % 3),
                          static_cast<int>(i % 8),
                          t0 + static_cast<Seconds>(i) * 60, 300));
  }

  // Four producer connections, events sharded by (system, node) so each
  // node's stream stays ordered within one connection.
  std::vector<int> clients;
  std::vector<std::string> payloads(4);
  for (int c = 0; c < 4; ++c) clients.push_back(connect_to(server.ingest_port()));
  for (const trace::FailureRecord& r : records) {
    const std::size_t c = (static_cast<std::size_t>(r.system_id) * 8191u +
                           static_cast<std::size_t>(r.node_id)) %
                          4;
    payloads[c] += csv_line(r);
  }
  for (int c = 0; c < 4; ++c) send_all(clients[c], payloads[c]);
  wait_until_ingested(server, kEvents);

  const HttpResponse stats = http_get(server.http_port(), "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"ingest_threads\":4"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"shards\":["), std::string::npos);

  for (const int c : clients) ::close(c);
  server.stop();
  server.wait();

  // The tentpole contract over real sockets: bit-identical to one batch
  // build of the same records.
  const trace::FailureDataset reference{std::move(records)};
  const std::shared_ptr<const trace::FailureDataset> got =
      server.dataset().snapshot();
  ASSERT_EQ(got->size(), reference.size());
  const trace::ColumnsView g = got->records();
  const trace::ColumnsView w = reference.records();
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(g.starts()[i], w.starts()[i]) << "row " << i;
    ASSERT_EQ(g.system_ids()[i], w.system_ids()[i]) << "row " << i;
    ASSERT_EQ(g.node_ids()[i], w.node_ids()[i]) << "row " << i;
    ASSERT_EQ(g.ends()[i], w.ends()[i]) << "row " << i;
  }
}

TEST(Server, RetentionCompactsOldEventsDuringIngest) {
  ServerOptions opts;
  opts.epoch.min_rebuild_tail = 128;
  opts.epoch.max_sealed_events = 300;
  Server server(opts);
  server.start();

  const int client = connect_to(server.ingest_port());
  std::string payload;
  const std::size_t kEvents = 1000;
  for (std::size_t i = 0; i < kEvents; ++i) {
    payload += csv_line(rec(9, static_cast<int>(i % 8),
                            t0 + static_cast<Seconds>(i) * 60, 120));
  }
  send_all(client, payload);
  wait_until_ingested(server, kEvents);

  const HttpResponse stats = http_get(server.http_port(), "/stats");
  EXPECT_NE(stats.body.find("\"compacted_events\":"), std::string::npos);
  EXPECT_NE(stats.body.find("\"retention_horizon\":"), std::string::npos);

  ::close(client);
  server.stop();
  server.wait();
  // Every append is accounted for: raw (sealed + tail) + compacted.
  EXPECT_GT(server.dataset().compacted_events(), 0u);
  EXPECT_EQ(server.dataset().size() + server.dataset().compacted_events(),
            kEvents);
  EXPECT_LE(server.dataset().sealed_size(), 301u);  // cap + tie slack
}

// Regression: before the compacted-ledger view, /report silently lost
// every event retention had folded into SuffStats — a long-lived daemon
// under-reported history with no hint anything was missing.
TEST(Server, ReportAccountsForCompactedPreHorizonEvents) {
  ServerOptions opts;
  opts.epoch.min_rebuild_tail = 128;
  opts.epoch.max_sealed_events = 300;  // force compaction mid-stream
  Server server(opts);
  server.start();

  const int client = connect_to(server.ingest_port());
  std::string payload;
  const std::size_t kEvents = 1000;
  for (std::size_t i = 0; i < kEvents; ++i) {
    payload += csv_line(rec(9, static_cast<int>(i % 8),
                            t0 + static_cast<Seconds>(i) * 60, 120));
  }
  send_all(client, payload);
  wait_until_ingested(server, kEvents);
  ::close(client);
  for (int i = 0; i < 500 && server.dataset().compacted_events() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Compaction only advances on seals, and ingest has drained, so the
  // ledger is stable from here on.
  const std::uint64_t compacted = server.dataset().compacted_events();
  ASSERT_GT(compacted, 0u);

  const HttpResponse report =
      http_get(server.http_port(), "/report?system=9&window_hours=48");
  EXPECT_EQ(report.status, 200);
  // The live window still sees every observation (analytics is not
  // subject to retention)...
  EXPECT_NE(report.body.find("\"events_total\":" +
                             std::to_string(kEvents)),
            std::string::npos)
      << report.body;
  // ...and the compacted section accounts for exactly the pre-horizon
  // events the store folded away, with their per-cause repair stats.
  const std::string needle =
      "\"compacted\":{\"events\":" + std::to_string(compacted);
  EXPECT_NE(report.body.find(needle), std::string::npos) << report.body;
  const std::size_t section = report.body.find("\"compacted\":");
  ASSERT_NE(section, std::string::npos);
  EXPECT_NE(report.body.find("\"cause\":\"hardware\"", section),
            std::string::npos)
      << report.body;
  EXPECT_NE(report.body.find("\"repair_minutes\"", section),
            std::string::npos);

  // Systems with no compaction cells report an empty ledger.
  const HttpResponse other =
      http_get(server.http_port(), "/report?system=9&window_hours=1");
  EXPECT_NE(other.body.find(needle), std::string::npos)
      << "ledger must not depend on the window";

  server.stop();
  server.wait();
}

// --- replay client ---------------------------------------------------------

TEST(Replay, RejectsInvalidOptions) {
  const trace::FailureDataset empty;
  {
    ReplayOptions opts;  // port 0
    EXPECT_THROW(replay_dataset(empty, opts), ValidationError);
  }
  {
    ReplayOptions opts;
    opts.port = 9;
    opts.connections = 0;
    EXPECT_THROW(replay_dataset(empty, opts), ValidationError);
  }
  {
    ReplayOptions opts;
    opts.port = 9;
    opts.speedup = -1.0;
    EXPECT_THROW(replay_dataset(empty, opts), ValidationError);
  }
}

TEST(Replay, FullSpeedReplayIngestsTheWholeTrace) {
  std::vector<trace::FailureRecord> records;
  for (int i = 0; i < 800; ++i) {
    records.push_back(rec(2 + i % 2, i % 8, t0 + i * 60, 300));
  }
  const trace::FailureDataset dataset{std::move(records)};

  ServerOptions sopts;
  sopts.ingest_threads = 2;
  Server server(sopts);
  server.start();

  ReplayOptions ropts;
  ropts.port = server.ingest_port();
  ropts.connections = 3;
  const ReplayStats stats = replay_dataset(dataset, ropts);
  EXPECT_EQ(stats.events_sent, 800u);
  EXPECT_GT(stats.bytes_sent, 0u);
  wait_until_ingested(server, 800);
  server.stop();
  server.wait();
  EXPECT_EQ(server.events_rejected(), 0u);
  EXPECT_EQ(server.dataset().snapshot()->size(), 800u);
}

TEST(Replay, ReplayedReportsMatchASeededServerByteForByte) {
  std::vector<trace::FailureRecord> records;
  for (int i = 0; i < 300; ++i) {
    records.push_back(rec(5, i % 6, t0 + i * 900, 60 + (i % 7) * 30));
  }
  const trace::FailureDataset replayed{std::vector<trace::FailureRecord>(records)};

  Server live(ServerOptions{});
  live.start();
  ReplayOptions ropts;
  ropts.port = live.ingest_port();
  ropts.connections = 1;  // one connection: arrival order == trace order
  replay_dataset(replayed, ropts);
  wait_until_ingested(live, 300);

  Server seeded(ServerOptions{},
                trace::FailureDataset{std::vector<trace::FailureRecord>(records)});
  seeded.start();

  // Identical observation sequences must yield identical report bytes.
  const std::string target = "/report?system=5&window_hours=80";
  const HttpResponse from_live = http_get(live.http_port(), target);
  const HttpResponse from_seed = http_get(seeded.http_port(), target);
  EXPECT_EQ(from_live.status, 200);
  EXPECT_EQ(from_live.body, from_seed.body);

  live.stop();
  seeded.stop();
  live.wait();
  seeded.wait();
}

TEST(Replay, ForeignFormatReplayMatchesBatchLoadByteForByte) {
  // Satellite: a foreign-format trace pushed through the adapter path end
  // to end. Write a lu-format file, batch-load it back through the
  // adapter, replay the loaded trace over the lu wire format into a
  // `--format lu` daemon, and require the live /report to be
  // byte-identical to a server seeded from the same batch load.
  std::vector<trace::FailureRecord> records;
  for (int i = 0; i < 300; ++i) {
    records.push_back(rec(5, i % 6, t0 + i * 900, 60 + (i % 7) * 30));
  }
  const trace::Adapter& lu = trace::adapter_for("lu");
  const std::string path = ::testing::TempDir() + "/replay_foreign_" +
                           std::to_string(::getpid()) + ".lu";
  trace::write_adapter_file(path, trace::FailureDataset{std::move(records)},
                            lu);
  const trace::FailureDataset loaded = trace::read_adapter_file(path, lu);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), 300u);

  ServerOptions lopts;
  lopts.ingest_format = "lu";
  Server live(lopts);
  live.start();
  ReplayOptions ropts;
  ropts.port = live.ingest_port();
  ropts.connections = 1;  // one connection: arrival order == trace order
  ropts.adapter = &lu;
  const ReplayStats stats = replay_dataset(loaded, ropts);
  EXPECT_EQ(stats.events_sent, 300u);
  wait_until_ingested(live, 300);
  EXPECT_EQ(live.events_rejected(), 0u);

  Server seeded(ServerOptions{}, trace::FailureDataset(loaded));
  seeded.start();

  const std::string target = "/report?system=5&window_hours=80";
  const HttpResponse from_live = http_get(live.http_port(), target);
  const HttpResponse from_seed = http_get(seeded.http_port(), target);
  EXPECT_EQ(from_live.status, 200);
  EXPECT_EQ(from_live.body, from_seed.body);

  live.stop();
  seeded.stop();
  live.wait();
  seeded.wait();
}

TEST(Replay, SpeedupPacesTheWallClock) {
  std::vector<trace::FailureRecord> records;
  for (int i = 0; i <= 10; ++i) {
    records.push_back(rec(1, i % 4, t0 + i, 60));  // 10s trace span
  }
  const trace::FailureDataset dataset{std::move(records)};

  Server server(ServerOptions{});
  server.start();
  ReplayOptions ropts;
  ropts.port = server.ingest_port();
  ropts.speedup = 20.0;  // 10s of trace time -> ~0.5s wall
  const ReplayStats stats = replay_dataset(dataset, ropts);
  EXPECT_EQ(stats.events_sent, 11u);
  EXPECT_EQ(stats.trace_span, 10);
  EXPECT_GE(stats.wall_seconds, 0.45);
  EXPECT_LT(stats.wall_seconds, 5.0);
  server.stop();
  server.wait();
}

}  // namespace
}  // namespace hpcfail::serve
