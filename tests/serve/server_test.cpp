// End-to-end tests of the streaming daemon over real sockets: ephemeral
// ports, a raw line-protocol client, HTTP readers querying *during*
// ingest, reject-and-count on malformed lines, and both shutdown paths.
#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "serve/analytics.hpp"
#include "trace/record.hpp"

namespace hpcfail::serve {
namespace {

trace::FailureRecord rec(int system, int node, Seconds start,
                         Seconds duration) {
  trace::FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + duration;
  r.cause = trace::RootCause::hardware;
  r.detail = trace::DetailCause::memory_dimm;
  return r;
}

std::string csv_line(const trace::FailureRecord& r) {
  return std::to_string(r.system_id) + "," + std::to_string(r.node_id) +
         "," + format_timestamp(r.start) + "," + format_timestamp(r.end) +
         ",compute,hardware,memory_dimm\n";
}

const Seconds t0 = to_epoch(2004, 6, 1);

// --- LiveAnalytics unit coverage -----------------------------------------

TEST(LiveAnalytics, WindowedReportMatchesHandComputation) {
  LiveAnalytics analytics;
  // Three failures on one node, one hour apart, 30 minutes down each.
  analytics.observe(rec(3, 1, t0, 1800));
  analytics.observe(rec(3, 1, t0 + 3600, 1800));
  analytics.observe(rec(3, 1, t0 + 7200, 1800));
  EXPECT_EQ(analytics.events_observed(), 3u);
  EXPECT_EQ(analytics.latest_at(), t0 + 7200);

  const WindowReport report =
      analytics.report(3, 24 * kSecondsPerHour);
  EXPECT_EQ(report.events_total, 3u);
  EXPECT_EQ(report.repair_minutes.n, 3u);
  EXPECT_DOUBLE_EQ(report.repair_minutes.mean(), 30.0);
  EXPECT_EQ(report.node_gaps_seconds.n, 2u);
  EXPECT_DOUBLE_EQ(report.node_gaps_seconds.mean(), 3600.0);
  EXPECT_EQ(report.system_gaps_seconds.n, 2u);
  ASSERT_EQ(report.by_cause.size(), 1u);
  EXPECT_EQ(report.by_cause[0].cause, trace::RootCause::hardware);
  EXPECT_EQ(report.by_cause[0].repair_minutes.n, 3u);
}

TEST(LiveAnalytics, WindowExcludesOldEvents) {
  LiveAnalytics analytics;
  analytics.observe(rec(1, 0, t0, 600));
  analytics.observe(rec(1, 0, t0 + 40 * kSecondsPerHour, 600));
  // A 2-hour window anchored at the latest event excludes the first.
  const WindowReport narrow = analytics.report(1, 2 * kSecondsPerHour);
  EXPECT_EQ(narrow.repair_minutes.n, 1u);
  const WindowReport wide = analytics.report(1, 100 * kSecondsPerHour);
  EXPECT_EQ(wide.repair_minutes.n, 2u);
}

TEST(LiveAnalytics, UnknownSystemYieldsEmptyReport) {
  LiveAnalytics analytics;
  analytics.observe(rec(1, 0, t0, 600));
  const WindowReport report = analytics.report(42, kSecondsPerHour);
  EXPECT_EQ(report.events_total, 0u);
  EXPECT_EQ(report.repair_minutes.n, 0u);
  EXPECT_TRUE(report.repair_fits.empty());
}

TEST(LiveAnalytics, ReportJsonHasSchemaAndSections) {
  LiveAnalytics analytics;
  for (int i = 0; i < 40; ++i) {
    analytics.observe(rec(2, i % 4, t0 + i * 900, 60 + i * 30));
  }
  const std::string json =
      to_json(analytics.report(2, 24 * kSecondsPerHour));
  for (const char* needle :
       {"\"schema\":\"hpcfail.serve.report\"", "\"version\":1",
        "\"system\":2", "\"repair_minutes\"", "\"node_gaps_seconds\"",
        "\"system_gaps_seconds\"", "\"by_cause\"", "\"repair_fits\"",
        "\"node_gap_fits\"", "\"mean\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n"
                                                    << json;
  }
}

// --- socket helpers -------------------------------------------------------

int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + sent, text.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

struct HttpResponse {
  int status = 0;
  std::string body;
};

HttpResponse http_get(int port, const std::string& target) {
  const int fd = connect_to(port);
  send_all(fd, "GET " + target + " HTTP/1.0\r\n\r\n");
  std::string raw;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  HttpResponse response;
  const std::size_t space = raw.find(' ');
  if (space != std::string::npos) {
    response.status = std::stoi(raw.substr(space + 1, 3));
  }
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    response.body = raw.substr(header_end + 4);
  }
  return response;
}

void wait_until_ingested(const Server& server, std::uint64_t count) {
  for (int i = 0; i < 500 && server.events_ingested() < count; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(server.events_ingested(), count);
}

// --- option validation ----------------------------------------------------

TEST(Server, RejectsInvalidOptions) {
  {
    ServerOptions opts;
    opts.ingest_port = 70000;
    EXPECT_THROW(Server s(opts), ValidationError);
  }
  {
    ServerOptions opts;
    opts.host = "not an address";
    EXPECT_THROW(Server s(opts), ValidationError);
  }
  {
    ServerOptions opts;
    opts.bucket_seconds = 0;
    EXPECT_THROW(Server s(opts), ValidationError);
  }
  {
    ServerOptions opts;
    opts.window_seconds = -5;
    EXPECT_THROW(Server s(opts), ValidationError);
  }
}

// --- end-to-end -----------------------------------------------------------

TEST(Server, IngestsStreamRejectsMalformedAndServesReaders) {
  ServerOptions opts;
  opts.epoch.min_rebuild_tail = 64;  // exercise several epochs
  Server server(opts);
  server.start();
  ASSERT_GT(server.ingest_port(), 0);
  ASSERT_GT(server.http_port(), 0);

  EXPECT_EQ(http_get(server.http_port(), "/healthz").body, "ok\n");

  const int client = connect_to(server.ingest_port());
  std::string payload;
  const std::size_t kEvents = 500;
  for (std::size_t i = 0; i < kEvents; ++i) {
    payload += csv_line(rec(7, static_cast<int>(i % 8),
                            t0 + static_cast<Seconds>(i) * 120, 300));
  }
  payload += "this is not an event\n";
  send_all(client, payload);
  wait_until_ingested(server, kEvents);
  for (int i = 0; i < 500 && server.events_rejected() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.events_rejected(), 1u);

  // Readers are served while the connection is still open (no rebuild
  // or drain-to-idle needed first).
  const HttpResponse stats = http_get(server.http_port(), "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"events_ingested\":500"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"events_rejected\":1"), std::string::npos);

  const HttpResponse report =
      http_get(server.http_port(), "/report?system=7&window_hours=48");
  EXPECT_EQ(report.status, 200);
  EXPECT_NE(report.body.find("\"schema\":\"hpcfail.serve.report\""),
            std::string::npos);
  EXPECT_NE(report.body.find("\"repair_fits\""), std::string::npos);

  EXPECT_EQ(http_get(server.http_port(), "/report?system=999").status,
            404);
  EXPECT_EQ(http_get(server.http_port(), "/report?system=oops").status,
            400);
  EXPECT_EQ(http_get(server.http_port(), "/nope").status, 404);

  const HttpResponse metrics = http_get(server.http_port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);

  ::close(client);
  server.stop();
  server.wait();
  // The final seal folds the tail into the published snapshot.
  EXPECT_EQ(server.dataset().snapshot()->size(), kEvents);
  EXPECT_GE(server.dataset().epoch(), 2u);
}

TEST(Server, ConcurrentReadersDuringSustainedIngest) {
  ServerOptions opts;
  opts.epoch.min_rebuild_tail = 128;
  Server server(opts);
  server.start();

  std::atomic<bool> done{false};
  std::atomic<int> reads{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load()) {
        const HttpResponse r =
            http_get(server.http_port(), "/report?system=5");
        // 404 until the first event lands, 200 after; anything else
        // (or a dropped connection) is a failure.
        if (r.status != 200 && r.status != 404) failures.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }

  const int client = connect_to(server.ingest_port());
  const std::size_t kEvents = 2000;
  std::string payload;
  for (std::size_t i = 0; i < kEvents; ++i) {
    payload += csv_line(rec(5, static_cast<int>(i % 16),
                            t0 + static_cast<Seconds>(i) * 60, 120));
  }
  send_all(client, payload);
  wait_until_ingested(server, kEvents);
  ::close(client);

  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(http_get(server.http_port(), "/report?system=5").status, 200);

  server.stop();
  server.wait();
}

TEST(Server, MaxEventsStopsTheDaemon) {
  ServerOptions opts;
  opts.max_events = 10;
  Server server(opts);
  server.start();
  const int client = connect_to(server.ingest_port());
  std::string payload;
  for (int i = 0; i < 25; ++i) {
    payload += csv_line(rec(1, 0, t0 + i * 60, 30));
  }
  send_all(client, payload);
  server.wait();  // returns because max_events tripped, not stop()
  ::close(client);
  EXPECT_GE(server.events_ingested(), 10u);
  EXPECT_EQ(server.dataset().snapshot()->size(), server.events_ingested());
}

TEST(Server, ShutdownEndpointStopsTheDaemon) {
  Server server(ServerOptions{});
  server.start();
  const HttpResponse r = http_get(server.http_port(), "/shutdown");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("shutting_down"), std::string::npos);
  server.wait();
  EXPECT_FALSE(server.running());
}

TEST(Server, SeededServerServesReportsBeforeAnyIngest) {
  std::vector<trace::FailureRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(rec(4, i % 4, t0 + i * 3600, 600));
  }
  Server server(ServerOptions{}, trace::FailureDataset(std::move(records)));
  server.start();
  const HttpResponse report =
      http_get(server.http_port(), "/report?system=4&window_hours=200");
  EXPECT_EQ(report.status, 200);
  EXPECT_NE(report.body.find("\"events_total\":100"), std::string::npos)
      << report.body;
  server.stop();
  server.wait();
  EXPECT_EQ(server.dataset().snapshot()->size(), 100u);
}

TEST(Server, TailsAnAppendedFile) {
  const std::string path =
      ::testing::TempDir() + "/serve_tail_" +
      std::to_string(::getpid()) + ".csv";
  std::remove(path.c_str());

  ServerOptions opts;
  opts.tail_path = path;
  Server server(opts);
  server.start();
  {
    std::string text = "system,node,start,end,workload,cause,detail\n";
    for (int i = 0; i < 20; ++i) text += csv_line(rec(6, 0, t0 + i * 60, 30));
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  wait_until_ingested(server, 20);
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << csv_line(rec(6, 1, t0 + 9000, 30));
  }
  wait_until_ingested(server, 21);
  server.stop();
  server.wait();
  std::remove(path.c_str());
  EXPECT_EQ(server.dataset().snapshot()->size(), 21u);
}

}  // namespace
}  // namespace hpcfail::serve
