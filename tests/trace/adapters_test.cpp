#include "trace/adapters/adapter.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "trace/dataset.hpp"
#include "trace/record.hpp"
#include "trace/types.hpp"

namespace hpcfail::trace {
namespace {

FailureRecord sample_record() {
  FailureRecord r;
  r.system_id = 2;
  r.node_id = 7;
  r.start = to_epoch(2004, 6, 1) + 3600;
  r.end = r.start + 389;
  r.workload = Workload::compute;
  r.cause = RootCause::human;
  r.detail = DetailCause::operator_error;
  return r;
}

FailureDataset sample_dataset() {
  std::vector<FailureRecord> records;
  FailureRecord a = sample_record();
  records.push_back(a);
  FailureRecord b = sample_record();
  b.node_id = 3;
  b.start = a.start + 7200;
  b.end = b.start + 1200;
  b.cause = RootCause::hardware;
  b.detail = DetailCause::memory_dimm;
  records.push_back(b);
  return FailureDataset(std::move(records));
}

TEST(AdapterRegistry, ListsAdaptersAscendingByName) {
  const auto adapters = all_adapters();
  ASSERT_EQ(adapters.size(), 3u);
  EXPECT_EQ(adapters[0]->name(), "lu");
  EXPECT_EQ(adapters[1]->name(), "mistral");
  EXPECT_EQ(adapters[2]->name(), "tan");
  EXPECT_EQ(adapter_names(), "lu, mistral, tan");
}

TEST(AdapterRegistry, LooksUpByNameAndRejectsUnknown) {
  EXPECT_EQ(adapter_for("tan").name(), "tan");
  try {
    adapter_for("slurmdb");
    FAIL() << "should have thrown";
  } catch (const ValidationError& e) {
    // The message must list the known names so the CLI error is
    // self-explanatory.
    EXPECT_NE(std::string(e.what()).find("lu, mistral, tan"),
              std::string::npos);
  }
}

TEST(AdapterLu, FormatsAndParsesOneLine) {
  const Adapter& lu = adapter_for("lu");
  const FailureRecord r = sample_record();
  const std::string line = lu.format_line(r);
  EXPECT_EQ(line, std::to_string(r.start) +
                      " c2n7 NODE_FAIL 389s comp HUM/oper");
  const FailureRecord back = lu.parse_line(line);
  EXPECT_EQ(back, r);
}

TEST(AdapterLu, ErrorTaxonomy) {
  const Adapter& lu = adapter_for("lu");
  const std::string good = lu.format_line(sample_record());
  // Malformed shapes are ParseErrors.
  EXPECT_THROW(lu.parse_line(""), ParseError);
  EXPECT_THROW(lu.parse_line("only three fields here"), ParseError);
  EXPECT_THROW(lu.parse_line("123 c2n7 JOB_START 389s comp HUM/oper"),
               ParseError);
  EXPECT_THROW(lu.parse_line("123 x2n7 NODE_FAIL 389s comp HUM/oper"),
               ParseError);
  EXPECT_THROW(lu.parse_line("123 c2n7 NODE_FAIL 389 comp HUM/oper"),
               ParseError);
  EXPECT_THROW(lu.parse_line("123 c2n7 NODE_FAIL 389s comp HUMoper"),
               ParseError);
  EXPECT_THROW(lu.parse_line("123 c2n7 NODE_FAIL 389s comp ZZZ/oper"),
               ParseError);
  // Well-formed but semantically invalid lines are ValidationErrors:
  // negative downtime, cause/detail category mismatch.
  EXPECT_THROW(lu.parse_line("123 c2n7 NODE_FAIL -5s comp HUM/oper"),
               ValidationError);
  EXPECT_THROW(lu.parse_line("123 c2n7 NODE_FAIL 389s comp HUM/mem"),
               ValidationError);
  // The good line still parses after all that.
  EXPECT_NO_THROW(lu.parse_line(good));
}

TEST(AdapterTan, FormatsAndParsesOneLine) {
  const Adapter& tan = adapter_for("tan");
  const FailureRecord r = sample_record();
  const std::string line = tan.format_line(r);
  EXPECT_EQ(line,
            "2|7|06/01/2004 01:00:00|06/01/2004 01:06:29|389|Human|"
            "Operator|Compute");
  EXPECT_EQ(tan.parse_line(line), r);
}

TEST(AdapterTan, RejectsDurationDisagreement) {
  const Adapter& tan = adapter_for("tan");
  // The redundant duration column must equal up - down.
  try {
    tan.parse_line(
        "2|7|06/01/2004 01:00:00|06/01/2004 01:06:29|400|Human|"
        "Operator|Compute");
    FAIL() << "should have thrown";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("disagrees"), std::string::npos);
  }
  EXPECT_THROW(
      tan.parse_line("2|7|2004-06-01 01:00:00|06/01/2004 01:06:29|389|"
                     "Human|Operator|Compute"),
      ParseError);
  EXPECT_THROW(
      tan.parse_line("2|7|06/01/2004 01:00:00|06/01/2004 01:06:29|389|"
                     "Gremlins|Operator|Compute"),
      ParseError);
}

TEST(AdapterMistral, FormatsAndParsesOneLine) {
  const Adapter& mistral = adapter_for("mistral");
  const FailureRecord r = sample_record();
  const std::string line = mistral.format_line(r);
  EXPECT_EQ(line,
            "j2-7,m2n7,2004-06-01T01:00:00,2004-06-01T01:06:29,"
            "FAILED_OP,operator,compute");
  EXPECT_EQ(mistral.parse_line(line), r);
}

TEST(AdapterMistral, RejectsJobHostMismatch) {
  const Adapter& mistral = adapter_for("mistral");
  // job_id and host encode the same (system, node); a disagreement is
  // semantic, not syntactic.
  EXPECT_THROW(
      mistral.parse_line("j2-8,m2n7,2004-06-01T01:00:00,"
                         "2004-06-01T01:06:29,FAILED_OP,operator,compute"),
      ValidationError);
  EXPECT_THROW(
      mistral.parse_line("j2-7,m2n7,2004-06-01 01:00:00,"
                         "2004-06-01T01:06:29,FAILED_OP,operator,compute"),
      ParseError);
  EXPECT_THROW(
      mistral.parse_line("j2-7,m2n7,2004-06-01T01:00:00,"
                         "2004-06-01T01:06:29,FAILED_OP,gremlin,compute"),
      ParseError);
}

TEST(AdapterValidate, ChecksSharedSemantics) {
  FailureRecord r = sample_record();
  EXPECT_NO_THROW(validate_adapted(r));
  r.system_id = 0;
  EXPECT_THROW(validate_adapted(r), ValidationError);
  r = sample_record();
  r.node_id = -1;
  EXPECT_THROW(validate_adapted(r), ValidationError);
  r = sample_record();
  r.end = r.start - 1;
  EXPECT_THROW(validate_adapted(r), ValidationError);
  r = sample_record();
  r.detail = DetailCause::memory_dimm;  // category hardware, cause human
  EXPECT_THROW(validate_adapted(r), ValidationError);
}

TEST(AdapterSourceTest, StrictModeThrowsWithLinePrefix) {
  const Adapter& lu = adapter_for("lu");
  std::istringstream in(std::string(lu.header()) + "\n" +
                        lu.format_line(sample_record()) + "\n" +
                        "garbage line that cannot parse at all ok\n");
  AdapterSource source(in, lu);
  FailureRecord out;
  EXPECT_EQ(source.next(out), SourceStatus::event);
  try {
    source.next(out);
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3:"), std::string::npos);
  }
}

TEST(AdapterSourceTest, RejectModeCountsAndContinues) {
  const Adapter& tan = adapter_for("tan");
  const FailureRecord r = sample_record();
  std::istringstream in(std::string(tan.header()) + "\n" +
                        "not|a|valid|row\n" + tan.format_line(r) + "\n" +
                        "\n" +  // blank lines are skipped, not rejected
                        tan.format_line(r) + "\n");
  AdapterSource source(in, tan, AdapterSource::OnError::reject);
  FailureRecord out;
  std::size_t events = 0;
  while (source.next(out) == SourceStatus::event) ++events;
  EXPECT_EQ(events, 2u);
  EXPECT_EQ(source.counters().accepted, 2u);
  EXPECT_EQ(source.counters().rejected, 1u);
  EXPECT_FALSE(source.counters().last_error.empty());
}

TEST(AdapterFiles, WriteThenReadIsIdentity) {
  const FailureDataset ds = sample_dataset();
  for (const Adapter* adapter : all_adapters()) {
    const std::string path =
        "adapter_file_test_" + std::string(adapter->name()) + ".txt";
    write_adapter_file(path, ds, *adapter);
    const FailureDataset back = read_adapter_file(path, *adapter);
    ASSERT_EQ(back.size(), ds.size()) << adapter->name();
    for (std::size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(back.records()[i], ds.records()[i]) << adapter->name();
    }
    std::remove(path.c_str());
  }
}

TEST(AdapterFiles, LenientReadCountsRejects) {
  const Adapter& mistral = adapter_for("mistral");
  const std::string path = "adapter_file_lenient_test.txt";
  {
    std::ofstream out(path);
    out << mistral.header() << "\n";
    out << mistral.format_line(sample_record()) << "\n";
    out << "j1-1,m1n1,not-a-timestamp-here,2004-06-01T01:06:29,"
           "FAILED_OP,operator,compute\n";
  }
  SourceCounters counters;
  const FailureDataset ds = read_adapter_file(path, mistral, &counters);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.rejected, 1u);
  // The strict path reports the same line with its number.
  EXPECT_THROW(read_adapter_file(path, mistral), ParseError);
  std::remove(path.c_str());
}

TEST(AdapterLineSource, StreamsForeignLinesWithRejectAndCount) {
  // The serve-ingest path: a LineSource constructed with an adapter
  // parses that wire format and flattens the whole error taxonomy
  // (ParseError and ValidationError alike) into reject-and-count.
  const Adapter& lu = adapter_for("lu");
  LineSource source(&lu);
  const FailureRecord r = sample_record();
  source.feed(lu.format_line(r) + "\n");
  source.feed(std::string(lu.header()) + "\n");       // skipped
  source.feed("123 c2n7 NODE_FAIL -9s comp HUM/oper\n");  // ValidationError
  source.feed("complete garbage\n");                      // ParseError
  source.finish();
  FailureRecord out;
  std::size_t events = 0;
  while (source.next(out) == SourceStatus::event) {
    EXPECT_EQ(out, r);
    ++events;
  }
  EXPECT_EQ(events, 1u);
  EXPECT_EQ(source.counters().accepted, 1u);
  EXPECT_EQ(source.counters().rejected, 2u);
}

}  // namespace
}  // namespace hpcfail::trace
