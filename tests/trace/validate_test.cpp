#include "trace/validate.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synth/corruption.hpp"
#include "synth/generator.hpp"

namespace hpcfail::trace {
namespace {

FailureRecord rec(int system, int node, Seconds start, Seconds duration,
                  Workload wl = Workload::compute) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + duration;
  r.workload = wl;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::memory_dimm;
  return r;
}

TEST(Validate, CleanSyntheticTraceValidates) {
  const FailureDataset dataset = synth::generate_lanl_trace(42);
  const ValidationReport report =
      validate(dataset, SystemCatalog::lanl());
  EXPECT_EQ(report.records_checked, dataset.size());
  // The generator never emits unknown ids, out-of-window or mislabeled
  // records; overlapping repairs can occur legitimately (a node can be
  // reported failed again while a long repair ticket is open), so only
  // the structural kinds must be absent.
  EXPECT_EQ(report.count(ValidationIssueKind::unknown_system), 0u);
  EXPECT_EQ(report.count(ValidationIssueKind::node_out_of_range), 0u);
  EXPECT_EQ(report.count(ValidationIssueKind::outside_production), 0u);
  EXPECT_EQ(report.count(ValidationIssueKind::workload_mismatch), 0u);
  EXPECT_EQ(report.count(ValidationIssueKind::implausible_duration), 0u);
}

TEST(Validate, FlagsUnknownSystem) {
  const FailureDataset ds({rec(99, 0, to_epoch(2003, 1, 1), 600)});
  const ValidationReport report = validate(ds, SystemCatalog::lanl());
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, ValidationIssueKind::unknown_system);
  EXPECT_EQ(report.issues[0].record_index, 0u);
  EXPECT_FALSE(report.clean());
}

TEST(Validate, FlagsNodeOutOfRange) {
  const FailureDataset ds({rec(12, 32, to_epoch(2004, 1, 1), 600)});
  const ValidationReport report = validate(ds, SystemCatalog::lanl());
  EXPECT_EQ(report.count(ValidationIssueKind::node_out_of_range), 1u);
}

TEST(Validate, FlagsOutsideProduction) {
  // System 19 retired 09/2002.
  const FailureDataset ds({rec(19, 3, to_epoch(2004, 1, 1), 600)});
  const ValidationReport report = validate(ds, SystemCatalog::lanl());
  EXPECT_EQ(report.count(ValidationIssueKind::outside_production), 1u);
}

TEST(Validate, FlagsOverlappingRepair) {
  const Seconds t0 = to_epoch(2005, 1, 1);  // inside system 22's window
  const FailureDataset ds({
      rec(22, 0, t0, 7200),          // down for two hours
      rec(22, 0, t0 + 3600, 600),    // reported again mid-repair
      rec(22, 0, t0 + 9000, 600),    // fine
  });
  const ValidationReport report = validate(ds, SystemCatalog::lanl());
  EXPECT_EQ(report.count(ValidationIssueKind::overlapping_repair), 1u);
  EXPECT_EQ(report.issues[0].record_index, 1u);
}

TEST(Validate, FlagsImplausibleDuration) {
  const FailureDataset ds(
      {rec(22, 0, to_epoch(2004, 12, 1), 90 * kSecondsPerDay)});
  ValidationOptions options;
  options.max_repair_days = 60.0;
  const ValidationReport report =
      validate(ds, SystemCatalog::lanl(), options);
  EXPECT_EQ(report.count(ValidationIssueKind::implausible_duration), 1u);
}

TEST(Validate, FlagsWorkloadMismatchOnlyWhenAsked) {
  // Node 22 of system 20 is a graphics node; label it compute.
  const FailureDataset ds(
      {rec(20, 22, to_epoch(2004, 1, 1), 600, Workload::compute)});
  ValidationReport report = validate(ds, SystemCatalog::lanl());
  EXPECT_EQ(report.count(ValidationIssueKind::workload_mismatch), 1u);
  ValidationOptions lax;
  lax.check_workloads = false;
  report = validate(ds, SystemCatalog::lanl(), lax);
  EXPECT_EQ(report.count(ValidationIssueKind::workload_mismatch), 0u);
}

TEST(Validate, EmptyDatasetIsClean) {
  const ValidationReport report =
      validate(FailureDataset{}, SystemCatalog::lanl());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records_checked, 0u);
}

TEST(DropFlagged, RemovesExactlyTheFlaggedRecords) {
  const Seconds t0 = to_epoch(2005, 1, 1);  // inside system 22's window
  const FailureDataset ds({
      rec(22, 0, t0, 600),
      rec(99, 0, t0 + 1000, 600),  // unknown system
      rec(22, 0, t0 + 2000, 600),
  });
  const ValidationReport report = validate(ds, SystemCatalog::lanl());
  const FailureDataset cleaned = drop_flagged(ds, report);
  EXPECT_EQ(cleaned.size(), 2u);
  EXPECT_TRUE(validate(cleaned, SystemCatalog::lanl()).clean());
}

TEST(Validate, CatchesInjectedCorruption) {
  // End-to-end failure injection: corrupt the clean trace and verify the
  // validator finds every class of damage.
  const FailureDataset clean = synth::generate_lanl_trace(7);
  synth::CorruptionConfig cfg;
  cfg.seed = 3;
  cfg.corrupt_node_probability = 0.01;
  cfg.stretch_repair_probability = 0.005;
  const FailureDataset dirty = synth::corrupt(clean, cfg);

  const ValidationReport report = validate(dirty, SystemCatalog::lanl());
  EXPECT_GT(report.count(ValidationIssueKind::node_out_of_range),
            dirty.size() / 500);
  EXPECT_GT(report.count(ValidationIssueKind::implausible_duration), 0u);

  // Dropping the flagged records yields a structurally clean dataset.
  const FailureDataset cleaned = drop_flagged(dirty, report);
  const ValidationReport recheck =
      validate(cleaned, SystemCatalog::lanl());
  EXPECT_EQ(recheck.count(ValidationIssueKind::node_out_of_range), 0u);
  EXPECT_EQ(recheck.count(ValidationIssueKind::implausible_duration), 0u);
}

TEST(Corrupt, DropAndRelabelRates) {
  const FailureDataset clean = synth::generate_lanl_trace(7);
  synth::CorruptionConfig cfg;
  cfg.seed = 11;
  cfg.drop_probability = 0.10;
  cfg.relabel_unknown_probability = 0.20;
  const FailureDataset dirty = synth::corrupt(clean, cfg);
  const double kept = static_cast<double>(dirty.size()) /
                      static_cast<double>(clean.size());
  EXPECT_NEAR(kept, 0.90, 0.02);

  std::size_t unknown_clean = 0;
  std::size_t unknown_dirty = 0;
  for (const FailureRecord& r : clean.records()) {
    if (r.cause == RootCause::unknown) ++unknown_clean;
  }
  for (const FailureRecord& r : dirty.records()) {
    if (r.cause == RootCause::unknown) ++unknown_dirty;
  }
  EXPECT_GT(static_cast<double>(unknown_dirty) /
                static_cast<double>(dirty.size()),
            static_cast<double>(unknown_clean) /
                static_cast<double>(clean.size()) +
                0.1);
}

TEST(Corrupt, ValidatesProbabilities) {
  const FailureDataset clean({rec(22, 0, to_epoch(2005, 1, 1), 60)});
  synth::CorruptionConfig cfg;
  cfg.drop_probability = 1.5;
  EXPECT_THROW(synth::corrupt(clean, cfg), InvalidArgument);
}

TEST(Corrupt, DeterministicGivenSeed) {
  const FailureDataset clean = synth::generate_lanl_trace(7);
  synth::CorruptionConfig cfg;
  cfg.seed = 5;
  cfg.drop_probability = 0.05;
  const FailureDataset a = synth::corrupt(clean, cfg);
  const FailureDataset b = synth::corrupt(clean, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i], b.records()[i]);
  }
}

}  // namespace
}  // namespace hpcfail::trace
