#include "trace/source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "trace/io.hpp"

namespace hpcfail::trace {
namespace {

const std::string kGoodLine =
    "2,0,1996-06-07 08:48:45,1996-06-07 08:55:14,compute,human,"
    "operator_error";

std::string sample_csv() {
  std::string text = std::string(kCsvHeader) + "\n";
  text += kGoodLine + "\n";
  text += "2,0,1996-06-07 14:18:50,1996-06-07 14:40:17,compute,hardware,"
          "memory_dimm\n";
  return text;
}

TEST(RecordFromLine, ParsesAndTrims) {
  const FailureRecord r =
      record_from_line(" 2 , 0 , 1996-06-07 08:48:45 , 1996-06-07 08:55:14 "
                       ",compute,human,operator_error");
  EXPECT_EQ(r.system_id, 2);
  EXPECT_EQ(r.node_id, 0);
  EXPECT_EQ(r.end - r.start, 389);
  EXPECT_EQ(r.cause, RootCause::human);
}

TEST(RecordFromLine, RejectsWrongFieldCount) {
  try {
    record_from_line("1,2,3");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("expected 7 fields, got 3"),
              std::string::npos);
  }
  EXPECT_THROW(record_from_line(kGoodLine + ",extra"), ParseError);
}

TEST(RecordFromLine, RejectsInconsistentRecord) {
  // end < start.
  EXPECT_THROW(
      record_from_line("2,0,1996-06-07 08:55:14,1996-06-07 08:48:45,"
                       "compute,human,operator_error"),
      ParseError);
  // cause/detail mismatch.
  EXPECT_THROW(
      record_from_line("2,0,1996-06-07 08:48:45,1996-06-07 08:55:14,"
                       "compute,human,memory_dimm"),
      ParseError);
}

TEST(CsvSource, MatchesReadCsv) {
  std::istringstream a(sample_csv());
  std::istringstream b(sample_csv());
  CsvSource source(a);
  std::vector<FailureRecord> pulled;
  FailureRecord r;
  while (source.next(r) == SourceStatus::event) pulled.push_back(r);
  EXPECT_EQ(source.next(r), SourceStatus::end);  // end is sticky
  EXPECT_EQ(source.counters().accepted, 2u);

  const FailureDataset ds = read_csv(b);
  ASSERT_EQ(pulled.size(), ds.size());
  std::size_t i = 0;
  for (const FailureRecord& expected : ds.records()) {
    EXPECT_EQ(pulled[i].start, expected.start);
    EXPECT_EQ(pulled[i].system_id, expected.system_id);
    ++i;
  }
}

TEST(CsvSource, HeaderErrorsMatchReadCsvContract) {
  {
    std::istringstream in("");
    try {
      CsvSource source(in);
      FAIL() << "should have thrown";
    } catch (const ParseError& e) {
      EXPECT_STREQ(e.what(), "empty trace file (missing header)");
    }
  }
  {
    std::istringstream in("wrong,header\n1,2\n");
    try {
      CsvSource source(in);
      FAIL() << "should have thrown";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("unexpected trace header"),
                std::string::npos);
    }
  }
}

TEST(CsvSource, ThrowModeReportsLineNumber) {
  std::istringstream in(std::string(kCsvHeader) + "\n" + kGoodLine +
                        "\nnot,a,record\n");
  CsvSource source(in);
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);
  try {
    source.next(r);
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3:"), std::string::npos);
  }
}

TEST(CsvSource, RejectModeCountsAndContinues) {
  std::istringstream in(std::string(kCsvHeader) + "\nnot,a,record\n" +
                        kGoodLine + "\n");
  CsvSource source(in, CsvSource::OnError::reject);
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);  // skipped the bad line
  EXPECT_EQ(source.next(r), SourceStatus::end);
  EXPECT_EQ(source.counters().accepted, 1u);
  EXPECT_EQ(source.counters().rejected, 1u);
  EXPECT_NE(source.counters().last_error.find("line 2:"), std::string::npos);
}

TEST(LineSource, ReassemblesChunkedFeeds) {
  LineSource source;
  const std::string two_lines = kGoodLine + "\n" + kGoodLine + "\n";
  FailureRecord r;
  // Feed one byte at a time: every split point must reassemble.
  for (const char ch : two_lines) source.feed(std::string_view(&ch, 1));
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.next(r), SourceStatus::idle);  // stream still open
  EXPECT_EQ(source.counters().accepted, 2u);
}

TEST(LineSource, SkipsBlankLinesAndEchoedHeader) {
  LineSource source;
  source.feed("\n  \n" + std::string(kCsvHeader) + "\n" + kGoodLine + "\n");
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.next(r), SourceStatus::idle);
  EXPECT_EQ(source.counters().accepted, 1u);
  EXPECT_EQ(source.counters().rejected, 0u);
}

TEST(LineSource, RejectsMalformedWithLineNumber) {
  LineSource source;
  source.feed("garbage line\n" + kGoodLine + "\n");
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.counters().rejected, 1u);
  EXPECT_NE(source.counters().last_error.find("line 1:"), std::string::npos);
}

TEST(LineSource, HandlesCrlfAndFinalUnterminatedLine) {
  LineSource source;
  source.feed(kGoodLine + "\r\n" + kGoodLine);  // second line: no newline
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.next(r), SourceStatus::idle);  // partial line buffered
  source.finish();
  EXPECT_EQ(source.next(r), SourceStatus::event);  // flushed by finish()
  EXPECT_EQ(source.next(r), SourceStatus::end);
  EXPECT_EQ(source.counters().accepted, 2u);
}

class TailSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tail_source_test.csv";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void append_text(const std::string& text) {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << text;
  }

  std::string path_;
};

TEST_F(TailSourceTest, PicksUpAppendedLines) {
  append_text(std::string(kCsvHeader) + "\n" + kGoodLine + "\n");
  TailSource source(path_);
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.next(r), SourceStatus::idle);  // caught up, never ends

  append_text(kGoodLine + "\n");
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.counters().accepted, 2u);
  EXPECT_GT(source.offset(), 0u);
}

TEST_F(TailSourceTest, MissingFileIsIdleNotError) {
  TailSource source(path_);  // file does not exist yet
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::idle);
  append_text(kGoodLine + "\n");
  EXPECT_EQ(source.next(r), SourceStatus::event);
}

TEST_F(TailSourceTest, TruncationRestartsFromTop) {
  append_text(kGoodLine + "\n");
  TailSource source(path_);
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);

  // Truncate + rewrite shorter: the tailer must reset its offset.
  std::ofstream(path_, std::ios::trunc).close();
  ASSERT_EQ(source.next(r), SourceStatus::idle);
  append_text(kGoodLine + "\n");
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.counters().accepted, 2u);
  EXPECT_GE(source.rewrites_detected(), 1u);
}

TEST_F(TailSourceTest, TruncateThenRegrowPastOldOffsetIsDetected) {
  // Seed a file and consume everything, leaving offset_ at its end.
  append_text(kGoodLine + "\n" + kGoodLine + "\n");
  TailSource source(path_);
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.next(r), SourceStatus::idle);
  const std::uint64_t old_offset = source.offset();

  // Rewrite the file with DIFFERENT leading content that is LARGER than the
  // old offset. A size-only check reads this as an append and resumes mid-file;
  // the leading-bytes signature must flag it as a rewrite instead.
  std::string rewritten = std::string(kCsvHeader) + "\n";
  for (int i = 0; i < 5; ++i) {
    rewritten += "3,1,1996-06-08 02:00:0" + std::to_string(i) +
                 ",1996-06-08 02:30:0" + std::to_string(i) +
                 ",compute,hardware,memory_dimm\n";
  }
  ASSERT_GT(rewritten.size(), old_offset);
  {
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out << rewritten;
  }

  std::vector<FailureRecord> replayed;
  while (source.next(r) == SourceStatus::event) replayed.push_back(r);
  EXPECT_EQ(source.rewrites_detected(), 1u);
  // Every record of the rewritten file arrives — nothing is skipped and no
  // half-line splice from the old read position is ever parsed.
  ASSERT_EQ(replayed.size(), 5u);
  for (const FailureRecord& rec : replayed) {
    EXPECT_EQ(rec.system_id, 3);
    EXPECT_EQ(rec.node_id, 1);
    EXPECT_EQ(rec.cause, RootCause::hardware);
  }
  EXPECT_EQ(source.counters().rejected, 0u);
  EXPECT_EQ(source.counters().accepted, 7u);
}

TEST_F(TailSourceTest, RewriteDiscardsBufferedPartialLine) {
  // Leave a partial (unterminated) line buffered in the decoder.
  append_text(kGoodLine + "\n2,0,1996-06-07 15:");
  TailSource source(path_);
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);
  EXPECT_EQ(source.next(r), SourceStatus::idle);  // partial line held back

  // Rewrite-with-regrow: the buffered fragment must be dropped, not spliced
  // onto the first line of the new file. Lead with the header so the leading
  // bytes differ from the old file's first record.
  std::string rewritten = std::string(kCsvHeader) + "\n";
  for (int i = 0; i < 8; ++i) rewritten += kGoodLine + "\n";
  {
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out << rewritten;
  }
  std::size_t events = 0;
  while (source.next(r) == SourceStatus::event) ++events;
  EXPECT_EQ(events, 8u);
  EXPECT_EQ(source.rewrites_detected(), 1u);
  EXPECT_EQ(source.counters().rejected, 0u);
}

TEST_F(TailSourceTest, PlainAppendIsNotFlaggedAsRewrite) {
  append_text(std::string(kCsvHeader) + "\n" + kGoodLine + "\n");
  TailSource source(path_);
  FailureRecord r;
  EXPECT_EQ(source.next(r), SourceStatus::event);
  for (int i = 0; i < 4; ++i) {
    append_text(kGoodLine + "\n");
    EXPECT_EQ(source.next(r), SourceStatus::event);
  }
  EXPECT_EQ(source.rewrites_detected(), 0u);
  EXPECT_EQ(source.counters().accepted, 5u);
}

}  // namespace
}  // namespace hpcfail::trace
