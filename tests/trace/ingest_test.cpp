#include "trace/ingest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "trace/dataset.hpp"
#include "trace/index.hpp"
#include "trace/source.hpp"

namespace hpcfail::trace {
namespace {

FailureRecord rec(int system, int node, Seconds start, Seconds duration,
                  RootCause cause = RootCause::hardware,
                  DetailCause detail = DetailCause::memory_dimm) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + duration;
  r.cause = cause;
  r.detail = detail;
  return r;
}

const Seconds t0 = to_epoch(2000, 1, 1);

/// Random records with unique (start, system, node) sort keys, so the
/// reference sort order is unambiguous and bit-identity is well-defined.
std::vector<FailureRecord> random_records(std::size_t n,
                                          std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> system(1, 4);
  std::uniform_int_distribution<int> node(0, 7);
  std::uniform_int_distribution<Seconds> jitter(1, 1000);
  std::set<std::tuple<Seconds, int, int>> used;
  std::vector<FailureRecord> out;
  Seconds at = t0;
  while (out.size() < n) {
    at += jitter(rng);
    const FailureRecord r = rec(system(rng), node(rng), at, 60);
    if (used.emplace(r.start, r.system_id, r.node_id).second) {
      out.push_back(r);
    }
  }
  // Appends arrive roughly-but-not-exactly in time order; shuffle within
  // small windows to exercise the merge's out-of-order handling.
  std::uniform_int_distribution<std::size_t> swap_gap(1, 5);
  for (std::size_t i = 0; i + 5 < out.size(); ++i) {
    std::swap(out[i], out[i + swap_gap(rng)]);
  }
  return out;
}

void expect_bit_identical(const FailureDataset& got,
                          const FailureDataset& want) {
  ASSERT_EQ(got.size(), want.size());
  const ColumnsView g = got.records();
  const ColumnsView w = want.records();
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(g.starts()[i], w.starts()[i]) << "row " << i;
    ASSERT_EQ(g.ends()[i], w.ends()[i]) << "row " << i;
    ASSERT_EQ(g.system_ids()[i], w.system_ids()[i]) << "row " << i;
    ASSERT_EQ(g.node_ids()[i], w.node_ids()[i]) << "row " << i;
    ASSERT_EQ(g.workloads()[i], w.workloads()[i]) << "row " << i;
    ASSERT_EQ(g.causes()[i], w.causes()[i]) << "row " << i;
    ASSERT_EQ(g.details()[i], w.details()[i]) << "row " << i;
  }
}

TEST(LiveDataset, StartsEmptyWithValidSnapshot) {
  LiveDataset live;
  ASSERT_NE(live.snapshot(), nullptr);
  EXPECT_EQ(live.snapshot()->size(), 0u);
  EXPECT_EQ(live.epoch(), 0u);
  live.seal();  // no-op on empty tail
  EXPECT_EQ(live.epoch(), 0u);
}

TEST(LiveDataset, SnapshotExcludesTailUntilSeal) {
  LiveDataset live;
  live.append(rec(1, 0, t0, 60));
  EXPECT_EQ(live.tail_size(), 1u);
  EXPECT_EQ(live.snapshot()->size(), 0u);
  live.seal();
  EXPECT_EQ(live.tail_size(), 0u);
  EXPECT_EQ(live.sealed_size(), 1u);
  EXPECT_EQ(live.snapshot()->size(), 1u);
  EXPECT_EQ(live.epoch(), 1u);
}

TEST(LiveDataset, RejectsInconsistentAppend) {
  LiveDataset live;
  FailureRecord bad = rec(1, 0, t0, 60);
  bad.end = bad.start - 1;
  EXPECT_THROW(live.append(bad), InvalidArgument);
  FailureRecord mismatch = rec(1, 0, t0, 60);
  mismatch.detail = DetailCause::scheduler;  // software detail, hw cause
  EXPECT_THROW(live.append(mismatch), InvalidArgument);
  EXPECT_EQ(live.size(), 0u);
}

TEST(LiveDataset, EpochPolicyTriggersGeometricSeals) {
  LiveDataset::Options opts;
  opts.min_rebuild_tail = 16;
  opts.rebuild_fraction = 0.5;
  LiveDataset live(opts);
  const std::vector<FailureRecord> records = random_records(200, 11);
  std::uint64_t seals_seen = 0;
  for (const FailureRecord& r : records) {
    live.append(r);
    seals_seen = std::max<std::uint64_t>(seals_seen, live.epoch());
    // The tail can never exceed the threshold in effect when it sealed.
    EXPECT_LE(live.tail_size(),
              std::max<std::size_t>(opts.min_rebuild_tail,
                                    static_cast<std::size_t>(
                                        opts.rebuild_fraction *
                                        static_cast<double>(
                                            live.sealed_size()))));
  }
  EXPECT_GE(seals_seen, 2u);   // policy actually fired
  EXPECT_LE(seals_seen, 20u);  // and amortized: far fewer seals than appends
}

TEST(LiveDataset, IncrementalEqualsFromScratchAcrossThreadCounts) {
  const std::vector<FailureRecord> records = random_records(3000, 23);
  const FailureDataset reference{std::vector<FailureRecord>(records)};

  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    set_parallelism(threads);
    LiveDataset::Options opts;
    opts.min_rebuild_tail = 64;  // force many epochs over 3000 appends
    LiveDataset live(opts);
    std::mt19937 rng(threads);
    std::uniform_int_distribution<int> coin(0, 99);
    for (const FailureRecord& r : records) {
      live.append(r);
      if (coin(rng) == 0) live.seal();  // random mid-stream seals
    }
    live.seal();
    EXPECT_GT(live.epoch(), 4u);
    expect_bit_identical(*live.snapshot(), reference);

    // The incrementally-maintained index answers like the batch one.
    const DatasetView all = live.snapshot()->index().all();
    EXPECT_EQ(all.size(), reference.size());
    EXPECT_EQ(live.snapshot()->index().system_ids(),
              reference.index().system_ids());
  }
  set_parallelism(0);  // restore the default for other tests
}

TEST(LiveDataset, SeededFromExistingDataset) {
  const std::vector<FailureRecord> records = random_records(300, 31);
  std::vector<FailureRecord> head(records.begin(), records.begin() + 200);
  LiveDataset live{FailureDataset(std::move(head))};
  EXPECT_EQ(live.sealed_size(), 200u);
  for (std::size_t i = 200; i < records.size(); ++i) {
    live.append(records[i]);
  }
  live.seal();
  expect_bit_identical(*live.snapshot(),
                       FailureDataset{std::vector<FailureRecord>(records)});
}

TEST(LiveDataset, LivePostingListsMatchSealedDataset) {
  const std::vector<FailureRecord> records = random_records(500, 47);
  LiveDataset::Options opts;
  opts.min_rebuild_tail = 64;
  LiveDataset live(opts);
  for (const FailureRecord& r : records) live.append(r);
  // Deliberately do NOT seal: posting lists must already be exact over
  // sealed + tail.
  std::vector<FailureRecord> sorted(records);
  std::sort(sorted.begin(), sorted.end(),
            [](const FailureRecord& a, const FailureRecord& b) {
              return a.start < b.start;
            });
  for (int system = 1; system <= 4; ++system) {
    for (int node = 0; node <= 7; ++node) {
      std::vector<Seconds> want;
      for (const FailureRecord& r : sorted) {
        if (r.system_id == system && r.node_id == node) {
          want.push_back(r.start);
        }
      }
      const std::vector<Seconds> got = live.node_starts(system, node);
      if (want.empty()) {
        EXPECT_TRUE(got.empty());
        continue;
      }
      EXPECT_EQ(got, want);
      const std::vector<double> gaps = live.node_interarrivals(system, node);
      ASSERT_EQ(gaps.size(), want.size() - 1);
      for (std::size_t i = 0; i + 1 < want.size(); ++i) {
        EXPECT_EQ(gaps[i], static_cast<double>(want[i + 1] - want[i]));
      }
    }
  }
}

TEST(LiveDataset, OldSnapshotsSurviveLaterSeals) {
  LiveDataset live;
  live.append(rec(1, 0, t0, 60));
  live.seal();
  const std::shared_ptr<const FailureDataset> old = live.snapshot();
  live.append(rec(1, 0, t0 + 100, 60));
  live.seal();
  EXPECT_EQ(old->size(), 1u);  // immutable: unaffected by the new epoch
  EXPECT_EQ(live.snapshot()->size(), 2u);
  EXPECT_NE(old.get(), live.snapshot().get());
}

TEST(LiveDataset, DrainPullsFromSource) {
  LineSource source;
  source.feed(
      "2,0,1996-06-07 08:48:45,1996-06-07 08:55:14,compute,human,"
      "operator_error\n"
      "2,1,1996-06-07 09:48:45,1996-06-07 09:55:14,compute,hardware,"
      "memory_dimm\n");
  LiveDataset live;
  EXPECT_EQ(live.drain(source), 2u);
  EXPECT_EQ(live.size(), 2u);
  EXPECT_EQ(live.drain(source), 0u);  // idle source: nothing more
}

// Regression for the index.hpp lifetime contract: a FailureDataset with a
// built index must stay usable after being moved (the index is dropped
// under the mutex and lazily rebuilt over the new storage — stale views
// into the moved-from buffer must never survive).
TEST(LiveDataset, AppendThenMoveRebuildsIndexOverNewStorage) {
  const std::vector<FailureRecord> records = random_records(400, 53);
  FailureDataset ds{std::vector<FailureRecord>(records)};
  const std::vector<int> systems_before = ds.index().system_ids();

  FailureDataset moved(std::move(ds));  // move with a built index
  const std::vector<int> systems_after = moved.index().system_ids();
  EXPECT_EQ(systems_after, systems_before);
  EXPECT_EQ(moved.index().all().size(), records.size());

  // Same through the streaming path: seed (index built before publish),
  // append, seal, and query the new epoch's index.
  LiveDataset live(std::move(moved));
  live.append(rec(9, 0, t0 - 100, 60));
  live.seal();
  const std::shared_ptr<const FailureDataset> snap = live.snapshot();
  EXPECT_EQ(snap->index().all().size(), records.size() + 1);
  const std::vector<int> systems_live = snap->index().system_ids();
  EXPECT_NE(std::find(systems_live.begin(), systems_live.end(), 9),
            systems_live.end());
}

// --- Sharded ingest -------------------------------------------------------

std::size_t shard_of(const FailureRecord& r, std::size_t shards) {
  return (static_cast<std::size_t>(r.system_id) * 8191u +
          static_cast<std::size_t>(r.node_id)) %
         shards;
}

// The tentpole determinism contract: the sealed snapshot is
// bit-identical to a from-scratch stable sort at ANY shard count, with
// seals firing at arbitrary points mid-stream.
TEST(LiveDataset, ShardedSealsAreBitIdenticalAtAnyShardCount) {
  const std::vector<FailureRecord> records = random_records(3000, 67);
  const FailureDataset reference{std::vector<FailureRecord>(records)};

  for (const std::size_t shards : {1u, 2u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    LiveDataset::Options opts;
    opts.min_rebuild_tail = 64;
    opts.shards = shards;
    LiveDataset live(opts);
    ASSERT_EQ(live.shards(), shards);
    std::mt19937 rng(static_cast<std::uint32_t>(shards));
    std::uniform_int_distribution<int> coin(0, 99);
    for (const FailureRecord& r : records) {
      live.append(shard_of(r, shards), r);
      if (coin(rng) == 0) live.seal();
    }
    live.seal();
    EXPECT_GT(live.epoch(), 4u);
    expect_bit_identical(*live.snapshot(), reference);
  }
}

TEST(LiveDataset, ConcurrentShardAppendsProduceTheReferenceDataset) {
  const std::vector<FailureRecord> records = random_records(4000, 71);
  const FailureDataset reference{std::vector<FailureRecord>(records)};
  constexpr std::size_t kShards = 4;

  LiveDataset::Options opts;
  opts.min_rebuild_tail = 256;  // several seals race with the appenders
  opts.shards = kShards;
  LiveDataset live(opts);
  std::vector<std::thread> writers;
  for (std::size_t s = 0; s < kShards; ++s) {
    writers.emplace_back([&live, &records, s] {
      for (const FailureRecord& r : records) {
        if (shard_of(r, kShards) == s) live.append(s, r);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  live.seal();
  EXPECT_EQ(live.size(), records.size());
  expect_bit_identical(*live.snapshot(), reference);
}

TEST(LiveDataset, ShardedPostingListsMergeAcrossShards) {
  const std::vector<FailureRecord> records = random_records(600, 73);
  LiveDataset::Options opts;
  opts.shards = 3;
  opts.min_rebuild_tail = 100;
  LiveDataset live(opts);
  std::size_t rr = 0;  // round-robin: one node's events span all shards
  for (const FailureRecord& r : records) live.append(rr++ % 3, r);

  std::vector<FailureRecord> sorted(records);
  std::sort(sorted.begin(), sorted.end(),
            [](const FailureRecord& a, const FailureRecord& b) {
              return a.start < b.start;
            });
  for (int system = 1; system <= 4; ++system) {
    for (int node = 0; node <= 7; ++node) {
      std::vector<Seconds> want;
      for (const FailureRecord& r : sorted) {
        if (r.system_id == system && r.node_id == node) {
          want.push_back(r.start);
        }
      }
      EXPECT_EQ(live.node_starts(system, node), want);
    }
  }
}

TEST(LiveDataset, RejectsOutOfRangeShard) {
  LiveDataset::Options opts;
  opts.shards = 2;
  LiveDataset live(opts);
  EXPECT_THROW(live.append(2, rec(1, 0, t0, 60)), Error);
}

// --- Retention / compaction -----------------------------------------------

TEST(LiveDataset, TimeRetentionCompactsOldEventsExactlyAtTheHorizon) {
  LiveDataset::Options opts;
  opts.retain_seconds = 1000;
  LiveDataset live(opts);
  // Starts 0,100,...,2400 past t0; the last start defines the horizon at
  // t0 + 2400 - 1000 = t0 + 1400: rows with start < horizon compact.
  for (int i = 0; i <= 24; ++i) {
    live.append(rec(1, i % 4, t0 + 100 * i, 60));
  }
  live.seal();
  EXPECT_EQ(live.retention_horizon(), t0 + 1400);
  EXPECT_EQ(live.compacted_events(), 14u);
  EXPECT_EQ(live.sealed_size(), 11u);
  // sealed + tails + compacted always accounts for every append.
  EXPECT_EQ(live.size() + live.compacted_events(), 25u);
  const ColumnsView rows = live.snapshot()->records();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_GE(rows.starts()[i], t0 + 1400);
  }
  // Posting lists were trimmed to the retained horizon too.
  for (int node = 0; node < 4; ++node) {
    for (const Seconds s : live.node_starts(1, node)) {
      EXPECT_GE(s, t0 + 1400);
    }
  }
}

TEST(LiveDataset, CountRetentionRoundsDownToAStartBoundary) {
  LiveDataset::Options opts;
  opts.max_sealed_events = 9;
  LiveDataset live(opts);
  // Three events share start t0+500; a naive count cut would split them.
  for (int i = 0; i < 5; ++i) live.append(rec(1, i, t0 + 100 * i, 60));
  for (int i = 0; i < 3; ++i) live.append(rec(2, i, t0 + 500, 60));
  for (int i = 0; i < 7; ++i) live.append(rec(3, i, t0 + 600 + 10 * i, 60));
  live.seal();
  // 15 events, cap 9 -> the raw count cut would land mid-way through the
  // t0+500 run (row 6); rounding down to the start boundary keeps all
  // three t0+500 rows, so 10 survive (one over the approximate cap) and
  // the dropped set is exactly {start < t0+500}.
  EXPECT_EQ(live.compacted_events(), 5u);
  EXPECT_EQ(live.sealed_size(), 10u);
  EXPECT_EQ(live.retention_horizon(), t0 + 500);
}

TEST(LiveDataset, CompactionLedgerMatchesBruteForce) {
  const std::vector<FailureRecord> records = random_records(2000, 83);
  LiveDataset::Options opts;
  opts.min_rebuild_tail = 128;
  opts.shards = 2;
  opts.max_sealed_events = 500;
  LiveDataset live(opts);
  for (const FailureRecord& r : records) live.append(shard_of(r, 2), r);
  live.seal();

  ASSERT_GT(live.compacted_events(), 0u);
  EXPECT_EQ(live.size() + live.compacted_events(), records.size());
  const Seconds horizon = live.retention_horizon();

  // Brute force: every record below the final horizon must be in the
  // ledger, keyed by (system, node, cause), with matching moments.
  std::map<std::tuple<int, int, RootCause>, std::vector<double>> want;
  std::vector<FailureRecord> sorted(records);
  std::sort(sorted.begin(), sorted.end(),
            [](const FailureRecord& a, const FailureRecord& b) {
              return a.start < b.start;
            });
  std::uint64_t dropped = 0;
  for (const FailureRecord& r : sorted) {
    if (r.start < horizon) {
      want[{r.system_id, r.node_id, r.cause}].push_back(
          r.downtime_minutes());
      ++dropped;
    }
  }
  EXPECT_EQ(live.compacted_events(), dropped);

  const std::vector<CompactionCell> cells = live.compaction_cells();
  ASSERT_EQ(cells.size(), want.size());
  for (const CompactionCell& cell : cells) {
    const auto it =
        want.find({cell.system_id, cell.node_id, cell.cause});
    ASSERT_NE(it, want.end());
    const std::vector<double>& values = it->second;
    ASSERT_EQ(cell.repair_minutes.n, values.size());
    double sum = 0.0;
    for (const double v : values) sum += v;
    EXPECT_NEAR(cell.repair_minutes.mean(), sum / values.size(), 1e-9);
  }
}

TEST(LiveDataset, LateArrivalBelowHorizonCompactsAndNeverResurrects) {
  LiveDataset::Options opts;
  opts.retain_seconds = 1000;
  LiveDataset live(opts);
  for (int i = 0; i <= 20; ++i) live.append(rec(1, 0, t0 + 100 * i, 60));
  live.seal();
  const Seconds horizon = live.retention_horizon();
  ASSERT_EQ(horizon, t0 + 1000);
  const std::uint64_t compacted_before = live.compacted_events();

  // A straggler far below the horizon: accepted into the tail, then
  // folded into the ledger at the next seal — never into the raw store.
  live.append(rec(1, 0, t0 + 50, 60));
  live.seal();
  EXPECT_EQ(live.compacted_events(), compacted_before + 1);
  const ColumnsView rows = live.snapshot()->records();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_GE(rows.starts()[i], horizon);
  }
  for (const Seconds s : live.node_starts(1, 0)) {
    EXPECT_GE(s, horizon);
  }
}

TEST(LiveDataset, RetentionNeverEmptiesTheStore) {
  LiveDataset::Options opts;
  opts.retain_seconds = 10;  // far smaller than the event spacing
  LiveDataset live(opts);
  for (int i = 0; i < 5; ++i) {
    live.append(rec(1, 0, t0 + 10000 * i, 60));
    live.seal();
  }
  // The newest event always survives (the horizon hangs off its start).
  EXPECT_GE(live.sealed_size(), 1u);
  EXPECT_EQ(live.snapshot()->records().starts().back(), t0 + 40000);
  EXPECT_EQ(live.compacted_events() + live.size(), 5u);
}

}  // namespace
}  // namespace hpcfail::trace
