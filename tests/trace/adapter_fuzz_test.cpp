// Cross-schema differential battery, property half:
//
//   * round trip — a native record formatted by any adapter and parsed
//     back is bit-identical (the bijectivity contract of the tentpole);
//   * mutation fuzz — random byte mutations of valid foreign lines
//     either throw a typed library Error (which streaming ingest turns
//     into reject-and-count) or parse into a fully consistent record;
//     nothing crashes, nothing is silently accepted as garbage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "testkit/generators.hpp"
#include "testkit/property.hpp"
#include "trace/adapters/adapter.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace hpcfail::trace {
namespace {

TEST(AdapterRoundTrip, EveryAdapterIsBijectiveOnConsistentRecords) {
  for (const Adapter* adapter : all_adapters()) {
    const auto result = testkit::check_property(
        testkit::failure_records(),
        [adapter](const FailureRecord& r) {
          return adapter->parse_line(adapter->format_line(r)) == r;
        });
    EXPECT_TRUE(result.passed) << adapter->name() << ": " << result.message;
  }
}

TEST(AdapterRoundTrip, SurvivesSecondRoundTripByteIdentically) {
  // format -> parse -> format must reproduce the same line: the adapter
  // cannot have two spellings of one record.
  for (const Adapter* adapter : all_adapters()) {
    const auto result = testkit::check_property(
        testkit::failure_records(),
        [adapter](const FailureRecord& r) {
          const std::string line = adapter->format_line(r);
          return adapter->format_line(adapter->parse_line(line)) == line;
        });
    EXPECT_TRUE(result.passed) << adapter->name() << ": " << result.message;
  }
}

/// A valid formatted line with `mutations` random single-byte edits
/// (replace, delete, or insert), plus the record it came from.
struct MutatedLine {
  std::string line;
  std::string original;
};

testkit::Gen<MutatedLine> mutated_lines(const Adapter& adapter) {
  testkit::Gen<MutatedLine> gen;
  const testkit::Gen<FailureRecord> records = testkit::failure_records();
  gen.sample = [&adapter, records](Rng& rng) {
    MutatedLine out;
    out.original = adapter.format_line(records.sample(rng));
    out.line = out.original;
    const std::size_t mutations =
        1 + static_cast<std::size_t>(rng.uniform() * 4.0);
    for (std::size_t m = 0; m < mutations && !out.line.empty(); ++m) {
      const std::size_t at =
          static_cast<std::size_t>(rng.uniform() * out.line.size());
      const double kind = rng.uniform();
      // Printable and non-printable replacements alike; '\n' excluded so
      // the mutation stays a single line (the framing layer's job).
      char byte = static_cast<char>(1 + rng.uniform() * 254.0);
      if (byte == '\n') byte = '?';
      if (kind < 0.6) {
        out.line[at] = byte;
      } else if (kind < 0.8) {
        out.line.erase(at, 1);
      } else {
        out.line.insert(at, 1, byte);
      }
    }
    return out;
  };
  gen.show = [](const MutatedLine& v) {
    return "mutated: \"" + v.line + "\" (from \"" + v.original + "\")";
  };
  return gen;
}

TEST(AdapterFuzz, MutatedLinesRejectOrParseConsistently) {
  testkit::PropertyOptions options;
  options.cases = 2000;
  for (const Adapter* adapter : all_adapters()) {
    const auto result = testkit::check_property(
        mutated_lines(*adapter),
        [adapter](const MutatedLine& v) {
          try {
            const FailureRecord r = adapter->parse_line(v.line);
            // Whatever still parses must be a fully consistent record —
            // the adapter may accept a *different* valid line, never
            // emit garbage.
            return r.is_consistent() && r.system_id >= 1 &&
                   r.node_id >= 0 && r.end >= r.start;
          } catch (const ParseError&) {
            return true;
          } catch (const ValidationError&) {
            return true;
          }
          // Any other exception type (or a crash) fails the property.
        },
        options);
    EXPECT_TRUE(result.passed) << adapter->name() << ": " << result.message;
  }
}

TEST(AdapterFuzz, StreamingIngestRejectsAndCountsEveryMutatedLine) {
  // The end-to-end reject-and-count guarantee: feed a mix of valid and
  // mutated lines through the adapter-aware LineSource (the serve
  // ingest path) and check accepted + rejected accounts for every line
  // with nothing thrown.
  for (const Adapter* adapter : all_adapters()) {
    Rng rng(mix_seed(0xfeed5eedull, 17, 29));
    LineSource source(adapter);
    const testkit::Gen<MutatedLine> gen = mutated_lines(*adapter);
    std::uint64_t fed = 0;
    for (std::size_t i = 0; i < 500; ++i) {
      const MutatedLine v = gen.sample(rng);
      source.feed(v.original + "\n");
      ++fed;
      if (!v.line.empty()) {
        source.feed(v.line + "\n");
        ++fed;
      }
    }
    source.finish();
    FailureRecord out;
    std::uint64_t accepted = 0;
    while (source.next(out) == SourceStatus::event) ++accepted;
    EXPECT_EQ(accepted, source.counters().accepted) << adapter->name();
    EXPECT_EQ(source.counters().accepted + source.counters().rejected, fed)
        << adapter->name();
    // At least all the unmutated originals made it through.
    EXPECT_GE(source.counters().accepted, 500u) << adapter->name();
  }
}

}  // namespace
}  // namespace hpcfail::trace
