#include "trace/record.hpp"

#include <gtest/gtest.h>

namespace hpcfail::trace {
namespace {

FailureRecord valid_record() {
  FailureRecord r;
  r.system_id = 20;
  r.node_id = 22;
  r.start = to_epoch(2001, 5, 4) + 3600;
  r.end = r.start + 7200;
  r.workload = Workload::compute;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::memory_dimm;
  return r;
}

TEST(FailureRecord, DowntimeInSecondsAndMinutes) {
  const FailureRecord r = valid_record();
  EXPECT_EQ(r.downtime_seconds(), 7200);
  EXPECT_DOUBLE_EQ(r.downtime_minutes(), 120.0);
}

TEST(FailureRecord, ZeroDowntimeAllowed) {
  FailureRecord r = valid_record();
  r.end = r.start;
  EXPECT_TRUE(r.is_consistent());
  EXPECT_EQ(r.downtime_seconds(), 0);
}

TEST(FailureRecord, ConsistencyChecks) {
  EXPECT_TRUE(valid_record().is_consistent());

  FailureRecord reversed = valid_record();
  reversed.end = reversed.start - 1;
  EXPECT_FALSE(reversed.is_consistent());

  FailureRecord bad_system = valid_record();
  bad_system.system_id = 0;
  EXPECT_FALSE(bad_system.is_consistent());

  FailureRecord bad_node = valid_record();
  bad_node.node_id = -1;
  EXPECT_FALSE(bad_node.is_consistent());

  FailureRecord mismatched = valid_record();
  mismatched.cause = RootCause::software;  // detail stays memory_dimm
  EXPECT_FALSE(mismatched.is_consistent());
}

TEST(FailureRecord, EqualityIsFieldwise) {
  const FailureRecord a = valid_record();
  FailureRecord b = a;
  EXPECT_EQ(a, b);
  b.node_id = 23;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace hpcfail::trace
