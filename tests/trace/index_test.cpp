// DatasetIndex / DatasetView semantics, plus the contract every analyzer
// relies on: each view extraction is bit-identical to a brute-force
// reference implementation (testkit/reference.hpp), at any thread count.
#include "trace/index.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "synth/generator.hpp"
#include "testkit/reference.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::trace {
namespace {

FailureRecord rec(int system, int node, Seconds start, Seconds duration) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + duration;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::memory_dimm;
  return r;
}

const Seconds t0 = to_epoch(2000, 1, 1);

FailureDataset small_dataset() {
  return FailureDataset({
      rec(1, 0, t0 + 5000, 600),
      rec(1, 0, t0 + 1000, 300),
      rec(1, 1, t0 + 3000, 1200),
      rec(2, 0, t0 + 2000, 60),
      rec(1, 0, t0 + 9000, 300),
  });
}

TEST(DatasetView, RootViewCoversEverything) {
  const FailureDataset ds = small_dataset();
  const DatasetView all = ds.view();
  EXPECT_EQ(all.size(), ds.size());
  EXPECT_FALSE(all.system().has_value());
  EXPECT_EQ(all.first_start(), ds.first_start());
  EXPECT_EQ(all.last_end(), ds.last_end());
}

TEST(DatasetView, ForSystemIsZeroCopy) {
  const FailureDataset ds = small_dataset();
  const DatasetView sys1 = ds.view().for_system(1);
  ASSERT_EQ(sys1.size(), 4u);
  EXPECT_EQ(sys1.system(), std::optional<int>(1));
  // The view points into index storage, not a fresh allocation: narrowing
  // again to the same system is the same column range.
  EXPECT_EQ(sys1.for_system(1).records().starts().data(),
            sys1.records().starts().data());
  // Narrowing to a different system yields the empty view.
  EXPECT_TRUE(sys1.for_system(2).empty());
  EXPECT_TRUE(ds.view().for_system(99).empty());
}

TEST(DatasetView, BetweenIsHalfOpenAndComposes) {
  const FailureDataset ds = small_dataset();
  const DatasetView window = ds.view().between(t0 + 1000, t0 + 5000);
  EXPECT_EQ(window.size(), 3u);  // 1000, 2000, 3000; excludes 5000

  // Composition commutes: window-then-system == system-then-window.
  const DatasetView a = ds.view().between(t0 + 1000, t0 + 5000).for_system(1);
  const DatasetView b = ds.view().for_system(1).between(t0 + 1000, t0 + 5000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i], b.records()[i]);
  }
  // Window intersection, not replacement.
  EXPECT_EQ(
      ds.view().between(t0, t0 + 5000).between(t0 + 2000, t0 + 99999).size(),
      2u);  // 2000, 3000
  // Inverted and disjoint windows are empty, not errors.
  EXPECT_TRUE(ds.view().between(t0 + 5000, t0 + 1000).empty());
  EXPECT_TRUE(ds.view().between(t0 + 50000, t0 + 60000).empty());
}

TEST(DatasetView, ExtractionsMatchHandComputedValues) {
  const FailureDataset ds = small_dataset();
  const DatasetView sys1 = ds.view().for_system(1);

  const auto node0 = sys1.node_interarrivals(0);
  ASSERT_EQ(node0.size(), 2u);
  EXPECT_DOUBLE_EQ(node0[0], 4000.0);
  EXPECT_DOUBLE_EQ(node0[1], 4000.0);
  EXPECT_TRUE(sys1.node_interarrivals(99).empty());

  const auto gaps = sys1.system_interarrivals();
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0], 2000.0);
  EXPECT_DOUBLE_EQ(gaps[1], 2000.0);
  EXPECT_DOUBLE_EQ(gaps[2], 4000.0);

  const auto counts = sys1.failures_per_node();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at(0), 3u);
  EXPECT_EQ(counts.at(1), 1u);

  EXPECT_DOUBLE_EQ(sys1.total_downtime_minutes(), 5.0 + 20.0 + 10.0 + 5.0);
}

TEST(DatasetView, WindowedExtractionsRespectTheWindow) {
  const FailureDataset ds = small_dataset();
  const DatasetView windowed =
      ds.view().for_system(1).between(t0 + 1000, t0 + 6000);
  const auto node0 = windowed.node_interarrivals(0);
  ASSERT_EQ(node0.size(), 1u);  // 1000 -> 5000; 9000 is outside
  EXPECT_DOUBLE_EQ(node0[0], 4000.0);
  const auto counts = windowed.failures_per_node();
  EXPECT_EQ(counts.at(0), 2u);
  EXPECT_EQ(counts.at(1), 1u);
}

TEST(DatasetView, GroupedExtractorMatchesPerNodeCalls) {
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const DatasetView sys20 = ds.view().for_system(20);
  const auto groups = sys20.node_interarrival_groups();
  ASSERT_FALSE(groups.empty());
  int prev_node = -1;
  for (const NodeInterarrivalGroup& g : groups) {
    EXPECT_GT(g.node_id, prev_node);  // ascending, no duplicates
    prev_node = g.node_id;
    EXPECT_EQ(g.gaps_seconds, sys20.node_interarrivals(g.node_id));
  }
  // min_gaps drops the sparse nodes but never alters surviving samples.
  const auto filtered = sys20.node_interarrival_groups(/*min_gaps=*/30);
  EXPECT_LT(filtered.size(), groups.size());
  for (const NodeInterarrivalGroup& g : filtered) {
    EXPECT_GE(g.gaps_seconds.size(), 30u);
    EXPECT_EQ(g.gaps_seconds, sys20.node_interarrivals(g.node_id));
  }
}

TEST(DatasetView, RequiresSystemScopeForNodeExtractions) {
  const FailureDataset ds = small_dataset();
  EXPECT_THROW(ds.view().node_interarrivals(0), InvalidArgument);
  EXPECT_THROW(ds.view().system_interarrivals(), InvalidArgument);
  EXPECT_THROW(ds.view().node_interarrival_groups(), InvalidArgument);
  EXPECT_THROW(ds.view().failures_per_node(), InvalidArgument);
}

TEST(DatasetView, MaterializeDeepCopies) {
  FailureDataset copy;
  {
    const FailureDataset ds = small_dataset();
    copy = ds.view().for_system(1).materialize();
  }  // the source is gone; the copy must be standalone
  ASSERT_EQ(copy.size(), 4u);
  EXPECT_EQ(copy.view().for_system(1).size(), 4u);
  EXPECT_EQ(copy.records()[0].start, t0 + 1000);
}

TEST(DatasetIndex, SystemIdsSortedUnique) {
  const FailureDataset ds = small_dataset();
  EXPECT_EQ(ds.index().system_ids(), (std::vector<int>{1, 2}));
  EXPECT_EQ(ds.index().record_count(), 5u);
}

TEST(DatasetIndex, CopyAndMoveResetTheIndex) {
  FailureDataset ds = small_dataset();
  (void)ds.index();  // force the build
  FailureDataset copy = ds;
  EXPECT_EQ(copy.view().for_system(1).size(), 4u);
  FailureDataset moved = std::move(ds);
  EXPECT_EQ(moved.view().for_system(1).size(), 4u);
}

TEST(DatasetIndex, ViewHitsCountedWhenObsEnabledAfterIndexBuild) {
  // Regression: the view_hits counter used to be resolved only at index
  // build time, so enabling obs after the lazy build silently dropped
  // every hit.
  const FailureDataset ds = small_dataset();
  obs::disable();
  ds.view();  // builds the index with obs off
  obs::enable();
  const auto before = obs::registry().counter("dataset.view_hits").value();
  ds.view().for_system(1);
  EXPECT_GT(obs::registry().counter("dataset.view_hits").value(), before);
  obs::disable();
}

TEST(DatasetIndex, ViewsMatchBruteForceReferencesAtAnyThreadCount) {
  const FailureDataset ds = synth::generate_lanl_trace(42);
  // Brute-force references over the raw record span, computed once.
  const auto ref_sys = testkit::ref_for_system(ds.records(), 20);
  const auto ref_node_gaps =
      testkit::ref_node_interarrivals(ds.records(), 20, 22);
  const auto ref_sys_gaps = testkit::ref_system_interarrivals(ds.records(), 20);
  const auto ref_counts = testkit::ref_failures_per_node(ds.records(), 20);
  const auto ref_window = testkit::ref_between(
      ds.records(), to_epoch(2000, 1, 1), to_epoch(2003, 1, 1));

  for (const unsigned threads : {1u, 2u, 8u}) {
    hpcfail::set_parallelism(threads);
    // A fresh dataset per thread count so the index is rebuilt under the
    // configured parallelism.
    const FailureDataset fresh = synth::generate_lanl_trace(42);
    const DatasetView sys20 = fresh.view().for_system(20);
    ASSERT_EQ(sys20.size(), ref_sys.size()) << threads << " threads";
    for (std::size_t i = 0; i < sys20.size(); ++i) {
      ASSERT_EQ(sys20.records()[i], ref_sys[i]);
    }
    EXPECT_EQ(sys20.node_interarrivals(22), ref_node_gaps);
    EXPECT_EQ(sys20.system_interarrivals(), ref_sys_gaps);
    EXPECT_EQ(sys20.failures_per_node(), ref_counts);
    const DatasetView window =
        fresh.view().between(to_epoch(2000, 1, 1), to_epoch(2003, 1, 1));
    ASSERT_EQ(window.size(), ref_window.size());
    for (std::size_t i = 0; i < window.size(); ++i) {
      ASSERT_EQ(window.records()[i], ref_window[i]);
    }
  }
  hpcfail::set_parallelism(0);
}

}  // namespace
}  // namespace hpcfail::trace
