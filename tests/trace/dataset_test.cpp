#include "trace/dataset.hpp"

#include "trace/index.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail::trace {
namespace {

FailureRecord rec(int system, int node, Seconds start, Seconds duration,
                  RootCause cause = RootCause::hardware,
                  DetailCause detail = DetailCause::memory_dimm) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + duration;
  r.cause = cause;
  r.detail = detail;
  return r;
}

const Seconds t0 = to_epoch(2000, 1, 1);

FailureDataset small_dataset() {
  // Deliberately out of order; the constructor must sort.
  return FailureDataset({
      rec(1, 0, t0 + 5000, 600),
      rec(1, 0, t0 + 1000, 300),
      rec(1, 1, t0 + 3000, 1200),
      rec(2, 0, t0 + 2000, 60),
      rec(1, 0, t0 + 9000, 300),
  });
}

TEST(FailureDataset, SortsByStartTime) {
  const FailureDataset ds = small_dataset();
  Seconds prev = 0;
  for (const FailureRecord& r : ds.records()) {
    EXPECT_GE(r.start, prev);
    prev = r.start;
  }
  EXPECT_EQ(ds.first_start(), t0 + 1000);
  EXPECT_EQ(ds.last_end(), t0 + 9300);
}

TEST(FailureDataset, RejectsInconsistentRecordWithIndex) {
  FailureRecord bad = rec(1, 0, t0, 100);
  bad.end = bad.start - 1;
  try {
    FailureDataset({rec(1, 0, t0, 10), bad});
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("index 1"), std::string::npos);
  }
}

TEST(FailureDataset, RejectsCauseDetailMismatch) {
  FailureRecord bad = rec(1, 0, t0, 100, RootCause::software,
                          DetailCause::memory_dimm);
  EXPECT_THROW(FailureDataset({bad}), InvalidArgument);
}

TEST(FailureDataset, EmptyDatasetBehaviour) {
  const FailureDataset ds;
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_THROW(ds.first_start(), InvalidArgument);
  EXPECT_THROW(ds.last_end(), InvalidArgument);
  EXPECT_TRUE(ds.system_ids().empty());
  EXPECT_TRUE(ds.view().for_system(1).empty());
}

TEST(FailureDataset, FilterAndForSystem) {
  const FailureDataset ds = small_dataset();
  EXPECT_EQ(ds.view().for_system(1).size(), 4u);
  EXPECT_EQ(ds.view().for_system(2).size(), 1u);
  EXPECT_EQ(ds.view().for_system(3).size(), 0u);
  const auto long_repairs = ds.filter(
      [](const FailureRecord& r) { return r.downtime_seconds() >= 600; });
  EXPECT_EQ(long_repairs.size(), 2u);
}

TEST(FailureDataset, BetweenIsHalfOpen) {
  const FailureDataset ds = small_dataset();
  const auto window = ds.view().between(t0 + 1000, t0 + 5000);
  EXPECT_EQ(window.size(), 3u);  // 1000, 2000, 3000; excludes 5000
}

TEST(FailureDataset, NodeInterarrivals) {
  const FailureDataset ds = small_dataset();
  const auto gaps = ds.view().for_system(1).node_interarrivals(0);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 4000.0);
  EXPECT_DOUBLE_EQ(gaps[1], 4000.0);
  EXPECT_TRUE(ds.view().for_system(1).node_interarrivals(99).empty());
  // A single record yields no gaps.
  EXPECT_TRUE(ds.view().for_system(2).node_interarrivals(0).empty());
}

TEST(FailureDataset, SystemInterarrivalsIncludeAllNodes) {
  const FailureDataset ds = small_dataset();
  const auto gaps = ds.view().for_system(1).system_interarrivals();
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0], 2000.0);  // 1000 -> 3000 (node 1)
  EXPECT_DOUBLE_EQ(gaps[1], 2000.0);  // 3000 -> 5000
  EXPECT_DOUBLE_EQ(gaps[2], 4000.0);  // 5000 -> 9000
}

TEST(FailureDataset, SimultaneousFailuresYieldZeroGaps) {
  const FailureDataset ds({
      rec(1, 0, t0, 60),
      rec(1, 1, t0, 60),  // same instant, different node
      rec(1, 2, t0 + 100, 60),
  });
  const auto gaps = ds.view().for_system(1).system_interarrivals();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 0.0);
  EXPECT_DOUBLE_EQ(gaps[1], 100.0);
}

TEST(FailureDataset, RepairTimesMinutes) {
  const FailureDataset ds = small_dataset();
  const auto times = ds.repair_times_minutes();
  ASSERT_EQ(times.size(), 5u);
  // Sorted by start: 300s, 60s, 1200s, 600s, 300s.
  EXPECT_DOUBLE_EQ(times[0], 5.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 20.0);
  EXPECT_DOUBLE_EQ(ds.total_downtime_minutes(), 5.0 + 1.0 + 20.0 + 10.0 + 5.0);
}

TEST(FailureDataset, FailuresPerNode) {
  const FailureDataset ds = small_dataset();
  const auto counts = ds.view().for_system(1).failures_per_node();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at(0), 3u);
  EXPECT_EQ(counts.at(1), 1u);
  EXPECT_TRUE(ds.view().for_system(9).empty());
}

TEST(FailureDataset, SystemIdsSortedUnique) {
  const FailureDataset ds = small_dataset();
  EXPECT_EQ(ds.system_ids(), (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace hpcfail::trace
