// ColumnStore / ColumnsView unit tests: the SoA storage must be a
// faithful row store (AoS round trips are identity), and
// FailureDataset::from_columns must accept sorted columns as-is, sort
// unsorted ones to the exact order the record constructor produces, and
// reject inconsistent rows with the same diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/columns.hpp"
#include "trace/dataset.hpp"

namespace {

using hpcfail::Rng;
using hpcfail::trace::ColumnStore;
using hpcfail::trace::ColumnsView;
using hpcfail::trace::DetailCause;
using hpcfail::trace::FailureDataset;
using hpcfail::trace::FailureRecord;
using hpcfail::trace::RootCause;
using hpcfail::trace::Workload;

FailureRecord make_record(int system, int node, hpcfail::Seconds start,
                          hpcfail::Seconds duration) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + duration;
  r.workload = Workload::compute;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::memory_dimm;
  return r;
}

std::vector<FailureRecord> random_records(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FailureRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(make_record(
        1 + static_cast<int>(rng.uniform_index(4)),
        static_cast<int>(rng.uniform_index(64)),
        static_cast<hpcfail::Seconds>(rng.uniform_index(1'000'000)),
        60 + static_cast<hpcfail::Seconds>(rng.uniform_index(86'400))));
  }
  return out;
}

TEST(ColumnStore, PushBackAndRowRoundTrip) {
  ColumnStore cols;
  const auto records = random_records(100, 11);
  for (const FailureRecord& r : records) cols.push_back(r);
  ASSERT_EQ(cols.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(cols.row(i), records[i]) << "row " << i;
  }
}

TEST(ColumnStore, FromRecordsToRecordsIsIdentity) {
  const auto records = random_records(257, 12);
  const ColumnStore cols = ColumnStore::from_records(records);
  EXPECT_EQ(cols.to_records(), records);
  // Partial reconstitution slices the same rows.
  const auto middle = cols.to_records(50, 20);
  ASSERT_EQ(middle.size(), 20u);
  for (std::size_t i = 0; i < middle.size(); ++i) {
    EXPECT_EQ(middle[i], records[50 + i]);
  }
}

TEST(ColumnStore, PushRowCopiesWithoutRoundTrip) {
  const ColumnStore src =
      ColumnStore::from_records(random_records(10, 13));
  ColumnStore dst;
  dst.push_row(src, 7);
  dst.push_row(src, 2);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.row(0), src.row(7));
  EXPECT_EQ(dst.row(1), src.row(2));
}

TEST(ColumnStore, ResizeClearAndBytes) {
  ColumnStore cols;
  EXPECT_TRUE(cols.empty());
  cols.resize(50);
  EXPECT_EQ(cols.size(), 50u);
  const std::size_t bytes_at_50 = cols.bytes();
  // Seven columns: 2 ints + 2 Seconds + 3 one-byte categoricals.
  EXPECT_GE(bytes_at_50, 50 * (2 * sizeof(int) +
                               2 * sizeof(hpcfail::Seconds) + 3));
  cols.clear();
  EXPECT_TRUE(cols.empty());
  cols.reserve(1000);
  EXPECT_GE(cols.bytes(), bytes_at_50);  // capacity, not size
}

TEST(ColumnsView, SpansIteratorAndSubviewAgree) {
  const auto records = random_records(64, 14);
  const ColumnStore cols = ColumnStore::from_records(records);
  const ColumnsView view(cols);
  ASSERT_EQ(view.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(view[i], records[i]);
    EXPECT_EQ(view.starts()[i], records[i].start);
    EXPECT_EQ(view.ends()[i], records[i].end);
    EXPECT_EQ(view.causes()[i], records[i].cause);
  }
  // Range-for assembles the same values the spans expose.
  std::size_t i = 0;
  for (const FailureRecord& r : view) {
    EXPECT_EQ(r, records[i]);
    ++i;
  }
  EXPECT_EQ(i, records.size());

  const ColumnsView sub = view.subview(10, 5);
  ASSERT_EQ(sub.size(), 5u);
  EXPECT_EQ(sub.front(), records[10]);
  EXPECT_EQ(sub.back(), records[14]);
  EXPECT_EQ(sub.starts().size(), 5u);
  EXPECT_EQ(sub.starts()[0], records[10].start);

  // The iterator is random-access (std::sort-compatible distance math).
  static_assert(std::random_access_iterator<ColumnsView::iterator>);
  EXPECT_EQ(view.end() - view.begin(),
            static_cast<std::ptrdiff_t>(records.size()));
}

TEST(ColumnsView, EmptyViewYieldsEmptySpans) {
  const ColumnsView view;
  EXPECT_TRUE(view.empty());
  EXPECT_TRUE(view.starts().empty());
  EXPECT_TRUE(view.causes().empty());
  EXPECT_EQ(view.begin(), view.end());
}

TEST(FromColumns, AdoptsSortedColumnsAsIs) {
  auto records = random_records(500, 15);
  std::sort(records.begin(), records.end(),
            [](const FailureRecord& a, const FailureRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.system_id != b.system_id) return a.system_id < b.system_id;
              return a.node_id < b.node_id;
            });
  const FailureDataset ds =
      FailureDataset::from_columns(ColumnStore::from_records(records));
  ASSERT_EQ(ds.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(ds.records()[i], records[i]) << "row " << i;
  }
}

TEST(FromColumns, SortsUnsortedColumnsLikeTheRecordConstructor) {
  const auto records = random_records(500, 16);  // unsorted
  const FailureDataset via_columns =
      FailureDataset::from_columns(ColumnStore::from_records(records));
  const FailureDataset via_records(
      std::vector<FailureRecord>(records.begin(), records.end()));
  ASSERT_EQ(via_columns.size(), via_records.size());
  for (std::size_t i = 0; i < via_columns.size(); ++i) {
    EXPECT_EQ(via_columns.records()[i], via_records.records()[i])
        << "row " << i;
  }
}

TEST(FromColumns, RejectsInconsistentRowsWithIndex) {
  auto records = random_records(10, 17);
  records[3].end = records[3].start - 1;  // end < start
  EXPECT_THROW(
      FailureDataset::from_columns(ColumnStore::from_records(records)),
      hpcfail::InvalidArgument);

  records = random_records(10, 18);
  records[5].detail = DetailCause::undetermined;  // mismatches hardware
  EXPECT_THROW(
      FailureDataset::from_columns(ColumnStore::from_records(records)),
      hpcfail::InvalidArgument);
}

}  // namespace
