#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace hpcfail::trace {
namespace {

FailureRecord rec(int system, int node, const std::string& start,
                  const std::string& end, Workload wl, RootCause cause,
                  DetailCause detail) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = parse_timestamp(start);
  r.end = parse_timestamp(end);
  r.workload = wl;
  r.cause = cause;
  r.detail = detail;
  return r;
}

FailureDataset sample_dataset() {
  return FailureDataset({
      rec(20, 22, "2001-05-04 13:00:00", "2001-05-04 19:30:00",
          Workload::graphics, RootCause::hardware,
          DetailCause::memory_dimm),
      rec(7, 0, "2002-06-01 08:15:30", "2002-06-01 08:45:30",
          Workload::frontend, RootCause::software,
          DetailCause::operating_system),
      rec(2, 0, "1997-12-31 23:59:59", "1998-01-01 04:00:00",
          Workload::compute, RootCause::unknown, DetailCause::undetermined),
  });
}

TEST(TraceIo, WriteProducesHeaderAndRows) {
  std::ostringstream out;
  write_csv(out, sample_dataset());
  const std::string text = out.str();
  EXPECT_EQ(text.substr(0, std::string(kCsvHeader).size()), kCsvHeader);
  // Sorted by start: system 2's 1997 record first.
  EXPECT_NE(text.find("2,0,1997-12-31 23:59:59,1998-01-01 04:00:00,"
                      "compute,unknown,undetermined"),
            std::string::npos);
}

TEST(TraceIo, RoundTripPreservesEveryField) {
  const FailureDataset original = sample_dataset();
  std::stringstream buffer;
  write_csv(buffer, original);
  const FailureDataset reread = read_csv(buffer);
  ASSERT_EQ(reread.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread.records()[i], original.records()[i]) << "record " << i;
  }
}

TEST(TraceIo, AcceptsBlankLines) {
  std::istringstream in(
      "system,node,start,end,workload,cause,detail\n"
      "\n"
      "1,0,2000-01-01 00:00:00,2000-01-01 01:00:00,compute,hardware,cpu\n"
      "\n");
  const FailureDataset ds = read_csv(in);
  EXPECT_EQ(ds.size(), 1u);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::istringstream in(
      "1,0,2000-01-01 00:00:00,2000-01-01 01:00:00,compute,hardware,cpu\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(TraceIo, RejectsEmptyFile) {
  std::istringstream in("");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(TraceIo, ReportsLineNumberOfWrongFieldCount) {
  std::istringstream in(
      "system,node,start,end,workload,cause,detail\n"
      "1,0,2000-01-01 00:00:00,2000-01-01 01:00:00,compute,hardware,cpu\n"
      "1,0,2000-01-02 00:00:00\n");
  try {
    read_csv(in);
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TraceIo, ReportsLineNumberOfBadTimestamp) {
  std::istringstream in(
      "system,node,start,end,workload,cause,detail\n"
      "1,0,not-a-date,2000-01-01 01:00:00,compute,hardware,cpu\n");
  try {
    read_csv(in);
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceIo, RejectsEndBeforeStart) {
  std::istringstream in(
      "system,node,start,end,workload,cause,detail\n"
      "1,0,2000-01-01 02:00:00,2000-01-01 01:00:00,compute,hardware,cpu\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(TraceIo, RejectsCauseDetailMismatch) {
  std::istringstream in(
      "system,node,start,end,workload,cause,detail\n"
      "1,0,2000-01-01 00:00:00,2000-01-01 01:00:00,compute,software,cpu\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(TraceIo, RejectsUnknownEnumSpelling) {
  std::istringstream in(
      "system,node,start,end,workload,cause,detail\n"
      "1,0,2000-01-01 00:00:00,2000-01-01 01:00:00,compute,gremlins,cpu\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hpcfail_io_test.csv";
  write_csv_file(path, sample_dataset());
  const FailureDataset reread = read_csv_file(path);
  EXPECT_EQ(reread.size(), 3u);
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"), Error);
}

}  // namespace
}  // namespace hpcfail::trace
