// Checks the encoded catalog against Table 1's unambiguous facts.
#include "trace/catalog.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail::trace {
namespace {

TEST(LanlCatalog, HasTwentyTwoSystems) {
  const SystemCatalog& cat = SystemCatalog::lanl();
  EXPECT_EQ(cat.systems().size(), 22u);
  for (int id = 1; id <= 22; ++id) {
    EXPECT_TRUE(cat.contains(id));
    EXPECT_EQ(cat.system(id).id, id);
  }
  EXPECT_FALSE(cat.contains(0));
  EXPECT_FALSE(cat.contains(23));
  EXPECT_THROW(cat.system(23), InvalidArgument);
}

TEST(LanlCatalog, SiteTotalsMatchTable1) {
  const SystemCatalog& cat = SystemCatalog::lanl();
  // The paper quotes 4750 nodes; its abstract quotes 24101 processors but
  // the per-system column of Table 1 sums to 24092 -- we encode the
  // per-system column (see DESIGN.md).
  EXPECT_EQ(cat.total_nodes(), 4750);
  EXPECT_EQ(cat.total_procs(), 24092);
}

TEST(LanlCatalog, NodeAndProcessorCountsPerSystem) {
  const SystemCatalog& cat = SystemCatalog::lanl();
  const struct {
    int id;
    int nodes;
    int procs;
  } expected[] = {
      {1, 1, 8},      {2, 1, 32},     {3, 1, 4},     {4, 164, 328},
      {5, 256, 1024}, {6, 128, 512},  {7, 1024, 4096},
      {8, 1024, 4096}, {9, 128, 512}, {10, 128, 512}, {11, 128, 512},
      {12, 32, 128},  {13, 128, 256}, {14, 256, 512}, {15, 256, 512},
      {16, 256, 512}, {17, 256, 512}, {18, 512, 1024},
      {19, 16, 2048}, {20, 49, 6152}, {21, 5, 544},   {22, 1, 256},
  };
  for (const auto& e : expected) {
    const SystemInfo& sys = cat.system(e.id);
    EXPECT_EQ(sys.nodes, e.nodes) << "system " << e.id;
    EXPECT_EQ(sys.procs, e.procs) << "system " << e.id;
  }
}

TEST(LanlCatalog, HardwareTypeGrouping) {
  const SystemCatalog& cat = SystemCatalog::lanl();
  EXPECT_EQ(cat.system(1).hw_type, 'A');
  EXPECT_EQ(cat.system(2).hw_type, 'B');
  EXPECT_EQ(cat.system(3).hw_type, 'C');
  EXPECT_EQ(cat.system(4).hw_type, 'D');
  for (int id = 5; id <= 12; ++id) EXPECT_EQ(cat.system(id).hw_type, 'E');
  for (int id = 13; id <= 18; ++id) EXPECT_EQ(cat.system(id).hw_type, 'F');
  for (int id = 19; id <= 21; ++id) EXPECT_EQ(cat.system(id).hw_type, 'G');
  EXPECT_EQ(cat.system(22).hw_type, 'H');
  EXPECT_EQ(cat.hardware_types(),
            (std::vector<char>{'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}));
}

TEST(LanlCatalog, NumaSplit) {
  const SystemCatalog& cat = SystemCatalog::lanl();
  for (int id = 1; id <= 18; ++id) {
    EXPECT_FALSE(cat.system(id).numa) << "system " << id;
  }
  for (int id = 19; id <= 22; ++id) {
    EXPECT_TRUE(cat.system(id).numa) << "system " << id;
  }
}

TEST(LanlCatalog, SystemsOfTypeReturnsIdOrder) {
  const auto type_e = SystemCatalog::lanl().systems_of_type('E');
  ASSERT_EQ(type_e.size(), 8u);
  EXPECT_EQ(type_e.front()->id, 5);
  EXPECT_EQ(type_e.back()->id, 12);
  EXPECT_TRUE(SystemCatalog::lanl().systems_of_type('Z').empty());
}

TEST(LanlCatalog, System12HasTheMemorySplitFromThePaper) {
  // Section 2.1: "the nodes of system 12 fall into two categories,
  // differing only in the amount of memory per node (4 vs 16 GB)".
  const SystemInfo& sys = SystemCatalog::lanl().system(12);
  ASSERT_EQ(sys.categories.size(), 2u);
  EXPECT_DOUBLE_EQ(sys.categories[0].memory_gb, 4.0);
  EXPECT_DOUBLE_EQ(sys.categories[1].memory_gb, 16.0);
  EXPECT_EQ(sys.categories[0].procs_per_node,
            sys.categories[1].procs_per_node);
}

TEST(LanlCatalog, System20Node0EnteredProductionLate) {
  // Footnote 4: node 0 of system 20 has been in production much shorter.
  const SystemInfo& sys = SystemCatalog::lanl().system(20);
  const NodeCategory& node0 = sys.category_for_node(0);
  const NodeCategory& others = sys.category_for_node(22);
  EXPECT_GT(node0.production_start, others.production_start);
  EXPECT_EQ(others.production_start, to_epoch(1997, 1, 1));
}

TEST(LanlCatalog, WorkloadAssignments) {
  const SystemCatalog& cat = SystemCatalog::lanl();
  const SystemInfo& sys20 = cat.system(20);
  // Nodes 21-23 of system 20 are the visualization nodes (Section 5.1).
  EXPECT_EQ(sys20.workload_of(21), Workload::graphics);
  EXPECT_EQ(sys20.workload_of(22), Workload::graphics);
  EXPECT_EQ(sys20.workload_of(23), Workload::graphics);
  EXPECT_EQ(sys20.workload_of(20), Workload::compute);
  EXPECT_EQ(sys20.workload_of(24), Workload::compute);
  // E/F clusters dedicate node 0 as a front-end.
  EXPECT_EQ(cat.system(7).workload_of(0), Workload::frontend);
  EXPECT_EQ(cat.system(14).workload_of(0), Workload::frontend);
  EXPECT_EQ(cat.system(7).workload_of(1), Workload::compute);
  // Single-node systems have no front-end split.
  EXPECT_EQ(cat.system(1).workload_of(0), Workload::compute);
}

TEST(LanlCatalog, ProductionWindows) {
  const SystemCatalog& cat = SystemCatalog::lanl();
  EXPECT_EQ(cat.system(20).production_start(), to_epoch(1997, 1, 1));
  EXPECT_EQ(cat.system(19).production_end(), to_epoch(2002, 9, 1));
  EXPECT_NEAR(cat.system(20).production_years(), 8.9, 0.1);
  EXPECT_GT(cat.system(2).production_years(), 7.0);
  EXPECT_EQ(SystemCatalog::observation_end(), to_epoch(2005, 11, 30));
}

TEST(LanlCatalog, CategoryForNodeBounds) {
  const SystemInfo& sys = SystemCatalog::lanl().system(4);
  EXPECT_NO_THROW(sys.category_for_node(0));
  EXPECT_NO_THROW(sys.category_for_node(163));
  EXPECT_THROW(sys.category_for_node(164), InvalidArgument);
  EXPECT_THROW(sys.category_for_node(-1), InvalidArgument);
}

TEST(CustomCatalog, ValidatesCategoryTiling) {
  SystemInfo bad;
  bad.id = 1;
  bad.hw_type = 'A';
  bad.nodes = 4;
  bad.procs = 8;
  bad.categories = {
      {0, 2, 2, 1.0, 0, to_epoch(2000, 1, 1), to_epoch(2001, 1, 1)},
      {3, 1, 2, 1.0, 0, to_epoch(2000, 1, 1), to_epoch(2001, 1, 1)},
  };  // gap at node 2
  EXPECT_THROW(SystemCatalog({bad}), InvalidArgument);
}

TEST(CustomCatalog, ValidatesProcessorTotals) {
  SystemInfo bad;
  bad.id = 1;
  bad.hw_type = 'A';
  bad.nodes = 2;
  bad.procs = 99;  // categories say 2 * 2 = 4
  bad.categories = {
      {0, 2, 2, 1.0, 0, to_epoch(2000, 1, 1), to_epoch(2001, 1, 1)},
  };
  EXPECT_THROW(SystemCatalog({bad}), InvalidArgument);
}

TEST(CustomCatalog, ValidatesProductionWindow) {
  SystemInfo bad;
  bad.id = 1;
  bad.hw_type = 'A';
  bad.nodes = 1;
  bad.procs = 2;
  bad.categories = {
      {0, 1, 2, 1.0, 0, to_epoch(2001, 1, 1), to_epoch(2000, 1, 1)},
  };  // reversed window
  EXPECT_THROW(SystemCatalog({bad}), InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::trace
