#include "trace/types.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail::trace {
namespace {

TEST(RootCause, StringRoundTrip) {
  for (const RootCause cause : kAllRootCauses) {
    EXPECT_EQ(root_cause_from_string(to_string(cause)), cause);
  }
}

TEST(RootCause, ParsingIsCaseInsensitiveAndTrimmed) {
  EXPECT_EQ(root_cause_from_string("Hardware"), RootCause::hardware);
  EXPECT_EQ(root_cause_from_string("  SOFTWARE  "), RootCause::software);
}

TEST(RootCause, RejectsUnknownSpelling) {
  EXPECT_THROW(root_cause_from_string("cosmic rays"), ParseError);
  EXPECT_THROW(root_cause_from_string(""), ParseError);
}

TEST(DetailCause, CategoryMapping) {
  EXPECT_EQ(category_of(DetailCause::memory_dimm), RootCause::hardware);
  EXPECT_EQ(category_of(DetailCause::cpu), RootCause::hardware);
  EXPECT_EQ(category_of(DetailCause::parallel_fs), RootCause::software);
  EXPECT_EQ(category_of(DetailCause::scheduler), RootCause::software);
  EXPECT_EQ(category_of(DetailCause::nic), RootCause::network);
  EXPECT_EQ(category_of(DetailCause::power_outage), RootCause::environment);
  EXPECT_EQ(category_of(DetailCause::ac_failure), RootCause::environment);
  EXPECT_EQ(category_of(DetailCause::operator_error), RootCause::human);
  EXPECT_EQ(category_of(DetailCause::undetermined), RootCause::unknown);
}

TEST(DetailCause, StringRoundTrip) {
  for (const DetailCause d :
       {DetailCause::memory_dimm, DetailCause::cpu, DetailCause::scheduler,
        DetailCause::power_outage, DetailCause::operator_error,
        DetailCause::undetermined}) {
    EXPECT_EQ(detail_cause_from_string(to_string(d)), d);
  }
  EXPECT_THROW(detail_cause_from_string("gremlins"), ParseError);
}

TEST(Workload, StringRoundTripWithReleaseSpelling) {
  // The LANL release spells front-end "fe".
  EXPECT_EQ(to_string(Workload::frontend), "fe");
  EXPECT_EQ(workload_from_string("fe"), Workload::frontend);
  EXPECT_EQ(workload_from_string("frontend"), Workload::frontend);
  EXPECT_EQ(workload_from_string("front-end"), Workload::frontend);
  EXPECT_EQ(workload_from_string("compute"), Workload::compute);
  EXPECT_EQ(workload_from_string("GRAPHICS"), Workload::graphics);
  EXPECT_THROW(workload_from_string("database"), ParseError);
}

TEST(CauseIndex, StableOrder) {
  EXPECT_EQ(cause_index(RootCause::hardware), 0u);
  EXPECT_EQ(cause_index(RootCause::software), 1u);
  EXPECT_EQ(cause_index(RootCause::network), 2u);
  EXPECT_EQ(cause_index(RootCause::environment), 3u);
  EXPECT_EQ(cause_index(RootCause::human), 4u);
  EXPECT_EQ(cause_index(RootCause::unknown), 5u);
  for (std::size_t i = 0; i < kAllRootCauses.size(); ++i) {
    EXPECT_EQ(cause_index(kAllRootCauses[i]), i);
  }
}

}  // namespace
}  // namespace hpcfail::trace
