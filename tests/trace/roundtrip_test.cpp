// End-to-end persistence properties: the full synthetic trace (and
// randomized record soups) must survive CSV export/import losslessly,
// and the umbrella header must compile.
#include <gtest/gtest.h>

#include <sstream>

#include "hpcfail.hpp"

namespace hpcfail::trace {
namespace {

TEST(RoundTrip, FullSyntheticTraceSurvivesCsv) {
  const FailureDataset original = synth::generate_lanl_trace(42);
  std::stringstream buffer;
  write_csv(buffer, original);
  const FailureDataset reread = read_csv(buffer);
  ASSERT_EQ(reread.size(), original.size());
  for (std::size_t i = 0; i < original.size(); i += 97) {
    EXPECT_EQ(reread.records()[i], original.records()[i]) << "record " << i;
  }
  // Derived statistics are identical, not just the raw fields.
  EXPECT_DOUBLE_EQ(reread.total_downtime_minutes(),
                   original.total_downtime_minutes());
  EXPECT_EQ(reread.view().for_system(20).system_interarrivals(),
            original.view().for_system(20).system_interarrivals());
}

TEST(RoundTrip, RandomizedRecordsSurviveCsv) {
  // Property-style sweep: random valid records over every enum value and
  // a wide time range must round-trip exactly.
  hpcfail::Rng rng(0xC0FFEE);
  static constexpr DetailCause kDetails[] = {
      DetailCause::memory_dimm,      DetailCause::cpu,
      DetailCause::node_interconnect, DetailCause::power_supply,
      DetailCause::disk,             DetailCause::other_hardware,
      DetailCause::operating_system, DetailCause::parallel_fs,
      DetailCause::scheduler,        DetailCause::other_software,
      DetailCause::network_switch,   DetailCause::nic,
      DetailCause::power_outage,     DetailCause::ac_failure,
      DetailCause::operator_error,   DetailCause::undetermined,
  };
  static constexpr Workload kWorkloads[] = {
      Workload::compute, Workload::graphics, Workload::frontend};

  std::vector<FailureRecord> records;
  for (int i = 0; i < 2000; ++i) {
    FailureRecord r;
    r.system_id = 1 + static_cast<int>(rng.uniform_index(22));
    r.node_id = static_cast<int>(rng.uniform_index(1024));
    r.start = to_epoch(1996, 6, 1) +
              static_cast<Seconds>(rng.uniform_index(9ULL * 365 * 86400));
    r.end = r.start + static_cast<Seconds>(rng.uniform_index(86400 * 30));
    r.workload = kWorkloads[rng.uniform_index(3)];
    r.detail = kDetails[rng.uniform_index(16)];
    r.cause = category_of(r.detail);
    records.push_back(r);
  }
  const FailureDataset original(std::move(records));
  std::stringstream buffer;
  write_csv(buffer, original);
  const FailureDataset reread = read_csv(buffer);
  ASSERT_EQ(reread.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(reread.records()[i], original.records()[i]) << "record " << i;
  }
}

TEST(RoundTrip, SurvivesCrLfAndMissingFinalNewline) {
  // Property: the trace reader accepts the same file in the common
  // "hostile" encodings — CRLF line endings, blank separator lines, and
  // a truncated final newline — and produces the identical dataset.
  const FailureDataset original(synth::generate_lanl_trace(7)
                                    .view()
                                    .for_system(5)
                                    .materialize());
  ASSERT_GT(original.size(), 10u);
  std::stringstream clean;
  write_csv(clean, original);
  const std::string text = clean.str();

  // CRLF every line, and drop the final newline entirely.
  std::string crlf;
  for (const char c : text) {
    if (c == '\n') crlf += "\r\n";
    else crlf += c;
  }
  crlf.erase(crlf.size() - 2);  // strip the trailing "\r\n"

  // Blank lines sprinkled between rows.
  std::string blanks;
  std::size_t row = 0;
  for (const char c : text) {
    blanks += c;
    if (c == '\n' && ++row % 5 == 0) blanks += '\n';
  }

  for (const std::string& variant : {crlf, blanks}) {
    std::stringstream in(variant);
    const FailureDataset reread = read_csv(in);
    ASSERT_EQ(reread.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      ASSERT_EQ(reread.records()[i], original.records()[i])
          << "record " << i;
    }
  }
}

TEST(RoundTrip, GeneratorIsStableAcrossRuns) {
  // The documented reproducibility guarantee: same seed, same trace,
  // down to the last byte of the serialized form.
  std::stringstream a;
  std::stringstream b;
  write_csv(a, synth::generate_lanl_trace(123));
  write_csv(b, synth::generate_lanl_trace(123));
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace hpcfail::trace
