#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "dist/normal.hpp"
#include "dist/weibull.hpp"
#include "stats/descriptive.hpp"

namespace hpcfail::stats {
namespace {

TEST(Bootstrap, PointEstimateIsStatisticOfOriginal) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  hpcfail::Rng rng(1);
  const BootstrapResult r = bootstrap(xs, [](std::span<const double> s) {
    return mean(s);
  }, rng);
  EXPECT_DOUBLE_EQ(r.point, 3.0);
  EXPECT_LE(r.lo, r.point);
  EXPECT_GE(r.hi, r.point);
}

TEST(Bootstrap, IntervalCoversTrueMeanAtNominalRate) {
  // 40 independent experiments; the 95% interval should cover the true
  // mean in the vast majority of them.
  const hpcfail::dist::Normal truth(10.0, 2.0);
  hpcfail::Rng data_rng(2);
  int covered = 0;
  for (int rep = 0; rep < 40; ++rep) {
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) xs.push_back(truth.sample(data_rng));
    hpcfail::Rng rng(static_cast<std::uint64_t>(rep));
    const BootstrapResult r = bootstrap(
        xs, [](std::span<const double> s) { return mean(s); }, rng,
        {.replicates = 400, .confidence = 0.95});
    if (r.lo <= 10.0 && 10.0 <= r.hi) ++covered;
  }
  EXPECT_GE(covered, 33);  // ~95% nominal, wide slack for 40 trials
}

TEST(Bootstrap, IntervalWidthShrinksWithSampleSize) {
  const hpcfail::dist::Normal truth(0.0, 1.0);
  hpcfail::Rng data_rng(3);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 2000; ++i) {
    const double x = truth.sample(data_rng);
    if (i < 50) small.push_back(x);
    large.push_back(x);
  }
  hpcfail::Rng r1(4);
  hpcfail::Rng r2(4);
  const auto stat = [](std::span<const double> s) { return mean(s); };
  const BootstrapResult a = bootstrap(small, stat, r1);
  const BootstrapResult b = bootstrap(large, stat, r2);
  EXPECT_LT(b.hi - b.lo, a.hi - a.lo);
  EXPECT_LT(b.std_error, a.std_error);
}

TEST(Bootstrap, WorksForFittedWeibullShape) {
  // The use case EXPERIMENTS.md needs: an interval around the fitted
  // shape parameter that contains the truth.
  const hpcfail::dist::Weibull truth(0.75, 3600.0);
  hpcfail::Rng data_rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 1500; ++i) xs.push_back(truth.sample(data_rng));
  hpcfail::Rng rng(6);
  const BootstrapResult r = bootstrap(
      xs,
      [](std::span<const double> s) {
        return hpcfail::dist::Weibull::fit_mle(s).shape();
      },
      rng, {.replicates = 200, .confidence = 0.95});
  EXPECT_LE(r.lo, 0.75);
  EXPECT_GE(r.hi, 0.75);
  EXPECT_GT(r.lo, 0.5);
  EXPECT_LT(r.hi, 1.0);
}

TEST(Bootstrap, SkipsFailingReplicatesButTracksCount) {
  // A statistic that throws for ~half the resamples (when the resample
  // happens to contain only the value 1.0).
  const std::vector<double> xs = {1.0, 2.0};
  hpcfail::Rng rng(7);
  const BootstrapResult r = bootstrap(
      xs,
      [](std::span<const double> s) {
        double v = variance(s);
        if (v == 0.0) throw NumericError("degenerate");
        return v;
      },
      rng, {.replicates = 200, .confidence = 0.9});
  EXPECT_GT(r.replicates, 50u);
  EXPECT_LT(r.replicates, 200u);
}

TEST(Bootstrap, ThrowsWhenStatisticAlwaysFails) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  hpcfail::Rng rng(8);
  EXPECT_THROW(bootstrap(xs,
                         [](std::span<const double>) -> double {
                           throw NumericError("never works");
                         },
                         rng),
               NumericError);
}

TEST(Bootstrap, ValidatesArguments) {
  hpcfail::Rng rng(9);
  const auto stat = [](std::span<const double> s) { return mean(s); };
  EXPECT_THROW(bootstrap(std::vector<double>{}, stat, rng),
               InvalidArgument);
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(bootstrap(xs, stat, rng, {.replicates = 5}),
               InvalidArgument);
  EXPECT_THROW(
      bootstrap(xs, stat, rng, {.replicates = 100, .confidence = 1.5}),
      InvalidArgument);
}

TEST(Bootstrap, DeterministicGivenRngState) {
  const std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 8.0};
  hpcfail::Rng r1(10);
  hpcfail::Rng r2(10);
  const auto stat = [](std::span<const double> s) { return median(s); };
  const BootstrapResult a = bootstrap(xs, stat, r1);
  const BootstrapResult b = bootstrap(xs, stat, r2);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace hpcfail::stats
