#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace hpcfail::stats {
namespace {

TEST(Mean, SimpleValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Mean, SingleValue) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0);
}

TEST(Mean, RejectsEmpty) {
  EXPECT_THROW(mean(std::vector<double>{}), InvalidArgument);
}

TEST(Variance, UnbiasedEstimator) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known example: population variance 4, sample variance 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Variance, ZeroForSingleValue) {
  const std::vector<double> xs = {3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(CvSquared, MatchesDefinition) {
  const std::vector<double> xs = {1.0, 3.0};
  // mean 2, sample var 2 => C^2 = 0.5.
  EXPECT_DOUBLE_EQ(cv_squared(xs), 0.5);
}

TEST(CvSquared, ExponentialLikeSampleNearOne) {
  // Deterministic exponential quantile sample: C^2 -> 1.
  std::vector<double> xs;
  for (int i = 1; i <= 2000; ++i) {
    xs.push_back(-std::log(1.0 - static_cast<double>(i) / 2001.0));
  }
  EXPECT_NEAR(cv_squared(xs), 1.0, 0.05);
}

TEST(CvSquared, ZeroMeanIsNaN) {
  // C^2 is undefined at zero mean; both entry points must agree on NaN
  // rather than one throwing and the other silently reporting 0.
  const std::vector<double> xs = {-1.0, 1.0};
  EXPECT_TRUE(std::isnan(cv_squared(xs)));
  EXPECT_TRUE(std::isnan(summarize(xs).cv2));
}

TEST(QuantileSorted, InterpolatesLinearly) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0 / 3.0), 20.0);
}

TEST(QuantileSorted, RejectsBadInput) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile_sorted(std::vector<double>{}, 0.5), InvalidArgument);
  EXPECT_THROW(quantile_sorted(xs, -0.1), InvalidArgument);
  EXPECT_THROW(quantile_sorted(xs, 1.1), InvalidArgument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Summarize, AllFieldsConsistent) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.5);
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(s.cv2, 2.5 / 9.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
  EXPECT_NEAR(s.skewness, 0.0, 1e-12);  // symmetric sample
}

TEST(Summarize, SkewnessSignTracksAsymmetry) {
  const std::vector<double> right = {1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_GT(summarize(right).skewness, 1.0);
  const std::vector<double> left = {-100.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_LT(summarize(left).skewness, -1.0);
}

TEST(SortedCopy, DoesNotMutateInput) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  const auto sorted = sorted_copy(xs);
  EXPECT_EQ(sorted, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(xs, (std::vector<double>{3.0, 1.0, 2.0}));
}

}  // namespace
}  // namespace hpcfail::stats
