#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace hpcfail::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, TracksUnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);  // hi edge is exclusive: overflow
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5, 2.5);
  h.add(0.5, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
}

TEST(Histogram, BinEdgesAndCenters) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 13.75);
}

TEST(Histogram, AddAllSpan) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> xs = {0.5, 1.5, 1.6, 3.9};
  h.add_all(xs);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(Histogram, RejectsBinIndexOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), InvalidArgument);
  EXPECT_THROW(h.bin_lo(5), InvalidArgument);
}

TEST(CategoryCounts, GrowsOnDemand) {
  CategoryCounts c;
  c.add(3);
  c.add(3, 2.0);
  c.add(0);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.count(3), 3.0);
  EXPECT_DOUBLE_EQ(c.count(0), 1.0);
  EXPECT_DOUBLE_EQ(c.count(2), 0.0);
  EXPECT_DOUBLE_EQ(c.count(99), 0.0);  // out of range reads as zero
  EXPECT_DOUBLE_EQ(c.total(), 4.0);
}

}  // namespace
}  // namespace hpcfail::stats
