#include "stats/ks.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/special.hpp"

namespace hpcfail::stats {
namespace {

TEST(KsStatistic, ZeroWhenSampleIsExactQuantiles) {
  // Sample at the (i - 0.5)/n quantiles of U(0,1): D = 0.5/n.
  const std::size_t n = 100;
  std::vector<double> xs;
  for (std::size_t i = 1; i <= n; ++i) {
    xs.push_back((static_cast<double>(i) - 0.5) / static_cast<double>(n));
  }
  const double d = ks_statistic(xs, [](double x) { return x; });
  EXPECT_NEAR(d, 0.5 / static_cast<double>(n), 1e-12);
}

TEST(KsStatistic, DetectsGrossMismatch) {
  // Uniform sample vs a CDF concentrated near zero.
  std::vector<double> xs;
  for (int i = 1; i <= 50; ++i) xs.push_back(i / 51.0);
  const double d =
      ks_statistic(xs, [](double x) { return 1.0 - std::exp(-50.0 * x); });
  EXPECT_GT(d, 0.5);
}

TEST(KsStatistic, InvariantToInputOrder) {
  const std::vector<double> a = {0.1, 0.9, 0.4, 0.6};
  const std::vector<double> b = {0.9, 0.1, 0.6, 0.4};
  const auto cdf = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(ks_statistic(a, cdf), ks_statistic(b, cdf));
}

TEST(KsStatistic, RejectsEmptySample) {
  EXPECT_THROW(ks_statistic(std::vector<double>{},
                            [](double x) { return x; }),
               InvalidArgument);
}

TEST(KsPvalue, HighForGoodFitLowForBadFit) {
  hpcfail::Rng rng(31);
  std::vector<double> uniform;
  for (int i = 0; i < 2000; ++i) uniform.push_back(rng.uniform());
  const double d_good = ks_statistic(uniform, [](double x) {
    return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  });
  const double d_bad = ks_statistic(uniform, [](double x) {
    return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x * x);
  });
  EXPECT_GT(ks_pvalue(d_good, uniform.size()), 0.05);
  EXPECT_LT(ks_pvalue(d_bad, uniform.size()), 1e-6);
}

TEST(KsPvalue, BoundsAndMonotonicity) {
  EXPECT_NEAR(ks_pvalue(0.0, 100), 1.0, 1e-12);
  EXPECT_NEAR(ks_pvalue(1.0, 10000), 0.0, 1e-10);
  EXPECT_GT(ks_pvalue(0.01, 100), ks_pvalue(0.2, 100));
}

TEST(KsPvalue, RejectsBadArguments) {
  EXPECT_THROW(ks_pvalue(0.1, 0), InvalidArgument);
  EXPECT_THROW(ks_pvalue(-0.1, 10), InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::stats
