#include "stats/ks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/special.hpp"

namespace hpcfail::stats {
namespace {

TEST(KsStatistic, ZeroWhenSampleIsExactQuantiles) {
  // Sample at the (i - 0.5)/n quantiles of U(0,1): D = 0.5/n.
  const std::size_t n = 100;
  std::vector<double> xs;
  for (std::size_t i = 1; i <= n; ++i) {
    xs.push_back((static_cast<double>(i) - 0.5) / static_cast<double>(n));
  }
  const double d = ks_statistic(xs, [](double x) { return x; });
  EXPECT_NEAR(d, 0.5 / static_cast<double>(n), 1e-12);
}

TEST(KsStatistic, DetectsGrossMismatch) {
  // Uniform sample vs a CDF concentrated near zero.
  std::vector<double> xs;
  for (int i = 1; i <= 50; ++i) xs.push_back(i / 51.0);
  const double d =
      ks_statistic(xs, [](double x) { return 1.0 - std::exp(-50.0 * x); });
  EXPECT_GT(d, 0.5);
}

TEST(KsStatistic, InvariantToInputOrder) {
  const std::vector<double> a = {0.1, 0.9, 0.4, 0.6};
  const std::vector<double> b = {0.9, 0.1, 0.6, 0.4};
  const auto cdf = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(ks_statistic(a, cdf), ks_statistic(b, cdf));
}

TEST(KsStatistic, RejectsEmptySample) {
  EXPECT_THROW(ks_statistic(std::vector<double>{},
                            [](double x) { return x; }),
               InvalidArgument);
}

TEST(KsPvalue, HighForGoodFitLowForBadFit) {
  hpcfail::Rng rng(31);
  std::vector<double> uniform;
  for (int i = 0; i < 2000; ++i) uniform.push_back(rng.uniform());
  const double d_good = ks_statistic(uniform, [](double x) {
    return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  });
  const double d_bad = ks_statistic(uniform, [](double x) {
    return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x * x);
  });
  EXPECT_GT(ks_pvalue(d_good, uniform.size()), 0.05);
  EXPECT_LT(ks_pvalue(d_bad, uniform.size()), 1e-6);
}

TEST(KsPvalue, BoundsAndMonotonicity) {
  EXPECT_NEAR(ks_pvalue(0.0, 100), 1.0, 1e-12);
  EXPECT_NEAR(ks_pvalue(1.0, 10000), 0.0, 1e-10);
  EXPECT_GT(ks_pvalue(0.01, 100), ks_pvalue(0.2, 100));
}

TEST(KsPvalue, RejectsBadArguments) {
  EXPECT_THROW(ks_pvalue(0.1, 0), InvalidArgument);
  EXPECT_THROW(ks_pvalue(-0.1, 10), InvalidArgument);
}

// ks_statistic_sorted prunes whole brackets of order statistics whose
// monotonicity bounds cannot beat the best deviation seen, but every
// point that could attain the max is still evaluated with the exact same
// arithmetic — so the result must equal the brute-force full scan bit
// for bit, for any monotone CDF.
double brute_force_sorted_ks(const std::vector<double>& sorted,
                             const std::function<double(double)>& cdf) {
  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double fx = cdf(sorted[i]);
    const double above = static_cast<double>(i + 1) / n - fx;
    const double below = fx - static_cast<double>(i) / n;
    d = std::max({d, above, below});
  }
  return d;
}

TEST(KsStatisticSorted, BitIdenticalToBruteForceScan) {
  hpcfail::Rng rng(97);
  for (const std::size_t n : {1u, 2u, 3u, 100u, 4097u}) {
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform() * 10.0);
    std::sort(xs.begin(), xs.end());

    const std::vector<std::function<double(double)>> cdfs = {
        // Good fit, bad fit, and a degenerate step: the pruning bounds
        // must hold for any monotone model.
        [](double x) { return x / 10.0; },
        [](double x) { return x * x / 100.0; },
        [](double x) { return x < 5.0 ? 0.0 : 1.0; },
    };
    for (const auto& cdf : cdfs) {
      const double expected = brute_force_sorted_ks(xs, cdf);
      const double actual =
          ks_statistic_sorted(xs.size(), [&](std::size_t i) {
            return cdf(xs[i]);
          });
      EXPECT_EQ(actual, expected) << "n=" << n;
    }
  }
}

TEST(KsStatisticSorted, AgreesWithUnsortedEntryPoint) {
  hpcfail::Rng rng(98);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform() * 3.0);
  const auto cdf = [](double x) { return 1.0 - std::exp(-x); };
  const double via_function = ks_statistic(xs, cdf);
  std::sort(xs.begin(), xs.end());
  const double via_sorted = ks_statistic_sorted(
      xs.size(), [&](std::size_t i) { return cdf(xs[i]); });
  EXPECT_EQ(via_sorted, via_function);
}

}  // namespace
}  // namespace hpcfail::stats
