#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace hpcfail::stats {
namespace {

TEST(Ecdf, StepFunctionValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);  // right-continuous: includes x
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(Ecdf, HandlesTies) {
  const std::vector<double> xs = {1.0, 1.0, 1.0, 5.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f(1.0), 0.75);
  EXPECT_DOUBLE_EQ(f(0.99), 0.0);
  EXPECT_DOUBLE_EQ(f.mass_at(1.0), 0.75);
  EXPECT_DOUBLE_EQ(f.mass_at(5.0), 0.25);
  EXPECT_DOUBLE_EQ(f.mass_at(2.0), 0.0);
}

TEST(Ecdf, MassAtZeroDetectsSimultaneousFailures) {
  // Fig 6(c): >30% of system-wide interarrival times are exactly zero.
  const std::vector<double> gaps = {0.0, 0.0, 0.0, 10.0, 20.0, 30.0,
                                    40.0, 50.0, 60.0};
  const Ecdf f(gaps);
  EXPECT_NEAR(f.mass_at(0.0), 3.0 / 9.0, 1e-12);
}

TEST(Ecdf, QuantileIsInverse) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.0001), 10.0);
}

TEST(Ecdf, QuantileRejectsOutOfRange) {
  const Ecdf f(std::vector<double>{1.0});
  EXPECT_THROW(f.quantile(0.0), InvalidArgument);
  EXPECT_THROW(f.quantile(1.5), InvalidArgument);
}

TEST(Ecdf, StepPointsCollapseDuplicates) {
  const std::vector<double> xs = {1.0, 1.0, 2.0};
  const Ecdf f(xs);
  const auto pts = f.step_points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].first, 1.0);
  EXPECT_NEAR(pts[0].second, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(pts[1].first, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].second, 1.0);
}

TEST(Ecdf, MinMaxAndSize) {
  const std::vector<double> xs = {5.0, -1.0, 3.0};
  const Ecdf f(xs);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f.min(), -1.0);
  EXPECT_DOUBLE_EQ(f.max(), 5.0);
}

TEST(Ecdf, RejectsEmptySample) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), InvalidArgument);
}

TEST(Ecdf, MonotoneNonDecreasing) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const Ecdf f(xs);
  double prev = -0.1;
  for (double x = 0.0; x <= 10.0; x += 0.25) {
    const double v = f(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace hpcfail::stats
