#include "stats/survival.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/exponential.hpp"
#include "dist/weibull.hpp"

namespace hpcfail::stats {
namespace {

TEST(KaplanMeier, HandComputedExampleWithoutCensoring) {
  // Events at 1, 2, 3: S = 2/3, 1/3, 0.
  const std::vector<SurvivalObservation> sample = {
      {1.0, true}, {2.0, true}, {3.0, true}};
  const auto curve = kaplan_meier(sample);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0].value, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(curve[1].value, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(curve[2].value, 0.0, 1e-12);
}

TEST(KaplanMeier, HandComputedExampleWithCensoring) {
  // Classic example: events at 1 and 3, censor at 2 (between them).
  // S(1) = 3/4? With 4 at risk: event at 1 -> 3/4. Censor at 2 removes
  // one. Event at 3 with 2 at risk -> 3/4 * 1/2 = 3/8.
  const std::vector<SurvivalObservation> sample = {
      {1.0, true}, {2.0, false}, {3.0, true}, {4.0, false}};
  const auto curve = kaplan_meier(sample);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(curve[0].value, 0.75, 1e-12);
  EXPECT_NEAR(curve[1].value, 0.375, 1e-12);
}

TEST(KaplanMeier, TiedEventsAndCensoringsAtSameTime) {
  // Two events and one censoring at t=5 among 4 subjects: events first,
  // so S(5) = (4-2)/4 = 1/2.
  const std::vector<SurvivalObservation> sample = {
      {5.0, true}, {5.0, true}, {5.0, false}, {9.0, true}};
  const auto curve = kaplan_meier(sample);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(curve[0].value, 0.5, 1e-12);
  EXPECT_NEAR(curve[1].value, 0.0, 1e-12);  // last subject fails
}

TEST(KaplanMeier, MatchesTrueSurvivalOnExponentialData) {
  const hpcfail::dist::Exponential truth(0.5);
  hpcfail::Rng rng(3);
  std::vector<SurvivalObservation> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back({truth.sample(rng), true});
  const auto curve = kaplan_meier(sample);
  for (std::size_t i = 0; i < curve.size(); i += 500) {
    const double expected = 1.0 - truth.cdf(curve[i].time);
    EXPECT_NEAR(curve[i].value, expected, 0.03) << "t = " << curve[i].time;
  }
}

TEST(KaplanMeier, RejectsBadInput) {
  EXPECT_THROW(kaplan_meier(std::vector<SurvivalObservation>{}),
               InvalidArgument);
  EXPECT_THROW(
      kaplan_meier(std::vector<SurvivalObservation>{{-1.0, true}}),
      InvalidArgument);
  EXPECT_THROW(
      kaplan_meier(std::vector<SurvivalObservation>{{1.0, false}}),
      InvalidArgument);  // no events at all
}

TEST(NelsonAalen, HandComputedExample) {
  // Events at 1, 2, 3 among 3 subjects: H = 1/3, 1/3+1/2, +1.
  const std::vector<SurvivalObservation> sample = {
      {1.0, true}, {2.0, true}, {3.0, true}};
  const auto curve = nelson_aalen(sample);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0].value, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(curve[1].value, 1.0 / 3.0 + 0.5, 1e-12);
  EXPECT_NEAR(curve[2].value, 1.0 / 3.0 + 0.5 + 1.0, 1e-12);
}

TEST(NelsonAalen, IsNonDecreasing) {
  hpcfail::Rng rng(5);
  const hpcfail::dist::Weibull truth(0.7, 10.0);
  std::vector<SurvivalObservation> sample;
  for (int i = 0; i < 1000; ++i) {
    sample.push_back({truth.sample(rng), rng.bernoulli(0.8)});
  }
  const auto curve = nelson_aalen(sample);
  double prev = 0.0;
  for (const SurvivalPoint& p : curve) {
    EXPECT_GE(p.value, prev);
    prev = p.value;
  }
}

TEST(NelsonAalen, ApproximatesTrueCumulativeHazard) {
  // For Exponential(rate), H(t) = rate * t.
  const hpcfail::dist::Exponential truth(2.0);
  hpcfail::Rng rng(7);
  std::vector<SurvivalObservation> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back({truth.sample(rng), true});
  const auto curve = nelson_aalen(sample);
  for (std::size_t i = 0; i < curve.size() / 2; i += 400) {
    EXPECT_NEAR(curve[i].value, 2.0 * curve[i].time,
                0.05 + 0.05 * curve[i].value)
        << "t = " << curve[i].time;
  }
}

TEST(FullyObserved, WrapsDurations) {
  const std::vector<double> times = {3.0, 1.0};
  const auto sample = fully_observed(times);
  ASSERT_EQ(sample.size(), 2u);
  EXPECT_TRUE(sample[0].observed);
  EXPECT_DOUBLE_EQ(sample[0].time, 3.0);
}

TEST(LogLogHazardSlope, RecoversWeibullShape) {
  // The slope of log H vs log t equals the Weibull shape parameter.
  hpcfail::Rng rng(11);
  for (const double shape : {0.7, 1.0, 1.6}) {
    const hpcfail::dist::Weibull truth(shape, 100.0);
    std::vector<double> times;
    for (int i = 0; i < 8000; ++i) times.push_back(truth.sample(rng));
    const auto sample = fully_observed(times);
    EXPECT_NEAR(log_log_hazard_slope(sample), shape, 0.08)
        << "shape = " << shape;
  }
}

TEST(LogLogHazardSlope, DetectsDecreasingHazardUnderCensoring) {
  hpcfail::Rng rng(13);
  const hpcfail::dist::Weibull truth(0.7, 100.0);
  std::vector<SurvivalObservation> sample;
  for (int i = 0; i < 8000; ++i) {
    const double t = truth.sample(rng);
    // Censor at a fixed horizon (like end-of-observation).
    sample.push_back(t < 400.0 ? SurvivalObservation{t, true}
                               : SurvivalObservation{400.0, false});
  }
  EXPECT_LT(log_log_hazard_slope(sample), 0.9);
}

TEST(LogLogHazardSlope, RejectsTinySamples) {
  const std::vector<SurvivalObservation> sample = {{1.0, true},
                                                   {2.0, true}};
  EXPECT_THROW(log_log_hazard_slope(sample), InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::stats
