#include "stats/qq.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"

namespace hpcfail::stats {
namespace {

TEST(QqPoints, DiagonalForMatchingDistribution) {
  const hpcfail::dist::Exponential truth(0.5);
  hpcfail::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(truth.sample(rng));
  const auto pairs = qq_points(
      xs, [&truth](double p) { return truth.quantile(p); }, 20);
  ASSERT_EQ(pairs.size(), 20u);
  for (const auto& [model, empirical] : pairs) {
    EXPECT_NEAR(empirical / model, 1.0, 0.06);
  }
}

TEST(QqPoints, ProbabilityLevelsAreCentered) {
  // With 2 points, levels are 0.25 and 0.75.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  int calls = 0;
  double seen[2] = {0.0, 0.0};
  qq_points(xs,
            [&](double p) {
              seen[calls++] = p;
              return p;
            },
            2);
  EXPECT_DOUBLE_EQ(seen[0], 0.25);
  EXPECT_DOUBLE_EQ(seen[1], 0.75);
}

TEST(QqMaxRelativeDeviation, SmallForTrueModelLargeForWrongModel) {
  const hpcfail::dist::LogNormal truth(3.0, 1.5);
  hpcfail::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const double good = qq_max_relative_deviation(
      xs, [&truth](double p) { return truth.quantile(p); });
  const hpcfail::dist::Exponential wrong(1.0 / truth.mean());
  const double bad = qq_max_relative_deviation(
      xs, [&wrong](double p) { return wrong.quantile(p); });
  EXPECT_LT(good, 0.15);
  // Even inside the central band the exponential misses the lognormal's
  // quantiles by ~50%+ (the >95% tail is worse still).
  EXPECT_GT(bad, 0.4);
  EXPECT_GT(bad, 3.0 * good);
}

TEST(QqPoints, ValidatesArguments) {
  const auto id = [](double p) { return p; };
  EXPECT_THROW(qq_points(std::vector<double>{}, id), InvalidArgument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(qq_points(xs, id, 1), InvalidArgument);
  EXPECT_THROW(qq_max_relative_deviation(xs, id, 0.5, 0.4),
               InvalidArgument);
  EXPECT_THROW(qq_max_relative_deviation(xs, id, 0.0, 0.9),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::stats
