#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace hpcfail::stats {
namespace {

constexpr double kEulerMascheroni = 0.57721566490153286;

TEST(Digamma, KnownValues) {
  // psi(1) = -gamma, psi(2) = 1 - gamma, psi(1/2) = -gamma - 2 ln 2.
  EXPECT_NEAR(digamma(1.0), -kEulerMascheroni, 1e-12);
  EXPECT_NEAR(digamma(2.0), 1.0 - kEulerMascheroni, 1e-12);
  EXPECT_NEAR(digamma(0.5), -kEulerMascheroni - 2.0 * std::log(2.0), 1e-12);
  EXPECT_NEAR(digamma(10.0), 2.2517525890667211, 1e-12);
}

TEST(Digamma, RecurrenceHolds) {
  // psi(x+1) = psi(x) + 1/x across scales.
  for (const double x : {0.1, 0.7, 1.3, 4.9, 17.0, 123.4}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-11)
        << "x = " << x;
  }
}

TEST(Digamma, RejectsNonPositive) {
  EXPECT_THROW(digamma(0.0), InvalidArgument);
  EXPECT_THROW(digamma(-1.0), InvalidArgument);
}

TEST(Trigamma, KnownValues) {
  // psi'(1) = pi^2/6, psi'(1/2) = pi^2/2.
  const double pi2 = 3.14159265358979323846 * 3.14159265358979323846;
  EXPECT_NEAR(trigamma(1.0), pi2 / 6.0, 1e-11);
  EXPECT_NEAR(trigamma(0.5), pi2 / 2.0, 1e-10);
}

TEST(Trigamma, RecurrenceHolds) {
  for (const double x : {0.2, 1.1, 3.3, 25.0}) {
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-10)
        << "x = " << x;
  }
}

TEST(Trigamma, IsDerivativeOfDigamma) {
  for (const double x : {0.8, 2.5, 9.0}) {
    const double h = 1e-6;
    const double numeric = (digamma(x + h) - digamma(x - h)) / (2.0 * h);
    EXPECT_NEAR(trigamma(x), numeric, 1e-6) << "x = " << x;
  }
}

TEST(RegGammaLower, BoundaryValues) {
  EXPECT_DOUBLE_EQ(reg_gamma_lower(2.5, 0.0), 0.0);
  EXPECT_NEAR(reg_gamma_lower(1.0, 1e3), 1.0, 1e-12);
}

TEST(RegGammaLower, MatchesExponentialForShapeOne) {
  // P(1, x) = 1 - e^{-x}.
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(reg_gamma_lower(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegGammaLower, KnownValues) {
  // Reference values (scipy.special.gammainc).
  EXPECT_NEAR(reg_gamma_lower(0.5, 0.5), 0.6826894921370859, 1e-10);
  EXPECT_NEAR(reg_gamma_lower(3.0, 2.0), 0.3233235838169365, 1e-10);
  EXPECT_NEAR(reg_gamma_lower(10.0, 12.0), 0.7576078383294877, 1e-10);
}

TEST(RegGammaUpperLower, SumToOne) {
  for (const double a : {0.3, 1.0, 2.7, 15.0}) {
    for (const double x : {0.01, 0.5, 2.0, 30.0}) {
      EXPECT_NEAR(reg_gamma_lower(a, x) + reg_gamma_upper(a, x), 1.0, 1e-12)
          << "a = " << a << " x = " << x;
    }
  }
}

TEST(RegGammaLower, RejectsBadDomain) {
  EXPECT_THROW(reg_gamma_lower(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(reg_gamma_lower(1.0, -1.0), InvalidArgument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-12);
  EXPECT_NEAR(normal_cdf(6.0), 1.0 - 9.865876450376946e-10, 1e-15);
}

TEST(NormalQuantile, InvertsCdf) {
  for (const double p : {1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0 - 1e-6}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p = " << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.84134474606854293), 1.0, 1e-9);
}

TEST(NormalQuantile, RejectsBoundary) {
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(-0.1), InvalidArgument);
}

TEST(LogGamma, MatchesFactorials) {
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-15);
  EXPECT_THROW(log_gamma(0.0), InvalidArgument);
}

TEST(KolmogorovQ, LimitsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(10.0), 0.0, 1e-12);
  // Known reference: Q(1.0) ~ 0.26999967.
  EXPECT_NEAR(kolmogorov_q(1.0), 0.26999967, 1e-6);
  double prev = 1.0;
  for (double lambda = 0.1; lambda < 3.0; lambda += 0.1) {
    const double q = kolmogorov_q(lambda);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

}  // namespace
}  // namespace hpcfail::stats
