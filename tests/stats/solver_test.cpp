#include "stats/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace hpcfail::stats {
namespace {

TEST(Bisect, FindsSimpleRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  EXPECT_NEAR(bisect(f, 0.0, 2.0), std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ExactEndpointRoot) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(bisect(f, 1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(bisect(f, 0.0, 1.0), 1.0);
}

TEST(Bisect, RejectsNonBracketingInterval) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(bisect(f, -1.0, 1.0), InvalidArgument);
}

TEST(Bisect, RejectsReversedInterval) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW(bisect(f, 1.0, -1.0), InvalidArgument);
}

TEST(NewtonBracketed, ConvergesQuadratically) {
  const auto f = [](double x) { return std::exp(x) - 5.0; };
  const auto df = [](double x) { return std::exp(x); };
  EXPECT_NEAR(newton_bracketed(f, df, 0.0, 10.0), std::log(5.0), 1e-12);
}

TEST(NewtonBracketed, SurvivesFlatDerivative) {
  // Derivative vanishes at the left end; safeguard must bisect.
  const auto f = [](double x) { return x * x * x - 8.0; };
  const auto df = [](double x) { return 3.0 * x * x; };
  EXPECT_NEAR(newton_bracketed(f, df, -1.0, 5.0), 2.0, 1e-10);
}

TEST(NewtonBracketed, MisleadingDerivativeStillConverges) {
  // A wrong (constant) derivative forces the bisection fallback.
  const auto f = [](double x) { return std::tanh(x) - 0.5; };
  const auto df = [](double) { return 1e-9; };
  EXPECT_NEAR(newton_bracketed(f, df, -5.0, 5.0), std::atanh(0.5), 1e-9);
}

TEST(Brent, FindsRootOfOscillatoryFunction) {
  const auto f = [](double x) { return std::cos(x) - x; };
  EXPECT_NEAR(brent(f, 0.0, 1.0), 0.7390851332151607, 1e-10);
}

TEST(Brent, HandlesSteepFunction) {
  const auto f = [](double x) { return std::expm1(50.0 * (x - 0.3)); };
  EXPECT_NEAR(brent(f, 0.0, 1.0), 0.3, 1e-9);
}

TEST(Brent, RejectsNonBracketingInterval) {
  const auto f = [](double x) { return x * x + 0.5; };
  EXPECT_THROW(brent(f, -1.0, 1.0), InvalidArgument);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  const auto f = [](double x) { return x - 100.0; };
  double lo = 1.0;
  double hi = 2.0;
  expand_bracket(f, lo, hi);
  EXPECT_LE(lo, 100.0);
  EXPECT_GE(hi, 100.0);
  EXPECT_LE(f(lo) * f(hi), 0.0);
}

TEST(ExpandBracket, RespectsPositiveOnlyFloor) {
  // Root at 1e-4; expansion toward zero must stay positive.
  const auto f = [](double x) { return std::log(x / 1e-4); };
  double lo = 0.5;
  double hi = 2.0;
  expand_bracket(f, lo, hi, /*positive_only=*/true);
  EXPECT_GT(lo, 0.0);
  EXPECT_LE(f(lo) * f(hi), 0.0);
  EXPECT_NEAR(brent(f, lo, hi), 1e-4, 1e-10);
}

TEST(ExpandBracket, ThrowsWhenNoRootExists) {
  const auto f = [](double) { return 1.0; };
  double lo = 0.1;
  double hi = 1.0;
  EXPECT_THROW(expand_bracket(f, lo, hi), NumericError);
}

TEST(ExpandBracket, EndpointOverloadReturnsTheEvaluatedValues) {
  const auto f = [](double x) { return std::log(x); };
  double lo = 0.25;
  double hi = 0.5;
  double f_lo = 0.0;
  double f_hi = 0.0;
  expand_bracket(f, lo, hi, f_lo, f_hi, /*positive_only=*/true);
  EXPECT_EQ(f_lo, f(lo));
  EXPECT_EQ(f_hi, f(hi));
  EXPECT_LE(f_lo * f_hi, 0.0);
}

TEST(NewtonBracketedFdf, BitIdenticalToSeparateValueAndSlope) {
  // The fused form exists so the Weibull profile score costs one data
  // pass per iteration instead of two; its contract is that the iterate
  // sequence — and therefore the root, bit for bit — matches
  // newton_bracketed with separate f/df callables.
  const auto cases = {
      std::pair<double, double>{0.5, 3.0},    // root at sqrt(2)
      std::pair<double, double>{1e-3, 10.0},  // wide bracket
  };
  for (const auto& [lo, hi] : cases) {
    const auto f = [](double x) { return x * x - 2.0; };
    const auto df = [](double x) { return 2.0 * x; };
    const double classic = newton_bracketed(f, df, lo, hi);
    const double fused = newton_bracketed_fdf(
        [](double x, double& slope) {
          slope = 2.0 * x;
          return x * x - 2.0;
        },
        lo, hi, f(lo), f(hi));
    EXPECT_EQ(fused, classic);
  }

  // A transcendental objective where Newton occasionally overshoots and
  // the safeguard bisects: the fallback decisions must match too.
  const auto g = [](double x) { return std::tanh(4.0 * (x - 1.3)); };
  const auto dg = [](double x) {
    const double t = std::tanh(4.0 * (x - 1.3));
    return 4.0 * (1.0 - t * t);
  };
  const double classic = newton_bracketed(g, dg, 0.01, 20.0);
  const double fused = newton_bracketed_fdf(
      [&](double x, double& slope) {
        slope = dg(x);
        return g(x);
      },
      0.01, 20.0, g(0.01), g(20.0));
  EXPECT_EQ(fused, classic);
}

}  // namespace
}  // namespace hpcfail::stats
