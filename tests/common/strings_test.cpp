#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("Hardware"), "hardware");
  EXPECT_EQ(to_lower("ABC123xyz"), "abc123xyz");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, EmptyStringGivesOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparator) {
  const auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(ParseI64, ParsesSignedIntegers) {
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_EQ(parse_i64("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseI64, RejectsGarbage) {
  EXPECT_THROW(parse_i64(""), ParseError);
  EXPECT_THROW(parse_i64("12x"), ParseError);
  EXPECT_THROW(parse_i64("x12"), ParseError);
  EXPECT_THROW(parse_i64("1.5"), ParseError);
  EXPECT_THROW(parse_i64("99999999999999999999"), ParseError);  // overflow
}

TEST(ParseDouble, ParsesNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3"), -1e-3);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbageAndNonFinite) {
  EXPECT_THROW(parse_double(""), ParseError);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.5x"), ParseError);
  EXPECT_THROW(parse_double("1e999"), ParseError);  // overflows to inf
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

}  // namespace
}  // namespace hpcfail
