#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hpcfail {
namespace {

TEST(Expects, PassesOnTrueCondition) {
  EXPECT_NO_THROW(HPCFAIL_EXPECTS(1 + 1 == 2, "arithmetic works"));
}

TEST(Expects, ThrowsInvalidArgumentWithContext) {
  try {
    HPCFAIL_EXPECTS(false, "the message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Assert, ThrowsLogicErrorWithCondition) {
  try {
    HPCFAIL_ASSERT(2 < 1);
    FAIL() << "should have thrown";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw NumericError("x"), Error);
  EXPECT_THROW(throw LogicError("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

}  // namespace
}  // namespace hpcfail
