#include "common/time.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail {
namespace {

TEST(DaysFromCivil, EpochIsZero) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
}

TEST(DaysFromCivil, KnownDates) {
  EXPECT_EQ(days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(days_from_civil(1969, 12, 31), -1);
  EXPECT_EQ(days_from_civil(2000, 1, 1), 10957);
  // The paper's observation window endpoints.
  EXPECT_EQ(days_from_civil(1996, 6, 1), 9648);
  EXPECT_EQ(days_from_civil(2005, 11, 30), 13117);
}

TEST(CivilFromDays, RoundTripsAcrossFourCenturies) {
  // Covers leap years, century non-leaps, and the 400-year leap.
  for (std::int64_t day = days_from_civil(1900, 1, 1);
       day <= days_from_civil(2100, 1, 1); day += 13) {
    int y = 0;
    int m = 0;
    int d = 0;
    civil_from_days(day, y, m, d);
    EXPECT_EQ(days_from_civil(y, m, d), day);
    EXPECT_TRUE(is_valid_date(y, m, d));
  }
}

TEST(DaysInMonth, HandlesLeapYears) {
  EXPECT_EQ(days_in_month(2000, 2), 29);  // divisible by 400: leap
  EXPECT_EQ(days_in_month(1900, 2), 28);  // divisible by 100: not leap
  EXPECT_EQ(days_in_month(2004, 2), 29);
  EXPECT_EQ(days_in_month(2005, 2), 28);
  EXPECT_EQ(days_in_month(2005, 4), 30);
  EXPECT_EQ(days_in_month(2005, 12), 31);
}

TEST(IsValidDate, RejectsOutOfRange) {
  EXPECT_FALSE(is_valid_date(2005, 0, 1));
  EXPECT_FALSE(is_valid_date(2005, 13, 1));
  EXPECT_FALSE(is_valid_date(2005, 2, 29));
  EXPECT_FALSE(is_valid_date(2005, 4, 31));
  EXPECT_TRUE(is_valid_date(2004, 2, 29));
}

TEST(ToEpoch, MatchesKnownTimestamps) {
  EXPECT_EQ(to_epoch(1970, 1, 1), 0);
  EXPECT_EQ(to_epoch(CivilDateTime{2000, 1, 1, 12, 30, 15}),
            946729815);
}

TEST(ToEpoch, RejectsInvalidFields) {
  EXPECT_THROW(to_epoch(2005, 2, 29), InvalidArgument);
  EXPECT_THROW(to_epoch(CivilDateTime{2005, 1, 1, 24, 0, 0}),
               InvalidArgument);
  EXPECT_THROW(to_epoch(CivilDateTime{2005, 1, 1, 0, 60, 0}),
               InvalidArgument);
  EXPECT_THROW(to_epoch(CivilDateTime{2005, 1, 1, 0, 0, -1}),
               InvalidArgument);
}

TEST(FromEpoch, RoundTrips) {
  const CivilDateTime cdt{1997, 7, 15, 23, 59, 59};
  EXPECT_EQ(from_epoch(to_epoch(cdt)), cdt);
}

TEST(FromEpoch, HandlesNegativeTimes) {
  const CivilDateTime cdt = from_epoch(-1);
  EXPECT_EQ(cdt.year, 1969);
  EXPECT_EQ(cdt.month, 12);
  EXPECT_EQ(cdt.day, 31);
  EXPECT_EQ(cdt.hour, 23);
  EXPECT_EQ(cdt.minute, 59);
  EXPECT_EQ(cdt.second, 59);
}

TEST(DayOfWeek, KnownDays) {
  EXPECT_EQ(day_of_week(to_epoch(1970, 1, 1)), 4);   // Thursday
  EXPECT_EQ(day_of_week(to_epoch(2005, 11, 27)), 0); // Sunday
  EXPECT_EQ(day_of_week(to_epoch(2005, 11, 28)), 1); // Monday
  EXPECT_EQ(day_of_week(to_epoch(1996, 6, 1)), 6);   // Saturday
}

TEST(DayOfWeek, MidDayDoesNotShift) {
  const Seconds noon = to_epoch(2005, 11, 28) + 12 * kSecondsPerHour;
  EXPECT_EQ(day_of_week(noon), 1);
}

TEST(HourOfDay, ExtractsHour) {
  EXPECT_EQ(hour_of_day(to_epoch(2005, 3, 4)), 0);
  EXPECT_EQ(hour_of_day(to_epoch(2005, 3, 4) + 13 * kSecondsPerHour + 59),
            13);
}

TEST(IsWeekend, MatchesDayOfWeek) {
  EXPECT_TRUE(is_weekend(to_epoch(2005, 11, 27)));   // Sunday
  EXPECT_FALSE(is_weekend(to_epoch(2005, 11, 28)));  // Monday
  EXPECT_TRUE(is_weekend(to_epoch(2005, 11, 26)));   // Saturday
}

TEST(MonthsBetween, CountsWholeMonths) {
  const Seconds start = to_epoch(1997, 1, 1);
  EXPECT_EQ(months_between(start, start), 0);
  EXPECT_EQ(months_between(start, to_epoch(1997, 1, 31)), 0);
  EXPECT_EQ(months_between(start, to_epoch(1997, 2, 1)), 1);
  EXPECT_EQ(months_between(start, to_epoch(1998, 1, 1)), 12);
  EXPECT_EQ(months_between(start, to_epoch(2005, 11, 30)), 106);
}

TEST(MonthsBetween, MidMonthStart) {
  const Seconds start = to_epoch(1997, 1, 15);
  EXPECT_EQ(months_between(start, to_epoch(1997, 2, 14)), 0);
  EXPECT_EQ(months_between(start, to_epoch(1997, 2, 15)), 1);
}

TEST(MonthsBetween, RejectsReversedArguments) {
  EXPECT_THROW(months_between(to_epoch(1998, 1, 1), to_epoch(1997, 1, 1)),
               InvalidArgument);
}

TEST(YearsBetween, ApproximatesCalendarYears) {
  EXPECT_NEAR(years_between(to_epoch(1996, 6, 1), to_epoch(2005, 6, 1)),
              9.0, 0.01);
}

TEST(FormatTimestamp, CanonicalForm) {
  EXPECT_EQ(format_timestamp(to_epoch(CivilDateTime{2005, 11, 9, 8, 7, 6})),
            "2005-11-09 08:07:06");
}

TEST(ParseTimestamp, ParsesBothForms) {
  EXPECT_EQ(parse_timestamp("2005-11-09 08:07:06"),
            to_epoch(CivilDateTime{2005, 11, 9, 8, 7, 6}));
  EXPECT_EQ(parse_timestamp("2005-11-09"), to_epoch(2005, 11, 9));
}

TEST(ParseTimestamp, RoundTripsWithFormat) {
  const Seconds t = to_epoch(CivilDateTime{1999, 2, 28, 23, 0, 1});
  EXPECT_EQ(parse_timestamp(format_timestamp(t)), t);
}

TEST(ParseTimestamp, RejectsMalformedInput) {
  EXPECT_THROW(parse_timestamp(""), ParseError);
  EXPECT_THROW(parse_timestamp("not a date"), ParseError);
  EXPECT_THROW(parse_timestamp("2005-13-01"), ParseError);
  EXPECT_THROW(parse_timestamp("2005-02-29"), ParseError);
  EXPECT_THROW(parse_timestamp("2005-11-09 25:00:00"), ParseError);
  EXPECT_THROW(parse_timestamp("2005-11-09 08:07:06 trailing"), ParseError);
}

}  // namespace
}  // namespace hpcfail
