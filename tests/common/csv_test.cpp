#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace hpcfail {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesSpecialCharacters) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(ParseCsv, SimpleRows) {
  const auto rows = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsv, QuotedFieldWithSeparator) {
  const auto rows = parse_csv("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsv, EscapedQuotes) {
  const auto rows = parse_csv("\"say \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(ParseCsv, EmbeddedNewlineInQuotes) {
  const auto rows = parse_csv("\"two\nlines\",x\nnext,row\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "two\nlines");
  EXPECT_EQ(rows[1][0], "next");
}

TEST(ParseCsv, CrLfLineEndings) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(ParseCsv, MissingFinalNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, CrLfWithMissingFinalNewline) {
  // Regression: a CRLF file truncated before its final LF used to keep
  // the '\r' in the last field of the last row.
  const auto rows = parse_csv("a,b\r\nc,d\r");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, QuotedFinalFieldFollowedByCrLf) {
  // Regression: the '\r' of a CRLF ending arrives *after* the closing
  // quote, so it must still be stripped even though the field was quoted
  // (standard RFC 4180 shape, e.g. Excel exports).
  const auto rows = parse_csv("a,\"b,c\"\r\nd,e\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b,c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"d", "e"}));
}

TEST(ParseCsv, QuotedFinalFieldFollowedByCrAtEof) {
  // Same shape, CRLF file truncated before its final LF.
  const auto rows = parse_csv("a,\"b,c\"\r");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b,c"}));
}

TEST(ParseCsv, QuotedTrailingCrSurvivesCrLfEnding) {
  // A quoted '\r' at the end of the quoted region is data; only the
  // unquoted '\r' of the CRLF ending is stripped.
  const auto rows = parse_csv("a,\"b\r\"\r\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b\r"}));
}

TEST(ParseCsv, QuotedFinalFieldKeepsCarriageReturn) {
  // A quoted '\r' is data, not a line ending, even at end of input.
  const auto rows = parse_csv("a,\"b\r\"");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b\r"}));
}

TEST(ParseCsv, EmptyFields) {
  const auto rows = parse_csv(",,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvReader, UnterminatedQuoteThrows) {
  std::istringstream in("\"unterminated\n");
  CsvReader reader(in);
  std::vector<std::string> row;
  EXPECT_THROW(reader.next_row(row), ParseError);
}

TEST(CsvReader, TracksLineNumbersAcrossMultilineFields) {
  std::istringstream in("first,row\n\"multi\nline\",x\nlast,row\n");
  CsvReader reader(in);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(reader.line_number(), 1u);
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(reader.line_number(), 2u);
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(reader.line_number(), 4u);  // multiline field consumed line 3
  EXPECT_FALSE(reader.next_row(row));
}

TEST(CsvWriter, RoundTripsThroughReader) {
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma", "with \"quote\""},
      {"", "second\nline", "x"},
  };
  std::ostringstream out;
  CsvWriter writer(out);
  for (const auto& row : rows) writer.write_row(row);

  const auto parsed = parse_csv(out.str());
  EXPECT_EQ(parsed, rows);
}

TEST(CsvWriter, FieldEndingInCarriageReturnRoundTrips) {
  // Regression: the CRLF strip used to eat a quoted trailing '\r' on
  // the way back in, so write -> read was lossy for this field.
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"x", "ends with cr\r"});
  const auto parsed = parse_csv(out.str());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0][1], "ends with cr\r");
}

TEST(CsvWriter, CustomSeparator) {
  std::ostringstream out;
  CsvWriter writer(out, ';');
  writer.write_row({"a;b", "c"});
  EXPECT_EQ(out.str(), "\"a;b\";c\n");
  const auto parsed = parse_csv(out.str(), ';');
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0][0], "a;b");
}

}  // namespace
}  // namespace hpcfail
