#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace hpcfail {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformPosNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.uniform_pos(), 0.0);
    ASSERT_LE(rng.uniform_pos(), 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, 500.0);
  }
}

TEST(Rng, UniformIndexNonPowerOfTwoIsUnbiased) {
  Rng rng(17);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 90000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_index(3)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 3.0, 600.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ForkProducesIndependentStreams) {
  const Rng parent(23);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
  // Same stream id gives the same fork.
  Rng c = parent.fork(1);
  Rng d = parent.fork(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c.next_u64(), d.next_u64());
  }
}

TEST(MixSeed, DistinguishesComponents) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 20; ++a) {
    for (std::uint64_t b = 0; b < 20; ++b) {
      seeds.insert(mix_seed(a, b));
    }
  }
  EXPECT_EQ(seeds.size(), 400u);  // no collisions on a small grid
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  EXPECT_NE(s, 0u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(3);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace hpcfail
