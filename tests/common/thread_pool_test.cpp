#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace {

using hpcfail::ThreadPool;

// Reset the shared pool to the hardware default after each test so the
// knob never leaks across test cases.
class ParallelTest : public ::testing::Test {
 protected:
  ~ParallelTest() override { hpcfail::set_parallelism(0); }
};

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroThreadPoolRunsTasksInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  auto future = pool.submit([] { return 7; });
  // Already ran inside submit(): the future must be ready immediately.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), 7);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  EXPECT_FALSE(ThreadPool::inside_worker());
  ThreadPool pool(2);
  auto future = pool.submit([] { return ThreadPool::inside_worker(); });
  EXPECT_TRUE(future.get());
  EXPECT_FALSE(ThreadPool::inside_worker());
}

TEST(ThreadPoolTest, DestructorCompletesQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { ++done; });
    }
  }  // ~ThreadPool drains the queue before joining
  EXPECT_EQ(done.load(), 50);
}

TEST_F(ParallelTest, ParallelismKnobRoundTrips) {
  hpcfail::set_parallelism(3);
  EXPECT_EQ(hpcfail::parallelism(), 3u);
  hpcfail::set_parallelism(0);
  EXPECT_EQ(hpcfail::parallelism(), hpcfail::hardware_parallelism());
  EXPECT_GE(hpcfail::hardware_parallelism(), 1u);
}

TEST_F(ParallelTest, ParallelForVisitsEveryIndexOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    hpcfail::set_parallelism(threads);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    hpcfail::parallel_for(n, [&visits](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST_F(ParallelTest, ParallelMapPreservesIndexOrder) {
  for (const unsigned threads : {1u, 4u}) {
    hpcfail::set_parallelism(threads);
    const auto out = hpcfail::parallel_map(
        257, [](std::size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<int>(i) * 3);
    }
  }
}

TEST_F(ParallelTest, ParallelForPropagatesTaskException) {
  hpcfail::set_parallelism(4);
  EXPECT_THROW(
      hpcfail::parallel_for(100,
                            [](std::size_t i) {
                              if (i == 63) {
                                throw hpcfail::NumericError("boom at 63");
                              }
                            }),
      hpcfail::NumericError);
}

TEST_F(ParallelTest, ParallelForFinishesRemainingChunksAfterException) {
  hpcfail::set_parallelism(4);
  std::atomic<int> visited{0};
  try {
    // Index 99 is the last index of the last chunk, so every other index
    // runs before the throw regardless of how the range is chunked.
    hpcfail::parallel_for(100, [&visited](std::size_t i) {
      if (i == 99) throw std::runtime_error("last index fails");
      ++visited;
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
  // A failure does not silently cancel the other chunks of the sweep.
  EXPECT_EQ(visited.load(), 99);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  hpcfail::set_parallelism(2);
  std::vector<std::atomic<int>> cells(64);
  hpcfail::parallel_for(8, [&cells](std::size_t outer) {
    // Nested call from a pool worker: must degrade to a sequential loop
    // (inside_worker() is true there) instead of waiting on a queue only
    // this worker could drain.
    hpcfail::parallel_for(8, [&cells, outer](std::size_t inner) {
      ++cells[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_EQ(cells[i].load(), 1) << "cell " << i;
  }
}

TEST_F(ParallelTest, NestedSubmitViaParallelMapProducesOrderedResults) {
  hpcfail::set_parallelism(3);
  const auto table = hpcfail::parallel_map(6, [](std::size_t outer) {
    return hpcfail::parallel_map(5, [outer](std::size_t inner) {
      return static_cast<int>(outer * 10 + inner);
    });
  });
  ASSERT_EQ(table.size(), 6u);
  for (std::size_t outer = 0; outer < table.size(); ++outer) {
    ASSERT_EQ(table[outer].size(), 5u);
    for (std::size_t inner = 0; inner < 5; ++inner) {
      ASSERT_EQ(table[outer][inner], static_cast<int>(outer * 10 + inner));
    }
  }
}

TEST_F(ParallelTest, ParallelMapHandlesEmptyAndSingleton) {
  hpcfail::set_parallelism(4);
  EXPECT_TRUE(
      hpcfail::parallel_map(0, [](std::size_t) { return 1; }).empty());
  const auto one = hpcfail::parallel_map(1, [](std::size_t) { return 5; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 5);
}

}  // namespace
