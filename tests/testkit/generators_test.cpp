// Generator laws: every stock generator must (a) sample only values that
// satisfy its advertised invariant and (b) keep that invariant across
// every shrink candidate — otherwise shrinking could "minimize" a failure
// into an input the production code is not even supposed to accept.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "testkit/generators.hpp"
#include "testkit/property.hpp"
#include "trace/record.hpp"

namespace {

using hpcfail::Rng;
using namespace hpcfail::testkit;

// Samples `count` values and applies `check` to each value and to each
// of its shrink candidates.
template <typename T, typename Check>
void for_samples_and_shrinks(const Gen<T>& gen, std::size_t count,
                             Check&& check) {
  Rng rng(20260805);
  for (std::size_t i = 0; i < count; ++i) {
    const T value = gen.sample(rng);
    check(value);
    for (const T& candidate : gen.shrink(value)) check(candidate);
  }
}

TEST(Generators, RealsStayInRange) {
  const auto gen = reals(-3.0, 12.5);
  for_samples_and_shrinks(gen, 300, [](double x) {
    EXPECT_GE(x, -3.0);
    EXPECT_LE(x, 12.5);
  });
}

TEST(Generators, PositiveRealsAreStrictlyPositive) {
  const auto gen = positive_reals(3600.0);
  for_samples_and_shrinks(gen, 300, [](double x) { EXPECT_GT(x, 0.0); });
}

TEST(Generators, IntsStayInRange) {
  const auto gen = ints(-4, 17);
  for_samples_and_shrinks(gen, 300, [](int v) {
    EXPECT_GE(v, -4);
    EXPECT_LE(v, 17);
  });
}

TEST(Generators, VectorsRespectSizeBounds) {
  const auto gen = vectors(reals(0.0, 1.0), 3, 9);
  for_samples_and_shrinks(gen, 100, [](const std::vector<double>& xs) {
    EXPECT_GE(xs.size(), 3u);
    EXPECT_LE(xs.size(), 9u);
    for (const double x : xs) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  });
}

TEST(Generators, SortedVectorsStaySortedThroughShrinking) {
  const auto gen = sorted_vectors(positive_reals(100.0), 2, 12);
  for_samples_and_shrinks(gen, 100, [](const std::vector<double>& xs) {
    EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  });
}

TEST(Generators, FailureRecordsAreAlwaysConsistent) {
  RecordGenOptions options;
  const auto gen = failure_records(options);
  for_samples_and_shrinks(gen, 300, [&](const hpcfail::trace::FailureRecord& r) {
    EXPECT_TRUE(r.is_consistent());
    EXPECT_GE(r.system_id, 1);
    EXPECT_LE(r.system_id, options.systems);
    EXPECT_GE(r.node_id, 0);
    EXPECT_LT(r.node_id, options.nodes_per_system);
    EXPECT_GE(r.downtime_seconds(), 0);
    EXPECT_LE(r.downtime_seconds(), options.max_repair);
  });
}

TEST(Generators, RecordBatchesRespectSizeBounds) {
  const auto gen = record_batches(2, 25);
  for_samples_and_shrinks(
      gen, 40, [](const std::vector<hpcfail::trace::FailureRecord>& rs) {
        EXPECT_GE(rs.size(), 2u);
        EXPECT_LE(rs.size(), 25u);
        for (const auto& r : rs) EXPECT_TRUE(r.is_consistent());
      });
}

TEST(Generators, DatasetsAreWellFormedAndStartSorted) {
  const auto gen = datasets(1, 30);
  Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    const auto ds = gen.sample(rng);
    EXPECT_GE(ds.size(), 1u);
    EXPECT_LE(ds.size(), 30u);
    const auto records = ds.records();
    for (std::size_t k = 1; k < records.size(); ++k) {
      EXPECT_LE(records[k - 1].start, records[k].start);
    }
  }
}

TEST(Generators, SamplingIsAPureFunctionOfTheSeed) {
  const auto gen = record_batches(1, 50);
  Rng a(4242);
  Rng b(4242);
  for (int i = 0; i < 10; ++i) {
    const auto xs = gen.sample(a);
    const auto ys = gen.sample(b);
    ASSERT_EQ(xs.size(), ys.size());
    for (std::size_t k = 0; k < xs.size(); ++k) {
      EXPECT_EQ(xs[k].start, ys[k].start);
      EXPECT_EQ(xs[k].end, ys[k].end);
      EXPECT_EQ(xs[k].system_id, ys[k].system_id);
      EXPECT_EQ(xs[k].node_id, ys[k].node_id);
      EXPECT_EQ(xs[k].detail, ys[k].detail);
    }
  }
}

}  // namespace
