// Self-tests of the property engine: passing runs, failure reporting,
// greedy shrinking to a minimal counterexample, seed reproducibility,
// and the throwing-predicate contract. These are the acceptance tests
// for the harness itself, so they assert on the exact mechanics.
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "testkit/generators.hpp"
#include "testkit/property.hpp"

namespace {

using hpcfail::testkit::check_property;
using hpcfail::testkit::Gen;
using hpcfail::testkit::ints;
using hpcfail::testkit::positive_reals;
using hpcfail::testkit::Property;
using hpcfail::testkit::PropertyOptions;
using hpcfail::testkit::reals;
using hpcfail::testkit::vectors;

TEST(PropertyEngine, PassingPropertyRunsEveryCase) {
  PropertyOptions options;
  options.cases = 137;
  const auto result =
      check_property(positive_reals(10.0),
                     [](double x) { return x > 0.0; }, options);
  EXPECT_TRUE(result.passed);
  EXPECT_TRUE(static_cast<bool>(result));
  EXPECT_EQ(result.cases_run, 137u);
  EXPECT_FALSE(result.counterexample.has_value());
  EXPECT_TRUE(result.message.empty());
}

TEST(PropertyEngine, ShrinkingFindsTheExactBoundary) {
  // "v < 500" over ints in [0, 1000]: the unique minimal counterexample
  // is 500 itself, and the greedy shrinker must reach it from wherever
  // the random draw landed.
  const auto result = check_property(
      ints(0, 1000), [](int v) { return v < 500; });
  ASSERT_FALSE(result.passed);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(*result.counterexample, 500);
  EXPECT_GT(result.shrink_steps, 0u);
}

TEST(PropertyEngine, FailingSeedReproducesTheOriginalDraw) {
  const auto gen = reals(0.0, 100.0);
  const auto result =
      check_property(gen, [](double x) { return x < 60.0; });
  ASSERT_FALSE(result.passed);
  // The reported seed re-creates the *unshrunk* failing draw.
  hpcfail::Rng rng(result.failing_seed);
  const double replay = gen.sample(rng);
  EXPECT_GE(replay, 60.0);
}

TEST(PropertyEngine, FailureMessageNamesThePropertyAndSeed) {
  Property<int> property("ints are tiny", ints(0, 9),
                         [](int v) { return v < 5; });
  const auto result = property.check();
  ASSERT_FALSE(result.passed);
  EXPECT_NE(result.message.find("ints are tiny"), std::string::npos);
  EXPECT_NE(result.message.find("minimal counterexample"), std::string::npos);
  EXPECT_NE(result.message.find("seed 0x"), std::string::npos);
  EXPECT_EQ(*result.counterexample, 5);
}

TEST(PropertyEngine, VectorShrinkDropsIrrelevantElements) {
  // "no element exceeds 50": a minimal counterexample is one element
  // barely above the threshold; structural shrinking must discard the
  // rest of the vector.
  const auto result = check_property(
      vectors(reals(0.0, 100.0), 0, 20), [](const std::vector<double>& xs) {
        for (const double x : xs) {
          if (x > 50.0) return false;
        }
        return true;
      });
  ASSERT_FALSE(result.passed);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(result.counterexample->size(), 1u);
  EXPECT_GT(result.counterexample->front(), 50.0);
}

TEST(PropertyEngine, ThrowingPredicateCountsAsFailure) {
  const auto result = check_property(ints(0, 100), [](int v) -> bool {
    if (v >= 10) throw std::runtime_error("predicate blew up");
    return true;
  });
  ASSERT_FALSE(result.passed);
  // Shrinking treats the throw as a failure too, so the minimum is the
  // smallest throwing input.
  EXPECT_EQ(*result.counterexample, 10);
}

TEST(PropertyEngine, SameSeedGivesIdenticalOutcome) {
  PropertyOptions options;
  options.seed = 0xabcdefull;
  const auto predicate = [](double x) { return x < 7.5; };
  const auto first = check_property(reals(0.0, 10.0), predicate, options);
  const auto second = check_property(reals(0.0, 10.0), predicate, options);
  ASSERT_FALSE(first.passed);
  EXPECT_EQ(first.failing_case, second.failing_case);
  EXPECT_EQ(first.failing_seed, second.failing_seed);
  EXPECT_EQ(*first.counterexample, *second.counterexample);
  EXPECT_EQ(first.message, second.message);
}

TEST(PropertyEngine, ShrinkStepCapIsHonoured) {
  PropertyOptions options;
  options.max_shrink_steps = 3;
  const auto result = check_property(
      ints(0, 1'000'000), [](int v) { return v < 1; }, options);
  ASSERT_FALSE(result.passed);
  EXPECT_LE(result.shrink_steps, 3u);
}

}  // namespace
