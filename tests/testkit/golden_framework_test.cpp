// Self-tests of the golden-snapshot framework against throwaway files in
// the gtest temp dir: byte-exact matching, first-difference reporting,
// the .actual dump for CI artifacts, HPCFAIL_UPDATE_GOLDENS regeneration
// (including byte-identical re-regeneration), and tolerant numeric mode.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "testkit/golden.hpp"

namespace {

using hpcfail::testkit::golden_compare;
using hpcfail::testkit::GoldenOptions;
using hpcfail::testkit::update_goldens;

std::string temp_golden(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// RAII guard: forces update mode on/off for one test and restores the
// ambient environment afterwards, so these self-tests behave identically
// inside and outside a regeneration run.
class UpdateModeGuard {
 public:
  explicit UpdateModeGuard(bool enable) {
    const char* prior = std::getenv("HPCFAIL_UPDATE_GOLDENS");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    if (enable) {
      ::setenv("HPCFAIL_UPDATE_GOLDENS", "1", 1);
    } else {
      ::unsetenv("HPCFAIL_UPDATE_GOLDENS");
    }
  }
  ~UpdateModeGuard() {
    if (had_prior_) {
      ::setenv("HPCFAIL_UPDATE_GOLDENS", prior_.c_str(), 1);
    } else {
      ::unsetenv("HPCFAIL_UPDATE_GOLDENS");
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

TEST(GoldenFramework, ByteExactMatchPasses) {
  UpdateModeGuard guard(false);
  const std::string path = temp_golden("exact.golden");
  write_file(path, "header\n1 2 3\n");
  const auto result = golden_compare(path, "header\n1 2 3\n");
  EXPECT_TRUE(result.matched);
  EXPECT_TRUE(static_cast<bool>(result));
}

TEST(GoldenFramework, MismatchNamesFirstDifferingLineAndDumpsActual) {
  UpdateModeGuard guard(false);
  const std::string path = temp_golden("mismatch.golden");
  write_file(path, "alpha\nbeta\ngamma\n");
  const auto result = golden_compare(path, "alpha\nBETA\ngamma\n");
  ASSERT_FALSE(static_cast<bool>(result));
  EXPECT_NE(result.message.find("line 2"), std::string::npos);
  EXPECT_NE(result.message.find("HPCFAIL_UPDATE_GOLDENS=1"),
            std::string::npos);
  // The observed text lands next to the snapshot for CI to upload.
  EXPECT_EQ(read_file(path + ".actual"), "alpha\nBETA\ngamma\n");
  std::filesystem::remove(path + ".actual");
}

TEST(GoldenFramework, MissingSnapshotIsAMismatch) {
  UpdateModeGuard guard(false);
  const std::string path = temp_golden("never_written.golden");
  std::filesystem::remove(path);
  const auto result = golden_compare(path, "anything\n");
  EXPECT_FALSE(static_cast<bool>(result));
  EXPECT_NE(result.message.find("missing"), std::string::npos);
  std::filesystem::remove(path + ".actual");
}

TEST(GoldenFramework, UpdateModeWritesSnapshotByteIdentically) {
  const std::string path = temp_golden("regen/nested.golden");
  std::filesystem::remove_all(temp_golden("regen"));
  const std::string text = "table\n  row 1.5\n  row 2.5\n";
  {
    UpdateModeGuard guard(true);
    EXPECT_TRUE(update_goldens());
    const auto first = golden_compare(path, text);
    EXPECT_TRUE(first.updated);
    EXPECT_TRUE(static_cast<bool>(first));
    const std::string bytes_after_first = read_file(path);
    // Regenerating from an unchanged tree must be byte-identical.
    const auto second = golden_compare(path, text);
    EXPECT_TRUE(second.updated);
    EXPECT_EQ(read_file(path), bytes_after_first);
    EXPECT_EQ(read_file(path), text);
  }
  UpdateModeGuard guard(false);
  EXPECT_TRUE(golden_compare(path, text).matched);
}

TEST(GoldenFramework, ToleranceAbsorbsNumericDriftOnly) {
  UpdateModeGuard guard(false);
  const std::string path = temp_golden("tolerant.golden");
  write_file(path, "mean 100.000001 label\n");
  GoldenOptions tolerant;
  tolerant.rel_tol = 1e-6;
  tolerant.write_actual_on_mismatch = false;
  // Last-ulp numeric drift passes ...
  EXPECT_TRUE(golden_compare(path, "mean 100.000050 label\n", tolerant));
  // ... a real numeric change does not ...
  EXPECT_FALSE(
      static_cast<bool>(golden_compare(path, "mean 101.0 label\n", tolerant)));
  // ... and non-numeric or structural drift is never absorbed.
  EXPECT_FALSE(static_cast<bool>(
      golden_compare(path, "mean 100.000001 other\n", tolerant)));
  EXPECT_FALSE(static_cast<bool>(
      golden_compare(path, "mean 100.000001\n", tolerant)));
}

TEST(GoldenFramework, ToleranceZeroIsByteExact) {
  UpdateModeGuard guard(false);
  const std::string path = temp_golden("strict.golden");
  write_file(path, "x 1.0\n");
  GoldenOptions strict;
  strict.write_actual_on_mismatch = false;
  EXPECT_FALSE(static_cast<bool>(golden_compare(path, "x 1.00\n", strict)));
}

}  // namespace
