#include "report/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail::report {
namespace {

TEST(TextTable, RendersHeaderSeparatorAndRows) {
  TextTable t({"System", "Failures"});
  t.add_row({"7", "4096"});
  t.add_row({"22", "90"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("System"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("4096"), std::string::npos);
  // Three content lines plus separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"ID", "Value"});
  t.add_row({"a", "1"});
  t.add_row({"long-label", "12345"});
  const std::string out = t.to_string();
  // Every line has the same length (aligned grid).
  std::size_t expected = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::size_t len = eol - pos;
    if (expected == std::string::npos) {
      expected = len;
    } else {
      EXPECT_EQ(len, expected);
    }
    pos = eol + 1;
  }
}

TEST(TextTable, NumericRowFormatsDoubles) {
  TextTable t({"cause", "mean", "median"});
  t.add_row("hardware", {342.0, 64.0});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("342"), std::string::npos);
  EXPECT_NE(out.find("64"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgument);
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace hpcfail::report
