#include "report/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace hpcfail::report {
namespace {

TEST(BarChart, RendersBarsProportionally) {
  std::ostringstream out;
  bar_chart(out, "failures per year",
            {{"sys7", 100.0}, {"sys2", 50.0}, {"sys3", 0.0}}, 40);
  const std::string text = out.str();
  EXPECT_NE(text.find("failures per year"), std::string::npos);
  // sys7 gets the full 40 hashes, sys2 half.
  EXPECT_NE(text.find(std::string(40, '#')), std::string::npos);
  EXPECT_NE(text.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(text.find("sys3"), std::string::npos);
}

TEST(BarChart, RejectsEmpty) {
  std::ostringstream out;
  EXPECT_THROW(bar_chart(out, "t", {}), InvalidArgument);
}

TEST(StackedBarChart, LayersAndTotals) {
  std::ostringstream out;
  stacked_bar_chart(out, "failures by month",
                    {"m0", "m1"},
                    {{"hardware", {30.0, 10.0}},
                     {"software", {10.0, 10.0}}},
                    40);
  const std::string text = out.str();
  EXPECT_NE(text.find("failures by month"), std::string::npos);
  // Row m0 totals 40 (the max): 30 hashes then 10 plusses.
  EXPECT_NE(text.find(std::string(30, '#') + std::string(10, '+')),
            std::string::npos);
  // Totals printed.
  EXPECT_NE(text.find("40"), std::string::npos);
  EXPECT_NE(text.find("20"), std::string::npos);
  // Legend lines.
  EXPECT_NE(text.find("'#' hardware"), std::string::npos);
  EXPECT_NE(text.find("'+' software"), std::string::npos);
}

TEST(StackedBarChart, RowLengthProportionalToTotalDespiteTinyLayers) {
  std::ostringstream out;
  // Six layers of 1/6 each: naive per-layer rounding would drop rows to
  // zero characters; cumulative rounding must keep the full width.
  std::vector<StackSeries> series;
  for (int i = 0; i < 6; ++i) {
    series.push_back({"s" + std::to_string(i), {1.0}});
  }
  stacked_bar_chart(out, "t", {"row"}, series, 42);
  // 42 glyph characters in the bar (between '|' and the trailing total).
  const std::string text = out.str();
  const auto bar_start = text.find('|');
  ASSERT_NE(bar_start, std::string::npos);
  const auto bar = text.substr(bar_start + 1, 42);
  EXPECT_EQ(bar.find(' '), std::string::npos);
}

TEST(StackedBarChart, ValidatesShape) {
  std::ostringstream out;
  EXPECT_THROW(stacked_bar_chart(out, "t", {}, {{"a", {}}}),
               InvalidArgument);
  EXPECT_THROW(stacked_bar_chart(out, "t", {"x"}, {}), InvalidArgument);
  EXPECT_THROW(
      stacked_bar_chart(out, "t", {"x", "y"}, {{"a", {1.0}}}),
      InvalidArgument);
}

TEST(CdfPlot, RendersSeriesWithLegend) {
  CdfSeries data;
  data.name = "empirical";
  for (int i = 1; i <= 50; ++i) {
    data.points.emplace_back(i * 100.0, i / 50.0);
  }
  CdfSeries model = sample_cdf(
      "model", [](double x) { return x / 5000.0; }, 100.0, 5000.0);
  std::ostringstream out;
  cdf_plot(out, "tbf cdf", {data, model});
  const std::string text = out.str();
  EXPECT_NE(text.find("tbf cdf"), std::string::npos);
  EXPECT_NE(text.find("'*' empirical"), std::string::npos);
  EXPECT_NE(text.find("'o' model"), std::string::npos);
  EXPECT_NE(text.find("log scale"), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
}

TEST(CdfPlot, LinearAxisMode) {
  CdfSeries s;
  s.name = "lin";
  s.points = {{0.0, 0.1}, {5.0, 0.5}, {10.0, 1.0}};
  std::ostringstream out;
  cdf_plot(out, "linear", {s}, /*log_x=*/false);
  EXPECT_EQ(out.str().find("log scale"), std::string::npos);
}

TEST(CdfPlot, LogModeDropsNonPositiveButPlotsRest) {
  CdfSeries s;
  s.name = "zeros";
  s.points = {{0.0, 0.3}, {10.0, 0.6}, {100.0, 1.0}};
  std::ostringstream out;
  EXPECT_NO_THROW(cdf_plot(out, "t", {s}, /*log_x=*/true));
  EXPECT_NE(out.str().find('*'), std::string::npos);
}

TEST(CdfPlot, RejectsUnplottableInput) {
  std::ostringstream out;
  EXPECT_THROW(cdf_plot(out, "t", {}), InvalidArgument);
  CdfSeries s;
  s.name = "only-zeros";
  s.points = {{0.0, 0.5}};
  EXPECT_THROW(cdf_plot(out, "t", {s}, /*log_x=*/true), InvalidArgument);
}

TEST(SampleCdf, SpacingModes) {
  int calls = 0;
  const auto cdf = [&calls](double) {
    ++calls;
    return 0.5;
  };
  const CdfSeries log_series = sample_cdf("l", cdf, 1.0, 1000.0, true, 4);
  ASSERT_EQ(log_series.points.size(), 4u);
  EXPECT_NEAR(log_series.points[1].first, 10.0, 1e-9);
  const CdfSeries lin_series =
      sample_cdf("l", cdf, 0.0, 30.0, false, 4);
  EXPECT_NEAR(lin_series.points[1].first, 10.0, 1e-9);
  EXPECT_EQ(calls, 8);
}

TEST(SampleCdf, ValidatesArguments) {
  const auto cdf = [](double) { return 0.5; };
  EXPECT_THROW(sample_cdf("x", cdf, 1.0, 10.0, true, 1), InvalidArgument);
  EXPECT_THROW(sample_cdf("x", cdf, 10.0, 1.0, true, 8), InvalidArgument);
  EXPECT_THROW(sample_cdf("x", cdf, 0.0, 10.0, true, 8), InvalidArgument);
  EXPECT_NO_THROW(sample_cdf("x", cdf, 0.0, 10.0, false, 8));
}

}  // namespace
}  // namespace hpcfail::report
