#include "report/series.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace hpcfail::report {
namespace {

TEST(SeriesCsv, WritesColumnsSideBySide) {
  std::ostringstream out;
  write_series_csv(out, {
                            {"hour", {0.0, 1.0, 2.0}},
                            {"failures", {10.0, 20.0, 15.0}},
                        });
  const auto rows = hpcfail::parse_csv(out.str());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"hour", "failures"}));
  EXPECT_EQ(rows[1][0], "0");
  EXPECT_EQ(rows[2][1], "20");
}

TEST(SeriesCsv, PadsShortColumnsWithEmptyCells) {
  std::ostringstream out;
  write_series_csv(out, {
                            {"x", {1.0, 2.0, 3.0}},
                            {"y", {9.0}},
                        });
  const auto rows = hpcfail::parse_csv(out.str());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[2][1], "");
  EXPECT_EQ(rows[3][1], "");
}

TEST(SeriesCsv, PreservesPrecision) {
  std::ostringstream out;
  write_series_csv(out, {{"v", {0.123456789012}}});
  const auto rows = hpcfail::parse_csv(out.str());
  EXPECT_EQ(rows[1][0].substr(0, 10), "0.12345678");
}

TEST(SeriesCsv, RejectsNoColumns) {
  std::ostringstream out;
  EXPECT_THROW(write_series_csv(out, {}), InvalidArgument);
}

TEST(SeriesCsv, FileWriterCreatesReadableFile) {
  const std::string path = ::testing::TempDir() + "/hpcfail_series.csv";
  write_series_csv_file(path, {{"a", {1.0}}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "a");
  EXPECT_THROW(write_series_csv_file("/nonexistent/x.csv", {{"a", {}}}),
               Error);
}

}  // namespace
}  // namespace hpcfail::report
