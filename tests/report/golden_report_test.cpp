// Golden snapshots of the text-rendering layer: TextTable and the ASCII
// chart renderers, fed hand-fixed inputs so the output is byte-exact on
// every platform. These pin the exact layout (alignment, separators,
// glyphs, number formatting) that the CLI report is built from; any
// intentional change is reviewed through HPCFAIL_UPDATE_GOLDENS=1.
#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "testkit/golden.hpp"

namespace {

std::string golden_path(const char* name) {
  return std::string(HPCFAIL_GOLDEN_DIR) + "/" + name;
}

TEST(GoldenReport, TextTableLayoutIsStable) {
  hpcfail::report::TextTable table(
      {"system", "HW", "failures", "fail/yr", "downtime h"});
  table.add_row({"2", "A", "1996", "488.2", "14287.5"});
  table.add_row({"19", "E", "3102", "689.1", "22110.0"});
  // The numeric-formatting overload: label + one double per remaining
  // column, rendered at 6 significant digits.
  table.add_row("20", {5.0, 3202.0, 711.4375, 23001.25}, 6);
  table.add_row({"total", "-", "8300", "1888.7", "59398.8"});

  const auto result = hpcfail::testkit::golden_compare(
      golden_path("report_table.golden"), table.to_string());
  EXPECT_TRUE(static_cast<bool>(result)) << result.message;
}

TEST(GoldenReport, AsciiChartsLayoutIsStable) {
  std::ostringstream out;

  hpcfail::report::bar_chart(
      out, "failures by root cause (% of records)",
      {{"Hardware", 61.58}, {"Software", 23.06}, {"Network", 1.8},
       {"Environment", 1.55}, {"Human", 0.36}, {"Unknown", 11.65}},
      40);
  out << "\n";

  hpcfail::report::stacked_bar_chart(
      out, "failures per month by cause",
      {"Jan", "Feb", "Mar"},
      {{"hardware", {12.0, 9.0, 15.0}},
       {"software", {4.0, 6.0, 3.0}},
       {"other", {1.0, 2.0, 1.0}}},
      30);
  out << "\n";

  // A fixed Weibull-vs-exponential CDF pair, the Fig 6 shape.
  const auto weibull = [](double x) {
    return 1.0 - std::exp(-std::pow(x / 1000.0, 0.7));
  };
  const auto exponential = [](double x) {
    return 1.0 - std::exp(-x / 1000.0);
  };
  hpcfail::report::cdf_plot(
      out, "interarrival CDF (fixed example)",
      {hpcfail::report::sample_cdf("weibull", weibull, 1.0, 1e5),
       hpcfail::report::sample_cdf("exponential", exponential, 1.0, 1e5)},
      /*log_x=*/true, 64, 16);

  const auto result = hpcfail::testkit::golden_compare(
      golden_path("ascii_charts.golden"), out.str());
  EXPECT_TRUE(static_cast<bool>(result)) << result.message;
}

}  // namespace
