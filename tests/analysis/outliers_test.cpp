#include "analysis/outliers.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/poisson.hpp"
#include "synth/generator.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;
using trace::SystemCatalog;

FailureRecord rec(int system, int node, Seconds start) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + 600;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::cpu;
  return r;
}

TEST(NodeOutliers, FlagsAnObviousHotNode) {
  // System 12: 32 equal-exposure nodes. 31 nodes with 10 failures each,
  // one node with 100.
  std::vector<FailureRecord> records;
  const Seconds t0 = to_epoch(2004, 1, 1);
  Seconds t = t0;
  for (int node = 0; node < 32; ++node) {
    const int count = node == 5 ? 100 : 10;
    for (int i = 0; i < count; ++i) {
      records.push_back(rec(12, node, t += 997));
    }
  }
  const OutlierReport report = node_outlier_analysis(
      FailureDataset(std::move(records)), SystemCatalog::lanl(), 12);
  ASSERT_EQ(report.nodes.size(), 32u);
  EXPECT_EQ(report.nodes.front().node_id, 5);  // smallest p-value first
  EXPECT_TRUE(report.nodes.front().significant);
  EXPECT_EQ(report.significant_count, 1u);
  // Expected under the null: 410 failures over 32 equal nodes.
  EXPECT_NEAR(report.nodes.front().expected, 410.0 / 32.0, 1e-9);
}

TEST(NodeOutliers, NoFalsePositivesOnHomogeneousData) {
  // Every node Poisson with the same mean: nothing should be flagged at
  // Bonferroni-corrected alpha = 0.01.
  hpcfail::Rng rng(83);
  std::vector<FailureRecord> records;
  const Seconds t0 = to_epoch(2004, 1, 1);
  Seconds t = t0;
  for (int node = 0; node < 32; ++node) {
    // Poisson(40) counts drawn via the library's own sampler.
    const hpcfail::dist::Poisson p(40.0);
    const auto count = static_cast<int>(p.sample(rng));
    for (int i = 0; i < count; ++i) {
      records.push_back(rec(12, node, t += 311));
    }
  }
  const OutlierReport report = node_outlier_analysis(
      FailureDataset(std::move(records)), SystemCatalog::lanl(), 12);
  EXPECT_EQ(report.significant_count, 0u);
}

TEST(NodeOutliers, ExposureWeightingProtectsLateNodes) {
  // System 20's node 0 entered production 8+ years after the others; its
  // tiny exposure means even a handful of failures is *more* surprising
  // than the same count on a long-lived node, and conversely a long-lived
  // node needs far more failures to be flagged.
  const OutlierReport report = node_outlier_analysis(
      synth::generate_lanl_trace(42), SystemCatalog::lanl(), 20);
  double node0_expected = 0.0;
  double node5_expected = 0.0;
  for (const NodeOutlier& n : report.nodes) {
    if (n.node_id == 0) node0_expected = n.expected;
    if (n.node_id == 5) node5_expected = n.expected;
  }
  EXPECT_LT(node0_expected, node5_expected / 10.0);
}

TEST(NodeOutliers, GraphicsNodesOfSystem20AreSignificant) {
  // The Section 5.1 observation as a hypothesis test: nodes 21-23 carry
  // several times their fair share and must be flagged.
  const OutlierReport report = node_outlier_analysis(
      synth::generate_lanl_trace(42), SystemCatalog::lanl(), 20);
  int graphics_flagged = 0;
  for (const NodeOutlier& n : report.nodes) {
    if (n.workload == trace::Workload::graphics && n.significant) {
      ++graphics_flagged;
    }
  }
  EXPECT_EQ(graphics_flagged, 3);
  // And they rank at the very top.
  EXPECT_EQ(report.nodes[0].workload, trace::Workload::graphics);
}

TEST(NodeOutliers, SortedByPValue) {
  const OutlierReport report = node_outlier_analysis(
      synth::generate_lanl_trace(42), SystemCatalog::lanl(), 20);
  double prev = 0.0;
  for (const NodeOutlier& n : report.nodes) {
    EXPECT_GE(n.p_value, prev);
    prev = n.p_value;
  }
}

TEST(NodeOutliers, ValidatesArguments) {
  const FailureDataset empty;
  EXPECT_THROW(
      node_outlier_analysis(empty, SystemCatalog::lanl(), 12),
      InvalidArgument);
  const FailureDataset ds({rec(12, 0, to_epoch(2004, 1, 1))});
  EXPECT_THROW(node_outlier_analysis(ds, SystemCatalog::lanl(), 12, 0.0),
               InvalidArgument);
  EXPECT_THROW(node_outlier_analysis(ds, SystemCatalog::lanl(), 12, 1.0),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
