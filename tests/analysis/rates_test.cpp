#include "analysis/rates.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;
using trace::SystemCatalog;

FailureRecord rec(int system, int node, Seconds start) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + 600;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::memory_dimm;
  return r;
}

TEST(FailureRates, NormalizesByProductionTimeAndProcs) {
  // System 22 (type H, 256 procs) ran 2004-11 .. 2005-11: ~1.05 years.
  std::vector<FailureRecord> records;
  const Seconds start = to_epoch(2004, 12, 1);
  for (int i = 0; i < 100; ++i) {
    records.push_back(rec(22, 0, start + i * 3600));
  }
  const auto rates = failure_rates(FailureDataset(std::move(records)),
                                   SystemCatalog::lanl());
  ASSERT_EQ(rates.size(), 1u);
  const SystemRate& r = rates[0];
  EXPECT_EQ(r.system_id, 22);
  EXPECT_EQ(r.hw_type, 'H');
  EXPECT_EQ(r.failures, 100u);
  EXPECT_NEAR(r.production_years, 1.05, 0.05);
  EXPECT_NEAR(r.failures_per_year, 100.0 / r.production_years, 1e-9);
  EXPECT_NEAR(r.failures_per_year_per_proc, r.failures_per_year / 256.0,
              1e-12);
}

TEST(FailureRates, OneRowPerSystemAscending) {
  std::vector<FailureRecord> records;
  const Seconds start = to_epoch(2004, 1, 1);
  records.push_back(rec(20, 5, start));
  records.push_back(rec(4, 3, start));
  records.push_back(rec(13, 1, start));
  const auto rates =
      failure_rates(FailureDataset(std::move(records)),
                    SystemCatalog::lanl());
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_EQ(rates[0].system_id, 4);
  EXPECT_EQ(rates[1].system_id, 13);
  EXPECT_EQ(rates[2].system_id, 20);
}

TEST(FailureRates, RejectsEmptyDataset) {
  EXPECT_THROW(failure_rates(FailureDataset{}, SystemCatalog::lanl()),
               InvalidArgument);
}

TEST(NodeDistribution, CountsEveryNodeIncludingZeros) {
  std::vector<FailureRecord> records;
  const Seconds start = to_epoch(2004, 1, 1);
  // System 12 has 32 nodes; hit only nodes 3 (twice) and 7 (once).
  records.push_back(rec(12, 3, start));
  records.push_back(rec(12, 3, start + 3600));
  records.push_back(rec(12, 7, start + 7200));
  const auto report = node_distribution(
      FailureDataset(std::move(records)), SystemCatalog::lanl(), 12);
  ASSERT_EQ(report.per_node.size(), 32u);
  EXPECT_EQ(report.per_node[3].failures, 2u);
  EXPECT_EQ(report.per_node[7].failures, 1u);
  EXPECT_EQ(report.per_node[0].failures, 0u);
  EXPECT_EQ(report.per_node[0].workload, trace::Workload::frontend);
}

TEST(NodeDistribution, GraphicsShareOnSystem20) {
  std::vector<FailureRecord> records;
  const Seconds start = to_epoch(2004, 1, 1);
  // 8 failures on graphics node 22, 2 on compute node 5.
  for (int i = 0; i < 8; ++i) records.push_back(rec(20, 22, start + i * 60));
  records.push_back(rec(20, 5, start + 1000));
  records.push_back(rec(20, 6, start + 2000));
  const auto report = node_distribution(
      FailureDataset(std::move(records)), SystemCatalog::lanl(), 20);
  EXPECT_NEAR(report.graphics_node_fraction, 3.0 / 49.0, 1e-12);
  EXPECT_NEAR(report.graphics_failure_fraction, 0.8, 1e-12);
  // Compute-only counts exclude the graphics nodes.
  for (const double c : report.compute_node_counts) {
    EXPECT_LE(c, 2.0);
  }
}

TEST(NodeDistribution, FitsCountModelsOnComputeNodes) {
  // Overdispersed counts: Poisson must rank below normal/lognormal,
  // Fig 3(b)'s finding.
  hpcfail::Rng rng(71);
  std::vector<FailureRecord> records;
  const Seconds start = to_epoch(2004, 1, 1);
  // System 18 (type F): 512 nodes, node 0 front-end. Draw per-node counts
  // from a mixture of two rates (heterogeneity).
  for (int node = 1; node < 512; ++node) {
    const int count = 20 + static_cast<int>(rng.uniform_index(3) * 40);
    for (int i = 0; i < count; ++i) {
      records.push_back(rec(18, node, start + node * 5000 + i * 60));
    }
  }
  const auto report = node_distribution(
      FailureDataset(std::move(records)), SystemCatalog::lanl(), 18);
  ASSERT_FALSE(report.count_fits.empty());
  // Poisson is present but not the winner.
  EXPECT_NE(report.count_fits.front().family,
            hpcfail::dist::Family::poisson);
  bool poisson_present = false;
  for (const auto& f : report.count_fits) {
    if (f.family == hpcfail::dist::Family::poisson) poisson_present = true;
  }
  EXPECT_TRUE(poisson_present);
}

TEST(NodeDistribution, RejectsSystemWithNoFailures) {
  const FailureDataset ds({rec(5, 0, to_epoch(2004, 1, 1))});
  EXPECT_THROW(node_distribution(ds, SystemCatalog::lanl(), 20),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
