#include "analysis/periodicity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;

FailureRecord at(Seconds start) {
  FailureRecord r;
  r.system_id = 1;
  r.node_id = 0;
  r.start = start;
  r.end = start + 60;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::cpu;
  return r;
}

TEST(Periodicity, BucketsByHourAndWeekday) {
  // 2005-11-28 is a Monday.
  const Seconds monday = to_epoch(2005, 11, 28);
  const FailureDataset ds({
      at(monday + 14 * kSecondsPerHour),
      at(monday + 14 * kSecondsPerHour + 100),
      at(monday + 2 * kSecondsPerHour),
      at(monday - kSecondsPerDay + 10),  // Sunday 00:00:10
  });
  const PeriodicityReport report = periodicity(ds);
  EXPECT_DOUBLE_EQ(report.by_hour[14], 2.0);
  EXPECT_DOUBLE_EQ(report.by_hour[2], 1.0);
  EXPECT_DOUBLE_EQ(report.by_hour[0], 1.0);
  EXPECT_DOUBLE_EQ(report.by_weekday[1], 3.0);  // Monday
  EXPECT_DOUBLE_EQ(report.by_weekday[0], 1.0);  // Sunday
}

TEST(Periodicity, RatiosReflectDayNightAndWeekPattern) {
  // Build a synthetic week: 20 failures at 14:00 each weekday, 10 at
  // 02:00 each weekday, half as many on the weekend.
  std::vector<FailureRecord> records;
  const Seconds sunday = to_epoch(2005, 11, 27);
  for (int day = 0; day < 7; ++day) {
    const bool weekend = day == 0 || day == 6;
    const int day_count = weekend ? 10 : 20;
    const int night_count = weekend ? 5 : 10;
    for (int i = 0; i < day_count; ++i) {
      records.push_back(
          at(sunday + day * kSecondsPerDay + 14 * kSecondsPerHour + i));
    }
    for (int i = 0; i < night_count; ++i) {
      records.push_back(
          at(sunday + day * kSecondsPerDay + 2 * kSecondsPerHour + i));
    }
  }
  const PeriodicityReport report =
      periodicity(FailureDataset(std::move(records)));
  EXPECT_GT(report.day_night_ratio, 1.5);
  EXPECT_NEAR(report.weekday_weekend_ratio, 2.0, 0.01);
}

TEST(Periodicity, ZeroTroughRatiosAreInfinite) {
  // Regression: with every failure in one smoothed hourly band the
  // trough is zero, and day_night_ratio used to return the raw peak
  // count (a count masquerading as a ratio). Same for a trace with no
  // weekend failures at all.
  std::vector<FailureRecord> records;
  const Seconds monday = to_epoch(2005, 11, 28);
  for (int i = 0; i < 50; ++i) {
    // All failures Monday 14:00; every other hour (and the weekend) is
    // empty.
    records.push_back(at(monday + 14 * kSecondsPerHour + i));
  }
  const PeriodicityReport report =
      periodicity(FailureDataset(std::move(records)));
  EXPECT_TRUE(std::isinf(report.day_night_ratio));
  EXPECT_GT(report.day_night_ratio, 0.0);
  EXPECT_TRUE(std::isinf(report.weekday_weekend_ratio));
  EXPECT_GT(report.weekday_weekend_ratio, 0.0);
}

TEST(Periodicity, RejectsEmptyDataset) {
  EXPECT_THROW(periodicity(FailureDataset{}), InvalidArgument);
}

TEST(Periodicity, TotalsAreConserved) {
  std::vector<FailureRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(at(to_epoch(2004, 3, 1) + i * 7919));
  }
  const PeriodicityReport report =
      periodicity(FailureDataset(std::move(records)));
  double hour_total = 0.0;
  double day_total = 0.0;
  for (const double c : report.by_hour) hour_total += c;
  for (const double c : report.by_weekday) day_total += c;
  EXPECT_DOUBLE_EQ(hour_total, 100.0);
  EXPECT_DOUBLE_EQ(day_total, 100.0);
}

}  // namespace
}  // namespace hpcfail::analysis
