#include "analysis/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "synth/generator.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;

FailureRecord rec(int system, int node, Seconds start) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + 60;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::cpu;
  return r;
}

TEST(Autocorrelation, ZeroForIndependentSequence) {
  hpcfail::Rng rng(61);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform());
  const auto acf = autocorrelation(xs, 5);
  for (const double rho : acf) {
    EXPECT_NEAR(rho, 0.0, 0.03);
  }
}

TEST(Autocorrelation, DetectsPersistence) {
  // AR(1) with coefficient 0.8: acf(k) ~ 0.8^k.
  hpcfail::Rng rng(67);
  std::vector<double> xs;
  double x = 0.0;
  for (int i = 0; i < 20000; ++i) {
    x = 0.8 * x + rng.uniform(-1.0, 1.0);
    xs.push_back(x);
  }
  const auto acf = autocorrelation(xs, 3);
  EXPECT_NEAR(acf[0], 0.8, 0.05);
  EXPECT_NEAR(acf[1], 0.64, 0.06);
  EXPECT_GT(acf[0], acf[1]);
}

TEST(Autocorrelation, ValidatesArguments) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_THROW(autocorrelation(tiny, 1), InvalidArgument);
  const std::vector<double> constant = {3.0, 3.0, 3.0, 3.0, 3.0};
  EXPECT_THROW(autocorrelation(constant, 2), InvalidArgument);
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(autocorrelation(xs, 0), InvalidArgument);
}

TEST(CorrelationAnalysis, BurstStatisticsExact) {
  std::vector<FailureRecord> records;
  const Seconds t0 = to_epoch(2002, 1, 1);
  // Burst of 3, burst of 2, and 30 lone failures.
  for (int node = 0; node < 3; ++node) records.push_back(rec(5, node, t0));
  for (int node = 0; node < 2; ++node) {
    records.push_back(rec(5, node, t0 + 5000));
  }
  for (int i = 0; i < 30; ++i) {
    records.push_back(rec(5, 0, t0 + 10000 + i * 997));
  }
  const CorrelationReport report =
      correlation_analysis(FailureDataset(std::move(records)), 5);
  EXPECT_EQ(report.bursts.total_failures, 35u);
  EXPECT_EQ(report.bursts.burst_events, 2u);
  EXPECT_EQ(report.bursts.burst_failures, 5u);
  EXPECT_EQ(report.bursts.largest_burst, 3u);
  EXPECT_NEAR(report.bursts.burst_fraction(), 5.0 / 35.0, 1e-12);
}

TEST(CorrelationAnalysis, SyntheticPioneerSystemIsCorrelatedEarly) {
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const FailureDataset early =
      ds.view().between(to_epoch(1997, 1, 1), to_epoch(2000, 1, 1))
          .materialize();
  const CorrelationReport report = correlation_analysis(early, 20);
  // Section 5.3: heavy simultaneous-failure mass early on.
  EXPECT_GT(report.bursts.burst_fraction(), 0.3);
  EXPECT_GE(report.bursts.largest_burst, 3u);
  // Clustering shows up as daily-count overdispersion.
  EXPECT_GT(report.daily_dispersion, 1.5);
}

TEST(CorrelationAnalysis, LateEraMuchLessCorrelated) {
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const FailureDataset early =
      ds.view().between(to_epoch(1997, 1, 1), to_epoch(2000, 1, 1))
          .materialize();
  const FailureDataset late =
      ds.view().between(to_epoch(2000, 1, 1), to_epoch(2006, 1, 1))
          .materialize();
  const CorrelationReport early_report = correlation_analysis(early, 20);
  const CorrelationReport late_report = correlation_analysis(late, 20);
  EXPECT_LT(late_report.bursts.burst_fraction(),
            early_report.bursts.burst_fraction() / 2.0);
}

TEST(CorrelationAnalysis, ThrowsOnTinySystems) {
  std::vector<FailureRecord> few;
  for (int i = 0; i < 10; ++i) {
    few.push_back(rec(1, 0, to_epoch(2000, 1, 1) + i * 1000));
  }
  EXPECT_THROW(correlation_analysis(FailureDataset(std::move(few)), 1),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
