#include "analysis/repair.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/lognormal.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;
using trace::SystemCatalog;

FailureRecord rec(int system, Seconds start, double minutes,
                  RootCause cause, DetailCause detail) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = 0;
  r.start = start;
  r.end = start + static_cast<Seconds>(minutes * 60.0);
  r.cause = cause;
  r.detail = detail;
  return r;
}

const Seconds t0 = to_epoch(2004, 1, 1);

TEST(RepairAnalysis, PerCauseStatsMatchHandComputation) {
  const FailureDataset ds({
      rec(22, t0, 10.0, RootCause::hardware, DetailCause::cpu),
      rec(22, t0 + 3600, 30.0, RootCause::hardware,
          DetailCause::memory_dimm),
      rec(22, t0 + 7200, 100.0, RootCause::software,
          DetailCause::scheduler),
  });
  const RepairReport report = repair_analysis(ds, SystemCatalog::lanl());
  ASSERT_EQ(report.by_cause.size(), 2u);
  EXPECT_EQ(report.by_cause[0].cause, RootCause::hardware);
  EXPECT_DOUBLE_EQ(report.by_cause[0].stats.mean, 20.0);
  EXPECT_DOUBLE_EQ(report.by_cause[0].stats.median, 20.0);
  EXPECT_EQ(report.by_cause[1].cause, RootCause::software);
  EXPECT_DOUBLE_EQ(report.by_cause[1].stats.mean, 100.0);
  EXPECT_DOUBLE_EQ(report.all.mean, 140.0 / 3.0);
}

TEST(RepairAnalysis, LognormalBeatsExponentialOnSkewedRepairs) {
  // Fig 7(a)'s finding, on data drawn from the Table 2 software profile.
  const auto truth =
      hpcfail::dist::LogNormal::from_mean_median(369.0, 33.0);
  hpcfail::Rng rng(307);
  std::vector<FailureRecord> records;
  for (int i = 0; i < 5000; ++i) {
    records.push_back(rec(13, t0 + i * 3600, truth.sample(rng),
                          RootCause::software,
                          DetailCause::parallel_fs));
  }
  const RepairReport report = repair_analysis(
      FailureDataset(std::move(records)), SystemCatalog::lanl());
  EXPECT_EQ(report.fits.front().family,
            hpcfail::dist::Family::lognormal);
  EXPECT_EQ(report.fits.back().family,
            hpcfail::dist::Family::exponential);
  // The paper's "extremely variable" observation: C^2 >> 1.
  EXPECT_GT(report.all.cv2, 10.0);
  EXPECT_GT(report.all.mean, report.all.median);
}

TEST(RepairAnalysis, PerSystemRows) {
  const FailureDataset ds({
      rec(5, t0, 10.0, RootCause::hardware, DetailCause::cpu),
      rec(5, t0 + 60, 20.0, RootCause::hardware, DetailCause::cpu),
      rec(20, t0 + 120, 500.0, RootCause::unknown,
          DetailCause::undetermined),
  });
  const RepairReport report = repair_analysis(ds, SystemCatalog::lanl());
  ASSERT_EQ(report.by_system.size(), 2u);
  EXPECT_EQ(report.by_system[0].system_id, 5);
  EXPECT_EQ(report.by_system[0].hw_type, 'E');
  EXPECT_DOUBLE_EQ(report.by_system[0].mean_minutes, 15.0);
  EXPECT_EQ(report.by_system[0].failures, 2u);
  EXPECT_EQ(report.by_system[1].system_id, 20);
  EXPECT_EQ(report.by_system[1].hw_type, 'G');
  EXPECT_DOUBLE_EQ(report.by_system[1].median_minutes, 500.0);
}

TEST(RepairAnalysis, RejectsEmptyDataset) {
  EXPECT_THROW(repair_analysis(FailureDataset{}, SystemCatalog::lanl()),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
