// Seed-robustness: the headline paper-shape claims must hold for any
// generator seed, not just the default 42 the benches use. This guards
// the reproduction against "seed luck" in the calibration.
#include <gtest/gtest.h>

#include "analysis/interarrival.hpp"
#include "analysis/periodicity.hpp"
#include "analysis/repair.hpp"
#include "dist/weibull.hpp"
#include "synth/generator.hpp"

namespace hpcfail::analysis {
namespace {

class MultiSeedShape : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiSeedShape, HeadlineFindingsHold) {
  const trace::FailureDataset ds =
      synth::generate_lanl_trace(GetParam());

  // Paper scale.
  EXPECT_GT(ds.size(), 18000u);
  EXPECT_LT(ds.size(), 32000u);

  // Fig 6(d): system-wide late TBF -- Weibull/gamma best, decreasing
  // hazard, exponential's C^2=1 clearly wrong.
  InterarrivalQuery q;
  q.system_id = 20;
  q.from = to_epoch(2000, 1, 1);
  const InterarrivalReport tbf = interarrival_analysis(ds, q);
  EXPECT_TRUE(tbf.best().family == hpcfail::dist::Family::weibull ||
              tbf.best().family == hpcfail::dist::Family::gamma);
  EXPECT_GT(tbf.summary.cv2, 1.2);
  for (const auto& fit : tbf.fits) {
    if (fit.family == hpcfail::dist::Family::weibull) {
      const auto* w =
          dynamic_cast<const hpcfail::dist::Weibull*>(fit.model.get());
      EXPECT_GT(w->shape(), 0.5);
      EXPECT_LT(w->shape(), 1.0);
    }
  }

  // Fig 6(c): early system-wide zero-gap mass.
  InterarrivalQuery early;
  early.system_id = 20;
  early.to = to_epoch(2000, 1, 1);
  EXPECT_GT(interarrival_analysis(ds, early).zero_fraction, 0.30);

  // Fig 7(a): lognormal best, exponential worst on repair times.
  const RepairReport repair =
      repair_analysis(ds, trace::SystemCatalog::lanl());
  EXPECT_EQ(repair.fits.front().family,
            hpcfail::dist::Family::lognormal);
  EXPECT_EQ(repair.fits.back().family,
            hpcfail::dist::Family::exponential);
  EXPECT_GT(repair.all.cv2, 5.0);

  // Fig 5: workload periodicity.
  const PeriodicityReport period = periodicity(ds);
  EXPECT_GT(period.day_night_ratio, 1.5);
  EXPECT_GT(period.weekday_weekend_ratio, 1.4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSeedShape,
                         ::testing::Values(1ULL, 7ULL, 2026ULL),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hpcfail::analysis
