#include "analysis/root_cause.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;
using trace::SystemCatalog;

FailureRecord rec(int system, Seconds start, Seconds minutes,
                  RootCause cause, DetailCause detail) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = 0;
  r.start = start;
  r.end = start + minutes * 60;
  r.cause = cause;
  r.detail = detail;
  return r;
}

const Seconds t0 = to_epoch(2003, 1, 1);

TEST(RootCauseBreakdown, CountsAndDowntimePercentages) {
  // System 1 is type A, system 22 type H in the LANL catalog.
  const FailureDataset ds({
      rec(1, t0 + 100, 10, RootCause::hardware, DetailCause::cpu),
      rec(1, t0 + 200, 10, RootCause::hardware, DetailCause::memory_dimm),
      rec(1, t0 + 300, 40, RootCause::software,
          DetailCause::operating_system),
      rec(22, t0 + 400, 60, RootCause::unknown, DetailCause::undetermined),
  });
  const RootCauseReport report =
      root_cause_breakdown(ds, SystemCatalog::lanl());

  ASSERT_EQ(report.by_type.size(), 2u);
  EXPECT_EQ(report.by_type[0].label, "A");
  EXPECT_EQ(report.by_type[1].label, "H");

  const CauseBreakdown& a = report.by_type[0];
  EXPECT_EQ(a.failures, 3u);
  EXPECT_NEAR(a.count_percent[breakdown_index(RootCause::hardware)],
              200.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.count_percent[breakdown_index(RootCause::software)],
              100.0 / 3.0, 1e-9);
  // Downtime: hardware 20 min of 60 -> 33%, software 40 of 60 -> 67%.
  EXPECT_NEAR(a.downtime_percent[breakdown_index(RootCause::hardware)],
              100.0 / 3.0, 1e-9);
  EXPECT_NEAR(a.downtime_percent[breakdown_index(RootCause::software)],
              200.0 / 3.0, 1e-9);

  EXPECT_EQ(report.all.failures, 4u);
  EXPECT_NEAR(report.all.count_percent[breakdown_index(RootCause::unknown)],
              25.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.all.downtime_minutes, 120.0);
}

TEST(RootCauseBreakdown, PercentagesSumToHundred) {
  const FailureDataset ds({
      rec(5, t0, 5, RootCause::network, DetailCause::nic),
      rec(5, t0 + 60, 15, RootCause::human, DetailCause::operator_error),
      rec(5, t0 + 120, 25, RootCause::environment,
          DetailCause::power_outage),
  });
  const RootCauseReport report =
      root_cause_breakdown(ds, SystemCatalog::lanl());
  double count_sum = 0.0;
  double downtime_sum = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    count_sum += report.all.count_percent[i];
    downtime_sum += report.all.downtime_percent[i];
  }
  EXPECT_NEAR(count_sum, 100.0, 1e-9);
  EXPECT_NEAR(downtime_sum, 100.0, 1e-9);
}

TEST(RootCauseBreakdown, OmitsTypesWithNoFailures) {
  const FailureDataset ds({
      rec(13, t0 + 3600 * 24 * 365, 5, RootCause::hardware,
          DetailCause::disk),
  });
  const RootCauseReport report =
      root_cause_breakdown(ds, SystemCatalog::lanl());
  ASSERT_EQ(report.by_type.size(), 1u);
  EXPECT_EQ(report.by_type[0].label, "F");
}

TEST(RootCauseBreakdown, RejectsEmptyDataset) {
  EXPECT_THROW(root_cause_breakdown(FailureDataset{}, SystemCatalog::lanl()),
               InvalidArgument);
}

TEST(DetailCauseFraction, CountsMatchingRecords) {
  const FailureDataset ds({
      rec(1, t0, 5, RootCause::hardware, DetailCause::memory_dimm),
      rec(1, t0 + 60, 5, RootCause::hardware, DetailCause::memory_dimm),
      rec(1, t0 + 120, 5, RootCause::hardware, DetailCause::cpu),
      rec(1, t0 + 180, 5, RootCause::software, DetailCause::scheduler),
  });
  EXPECT_DOUBLE_EQ(detail_cause_fraction(ds, DetailCause::memory_dimm),
                   0.5);
  EXPECT_DOUBLE_EQ(detail_cause_fraction(ds, DetailCause::cpu), 0.25);
  EXPECT_DOUBLE_EQ(detail_cause_fraction(ds, DetailCause::parallel_fs),
                   0.0);
  EXPECT_THROW(detail_cause_fraction(FailureDataset{},
                                     DetailCause::memory_dimm),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
