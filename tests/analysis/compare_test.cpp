#include "analysis/compare.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "dist/fit.hpp"
#include "report/compare_report.hpp"
#include "synth/site.hpp"
#include "trace/adapters/adapter.hpp"
#include "trace/dataset.hpp"
#include "trace/record.hpp"

namespace hpcfail::analysis {
namespace {

CompareInput site_input(const std::string& name, std::uint64_t seed) {
  const synth::SiteProfile& profile = synth::site_profile(name);
  CompareInput input;
  input.label = name;
  input.dataset = synth::generate_site_trace(profile, seed);
  input.procs = static_cast<double>(profile.procs);
  return input;
}

TEST(CompareBattery, RejectsEmptyInputs) {
  EXPECT_THROW(compare_sites({}), InvalidArgument);
  CompareInput empty;
  empty.label = "empty";
  EXPECT_THROW(summarize_site(empty), InvalidArgument);
}

TEST(CompareBattery, SummarizesOneSyntheticSite) {
  const CompareInput input = site_input("lu", 42);
  const CompareSite site = summarize_site(input);
  const synth::SiteProfile& profile = synth::site_profile("lu");

  EXPECT_EQ(site.label, "lu");
  EXPECT_EQ(site.records, input.dataset.size());
  EXPECT_GT(site.nodes, 0u);
  EXPECT_LE(site.nodes, static_cast<std::size_t>(profile.nodes));
  EXPECT_GT(site.span_years, 1.5);
  EXPECT_LT(site.span_years, 2.5);
  EXPECT_GT(site.failures_per_node_year, 0.0);
  // procs was passed, so the per-processor rate is defined and smaller
  // (the lu profile has more processors than nodes).
  EXPECT_FALSE(std::isnan(site.failures_per_proc_year));
  EXPECT_LT(site.failures_per_proc_year, site.failures_per_node_year);

  double mix = 0.0;
  for (const double f : site.cause_fraction) {
    EXPECT_GE(f, 0.0);
    mix += f;
  }
  EXPECT_NEAR(mix, 1.0, 1e-12);

  EXPECT_EQ(site.repair_minutes.n, site.records);
  EXPECT_GT(site.repair_minutes.mean, site.repair_minutes.median)
      << "lognormal repairs are right-skewed";
  ASSERT_FALSE(site.repair_fits.empty());
  ASSERT_FALSE(site.gap_fits.empty());
  // The generator draws Weibull gaps and lognormal repairs; the fitted
  // parameters must at least exist and be positive.
  EXPECT_GT(site.weibull_shape, 0.0);
  EXPECT_GT(site.weibull_scale, 0.0);
  EXPECT_FALSE(std::isnan(site.repair_lognormal_mu));
  EXPECT_GT(site.repair_lognormal_sigma, 0.0);
}

TEST(CompareBattery, UnknownProcsYieldNanRate) {
  CompareInput input = site_input("mistral", 7);
  input.procs = 0.0;
  const CompareSite site = summarize_site(input);
  EXPECT_TRUE(std::isnan(site.failures_per_proc_year));
  EXPECT_FALSE(std::isnan(site.failures_per_node_year));
}

TEST(CompareBattery, ComparesSitesInInputOrder) {
  const CompareReport report =
      compare_sites({site_input("lu", 42), site_input("tan", 42)});
  ASSERT_EQ(report.sites.size(), 2u);
  EXPECT_EQ(report.sites[0].label, "lu");
  EXPECT_EQ(report.sites[1].label, "tan");
  // The two studies really differ: tan's hardware fraction is higher by
  // construction (0.62 vs 0.50 in the profiles).
  EXPECT_GT(report.sites[1].cause_fraction[0],
            report.sites[0].cause_fraction[0]);
}

TEST(CompareReportRender, TextHasOneColumnPerSiteAndKnownRows) {
  const CompareReport report =
      compare_sites({site_input("lu", 42), site_input("mistral", 42)});
  const std::string text = report::render_compare_text(report);
  EXPECT_NE(text.find("2 site(s)"), std::string::npos);
  EXPECT_NE(text.find("lu"), std::string::npos);
  EXPECT_NE(text.find("mistral"), std::string::npos);
  for (const char* row :
       {"records", "failures / node-year", "failures / proc-year",
        "hardware %", "repair mean (min)", "repair lognormal mu",
        "weibull shape", "interarrival ranking"}) {
    EXPECT_NE(text.find(row), std::string::npos) << row;
  }
}

TEST(CompareReportRender, CsvHasHeaderAndOneRowPerSite) {
  const CompareReport report =
      compare_sites({site_input("lu", 42), site_input("tan", 42)});
  std::ostringstream out;
  report::write_compare_csv(out, report);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);  // header + two sites
  EXPECT_EQ(csv.rfind("site,records,nodes,span_years,", 0), 0u);
  EXPECT_NE(csv.find("\nlu,"), std::string::npos);
  EXPECT_NE(csv.find("\ntan,"), std::string::npos);
}

TEST(CompareBattery, NativeAndForeignLoadsOfSameTraceAgree) {
  // Loading the same events natively or through an adapter file must
  // produce the identical battery (the differential cross-schema check).
  const synth::SiteProfile& profile = synth::site_profile("tan");
  const trace::FailureDataset ds = synth::generate_site_trace(profile, 5);
  CompareInput native;
  native.label = "site";
  native.dataset = ds;

  const trace::Adapter& adapter = trace::adapter_for("tan");
  const std::string path = "compare_differential_tan.txt";
  trace::write_adapter_file(path, ds, adapter);
  CompareInput foreign;
  foreign.label = "site";
  foreign.dataset = trace::read_adapter_file(path, adapter);
  std::remove(path.c_str());

  const CompareSite a = summarize_site(native);
  const CompareSite b = summarize_site(foreign);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.repair_minutes.mean, b.repair_minutes.mean);
  EXPECT_EQ(a.gaps_seconds.mean, b.gaps_seconds.mean);
  EXPECT_EQ(a.weibull_shape, b.weibull_shape);
  EXPECT_EQ(a.repair_lognormal_mu, b.repair_lognormal_mu);
  ASSERT_FALSE(a.gap_fits.empty());
  ASSERT_FALSE(b.gap_fits.empty());
  EXPECT_EQ(a.gap_fits.best().family, b.gap_fits.best().family);
}

}  // namespace
}  // namespace hpcfail::analysis
