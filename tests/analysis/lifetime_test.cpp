#include "analysis/lifetime.hpp"

#include <gtest/gtest.h>

#include "analysis/root_cause.hpp"
#include "common/error.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;
using trace::SystemCatalog;

FailureRecord rec(int system, Seconds start,
                  RootCause cause = RootCause::hardware,
                  DetailCause detail = DetailCause::memory_dimm) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = 0;
  r.start = start;
  r.end = start + 600;
  r.cause = cause;
  r.detail = detail;
  return r;
}

TEST(LifetimeCurve, BucketsByMonthInProduction) {
  // System 22 production starts 2004-11.
  const Seconds start = to_epoch(2004, 11, 1);
  const FailureDataset ds({
      rec(22, start + 1000),
      rec(22, start + 2000),
      rec(22, to_epoch(2005, 1, 15), RootCause::software,
          DetailCause::scheduler),
  });
  const LifetimeCurve curve =
      lifetime_curve(ds, SystemCatalog::lanl(), 22);
  EXPECT_EQ(curve.system_id, 22);
  ASSERT_GE(curve.months.size(), 12u);
  EXPECT_DOUBLE_EQ(curve.months[0].total(), 2.0);
  EXPECT_DOUBLE_EQ(curve.months[2].total(), 1.0);  // Jan 2005 = month 2
  EXPECT_DOUBLE_EQ(
      curve.months[2].by_cause[breakdown_index(RootCause::software)], 1.0);
  EXPECT_EQ(curve.peak_month, 0);
}

TEST(LifetimeCurve, MonthIndicesAreSequential) {
  const FailureDataset ds({rec(22, to_epoch(2005, 3, 1))});
  const LifetimeCurve curve =
      lifetime_curve(ds, SystemCatalog::lanl(), 22);
  for (std::size_t i = 0; i < curve.months.size(); ++i) {
    EXPECT_EQ(curve.months[i].month, static_cast<int>(i));
  }
}

TEST(LifetimeCurve, EarlyToLateRatioDetectsBurnIn) {
  // Heavy first months, light afterwards -> ratio >> 1.
  std::vector<FailureRecord> records;
  const Seconds start = to_epoch(2004, 11, 1);
  for (int i = 0; i < 60; ++i) {
    records.push_back(rec(22, start + i * 3600));  // all in month 0
  }
  records.push_back(rec(22, to_epoch(2005, 9, 1)));
  const LifetimeCurve curve = lifetime_curve(
      FailureDataset(std::move(records)), SystemCatalog::lanl(), 22);
  EXPECT_GT(curve.early_to_late_ratio, 5.0);
}

TEST(LifetimeCurve, RampShapeHasLatePeak) {
  // Failures concentrated around month 7 of system 22's ~12-month life.
  std::vector<FailureRecord> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(rec(22, to_epoch(2005, 6, 1) + i * 3600));
  }
  records.push_back(rec(22, to_epoch(2004, 11, 15)));
  const LifetimeCurve curve = lifetime_curve(
      FailureDataset(std::move(records)), SystemCatalog::lanl(), 22);
  EXPECT_EQ(curve.peak_month, 7);
  EXPECT_LT(curve.early_to_late_ratio, 1.0);
}

TEST(LifetimeCurve, RejectsSystemWithNoFailures) {
  const FailureDataset ds({rec(22, to_epoch(2005, 1, 1))});
  EXPECT_THROW(lifetime_curve(ds, SystemCatalog::lanl(), 5),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
