// End-to-end reproduction checks: generate the full synthetic LANL trace
// and assert every qualitative finding of the paper's evaluation, table
// by table and figure by figure. These are the "shape" assertions
// EXPERIMENTS.md reports on.
#include <gtest/gtest.h>

#include "analysis/interarrival.hpp"
#include "analysis/lifetime.hpp"
#include "analysis/periodicity.hpp"
#include "analysis/rates.hpp"
#include "analysis/repair.hpp"
#include "analysis/root_cause.hpp"
#include "dist/weibull.hpp"
#include "synth/generator.hpp"

namespace hpcfail::analysis {
namespace {

using trace::RootCause;
using trace::SystemCatalog;

class LanlTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new trace::FailureDataset(synth::generate_lanl_trace(42));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static const trace::FailureDataset& trace() { return *trace_; }

 private:
  static trace::FailureDataset* trace_;
};

trace::FailureDataset* LanlTraceTest::trace_ = nullptr;

// ---- Fig 1(a)/(b): root-cause breakdown ----

TEST_F(LanlTraceTest, Fig1aHardwareLargestSoftwareSecond) {
  const RootCauseReport report =
      root_cause_breakdown(trace(), SystemCatalog::lanl());
  const std::size_t hw = breakdown_index(RootCause::hardware);
  const std::size_t sw = breakdown_index(RootCause::software);
  for (const CauseBreakdown& b : report.by_type) {
    EXPECT_GE(b.count_percent[hw], 30.0) << "type " << b.label;
    EXPECT_LE(b.count_percent[hw], 70.0) << "type " << b.label;
    EXPECT_GE(b.count_percent[sw], 4.0) << "type " << b.label;
  }
  EXPECT_GE(report.all.count_percent[hw], 40.0);
  EXPECT_GT(report.all.count_percent[hw], report.all.count_percent[sw]);
}

TEST_F(LanlTraceTest, Fig1aUnknownHighExceptTypeE) {
  const RootCauseReport report =
      root_cause_breakdown(trace(), SystemCatalog::lanl());
  const std::size_t unk = breakdown_index(RootCause::unknown);
  for (const CauseBreakdown& b : report.by_type) {
    if (b.label == "E") {
      EXPECT_LT(b.count_percent[unk], 5.0);
    } else if (b.label == "D" || b.label == "G" || b.label == "F" ||
               b.label == "H") {
      EXPECT_GE(b.count_percent[unk], 15.0) << "type " << b.label;
      EXPECT_LE(b.count_percent[unk], 35.0) << "type " << b.label;
    }
  }
}

TEST_F(LanlTraceTest, Fig1bUnknownDowntimeSmallExceptPioneers) {
  const RootCauseReport report =
      root_cause_breakdown(trace(), SystemCatalog::lanl());
  const std::size_t unk = breakdown_index(RootCause::unknown);
  for (const CauseBreakdown& b : report.by_type) {
    if (b.label == "D" || b.label == "G") {
      EXPECT_GT(b.downtime_percent[unk], 5.0) << "type " << b.label;
    } else if (b.label == "E" || b.label == "F" || b.label == "H") {
      EXPECT_LT(b.downtime_percent[unk], 6.0) << "type " << b.label;
    }
  }
}

// ---- Section 4: detailed causes ----

TEST_F(LanlTraceTest, MemoryExceedsTenPercentEverywhereItMatters) {
  for (const char type : {'D', 'F', 'G', 'H'}) {
    double memory = 0.0;
    double total = 0.0;
    for (const auto& r : trace().records()) {
      if (SystemCatalog::lanl().system(r.system_id).hw_type != type) {
        continue;
      }
      total += 1.0;
      if (r.detail == trace::DetailCause::memory_dimm) memory += 1.0;
    }
    ASSERT_GT(total, 0.0);
    EXPECT_GT(memory / total, 0.09) << "type " << type;
  }
}

TEST_F(LanlTraceTest, TypeECpuShareExceedsHalf) {
  double cpu = 0.0;
  double total = 0.0;
  for (const auto& r : trace().records()) {
    if (SystemCatalog::lanl().system(r.system_id).hw_type != 'E') continue;
    total += 1.0;
    if (r.detail == trace::DetailCause::cpu) cpu += 1.0;
  }
  EXPECT_GT(cpu / total, 0.45);
}

// ---- Fig 2: failure rates across systems ----

TEST_F(LanlTraceTest, Fig2aRatesSpanPaperRange) {
  const auto rates = failure_rates(trace(), SystemCatalog::lanl());
  ASSERT_EQ(rates.size(), 22u);
  double lo = 1e12;
  double hi = 0.0;
  for (const SystemRate& r : rates) {
    lo = std::min(lo, r.failures_per_year);
    hi = std::max(hi, r.failures_per_year);
  }
  // Paper: 17 to 1159 failures per year.
  EXPECT_LT(lo, 40.0);
  EXPECT_GT(hi, 800.0);
  EXPECT_GT(hi / lo, 20.0);
}

TEST_F(LanlTraceTest, Fig2bNormalizedRatesClusterWithinType) {
  const auto rates = failure_rates(trace(), SystemCatalog::lanl());
  // Type E systems 7-11 (excluding the burn-in pioneers 5-6 and tiny 12)
  // should have similar per-processor rates despite 4x size differences.
  std::vector<double> type_e;
  for (const SystemRate& r : rates) {
    if (r.system_id >= 7 && r.system_id <= 11) {
      type_e.push_back(r.failures_per_year_per_proc);
    }
  }
  ASSERT_EQ(type_e.size(), 5u);
  const double lo = *std::min_element(type_e.begin(), type_e.end());
  const double hi = *std::max_element(type_e.begin(), type_e.end());
  EXPECT_LT(hi / lo, 2.0);
  // And normalized variability across all systems is much smaller than
  // raw variability.
  double raw_hi = 0.0;
  double raw_lo = 1e12;
  double norm_hi = 0.0;
  double norm_lo = 1e12;
  for (const SystemRate& r : rates) {
    raw_hi = std::max(raw_hi, r.failures_per_year);
    raw_lo = std::min(raw_lo, r.failures_per_year);
    norm_hi = std::max(norm_hi, r.failures_per_year_per_proc);
    norm_lo = std::min(norm_lo, r.failures_per_year_per_proc);
  }
  EXPECT_LT(norm_hi / norm_lo, raw_hi / raw_lo);
}

// ---- Fig 3: distribution across nodes ----

TEST_F(LanlTraceTest, Fig3aGraphicsNodesHoldTwentyPercent) {
  const auto report =
      node_distribution(trace(), SystemCatalog::lanl(), 20);
  EXPECT_NEAR(report.graphics_node_fraction, 0.06, 0.01);
  EXPECT_GT(report.graphics_failure_fraction, 0.12);
  EXPECT_LT(report.graphics_failure_fraction, 0.30);
}

TEST_F(LanlTraceTest, Fig3bPoissonLosesToNormalAndLognormal) {
  const auto report =
      node_distribution(trace(), SystemCatalog::lanl(), 20);
  ASSERT_EQ(report.count_fits.size(), 3u);
  EXPECT_NE(report.count_fits.front().family,
            hpcfail::dist::Family::poisson);
  EXPECT_EQ(report.count_fits.back().family,
            hpcfail::dist::Family::poisson);
}

// ---- Fig 4: lifetime curves ----

TEST_F(LanlTraceTest, Fig4aTypeESystemsBurnIn) {
  const LifetimeCurve curve =
      lifetime_curve(trace(), SystemCatalog::lanl(), 5);
  EXPECT_LT(curve.peak_month, 8);
  EXPECT_GT(curve.early_to_late_ratio, 1.5);
}

TEST_F(LanlTraceTest, Fig4bTypeGSystemsRampUp) {
  const LifetimeCurve curve =
      lifetime_curve(trace(), SystemCatalog::lanl(), 19);
  // The rate climbs for well over a year before peaking (Fig 4b) ...
  EXPECT_GT(curve.peak_month, 10);
  EXPECT_LT(curve.peak_month, 35);
  // ... so the first months are far below the peak months, unlike the
  // burn-in shape where month 0 is the maximum.
  double first_quarter_mean = 0.0;
  for (int m = 0; m < 3; ++m) {
    first_quarter_mean += curve.months[static_cast<std::size_t>(m)].total();
  }
  first_quarter_mean /= 3.0;
  const double peak = curve.months[static_cast<std::size_t>(
                                       curve.peak_month)]
                          .total();
  EXPECT_LT(first_quarter_mean, 0.6 * peak);
}

TEST_F(LanlTraceTest, Fig4System21BehavesLikeBurnInDespiteTypeG) {
  // Section 5.2: system 21 was introduced two years later and follows
  // the conventional pattern.
  const LifetimeCurve curve =
      lifetime_curve(trace(), SystemCatalog::lanl(), 21);
  EXPECT_LT(curve.peak_month, 10);
}

// ---- Fig 5: periodicity ----

TEST_F(LanlTraceTest, Fig5DayNightAndWeekdayWeekendRatios) {
  const PeriodicityReport report = periodicity(trace());
  EXPECT_GT(report.day_night_ratio, 1.6);
  EXPECT_LT(report.day_night_ratio, 2.6);
  EXPECT_GT(report.weekday_weekend_ratio, 1.4);
  EXPECT_LT(report.weekday_weekend_ratio, 2.2);
}

// ---- Fig 6: time between failures ----

TEST_F(LanlTraceTest, Fig6bNode22LateFitsWeibullWithDecreasingHazard) {
  InterarrivalQuery q;
  q.system_id = 20;
  q.node_id = 22;
  q.from = to_epoch(2000, 1, 1);
  const InterarrivalReport report = interarrival_analysis(trace(), q);
  // Weibull or gamma best ("both equally good" in the paper);
  // exponential clearly behind (bottom two, behind both of them).
  EXPECT_TRUE(report.best().family == hpcfail::dist::Family::weibull ||
              report.best().family == hpcfail::dist::Family::gamma);
  EXPECT_TRUE(report.fits[2].family == hpcfail::dist::Family::exponential ||
              report.fits[3].family == hpcfail::dist::Family::exponential);
  // C^2 well above the exponential's 1 (paper: 1.9).
  EXPECT_GT(report.summary.cv2, 1.3);
  // The fitted Weibull shape lands in the paper's 0.7-0.8 band (widened
  // for sampling noise).
  for (const auto& f : report.fits) {
    if (f.family == hpcfail::dist::Family::weibull) {
      const auto* w =
          dynamic_cast<const hpcfail::dist::Weibull*>(f.model.get());
      ASSERT_NE(w, nullptr);
      EXPECT_GT(w->shape(), 0.55);
      EXPECT_LT(w->shape(), 1.0);
      EXPECT_TRUE(w->decreasing_hazard());
    }
  }
}

TEST_F(LanlTraceTest, Fig6aNode22EarlyIsMoreVariableAndLognormalLike) {
  InterarrivalQuery early;
  early.system_id = 20;
  early.node_id = 22;
  early.to = to_epoch(2000, 1, 1);
  const InterarrivalReport report_early =
      interarrival_analysis(trace(), early);
  InterarrivalQuery late = early;
  late.from = to_epoch(2000, 1, 1);
  late.to.reset();
  const InterarrivalReport report_late =
      interarrival_analysis(trace(), late);
  // Early era more variable than late (paper: C^2 3.9 vs 1.9).
  EXPECT_GT(report_early.summary.cv2, report_late.summary.cv2);
  // Lognormal is the best early fit in the paper; accept it ranking in
  // the top two here (gamma/weibull trail, exponential last).
  const auto& fits = report_early.fits;
  const bool lognormal_top2 =
      fits[0].family == hpcfail::dist::Family::lognormal ||
      fits[1].family == hpcfail::dist::Family::lognormal;
  EXPECT_TRUE(lognormal_top2);
  EXPECT_EQ(fits.back().family, hpcfail::dist::Family::exponential);
}

TEST_F(LanlTraceTest, Fig6cSystemWideEarlyHasZeroGapMass) {
  InterarrivalQuery q;
  q.system_id = 20;
  q.to = to_epoch(2000, 1, 1);
  const InterarrivalReport report = interarrival_analysis(trace(), q);
  EXPECT_GT(report.zero_fraction, 0.30);  // paper: "> 30%"
}

TEST_F(LanlTraceTest, Fig6dSystemWideLateExponentialStillWorst) {
  InterarrivalQuery q;
  q.system_id = 20;
  q.from = to_epoch(2000, 1, 1);
  const InterarrivalReport report = interarrival_analysis(trace(), q);
  EXPECT_TRUE(report.fits[2].family == hpcfail::dist::Family::exponential ||
              report.fits[3].family == hpcfail::dist::Family::exponential);
  EXPECT_GT(report.summary.cv2, 1.0);
}

// ---- Table 2 and Fig 7: repair times ----

TEST_F(LanlTraceTest, Table2RepairMomentsTrackThePaper) {
  const RepairReport report =
      repair_analysis(trace(), SystemCatalog::lanl());
  // Aggregate: mean ~6 hours (355 min), median ~1 hour (54 min); accept
  // a generous band since the synthetic mixture only anchors the parts.
  EXPECT_GT(report.all.mean, 150.0);
  EXPECT_LT(report.all.mean, 700.0);
  EXPECT_GT(report.all.median, 15.0);
  EXPECT_LT(report.all.median, 120.0);
  // Extremely variable overall.
  EXPECT_GT(report.all.cv2, 10.0);

  for (const RepairByCause& c : report.by_cause) {
    if (c.cause == RootCause::environment) {
      // Longest repairs, and the *least* variable category.
      EXPECT_GT(c.stats.median, 150.0);
      EXPECT_LT(c.stats.cv2, 30.0);
    }
    if (c.cause == RootCause::software || c.cause == RootCause::hardware) {
      // Median an order of magnitude below the mean.
      EXPECT_GT(c.stats.mean / c.stats.median, 3.0);
    }
  }
}

TEST_F(LanlTraceTest, Fig7aLognormalBestExponentialWorst) {
  const RepairReport report =
      repair_analysis(trace(), SystemCatalog::lanl());
  EXPECT_EQ(report.fits.front().family,
            hpcfail::dist::Family::lognormal);
  EXPECT_EQ(report.fits.back().family,
            hpcfail::dist::Family::exponential);
}

TEST_F(LanlTraceTest, Fig7bcRepairTimesClusterByTypeNotSize) {
  const RepairReport report =
      repair_analysis(trace(), SystemCatalog::lanl());
  // Type E spans 128-1024 nodes; medians must stay within a tight band.
  std::vector<double> type_e;
  double type_g_median = 0.0;
  for (const RepairBySystem& s : report.by_system) {
    if (s.hw_type == 'E') type_e.push_back(s.median_minutes);
    if (s.system_id == 20) type_g_median = s.median_minutes;
  }
  ASSERT_GE(type_e.size(), 6u);
  const double lo = *std::min_element(type_e.begin(), type_e.end());
  const double hi = *std::max_element(type_e.begin(), type_e.end());
  EXPECT_LT(hi / lo, 2.5);
  // The NUMA type repairs much slower than type E.
  EXPECT_GT(type_g_median, hi);
}

}  // namespace
}  // namespace hpcfail::analysis
