#include "analysis/availability.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synth/generator.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;
using trace::SystemCatalog;

FailureRecord rec(int system, int node, Seconds start, Seconds duration) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + duration;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::cpu;
  return r;
}

const SystemAvailability& find(
    const std::vector<SystemAvailability>& rows, int id) {
  for (const SystemAvailability& a : rows) {
    if (a.system_id == id) return a;
  }
  throw std::runtime_error("row missing");
}

TEST(Availability, HandComputedSingleSystem) {
  // System 22: 1 node, production 2004-11-01 .. 2005-11-30.
  // One failure with 24h downtime.
  const FailureDataset ds(
      {rec(22, 0, to_epoch(2005, 1, 1), 24 * kSecondsPerHour)});
  const auto rows = availability_analysis(ds, SystemCatalog::lanl());
  const SystemAvailability& a = find(rows, 22);
  const double expected_hours =
      static_cast<double>(to_epoch(2005, 11, 30) - to_epoch(2004, 11, 1)) /
      3600.0;
  EXPECT_NEAR(a.node_hours, expected_hours, 1.0);
  EXPECT_NEAR(a.downtime_hours, 24.0, 1e-9);
  EXPECT_NEAR(a.availability, 1.0 - 24.0 / expected_hours, 1e-9);
  EXPECT_EQ(a.failures, 1u);
  EXPECT_NEAR(a.node_mtbf_hours, expected_hours, 1.0);
}

TEST(Availability, SystemsWithoutFailuresAreFullyAvailable) {
  const FailureDataset ds(
      {rec(22, 0, to_epoch(2005, 1, 1), 3600)});
  const auto rows = availability_analysis(ds, SystemCatalog::lanl());
  EXPECT_EQ(rows.size(), 23u);  // 22 systems + site aggregate
  const SystemAvailability& idle = find(rows, 7);
  EXPECT_DOUBLE_EQ(idle.availability, 1.0);
  EXPECT_EQ(idle.failures, 0u);
}

TEST(Availability, RepairPastProductionEndIsClipped) {
  // Failure one hour before system 19's retirement with a 10-hour repair:
  // only one hour counts.
  const Seconds end = to_epoch(2002, 9, 1);
  const FailureDataset ds(
      {rec(19, 2, end - kSecondsPerHour, 10 * kSecondsPerHour)});
  const auto rows = availability_analysis(ds, SystemCatalog::lanl());
  EXPECT_NEAR(find(rows, 19).downtime_hours, 1.0, 1e-9);
}

TEST(Availability, SiteAggregateIsWeightedSum) {
  const FailureDataset ds({
      rec(22, 0, to_epoch(2005, 1, 1), 7200),
      rec(13, 5, to_epoch(2004, 1, 1), 3600),
  });
  const auto rows = availability_analysis(ds, SystemCatalog::lanl());
  const SystemAvailability& site = find(rows, 0);
  EXPECT_EQ(site.hw_type, '*');
  EXPECT_NEAR(site.downtime_hours, 3.0, 1e-9);
  double node_hours = 0.0;
  for (const SystemAvailability& a : rows) {
    if (a.system_id != 0) node_hours += a.node_hours;
  }
  EXPECT_NEAR(site.node_hours, node_hours, 1e-6);
  EXPECT_EQ(site.failures, 2u);
}

TEST(Availability, SyntheticTraceIsHighlyAvailable) {
  // ~26k failures with ~6h mean repair over ~15M node-hours: the site
  // sits in the 98+% range. The worst individual system is the
  // single-node type H machine (frequent failures, NUMA-slow repairs).
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const auto rows = availability_analysis(ds, SystemCatalog::lanl());
  for (const SystemAvailability& a : rows) {
    EXPECT_GT(a.availability, 0.85) << "system " << a.system_id;
    EXPECT_LE(a.availability, 1.0);
  }
  EXPECT_GT(find(rows, 0).availability, 0.98);
  EXPECT_LT(find(rows, 0).availability, 1.0);
}

TEST(Availability, RejectsRecordsOutsideTheCatalog) {
  const FailureDataset unknown_system(
      {rec(99, 0, to_epoch(2005, 1, 1), 600)});
  EXPECT_THROW(
      availability_analysis(unknown_system, SystemCatalog::lanl()),
      InvalidArgument);
  const FailureDataset bad_node(
      {rec(22, 5, to_epoch(2005, 1, 1), 600)});
  EXPECT_THROW(availability_analysis(bad_node, SystemCatalog::lanl()),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
