#include "analysis/trend.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synth/generator.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;
using trace::SystemCatalog;

FailureRecord rec(int system, Seconds start, double repair_minutes) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = 0;
  r.start = start;
  r.end = start + static_cast<Seconds>(repair_minutes * 60.0);
  r.cause = RootCause::hardware;
  r.detail = DetailCause::cpu;
  return r;
}

TEST(ReliabilityTrend, WindowCountsAndRepairMeans) {
  // System 2 (one node, 7.5 years). Two failures in its first window,
  // none later.
  const Seconds start =
      SystemCatalog::lanl().system(2).production_start();
  const FailureDataset ds({
      rec(2, start + 10 * kSecondsPerDay, 30.0),
      rec(2, start + 20 * kSecondsPerDay, 90.0),
  });
  const TrendReport report =
      reliability_trend(ds, SystemCatalog::lanl(), 2, 3);
  ASSERT_FALSE(report.points.empty());
  EXPECT_EQ(report.points.front().month, 3);
  EXPECT_EQ(report.points.front().failures, 2u);
  EXPECT_DOUBLE_EQ(report.points.front().mean_repair_minutes, 60.0);
  // Far later windows are failure-free with MTBF = full window exposure.
  const TrendPoint& last = report.points.back();
  EXPECT_EQ(last.failures, 0u);
  EXPECT_NEAR(last.node_mtbf_hours, 3.0 * 730.5, 15.0);
  EXPECT_DOUBLE_EQ(last.mean_repair_minutes, 0.0);
  // Reliability "grew" since all failures were early.
  EXPECT_GT(report.mtbf_growth, 1.0);
}

TEST(ReliabilityTrend, BurnInSystemShowsMtbfGrowth) {
  // System 5's burn-in (Fig 4a) means its early windows have much lower
  // node-MTBF than its late ones.
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const TrendReport report =
      reliability_trend(ds, SystemCatalog::lanl(), 5);
  EXPECT_GT(report.mtbf_growth, 1.5);
  // Monotone-ish shape: the minimum node-MTBF is in the first year.
  int min_month = 0;
  double min_mtbf = 1e300;
  for (const TrendPoint& p : report.points) {
    if (p.node_mtbf_hours < min_mtbf) {
      min_mtbf = p.node_mtbf_hours;
      min_month = p.month;
    }
  }
  EXPECT_LE(min_month, 12);
}

TEST(ReliabilityTrend, RampSystemDipsInTheMiddle) {
  // System 19 (Fig 4b): worst reliability near the month-20 peak, not at
  // the start.
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const TrendReport report =
      reliability_trend(ds, SystemCatalog::lanl(), 19);
  int min_month = 0;
  double min_mtbf = 1e300;
  for (const TrendPoint& p : report.points) {
    if (p.node_mtbf_hours < min_mtbf) {
      min_mtbf = p.node_mtbf_hours;
      min_month = p.month;
    }
  }
  EXPECT_GT(min_month, 10);
  EXPECT_LT(min_month, 40);
}

TEST(ReliabilityTrend, ValidatesArguments) {
  const FailureDataset ds = synth::generate_lanl_trace(42);
  EXPECT_THROW(reliability_trend(ds, SystemCatalog::lanl(), 5, 0),
               InvalidArgument);
  // System 22 lived ~13 months: a 12-month window doesn't fit twice.
  EXPECT_THROW(reliability_trend(ds, SystemCatalog::lanl(), 22, 12),
               InvalidArgument);
  const FailureDataset empty;
  EXPECT_THROW(reliability_trend(empty, SystemCatalog::lanl(), 5),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
