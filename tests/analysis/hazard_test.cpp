#include "analysis/hazard.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/weibull.hpp"
#include "synth/generator.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;

FailureDataset weibull_node_dataset(int system, int nodes, double shape,
                                    double scale, int failures_per_node,
                                    std::uint64_t seed) {
  const hpcfail::dist::Weibull w(shape, scale);
  hpcfail::Rng rng(seed);
  std::vector<FailureRecord> records;
  for (int node = 0; node < nodes; ++node) {
    Seconds t = to_epoch(2000, 1, 1);
    for (int i = 0; i < failures_per_node; ++i) {
      t += static_cast<Seconds>(w.sample(rng)) + 1;
      FailureRecord r;
      r.system_id = system;
      r.node_id = node;
      r.start = t;
      r.end = t + 600;
      r.cause = RootCause::hardware;
      r.detail = DetailCause::cpu;
      records.push_back(r);
    }
  }
  return FailureDataset(std::move(records));
}

TEST(HazardAnalysis, RecoversWeibullShapeAsSlope) {
  const FailureDataset ds =
      weibull_node_dataset(7, 20, 0.7, 100000.0, 200, 41);
  const HazardReport report = node_hazard_analysis(ds, 7);
  EXPECT_EQ(report.events, 20u * 199u);
  // One censored interval per node, except the node whose last failure
  // coincides with the default horizon (the trace's last failure).
  EXPECT_GE(report.censored, 19u);
  EXPECT_LE(report.censored, 20u);
  EXPECT_NEAR(report.log_log_slope, 0.7, 0.1);
  EXPECT_TRUE(report.decreasing_hazard());
}

TEST(HazardAnalysis, FlatHazardForExponentialLikeData) {
  const FailureDataset ds =
      weibull_node_dataset(7, 20, 1.0, 100000.0, 200, 43);
  const HazardReport report = node_hazard_analysis(ds, 7);
  EXPECT_NEAR(report.log_log_slope, 1.0, 0.1);
}

TEST(HazardAnalysis, CumulativeHazardIsMonotone) {
  const FailureDataset ds =
      weibull_node_dataset(3, 5, 0.8, 50000.0, 50, 47);
  const HazardReport report = node_hazard_analysis(ds, 3);
  double prev = 0.0;
  for (const auto& p : report.cumulative_hazard) {
    EXPECT_GE(p.value, prev);
    prev = p.value;
  }
}

TEST(HazardAnalysis, SyntheticLanlSystem20HasDecreasingHazard) {
  // The paper's headline hazard claim, checked model-free on the full
  // synthetic trace (late era to avoid the early-burst regime).
  const FailureDataset ds = synth::generate_lanl_trace(42);
  const FailureDataset late =
      ds.view().between(to_epoch(2000, 1, 1), to_epoch(2006, 1, 1))
          .materialize();
  const HazardReport report = node_hazard_analysis(late, 20);
  EXPECT_TRUE(report.decreasing_hazard());
  EXPECT_GT(report.log_log_slope, 0.4);
  EXPECT_LT(report.log_log_slope, 1.0);
}

TEST(HazardAnalysis, ExplicitCensorHorizonIsRespected) {
  const FailureDataset ds =
      weibull_node_dataset(3, 4, 0.9, 50000.0, 30, 53);
  const Seconds horizon = ds.records().back().start + 100 * kSecondsPerDay;
  const HazardReport with_horizon =
      node_hazard_analysis(ds, 3, horizon);
  const HazardReport default_horizon = node_hazard_analysis(ds, 3);
  // A horizon past the last failure censors every node; the default one
  // censors every node except the holder of the last failure.
  EXPECT_EQ(with_horizon.censored, 4u);
  EXPECT_EQ(default_horizon.censored, 3u);
  double longest_with = 0.0;
  double longest_default = 0.0;
  for (const auto& o : with_horizon.observations) {
    if (!o.observed) longest_with = std::max(longest_with, o.time);
  }
  for (const auto& o : default_horizon.observations) {
    if (!o.observed) longest_default = std::max(longest_default, o.time);
  }
  EXPECT_GT(longest_with, longest_default);
}

TEST(HazardAnalysis, ThrowsOnMissingOrTinySystems) {
  const FailureDataset ds =
      weibull_node_dataset(3, 1, 0.9, 50000.0, 5, 59);
  EXPECT_THROW(node_hazard_analysis(ds, 4), InvalidArgument);
  EXPECT_THROW(node_hazard_analysis(ds, 3, {}, 16), InvalidArgument);
}

}  // namespace
}  // namespace hpcfail::analysis
