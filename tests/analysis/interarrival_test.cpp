#include "analysis/interarrival.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/weibull.hpp"

namespace hpcfail::analysis {
namespace {

using trace::DetailCause;
using trace::FailureDataset;
using trace::FailureRecord;
using trace::RootCause;

FailureRecord rec(int system, int node, Seconds start) {
  FailureRecord r;
  r.system_id = system;
  r.node_id = node;
  r.start = start;
  r.end = start + 60;
  r.cause = RootCause::hardware;
  r.detail = DetailCause::memory_dimm;
  return r;
}

FailureDataset weibull_renewal_dataset(int system, int node, double shape,
                                       double scale, std::size_t count,
                                       std::uint64_t seed) {
  const hpcfail::dist::Weibull w(shape, scale);
  hpcfail::Rng rng(seed);
  std::vector<FailureRecord> records;
  Seconds t = to_epoch(2000, 1, 1);
  for (std::size_t i = 0; i < count; ++i) {
    t += static_cast<Seconds>(w.sample(rng)) + 1;
    records.push_back(rec(system, node, t));
  }
  return FailureDataset(std::move(records));
}

TEST(Interarrival, NodeViewFitsWeibullWithPaperShape) {
  const FailureDataset ds =
      weibull_renewal_dataset(20, 22, 0.75, 200000.0, 3000, 211);
  InterarrivalQuery q;
  q.system_id = 20;
  q.node_id = 22;
  const InterarrivalReport report = interarrival_analysis(ds, q);
  ASSERT_EQ(report.gaps_seconds.size(), 2999u);
  EXPECT_EQ(report.best().family, hpcfail::dist::Family::weibull);
  const auto* w = dynamic_cast<const hpcfail::dist::Weibull*>(
      report.best().model.get());
  ASSERT_NE(w, nullptr);
  EXPECT_NEAR(w->shape(), 0.75, 0.05);
  EXPECT_TRUE(w->decreasing_hazard());
  // Exponential is a clearly worse fit (its C^2 = 1 vs the data's ~1.8):
  // its negative log-likelihood trails the winner by a real margin.
  double exp_nll = 0.0;
  for (const auto& f : report.fits) {
    if (f.family == hpcfail::dist::Family::exponential) {
      exp_nll = f.nll;
    }
  }
  EXPECT_GT(exp_nll - report.best().nll,
            0.01 * static_cast<double>(report.gaps_seconds.size()));
}

TEST(Interarrival, SystemViewMergesNodes) {
  std::vector<FailureRecord> records;
  const Seconds t0 = to_epoch(2000, 1, 1);
  for (int i = 0; i < 10; ++i) {
    records.push_back(rec(7, i % 4, t0 + i * 1000));
  }
  InterarrivalQuery q;
  q.system_id = 7;
  const InterarrivalReport report =
      interarrival_analysis(FailureDataset(std::move(records)), q);
  ASSERT_EQ(report.gaps_seconds.size(), 9u);
  for (const double g : report.gaps_seconds) {
    EXPECT_DOUBLE_EQ(g, 1000.0);
  }
}

TEST(Interarrival, WindowRestrictsSample) {
  const FailureDataset ds =
      weibull_renewal_dataset(5, 3, 0.8, 50000.0, 500, 223);
  InterarrivalQuery q;
  q.system_id = 5;
  q.node_id = 3;
  q.from = to_epoch(2000, 3, 1);
  q.to = to_epoch(2000, 6, 1);
  const InterarrivalReport narrow = interarrival_analysis(ds, q);
  InterarrivalQuery q_all;
  q_all.system_id = 5;
  q_all.node_id = 3;
  const InterarrivalReport all = interarrival_analysis(ds, q_all);
  EXPECT_LT(narrow.gaps_seconds.size(), all.gaps_seconds.size());
}

TEST(Interarrival, ZeroFractionCountsSimultaneousFailures) {
  std::vector<FailureRecord> records;
  const Seconds t0 = to_epoch(2000, 1, 1);
  // Five bursts of 3 simultaneous failures, spaced an hour apart.
  for (int burst = 0; burst < 5; ++burst) {
    for (int node = 0; node < 3; ++node) {
      records.push_back(rec(19, node, t0 + burst * 3600));
    }
  }
  InterarrivalQuery q;
  q.system_id = 19;
  const InterarrivalReport report =
      interarrival_analysis(FailureDataset(std::move(records)), q);
  // 14 gaps: 10 zeros (within bursts), 4 positive.
  ASSERT_EQ(report.gaps_seconds.size(), 14u);
  EXPECT_NEAR(report.zero_fraction, 10.0 / 14.0, 1e-12);
}

TEST(Interarrival, SummaryMatchesSample) {
  const FailureDataset ds =
      weibull_renewal_dataset(2, 0, 1.0, 3600.0, 100, 227);
  InterarrivalQuery q;
  q.system_id = 2;
  q.node_id = 0;
  const InterarrivalReport report = interarrival_analysis(ds, q);
  EXPECT_EQ(report.summary.n, report.gaps_seconds.size());
  EXPECT_GT(report.summary.mean, 0.0);
}

TEST(Interarrival, ThrowsWhenTooFewGaps) {
  std::vector<FailureRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(rec(1, 0, to_epoch(2000, 1, 1) + i * 1000));
  }
  InterarrivalQuery q;
  q.system_id = 1;
  q.node_id = 0;
  EXPECT_THROW(
      interarrival_analysis(FailureDataset(std::move(records)), q,
                            /*min_gaps=*/8),
      InvalidArgument);
}

TEST(Interarrival, ThrowsOnAbsentSystem) {
  const FailureDataset ds =
      weibull_renewal_dataset(2, 0, 1.0, 3600.0, 50, 229);
  InterarrivalQuery q;
  q.system_id = 3;  // no records
  EXPECT_THROW(interarrival_analysis(ds, q), InvalidArgument);
}

TEST(Interarrival, WindowingAbsentSystemFailsLoudly) {
  // Regression: `from` set on a system with no records used to default
  // the open end bound to 0 and quietly query the inverted range
  // [from, 0); it must instead name the empty system.
  const FailureDataset ds =
      weibull_renewal_dataset(2, 0, 1.0, 3600.0, 50, 229);
  InterarrivalQuery q;
  q.system_id = 3;  // no records
  q.from = to_epoch(2000, 1, 1);
  try {
    interarrival_analysis(ds, q);
    FAIL() << "should have thrown";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("system 3"), std::string::npos);
  }
}

TEST(Interarrival, InvertedWindowFailsLoudly) {
  const FailureDataset ds =
      weibull_renewal_dataset(2, 0, 1.0, 3600.0, 50, 229);
  InterarrivalQuery q;
  q.system_id = 2;
  q.from = to_epoch(2001, 1, 1);
  q.to = to_epoch(2000, 1, 1);  // before `from`
  EXPECT_THROW(interarrival_analysis(ds, q), ValidationError);
}

}  // namespace
}  // namespace hpcfail::analysis
