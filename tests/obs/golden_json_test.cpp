// Golden snapshot of the JSON metrics export. The snapshot is built from
// a locally-instantiated Registry with hand-fixed values (no timers, no
// pipeline runs), so the rendered JSON is a pure function of this file
// and byte-exact across platforms — any diff is a real schema or
// formatting change and must be reviewed via HPCFAIL_UPDATE_GOLDENS=1.
#include <string>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "testkit/golden.hpp"

namespace {

std::string golden_path(const char* name) {
  return std::string(HPCFAIL_GOLDEN_DIR) + "/" + name;
}

hpcfail::obs::MetricsSnapshot fixed_snapshot() {
  hpcfail::obs::Registry reg;
  reg.counter("pipeline.records").add(15238);
  reg.counter("fit.failed_families").add(2);
  reg.gauge("fit.best_nll").set(10423.53125);
  reg.gauge("dataset.span_days").set(1825.0);
  auto& hist = reg.histogram("fit.seconds");
  hist.record(0.0625);
  hist.record(0.125);
  hist.record(0.125);
  hist.record(2.0);

  hpcfail::obs::FinishedSpan span;
  span.id = 1;
  span.parent_id = 0;
  span.name = "analysis.interarrival";
  span.start_seconds = 0.25;
  span.duration_seconds = 1.5;
  reg.add_span(span);
  return reg.snapshot();
}

TEST(GoldenJson, MetricsExportMatchesSnapshot) {
  const std::string json = hpcfail::obs::to_json(fixed_snapshot());
  const auto result =
      hpcfail::testkit::golden_compare(golden_path("obs_metrics.json.golden"),
                                       json);
  EXPECT_TRUE(static_cast<bool>(result)) << result.message;
}

TEST(GoldenJson, ExportIsByteDeterministic) {
  EXPECT_EQ(hpcfail::obs::to_json(fixed_snapshot()),
            hpcfail::obs::to_json(fixed_snapshot()));
}

}  // namespace
