// The observability subsystem's hardest guarantee: metrics collection
// must not perturb results. The generated trace must be bit-identical
// with obs enabled and disabled, at any thread count — instrumentation
// only reads clocks and bumps atomics, never touches PRNG streams or
// assembly order.
#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.hpp"
#include "dist/fit.hpp"
#include "obs/metrics.hpp"
#include "synth/generator.hpp"
#include "trace/record.hpp"

namespace {

using hpcfail::trace::FailureRecord;

class ObsDeterminismTest : public ::testing::Test {
 protected:
  ~ObsDeterminismTest() override {
    hpcfail::obs::enable();
    hpcfail::set_parallelism(0);
  }
};

std::vector<FailureRecord> generate_records(std::uint64_t seed) {
  const auto ds = hpcfail::synth::generate_lanl_trace(seed);
  return {ds.records().begin(), ds.records().end()};
}

TEST_F(ObsDeterminismTest, TraceIdenticalWithObsOnAndOff) {
  hpcfail::obs::enable();
  const auto with_obs = generate_records(42);
  hpcfail::obs::disable();
  const auto without_obs = generate_records(42);
  ASSERT_EQ(with_obs.size(), without_obs.size());
  for (std::size_t i = 0; i < with_obs.size(); ++i) {
    ASSERT_EQ(with_obs[i], without_obs[i]) << "record " << i;
  }
}

TEST_F(ObsDeterminismTest, TraceIdenticalWithObsAcrossThreadCounts) {
  hpcfail::obs::disable();
  hpcfail::set_parallelism(1);
  const auto baseline = generate_records(7);

  hpcfail::obs::enable();
  for (const unsigned threads : {1u, 2u, 8u}) {
    hpcfail::set_parallelism(threads);
    const auto observed = generate_records(7);
    ASSERT_EQ(observed.size(), baseline.size())
        << "at " << threads << " threads";
    for (std::size_t i = 0; i < observed.size(); ++i) {
      ASSERT_EQ(observed[i], baseline[i])
          << "record " << i << " at " << threads << " threads";
    }
  }
}

TEST_F(ObsDeterminismTest, FitResultsIdenticalWithObsOnAndOff) {
  std::vector<double> xs;
  xs.reserve(4000);
  for (int i = 1; i <= 4000; ++i) {
    xs.push_back(17.0 + 0.01 * static_cast<double>(i * i % 997));
  }
  hpcfail::obs::enable();
  const auto with_obs =
      hpcfail::dist::fit_report(xs, hpcfail::dist::standard_families());
  hpcfail::obs::disable();
  const auto without_obs =
      hpcfail::dist::fit_report(xs, hpcfail::dist::standard_families());
  ASSERT_EQ(with_obs.size(), without_obs.size());
  for (std::size_t i = 0; i < with_obs.size(); ++i) {
    EXPECT_EQ(with_obs[i].family, without_obs[i].family);
    EXPECT_DOUBLE_EQ(with_obs[i].nll, without_obs[i].nll);
    EXPECT_DOUBLE_EQ(with_obs[i].ks, without_obs[i].ks);
    EXPECT_EQ(with_obs[i].iterations, without_obs[i].iterations);
  }
}

TEST_F(ObsDeterminismTest, GenerationFillsTheRegistry) {
#ifndef HPCFAIL_OBS_DISABLE
  hpcfail::obs::enable();
  hpcfail::obs::registry().reset();
  (void)generate_records(42);
  const auto snap = hpcfail::obs::registry().snapshot();
  EXPECT_GT(hpcfail::obs::registry().counter("synth.records_total").value(),
            0u);
  bool has_stage_gauge = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "stage.synth.generate.wall_seconds") has_stage_gauge = true;
  }
  EXPECT_TRUE(has_stage_gauge);
  bool has_shard_histogram = false;
  for (const auto& h : snap.histograms) {
    if (h.name.rfind("synth.shard_seconds{", 0) == 0) {
      has_shard_histogram = true;
    }
  }
  EXPECT_TRUE(has_shard_histogram);
  EXPECT_FALSE(snap.spans.empty());
#endif
}

}  // namespace
