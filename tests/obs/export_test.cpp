// Exporter tests. The JSON test is a byte-exact golden: the layout is the
// schema (kMetricsSchemaVersion); change the layout and you must bump the
// version and update this test together.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace hpcfail::obs {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back({"csv.rows_read", 7});
  snap.gauges.push_back({"stage.gen.wall_seconds", 0.5});
  MetricsSnapshot::HistogramValue h;
  h.name = "fit.seconds";
  h.count = 5;
  h.sum = 2.5;
  h.min = 0.1;
  h.max = 1.0;
  h.buckets = {{0.001, 2}, {1.0, 3}};
  snap.histograms.push_back(h);
  snap.spans.push_back({3, 1, "synth.generate", 0.25, 1.5});
  snap.spans_dropped = 0;
  return snap;
}

TEST(JsonExport, GoldenLayout) {
  const std::string expected =
      "{\n"
      "  \"schema\": \"hpcfail.metrics\",\n"
      "  \"schema_version\": 1,\n"
      "  \"counters\": [\n"
      "    {\"name\": \"csv.rows_read\", \"value\": 7}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\": \"stage.gen.wall_seconds\", \"value\": 0.5}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "    {\"name\": \"fit.seconds\", \"count\": 5, \"sum\": 2.5, "
      "\"min\": 0.1, \"max\": 1, \"buckets\": "
      "[{\"le\": 0.001, \"count\": 2}, {\"le\": 1, \"count\": 3}]}\n"
      "  ],\n"
      "  \"spans\": [\n"
      "    {\"id\": 3, \"parent_id\": 1, \"name\": \"synth.generate\", "
      "\"start_seconds\": 0.25, \"duration_seconds\": 1.5}\n"
      "  ],\n"
      "  \"spans_dropped\": 0\n"
      "}\n";
  EXPECT_EQ(to_json(sample_snapshot()), expected);
}

TEST(JsonExport, EmptySnapshotIsValid) {
  const std::string out = to_json(MetricsSnapshot{});
  EXPECT_NE(out.find("\"schema\": \"hpcfail.metrics\""), std::string::npos);
  EXPECT_NE(out.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"counters\": []"), std::string::npos);
  EXPECT_NE(out.find("\"spans_dropped\": 0"), std::string::npos);
}

TEST(JsonExport, EscapesNamesAndIsDeterministic) {
  MetricsSnapshot snap;
  snap.counters.push_back({"weird\"name\\with\ttabs", 1});
  const std::string out = to_json(snap);
  EXPECT_NE(out.find("weird\\\"name\\\\with\\ttabs"), std::string::npos);
  EXPECT_EQ(out, to_json(snap));  // byte-deterministic
}

TEST(CsvExport, FlatSeriesRows) {
  const std::string out = to_csv(sample_snapshot());
  std::istringstream in(out);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "kind,name,field,value");
  std::getline(in, line);
  EXPECT_EQ(line, "counter,csv.rows_read,value,7");
  std::getline(in, line);
  EXPECT_EQ(line, "gauge,stage.gen.wall_seconds,value,0.5");
  std::getline(in, line);
  EXPECT_EQ(line, "histogram,fit.seconds,count,5");
}

TEST(CsvExport, QuotesNamesWithCommas) {
  MetricsSnapshot snap;
  snap.counters.push_back({"x{a=1,b=2}", 4});
  const std::string out = to_csv(snap);
  EXPECT_NE(out.find("counter,\"x{a=1,b=2}\",value,4"), std::string::npos);
}

TEST(PrometheusExport, SanitizesNamesAndParsesLabels) {
  MetricsSnapshot snap;
  snap.counters.push_back({"synth.records_total", 100});
  snap.gauges.push_back({"synth.generate.records_per_sec", 2.5});
  MetricsSnapshot::HistogramValue h;
  h.name = "synth.shard_seconds{system=20}";
  h.count = 3;
  h.sum = 0.75;
  h.buckets = {{0.25, 1}, {1.0, 2}};
  snap.histograms.push_back(h);

  const std::string out = to_prometheus(snap);
  EXPECT_NE(out.find("# TYPE hpcfail_synth_records_total counter\n"
                     "hpcfail_synth_records_total 100\n"),
            std::string::npos);
  EXPECT_NE(out.find("hpcfail_synth_generate_records_per_sec 2.5\n"),
            std::string::npos);
  // Labels move out of the name, buckets are cumulative, +Inf closes.
  EXPECT_NE(out.find("hpcfail_synth_shard_seconds_bucket"
                     "{system=\"20\",le=\"0.25\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("hpcfail_synth_shard_seconds_bucket"
                     "{system=\"20\",le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("hpcfail_synth_shard_seconds_bucket"
                     "{system=\"20\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("hpcfail_synth_shard_seconds_sum{system=\"20\"} "
                     "0.75\n"),
            std::string::npos);
  EXPECT_NE(out.find("hpcfail_synth_shard_seconds_count{system=\"20\"} "
                     "3\n"),
            std::string::npos);
}

TEST(ExportFormat, ParsesKnownNamesAndRejectsUnknown) {
  EXPECT_EQ(export_format_from_string("json"), ExportFormat::json);
  EXPECT_EQ(export_format_from_string("csv"), ExportFormat::csv);
  EXPECT_EQ(export_format_from_string("prom"), ExportFormat::prometheus);
  EXPECT_EQ(export_format_from_string("prometheus"),
            ExportFormat::prometheus);
  EXPECT_THROW(export_format_from_string("xml"), ValidationError);
  EXPECT_EQ(to_string(ExportFormat::json), "json");
  EXPECT_EQ(to_string(ExportFormat::csv), "csv");
  EXPECT_EQ(to_string(ExportFormat::prometheus), "prom");
}

TEST(WriteMetricsFile, RoundTripsAndThrowsIoError) {
  Registry reg;
  reg.counter("file.test").add(9);
  const std::string path = "obs_export_test_metrics.json";
  write_metrics_file(path, ExportFormat::json, reg);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"file.test\", \"value\": 9"),
            std::string::npos);
  in.close();
  std::remove(path.c_str());

  EXPECT_THROW(write_metrics_file("no_such_dir/metrics.json",
                                  ExportFormat::json, reg),
               IoError);
}

}  // namespace
}  // namespace hpcfail::obs
