// Registry semantics: handle identity, snapshot determinism, histogram
// bucket math, the span cap, and recording from many threads at once
// (the latter is what the TSan job exercises).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace hpcfail::obs {
namespace {

TEST(Registry, HandlesAreStableAndGetOrCreate) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(reg.counter("x.count").value(), 5u);

  Gauge& g = reg.gauge("x.level");
  g.set(1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("x.level").value(), 1.75);

  // Same name, different kinds: independent maps, no collision.
  reg.histogram("x.count").record(1.0);
  EXPECT_EQ(reg.counter("x.count").value(), 5u);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(1);
  reg.counter("mid").add(1);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
}

TEST(Registry, ResetDropsEverything) {
  Registry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(2.0);
  reg.histogram("h").record(3.0);
  reg.add_span({1, 0, "s", 0.0, 1.0});
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.spans.empty());
}

TEST(Registry, SpanLogIsBounded) {
  Registry reg;
  for (std::size_t i = 0; i < Registry::kMaxSpans + 10; ++i) {
    reg.add_span({i + 1, 0, "s", 0.0, 0.0});
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.spans.size(), Registry::kMaxSpans);
  EXPECT_EQ(snap.spans_dropped, 10u);
}

TEST(Histogram, BucketBoundsAreMonotonic) {
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    EXPECT_LT(Histogram::bucket_bound(i - 1), Histogram::bucket_bound(i));
  }
  EXPECT_TRUE(std::isinf(
      Histogram::bucket_bound(Histogram::kBucketCount - 1)));
}

TEST(Histogram, BucketIndexMatchesBounds) {
  // Every value must land in the first bucket whose bound is >= v.
  for (const double v : {1e-12, 1e-9, 3e-4, 0.99, 1.0, 17.0, 1e8, 5e9}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_bound(i)) << "v=" << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::bucket_bound(i - 1)) << "v=" << v;
    }
  }
}

TEST(Histogram, TracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.record(2.0);
  h.record(8.0);
  h.record(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(Registry, ConcurrentRecordingIsLossless) {
  // 8 threads hammering one counter, one gauge, and one histogram, plus
  // per-thread lazily created metrics so get-or-create races too. Run
  // under TSan this is the registry's data-race test; in any build the
  // relaxed-atomic counts must still be exact.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      Counter& shared = reg.counter("shared.count");
      Histogram& hist = reg.histogram("shared.latency");
      for (int i = 0; i < kPerThread; ++i) {
        shared.add(1);
        hist.record(1e-3 * static_cast<double>(i + 1));
        reg.gauge("shared.level").add(1.0);
        // First-use creation race: each thread creates its own late.
        if (i == kPerThread / 2) {
          reg.counter("thread." + std::to_string(t)).add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(reg.counter("shared.count").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.histogram("shared.latency").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(reg.gauge("shared.level").value(),
                   static_cast<double>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("thread." + std::to_string(t)).value(), 1u);
  }
  // Bucket counts must add up to the total.
  const MetricsSnapshot snap = reg.snapshot();
  for (const auto& h : snap.histograms) {
    std::uint64_t bucketed = 0;
    for (const auto& [bound, count] : h.buckets) bucketed += count;
    EXPECT_EQ(bucketed, h.count) << h.name;
  }
}

TEST(Enabled, ToggleRoundTrips) {
#ifndef HPCFAIL_OBS_DISABLE
  EXPECT_TRUE(enabled());
  disable();
  EXPECT_FALSE(enabled());
  enable();
  EXPECT_TRUE(enabled());
#else
  EXPECT_FALSE(enabled());
#endif
}

}  // namespace
}  // namespace hpcfail::obs
