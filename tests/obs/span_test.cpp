// Span nesting semantics, including the contract that matters for the
// parallel pipeline: a span opened inside a pool task is parented to the
// span that was current when the task was *submitted*.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace hpcfail::obs {
namespace {

// Spans always record into the global registry via the default argument
// in production code; tests pass their own registry for isolation.

TEST(Span, NestsOnOneThread) {
  Registry reg;
  std::uint64_t outer_id = 0;
  std::uint64_t inner_parent = 0;
  {
    Span outer("outer", reg);
    outer_id = outer.id();
    EXPECT_EQ(current_span_id(), outer.id());
    {
      Span inner("inner", reg);
      inner_parent = inner.parent_id();
      EXPECT_EQ(current_span_id(), inner.id());
    }
    EXPECT_EQ(current_span_id(), outer.id());
  }
  EXPECT_EQ(current_span_id(), 0u);
  EXPECT_EQ(inner_parent, outer_id);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);  // inner finishes first
  EXPECT_EQ(snap.spans[0].name, "inner");
  EXPECT_EQ(snap.spans[1].name, "outer");
  EXPECT_EQ(snap.spans[0].parent_id, snap.spans[1].id);
  EXPECT_EQ(snap.spans[1].parent_id, 0u);
  EXPECT_GE(snap.spans[1].duration_seconds,
            snap.spans[0].duration_seconds);
}

TEST(Span, ParentPropagatesAcrossParallelFor) {
  Registry reg;
  std::uint64_t outer_id = 0;
  hpcfail::set_parallelism(4);
  {
    Span outer("fanout", reg);
    outer_id = outer.id();
    hpcfail::parallel_for(16, [&reg](std::size_t i) {
      Span task("task" + std::to_string(i), reg);
      (void)task;
    });
  }
  hpcfail::set_parallelism(0);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.spans.size(), 17u);
  std::size_t children = 0;
  for (const FinishedSpan& s : snap.spans) {
    if (s.name == "fanout") continue;
    // Every task span must be parented to the submitting span, no matter
    // which worker ran it or what that worker ran before.
    EXPECT_EQ(s.parent_id, outer_id) << s.name;
    ++children;
  }
  EXPECT_EQ(children, 16u);
}

TEST(SpanContext, RestoresPreviousSpan) {
  Registry reg;
  Span outer("outer", reg);
  {
    SpanContext ctx(12345);
    EXPECT_EQ(current_span_id(), 12345u);
  }
  EXPECT_EQ(current_span_id(), outer.id());
}

TEST(ScopedTimer, RecordsIntoLatencyHistogram) {
  Registry reg;
  {
    ScopedTimer timer("fit", reg);
  }
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "fit.seconds");
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(ScopedTimer, StopIsIdempotent) {
  Registry reg;
  ScopedTimer timer("once", reg);
  timer.stop();
  const double elapsed = timer.elapsed_seconds();
  timer.stop();  // second stop: no second record, elapsed frozen
  EXPECT_DOUBLE_EQ(timer.elapsed_seconds(), elapsed);
  EXPECT_EQ(reg.histogram("once.seconds").count(), 1u);
}

TEST(StageTimer, AccumulatesWallCpuAndRuns) {
  Registry reg;
  {
    StageTimer stage("demo", reg);
    // Busy loop long enough to register nonzero wall time.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1e-9;
    stage.stop();
    EXPECT_GE(stage.wall_seconds(), 0.0);
    EXPECT_GE(stage.cpu_seconds(), 0.0);
  }
  {
    StageTimer stage("demo", reg);
  }
  const MetricsSnapshot snap = reg.snapshot();
  if (enabled()) {
    EXPECT_EQ(reg.counter("stage.demo.runs").value(), 2u);
    bool found_wall = false;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "stage.demo.wall_seconds") {
        found_wall = true;
        EXPECT_GE(value, 0.0);
      }
    }
    EXPECT_TRUE(found_wall);
  }
}

TEST(Span, DisabledRecordsNothing) {
#ifndef HPCFAIL_OBS_DISABLE
  Registry reg;
  disable();
  {
    Span span("quiet", reg);
    ScopedTimer timer("quiet", reg);
    StageTimer stage("quiet", reg);
  }
  enable();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.counters.empty());
#endif
}

TEST(Clocks, UptimeAndCpuAdvanceMonotonically) {
  const double u0 = process_uptime_seconds();
  const double c0 = process_cpu_seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink = sink + 1e-9;
  EXPECT_GE(process_uptime_seconds(), u0);
  EXPECT_GE(process_cpu_seconds(), c0);
}

}  // namespace
}  // namespace hpcfail::obs
