// Site-profile calibration oracles: each synth::SiteProfile must
// regenerate its study's published statistics. A long trace (the window
// stretched by a per-profile duration_scale to tighten the estimators)
// is run through the same analysis::summarize_site battery `hpcfail
// compare` uses, and the fitted values must recover the profile anchors
// within the tolerances below — the same numbers documented in
// EXPERIMENTS.md ("Multi-site calibration tolerances"). Everything is
// seeded; a failure is a calibration regression, not noise.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/compare.hpp"
#include "synth/site.hpp"
#include "trace/types.hpp"

namespace hpcfail {
namespace {

struct OracleCase {
  const char* profile;     ///< registry name (= adapter name)
  double duration_scale;   ///< window stretch for the oracle run
  double rate_rel_tol;     ///< failures/proc-year, relative
  double shape_abs_tol;    ///< Weibull interarrival shape, absolute
  double repair_mean_rel_tol;
  double repair_median_rel_tol;
  double cause_mix_abs_tol;  ///< per-cause fraction, absolute (pp/100)
};

// Tolerances must match the EXPERIMENTS.md table.
constexpr OracleCase kCases[] = {
    {"lu", 4.0, 0.10, 0.06, 0.10, 0.10, 0.03},
    {"mistral", 2.0, 0.08, 0.06, 0.08, 0.08, 0.03},
    {"tan", 2.0, 0.08, 0.06, 0.08, 0.08, 0.03},
};

class SiteCalibration : public ::testing::TestWithParam<OracleCase> {};

TEST_P(SiteCalibration, RecoversPublishedStatistics) {
  const OracleCase& oracle = GetParam();
  const synth::SiteProfile& profile = synth::site_profile(oracle.profile);

  analysis::CompareInput input;
  input.label = std::string(profile.name);
  input.dataset =
      synth::generate_site_trace(profile, 42, oracle.duration_scale);
  input.procs = static_cast<double>(profile.procs);
  const analysis::CompareSite site = analysis::summarize_site(input);

  // Published failure rate per processor-year.
  EXPECT_NEAR(site.failures_per_proc_year, profile.failures_per_proc_year,
              oracle.rate_rel_tol * profile.failures_per_proc_year)
      << profile.name << ": rate";

  // Published Weibull interarrival shape (the < 1 decreasing-hazard
  // signature each study reports).
  ASSERT_FALSE(std::isnan(site.weibull_shape)) << profile.name;
  EXPECT_NEAR(site.weibull_shape, profile.weibull_shape,
              oracle.shape_abs_tol)
      << profile.name << ": weibull shape";
  EXPECT_LT(site.weibull_shape, 1.0)
      << profile.name << ": decreasing hazard";

  // Published repair-time moments (lognormal mean/median, minutes).
  EXPECT_NEAR(site.repair_minutes.mean, profile.repair.mean_minutes,
              oracle.repair_mean_rel_tol * profile.repair.mean_minutes)
      << profile.name << ": repair mean";
  EXPECT_NEAR(site.repair_minutes.median, profile.repair.median_minutes,
              oracle.repair_median_rel_tol * profile.repair.median_minutes)
      << profile.name << ": repair median";

  // Published root-cause mix, absolute per-cause tolerance.
  for (const trace::RootCause cause : trace::kAllRootCauses) {
    const std::size_t i = trace::cause_index(cause);
    EXPECT_NEAR(site.cause_fraction[i], profile.cause_mix[i],
                oracle.cause_mix_abs_tol)
        << profile.name << ": cause " << trace::to_string(cause);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, SiteCalibration,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                           return std::string(info.param.profile);
                         });

}  // namespace
}  // namespace hpcfail
