// Differential oracles: two independent paths to the same answer must
// agree bit-for-bit.
//
//   * indexed views vs the testkit brute-force references vs
//     materialize() round-trips, on a full synthetic LANL trace;
//   * fit_report / fit_report_many at 1, 2 and 8 threads;
//   * fit rankings under permutation of the requested family list.
#include <array>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/interarrival.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dist/fit.hpp"
#include "dist/weibull.hpp"
#include "synth/generator.hpp"
#include "testkit/calibration.hpp"
#include "testkit/reference.hpp"
#include "trace/dataset.hpp"
#include "trace/index.hpp"

namespace {

using hpcfail::dist::Family;
using hpcfail::testkit::identical_across_threads;

TEST(Differential, ViewsMatchBruteForceReferencesOnAFullTrace) {
  const auto ds = hpcfail::synth::generate_lanl_trace(101);
  const auto records = ds.records();
  for (const int system : ds.system_ids()) {
    const auto view = ds.view().for_system(system);
    const auto ref = hpcfail::testkit::ref_for_system(records, system);
    ASSERT_EQ(view.size(), ref.size()) << "system " << system;
    const auto view_records = view.records();
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(view_records[i], ref[i]) << "system " << system;
    }
    EXPECT_EQ(view.system_interarrivals(),
              hpcfail::testkit::ref_system_interarrivals(records, system));
    EXPECT_EQ(view.failures_per_node(),
              hpcfail::testkit::ref_failures_per_node(records, system));
  }
}

TEST(Differential, NodeInterarrivalsMatchReferencesPerNode) {
  const auto ds = hpcfail::synth::generate_lanl_trace(101);
  const auto records = ds.records();
  const int system = 20;
  const auto view = ds.view().for_system(system);
  for (const auto& [node, count] : view.failures_per_node()) {
    EXPECT_EQ(view.node_interarrivals(node),
              hpcfail::testkit::ref_node_interarrivals(records, system, node))
        << "node " << node;
    EXPECT_GT(count, 0u);
  }
}

TEST(Differential, MaterializeRoundTripsTheViewExactly) {
  const auto ds = hpcfail::synth::generate_lanl_trace(101);
  const auto view = ds.view().for_system(20).between(
      ds.first_start(), ds.first_start() + 400 * 24 * 3600);
  const auto copy = view.materialize();
  const auto a = view.records();
  const auto b = copy.records();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // And the analyzers see the two datasets identically.
  EXPECT_EQ(view.repair_times_minutes(), copy.view().repair_times_minutes());
  EXPECT_EQ(view.system_interarrivals(),
            copy.view().for_system(20).system_interarrivals());
}

// Flattens a report to exactly-comparable numbers (family order + nll +
// aic + ks per rank).
std::vector<std::tuple<Family, double, double, double>> flatten(
    const hpcfail::dist::FitReport& report) {
  std::vector<std::tuple<Family, double, double, double>> flat;
  for (const auto& r : report) {
    flat.emplace_back(r.family, r.nll, r.aic, r.ks);
  }
  return flat;
}

TEST(Differential, FitReportIsBitIdenticalAcrossThreadCounts) {
  const auto ds = hpcfail::synth::generate_lanl_trace(7);
  const auto gaps = ds.view().for_system(20).system_interarrivals();
  const auto compute = [&] {
    return flatten(
        hpcfail::dist::fit_report(gaps, hpcfail::dist::all_families(), 1.0));
  };
  EXPECT_TRUE(identical_across_threads(compute));
}

TEST(Differential, FitReportManyIsBitIdenticalAcrossThreadCounts) {
  const auto ds = hpcfail::synth::generate_lanl_trace(7);
  const auto compute = [&] {
    std::vector<std::tuple<int, Family, double>> flat;
    for (const auto& node :
         hpcfail::analysis::per_node_interarrival_fits(ds, 20)) {
      if (node.fits.empty()) {
        flat.emplace_back(node.node_id, Family::exponential, -1.0);
        continue;
      }
      flat.emplace_back(node.node_id, node.fits.best().family,
                        node.fits.best().nll);
    }
    return flat;
  };
  EXPECT_TRUE(identical_across_threads(compute));
}

TEST(Differential, InterarrivalAnalysisIsBitIdenticalAcrossThreadCounts) {
  const auto ds = hpcfail::synth::generate_lanl_trace(7);
  const auto compute = [&] {
    hpcfail::analysis::InterarrivalQuery query;
    query.system_id = 20;
    const auto report = hpcfail::analysis::interarrival_analysis(ds, query);
    auto flat = flatten(report.fits);
    flat.emplace_back(Family::exponential, report.summary.mean,
                      report.summary.median, report.zero_fraction);
    return flat;
  };
  EXPECT_TRUE(identical_across_threads(compute));
}

TEST(Differential, AnalyzersAgreeOnColumnarAndRoundTrippedDatasets) {
  // The generator builds its dataset straight into columns (radix-merged
  // shards); the classic path goes through AoS records and the
  // comparison-sorting constructor. Analyzer results must not depend on
  // which path built the storage.
  const auto columnar = hpcfail::synth::generate_lanl_trace(101);
  const hpcfail::trace::FailureDataset round_trip(
      columnar.columns().to_records());
  const auto materialized = columnar.view().materialize();

  for (const auto* other : {&round_trip, &materialized}) {
    const auto& a = columnar.columns();
    const auto& b = other->columns();
    ASSERT_EQ(columnar.size(), other->size());
    EXPECT_EQ(a.system_id, b.system_id);
    EXPECT_EQ(a.node_id, b.node_id);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.cause, b.cause);
    EXPECT_EQ(a.detail, b.detail);

    EXPECT_EQ(columnar.repair_times_minutes(),
              other->repair_times_minutes());
    hpcfail::analysis::InterarrivalQuery query;
    query.system_id = 20;
    const auto lhs = hpcfail::analysis::interarrival_analysis(columnar, query);
    const auto rhs = hpcfail::analysis::interarrival_analysis(*other, query);
    EXPECT_EQ(flatten(lhs.fits), flatten(rhs.fits));
    EXPECT_EQ(lhs.summary.mean, rhs.summary.mean);
    EXPECT_EQ(lhs.zero_fraction, rhs.zero_fraction);
  }
}

TEST(Differential, FitRankingIsStableUnderFamilyPermutation) {
  hpcfail::Rng rng(31337);
  const hpcfail::dist::Weibull source(0.8, 1200.0);
  std::vector<double> xs(3000);
  for (double& x : xs) x = source.sample(rng);

  const std::array<std::vector<Family>, 4> permutations = {{
      {Family::exponential, Family::weibull, Family::gamma, Family::lognormal,
       Family::normal, Family::pareto, Family::hyperexp},
      {Family::hyperexp, Family::pareto, Family::normal, Family::lognormal,
       Family::gamma, Family::weibull, Family::exponential},
      {Family::gamma, Family::exponential, Family::lognormal,
       Family::hyperexp, Family::weibull, Family::pareto, Family::normal},
      {Family::weibull, Family::normal, Family::pareto, Family::exponential,
       Family::hyperexp, Family::lognormal, Family::gamma},
  }};

  const auto reference =
      flatten(hpcfail::dist::fit_report(xs, permutations[0], 1e-9));
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(std::get<0>(reference.front()), Family::weibull);
  for (std::size_t p = 1; p < permutations.size(); ++p) {
    EXPECT_EQ(flatten(hpcfail::dist::fit_report(xs, permutations[p], 1e-9)),
              reference)
        << "permutation " << p;
  }
}

}  // namespace
