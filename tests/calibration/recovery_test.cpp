// Simulation-based calibration: parameter recovery for every fit family.
//
// For each family, sample from a distribution with known parameters at
// several sample sizes, refit with dist::fit, and require (a) the
// relative RMSE of the recovered mean and C^2 to shrink as n grows — the
// consistency signature of a correct MLE — and (b) the bias at the
// largest n to be small. Tolerances are documented in EXPERIMENTS.md.
// Everything is seeded, so a failure here is a real regression, not
// noise.
#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dist/exponential.hpp"
#include "dist/fit.hpp"
#include "dist/gamma.hpp"
#include "dist/hyperexp.hpp"
#include "dist/lognormal.hpp"
#include "dist/normal.hpp"
#include "dist/pareto.hpp"
#include "dist/poisson.hpp"
#include "dist/weibull.hpp"
#include "testkit/calibration.hpp"

namespace {

using hpcfail::dist::Family;
using hpcfail::testkit::recovery_curve;
using hpcfail::testkit::RecoveryCurve;

constexpr std::array<std::size_t, 3> kSizes = {256, 2048, 16384};
constexpr std::size_t kReplicates = 40;
constexpr std::uint64_t kSeed = 0x5ca1ab1e;

void expect_recovers(const RecoveryCurve& curve, double bias_tol,
                     double rmse_factor = 2.0) {
  ASSERT_FALSE(curve.points.empty());
  const auto& last = curve.points.back();
  EXPECT_LT(std::abs(last.mean_bias), bias_tol)
      << "mean bias at n=" << last.n;
  EXPECT_LT(std::abs(last.cv2_bias), bias_tol) << "cv2 bias at n=" << last.n;
  EXPECT_TRUE(curve.rmse_shrinks(rmse_factor))
      << "RMSE did not shrink by " << rmse_factor << "x from n="
      << curve.points.front().n << " (mean rmse "
      << curve.points.front().mean_rmse << ", cv2 rmse "
      << curve.points.front().cv2_rmse << ") to n=" << last.n
      << " (mean rmse " << last.mean_rmse << ", cv2 rmse " << last.cv2_rmse
      << ")";
  EXPECT_EQ(last.failed_fits, 0u);
}

TEST(Calibration, ExponentialRecovery) {
  const hpcfail::dist::Exponential truth(1.0 / 1500.0);
  expect_recovers(
      recovery_curve(truth, Family::exponential, kSizes, kReplicates, kSeed),
      0.02);
}

TEST(Calibration, WeibullRecovery) {
  // The paper's decreasing-hazard regime: shape < 1.
  const hpcfail::dist::Weibull truth(0.7, 3600.0);
  expect_recovers(
      recovery_curve(truth, Family::weibull, kSizes, kReplicates, kSeed),
      0.03);
}

TEST(Calibration, GammaRecovery) {
  const hpcfail::dist::GammaDist truth(1.8, 2000.0);
  expect_recovers(
      recovery_curve(truth, Family::gamma, kSizes, kReplicates, kSeed), 0.03);
}

TEST(Calibration, LognormalRecovery) {
  const hpcfail::dist::LogNormal truth(4.0, 1.2);
  expect_recovers(
      recovery_curve(truth, Family::lognormal, kSizes, kReplicates, kSeed),
      0.05);
}

TEST(Calibration, NormalRecovery) {
  const hpcfail::dist::Normal truth(120.0, 25.0);
  expect_recovers(
      recovery_curve(truth, Family::normal, kSizes, kReplicates, kSeed),
      0.02);
}

TEST(Calibration, PoissonRecovery) {
  const hpcfail::dist::Poisson truth(6.5);
  expect_recovers(
      recovery_curve(truth, Family::poisson, kSizes, kReplicates, kSeed),
      0.02);
}

TEST(Calibration, ParetoRecovery) {
  // alpha > 2 keeps both the mean and the variance of the truth finite;
  // at these sizes the fitted alpha stays well above 2 too.
  const hpcfail::dist::Pareto truth(3.0, 10.0);
  expect_recovers(
      recovery_curve(truth, Family::pareto, kSizes, kReplicates, kSeed),
      0.05);
}

TEST(Calibration, HyperexpRecovery) {
  // EM is by far the costliest fitter, so this family sweeps smaller
  // sizes with fewer replicates; the consistency signature is the same.
  const hpcfail::dist::HyperExp truth(0.4, 1.0 / 500.0, 1.0 / 5000.0);
  constexpr std::array<std::size_t, 3> sizes = {256, 1024, 4096};
  expect_recovers(
      recovery_curve(truth, Family::hyperexp, sizes, 20, kSeed), 0.10, 1.5);
}

TEST(Calibration, RecoveryCurveIsDeterministicAcrossThreadCounts) {
  // The calibration oracles must be a pure function of the seed at any
  // parallelism level (dist::fit fans families out on the shared pool).
  const hpcfail::dist::Weibull truth(0.7, 3600.0);
  constexpr std::array<std::size_t, 2> sizes = {256, 1024};
  const auto compute = [&] {
    const auto curve =
        recovery_curve(truth, Family::weibull, sizes, 10, kSeed);
    std::vector<std::array<double, 4>> flat;
    for (const auto& p : curve.points) {
      flat.push_back({p.mean_bias, p.mean_rmse, p.cv2_bias, p.cv2_rmse});
    }
    return flat;
  };
  EXPECT_TRUE(hpcfail::testkit::identical_across_threads(compute));
}

}  // namespace
