// Bootstrap CI calibration: percentile intervals from stats/bootstrap
// must contain the true value of the statistic at close to their nominal
// rate. Observed coverages (and the acceptance bands below) are recorded
// in EXPERIMENTS.md; percentile intervals undercover slightly on skewed
// statistics at moderate n, which the bands allow for.
#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"
#include "stats/bootstrap.hpp"
#include "testkit/calibration.hpp"

namespace {

using hpcfail::stats::BootstrapOptions;
using hpcfail::testkit::bootstrap_coverage;

double sample_mean(std::span<const double> xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double sample_median(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

constexpr std::size_t kN = 200;
constexpr std::size_t kTrials = 200;
constexpr std::uint64_t kSeed = 0xb007;

BootstrapOptions boot_options() {
  BootstrapOptions options;
  options.replicates = 400;
  options.confidence = 0.95;
  return options;
}

TEST(Coverage, ExponentialMeanAtNominalRate) {
  const hpcfail::dist::Exponential truth(0.01);  // mean 100
  const auto result = bootstrap_coverage(truth, 100.0, sample_mean, kN,
                                         kTrials, boot_options(), kSeed);
  EXPECT_EQ(result.trials, kTrials);
  EXPECT_DOUBLE_EQ(result.nominal, 0.95);
  EXPECT_GE(result.coverage, 0.88);
  EXPECT_LE(result.coverage, 0.99);
}

TEST(Coverage, WeibullMeanAtNominalRate) {
  // Shape 0.7 makes the sample skewed — the hard case for percentile
  // intervals; the band is wider on the low side accordingly.
  const hpcfail::dist::Weibull truth(0.7, 100.0);
  const auto result =
      bootstrap_coverage(truth, truth.mean(), sample_mean, kN, kTrials,
                         boot_options(), kSeed);
  EXPECT_GE(result.coverage, 0.85);
  EXPECT_LE(result.coverage, 0.99);
}

TEST(Coverage, LognormalMedianAtNominalRate) {
  const hpcfail::dist::LogNormal truth(4.0, 1.2);
  const double true_median = std::exp(4.0);
  const auto result = bootstrap_coverage(truth, true_median, sample_median,
                                         kN, kTrials, boot_options(), kSeed);
  EXPECT_GE(result.coverage, 0.88);
  EXPECT_LE(result.coverage, 1.0);
}

TEST(Coverage, CoverageRunIsDeterministic) {
  const hpcfail::dist::Exponential truth(0.01);
  const auto a = bootstrap_coverage(truth, 100.0, sample_mean, 100, 50,
                                    boot_options(), kSeed);
  const auto b = bootstrap_coverage(truth, 100.0, sample_mean, 100, 50,
                                    boot_options(), kSeed);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.trials, b.trials);
}

}  // namespace
