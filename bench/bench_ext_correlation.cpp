// Extension: the correlation analysis the paper explicitly deferred
// (Section 5.3: "we did not perform a rigorous analysis of correlations
// between nodes"). Quantifies simultaneous-failure mass, interarrival
// autocorrelation, and daily-count overdispersion for system 20's early
// and late eras.
#include <iostream>

#include "analysis/correlation.hpp"
#include "common/strings.hpp"
#include "trace/index.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"

namespace {

void render(const hpcfail::trace::FailureDataset& window, const char* era) {
  using namespace hpcfail;
  const analysis::CorrelationReport report =
      analysis::correlation_analysis(window, 20);
  std::cout << "--- system 20, " << era << " ---\n";
  report::TextTable table({"metric", "value"});
  table.add_row({"failures", std::to_string(report.bursts.total_failures)});
  table.add_row({"simultaneous bursts (>=2 nodes)",
                 std::to_string(report.bursts.burst_events)});
  table.add_row({"failures inside bursts",
                 std::to_string(report.bursts.burst_failures)});
  table.add_row({"burst fraction",
                 format_double(report.bursts.burst_fraction(), 3)});
  table.add_row({"largest burst",
                 std::to_string(report.bursts.largest_burst)});
  table.add_row({"daily-count dispersion (Var/Mean)",
                 format_double(report.daily_dispersion, 4)});
  for (std::size_t lag = 0;
       lag < std::min<std::size_t>(3, report
                                          .interarrival_autocorrelation
                                          .size());
       ++lag) {
    table.add_row({"interarrival acf lag " + std::to_string(lag + 1),
                   format_double(
                       report.interarrival_autocorrelation[lag], 3)});
  }
  table.render(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  std::cout << "=== extension: node-failure correlation, system 20 ===\n\n";
  const trace::DatasetView view = dataset.view();
  render(view.between(to_epoch(1997, 1, 1), to_epoch(2000, 1, 1))
             .materialize(),
         "1996-1999 (early era)");
  render(view.between(to_epoch(2000, 1, 1), to_epoch(2006, 1, 1))
             .materialize(),
         "2000-2005 (late era)");
  std::cout << "paper's observation: >30% of early system-wide "
               "interarrivals are zero,\nindicating tight correlation in "
               "the cluster's initial years; late-era\nfailures are far "
               "less correlated. A Poisson process would show daily\n"
               "dispersion ~1 and zero autocorrelation.\n";
  return 0;
}
