// Figure 2 reproduction: average failures per year per system (a) and the
// same normalized by processor count (b).
#include <iostream>

#include "common/strings.hpp"
#include "analysis/rates.hpp"
#include "report/ascii_chart.hpp"
#include "synth/generator.hpp"

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const auto rates =
      analysis::failure_rates(dataset, trace::SystemCatalog::lanl());

  std::vector<std::pair<std::string, double>> raw;
  std::vector<std::pair<std::string, double>> normalized;
  for (const analysis::SystemRate& r : rates) {
    const std::string label =
        "sys " + std::to_string(r.system_id) + " (" + r.hw_type + ")";
    raw.emplace_back(label, r.failures_per_year);
    normalized.emplace_back(label, r.failures_per_year_per_proc);
  }
  std::cout << "=== Fig 2(a): failures per year per system ===\n";
  report::bar_chart(std::cout, "", raw);
  std::cout << "\n=== Fig 2(b): failures per year per processor ===\n";
  report::bar_chart(std::cout, "", normalized);

  double lo = 1e12;
  double hi = 0.0;
  double nlo = 1e12;
  double nhi = 0.0;
  for (const analysis::SystemRate& r : rates) {
    lo = std::min(lo, r.failures_per_year);
    hi = std::max(hi, r.failures_per_year);
    nlo = std::min(nlo, r.failures_per_year_per_proc);
    nhi = std::max(nhi, r.failures_per_year_per_proc);
  }
  std::cout << "\nmeasured: raw range " << format_double(lo, 3) << " .. "
            << format_double(hi, 4) << " per year (x"
            << format_double(hi / lo, 3) << "), normalized range "
            << format_double(nlo, 3) << " .. " << format_double(nhi, 3)
            << " (x" << format_double(nhi / nlo, 3) << ")\n";
  std::cout << "paper reports: 17 .. 1159 failures/year; normalized rates "
               "vary far less,\nespecially within a hardware type -- "
               "failure rates grow roughly linearly\nwith system size.\n";
  return 0;
}
