// Parallel-execution microbenchmarks: full-trace generation and batched
// MLE fitting at 1/2/4/8 worker threads (google-benchmark), plus an
// up-front determinism check that the 1-thread and multi-thread
// generators produce record-for-record identical datasets.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "analysis/interarrival.hpp"
#include "common/thread_pool.hpp"
#include "synth/generator.hpp"

namespace {

const hpcfail::trace::FailureDataset& shared_dataset() {
  static const hpcfail::trace::FailureDataset dataset =
      hpcfail::synth::generate_lanl_trace(42);
  return dataset;
}

void BM_GenerateFullTraceThreads(benchmark::State& state) {
  hpcfail::set_parallelism(static_cast<unsigned>(state.range(0)));
  std::size_t records = 0;
  for (auto _ : state) {
    auto dataset = hpcfail::synth::generate_lanl_trace(42);
    records += dataset.size();
    benchmark::DoNotOptimize(dataset);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  hpcfail::set_parallelism(0);
}

void BM_PerNodeFitsThreads(benchmark::State& state) {
  // The trace is built once outside the timed region; only the batched
  // per-node interarrival fits of the big NUMA system are measured.
  const hpcfail::trace::FailureDataset& dataset = shared_dataset();
  hpcfail::set_parallelism(static_cast<unsigned>(state.range(0)));
  std::size_t fitted = 0;
  for (auto _ : state) {
    auto fits =
        hpcfail::analysis::per_node_interarrival_fits(dataset,
                                                      /*system_id=*/20);
    fitted += fits.size();
    benchmark::DoNotOptimize(fits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fitted));
  hpcfail::set_parallelism(0);
}

// Generation must be bit-identical at any thread count; refuse to publish
// speedup numbers for a parallelization that changed the output.
void verify_determinism() {
  hpcfail::set_parallelism(1);
  const auto sequential = hpcfail::synth::generate_lanl_trace(42);
  for (const unsigned threads : {2u, 4u, 8u}) {
    hpcfail::set_parallelism(threads);
    const auto parallel = hpcfail::synth::generate_lanl_trace(42);
    if (!(parallel.size() == sequential.size() &&
          std::equal(parallel.records().begin(), parallel.records().end(),
                     sequential.records().begin()))) {
      std::fprintf(stderr,
                   "FATAL: %u-thread trace differs from 1-thread trace\n",
                   threads);
      std::exit(1);
    }
  }
  hpcfail::set_parallelism(0);
  std::printf("determinism: 1 == 2 == 4 == 8 threads (%zu records)\n",
              sequential.size());
}

}  // namespace

BENCHMARK(BM_GenerateFullTraceThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PerNodeFitsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  verify_determinism();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
