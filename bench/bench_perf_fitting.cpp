// Library quality-of-implementation microbenchmarks: MLE fitting
// throughput per distribution family and sample size (google-benchmark).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "dist/fit.hpp"
#include "dist/weibull.hpp"

namespace {

std::vector<double> weibull_sample(std::size_t n) {
  const hpcfail::dist::Weibull truth(0.75, 86400.0);
  hpcfail::Rng rng(7);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(truth.sample(rng));
  return xs;
}

void BM_FitFamily(benchmark::State& state, hpcfail::dist::Family family) {
  const auto xs = weibull_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hpcfail::dist::fit(family, xs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size()));
}

void BM_FitAllStandard(benchmark::State& state) {
  const auto xs = weibull_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hpcfail::dist::fit_report(xs, hpcfail::dist::standard_families()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_FitFamily, exponential,
                  hpcfail::dist::Family::exponential)
    ->Arg(1000)->Arg(10000);
BENCHMARK_CAPTURE(BM_FitFamily, weibull, hpcfail::dist::Family::weibull)
    ->Arg(1000)->Arg(10000);
BENCHMARK_CAPTURE(BM_FitFamily, gamma, hpcfail::dist::Family::gamma)
    ->Arg(1000)->Arg(10000);
BENCHMARK_CAPTURE(BM_FitFamily, lognormal,
                  hpcfail::dist::Family::lognormal)
    ->Arg(1000)->Arg(10000);
BENCHMARK(BM_FitAllStandard)->Arg(1000)->Arg(10000);

BENCHMARK_MAIN();
