// Library quality-of-implementation microbenchmarks: MLE fitting
// throughput per distribution family and sample size (google-benchmark).
//
// Sample construction happens outside every timed loop (the fixtures
// build the data before `for (auto _ : state)`), and every benchmark
// reports items/sec via SetItemsProcessed where an "item" is one fitted
// observation — so rates are comparable across sample sizes and against
// the end-to-end sweep in `bench_perf_dataset --pr6`.
//
// BM_FitAllStandard (the fused fit_report engine: one SuffStats pass and
// one sorted copy shared across families) vs BM_FitPerFamilyStandard
// (one independent fit() per family, the engine fit_report replaced) is
// the batched-fitting speedup this suite tracks; BM_FitReportManyNodes
// is the paper's per-node Fig 6 sweep shape — thousands of small
// samples through fit_report_many.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dist/fit.hpp"
#include "dist/weibull.hpp"

namespace {

std::vector<double> weibull_sample(std::size_t n, std::uint64_t seed = 7) {
  const hpcfail::dist::Weibull truth(0.75, 86400.0);
  hpcfail::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(truth.sample(rng));
  return xs;
}

void BM_FitFamily(benchmark::State& state, hpcfail::dist::Family family) {
  const auto xs = weibull_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hpcfail::dist::fit(family, xs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size()));
}

void BM_FitAllStandard(benchmark::State& state) {
  const auto xs = weibull_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hpcfail::dist::fit_report(xs, hpcfail::dist::standard_families()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size()));
}

// The engine fit_report replaced: one fully independent fit() call per
// family on the same sample (per-family sort, per-family reductions,
// per-family KS scan). Dividing its items/sec into BM_FitAllStandard's
// gives the fused-engine speedup at that sample size.
void BM_FitPerFamilyStandard(benchmark::State& state) {
  const auto xs = weibull_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (const hpcfail::dist::Family family :
         hpcfail::dist::standard_families()) {
      try {
        benchmark::DoNotOptimize(hpcfail::dist::fit(family, xs));
      } catch (const hpcfail::Error&) {
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size()));
}

// The per-node batch shape of the paper's Fig 6 sweep: range(0) samples
// of range(1) points each, fitted through fit_report_many on one thread.
void BM_FitReportManyNodes(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto points = static_cast<std::size_t>(state.range(1));
  std::vector<std::vector<double>> samples;
  samples.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    samples.push_back(weibull_sample(points, 7 + i));
  }
  hpcfail::set_parallelism(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hpcfail::dist::fit_report_many(
        samples, hpcfail::dist::standard_families()));
  }
  hpcfail::set_parallelism(0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nodes * points));
}

}  // namespace

BENCHMARK_CAPTURE(BM_FitFamily, exponential,
                  hpcfail::dist::Family::exponential)
    ->Arg(1000)->Arg(10000);
BENCHMARK_CAPTURE(BM_FitFamily, weibull, hpcfail::dist::Family::weibull)
    ->Arg(1000)->Arg(10000);
BENCHMARK_CAPTURE(BM_FitFamily, gamma, hpcfail::dist::Family::gamma)
    ->Arg(1000)->Arg(10000);
BENCHMARK_CAPTURE(BM_FitFamily, lognormal,
                  hpcfail::dist::Family::lognormal)
    ->Arg(1000)->Arg(10000);
BENCHMARK(BM_FitAllStandard)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_FitPerFamilyStandard)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_FitReportManyNodes)->Args({256, 200})->Args({64, 2000});

BENCHMARK_MAIN();
