// Indexed vs legacy dataset extraction at growing trace sizes, plus the
// PR6 columnar-pipeline sweep.
//
// Default mode: the DatasetIndex exists for one reason: the copying
// accessors rescan the whole trace per query, and the per-node Fig 6
// sweep rescanned it once *per node* (O(records x nodes)). This bench
// times both paths on synthetic traces of 10k, 100k, and 1M records and
// reports the speedups, as JSON to the output path given as argv[1]
// (stdout when omitted). The legacy path is reimplemented inline because
// the copying FailureDataset accessors are gone from the library.
//
// `--pr6 [OUT.json]` runs the columnar end-to-end sweep instead: trace
// generation throughput at paper scale and at a 10M-record scale
// (realistic and stress shapes), SoA-vs-AoS scan bandwidth on the
// 10M-record trace, indexed extraction at 10M records, and batched
// per-node fitting (legacy per-family fit() calls vs the fused
// fit_report engine) on a ~1M-record trace. The JSON it writes is
// committed as BENCH_PR6.json and gated in CI by
// tools/check_bench_floor.py.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/time.hpp"
#include "dist/exponential.hpp"
#include "dist/fit.hpp"
#include "dist/gamma.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"
#include "obs/metrics.hpp"
#include "stats/ks.hpp"
#include "stats/solver.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"
#include "trace/catalog.hpp"
#include "trace/dataset.hpp"
#include "trace/index.hpp"

namespace {

using namespace hpcfail;

constexpr int kSystems = 4;
constexpr int kNodesPerSystem = 256;
constexpr int kTargetSystem = 2;

trace::FailureDataset synthetic_dataset(std::size_t records) {
  // Uniform spread over systems/nodes/time; the index cares about sizes
  // and cardinalities, not realism.
  Rng rng(2024);
  std::vector<trace::FailureRecord> out;
  out.reserve(records);
  const Seconds t0 = to_epoch(1996, 1, 1);
  for (std::size_t i = 0; i < records; ++i) {
    trace::FailureRecord r;
    r.system_id = 1 + static_cast<int>(rng.uniform_index(kSystems));
    r.node_id = static_cast<int>(rng.uniform_index(kNodesPerSystem));
    r.start = t0 + static_cast<Seconds>(rng.uniform_index(9ULL * 365 * 86400));
    r.end = r.start + 60 + static_cast<Seconds>(rng.uniform_index(86400));
    r.workload = trace::Workload::compute;
    r.detail = trace::DetailCause::memory_dimm;
    r.cause = trace::RootCause::hardware;
    out.push_back(r);
  }
  return trace::FailureDataset(std::move(out));
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The pre-index implementations, verbatim in spirit: every query is a
// full scan of records().

std::vector<trace::FailureRecord> legacy_for_system(
    const trace::FailureDataset& ds, int system_id) {
  std::vector<trace::FailureRecord> out;
  for (const trace::FailureRecord& r : ds.records()) {
    if (r.system_id == system_id) out.push_back(r);
  }
  return out;
}

std::vector<double> legacy_node_interarrivals(const trace::FailureDataset& ds,
                                              int system_id, int node_id) {
  std::vector<double> gaps;
  Seconds prev = 0;
  bool first = true;
  for (const trace::FailureRecord& r : ds.records()) {
    if (r.system_id != system_id || r.node_id != node_id) continue;
    if (!first) gaps.push_back(static_cast<double>(r.start - prev));
    prev = r.start;
    first = false;
  }
  return gaps;
}

std::map<int, std::size_t> legacy_failures_per_node(
    const trace::FailureDataset& ds, int system_id) {
  std::map<int, std::size_t> counts;
  for (const trace::FailureRecord& r : ds.records()) {
    if (r.system_id == system_id) ++counts[r.node_id];
  }
  return counts;
}

struct Row {
  std::size_t records = 0;
  double index_build_ms = 0.0;
  double legacy_per_node_ms = 0.0;
  double indexed_per_node_ms = 0.0;
  double legacy_for_system_ms = 0.0;
  double indexed_for_system_ms = 0.0;
  double per_node_speedup = 0.0;
  double for_system_speedup = 0.0;
};

Row run_size(std::size_t records) {
  Row row;
  row.records = records;
  const trace::FailureDataset ds = synthetic_dataset(records);

  auto t = std::chrono::steady_clock::now();
  (void)ds.index();  // one-time build, timed separately
  row.index_build_ms = ms_since(t);

  // Fig 6 per-node sweep, legacy: one full scan per node.
  t = std::chrono::steady_clock::now();
  std::size_t legacy_gaps = 0;
  for (const auto& [node, count] :
       legacy_failures_per_node(ds, kTargetSystem)) {
    legacy_gaps += legacy_node_interarrivals(ds, kTargetSystem, node).size();
  }
  row.legacy_per_node_ms = ms_since(t);

  // Same sweep through the grouped extractor.
  t = std::chrono::steady_clock::now();
  std::size_t indexed_gaps = 0;
  for (const trace::NodeInterarrivalGroup& g :
       ds.view().for_system(kTargetSystem).node_interarrival_groups()) {
    indexed_gaps += g.gaps_seconds.size();
  }
  row.indexed_per_node_ms = ms_since(t);
  if (legacy_gaps != indexed_gaps) {
    throw LogicError("extraction mismatch: legacy " +
                     std::to_string(legacy_gaps) + " vs indexed " +
                     std::to_string(indexed_gaps));
  }

  // Per-system scoping, 64 queries each way.
  constexpr int kQueries = 64;
  t = std::chrono::steady_clock::now();
  std::size_t legacy_total = 0;
  for (int q = 0; q < kQueries; ++q) {
    legacy_total +=
        legacy_for_system(ds, 1 + q % kSystems).size();
  }
  row.legacy_for_system_ms = ms_since(t);

  t = std::chrono::steady_clock::now();
  std::size_t indexed_total = 0;
  for (int q = 0; q < kQueries; ++q) {
    indexed_total += ds.view().for_system(1 + q % kSystems).size();
  }
  row.indexed_for_system_ms = ms_since(t);
  if (legacy_total != indexed_total) {
    throw LogicError("for_system mismatch");
  }

  row.per_node_speedup =
      row.indexed_per_node_ms > 0.0
          ? row.legacy_per_node_ms / row.indexed_per_node_ms
          : 0.0;
  row.for_system_speedup =
      row.indexed_for_system_ms > 0.0
          ? row.legacy_for_system_ms / row.indexed_for_system_ms
          : 0.0;
  return row;
}

void write_json(std::ostream& out, const std::vector<Row>& rows) {
  out << "{\n  \"benchmark\": \"dataset_index_vs_legacy\",\n"
      << "  \"target_system_nodes\": " << kNodesPerSystem << ",\n"
      << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"records\": " << r.records
        << ", \"index_build_ms\": " << r.index_build_ms
        << ", \"per_node_legacy_ms\": " << r.legacy_per_node_ms
        << ", \"per_node_indexed_ms\": " << r.indexed_per_node_ms
        << ", \"per_node_speedup\": " << r.per_node_speedup
        << ", \"for_system_legacy_ms\": " << r.legacy_for_system_ms
        << ", \"for_system_indexed_ms\": " << r.indexed_for_system_ms
        << ", \"for_system_speedup\": " << r.for_system_speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// ---------------------------------------------------------------------
// PR6 columnar-pipeline sweep.

// LANL scenario with every system's failure volume scaled up. The
// "stress" shape (unit Weibull, no eras/bursts) isolates the storage and
// merge pipeline from the transcendental sampling cost; "realistic"
// keeps the calibrated paper shape (pow() per gap, era mixtures).
synth::ScenarioConfig scaled_scenario(double scale, bool stress) {
  synth::ScenarioConfig cfg = synth::lanl_scenario(2024);
  for (auto& s : cfg.systems) {
    s.failures_per_year *= scale;
    if (stress) {
      s.interarrival_weibull_shape = 1.0;
      s.early_era_end = 0;
      s.early_burst_probability = 0.0;
      s.late_burst_probability = 0.0;
    }
  }
  return cfg;
}

struct GenRow {
  std::string profile;
  double scale = 0.0;
  std::size_t records = 0;
  double seconds = 0.0;
  double records_per_sec = 0.0;       ///< wall-clock, incl. validation
  double gauge_records_per_sec = 0.0; ///< the generator's own obs gauge
};

GenRow run_generation(const std::string& profile, double scale, bool stress,
                      trace::FailureDataset* keep) {
  GenRow row;
  row.profile = profile;
  row.scale = scale;
  const synth::TraceGenerator gen(trace::SystemCatalog::lanl(),
                                  scaled_scenario(scale, stress));
  const auto t = std::chrono::steady_clock::now();
  trace::FailureDataset ds = gen.generate();
  row.seconds = ms_since(t) / 1e3;
  row.records = ds.size();
  row.records_per_sec = static_cast<double>(row.records) / row.seconds;
  row.gauge_records_per_sec =
      obs::registry().gauge("synth.generate.records_per_sec").value();
  if (keep != nullptr) *keep = std::move(ds);
  return row;
}

struct ScanRow {
  std::size_t records = 0;
  double soa_ms = 0.0;  ///< downtime sum over the start/end columns
  double aos_ms = 0.0;  ///< same sum over pre-materialized AoS records
  double speedup = 0.0;
  std::size_t column_bytes = 0;  ///< ColumnStore heap footprint
  std::size_t aos_bytes = 0;     ///< sizeof(FailureRecord) * records
};

ScanRow run_scan(const trace::FailureDataset& ds) {
  ScanRow row;
  row.records = ds.size();
  row.column_bytes = ds.columns().bytes();
  const std::vector<trace::FailureRecord> aos = ds.records().to_records();
  row.aos_bytes = aos.size() * sizeof(trace::FailureRecord);

  // The analyzers' common pattern: one or two fields of every record.
  // SoA touches 16 bytes per record, AoS strides the whole struct.
  std::int64_t soa_sum = 0;
  std::int64_t aos_sum = 0;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    soa_sum = 0;
    const auto starts = ds.records().starts();
    const auto ends = ds.records().ends();
    auto t = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < starts.size(); ++i) {
      soa_sum += ends[i] - starts[i];
    }
    const double soa = ms_since(t);
    row.soa_ms = rep == 0 ? soa : std::min(row.soa_ms, soa);

    aos_sum = 0;
    t = std::chrono::steady_clock::now();
    for (const trace::FailureRecord& r : aos) {
      aos_sum += r.end - r.start;
    }
    const double aos_t = ms_since(t);
    row.aos_ms = rep == 0 ? aos_t : std::min(row.aos_ms, aos_t);
  }
  if (soa_sum != aos_sum) {
    throw LogicError("scan mismatch: SoA downtime sum != AoS downtime sum");
  }
  row.speedup = row.soa_ms > 0.0 ? row.aos_ms / row.soa_ms : 0.0;
  return row;
}

struct ExtractRow {
  std::size_t records = 0;
  double index_build_ms = 0.0;
  double per_node_ms = 0.0;  ///< grouped interarrival sweep, all systems
  double per_node_records_per_sec = 0.0;
  std::size_t gaps = 0;
};

ExtractRow run_extract(const trace::FailureDataset& ds) {
  ExtractRow row;
  row.records = ds.size();
  auto t = std::chrono::steady_clock::now();
  (void)ds.index();
  row.index_build_ms = ms_since(t);

  t = std::chrono::steady_clock::now();
  for (const int system : ds.system_ids()) {
    for (const trace::NodeInterarrivalGroup& g :
         ds.view().for_system(system).node_interarrival_groups()) {
      row.gaps += g.gaps_seconds.size();
    }
  }
  row.per_node_ms = ms_since(t);
  row.per_node_records_per_sec =
      static_cast<double>(row.records) / (row.per_node_ms / 1e3);
  return row;
}

struct FitRow {
  std::size_t records = 0;  ///< trace size the samples came from
  std::size_t samples = 0;  ///< per-node samples fitted
  std::size_t points = 0;   ///< total observations across samples
  double seed_seconds = 0.0;
  double legacy_seconds = 0.0;
  double fused_seconds = 0.0;
  double seed_records_per_sec = 0.0;
  double legacy_records_per_sec = 0.0;
  double fused_records_per_sec = 0.0;
  double speedup_vs_seed = 0.0;
  double speedup = 0.0;  ///< fused vs per-family fit() calls
};

// The original fitting engine, reimplemented verbatim from the repo's
// seed so the sweep can still measure against it: the weibull solver
// re-takes every log on every Newton pass (and evaluates score and slope
// as two separate passes), and every family's KS runs as a
// std::function-dispatched full scan over a freshly copied-and-sorted
// sample. The gamma/lognormal/exponential span fits are unchanged from
// the seed, so the library entry points stand in for them.
dist::FitResult seed_fit(dist::Family family, std::span<const double> xs,
                         double floor_at) {
  dist::FitResult result;
  result.family = family;
  switch (family) {
    case dist::Family::exponential:
      result.model = std::make_unique<dist::Exponential>(
          dist::Exponential::fit_mle(xs));
      break;
    case dist::Family::weibull: {
      std::vector<double> data(xs.begin(), xs.end());
      double mean_log = 0.0;
      for (double& v : data) {
        if (v < floor_at) v = floor_at;
        mean_log += std::log(v);
      }
      mean_log /= static_cast<double>(data.size());
      bool all_equal = true;
      for (const double v : data) {
        if (v != data.front()) {
          all_equal = false;
          break;
        }
      }
      if (all_equal) {
        throw FitError("weibull fit is degenerate on a constant sample");
      }
      const auto score_and_slope = [&](double k, double& slope) {
        double sw = 0.0;
        double swl = 0.0;
        double swl2 = 0.0;
        for (const double v : data) {
          const double lx = std::log(v);
          const double w = std::exp(k * (lx - mean_log));
          sw += w;
          swl += w * lx;
          swl2 += w * lx * lx;
        }
        const double ratio = swl / sw;
        slope = (swl2 / sw - ratio * ratio) + 1.0 / (k * k);
        return ratio - 1.0 / k - mean_log;
      };
      const auto score = [&](double k) {
        double unused;
        return score_and_slope(k, unused);
      };
      const auto slope_fn = [&](double k) {
        double slope;
        score_and_slope(k, slope);
        return slope;
      };
      double lo = 1e-3;
      double hi = 10.0;
      stats::expand_bracket(score, lo, hi, /*positive_only=*/true);
      const double k = stats::newton_bracketed(score, slope_fn, lo, hi);
      double sw = 0.0;
      for (const double v : data) {
        sw += std::exp(k * (std::log(v) - mean_log));
      }
      const double scale = std::exp(
          mean_log + std::log(sw / static_cast<double>(data.size())) / k);
      result.model = std::make_unique<dist::Weibull>(k, scale);
      break;
    }
    case dist::Family::gamma:
      result.model = std::make_unique<dist::GammaDist>(
          dist::GammaDist::fit_mle(xs, floor_at));
      break;
    case dist::Family::lognormal:
      result.model = std::make_unique<dist::LogNormal>(
          dist::LogNormal::fit_mle(xs, floor_at));
      break;
    default:
      throw InvalidArgument("seed_fit covers the four standard families");
  }
  std::vector<double> eval(xs.begin(), xs.end());
  for (double& v : eval) {
    if (v < floor_at) v = floor_at;
  }
  result.nll = -result.model->log_likelihood(eval);
  result.aic = 2.0 * dist::parameter_count(family) + 2.0 * result.nll;
  const dist::Distribution& model = *result.model;
  result.ks = stats::ks_statistic(
      eval, [&model](double x) { return model.cdf(x); });
  result.ks_pvalue = stats::ks_pvalue(result.ks, eval.size());
  return result;
}

// Fitting throughput on a set of interarrival samples. Three engines:
// "seed" is the original engine verbatim (above); "legacy" is one
// independent in-tree fit() call per family, each re-sorting the sample,
// recomputing the log reductions, and running its KS scan in isolation;
// "fused" is fit_report_many, which shares one SuffStats pass and one
// sorted copy across families. All run on one thread so the ratios are
// algorithmic, not scheduling.
FitRow run_fitting(std::vector<std::vector<double>> samples,
                   std::size_t trace_records) {
  FitRow row;
  row.records = trace_records;
  constexpr double kFloorSeconds = 1.0;  // second-resolution interarrivals
  row.samples = samples.size();
  for (const auto& xs : samples) row.points += xs.size();

  set_parallelism(1);
  auto t = std::chrono::steady_clock::now();
  std::size_t seed_ok = 0;
  for (const auto& xs : samples) {
    for (const dist::Family family : dist::standard_families()) {
      try {
        const dist::FitResult r = seed_fit(family, xs, kFloorSeconds);
        seed_ok += r.model != nullptr ? 1 : 0;
      } catch (const Error&) {
      }
    }
  }
  row.seed_seconds = ms_since(t) / 1e3;

  t = std::chrono::steady_clock::now();
  std::size_t legacy_ok = 0;
  for (const auto& xs : samples) {
    for (const dist::Family family : dist::standard_families()) {
      try {
        const dist::FitResult r = dist::fit(family, xs, kFloorSeconds);
        legacy_ok += r.model != nullptr ? 1 : 0;
      } catch (const Error&) {
      }
    }
  }
  row.legacy_seconds = ms_since(t) / 1e3;

  t = std::chrono::steady_clock::now();
  const std::vector<dist::FitReport> reports =
      dist::fit_report_many(samples, dist::standard_families(), kFloorSeconds);
  row.fused_seconds = ms_since(t) / 1e3;
  set_parallelism(0);

  std::size_t fused_ok = 0;
  for (const dist::FitReport& r : reports) fused_ok += r.size();
  if (legacy_ok != fused_ok || seed_ok != fused_ok) {
    throw LogicError("fit count mismatch: seed " + std::to_string(seed_ok) +
                     " / legacy " + std::to_string(legacy_ok) + " vs fused " +
                     std::to_string(fused_ok));
  }

  row.seed_records_per_sec =
      static_cast<double>(row.points) / row.seed_seconds;
  row.legacy_records_per_sec =
      static_cast<double>(row.points) / row.legacy_seconds;
  row.fused_records_per_sec =
      static_cast<double>(row.points) / row.fused_seconds;
  row.speedup_vs_seed =
      row.fused_seconds > 0.0 ? row.seed_seconds / row.fused_seconds : 0.0;
  row.speedup =
      row.fused_seconds > 0.0 ? row.legacy_seconds / row.fused_seconds : 0.0;
  return row;
}

void write_fit_row(std::ostream& out, const FitRow& fit) {
  out << "{\"records\": " << fit.records << ", \"samples\": " << fit.samples
      << ", \"points\": " << fit.points
      << ", \"seed_seconds\": " << fit.seed_seconds
      << ", \"legacy_seconds\": " << fit.legacy_seconds
      << ", \"fused_seconds\": " << fit.fused_seconds
      << ", \"seed_records_per_sec\": " << fit.seed_records_per_sec
      << ", \"legacy_records_per_sec\": " << fit.legacy_records_per_sec
      << ", \"fused_records_per_sec\": " << fit.fused_records_per_sec
      << ", \"speedup_vs_seed\": " << fit.speedup_vs_seed
      << ", \"speedup_vs_per_family\": " << fit.speedup << "}";
}

void write_pr6_json(std::ostream& out, const std::vector<GenRow>& gens,
                    const ScanRow& scan, const ExtractRow& extract,
                    const FitRow& fit, const FitRow& fit_pooled) {
  out << "{\n  \"benchmark\": \"pr6_columnar_pipeline\",\n"
      << "  \"generation\": [\n";
  for (std::size_t i = 0; i < gens.size(); ++i) {
    const GenRow& g = gens[i];
    out << "    {\"profile\": \"" << g.profile << "\", \"scale\": " << g.scale
        << ", \"records\": " << g.records << ", \"seconds\": " << g.seconds
        << ", \"records_per_sec\": " << g.records_per_sec
        << ", \"gauge_records_per_sec\": " << g.gauge_records_per_sec << "}"
        << (i + 1 < gens.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"scan\": {\"records\": " << scan.records
      << ", \"soa_ms\": " << scan.soa_ms << ", \"aos_ms\": " << scan.aos_ms
      << ", \"speedup\": " << scan.speedup
      << ", \"column_bytes\": " << scan.column_bytes
      << ", \"aos_bytes\": " << scan.aos_bytes << "},\n"
      << "  \"extraction\": {\"records\": " << extract.records
      << ", \"index_build_ms\": " << extract.index_build_ms
      << ", \"per_node_ms\": " << extract.per_node_ms
      << ", \"per_node_records_per_sec\": " << extract.per_node_records_per_sec
      << ", \"gaps\": " << extract.gaps << "},\n"
      << "  \"fitting\": {\n    \"per_node\": ";
  write_fit_row(out, fit);
  out << ",\n    \"pooled\": ";
  write_fit_row(out, fit_pooled);
  out << "\n  }\n}\n";
}

int run_pr6(const char* out_path) {
  std::vector<GenRow> gens;
  gens.push_back(run_generation("realistic", 1.0, false, nullptr));
  std::cerr << "gen scale 1 realistic: " << gens.back().records << " records, "
            << gens.back().records_per_sec / 1e6 << " M rec/s\n";
  gens.push_back(run_generation("realistic", 390.0, false, nullptr));
  std::cerr << "gen scale 390 realistic: " << gens.back().records
            << " records, " << gens.back().records_per_sec / 1e6
            << " M rec/s\n";
  trace::FailureDataset big;
  gens.push_back(run_generation("stress", 390.0, true, &big));
  std::cerr << "gen scale 390 stress: " << gens.back().records << " records, "
            << gens.back().records_per_sec / 1e6 << " M rec/s\n";

  const ScanRow scan = run_scan(big);
  std::cerr << "scan " << scan.records << " records: SoA " << scan.soa_ms
            << " ms vs AoS " << scan.aos_ms << " ms (" << scan.speedup
            << "x)\n";
  const ExtractRow extract = run_extract(big);
  std::cerr << "extract " << extract.records << " records: index "
            << extract.index_build_ms << " ms, per-node sweep "
            << extract.per_node_ms << " ms\n";
  big = trace::FailureDataset();  // release ~1 GB before the fitting trace

  trace::FailureDataset mid;
  (void)run_generation("realistic", 39.0, false, &mid);

  // The paper's two views of the failure process at ~1M records: the
  // per-node Fig 6 sweep (thousands of small samples) and the pooled
  // system-wide interarrival fit (a few ~100k-point samples, where the
  // adaptive KS pruning dominates).
  std::vector<std::vector<double>> per_node;
  std::vector<std::vector<double>> pooled;
  for (const int system : mid.system_ids()) {
    const trace::DatasetView view = mid.view().for_system(system);
    for (const trace::NodeInterarrivalGroup& g :
         view.node_interarrival_groups()) {
      if (g.gaps_seconds.size() >= 2) per_node.push_back(g.gaps_seconds);
    }
    std::vector<double> gaps = view.system_interarrivals();
    if (gaps.size() >= 2) pooled.push_back(std::move(gaps));
  }

  const FitRow fit = run_fitting(std::move(per_node), mid.size());
  std::cerr << "fit per-node: " << fit.points << " points over " << fit.samples
            << " nodes: seed " << fit.seed_seconds << " s, per-family "
            << fit.legacy_seconds << " s, fused " << fit.fused_seconds
            << " s (" << fit.speedup_vs_seed << "x vs seed)\n";
  const FitRow fit_pooled = run_fitting(std::move(pooled), mid.size());
  std::cerr << "fit pooled: " << fit_pooled.points << " points over "
            << fit_pooled.samples << " systems: seed "
            << fit_pooled.seed_seconds << " s, per-family "
            << fit_pooled.legacy_seconds << " s, fused "
            << fit_pooled.fused_seconds << " s ("
            << fit_pooled.speedup_vs_seed << "x vs seed)\n";

  if (out_path != nullptr) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    write_pr6_json(out, gens, scan, extract, fit, fit_pooled);
  } else {
    write_pr6_json(std::cout, gens, scan, extract, fit, fit_pooled);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--pr6") {
    return run_pr6(argc > 2 ? argv[2] : nullptr);
  }
  std::vector<Row> rows;
  for (const std::size_t size : {10'000ULL, 100'000ULL, 1'000'000ULL}) {
    rows.push_back(run_size(size));
    std::cerr << size << " records: per-node sweep "
              << rows.back().legacy_per_node_ms << " ms legacy vs "
              << rows.back().indexed_per_node_ms << " ms indexed ("
              << rows.back().per_node_speedup << "x)\n";
  }
  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    write_json(out, rows);
  } else {
    write_json(std::cout, rows);
  }
  return 0;
}
