// Indexed vs legacy dataset extraction at growing trace sizes.
//
// The DatasetIndex exists for one reason: the copying accessors rescan
// the whole trace per query, and the per-node Fig 6 sweep rescanned it
// once *per node* (O(records x nodes)). This bench times both paths on
// synthetic traces of 10k, 100k, and 1M records and reports the
// speedups, as JSON to the output path given as argv[1] (stdout when
// omitted). The legacy path is reimplemented inline because the
// copying FailureDataset accessors are gone from the library.
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "trace/dataset.hpp"
#include "trace/index.hpp"

namespace {

using namespace hpcfail;

constexpr int kSystems = 4;
constexpr int kNodesPerSystem = 256;
constexpr int kTargetSystem = 2;

trace::FailureDataset synthetic_dataset(std::size_t records) {
  // Uniform spread over systems/nodes/time; the index cares about sizes
  // and cardinalities, not realism.
  Rng rng(2024);
  std::vector<trace::FailureRecord> out;
  out.reserve(records);
  const Seconds t0 = to_epoch(1996, 1, 1);
  for (std::size_t i = 0; i < records; ++i) {
    trace::FailureRecord r;
    r.system_id = 1 + static_cast<int>(rng.uniform_index(kSystems));
    r.node_id = static_cast<int>(rng.uniform_index(kNodesPerSystem));
    r.start = t0 + static_cast<Seconds>(rng.uniform_index(9ULL * 365 * 86400));
    r.end = r.start + 60 + static_cast<Seconds>(rng.uniform_index(86400));
    r.workload = trace::Workload::compute;
    r.detail = trace::DetailCause::memory_dimm;
    r.cause = trace::RootCause::hardware;
    out.push_back(r);
  }
  return trace::FailureDataset(std::move(out));
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The pre-index implementations, verbatim in spirit: every query is a
// full scan of records().

std::vector<trace::FailureRecord> legacy_for_system(
    const trace::FailureDataset& ds, int system_id) {
  std::vector<trace::FailureRecord> out;
  for (const trace::FailureRecord& r : ds.records()) {
    if (r.system_id == system_id) out.push_back(r);
  }
  return out;
}

std::vector<double> legacy_node_interarrivals(const trace::FailureDataset& ds,
                                              int system_id, int node_id) {
  std::vector<double> gaps;
  Seconds prev = 0;
  bool first = true;
  for (const trace::FailureRecord& r : ds.records()) {
    if (r.system_id != system_id || r.node_id != node_id) continue;
    if (!first) gaps.push_back(static_cast<double>(r.start - prev));
    prev = r.start;
    first = false;
  }
  return gaps;
}

std::map<int, std::size_t> legacy_failures_per_node(
    const trace::FailureDataset& ds, int system_id) {
  std::map<int, std::size_t> counts;
  for (const trace::FailureRecord& r : ds.records()) {
    if (r.system_id == system_id) ++counts[r.node_id];
  }
  return counts;
}

struct Row {
  std::size_t records = 0;
  double index_build_ms = 0.0;
  double legacy_per_node_ms = 0.0;
  double indexed_per_node_ms = 0.0;
  double legacy_for_system_ms = 0.0;
  double indexed_for_system_ms = 0.0;
  double per_node_speedup = 0.0;
  double for_system_speedup = 0.0;
};

Row run_size(std::size_t records) {
  Row row;
  row.records = records;
  const trace::FailureDataset ds = synthetic_dataset(records);

  auto t = std::chrono::steady_clock::now();
  (void)ds.index();  // one-time build, timed separately
  row.index_build_ms = ms_since(t);

  // Fig 6 per-node sweep, legacy: one full scan per node.
  t = std::chrono::steady_clock::now();
  std::size_t legacy_gaps = 0;
  for (const auto& [node, count] :
       legacy_failures_per_node(ds, kTargetSystem)) {
    legacy_gaps += legacy_node_interarrivals(ds, kTargetSystem, node).size();
  }
  row.legacy_per_node_ms = ms_since(t);

  // Same sweep through the grouped extractor.
  t = std::chrono::steady_clock::now();
  std::size_t indexed_gaps = 0;
  for (const trace::NodeInterarrivalGroup& g :
       ds.view().for_system(kTargetSystem).node_interarrival_groups()) {
    indexed_gaps += g.gaps_seconds.size();
  }
  row.indexed_per_node_ms = ms_since(t);
  if (legacy_gaps != indexed_gaps) {
    throw LogicError("extraction mismatch: legacy " +
                     std::to_string(legacy_gaps) + " vs indexed " +
                     std::to_string(indexed_gaps));
  }

  // Per-system scoping, 64 queries each way.
  constexpr int kQueries = 64;
  t = std::chrono::steady_clock::now();
  std::size_t legacy_total = 0;
  for (int q = 0; q < kQueries; ++q) {
    legacy_total +=
        legacy_for_system(ds, 1 + q % kSystems).size();
  }
  row.legacy_for_system_ms = ms_since(t);

  t = std::chrono::steady_clock::now();
  std::size_t indexed_total = 0;
  for (int q = 0; q < kQueries; ++q) {
    indexed_total += ds.view().for_system(1 + q % kSystems).size();
  }
  row.indexed_for_system_ms = ms_since(t);
  if (legacy_total != indexed_total) {
    throw LogicError("for_system mismatch");
  }

  row.per_node_speedup =
      row.indexed_per_node_ms > 0.0
          ? row.legacy_per_node_ms / row.indexed_per_node_ms
          : 0.0;
  row.for_system_speedup =
      row.indexed_for_system_ms > 0.0
          ? row.legacy_for_system_ms / row.indexed_for_system_ms
          : 0.0;
  return row;
}

void write_json(std::ostream& out, const std::vector<Row>& rows) {
  out << "{\n  \"benchmark\": \"dataset_index_vs_legacy\",\n"
      << "  \"target_system_nodes\": " << kNodesPerSystem << ",\n"
      << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"records\": " << r.records
        << ", \"index_build_ms\": " << r.index_build_ms
        << ", \"per_node_legacy_ms\": " << r.legacy_per_node_ms
        << ", \"per_node_indexed_ms\": " << r.indexed_per_node_ms
        << ", \"per_node_speedup\": " << r.per_node_speedup
        << ", \"for_system_legacy_ms\": " << r.legacy_for_system_ms
        << ", \"for_system_indexed_ms\": " << r.indexed_for_system_ms
        << ", \"for_system_speedup\": " << r.for_system_speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Row> rows;
  for (const std::size_t size : {10'000ULL, 100'000ULL, 1'000'000ULL}) {
    rows.push_back(run_size(size));
    std::cerr << size << " records: per-node sweep "
              << rows.back().legacy_per_node_ms << " ms legacy vs "
              << rows.back().indexed_per_node_ms << " ms indexed ("
              << rows.back().per_node_speedup << "x)\n";
  }
  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    write_json(out, rows);
  } else {
    write_json(std::cout, rows);
  }
  return 0;
}
