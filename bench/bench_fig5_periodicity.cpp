// Figure 5 reproduction: failures by hour of the day and by day of the
// week across all systems.
#include <iostream>

#include "common/strings.hpp"
#include "analysis/periodicity.hpp"
#include "report/ascii_chart.hpp"
#include "synth/generator.hpp"

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const analysis::PeriodicityReport report =
      analysis::periodicity(dataset);

  std::cout << "=== Fig 5 (left): failures by hour of day ===\n";
  std::vector<std::pair<std::string, double>> hours;
  for (int h = 0; h < 24; ++h) {
    char label[8];
    std::snprintf(label, sizeof label, "%02d:00", h);
    hours.emplace_back(label,
                       report.by_hour[static_cast<std::size_t>(h)]);
  }
  report::bar_chart(std::cout, "", hours);

  std::cout << "\n=== Fig 5 (right): failures by day of week ===\n";
  static const char* kDays[] = {"Sun", "Mon", "Tue", "Wed",
                                "Thu", "Fri", "Sat"};
  std::vector<std::pair<std::string, double>> days;
  for (int d = 0; d < 7; ++d) {
    days.emplace_back(kDays[d],
                      report.by_weekday[static_cast<std::size_t>(d)]);
  }
  report::bar_chart(std::cout, "", days);

  std::cout << "\nmeasured: day/night ratio "
            << format_double(report.day_night_ratio, 3)
            << ", weekday/weekend ratio "
            << format_double(report.weekday_weekend_ratio, 3) << "\n";
  std::cout << "paper reports: peak-hour rate ~2x the overnight trough; "
               "weekday rate\nnearly 2x the weekend rate -- failure rate "
               "tracks workload intensity.\nNo Monday spike: the pattern "
               "is not an artifact of delayed detection.\n";
  return 0;
}
