// Figure 7 reproduction: the empirical CDF of repair times with the four
// standard MLE fits (a), and the mean (b) and median (c) repair time per
// system.
#include <iostream>

#include "analysis/repair.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "stats/qq.hpp"
#include "synth/generator.hpp"

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const analysis::RepairReport report = analysis::repair_analysis(
      dataset, trace::SystemCatalog::lanl());

  std::cout << "=== Fig 7(a): CDF of repair times (minutes) + fits ===\n";
  const stats::Ecdf ecdf(dataset.repair_times_minutes());
  std::vector<report::CdfSeries> series;
  report::CdfSeries empirical;
  empirical.name = "data";
  for (const auto& [x, p] : ecdf.step_points()) {
    empirical.points.emplace_back(x, p);
  }
  series.push_back(empirical);
  for (const auto& fit : report.fits) {
    const auto& model = *fit.model;
    series.push_back(report::sample_cdf(
        model.name(), [&model](double x) { return model.cdf(x); },
        std::max(0.5, ecdf.quantile(0.02)), ecdf.max()));
  }
  report::cdf_plot(std::cout, "", series);

  report::TextTable fits(
      {"model (best first)", "negLL", "KS", "max QQ dev (5-95%)"});
  const auto repair_minutes = dataset.repair_times_minutes();
  for (const auto& fit : report.fits) {
    const auto& model = *fit.model;
    const double qq_dev = stats::qq_max_relative_deviation(
        repair_minutes, [&model](double p) { return model.quantile(p); });
    fits.add_row(fit.model->describe(),
                 {fit.nll, fit.ks, qq_dev});
  }
  fits.render(std::cout);

  std::cout << "\n=== Fig 7(b): mean repair time per system (min) ===\n";
  std::vector<std::pair<std::string, double>> means;
  std::vector<std::pair<std::string, double>> medians;
  for (const analysis::RepairBySystem& s : report.by_system) {
    const std::string label =
        "sys " + std::to_string(s.system_id) + " (" + s.hw_type + ")";
    means.emplace_back(label, s.mean_minutes);
    medians.emplace_back(label, s.median_minutes);
  }
  report::bar_chart(std::cout, "", means);
  std::cout << "\n=== Fig 7(c): median repair time per system (min) ===\n";
  report::bar_chart(std::cout, "", medians);

  // Per-system fits (batched via dist::fit_report_many): the paper's lognormal
  // finding should hold system by system, not only in aggregate.
  std::cout << "\n=== best repair-time model per system ===\n";
  report::TextTable per_system({"system", "n", "best model"});
  for (const analysis::RepairBySystem& s : report.by_system) {
    per_system.add_row({std::to_string(s.system_id) + " (" + s.hw_type + ")",
                        std::to_string(s.failures),
                        s.fits.empty() ? "-" : s.fits.front().model->name()});
  }
  per_system.render(std::cout);

  std::cout << "\npaper reports: lognormal is the best repair-time model, "
               "exponential by\nfar the worst; mean repair ranges from "
               "under an hour to more than a day\nacross systems, "
               "clusters by hardware type, and is insensitive to system\n"
               "size (the largest type E systems are among the fastest to "
               "repair).\n";
  return 0;
}
