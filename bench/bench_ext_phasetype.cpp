// Extension: testing the paper's Section 3 remark that a phase-type
// distribution "would likely give a better fit" but isn't worth the extra
// degrees of freedom.
//
// We fit the simplest phase-type model -- a 2-phase hyperexponential via
// EM -- to the same time-between-failure samples as Fig 6 and compare it
// against the four standard families on negative log-likelihood and AIC
// (which charges for the third parameter).
#include <iostream>
#include <optional>

#include "analysis/interarrival.hpp"
#include "common/strings.hpp"
#include "dist/hyperexp.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"

namespace {

void compare(const hpcfail::trace::FailureDataset& dataset,
             const char* title, std::optional<int> node, bool early) {
  using namespace hpcfail;
  analysis::InterarrivalQuery query;
  query.system_id = 20;
  query.node_id = node;
  if (early) {
    query.to = to_epoch(2000, 1, 1);
  } else {
    query.from = to_epoch(2000, 1, 1);
  }
  const analysis::InterarrivalReport report =
      analysis::interarrival_analysis(dataset, query);

  // Fit H2 on the same floored sample the standard families used.
  std::vector<double> floored = report.gaps_seconds;
  for (double& g : floored) {
    if (g < 1.0) g = 1.0;
  }
  const dist::HyperExp h2 = dist::HyperExp::fit_em(floored, 1.0);
  const double h2_nll = -h2.log_likelihood(floored);
  const double h2_aic = 2.0 * 3 + 2.0 * h2_nll;  // three free parameters

  std::cout << title << " (" << report.gaps_seconds.size()
            << " intervals)\n";
  report::TextTable table({"model", "params", "negLL", "AIC"});
  for (const auto& fit : report.fits) {
    table.add_row(fit.model->describe(),
                  {static_cast<double>(dist::parameter_count(fit.family)),
                   fit.nll, fit.aic});
  }
  table.add_row(h2.describe(), {3.0, h2_nll, h2_aic});
  table.render(std::cout);
  const double best_standard = report.best().nll;
  std::cout << "H2 vs best standard family: negLL delta "
            << format_double(h2_nll - best_standard, 4) << " ("
            << (h2_nll < best_standard ? "H2 fits better"
                                       : "standard family wins")
            << ")\n\n";
}

}  // namespace

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  std::cout << "=== extension: is a phase-type (H2) fit worth a third "
               "parameter? ===\n\n";
  compare(dataset, "--- node 22 of system 20, 2000-2005 (Fig 6b data) ---",
          22, false);
  compare(dataset, "--- system-wide, system 20, 2000-2005 (Fig 6d) ---",
          std::nullopt, false);
  compare(dataset, "--- system-wide, system 20, 1996-1999 (Fig 6c) ---",
          std::nullopt, true);
  std::cout << "paper's position: simple one/two-parameter families "
               "suffice; extra\ndegrees of freedom are not needed. The "
               "AIC column is the test: when the\nWeibull/gamma AIC "
               "stays below H2's, the paper's parsimony holds.\n";
  return 0;
}
