// Figure 3 reproduction: failures per node of system 20 (a), and the CDF
// of per-node counts for compute-only nodes fitted with Poisson, normal,
// and lognormal distributions (b).
#include <iostream>

#include "common/strings.hpp"
#include "analysis/rates.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "synth/generator.hpp"

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const auto report = analysis::node_distribution(
      dataset, trace::SystemCatalog::lanl(), 20);

  std::cout << "=== Fig 3(a): failures per node, system 20 ===\n";
  std::vector<std::pair<std::string, double>> bars;
  for (const analysis::NodeCount& n : report.per_node) {
    std::string label = "node " + std::to_string(n.node_id);
    if (n.workload == trace::Workload::graphics) label += " *gfx*";
    bars.emplace_back(label, static_cast<double>(n.failures));
  }
  report::bar_chart(std::cout, "", bars, 40);
  std::cout << "\ngraphics nodes 21-23: "
            << format_double(report.graphics_node_fraction * 100.0, 3)
            << "% of nodes, "
            << format_double(report.graphics_failure_fraction * 100.0, 3)
            << "% of failures (paper: 6% of nodes, ~20% of failures)\n\n";

  std::cout << "=== Fig 3(b): CDF of failures per compute node + fits ===\n";
  const stats::Ecdf ecdf(report.compute_node_counts);
  std::vector<report::CdfSeries> series;
  report::CdfSeries empirical;
  empirical.name = "data";
  for (const auto& [x, p] : ecdf.step_points()) {
    empirical.points.emplace_back(x, p);
  }
  series.push_back(empirical);
  for (const auto& fit : report.count_fits) {
    const auto& model = *fit.model;
    series.push_back(report::sample_cdf(
        model.describe(), [&model](double x) { return model.cdf(x); },
        std::max(1.0, ecdf.min() * 0.8), ecdf.max() * 1.1,
        /*log_x=*/false));
  }
  report::cdf_plot(std::cout, "", series, /*log_x=*/false);

  std::cout << "\nfit ranking by negative log-likelihood:\n";
  report::TextTable table({"model", "negLL", "KS"});
  for (const auto& fit : report.count_fits) {
    table.add_row(fit.model->describe(), {fit.nll, fit.ks});
  }
  table.render(std::cout);
  std::cout << "paper reports: Poisson a poor fit (data overdispersed); "
               "normal and\nlognormal much better, visually and by "
               "negative log-likelihood.\n";
  return 0;
}
