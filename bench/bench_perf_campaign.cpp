// Campaign engine throughput: injected faults per second, single-core
// and at full parallelism, on a renewal-heavy grid sized so one run
// injects hundreds of faults.
//
// Writes a JSON summary to the output path given as argv[1] (stdout when
// omitted). The JSON is committed as BENCH_PR7.json and its single-core
// faults/sec number is gated in CI by tools/check_bench_floor.py with a
// floor set well below measured throughput (single-shot CI runs see
// 1.5x scheduling noise). The run also cross-checks that single-core and
// parallel executions produce bit-identical results — a throughput
// number for a nondeterministic campaign would be meaningless.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/campaign.hpp"
#include "sim/policy.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace hpcfail;

/// Dense renewal faults (per-node MTBF 4 h over 3 days) against a
/// long-lived workload: each run delivers a few hundred faults.
sim::CampaignSpec bench_spec(std::size_t runs_per_cell) {
  sim::CampaignSpec spec;
  sim::CampaignScenario scenario =
      sim::weibull_renewal_scenario(64, 4.0 * 3600.0, 3.0 * 86400.0);
  scenario.name = "bench-renewal";
  scenario.job_count = 96;
  spec.scenarios = {scenario};
  spec.policies = {sim::periodic_checkpoint_policy(3600.0)};
  spec.runs_per_cell = runs_per_cell;
  spec.seed = 1234;
  return spec;
}

struct Measurement {
  unsigned threads = 0;
  std::size_t runs = 0;
  std::uint64_t faults = 0;
  double seconds = 0.0;
  double faults_per_sec = 0.0;
  std::vector<sim::CampaignRunResult> results;
};

Measurement measure(const sim::Campaign& campaign, unsigned threads) {
  set_parallelism(threads);
  const auto start = std::chrono::steady_clock::now();
  sim::CampaignResult result = campaign.run();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  Measurement m;
  m.threads = threads;
  m.runs = result.runs.size();
  m.faults = result.total_faults_injected();
  m.seconds = wall.count();
  m.faults_per_sec = m.seconds > 0.0
                         ? static_cast<double>(m.faults) / m.seconds
                         : 0.0;
  m.results = std::move(result.runs);
  return m;
}

void write_measurement(std::ostream& out, const char* key,
                       const Measurement& m) {
  out << "  \"" << key << "\": {\n"
      << "    \"threads\": " << m.threads << ",\n"
      << "    \"runs\": " << m.runs << ",\n"
      << "    \"faults\": " << m.faults << ",\n"
      << "    \"seconds\": " << m.seconds << ",\n"
      << "    \"faults_per_sec\": " << m.faults_per_sec << "\n"
      << "  }";
}

void write_json(std::ostream& out, const Measurement& single,
                const Measurement& parallel, bool identical) {
  out << "{\n"
      << "  \"benchmark\": \"pr7_campaign\",\n"
      << "  \"threads_available\": " << hardware_parallelism() << ",\n";
  write_measurement(out, "single_core", single);
  out << ",\n";
  write_measurement(out, "parallel", parallel);
  out << ",\n"
      << "  \"parallel_speedup\": "
      << (single.seconds > 0.0 ? single.seconds / parallel.seconds : 0.0)
      << ",\n"
      << "  \"deterministic\": " << (identical ? "true" : "false") << "\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const sim::Campaign campaign(bench_spec(256));

  // Warm-up run so one-time allocator/pool costs don't land in the
  // single-core measurement.
  set_parallelism(0);
  (void)campaign.execute_run(0, 0);

  const Measurement single = measure(campaign, 1);
  const Measurement parallel = measure(campaign, hardware_parallelism());
  set_parallelism(0);
  const bool identical = single.results == parallel.results;

  if (!identical) {
    std::cerr << "FATAL: campaign results differ across thread counts\n";
    return 1;
  }

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    write_json(out, single, parallel, identical);
    std::cerr << "wrote " << argv[1] << " (single-core "
              << static_cast<long long>(single.faults_per_sec)
              << " faults/sec, parallel "
              << static_cast<long long>(parallel.faults_per_sec) << ")\n";
  } else {
    write_json(std::cout, single, parallel, identical);
  }
  return 0;
}
