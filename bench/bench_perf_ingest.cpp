// Streaming-ingest throughput.
//
// Default mode writes BENCH_PR8.json (gated in CI by
// tools/check_bench_floor.py --min-ingest-events-per-sec): the daemon's
// whole per-event hot path on one core, sockets excluded (they are
// kernel cost, not ours): line-protocol text in 64KB chunks ->
// LineSource framing/parsing -> LiveDataset::append (tail columns +
// live posting lists + amortized epoch seals) -> LiveAnalytics::observe
// (sliding repair/gap cells). That is exactly the work `hpcfail serve`
// does between recv() and the next poll round.
//
// `--pr9` mode writes BENCH_PR9.json (gated by
// --min-sharded-events-per-sec): the sharded variant of the same hot
// path. The stream is partitioned by the replay client's stable
// (system, node) connection hash, each partition is parsed and appended
// by its own thread into its own LiveDataset shard, and analytics
// observations are batched through the shared mutex exactly like
// Server::drain_source. A second leg replays 5M events under
// max_sealed_events retention and checks that memory stays bounded and
// the compaction ledger accounts for every event.
//
// Both modes cross-check correctness at scale: after a final seal, the
// incrementally-maintained dataset must be column-for-column identical
// to a from-scratch FailureDataset over the same records ("identical" in
// the JSON; the floor checker fails the build when false).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/time.hpp"
#include "serve/analytics.hpp"
#include "trace/dataset.hpp"
#include "trace/ingest.hpp"
#include "trace/source.hpp"

namespace {

using namespace hpcfail;

constexpr std::size_t kEvents = 1'000'000;
constexpr int kSystems = 8;
constexpr int kNodesPerSystem = 128;
constexpr std::size_t kChunkBytes = 64 * 1024;

std::vector<trace::FailureRecord> stream_records(std::size_t count) {
  // A live feed: strictly increasing start times (so the from-scratch
  // sort order is unique and the identity check is exact), rotating over
  // systems and nodes.
  Rng rng(777);
  std::vector<trace::FailureRecord> out;
  out.reserve(count);
  Seconds at = to_epoch(1998, 1, 1);
  for (std::size_t i = 0; i < count; ++i) {
    at += 1 + static_cast<Seconds>(rng.uniform_index(30));
    trace::FailureRecord r;
    r.system_id = 1 + static_cast<int>(rng.uniform_index(kSystems));
    r.node_id = static_cast<int>(rng.uniform_index(kNodesPerSystem));
    r.start = at;
    r.end = at + 60 + static_cast<Seconds>(rng.uniform_index(7200));
    r.workload = trace::Workload::compute;
    r.cause = trace::RootCause::hardware;
    r.detail = trace::DetailCause::memory_dimm;
    out.push_back(r);
  }
  return out;
}

std::string render_line_protocol(
    const std::vector<trace::FailureRecord>& records) {
  std::string text;
  text.reserve(records.size() * 80);
  for (const trace::FailureRecord& r : records) {
    text += std::to_string(r.system_id);
    text += ',';
    text += std::to_string(r.node_id);
    text += ',';
    text += format_timestamp(r.start);
    text += ',';
    text += format_timestamp(r.end);
    text += ",compute,hardware,memory_dimm\n";
  }
  return text;
}

bool bit_identical(const trace::FailureDataset& got,
                   const trace::FailureDataset& want) {
  if (got.size() != want.size()) return false;
  const trace::ColumnsView g = got.records();
  const trace::ColumnsView w = want.records();
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (g.starts()[i] != w.starts()[i] || g.ends()[i] != w.ends()[i] ||
        g.system_ids()[i] != w.system_ids()[i] ||
        g.node_ids()[i] != w.node_ids()[i] ||
        g.workloads()[i] != w.workloads()[i] ||
        g.causes()[i] != w.causes()[i] ||
        g.details()[i] != w.details()[i]) {
      return false;
    }
  }
  return true;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void write_or_print(const std::string& json, const std::string& out_path) {
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
    std::cerr << "wrote " << out_path << "\n";
  } else {
    std::cout << json;
  }
}

int run_pr8(const std::string& out_path) {
  set_parallelism(1);  // single-core: the gated number is thread-free

  std::cerr << "generating " << kEvents << " events...\n";
  const std::vector<trace::FailureRecord> records = stream_records(kEvents);
  const std::string text = render_line_protocol(records);

  std::cerr << "ingesting " << (text.size() >> 20) << " MiB of line "
            << "protocol on one core...\n";
  trace::LineSource source;
  trace::LiveDataset live;
  serve::LiveAnalytics analytics;
  trace::FailureRecord r;
  const auto ingest_start = std::chrono::steady_clock::now();
  for (std::size_t off = 0; off < text.size(); off += kChunkBytes) {
    source.feed(std::string_view(text).substr(
        off, std::min(kChunkBytes, text.size() - off)));
    while (source.next(r) == trace::SourceStatus::event) {
      live.append(r);
      analytics.observe(r);
    }
  }
  const double ingest_seconds = seconds_since(ingest_start);
  const std::uint64_t epochs_during_ingest = live.epoch();

  const auto seal_start = std::chrono::steady_clock::now();
  live.seal();
  const double final_seal_seconds = seconds_since(seal_start);

  const auto report_start = std::chrono::steady_clock::now();
  const serve::WindowReport report =
      analytics.report(1, 24 * 7 * kSecondsPerHour);
  const double report_seconds = seconds_since(report_start);

  std::cerr << "cross-checking against a from-scratch dataset...\n";
  const trace::FailureDataset reference{
      std::vector<trace::FailureRecord>(records)};
  const bool identical = bit_identical(*live.snapshot(), reference);

  const double rate =
      static_cast<double>(source.counters().accepted) / ingest_seconds;
  std::ostringstream json;
  json << "{\n  \"benchmark\": \"pr8_ingest\",\n";
  json << "  \"single_core\": {\n";
  json << "    \"events\": " << source.counters().accepted << ",\n";
  json << "    \"bytes\": " << text.size() << ",\n";
  json << "    \"seconds\": " << ingest_seconds << ",\n";
  json << "    \"events_per_sec\": " << rate << ",\n";
  json << "    \"epochs\": " << epochs_during_ingest << ",\n";
  json << "    \"final_seal_seconds\": " << final_seal_seconds << "\n";
  json << "  },\n";
  json << "  \"window_report\": {\n";
  json << "    \"events_total\": " << report.events_total << ",\n";
  json << "    \"repair_n\": " << report.repair_minutes.n << ",\n";
  json << "    \"seconds\": " << report_seconds << "\n";
  json << "  },\n";
  json << "  \"identical\": " << (identical ? "true" : "false") << "\n";
  json << "}\n";

  write_or_print(json.str(), out_path);
  std::cerr << "single-core: " << static_cast<std::uint64_t>(rate)
            << " events/sec over " << source.counters().accepted
            << " events (" << epochs_during_ingest << " epochs), "
            << (identical ? "identical" : "MISMATCH") << "\n";
  return identical ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --pr9: sharded ingest + retention

// The replay client's stable connection hash: one node's events always
// land on the same shard, so every per-shard stream is internally
// ordered per node, exactly like a `--connections N` replay.
std::size_t shard_of(const trace::FailureRecord& r, std::size_t shards) {
  return (static_cast<std::size_t>(r.system_id) * 8191u +
          static_cast<std::size_t>(r.node_id)) %
         shards;
}

struct ShardedRun {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t epochs = 0;
  bool identical = false;
};

// One thread per shard: parse that shard's partition of the line
// protocol and append into its LiveDataset shard, batching analytics
// observations through the shared mutex like Server::drain_source.
ShardedRun run_sharded(const std::vector<trace::FailureRecord>& records,
                       const trace::FailureDataset& reference,
                       std::size_t shards) {
  std::vector<std::string> parts(shards);
  {
    std::vector<std::vector<trace::FailureRecord>> split(shards);
    for (const trace::FailureRecord& r : records) {
      split[shard_of(r, shards)].push_back(r);
    }
    for (std::size_t s = 0; s < shards; ++s) {
      parts[s] = render_line_protocol(split[s]);
    }
  }

  trace::LiveDataset::Options opts;
  opts.shards = shards;
  trace::LiveDataset live(opts);
  serve::LiveAnalytics analytics;
  std::mutex analytics_mutex;
  std::atomic<std::uint64_t> accepted{0};
  constexpr std::size_t kObserveBatch = 256;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      trace::LineSource source;
      trace::FailureRecord r;
      std::vector<trace::FailureRecord> batch;
      batch.reserve(kObserveBatch);
      const auto flush = [&] {
        if (batch.empty()) return;
        const std::lock_guard<std::mutex> lock(analytics_mutex);
        for (const trace::FailureRecord& b : batch) analytics.observe(b);
        batch.clear();
      };
      const std::string& text = parts[s];
      for (std::size_t off = 0; off < text.size(); off += kChunkBytes) {
        source.feed(std::string_view(text).substr(
            off, std::min(kChunkBytes, text.size() - off)));
        while (source.next(r) == trace::SourceStatus::event) {
          live.append(s, r);
          batch.push_back(r);
          if (batch.size() >= kObserveBatch) flush();
        }
      }
      flush();
      accepted.fetch_add(source.counters().accepted);
    });
  }
  for (std::thread& t : threads) t.join();

  ShardedRun run;
  run.seconds = seconds_since(start);
  live.seal();
  run.events = accepted.load();
  run.events_per_sec =
      run.seconds > 0.0 ? static_cast<double>(run.events) / run.seconds : 0.0;
  run.epochs = live.epoch();
  run.identical = bit_identical(*live.snapshot(), reference);
  return run;
}

struct RetentionLeg {
  std::uint64_t events = 0;
  std::size_t max_sealed_events = 0;
  std::size_t peak_live_events = 0;
  std::uint64_t sealed = 0;
  std::uint64_t tail = 0;
  std::uint64_t compacted = 0;
  double seconds = 0.0;
  bool accounted = false;
  bool bounded = false;
};

// 5M events through a capped store, generated on the fly so the leg's
// own memory footprint stays small. Samples live size for the peak;
// checks the ledger accounts for every event and that the peak never
// exceeds the cap plus the geometric tail allowance.
RetentionLeg run_retention(std::uint64_t count, std::size_t cap) {
  RetentionLeg leg;
  leg.events = count;
  leg.max_sealed_events = cap;

  trace::LiveDataset::Options opts;
  opts.max_sealed_events = cap;
  trace::LiveDataset live(opts);
  Rng rng(4242);
  Seconds at = to_epoch(1998, 1, 1);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < count; ++i) {
    at += 1 + static_cast<Seconds>(rng.uniform_index(30));
    trace::FailureRecord r;
    r.system_id = 1 + static_cast<int>(rng.uniform_index(kSystems));
    r.node_id = static_cast<int>(rng.uniform_index(kNodesPerSystem));
    r.start = at;
    r.end = at + 60 + static_cast<Seconds>(rng.uniform_index(7200));
    r.workload = trace::Workload::compute;
    r.cause = trace::RootCause::hardware;
    r.detail = trace::DetailCause::memory_dimm;
    live.append(r);
    if ((i & 0xFFFF) == 0) {
      leg.peak_live_events = std::max(leg.peak_live_events, live.size());
    }
  }
  live.seal();
  leg.seconds = seconds_since(start);
  leg.peak_live_events = std::max(leg.peak_live_events, live.size());
  leg.sealed = live.sealed_size();
  leg.tail = live.tail_size();
  leg.compacted = live.compacted_events();
  leg.accounted = leg.sealed + leg.tail + leg.compacted == count;
  // Between seals the tails may grow to rebuild_fraction x sealed
  // before the next trim, so the steady-state peak is bounded by
  // (1 + rebuild_fraction) x cap; 2x leaves headroom for seal timing.
  leg.bounded = leg.peak_live_events <= 2 * cap;
  return leg;
}

int run_pr9(const std::string& out_path) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kRetentionEvents = 5'000'000;
  constexpr std::size_t kRetentionCap = 1'000'000;

  std::cerr << "generating " << kEvents << " events...\n";
  const std::vector<trace::FailureRecord> records = stream_records(kEvents);
  const trace::FailureDataset reference{
      std::vector<trace::FailureRecord>(records)};

  std::cerr << "ingesting on 1 shard...\n";
  const ShardedRun single = run_sharded(records, reference, 1);
  std::cerr << "ingesting on " << kShards << " shards...\n";
  const ShardedRun multi = run_sharded(records, reference, kShards);

  std::cerr << "retention: " << kRetentionEvents << " events through a "
            << kRetentionCap << "-event cap...\n";
  const RetentionLeg retention =
      run_retention(kRetentionEvents, kRetentionCap);

  const bool identical = single.identical && multi.identical;
  const unsigned cores = std::thread::hardware_concurrency();
  std::ostringstream json;
  json << "{\n  \"benchmark\": \"pr9_ingest\",\n";
  json << "  \"cores\": " << cores << ",\n";
  json << "  \"single_shard\": {\n";
  json << "    \"events\": " << single.events << ",\n";
  json << "    \"seconds\": " << single.seconds << ",\n";
  json << "    \"events_per_sec\": " << single.events_per_sec << ",\n";
  json << "    \"epochs\": " << single.epochs << "\n";
  json << "  },\n";
  json << "  \"multi_shard\": {\n";
  json << "    \"shards\": " << kShards << ",\n";
  json << "    \"events\": " << multi.events << ",\n";
  json << "    \"seconds\": " << multi.seconds << ",\n";
  json << "    \"events_per_sec\": " << multi.events_per_sec << ",\n";
  json << "    \"epochs\": " << multi.epochs << "\n";
  json << "  },\n";
  json << "  \"retention\": {\n";
  json << "    \"events\": " << retention.events << ",\n";
  json << "    \"max_sealed_events\": " << retention.max_sealed_events
       << ",\n";
  json << "    \"peak_live_events\": " << retention.peak_live_events
       << ",\n";
  json << "    \"sealed\": " << retention.sealed << ",\n";
  json << "    \"tail\": " << retention.tail << ",\n";
  json << "    \"compacted\": " << retention.compacted << ",\n";
  json << "    \"seconds\": " << retention.seconds << ",\n";
  json << "    \"accounted\": " << (retention.accounted ? "true" : "false")
       << ",\n";
  json << "    \"bounded\": " << (retention.bounded ? "true" : "false")
       << "\n";
  json << "  },\n";
  json << "  \"identical\": " << (identical ? "true" : "false") << "\n";
  json << "}\n";

  write_or_print(json.str(), out_path);
  std::cerr << "1 shard: " << static_cast<std::uint64_t>(single.events_per_sec)
            << " events/sec; " << kShards << " shards: "
            << static_cast<std::uint64_t>(multi.events_per_sec)
            << " events/sec on " << cores << " core(s), "
            << (identical ? "identical" : "MISMATCH") << "; retention peak "
            << retention.peak_live_events << " live of "
            << retention.events << " ("
            << (retention.accounted ? "accounted" : "UNACCOUNTED") << ", "
            << (retention.bounded ? "bounded" : "UNBOUNDED") << ")\n";
  return identical && retention.accounted && retention.bounded ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool pr9 = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--pr9") {
      pr9 = true;
    } else {
      out_path = arg;
    }
  }
  return pr9 ? run_pr9(out_path) : run_pr8(out_path);
}
