// Streaming-ingest throughput (writes BENCH_PR8.json; gated in CI by
// tools/check_bench_floor.py --min-ingest-events-per-sec).
//
// Measures the daemon's whole per-event hot path on one core, sockets
// excluded (they are kernel cost, not ours): line-protocol text in 64KB
// chunks -> LineSource framing/parsing -> LiveDataset::append (tail
// columns + live posting lists + amortized epoch seals) ->
// LiveAnalytics::observe (sliding repair/gap cells). That is exactly the
// work `hpcfail serve` does between recv() and the next poll round.
//
// Also cross-checks correctness at scale: after a final seal, the
// incrementally-maintained dataset must be column-for-column identical
// to a from-scratch FailureDataset over the same records ("identical" in
// the JSON; the floor checker fails the build when false), and reports
// the windowed-report latency on the fully loaded analytics.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/time.hpp"
#include "serve/analytics.hpp"
#include "trace/dataset.hpp"
#include "trace/ingest.hpp"
#include "trace/source.hpp"

namespace {

using namespace hpcfail;

constexpr std::size_t kEvents = 1'000'000;
constexpr int kSystems = 8;
constexpr int kNodesPerSystem = 128;
constexpr std::size_t kChunkBytes = 64 * 1024;

std::vector<trace::FailureRecord> stream_records() {
  // A live feed: strictly increasing start times (so the from-scratch
  // sort order is unique and the identity check is exact), rotating over
  // systems and nodes.
  Rng rng(777);
  std::vector<trace::FailureRecord> out;
  out.reserve(kEvents);
  Seconds at = to_epoch(1998, 1, 1);
  for (std::size_t i = 0; i < kEvents; ++i) {
    at += 1 + static_cast<Seconds>(rng.uniform_index(30));
    trace::FailureRecord r;
    r.system_id = 1 + static_cast<int>(rng.uniform_index(kSystems));
    r.node_id = static_cast<int>(rng.uniform_index(kNodesPerSystem));
    r.start = at;
    r.end = at + 60 + static_cast<Seconds>(rng.uniform_index(7200));
    r.workload = trace::Workload::compute;
    r.cause = trace::RootCause::hardware;
    r.detail = trace::DetailCause::memory_dimm;
    out.push_back(r);
  }
  return out;
}

std::string render_line_protocol(
    const std::vector<trace::FailureRecord>& records) {
  std::string text;
  text.reserve(records.size() * 80);
  for (const trace::FailureRecord& r : records) {
    text += std::to_string(r.system_id);
    text += ',';
    text += std::to_string(r.node_id);
    text += ',';
    text += format_timestamp(r.start);
    text += ',';
    text += format_timestamp(r.end);
    text += ",compute,hardware,memory_dimm\n";
  }
  return text;
}

bool bit_identical(const trace::FailureDataset& got,
                   const trace::FailureDataset& want) {
  if (got.size() != want.size()) return false;
  const trace::ColumnsView g = got.records();
  const trace::ColumnsView w = want.records();
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (g.starts()[i] != w.starts()[i] || g.ends()[i] != w.ends()[i] ||
        g.system_ids()[i] != w.system_ids()[i] ||
        g.node_ids()[i] != w.node_ids()[i] ||
        g.workloads()[i] != w.workloads()[i] ||
        g.causes()[i] != w.causes()[i] ||
        g.details()[i] != w.details()[i]) {
      return false;
    }
  }
  return true;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  set_parallelism(1);  // single-core: the gated number is thread-free

  std::cerr << "generating " << kEvents << " events...\n";
  const std::vector<trace::FailureRecord> records = stream_records();
  const std::string text = render_line_protocol(records);

  std::cerr << "ingesting " << (text.size() >> 20) << " MiB of line "
            << "protocol on one core...\n";
  trace::LineSource source;
  trace::LiveDataset live;
  serve::LiveAnalytics analytics;
  trace::FailureRecord r;
  const auto ingest_start = std::chrono::steady_clock::now();
  for (std::size_t off = 0; off < text.size(); off += kChunkBytes) {
    source.feed(std::string_view(text).substr(
        off, std::min(kChunkBytes, text.size() - off)));
    while (source.next(r) == trace::SourceStatus::event) {
      live.append(r);
      analytics.observe(r);
    }
  }
  const double ingest_seconds = seconds_since(ingest_start);
  const std::uint64_t epochs_during_ingest = live.epoch();

  const auto seal_start = std::chrono::steady_clock::now();
  live.seal();
  const double final_seal_seconds = seconds_since(seal_start);

  const auto report_start = std::chrono::steady_clock::now();
  const serve::WindowReport report =
      analytics.report(1, 24 * 7 * kSecondsPerHour);
  const double report_seconds = seconds_since(report_start);

  std::cerr << "cross-checking against a from-scratch dataset...\n";
  const trace::FailureDataset reference{
      std::vector<trace::FailureRecord>(records)};
  const bool identical = bit_identical(*live.snapshot(), reference);

  const double rate =
      static_cast<double>(source.counters().accepted) / ingest_seconds;
  std::ostringstream json;
  json << "{\n  \"benchmark\": \"pr8_ingest\",\n";
  json << "  \"single_core\": {\n";
  json << "    \"events\": " << source.counters().accepted << ",\n";
  json << "    \"bytes\": " << text.size() << ",\n";
  json << "    \"seconds\": " << ingest_seconds << ",\n";
  json << "    \"events_per_sec\": " << rate << ",\n";
  json << "    \"epochs\": " << epochs_during_ingest << ",\n";
  json << "    \"final_seal_seconds\": " << final_seal_seconds << "\n";
  json << "  },\n";
  json << "  \"window_report\": {\n";
  json << "    \"events_total\": " << report.events_total << ",\n";
  json << "    \"repair_n\": " << report.repair_minutes.n << ",\n";
  json << "    \"seconds\": " << report_seconds << "\n";
  json << "  },\n";
  json << "  \"identical\": " << (identical ? "true" : "false") << "\n";
  json << "}\n";

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json.str();
    std::cerr << "wrote " << argv[1] << "\n";
  } else {
    std::cout << json.str();
  }
  std::cerr << "single-core: " << static_cast<std::uint64_t>(rate)
            << " events/sec over " << source.counters().accepted
            << " events (" << epochs_during_ingest << " epochs), "
            << (identical ? "identical" : "MISMATCH") << "\n";
  return identical ? 0 : 1;
}
