// Extension: the scaling question the paper's Fig 2(b) finding feeds.
//
// "Failure rates are roughly proportional to the number of processors"
// means a machine 100x larger fails 100x more often. We build a custom
// catalog of hypothetical clusters from 64 to 2048 nodes with identical
// per-node reliability, generate traces, verify the linear-scaling
// conclusion quantitatively (log-log slope ~ 1), and extrapolate to a
// petascale machine: its system MTBF in minutes, and the utilization
// ceiling checkpoint/restart can sustain there.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/strings.hpp"
#include "report/table.hpp"
#include "sim/checkpoint.hpp"
#include "synth/generator.hpp"
#include "trace/index.hpp"

namespace {

using namespace hpcfail;

// A hypothetical type-F-like cluster with `nodes` 2-way nodes, in
// production for two years.
trace::SystemInfo make_system(int id, int nodes) {
  trace::SystemInfo sys;
  sys.id = id;
  sys.hw_type = 'F';
  sys.numa = false;
  sys.nodes = nodes;
  sys.procs = nodes * 2;
  sys.categories = {{0, nodes, 2, 4.0, 1, to_epoch(2004, 1, 1),
                     to_epoch(2006, 1, 1)}};
  return sys;
}

}  // namespace

int main() {
  constexpr double kFailuresPerNodeYear = 5.0;

  std::vector<trace::SystemInfo> systems;
  synth::ScenarioConfig scenario;
  scenario.seed = 99;
  const int sizes[] = {64, 128, 256, 512, 1024, 2048};
  int id = 1;
  for (const int nodes : sizes) {
    systems.push_back(make_system(id, nodes));
    synth::SystemScenario s;
    s.system_id = id;
    s.failures_per_year = kFailuresPerNodeYear * nodes;
    s.lifecycle.shape = synth::LifecycleShape::burn_in;
    s.lifecycle.amplitude = 0.0;  // steady state: isolate pure scaling
    scenario.systems.push_back(s);
    ++id;
  }
  const trace::SystemCatalog catalog(systems);
  const synth::TraceGenerator generator(catalog, scenario);
  const trace::FailureDataset dataset = generator.generate();

  std::cout << "=== extension: failure-rate scaling and the petascale "
               "projection ===\n\n";
  report::TextTable table({"nodes", "failures/yr", "system MTBF (h)"});
  std::vector<double> log_nodes;
  std::vector<double> log_rate;
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const auto sys_data = dataset.view().for_system(static_cast<int>(i) + 1);
    const double years =
        catalog.system(static_cast<int>(i) + 1).production_years();
    const double rate = static_cast<double>(sys_data.size()) / years;
    table.add_row(std::to_string(sizes[i]),
                  {rate, years * 8766.0 / static_cast<double>(
                                              sys_data.size())},
                  4);
    log_nodes.push_back(std::log(static_cast<double>(sizes[i])));
    log_rate.push_back(std::log(rate));
  }
  table.render(std::cout);

  // Least-squares slope of log(rate) vs log(nodes).
  const auto n = static_cast<double>(log_nodes.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < log_nodes.size(); ++i) {
    mx += log_nodes[i];
    my += log_rate[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < log_nodes.size(); ++i) {
    sxy += (log_nodes[i] - mx) * (log_rate[i] - my);
    sxx += (log_nodes[i] - mx) * (log_nodes[i] - mx);
  }
  const double slope = sxy / sxx;
  std::cout << "\nlog-log slope of failure rate vs size: "
            << format_double(slope, 4)
            << " (1.0 = the paper's linear scaling)\n\n";

  // Project a petascale machine and its checkpointing ceiling.
  constexpr double kPetaNodes = 100000.0;
  const double peta_rate = kFailuresPerNodeYear * kPetaNodes;  // per year
  const double peta_mtbf_s = 365.2425 * 86400.0 / peta_rate;
  std::cout << "projected " << static_cast<int>(kPetaNodes)
            << "-node machine at the same per-node rate: one failure "
               "every "
            << format_double(peta_mtbf_s / 60.0, 3) << " minutes\n";
  report::TextTable ceiling({"checkpoint cost (s)", "Daly interval (min)",
                             "utilization ceiling %"});
  for (const double cost : {30.0, 120.0, 600.0}) {
    if (cost >= 2.0 * peta_mtbf_s) {
      ceiling.add_row(format_double(cost, 4), {0.0, 0.0});
      continue;
    }
    const double tau = sim::daly_interval(peta_mtbf_s, cost);
    // Fraction of wall-clock doing useful work, first order:
    // tau / (tau + cost + expected loss per interval).
    const double loss = tau / 2.0 * (tau + cost) / peta_mtbf_s;
    const double utilization = tau / (tau + cost + loss);
    ceiling.add_row(format_double(cost, 4),
                    {tau / 60.0, 100.0 * utilization}, 4);
  }
  ceiling.render(std::cout);
  std::cout << "\nreading: linear scaling is benign per node but brutal "
               "per system --\nat petascale the machine fails faster than "
               "expensive checkpoints can be\nwritten, which is exactly "
               "why this data (and its distributional shape)\nmattered to "
               "the exascale resilience debate.\n";
  return 0;
}
