// Table 2 reproduction: statistical properties of time to repair as a
// function of the failure's root cause, with the paper's values printed
// alongside for comparison.
#include <iostream>

#include "analysis/repair.hpp"
#include "common/error.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const analysis::RepairReport report = analysis::repair_analysis(
      dataset, trace::SystemCatalog::lanl());

  std::cout << "=== Table 2: time to repair by root cause (minutes) ===\n\n";
  report::TextTable table(
      {"statistic", "unknown", "human", "environment", "network",
       "software", "hardware", "all"});

  const auto find = [&](trace::RootCause cause) -> const stats::Summary& {
    for (const auto& c : report.by_cause) {
      if (c.cause == cause) return c.stats;
    }
    throw Error("cause missing from the dataset");
  };
  const stats::Summary& unknown = find(trace::RootCause::unknown);
  const stats::Summary& human = find(trace::RootCause::human);
  const stats::Summary& env = find(trace::RootCause::environment);
  const stats::Summary& net = find(trace::RootCause::network);
  const stats::Summary& sw = find(trace::RootCause::software);
  const stats::Summary& hw = find(trace::RootCause::hardware);

  const auto row = [&](const char* label, double (stats::Summary::*field)) {
    table.add_row(label,
                  {unknown.*field, human.*field, env.*field, net.*field,
                   sw.*field, hw.*field, report.all.*field},
                  4);
  };
  row("mean (min)", &stats::Summary::mean);
  row("median (min)", &stats::Summary::median);
  row("std dev (min)", &stats::Summary::stddev);
  row("C^2", &stats::Summary::cv2);
  table.render(std::cout);

  std::cout << "\npaper reports (mean/median/stddev/C^2):\n"
               "  unknown 398/32/6099/234   human 163/44/418/6\n"
               "  environment 572/269/808/2 network 247/70/720/8\n"
               "  software 369/33/6316/293  hardware 342/64/4202/151\n"
               "  all 355/54/4854/187\n"
               "shape to hold: environment repairs are the longest but "
               "least variable;\nhuman the shortest; software/hardware "
               "medians are ~4-10x below their\nmeans; everything except "
               "environment is extremely variable.\n";
  return 0;
}
