// Library quality-of-implementation microbenchmarks: synthetic trace
// generation throughput (google-benchmark). BM_GenerateFullTrace runs at
// the default worker-pool size (hardware concurrency);
// BM_GenerateFullTraceSequential pins the pool to one thread as the
// speedup baseline. bench_perf_parallel sweeps the thread count.
//
// BM_GenerateFullTrace vs BM_GenerateFullTraceObsOff is the
// observability overhead budget: the instrumented generator must stay
// within 2% of its obs::disable()d self.
//
// BM_GenerateBulk scales every system's failure volume by range(0) so the
// bulk pipeline (columnar emission + radix merge) dominates instead of
// the per-system planning cost that bounds the paper-scale runs; the full
// 10M-record sweep with per-stage numbers lives in
// `bench_perf_dataset --pr6` (committed as BENCH_PR6.json).
#include <benchmark/benchmark.h>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"
#include "trace/catalog.hpp"

namespace {

void BM_GenerateSystem(benchmark::State& state) {
  const int system_id = static_cast<int>(state.range(0));
  const hpcfail::synth::TraceGenerator generator(
      hpcfail::trace::SystemCatalog::lanl(),
      hpcfail::synth::lanl_scenario(42));
  std::size_t records = 0;
  for (auto _ : state) {
    auto recs = generator.generate_system(system_id);
    records += recs.size();
    benchmark::DoNotOptimize(recs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}

void BM_GenerateFullTrace(benchmark::State& state) {
  std::size_t records = 0;
  for (auto _ : state) {
    auto dataset = hpcfail::synth::generate_lanl_trace(42);
    records += dataset.size();
    benchmark::DoNotOptimize(dataset);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}

void BM_GenerateFullTraceSequential(benchmark::State& state) {
  hpcfail::set_parallelism(1);
  std::size_t records = 0;
  for (auto _ : state) {
    auto dataset = hpcfail::synth::generate_lanl_trace(42);
    records += dataset.size();
    benchmark::DoNotOptimize(dataset);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  hpcfail::set_parallelism(0);
}

void BM_GenerateBulk(benchmark::State& state) {
  hpcfail::synth::ScenarioConfig cfg = hpcfail::synth::lanl_scenario(2024);
  for (auto& s : cfg.systems) {
    s.failures_per_year *= static_cast<double>(state.range(0));
  }
  const hpcfail::synth::TraceGenerator generator(
      hpcfail::trace::SystemCatalog::lanl(), std::move(cfg));
  std::size_t records = 0;
  for (auto _ : state) {
    auto dataset = generator.generate();
    records += dataset.size();
    benchmark::DoNotOptimize(dataset);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}

void BM_GenerateFullTraceObsOff(benchmark::State& state) {
  hpcfail::obs::disable();
  std::size_t records = 0;
  for (auto _ : state) {
    auto dataset = hpcfail::synth::generate_lanl_trace(42);
    records += dataset.size();
    benchmark::DoNotOptimize(dataset);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  hpcfail::obs::enable();
}

}  // namespace

// System 2 (tiny), 20 (big NUMA, 8.9 years), 7 (1024 nodes).
BENCHMARK(BM_GenerateSystem)->Arg(2)->Arg(20)->Arg(7);
BENCHMARK(BM_GenerateFullTrace)->UseRealTime();
// 10x and 100x the calibrated failure volume (~260k and ~2.6M records).
BENCHMARK(BM_GenerateBulk)->Arg(10)->Arg(100)->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenerateFullTraceSequential)->UseRealTime();
BENCHMARK(BM_GenerateFullTraceObsOff)->UseRealTime();

BENCHMARK_MAIN();
