// Figure 6 reproduction: empirical CDFs of time between failures with the
// four standard MLE fits, in the paper's four panels:
//   (a) node 22 of system 20, early production (1996-1999)
//   (b) node 22 of system 20, late production (2000-2005)
//   (c) system-wide view of system 20, early
//   (d) system-wide view of system 20, late
#include <iostream>
#include <optional>

#include "common/strings.hpp"
#include "analysis/interarrival.hpp"
#include "dist/weibull.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "synth/generator.hpp"

namespace {

void render_panel(const hpcfail::trace::FailureDataset& dataset,
                  const char* title, std::optional<int> node,
                  bool early) {
  using namespace hpcfail;
  analysis::InterarrivalQuery query;
  query.system_id = 20;
  query.node_id = node;
  if (early) {
    query.to = to_epoch(2000, 1, 1);
  } else {
    query.from = to_epoch(2000, 1, 1);
  }
  const analysis::InterarrivalReport report =
      analysis::interarrival_analysis(dataset, query);

  std::cout << title << "\n";
  std::cout << report.gaps_seconds.size() << " intervals, mean "
            << format_double(report.summary.mean / 3600.0, 4)
            << " h, C^2 " << format_double(report.summary.cv2, 3)
            << ", zero-gap fraction "
            << format_double(report.zero_fraction, 3) << "\n";

  // CDF plot: empirical + the four fitted models, log-x as in the paper.
  const stats::Ecdf ecdf(report.gaps_seconds);
  std::vector<report::CdfSeries> series;
  report::CdfSeries empirical;
  empirical.name = "data";
  for (const auto& [x, p] : ecdf.step_points()) {
    empirical.points.emplace_back(x, p);
  }
  series.push_back(empirical);
  const double x_lo = std::max(1.0, ecdf.quantile(0.02));
  const double x_hi = ecdf.max();
  for (const auto& fit : report.fits) {
    const auto& model = *fit.model;
    series.push_back(report::sample_cdf(
        model.name(), [&model](double x) { return model.cdf(x); }, x_lo,
        x_hi));
  }
  report::cdf_plot(std::cout, "", series);

  report::TextTable table({"model (best first)", "negLL", "KS"});
  for (const auto& fit : report.fits) {
    table.add_row(fit.model->describe(), {fit.nll, fit.ks});
  }
  table.render(std::cout);
  for (const auto& fit : report.fits) {
    if (fit.family == hpcfail::dist::Family::weibull) {
      const auto* w =
          dynamic_cast<const hpcfail::dist::Weibull*>(fit.model.get());
      std::cout << "fitted Weibull shape "
                << format_double(w->shape(), 3) << " => "
                << (w->decreasing_hazard() ? "decreasing" : "increasing")
                << " hazard rate\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  render_panel(dataset, "=== Fig 6(a): node 22, 1996-1999 ===", 22, true);
  render_panel(dataset, "=== Fig 6(b): node 22, 2000-2005 ===", 22, false);
  render_panel(dataset, "=== Fig 6(c): system-wide, 1996-1999 ===",
               std::nullopt, true);
  render_panel(dataset, "=== Fig 6(d): system-wide, 2000-2005 ===",
               std::nullopt, false);

  // Beyond the paper's single node 22: view (i) swept over every node of
  // system 20, batched across the worker pool.
  std::cout << "=== per-node sweep of system 20 (view i, all nodes) ===\n";
  const auto node_fits =
      analysis::per_node_interarrival_fits(dataset, /*system_id=*/20);
  std::size_t weibull_best = 0;
  std::size_t decreasing = 0;
  for (const auto& entry : node_fits) {
    if (entry.fits.empty()) continue;
    if (entry.fits.front().family == dist::Family::weibull) ++weibull_best;
    for (const auto& fit : entry.fits) {
      if (fit.family != dist::Family::weibull) continue;
      const auto* w = dynamic_cast<const dist::Weibull*>(fit.model.get());
      if (w != nullptr && w->decreasing_hazard()) ++decreasing;
    }
  }
  std::cout << node_fits.size() << " nodes with enough data; Weibull is "
            << "the best model on " << weibull_best
            << " and its fitted shape implies a decreasing hazard on "
            << decreasing << "\n\n";
  std::cout
      << "paper reports: late-era TBF well modeled by Weibull/gamma with\n"
         "decreasing hazard (Weibull shape 0.7-0.8) and exponential "
         "clearly worse\n(data C^2 1.9 vs the exponential's 1); early-era "
         "per-node TBF is more\nvariable (C^2 3.9) and lognormal-like; "
         "the early system-wide view has\n>30% exactly-zero gaps "
         "(correlated simultaneous failures) and no\nstandard "
         "distribution captures it.\n";
  return 0;
}
