// Extension: re-testing footnote 1 of the paper -- "We also considered
// the Pareto distribution, but didn't find it to be a better fit than
// any of the four standard distributions."
//
// We fit a Pareto alongside the four standard families on the Fig 6 TBF
// samples and the Fig 7 repair times and compare negative log-likelihood
// on the same floored data.
#include <iostream>
#include <optional>
#include <vector>

#include "analysis/interarrival.hpp"
#include "analysis/repair.hpp"
#include "common/strings.hpp"
#include "dist/pareto.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"

namespace {

using namespace hpcfail;

void compare(const char* title, const std::vector<double>& sample,
             const dist::FitReport& standard_fits,
             double floor_at) {
  std::vector<double> floored = sample;
  for (double& x : floored) {
    if (x < floor_at) x = floor_at;
  }
  const dist::Pareto pareto = dist::Pareto::fit_mle(floored, floor_at);
  const double pareto_nll = -pareto.log_likelihood(floored);

  std::cout << title << " (" << sample.size() << " observations)\n";
  report::TextTable table({"model", "negLL"});
  for (const auto& fit : standard_fits) {
    table.add_row(fit.model->describe(), {fit.nll});
  }
  table.add_row(pareto.describe(), {pareto_nll});
  table.render(std::cout);
  const double best = standard_fits.front().nll;
  std::cout << "Pareto vs best standard family: negLL delta "
            << format_double(pareto_nll - best, 4) << " ("
            << (pareto_nll < best ? "Pareto fits better"
                                  : "footnote 1 holds")
            << ")\n\n";
}

}  // namespace

int main() {
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);

  std::cout << "=== extension: is the Pareto a better fit? (footnote 1) "
               "===\n\n";

  // Fig 6(b): node 22 of system 20, late era.
  analysis::InterarrivalQuery q;
  q.system_id = 20;
  q.node_id = 22;
  q.from = to_epoch(2000, 1, 1);
  const auto tbf = analysis::interarrival_analysis(dataset, q);
  compare("--- time between failures, node 22 late (Fig 6b) ---",
          tbf.gaps_seconds, tbf.fits, 1.0);

  // Fig 6(d): system-wide late.
  analysis::InterarrivalQuery qs;
  qs.system_id = 20;
  qs.from = to_epoch(2000, 1, 1);
  const auto tbf_sys = analysis::interarrival_analysis(dataset, qs);
  compare("--- time between failures, system-wide late (Fig 6d) ---",
          tbf_sys.gaps_seconds, tbf_sys.fits, 1.0);

  // Fig 7(a): repair times.
  const auto repair = analysis::repair_analysis(
      dataset, trace::SystemCatalog::lanl());
  compare("--- repair times, all systems (Fig 7a) ---",
          dataset.repair_times_minutes(), repair.fits, 1e-9);

  std::cout << "paper's footnote 1: the Pareto was considered and "
               "rejected. Its pure\npower law has no characteristic "
               "scale, so it must trade the body against\nthe tail -- "
               "the Weibull/lognormal keep both.\n";
  return 0;
}
