// Figure 1 reproduction: breakdown of failures (a) and downtime (b) into
// root causes, per hardware type and across all systems.
#include <iostream>

#include "analysis/root_cause.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const analysis::RootCauseReport report = analysis::root_cause_breakdown(
      dataset, trace::SystemCatalog::lanl());

  const auto render = [](const char* title, bool downtime,
                         const analysis::RootCauseReport& r) {
    std::cout << title << "\n";
    report::TextTable table({"group", "hardware", "software", "network",
                             "environment", "human", "unknown"});
    const auto row = [&](const analysis::CauseBreakdown& b) {
      const auto& pct = downtime ? b.downtime_percent : b.count_percent;
      table.add_row(b.label, {pct[0], pct[1], pct[2], pct[3], pct[4],
                              pct[5]}, 3);
    };
    for (const auto& b : r.by_type) row(b);
    row(r.all);
    table.render(std::cout);
    std::cout << "\n";
  };

  render("=== Fig 1(a): % of failures by root cause ===", false, report);
  render("=== Fig 1(b): % of downtime by root cause ===", true, report);

  std::cout << "paper reports (shape): hardware the largest single source "
               "(30-60%),\nsoftware second (5-24%); type D hardware and "
               "software nearly equal;\nunknown 20-30% of failures except "
               "type E (<5%), yet <5% of downtime\nexcept for types D and "
               "G.\n\n";

  std::cout << "detailed causes: memory share of ALL failures per type "
               "(paper: >10%\neverywhere, >25% for F and H; type E CPU "
               ">50% due to a design flaw)\n";
  report::TextTable detail({"type", "memory %", "cpu %"});
  for (const char type : {'D', 'E', 'F', 'G', 'H'}) {
    const auto subset = dataset.filter([type](const trace::FailureRecord& r) {
      return trace::SystemCatalog::lanl().system(r.system_id).hw_type ==
             type;
    });
    detail.add_row(std::string(1, type),
                   {100.0 * analysis::detail_cause_fraction(
                                subset, trace::DetailCause::memory_dimm),
                    100.0 * analysis::detail_cause_fraction(
                                subset, trace::DetailCause::cpu)},
                   3);
  }
  detail.render(std::cout);
  return 0;
}
