// Extension: per-system availability implied by the failure trace -- the
// bottom-line metric the paper's statistics feed into cluster-management
// decisions (intro citations [5, 25]).
#include <iostream>

#include "analysis/availability.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const auto rows = analysis::availability_analysis(
      dataset, trace::SystemCatalog::lanl());

  std::cout << "=== extension: availability per system ===\n\n";
  report::TextTable table({"system", "HW", "node-years", "failures",
                           "downtime (h)", "node MTBF (h)",
                           "availability %"});
  for (const analysis::SystemAvailability& a : rows) {
    table.add_row({a.system_id == 0 ? "site" : std::to_string(a.system_id),
                   std::string(1, a.hw_type),
                   format_double(a.node_hours / 8766.0, 4),
                   std::to_string(a.failures),
                   format_double(a.downtime_hours, 4),
                   format_double(a.node_mtbf_hours, 4),
                   format_double(a.availability * 100.0, 5)});
  }
  table.render(std::cout);
  std::cout << "\nreading: per-node MTBFs sit in the weeks-to-months "
               "range and repair\ntakes hours, so node availability is "
               "high everywhere -- yet a 1024-node\njob sees the *system* "
               "MTBF, hours not months, which is why the paper's\n"
               "checkpointing context matters.\n";
  return 0;
}
