// Ablation: does the exponential-TBF assumption hurt a checkpointing
// system when failures actually follow the paper's decreasing-hazard
// Weibull (shape 0.7)?
//
// For a grid of MTBF x checkpoint-cost settings we compare the wall-clock
// of a month-long job under two interval policies, both evaluated against
// Weibull(0.7) failures:
//   * Daly's interval computed from the MTBF (the exponential assumption),
//   * the interval found by sweeping simulations of the true process.
// The result is itself a finding: the wall-clock curve is extremely flat
// around the optimum, so Daly's memoryless formula remains near-optimal
// even though the failure process is demonstrably not exponential --
// interval *selection* is robust to the modeling error the paper exposes,
// even while availability *prediction* is not (cf. the C^2 mismatch).
#include <cmath>
#include <iostream>
#include <vector>

#include "common/strings.hpp"
#include "dist/weibull.hpp"
#include "report/table.hpp"
#include "sim/checkpoint.hpp"

int main() {
  using namespace hpcfail;
  constexpr double kDay = 86400.0;

  report::TextTable table({"MTBF (h)", "ckpt cost (s)", "Daly interval (h)",
                           "swept interval (h)", "wall Daly (d)",
                           "wall swept (d)", "wall adaptive (d)",
                           "penalty %"});

  for (const double mtbf_hours : {6.0, 24.0, 96.0}) {
    for (const double cost : {60.0, 600.0, 1800.0}) {
      const double mtbf = mtbf_hours * 3600.0;
      const double scale = mtbf / std::exp(std::lgamma(1.0 + 1.0 / 0.7));
      const dist::Weibull weibull(0.7, scale);

      sim::CheckpointConfig cfg;
      cfg.work_seconds = 30.0 * kDay;
      cfg.checkpoint_cost = cost;
      cfg.restart_cost = 120.0;

      const double daly = sim::daly_interval(mtbf, cost);
      std::vector<double> candidates;
      for (double f = 0.25; f <= 6.01; f *= std::sqrt(2.0)) {
        candidates.push_back(daly * f);
      }
      Rng sweep_rng(17);
      const double swept = sim::best_interval_by_simulation(
          weibull, nullptr, cfg, candidates, sweep_rng, 48);

      const auto evaluate = [&](double interval) {
        cfg.interval = interval;
        Rng rng(4242);
        return sim::simulate_checkpoint_mean(weibull, nullptr, cfg, rng,
                                             96)
            .wall_clock;
      };
      const double wall_daly = evaluate(daly);
      const double wall_swept = evaluate(swept);
      // Third policy: chase the instantaneous hazard (local Young).
      const auto schedule = sim::hazard_aware_schedule(weibull, cost);
      Rng adaptive_rng(4242);
      sim::CheckpointStats adaptive_total{};
      constexpr int kRuns = 96;
      for (int run = 0; run < kRuns; ++run) {
        adaptive_total.wall_clock +=
            sim::simulate_checkpoint_schedule(weibull, nullptr, cfg,
                                              schedule, adaptive_rng)
                .wall_clock;
      }
      const double wall_adaptive = adaptive_total.wall_clock / kRuns;
      table.add_row(
          format_double(mtbf_hours, 3),
          {cost, daly / 3600.0, swept / 3600.0, wall_daly / kDay,
           wall_swept / kDay, wall_adaptive / kDay,
           100.0 * (wall_daly - wall_swept) / wall_swept});
    }
  }
  std::cout << "=== ablation: exponential-assumption checkpoint intervals "
               "vs the\n    fitted decreasing-hazard Weibull (shape 0.7) "
               "===\n\n";
  table.render(std::cout);
  std::cout << "\nreading: the penalty column is the extra wall-clock "
               "paid by trusting the\nmemoryless assumption for interval "
               "selection. It is consistently near\nzero: the cost curve "
               "is flat around the optimum, so Daly's formula is\nrobust "
               "to the paper's non-exponential reality. The 'adaptive' "
               "column\nchases the instantaneous Weibull hazard "
               "(tau = sqrt(2C/h(t))) and does\n*not* beat the fixed "
               "interval either -- its dense post-failure\ncheckpoints "
               "are wasted. The assumption bites elsewhere (failure\n"
               "clustering, availability prediction), not in interval "
               "selection.\n";
  return 0;
}
