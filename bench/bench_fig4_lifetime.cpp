// Figure 4 reproduction: failures per month over a system's lifetime,
// broken down by root cause -- system 5 for the burn-in shape (a) and
// system 19 for the ramp-up shape (b).
#include <iostream>

#include "common/strings.hpp"
#include "analysis/lifetime.hpp"
#include "analysis/root_cause.hpp"
#include "report/ascii_chart.hpp"
#include "synth/generator.hpp"

namespace {

void render(const hpcfail::trace::FailureDataset& dataset, int system_id,
            const char* title) {
  using namespace hpcfail;
  const analysis::LifetimeCurve curve = analysis::lifetime_curve(
      dataset, trace::SystemCatalog::lanl(), system_id);
  std::cout << title << "\n";
  // Stacked by root cause, as in the paper's figure.
  std::vector<std::string> labels;
  std::vector<report::StackSeries> series;
  for (const trace::RootCause cause : trace::kAllRootCauses) {
    series.push_back({trace::to_string(cause), {}});
  }
  for (const analysis::MonthlyFailures& m : curve.months) {
    labels.push_back("m" + std::to_string(m.month));
    for (std::size_t c = 0; c < series.size(); ++c) {
      series[c].values.push_back(m.by_cause[c]);
    }
  }
  report::stacked_bar_chart(std::cout, "", labels, series, 45);
  std::cout << "peak month: " << curve.peak_month
            << ", first-quarter/rest rate ratio: "
            << format_double(curve.early_to_late_ratio, 3) << "\n";

  // The dominant cause per phase (hardware everywhere, but the unknown
  // share shrinks as administrators learn the system).
  double early_unknown = 0.0;
  double early_total = 0.0;
  double late_unknown = 0.0;
  double late_total = 0.0;
  const int half = static_cast<int>(curve.months.size()) / 2;
  for (const analysis::MonthlyFailures& m : curve.months) {
    const double unk = m.by_cause[analysis::breakdown_index(
        trace::RootCause::unknown)];
    if (m.month < half) {
      early_unknown += unk;
      early_total += m.total();
    } else {
      late_unknown += unk;
      late_total += m.total();
    }
  }
  if (early_total > 0.0 && late_total > 0.0) {
    std::cout << "unknown-cause share: first half "
              << format_double(100.0 * early_unknown / early_total, 3)
              << "%, second half "
              << format_double(100.0 * late_unknown / late_total, 3)
              << "%\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  render(dataset, 5,
         "=== Fig 4(a): system 5 (type E) -- burn-in shape ===");
  render(dataset, 19,
         "=== Fig 4(b): system 19 (type G) -- ramp-up shape ===");
  std::cout << "paper reports: type E/F rates start high and drop within "
               "months\n(Fig 4a); the pioneer D/G systems instead climb "
               "for ~20 months before\ndecaying (Fig 4b) -- neither "
               "matches the textbook bathtub curve.\n";
  return 0;
}
