// Ablation: reliability-aware job placement (Section 5.1's suggestion)
// vs random placement, across cluster load levels.
//
// The per-node heterogeneity mirrors Fig 3(a): most nodes near the base
// MTBF with lognormal jitter, plus a hot tail failing 5x as often.
// Placement can only help below saturation, and the benefit should grow
// as more slack is available -- that is the shape this bench reports.
#include <iostream>

#include "report/table.hpp"
#include "sim/cluster.hpp"

int main() {
  using namespace hpcfail;
  constexpr double kDay = 86400.0;

  sim::ClusterConfig cfg;
  cfg.nodes = sim::heterogeneous_nodes(64, 20.0 * kDay, 0.3, 0.08, 5.0, 99);
  cfg.job_width = 8;
  cfg.job_work_seconds = 24.0 * 3600.0;
  cfg.job_count = 150;

  report::TextTable table({"concurrent jobs", "load", "waste rnd %",
                           "waste ranked %", "interrupts rnd",
                           "interrupts ranked", "makespan gain %"});
  for (const std::size_t concurrent : {2u, 4u, 6u, 8u}) {
    cfg.max_concurrent_jobs = concurrent;
    double waste_random = 0.0;
    double waste_ranked = 0.0;
    double interrupts_random = 0.0;
    double interrupts_ranked = 0.0;
    double makespan_random = 0.0;
    double makespan_ranked = 0.0;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      Rng r1(static_cast<std::uint64_t>(rep));
      Rng r2(static_cast<std::uint64_t>(rep));
      cfg.policy = sim::PlacementPolicy::random;
      const sim::ClusterStats a = sim::simulate_cluster(cfg, r1);
      cfg.policy = sim::PlacementPolicy::reliability_ranked;
      const sim::ClusterStats b = sim::simulate_cluster(cfg, r2);
      waste_random += a.waste_fraction();
      waste_ranked += b.waste_fraction();
      interrupts_random += static_cast<double>(a.interruptions);
      interrupts_ranked += static_cast<double>(b.interruptions);
      makespan_random += a.makespan;
      makespan_ranked += b.makespan;
    }
    const double load = static_cast<double>(concurrent * 8) / 64.0;
    table.add_row(std::to_string(concurrent),
                  {load, 100.0 * waste_random / kReps,
                   100.0 * waste_ranked / kReps, interrupts_random / kReps,
                   interrupts_ranked / kReps,
                   100.0 * (makespan_random - makespan_ranked) /
                       makespan_random},
                  3);
  }
  std::cout << "=== ablation: random vs reliability-ranked placement ===\n"
            << "64 nodes, 8% hot nodes at 5x the failure rate, 8-node "
               "day-long jobs\n\n";
  table.render(std::cout);
  std::cout << "\nreading: at low load the ranked scheduler parks work on "
               "the reliable\nnodes and mostly dodges the hot tail; at "
               "full saturation (load 1.0)\nevery node must be used and "
               "the policies converge.\n";
  return 0;
}
