// Extension: model-free verification of the paper's decreasing-hazard
// claim via the Nelson-Aalen estimator with right-censoring, plus
// bootstrap confidence intervals around the fitted Weibull shape.
#include <iostream>

#include "analysis/hazard.hpp"
#include "analysis/interarrival.hpp"
#include "common/strings.hpp"
#include "dist/weibull.hpp"
#include "report/table.hpp"
#include "stats/bootstrap.hpp"
#include "synth/generator.hpp"
#include "trace/index.hpp"

int main() {
  using namespace hpcfail;
  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const trace::FailureDataset late =
      dataset.view()
          .between(to_epoch(2000, 1, 1), to_epoch(2006, 1, 1))
          .materialize();

  std::cout << "=== extension: nonparametric hazard-rate analysis ===\n\n";
  report::TextTable verdict({"system", "events", "censored",
                             "log-log slope", "verdict"});
  for (const int id : {7, 8, 18, 20}) {
    const analysis::HazardReport hazard =
        analysis::node_hazard_analysis(late, id);
    verdict.add_row({"sys " + std::to_string(id),
                     std::to_string(hazard.events),
                     std::to_string(hazard.censored),
                     format_double(hazard.log_log_slope, 3),
                     hazard.decreasing_hazard() ? "decreasing"
                                                : "increasing"});
  }
  verdict.render(std::cout);
  std::cout << "\n(the log-log slope of the Nelson-Aalen cumulative "
               "hazard equals the\nWeibull shape when the data is "
               "Weibull; < 1 means decreasing hazard)\n\n";

  // Bootstrap interval around the Fig 6(b) fitted shape.
  analysis::InterarrivalQuery query;
  query.system_id = 20;
  query.node_id = 22;
  query.from = to_epoch(2000, 1, 1);
  const analysis::InterarrivalReport tbf =
      analysis::interarrival_analysis(dataset, query);
  Rng rng(11);
  const stats::BootstrapResult shape_ci = stats::bootstrap(
      tbf.gaps_seconds,
      [](std::span<const double> s) {
        return dist::Weibull::fit_mle(s, 1.0).shape();
      },
      rng, {.replicates = 400, .confidence = 0.95});
  std::cout << "node 22 of system 20, 2000-2005: fitted Weibull shape "
            << format_double(shape_ci.point, 3) << " (95% CI "
            << format_double(shape_ci.lo, 3) << " .. "
            << format_double(shape_ci.hi, 3) << ", "
            << shape_ci.replicates << " replicates)\n";

  // Censoring-aware refit: include every node's final failure-free
  // interval (right-censored at the horizon) instead of discarding it.
  {
    const analysis::HazardReport hazard =
        analysis::node_hazard_analysis(late, 20);
    std::vector<double> events;
    std::vector<double> censored;
    for (const auto& obs : hazard.observations) {
      (obs.observed ? events : censored).push_back(obs.time);
    }
    const dist::Weibull censored_fit =
        dist::Weibull::fit_mle_censored(events, censored, 1.0);
    const dist::Weibull naive_fit = dist::Weibull::fit_mle(events, 1.0);
    std::cout << "system 20 per-node pooled TBF, censoring-aware Weibull: "
              << censored_fit.describe() << "\n"
              << "  (naive fit dropping censored intervals: "
              << naive_fit.describe() << ")\n";
  }
  std::cout << "paper reports: shape 0.7 at this node, 0.7-0.8 across "
               "views -- agreement\nholds iff the paper's band intersects "
               "the interval above.\n";
  return 0;
}
