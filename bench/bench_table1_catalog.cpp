// Table 1 reproduction: the encoded 22-system LANL site inventory.
#include <iostream>

#include "common/strings.hpp"
#include "report/table.hpp"
#include "trace/catalog.hpp"

int main() {
  using namespace hpcfail;
  const trace::SystemCatalog& catalog = trace::SystemCatalog::lanl();

  std::cout << "=== Table 1: overview of the 22 LANL systems ===\n\n";
  report::TextTable table({"ID", "HW", "arch", "nodes", "procs",
                           "categories", "production", "years"});
  for (const trace::SystemInfo& sys : catalog.systems()) {
    table.add_row({std::to_string(sys.id), std::string(1, sys.hw_type),
                   std::string(sys.numa ? "NUMA" : "SMP"), std::to_string(sys.nodes),
                   std::to_string(sys.procs),
                   std::to_string(sys.categories.size()),
                   format_timestamp(sys.production_start()).substr(0, 7) +
                       " .. " +
                       format_timestamp(sys.production_end()).substr(0, 7),
                   format_double(sys.production_years(), 3)});
  }
  table.render(std::cout);

  std::cout << "\nsite totals: " << catalog.total_nodes() << " nodes, "
            << catalog.total_procs() << " processors\n";
  std::cout << "paper reports: 4750 nodes; abstract says 24101 processors "
               "(the per-system\ncolumn of Table 1 sums to 24092 -- see "
               "DESIGN.md).\n";
  return 0;
}
