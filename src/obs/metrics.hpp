// Thread-safe metrics registry: counters, gauges, and log-bucketed
// histograms for latencies and sizes.
//
// Design constraints, in priority order:
//   1. Recording must be cheap enough for instrumented hot paths: a
//      metric handle is looked up once (shared-lock map probe) and then
//      recorded through lock-free atomics. Call sites on hot loops cache
//      the handle per stage/shard, never per record.
//   2. Collection must never perturb results: nothing here touches the
//      PRNG streams or changes iteration order, so traces and fits are
//      bit-identical with observability on or off (asserted by
//      tests/obs/determinism_obs_test.cpp).
//   3. Everything can be turned off: obs::disable() flips one atomic that
//      call sites check first, and building with -DHPCFAIL_OBS_DISABLE
//      compiles enabled() down to `false` so the branches fold away.
//
// Metric names are dotted paths with optional {key=value} labels, e.g.
// "synth.shard_seconds{system=20}". The registry treats the full string
// as the identity; exporters may re-interpret labels.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail::obs {

/// True when metric recording is globally enabled (the default). Compiled
/// to a constant false under -DHPCFAIL_OBS_DISABLE.
#ifdef HPCFAIL_OBS_DISABLE
constexpr bool enabled() noexcept { return false; }
#else
bool enabled() noexcept;
#endif

/// Globally enables/disables recording. Metric handles stay valid while
/// disabled; record calls become no-ops at the call-site check.
void set_enabled(bool on) noexcept;
inline void enable() noexcept { set_enabled(true); }
inline void disable() noexcept { set_enabled(false); }

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or accumulated) floating-point value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-spaced histogram for latencies (seconds) and sizes (counts,
/// bytes). Buckets span [1e-9, 1e9) with four buckets per decade; values
/// outside the range land in the first / overflow bucket. One layout for
/// every histogram keeps recording branch-free and exports comparable.
class Histogram {
 public:
  static constexpr std::size_t kBucketsPerDecade = 4;
  static constexpr int kMinExponent = -9;  ///< first bound 1e-9
  static constexpr int kMaxExponent = 9;   ///< last finite bound 1e9
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExponent - kMinExponent) *
          kBucketsPerDecade +
      1;  ///< +1 overflow bucket (> 1e9)

  /// Upper bound of bucket `i` (inclusive); +infinity for the overflow
  /// bucket. Pure function of the fixed layout.
  static double bucket_bound(std::size_t i) noexcept;

  /// Index of the bucket whose bound is the smallest >= v.
  static std::size_t bucket_index(double v) noexcept;

  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// +infinity when empty.
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  /// -infinity when empty.
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;

 public:
  Histogram() noexcept;
};

/// One finished span, appended to the registry's span log by obs::Span.
/// Times are seconds since the process-wide steady-clock anchor.
struct FinishedSpan {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Point-in-time copy of a registry, for exporters and tests. Sorted by
/// name so exports are deterministic.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// (upper bound, count) for every non-empty bucket, ascending bound.
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<FinishedSpan> spans;
  std::uint64_t spans_dropped = 0;
};

/// Named metric store. Handles returned by counter()/gauge()/histogram()
/// stay valid for the registry's lifetime; lookups take a shared lock,
/// first-use creation a unique lock. The process-wide instance is
/// obs::registry(); tests may build their own.
class Registry {
 public:
  /// Spans beyond this many are counted but not stored, bounding memory
  /// on span-heavy workloads.
  static constexpr std::size_t kMaxSpans = 16384;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  void add_span(FinishedSpan span);

  MetricsSnapshot snapshot() const;

  /// Drops every metric and span. Outstanding handles are invalidated;
  /// intended for test isolation, not concurrent use with recorders.
  void reset();

 private:
  template <typename T>
  T& get_or_create(std::map<std::string, std::unique_ptr<T>>& map,
                   std::string_view name);

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;

  mutable std::mutex span_mutex_;
  std::vector<FinishedSpan> spans_;
  std::uint64_t spans_dropped_ = 0;
};

/// The process-wide registry every built-in instrumentation point records
/// into.
Registry& registry();

}  // namespace hpcfail::obs
