#include "obs/metrics.hpp"

#include <cmath>
#include <limits>

namespace hpcfail::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

#ifndef HPCFAIL_OBS_DISABLE
bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
#endif

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram() noexcept {
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double Histogram::bucket_bound(std::size_t i) noexcept {
  if (i + 1 >= kBucketCount) return std::numeric_limits<double>::infinity();
  const double exponent =
      kMinExponent +
      static_cast<double>(i + 1) / static_cast<double>(kBucketsPerDecade);
  return std::pow(10.0, exponent);
}

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in the first bucket
  const double decades = std::log10(v) - kMinExponent;
  if (decades < 0.0) return 0;
  const auto i = static_cast<std::size_t>(
      decades * static_cast<double>(kBucketsPerDecade));
  if (i >= kBucketCount) return kBucketCount - 1;
  // log10 rounding can land one bucket off in either direction; nudge so
  // bounds stay inclusive (v exactly on a bound belongs to that bucket).
  if (v > bucket_bound(i) && i + 1 < kBucketCount) return i + 1;
  if (i > 0 && v <= bucket_bound(i - 1)) return i - 1;
  return i;
}

void Histogram::record(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

template <typename T>
T& Registry::get_or_create(std::map<std::string, std::unique_ptr<T>>& map,
                           std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = map.find(std::string(name));
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = map[std::string(name)];
  if (!slot) slot = std::make_unique<T>();
  return *slot;
}

Counter& Registry::counter(std::string_view name) {
  return get_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return get_or_create(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return get_or_create(histograms_, name);
}

void Registry::add_span(FinishedSpan span) {
  std::lock_guard lock(span_mutex_);
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::shared_lock lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace_back(name, c->value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, g->value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      MetricsSnapshot::HistogramValue hv;
      hv.name = name;
      hv.count = h->count();
      hv.sum = h->sum();
      hv.min = hv.count ? h->min() : 0.0;
      hv.max = hv.count ? h->max() : 0.0;
      for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
        const std::uint64_t n = h->bucket_count(i);
        if (n != 0) hv.buckets.emplace_back(Histogram::bucket_bound(i), n);
      }
      snap.histograms.push_back(std::move(hv));
    }
  }
  {
    std::lock_guard lock(span_mutex_);
    snap.spans = spans_;
    snap.spans_dropped = spans_dropped_;
  }
  return snap;
}

void Registry::reset() {
  std::unique_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  lock.unlock();
  std::lock_guard span_lock(span_mutex_);
  spans_.clear();
  spans_dropped_ = 0;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace hpcfail::obs
