// RAII timing primitives on top of the metrics registry.
//
//   Span        -- named interval with a unique id and a parent id, logged
//                  to the registry's span list. Nesting is tracked through
//                  a thread-local "current span"; ThreadPool::submit
//                  captures it at submit time and restores it inside the
//                  worker (via SpanContext), so spans nest correctly
//                  across task boundaries: work fanned out by
//                  parallel_for is parented to the span that submitted
//                  it, not to whatever the worker ran last.
//   ScopedTimer -- records its lifetime into a latency histogram
//                  ("<name>.seconds"); the cheap building block for
//                  per-shard / per-fit timings.
//   StageTimer  -- wall + process-CPU time of one pipeline stage,
//                  accumulated into "stage.<name>.wall_seconds" /
//                  ".cpu_seconds" gauges and a ".runs" counter; the unit
//                  the `hpcfail profile` breakdown table is built from.
//
// All three are no-ops (beyond reading two clocks) while obs is disabled.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace hpcfail::obs {

/// Id of the innermost live Span on this thread; 0 when none.
std::uint64_t current_span_id() noexcept;

/// Seconds since the process-wide steady-clock anchor (first use).
double process_uptime_seconds() noexcept;

/// Restores a captured span id as this thread's current span for the
/// lifetime of the guard. Used by ThreadPool to propagate the submitting
/// thread's span into the worker; rarely needed directly.
class SpanContext {
 public:
  explicit SpanContext(std::uint64_t span_id) noexcept;
  ~SpanContext();
  SpanContext(const SpanContext&) = delete;
  SpanContext& operator=(const SpanContext&) = delete;

 private:
  std::uint64_t previous_;
};

/// Named interval. On destruction the finished span (id, parent, name,
/// start, duration) is appended to the registry's span log and its
/// duration recorded into histogram "span.<name>.seconds".
class Span {
 public:
  explicit Span(std::string name, Registry& reg = registry());
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  std::uint64_t id() const noexcept { return id_; }
  std::uint64_t parent_id() const noexcept { return parent_; }

 private:
  Registry* registry_;
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_{};
  bool active_ = false;
};

/// Records its lifetime (seconds) into histogram "<name>.seconds".
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name, Registry& reg = registry());
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at destruction; later stops are no-ops.
  void stop() noexcept;

  /// Seconds since construction (or until stop() when stopped).
  double elapsed_seconds() const noexcept;

 private:
  Histogram* histogram_ = nullptr;  ///< null when obs is disabled
  std::chrono::steady_clock::time_point start_;
  double stopped_elapsed_ = -1.0;
};

/// Wall + process-CPU time of one named pipeline stage. stop() (or the
/// destructor) accumulates into gauges "stage.<name>.wall_seconds" and
/// "stage.<name>.cpu_seconds" and counter "stage.<name>.runs", so
/// repeated stages sum; the readers (profile subcommand, exporters) see
/// stage totals.
class StageTimer {
 public:
  explicit StageTimer(std::string name, Registry& reg = registry());
  ~StageTimer() { stop(); }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void stop() noexcept;

  double wall_seconds() const noexcept;
  double cpu_seconds() const noexcept;

 private:
  Registry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point wall_start_;
  double cpu_start_ = 0.0;
  double stopped_wall_ = -1.0;
  double stopped_cpu_ = -1.0;
};

/// CLOCK_PROCESS_CPUTIME_ID (all threads) in seconds; falls back to
/// std::clock where unavailable.
double process_cpu_seconds() noexcept;

}  // namespace hpcfail::obs
