#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>

#include "common/error.hpp"

namespace hpcfail::obs {

namespace {

// Shortest round-trip decimal rendering; JSON has no infinity literal, so
// non-finite values become very large sentinels only JSON needs (the
// snapshot never produces them for counts/sums, only min/max of empty
// histograms, which snapshot() already zeroes).
std::string format_number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string out(buf, res.ptr);
  return out;
}

std::string format_number(std::uint64_t v) { return std::to_string(v); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Splits "base{k=v,k2=v2}" into the base name and the label list.
void split_labels(std::string_view name, std::string& base,
                  std::vector<std::pair<std::string, std::string>>& labels) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    base = std::string(name);
    return;
  }
  base = std::string(name.substr(0, brace));
  std::string_view inside = name.substr(brace + 1,
                                        name.size() - brace - 2);
  while (!inside.empty()) {
    const auto comma = inside.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? inside : inside.substr(0, comma);
    const auto eq = item.find('=');
    if (eq != std::string_view::npos) {
      labels.emplace_back(std::string(item.substr(0, eq)),
                          std::string(item.substr(eq + 1)));
    }
    if (comma == std::string_view::npos) break;
    inside.remove_prefix(comma + 1);
  }
}

std::string prom_sanitize(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_name(std::string_view name,
                      std::vector<std::pair<std::string, std::string>>&
                          labels) {
  std::string base;
  split_labels(name, base, labels);
  return "hpcfail_" + prom_sanitize(base);
}

std::string prom_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    std::string_view extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_sanitize(k) + "=\"" + std::string(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

ExportFormat export_format_from_string(std::string_view text) {
  if (text == "json") return ExportFormat::json;
  if (text == "csv") return ExportFormat::csv;
  if (text == "prom" || text == "prometheus") return ExportFormat::prometheus;
  throw ValidationError("unknown metrics format '" + std::string(text) +
                        "' (expected json, csv, or prom)");
}

std::string to_string(ExportFormat format) {
  switch (format) {
    case ExportFormat::json: return "json";
    case ExportFormat::csv: return "csv";
    case ExportFormat::prometheus: return "prom";
  }
  return "json";
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"";
  out += kMetricsSchemaName;
  out += "\",\n";
  out += "  \"schema_version\": " + std::to_string(kMetricsSchemaVersion) +
         ",\n";

  out += "  \"counters\": [";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& [name, value] = snapshot.counters[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + json_escape(name) +
           "\", \"value\": " + format_number(value) + "}";
  }
  out += snapshot.counters.empty() ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& [name, value] = snapshot.gauges[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + json_escape(name) +
           "\", \"value\": " + format_number(value) + "}";
  }
  out += snapshot.gauges.empty() ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + json_escape(h.name) +
           "\", \"count\": " + format_number(h.count) +
           ", \"sum\": " + format_number(h.sum) +
           ", \"min\": " + format_number(h.min) +
           ", \"max\": " + format_number(h.max) + ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out += ", ";
      out += "{\"le\": " + format_number(h.buckets[b].first) +
             ", \"count\": " + format_number(h.buckets[b].second) + "}";
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "],\n" : "\n  ],\n";

  out += "  \"spans\": [";
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    const auto& s = snapshot.spans[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"id\": " + std::to_string(s.id) +
           ", \"parent_id\": " + std::to_string(s.parent_id) +
           ", \"name\": \"" + json_escape(s.name) +
           "\", \"start_seconds\": " + format_number(s.start_seconds) +
           ", \"duration_seconds\": " + format_number(s.duration_seconds) +
           "}";
  }
  out += snapshot.spans.empty() ? "],\n" : "\n  ],\n";

  out += "  \"spans_dropped\": " + std::to_string(snapshot.spans_dropped) +
         "\n";
  out += "}\n";
  return out;
}

std::string to_csv(const MetricsSnapshot& snapshot) {
  // One flat series per row: kind,name,field,value. report::Series and
  // gnuplot both ingest this directly.
  std::string out = "kind,name,field,value\n";
  const auto esc = [](const std::string& name) {
    // Metric names may contain commas inside labels; quote per RFC 4180.
    if (name.find(',') == std::string::npos &&
        name.find('"') == std::string::npos) {
      return name;
    }
    std::string quoted = "\"";
    for (const char c : name) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  for (const auto& [name, value] : snapshot.counters) {
    out += "counter," + esc(name) + ",value," + format_number(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "gauge," + esc(name) + ",value," + format_number(value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "histogram," + esc(h.name) + ",count," + format_number(h.count) +
           "\n";
    out += "histogram," + esc(h.name) + ",sum," + format_number(h.sum) + "\n";
    out += "histogram," + esc(h.name) + ",min," + format_number(h.min) + "\n";
    out += "histogram," + esc(h.name) + ",max," + format_number(h.max) + "\n";
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::vector<std::pair<std::string, std::string>> labels;
    const std::string metric = prom_name(name, labels);
    out += "# TYPE " + metric + " counter\n";
    out += metric + prom_labels(labels) + " " + format_number(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::vector<std::pair<std::string, std::string>> labels;
    const std::string metric = prom_name(name, labels);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + prom_labels(labels) + " " + format_number(value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    std::vector<std::pair<std::string, std::string>> labels;
    const std::string metric = prom_name(h.name, labels);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [le, n] : h.buckets) {
      cumulative += n;
      if (std::isinf(le)) continue;  // folded into the +Inf bucket below
      out += metric + "_bucket" +
             prom_labels(labels, "le=\"" + format_number(le) + "\"") + " " +
             format_number(cumulative) + "\n";
    }
    out += metric + "_bucket" + prom_labels(labels, "le=\"+Inf\"") + " " +
           format_number(h.count) + "\n";
    out += metric + "_sum" + prom_labels(labels) + " " +
           format_number(h.sum) + "\n";
    out += metric + "_count" + prom_labels(labels) + " " +
           format_number(h.count) + "\n";
  }
  return out;
}

std::string export_metrics(const MetricsSnapshot& snapshot,
                           ExportFormat format) {
  switch (format) {
    case ExportFormat::json: return to_json(snapshot);
    case ExportFormat::csv: return to_csv(snapshot);
    case ExportFormat::prometheus: return to_prometheus(snapshot);
  }
  return to_json(snapshot);
}

void write_metrics_file(const std::string& path, ExportFormat format,
                        const Registry& reg) {
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open '" + path + "' for writing");
  }
  out << export_metrics(reg.snapshot(), format);
  if (!out) throw IoError("write failed for '" + path + "'");
}

}  // namespace hpcfail::obs
