// Snapshot exporters: schema-versioned JSON (machine-readable perf
// trajectory, consumed by CI and written as BENCH_*.json), CSV series
// (report/gnuplot-ready), and a Prometheus-style text dump.
//
// All three render a MetricsSnapshot, so one snapshot can be exported in
// several formats consistently; the registry overloads snapshot for you.
// Numeric formatting uses shortest-round-trip (std::to_chars), so exports
// are byte-deterministic for a given snapshot.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace hpcfail::obs {

/// Bumped whenever the JSON layout changes incompatibly; consumers must
/// check it (tests/obs/export_test.cpp pins the layout).
inline constexpr int kMetricsSchemaVersion = 1;
inline constexpr std::string_view kMetricsSchemaName = "hpcfail.metrics";

enum class ExportFormat { json, csv, prometheus };

/// Parses "json" / "csv" / "prom" (or "prometheus"). Throws
/// ValidationError on anything else.
ExportFormat export_format_from_string(std::string_view text);
std::string to_string(ExportFormat format);

std::string to_json(const MetricsSnapshot& snapshot);
std::string to_csv(const MetricsSnapshot& snapshot);
std::string to_prometheus(const MetricsSnapshot& snapshot);

std::string export_metrics(const MetricsSnapshot& snapshot,
                           ExportFormat format);

/// Snapshots `reg` and writes it to `path` in `format`. Throws IoError
/// when the file cannot be written.
void write_metrics_file(const std::string& path, ExportFormat format,
                        const Registry& reg = registry());

}  // namespace hpcfail::obs
