#include "obs/span.hpp"

#include <ctime>

namespace hpcfail::obs {

namespace {

thread_local std::uint64_t tl_current_span = 0;
std::atomic<std::uint64_t> g_next_span_id{1};

std::chrono::steady_clock::time_point process_anchor() noexcept {
  static const auto anchor = std::chrono::steady_clock::now();
  return anchor;
}

double seconds_since(std::chrono::steady_clock::time_point from) noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

}  // namespace

std::uint64_t current_span_id() noexcept { return tl_current_span; }

double process_uptime_seconds() noexcept {
  return seconds_since(process_anchor());
}

double process_cpu_seconds() noexcept {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

SpanContext::SpanContext(std::uint64_t span_id) noexcept
    : previous_(tl_current_span) {
  tl_current_span = span_id;
}

SpanContext::~SpanContext() { tl_current_span = previous_; }

Span::Span(std::string name, Registry& reg)
    : registry_(&reg), name_(std::move(name)) {
  if (!enabled()) return;
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = tl_current_span;
  tl_current_span = id_;
  start_seconds_ = process_uptime_seconds();
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  tl_current_span = parent_;
  const double duration = seconds_since(start_);
  registry_->histogram("span." + name_ + ".seconds").record(duration);
  FinishedSpan finished;
  finished.id = id_;
  finished.parent_id = parent_;
  finished.name = std::move(name_);
  finished.start_seconds = start_seconds_;
  finished.duration_seconds = duration;
  registry_->add_span(std::move(finished));
}

ScopedTimer::ScopedTimer(std::string_view name, Registry& reg) {
  if (!enabled()) return;
  histogram_ = &reg.histogram(std::string(name) + ".seconds");
  start_ = std::chrono::steady_clock::now();
}

void ScopedTimer::stop() noexcept {
  if (histogram_ == nullptr) return;
  stopped_elapsed_ = seconds_since(start_);
  histogram_->record(stopped_elapsed_);
  histogram_ = nullptr;
}

double ScopedTimer::elapsed_seconds() const noexcept {
  if (stopped_elapsed_ >= 0.0) return stopped_elapsed_;
  return histogram_ != nullptr ? seconds_since(start_) : 0.0;
}

StageTimer::StageTimer(std::string name, Registry& reg)
    : registry_(&reg), name_(std::move(name)) {
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_ = process_cpu_seconds();
}

void StageTimer::stop() noexcept {
  if (stopped_wall_ >= 0.0) return;
  stopped_wall_ = seconds_since(wall_start_);
  stopped_cpu_ = process_cpu_seconds() - cpu_start_;
  if (!enabled()) return;
  registry_->gauge("stage." + name_ + ".wall_seconds").add(stopped_wall_);
  registry_->gauge("stage." + name_ + ".cpu_seconds").add(stopped_cpu_);
  registry_->counter("stage." + name_ + ".runs").add(1);
}

double StageTimer::wall_seconds() const noexcept {
  return stopped_wall_ >= 0.0 ? stopped_wall_ : seconds_since(wall_start_);
}

double StageTimer::cpu_seconds() const noexcept {
  return stopped_cpu_ >= 0.0 ? stopped_cpu_
                             : process_cpu_seconds() - cpu_start_;
}

}  // namespace hpcfail::obs
