#include "dist/empirical.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace hpcfail::dist {

namespace {
constexpr double kDensityFloor = 1e-300;
}

Empirical::Empirical(std::span<const double> sample,
                     std::size_t density_bins)
    : ecdf_(sample) {
  HPCFAIL_EXPECTS(density_bins >= 1, "need at least one density bin");
  mean_ = hpcfail::stats::mean(sample);
  variance_ = hpcfail::stats::variance(sample);

  bin_lo_ = ecdf_.min();
  const double span = ecdf_.max() - ecdf_.min();
  // A constant sample gets one degenerate bin; density stays floored.
  bin_width_ = span > 0.0 ? span / static_cast<double>(density_bins) : 1.0;
  density_.assign(density_bins, 0.0);
  const double weight =
      1.0 / (static_cast<double>(sample.size()) * bin_width_);
  for (const double x : sample) {
    auto idx = static_cast<std::size_t>((x - bin_lo_) / bin_width_);
    if (idx >= density_.size()) idx = density_.size() - 1;
    density_[idx] += weight;
  }
}

double Empirical::log_pdf(double x) const {
  if (x < bin_lo_ ||
      x > bin_lo_ + bin_width_ * static_cast<double>(density_.size())) {
    return std::log(kDensityFloor);
  }
  auto idx = static_cast<std::size_t>((x - bin_lo_) / bin_width_);
  if (idx >= density_.size()) idx = density_.size() - 1;
  return std::log(std::max(density_[idx], kDensityFloor));
}

double Empirical::cdf(double x) const { return ecdf_(x); }

double Empirical::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
  return ecdf_.quantile(p);
}

double Empirical::sample(hpcfail::Rng& rng) const {
  return ecdf_.sorted_sample()[rng.uniform_index(ecdf_.size())];
}

std::string Empirical::describe() const {
  return "empirical(n=" + std::to_string(ecdf_.size()) + ")";
}

std::unique_ptr<Distribution> Empirical::clone() const {
  return std::make_unique<Empirical>(*this);
}

}  // namespace hpcfail::dist
