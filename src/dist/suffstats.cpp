#include "dist/suffstats.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hpcfail::dist {

SuffStats SuffStats::compute(std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(floor_at > 0.0,
                  "sufficient statistics require a positive floor");
  SuffStats s;
  s.n = xs.size();
  s.floor_at = floor_at;
  if (xs.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0,
                    "sufficient statistics require non-negative data");
    const double v = x < floor_at ? floor_at : x;
    const double lx = std::log(v);
    s.sum_raw += x;
    s.sum += v;
    s.sum_log += lx;
    s.sum_log_sq += lx * lx;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  return s;
}

}  // namespace hpcfail::dist
