#include "dist/suffstats.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hpcfail::dist {

SuffStats SuffStats::compute(std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(floor_at > 0.0,
                  "sufficient statistics require a positive floor");
  SuffStats s;
  s.n = xs.size();
  s.floor_at = floor_at;
  if (xs.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0,
                    "sufficient statistics require non-negative data");
    const double v = x < floor_at ? floor_at : x;
    const double lx = std::log(v);
    s.sum_raw += x;
    s.sum += v;
    s.sum_sq += v * v;
    s.sum_log += lx;
    s.sum_log_sq += lx * lx;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  return s;
}

void SuffStats::add(double x) {
  HPCFAIL_EXPECTS(floor_at > 0.0,
                  "sufficient statistics require a positive floor");
  HPCFAIL_EXPECTS(x >= 0.0,
                  "sufficient statistics require non-negative data");
  if (n == 0) {
    min = std::numeric_limits<double>::infinity();
    max = -std::numeric_limits<double>::infinity();
  }
  ++n;
  const double v = x < floor_at ? floor_at : x;
  const double lx = std::log(v);
  sum_raw += x;
  sum += v;
  sum_sq += v * v;
  sum_log += lx;
  sum_log_sq += lx * lx;
  if (v < min) min = v;
  if (v > max) max = v;
}

void SuffStats::merge(const SuffStats& other) {
  if (other.n == 0) return;  // empty carries no floored data: any floor
  HPCFAIL_EXPECTS(n == 0 || floor_at == other.floor_at,
                  "cannot merge sufficient statistics with different floors");
  if (n == 0) {
    *this = other;
    return;
  }
  n += other.n;
  sum_raw += other.sum_raw;
  sum += other.sum;
  sum_sq += other.sum_sq;
  sum_log += other.sum_log;
  sum_log_sq += other.sum_log_sq;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
}

}  // namespace hpcfail::dist
