#include "dist/normal.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/special.hpp"

namespace hpcfail::dist {

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  HPCFAIL_EXPECTS(std::isfinite(mu), "normal mu must be finite");
  HPCFAIL_EXPECTS(sigma > 0.0 && std::isfinite(sigma),
                  "normal sigma must be positive and finite");
}

Normal Normal::fit_mle(std::span<const double> xs) {
  HPCFAIL_EXPECTS(xs.size() >= 2, "normal fit needs at least 2 observations");
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const auto n = static_cast<double>(xs.size());
  const double mu = sum / n;
  double ss = 0.0;
  for (const double x : xs) {
    const double d = x - mu;
    ss += d * d;
  }
  const double sigma = std::sqrt(ss / n);
  if (!(sigma > 0.0)) {
    throw FitError("normal fit is degenerate on a constant sample");
  }
  return Normal(mu, sigma);
}

double Normal::log_pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return -0.5 * z * z - std::log(sigma_) -
         0.5 * std::log(2.0 * 3.14159265358979323846);
}

double Normal::cdf(double x) const {
  return hpcfail::stats::normal_cdf((x - mu_) / sigma_);
}

double Normal::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
  return mu_ + sigma_ * hpcfail::stats::normal_quantile(p);
}

double Normal::sample(hpcfail::Rng& rng) const {
  double u1;
  double u2;
  double s;
  do {
    u1 = rng.uniform(-1.0, 1.0);
    u2 = rng.uniform(-1.0, 1.0);
    s = u1 * u1 + u2 * u2;
  } while (s >= 1.0 || s == 0.0);
  const double z = u1 * std::sqrt(-2.0 * std::log(s) / s);
  return mu_ + sigma_ * z;
}

std::string Normal::describe() const {
  return "normal(mu=" + hpcfail::format_double(mu_) +
         ", sigma=" + hpcfail::format_double(sigma_) + ")";
}

std::unique_ptr<Distribution> Normal::clone() const {
  return std::make_unique<Normal>(*this);
}

}  // namespace hpcfail::dist
