// Normal distribution — used in Fig 3(b) to model the number of failures
// per node, where it (and the lognormal) beats the Poisson.
#pragma once

#include <span>

#include "dist/distribution.hpp"

namespace hpcfail::dist {

class Normal final : public Distribution {
 public:
  /// sigma > 0 and both parameters finite, otherwise InvalidArgument.
  Normal(double mu, double sigma);

  /// Closed-form MLE (population variance). Requires >= 2 observations;
  /// a constant sample throws FitError (sigma would be zero).
  static Normal fit_mle(std::span<const double> xs);

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return mu_; }
  double variance() const override { return sigma_ * sigma_; }
  double sample(hpcfail::Rng& rng) const override;
  std::string name() const override { return "normal"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace hpcfail::dist
