#include "dist/poisson.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace hpcfail::dist {

Poisson::Poisson(double mean) : lambda_(mean) {
  HPCFAIL_EXPECTS(mean > 0.0 && std::isfinite(mean),
                  "poisson mean must be positive and finite");
}

Poisson Poisson::fit_mle(std::span<const double> xs) {
  HPCFAIL_EXPECTS(!xs.empty(), "poisson fit on empty sample");
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0, "poisson fit requires non-negative data");
  }
  const double m = hpcfail::stats::mean(xs);
  HPCFAIL_EXPECTS(m > 0.0, "poisson fit requires positive sample mean");
  return Poisson(m);
}

double Poisson::log_pmf(long long k) const {
  if (k < 0) return -std::numeric_limits<double>::infinity();
  const auto kd = static_cast<double>(k);
  return kd * std::log(lambda_) - lambda_ - hpcfail::stats::log_gamma_unchecked(kd + 1.0);
}

double Poisson::pmf(long long k) const { return std::exp(log_pmf(k)); }

double Poisson::log_pdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  return log_pmf(static_cast<long long>(std::floor(x)));
}

double Poisson::cdf(double x) const {
  if (x < 0.0) return 0.0;
  const auto k = std::floor(x);
  // P(X <= k) = Q(k + 1, lambda).
  return hpcfail::stats::reg_gamma_upper(k + 1.0, lambda_);
}

double Poisson::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
  // Start near the normal approximation, then correct by stepping.
  double k = std::max(
      0.0, std::floor(lambda_ + std::sqrt(lambda_) *
                                    hpcfail::stats::normal_quantile(p)));
  while (k > 0.0 && cdf(k - 1.0) >= p) k -= 1.0;
  while (cdf(k) < p) k += 1.0;
  return k;
}

double Poisson::sample(hpcfail::Rng& rng) const {
  double remaining = lambda_;
  double total = 0.0;
  // Halve until Knuth's product of uniforms cannot underflow.
  while (remaining > 30.0) {
    const Poisson half(remaining / 2.0);
    total += half.sample(rng);
    remaining /= 2.0;
  }
  const double limit = std::exp(-remaining);
  double product = rng.uniform_pos();
  double count = 0.0;
  while (product > limit) {
    product *= rng.uniform_pos();
    count += 1.0;
  }
  return total + count;
}

std::string Poisson::describe() const {
  return "poisson(mean=" + hpcfail::format_double(lambda_) + ")";
}

std::unique_ptr<Distribution> Poisson::clone() const {
  return std::make_unique<Poisson>(*this);
}

}  // namespace hpcfail::dist
