// Gamma distribution — ties with the Weibull as the paper's best model for
// time between failures late in production (Fig 6b/6d).
#pragma once

#include <span>

#include "dist/distribution.hpp"
#include "dist/suffstats.hpp"

namespace hpcfail::dist {

class GammaDist final : public Distribution {
 public:
  /// Density x^{shape-1} e^{-x/scale} / (Gamma(shape) scale^shape); both
  /// parameters > 0 and finite, otherwise InvalidArgument.
  GammaDist(double shape, double scale);

  /// MLE: Newton iteration on ln k - psi(k) = ln(mean) - mean(ln x),
  /// started from the Minka closed-form approximation; then
  /// scale = mean / k. Non-positive observations are floored at `floor_at`
  /// (same rationale as Weibull::fit_mle). Requires >= 2 observations;
  /// a constant-valued sample throws FitError.
  static GammaDist fit_mle(std::span<const double> xs, double floor_at = 1e-9);

  /// MLE from precomputed sufficient statistics: O(1) in the sample size
  /// (the Newton iteration only touches the sums). Bit-identical to the
  /// span overload on the same sample and floor.
  static GammaDist fit_mle(const SuffStats& stats);

  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }

  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }
  double sample(hpcfail::Rng& rng) const override;
  std::string name() const override { return "gamma"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace hpcfail::dist
