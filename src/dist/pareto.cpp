#include "dist/pareto.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpcfail::dist {

Pareto::Pareto(double alpha, double x_min) : alpha_(alpha), x_min_(x_min) {
  HPCFAIL_EXPECTS(alpha > 0.0 && std::isfinite(alpha),
                  "pareto alpha must be positive and finite");
  HPCFAIL_EXPECTS(x_min > 0.0 && std::isfinite(x_min),
                  "pareto x_min must be positive and finite");
}

Pareto Pareto::fit_mle(std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(xs.size() >= 2, "pareto fit needs at least 2 observations");
  HPCFAIL_EXPECTS(floor_at > 0.0, "pareto fit floor must be positive");
  double x_min = std::numeric_limits<double>::infinity();
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0, "pareto fit requires non-negative data");
    x_min = std::min(x_min, x < floor_at ? floor_at : x);
  }
  double sum_log_ratio = 0.0;
  for (const double x : xs) {
    const double v = x < floor_at ? floor_at : x;
    sum_log_ratio += std::log(v / x_min);
  }
  if (!(sum_log_ratio > 0.0)) {
    throw FitError("pareto fit is degenerate on a constant sample");
  }
  const double alpha = static_cast<double>(xs.size()) / sum_log_ratio;
  return Pareto(alpha, x_min);
}

double Pareto::log_pdf(double x) const {
  if (x < x_min_) return -std::numeric_limits<double>::infinity();
  return std::log(alpha_) + alpha_ * std::log(x_min_) -
         (alpha_ + 1.0) * std::log(x);
}

double Pareto::cdf(double x) const {
  if (x <= x_min_) return 0.0;
  return 1.0 - std::pow(x_min_ / x, alpha_);
}

double Pareto::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
  return x_min_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * x_min_ / (alpha_ - 1.0);
}

double Pareto::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double a = alpha_;
  return x_min_ * x_min_ * a / ((a - 1.0) * (a - 1.0) * (a - 2.0));
}

double Pareto::sample(hpcfail::Rng& rng) const {
  return x_min_ * std::pow(rng.uniform_pos(), -1.0 / alpha_);
}

double Pareto::hazard(double x) const {
  if (x < x_min_) return 0.0;
  return alpha_ / x;
}

std::string Pareto::describe() const {
  return "pareto(alpha=" + hpcfail::format_double(alpha_) +
         ", x_min=" + hpcfail::format_double(x_min_) + ")";
}

std::unique_ptr<Distribution> Pareto::clone() const {
  return std::make_unique<Pareto>(*this);
}

}  // namespace hpcfail::dist
