#include "dist/weibull.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/solver.hpp"
#include "stats/special.hpp"

namespace hpcfail::dist {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  HPCFAIL_EXPECTS(shape > 0.0 && std::isfinite(shape),
                  "weibull shape must be positive and finite");
  HPCFAIL_EXPECTS(scale > 0.0 && std::isfinite(scale),
                  "weibull scale must be positive and finite");
}

Weibull Weibull::fit_mle(std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(xs.size() >= 2, "weibull fit needs at least 2 observations");
  HPCFAIL_EXPECTS(floor_at > 0.0, "weibull fit floor must be positive");
  std::vector<double> logs;
  logs.reserve(xs.size());
  double mean_log = 0.0;
  double first = 0.0;
  bool all_equal = true;
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0, "weibull fit requires non-negative data");
    const double v = x < floor_at ? floor_at : x;
    if (logs.empty()) {
      first = v;
    } else if (v != first) {
      all_equal = false;
    }
    const double lx = std::log(v);
    logs.push_back(lx);
    mean_log += lx;
  }
  mean_log /= static_cast<double>(logs.size());

  if (all_equal) {
    throw FitError("weibull fit is degenerate on a constant sample");
  }
  return fit_mle_from_logs(logs, mean_log);
}

Weibull Weibull::fit_mle(std::span<const double> xs, const SuffStats& stats) {
  HPCFAIL_EXPECTS(xs.size() >= 2, "weibull fit needs at least 2 observations");
  HPCFAIL_EXPECTS(xs.size() == stats.n,
                  "weibull fit statistics do not match the sample");
  if (stats.constant()) {
    throw FitError("weibull fit is degenerate on a constant sample");
  }
  std::vector<double> logs;
  logs.reserve(xs.size());
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0, "weibull fit requires non-negative data");
    const double v = x < stats.floor_at ? stats.floor_at : x;
    logs.push_back(std::log(v));
  }
  const double mean_log = stats.sum_log / static_cast<double>(stats.n);
  return fit_mle_from_logs(logs, mean_log, shape_hint_from(stats));
}

double Weibull::shape_hint_from(const SuffStats& stats) noexcept {
  if (stats.n == 0) return 0.0;
  const auto n = static_cast<double>(stats.n);
  const double mean_log = stats.sum_log / n;
  const double var_log = stats.sum_log_sq / n - mean_log * mean_log;
  if (!(var_log > 0.0)) return 0.0;
  // For Weibull data, log x is Gumbel with stddev (pi/sqrt(6)) / shape.
  return 1.2825498301618641 / std::sqrt(var_log);
}

Weibull Weibull::fit_mle_from_logs(std::span<const double> logs,
                                   double mean_log, double shape_hint) {
  HPCFAIL_EXPECTS(logs.size() >= 2,
                  "weibull fit needs at least 2 observations");
  // Profile-likelihood score in the shape k. Work with x scaled by its
  // geometric mean (subtract mean_log in the exponent) for stability on
  // second-scale data spanning 7 orders of magnitude. Only the cached
  // logarithms enter the iteration, so each solver step is log()-free.
  const auto score_and_slope = [&](double k, double& slope) {
    double sw = 0.0;       // sum x^k (scaled)
    double swl = 0.0;      // sum x^k ln x
    double swl2 = 0.0;     // sum x^k (ln x)^2
    for (const double lx : logs) {
      const double w = std::exp(k * (lx - mean_log));
      sw += w;
      swl += w * lx;
      swl2 += w * lx * lx;
    }
    const double ratio = swl / sw;
    slope = (swl2 / sw - ratio * ratio) + 1.0 / (k * k);
    return ratio - 1.0 / k - mean_log;
  };
  const auto score = [&](double k) {
    double unused;
    return score_and_slope(k, unused);
  };

  // The score is strictly increasing in k (its slope is a weighted
  // log-variance plus 1/k^2), so any sign-changing bracket finds the same
  // root. A trustworthy hint gives a tight initial bracket that
  // expand_bracket usually accepts as-is.
  double lo = 1e-3;
  double hi = 10.0;
  if (shape_hint > 0.0 && std::isfinite(shape_hint)) {
    const double centre = std::clamp(shape_hint, 1e-3, 64.0);
    lo = centre / 1.5;
    hi = centre * 1.5;
  }
  double f_lo = 0.0;
  double f_hi = 0.0;
  hpcfail::stats::expand_bracket(score, lo, hi, f_lo, f_hi,
                                 /*positive_only=*/true);
  const double k = hpcfail::stats::newton_bracketed_fdf(
      [&](double kk, double& slope) { return score_and_slope(kk, slope); },
      lo, hi, f_lo, f_hi);

  double sw = 0.0;
  for (const double lx : logs) sw += std::exp(k * (lx - mean_log));
  const double scale =
      std::exp(mean_log +
               std::log(sw / static_cast<double>(logs.size())) / k);
  return Weibull(k, scale);
}

Weibull Weibull::fit_mle_censored(std::span<const double> events,
                                  std::span<const double> censored,
                                  double floor_at) {
  HPCFAIL_EXPECTS(events.size() >= 2,
                  "censored weibull fit needs at least 2 events");
  HPCFAIL_EXPECTS(floor_at > 0.0, "weibull fit floor must be positive");
  // Pool events and censored times; keep the event count separate. The
  // score has the same form as the uncensored one, with the weighted
  // sums over the pooled data and the log-mean over events only:
  //   g(k) = sum_all x^k ln x / sum_all x^k - 1/k
  //          - (1/n_events) sum_events ln x.
  std::vector<double> all;
  all.reserve(events.size() + censored.size());
  double mean_event_log = 0.0;
  for (const double x : events) {
    HPCFAIL_EXPECTS(x >= 0.0, "weibull fit requires non-negative data");
    const double v = x < floor_at ? floor_at : x;
    all.push_back(v);
    mean_event_log += std::log(v);
  }
  mean_event_log /= static_cast<double>(events.size());
  for (const double x : censored) {
    HPCFAIL_EXPECTS(x >= 0.0, "weibull fit requires non-negative data");
    all.push_back(x < floor_at ? floor_at : x);
  }

  double pooled_log = 0.0;
  bool varies = false;
  for (const double v : all) {
    pooled_log += std::log(v);
    varies = varies || v != all.front();
  }
  if (!varies) {
    throw FitError("censored weibull fit is degenerate on a constant sample");
  }
  const double center = pooled_log / static_cast<double>(all.size());

  const auto score_and_slope = [&](double k, double& slope) {
    double sw = 0.0;
    double swl = 0.0;
    double swl2 = 0.0;
    for (const double v : all) {
      const double lx = std::log(v);
      const double w = std::exp(k * (lx - center));
      sw += w;
      swl += w * lx;
      swl2 += w * lx * lx;
    }
    const double ratio = swl / sw;
    slope = (swl2 / sw - ratio * ratio) + 1.0 / (k * k);
    return ratio - 1.0 / k - mean_event_log;
  };
  const auto score = [&](double k) {
    double unused;
    return score_and_slope(k, unused);
  };

  double lo = 1e-3;
  double hi = 10.0;
  double f_lo = 0.0;
  double f_hi = 0.0;
  hpcfail::stats::expand_bracket(score, lo, hi, f_lo, f_hi,
                                 /*positive_only=*/true);
  const double k = hpcfail::stats::newton_bracketed_fdf(
      [&](double kk, double& slope) { return score_and_slope(kk, slope); },
      lo, hi, f_lo, f_hi);

  double sw = 0.0;
  for (const double v : all) sw += std::exp(k * (std::log(v) - center));
  const double scale =
      std::exp(center +
               std::log(sw / static_cast<double>(events.size())) / k);
  return Weibull(k, scale);
}

double Weibull::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double z = x / scale_;
  return std::log(shape_ / scale_) + (shape_ - 1.0) * std::log(z) -
         std::pow(z, shape_);
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ *
         std::exp(hpcfail::stats::log_gamma_unchecked(1.0 + 1.0 / shape_));
}

double Weibull::variance() const {
  const double g1 =
      std::exp(hpcfail::stats::log_gamma_unchecked(1.0 + 1.0 / shape_));
  const double g2 =
      std::exp(hpcfail::stats::log_gamma_unchecked(1.0 + 2.0 / shape_));
  return scale_ * scale_ * (g2 - g1 * g1);
}

double Weibull::hazard(double x) const {
  if (x <= 0.0) return 0.0;
  return shape_ / scale_ * std::pow(x / scale_, shape_ - 1.0);
}

double Weibull::sample(hpcfail::Rng& rng) const {
  return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
}

std::string Weibull::describe() const {
  return "weibull(shape=" + hpcfail::format_double(shape_) +
         ", scale=" + hpcfail::format_double(scale_) + ")";
}

std::unique_ptr<Distribution> Weibull::clone() const {
  return std::make_unique<Weibull>(*this);
}

}  // namespace hpcfail::dist
