// Two-phase hyperexponential distribution (H2) fitted by EM.
//
// Section 3 of the paper remarks that "a phase-type distribution with a
// high number of phases would likely give a better fit than any of the
// above standard distributions" but declines the extra degrees of freedom.
// This module makes that claim testable: H2 is the simplest non-trivial
// phase-type model (C^2 >= 1 by construction), and bench_ext_phasetype
// pits it against the Weibull on the synthetic trace.
#pragma once

#include <span>

#include "dist/distribution.hpp"

namespace hpcfail::dist {

/// EM fitting knobs for HyperExp::fit_em.
struct HyperExpEmOptions {
  int max_iterations = 400;
  double log_likelihood_tolerance = 1e-9;  ///< per-observation
};

class HyperExp final : public Distribution {
 public:
  /// Mixture p * Exp(rate1) + (1-p) * Exp(rate2). Requires p in [0, 1]
  /// and positive finite rates; throws InvalidArgument otherwise.
  HyperExp(double p, double rate1, double rate2);

  /// Maximum-likelihood fit via expectation-maximization, initialized by
  /// splitting the sample at its median. Values below `floor_at` are
  /// floored (same rationale as the other positive-support fitters).
  /// Requires >= 4 observations; a (near-)constant sample throws
  /// FitError (the two phases cannot be separated).
  static HyperExp fit_em(std::span<const double> xs, double floor_at = 1e-9,
                         HyperExpEmOptions options = HyperExpEmOptions{});

  double weight() const noexcept { return p_; }
  double rate1() const noexcept { return rate1_; }
  double rate2() const noexcept { return rate2_; }

  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  double sample(hpcfail::Rng& rng) const override;
  std::string name() const override { return "hyperexponential"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double p_;
  double rate1_;
  double rate2_;
};

}  // namespace hpcfail::dist
