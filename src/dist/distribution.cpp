#include "dist/distribution.hpp"

#include <cmath>
#include <limits>

namespace hpcfail::dist {

double Distribution::pdf(double x) const {
  const double lp = log_pdf(x);
  return std::isfinite(lp) ? std::exp(lp) : 0.0;
}

double Distribution::hazard(double x) const {
  const double survival = 1.0 - cdf(x);
  if (survival <= 0.0) return std::numeric_limits<double>::infinity();
  return pdf(x) / survival;
}

double Distribution::log_likelihood(std::span<const double> xs) const {
  double sum = 0.0;
  for (const double x : xs) sum += log_pdf(x);
  return sum;
}

double Distribution::cv_squared() const {
  const double m = mean();
  return variance() / (m * m);
}

}  // namespace hpcfail::dist
