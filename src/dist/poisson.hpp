// Poisson distribution — what per-node failure counts *would* follow if
// every node failed as an independent Poisson process with a common mean,
// the assumption behind much checkpointing work. Fig 3(b) shows it is a
// poor fit. Implemented on the common Distribution interface (the CDF is a
// step function on the reals; log_pdf evaluates the pmf at floor(x)) so the
// Fig 3 analysis can compare it directly with normal/lognormal fits.
#pragma once

#include <span>

#include "dist/distribution.hpp"

namespace hpcfail::dist {

class Poisson final : public Distribution {
 public:
  /// mean > 0 and finite, otherwise InvalidArgument.
  explicit Poisson(double mean);

  /// Closed-form MLE: lambda = sample mean. Requires non-negative data
  /// with positive mean.
  static Poisson fit_mle(std::span<const double> xs);

  double lambda() const noexcept { return lambda_; }

  /// pmf at the integer k (0 for k < 0).
  double pmf(long long k) const;
  double log_pmf(long long k) const;

  /// log pmf at floor(x); -inf for x < 0.
  double log_pdf(double x) const override;
  /// P(X <= floor(x)) via the regularized incomplete gamma identity.
  double cdf(double x) const override;
  /// Smallest integer k with P(X <= k) >= p.
  double quantile(double p) const override;
  double mean() const override { return lambda_; }
  double variance() const override { return lambda_; }
  /// Exact sampling: Knuth's product method, halving the mean recursively
  /// (Poisson(m) = Poisson(m/2) + Poisson(m/2)) to stay numerically safe
  /// for large means.
  double sample(hpcfail::Rng& rng) const override;
  std::string name() const override { return "poisson"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double lambda_;
};

}  // namespace hpcfail::dist
