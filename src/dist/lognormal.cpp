#include "dist/lognormal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/special.hpp"

namespace hpcfail::dist {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  HPCFAIL_EXPECTS(std::isfinite(mu), "lognormal mu must be finite");
  HPCFAIL_EXPECTS(sigma > 0.0 && std::isfinite(sigma),
                  "lognormal sigma must be positive and finite");
}

LogNormal LogNormal::from_mean_median(double mean, double median) {
  HPCFAIL_EXPECTS(median > 0.0, "lognormal median must be positive");
  HPCFAIL_EXPECTS(mean > median,
                  "lognormal requires mean > median (right skew)");
  const double mu = std::log(median);
  const double sigma = std::sqrt(2.0 * std::log(mean / median));
  return LogNormal(mu, sigma);
}

LogNormal LogNormal::fit_mle(std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(xs.size() >= 2,
                  "lognormal fit needs at least 2 observations");
  HPCFAIL_EXPECTS(floor_at > 0.0, "lognormal fit floor must be positive");
  double sum = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0, "lognormal fit requires non-negative data");
    const double floored = x < floor_at ? floor_at : x;
    lo = std::min(lo, floored);
    hi = std::max(hi, floored);
    sum += std::log(floored);
  }
  // Check the data, not the accumulated sigma: on a long constant sample
  // rounding in the mean leaves sigma ~1e-17 instead of exactly zero.
  if (lo == hi) {
    throw FitError("lognormal fit is degenerate on a constant sample");
  }
  const auto n = static_cast<double>(xs.size());
  const double mu = sum / n;
  double ss = 0.0;
  for (const double x : xs) {
    const double d = std::log(x < floor_at ? floor_at : x) - mu;
    ss += d * d;
  }
  const double sigma = std::sqrt(ss / n);
  if (!(sigma > 0.0)) {
    throw FitError("lognormal fit is degenerate on a constant sample");
  }
  return LogNormal(mu, sigma);
}

LogNormal LogNormal::fit_mle(const SuffStats& stats) {
  HPCFAIL_EXPECTS(stats.n >= 2, "lognormal fit needs at least 2 observations");
  if (stats.constant()) {
    throw FitError("lognormal fit is degenerate on a constant sample");
  }
  const auto n = static_cast<double>(stats.n);
  const double mu = stats.sum_log / n;
  // One-pass variance from the precomputed log sums; clamp the rounding
  // residual that can leave it a hair below zero on near-constant data.
  double var = stats.sum_log_sq / n - mu * mu;
  if (var < 0.0) var = 0.0;
  const double sigma = std::sqrt(var);
  if (!(sigma > 0.0)) {
    throw FitError("lognormal fit is degenerate on a constant sample");
  }
  return LogNormal(mu, sigma);
}

double LogNormal::median() const noexcept { return std::exp(mu_); }

double LogNormal::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x * sigma_) -
         0.5 * std::log(2.0 * 3.14159265358979323846);
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return hpcfail::stats::normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
  return std::exp(mu_ + sigma_ * hpcfail::stats::normal_quantile(p));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::sample(hpcfail::Rng& rng) const {
  // Marsaglia polar for the underlying normal.
  double u1;
  double u2;
  double s;
  do {
    u1 = rng.uniform(-1.0, 1.0);
    u2 = rng.uniform(-1.0, 1.0);
    s = u1 * u1 + u2 * u2;
  } while (s >= 1.0 || s == 0.0);
  const double z = u1 * std::sqrt(-2.0 * std::log(s) / s);
  return std::exp(mu_ + sigma_ * z);
}

std::string LogNormal::describe() const {
  return "lognormal(mu=" + hpcfail::format_double(mu_) +
         ", sigma=" + hpcfail::format_double(sigma_) + ")";
}

std::unique_ptr<Distribution> LogNormal::clone() const {
  return std::make_unique<LogNormal>(*this);
}

}  // namespace hpcfail::dist
