// Abstract interface for the continuous probability distributions used in
// the paper's fits (exponential, Weibull, gamma, lognormal, normal).
//
// Each concrete distribution is a small value type; the polymorphic
// interface exists so analyses can carry "the best-fitting model" without
// caring about its family. The hazard rate accessor exposes the property
// the paper reasons about (Weibull shape < 1 => decreasing hazard).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/rng.hpp"

namespace hpcfail::dist {

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density at x.
  double pdf(double x) const;

  /// Natural log of the density at x; -inf outside the support.
  virtual double log_pdf(double x) const = 0;

  /// Cumulative distribution function F(x).
  virtual double cdf(double x) const = 0;

  /// Quantile function F^{-1}(p) for p in (0, 1). Throws InvalidArgument
  /// outside that range.
  virtual double quantile(double p) const = 0;

  virtual double mean() const = 0;
  virtual double variance() const = 0;

  /// Draws one sample using the supplied deterministic generator.
  virtual double sample(hpcfail::Rng& rng) const = 0;

  /// Family name, e.g. "weibull".
  virtual std::string name() const = 0;

  /// Human-readable parameterization, e.g. "weibull(shape=0.70, scale=…)".
  virtual std::string describe() const = 0;

  virtual std::unique_ptr<Distribution> clone() const = 0;

  /// Hazard rate h(x) = f(x) / (1 - F(x)); +inf where F(x) == 1 to double
  /// precision. Families with a closed form override this to stay finite
  /// deep in the tail.
  virtual double hazard(double x) const;

  /// Sum of log_pdf over the sample (the MLE objective).
  double log_likelihood(std::span<const double> xs) const;

  /// Squared coefficient of variation, variance / mean^2.
  double cv_squared() const;
};

}  // namespace hpcfail::dist
