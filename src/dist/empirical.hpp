// Empirical (resampling) distribution on the common Distribution
// interface.
//
// Lets the simulators run directly against observed data -- e.g. feed a
// system's measured interarrival times straight into the checkpoint
// simulator -- with no parametric assumption at all, which is the natural
// baseline against which the paper's fitted models should be judged.
#pragma once

#include <span>
#include <vector>

#include "dist/distribution.hpp"
#include "stats/ecdf.hpp"

namespace hpcfail::dist {

class Empirical final : public Distribution {
 public:
  /// Copies the sample. Throws InvalidArgument when it is empty.
  /// `density_bins` controls the binned density estimate behind
  /// log_pdf(); cdf/quantile/sample are exact regardless.
  explicit Empirical(std::span<const double> sample,
                     std::size_t density_bins = 50);

  /// Binned density estimate (equal-width bins over the sample range,
  /// floored at a tiny value outside/empty bins so log-likelihoods stay
  /// finite). Coarse by construction -- for model comparison prefer the
  /// parametric families.
  double log_pdf(double x) const override;
  /// Exact empirical CDF (right-continuous step function).
  double cdf(double x) const override;
  /// Exact empirical quantile.
  double quantile(double p) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  /// Resamples one observed value uniformly (the bootstrap draw).
  double sample(hpcfail::Rng& rng) const override;
  std::string name() const override { return "empirical"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

  std::size_t size() const noexcept { return ecdf_.size(); }

 private:
  hpcfail::stats::Ecdf ecdf_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  double bin_lo_ = 0.0;
  double bin_width_ = 0.0;
  std::vector<double> density_;  // per-bin density estimate
};

}  // namespace hpcfail::dist
