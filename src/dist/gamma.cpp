#include "dist/gamma.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/solver.hpp"
#include "stats/special.hpp"

namespace hpcfail::dist {

GammaDist::GammaDist(double shape, double scale)
    : shape_(shape), scale_(scale) {
  HPCFAIL_EXPECTS(shape > 0.0 && std::isfinite(shape),
                  "gamma shape must be positive and finite");
  HPCFAIL_EXPECTS(scale > 0.0 && std::isfinite(scale),
                  "gamma scale must be positive and finite");
}

namespace {

// Shared solver tail of the MLE: both fit_mle overloads reduce their input
// to (sum of floored x, sum of log floored x, n) and the parameter search
// below only ever touches those sums, so precomputed statistics give the
// same bits as a fresh span reduction.
GammaDist gamma_from_sums(double sum, double sum_log, double n) {
  const double mean = sum / n;
  // s = ln(mean) - mean(ln x) >= 0 by Jensen, = 0 only for constant data.
  const double s = std::log(mean) - sum_log / n;
  HPCFAIL_ASSERT(s > 0.0);

  // Minka's starting point, then bracketed Newton on ln k - psi(k) = s.
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
             (12.0 * s);
  const auto f = [s](double kk) {
    return std::log(kk) - hpcfail::stats::digamma(kk) - s;
  };
  const auto df = [](double kk) {
    return 1.0 / kk - hpcfail::stats::trigamma(kk);
  };
  double lo = k / 8.0;
  double hi = k * 8.0;
  if (lo <= 0.0) lo = 1e-8;
  hpcfail::stats::expand_bracket(f, lo, hi, /*positive_only=*/true);
  k = hpcfail::stats::newton_bracketed(f, df, lo, hi);
  return GammaDist(k, mean / k);
}

}  // namespace

GammaDist GammaDist::fit_mle(std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(xs.size() >= 2, "gamma fit needs at least 2 observations");
  HPCFAIL_EXPECTS(floor_at > 0.0, "gamma fit floor must be positive");
  double sum = 0.0;
  double sum_log = 0.0;
  bool varies = false;
  double first = -1.0;
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0, "gamma fit requires non-negative data");
    const double v = x < floor_at ? floor_at : x;
    if (first < 0.0) {
      first = v;
    } else if (v != first) {
      varies = true;
    }
    sum += v;
    sum_log += std::log(v);
  }
  if (!varies) {
    throw FitError("gamma fit is degenerate on a constant sample");
  }
  return gamma_from_sums(sum, sum_log, static_cast<double>(xs.size()));
}

GammaDist GammaDist::fit_mle(const SuffStats& stats) {
  HPCFAIL_EXPECTS(stats.n >= 2, "gamma fit needs at least 2 observations");
  if (stats.constant()) {
    throw FitError("gamma fit is degenerate on a constant sample");
  }
  return gamma_from_sums(stats.sum, stats.sum_log,
                         static_cast<double>(stats.n));
}

double GammaDist::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  return (shape_ - 1.0) * std::log(x) - x / scale_ -
         hpcfail::stats::log_gamma_unchecked(shape_) -
         shape_ * std::log(scale_);
}

double GammaDist::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return hpcfail::stats::reg_gamma_lower(shape_, x / scale_);
}

double GammaDist::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
  // Wilson-Hilferty starting point, then bracketed Newton on the CDF.
  const double z = hpcfail::stats::normal_quantile(p);
  const double c = 1.0 - 1.0 / (9.0 * shape_) + z / (3.0 * std::sqrt(shape_));
  double x0 = shape_ * scale_ * c * c * c;
  if (!(x0 > 0.0) || !std::isfinite(x0)) x0 = shape_ * scale_;
  const auto f = [this, p](double x) { return cdf(x) - p; };
  double lo = x0 / 2.0;
  double hi = x0 * 2.0;
  if (lo <= 0.0) lo = 1e-300;
  hpcfail::stats::expand_bracket(f, lo, hi, /*positive_only=*/true);
  return hpcfail::stats::brent(f, lo, hi);
}

double GammaDist::sample(hpcfail::Rng& rng) const {
  // Marsaglia & Tsang squeeze method; shape < 1 via the boost
  // Gamma(k) = Gamma(k+1) * U^{1/k}.
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(rng.uniform_pos(), 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    // Standard normal via Marsaglia polar.
    double u1;
    double u2;
    double s;
    do {
      u1 = rng.uniform(-1.0, 1.0);
      u2 = rng.uniform(-1.0, 1.0);
      s = u1 * u1 + u2 * u2;
    } while (s >= 1.0 || s == 0.0);
    const double z = u1 * std::sqrt(-2.0 * std::log(s) / s);
    const double v = 1.0 + c * z;
    if (v <= 0.0) continue;
    const double v3 = v * v * v;
    const double u = rng.uniform_pos();
    if (u < 1.0 - 0.0331 * z * z * z * z ||
        std::log(u) < 0.5 * z * z + d * (1.0 - v3 + std::log(v3))) {
      return boost * d * v3 * scale_;
    }
  }
}

std::string GammaDist::describe() const {
  return "gamma(shape=" + hpcfail::format_double(shape_) +
         ", scale=" + hpcfail::format_double(scale_) + ")";
}

std::unique_ptr<Distribution> GammaDist::clone() const {
  return std::make_unique<GammaDist>(*this);
}

}  // namespace hpcfail::dist
