// MLE fitting and model comparison, reproducing the paper's methodology:
// "We use maximum likelihood estimation to parameterize the distributions
//  and evaluate the goodness of fit by visual inspection and the negative
//  log-likelihood test."
//
// fit_all() parameterizes every requested family on the same sample and
// ranks them by negative log-likelihood; AIC and the KS distance are
// reported alongside as modern cross-checks.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/distribution.hpp"

namespace hpcfail::dist {

/// The model families the paper fits.
enum class Family {
  exponential,
  weibull,
  gamma,
  lognormal,
  normal,
  poisson,
};

std::string to_string(Family family);

/// Outcome of fitting one family to one sample.
struct FitResult {
  Family family;
  std::unique_ptr<Distribution> model;  ///< never null
  double neg_log_likelihood = 0.0;
  double aic = 0.0;      ///< 2k + 2 * negLL
  double ks = 0.0;       ///< Kolmogorov-Smirnov distance
  double ks_pvalue = 0.0;

  FitResult() = default;
  FitResult(FitResult&&) = default;
  FitResult& operator=(FitResult&&) = default;
  FitResult(const FitResult& other);
  FitResult& operator=(const FitResult& other);
};

/// Number of free parameters of a family (for AIC).
int parameter_count(Family family) noexcept;

/// Fits one family by MLE and computes all goodness-of-fit measures.
/// Observations below `floor_at` are floored inside the positive-support
/// fitters; the likelihood is evaluated on the same floored data so
/// families compete on an equal footing. Callers choose the floor from the
/// data's resolution (e.g. 1.0 for second-resolution interarrival times
/// with exact-zero simultaneous failures). Throws InvalidArgument on
/// unusable samples (see each family's fit_mle).
FitResult fit(Family family, std::span<const double> xs,
              double floor_at = 1e-9);

/// The paper's four standard reliability distributions (Fig 6, Fig 7a).
std::span<const Family> standard_families() noexcept;

/// The three count-model families of Fig 3(b).
std::span<const Family> count_families() noexcept;

/// Fits every family in `families`, sorted best-first by negative
/// log-likelihood. Families whose fit throws (e.g. degenerate sample for
/// that family) are skipped; throws NumericError if none succeed.
/// Families are fitted concurrently on the shared pool (see
/// common/thread_pool.hpp); results are independent of the thread count.
std::vector<FitResult> fit_all(std::span<const double> xs,
                               std::span<const Family> families,
                               double floor_at = 1e-9);

/// Batched fit_all over many independent samples (the paper's per-node
/// interarrival fits of Fig 6 and per-system repair fits of Fig 7),
/// fanned out across the shared pool. Returns one fit_all result per
/// sample, in sample order; a sample on which every family fails (or
/// which is empty) yields an empty vector instead of throwing, so one
/// degenerate node cannot abort a whole sweep.
std::vector<std::vector<FitResult>> fit_many(
    std::span<const std::vector<double>> samples,
    std::span<const Family> families, double floor_at = 1e-9);

/// Convenience: best (lowest negative log-likelihood) among the paper's
/// four standard families.
FitResult best_standard_fit(std::span<const double> xs);

}  // namespace hpcfail::dist
