// MLE fitting and model comparison, reproducing the paper's methodology:
// "We use maximum likelihood estimation to parameterize the distributions
//  and evaluate the goodness of fit by visual inspection and the negative
//  log-likelihood test."
//
// fit_report() parameterizes every requested family on the same sample
// and returns a FitReport: the per-family FitResults ranked best-first by
// negative log-likelihood (`nll`), plus how many families failed and how
// many solver iterations the MLEs took (surfaced through obs as well).
// fit_report_many() is the batched form used for the paper's per-node
// (Fig 6) and per-system (Fig 7) sweeps.
//
// Beyond the paper's four standard families and the Fig 3(b) count
// models, the fitter also knows Pareto (the heavy-tailed alternative the
// paper rejects for interarrival data) and the two-phase hyperexponential
// (the classic C^2 > 1 renewal model); all eight are exercised by the
// testkit calibration oracles.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/distribution.hpp"
#include "dist/suffstats.hpp"

namespace hpcfail::dist {

/// The model families the paper fits.
enum class Family {
  exponential,
  weibull,
  gamma,
  lognormal,
  normal,
  poisson,
  pareto,
  hyperexp,
};

std::string to_string(Family family);

/// Outcome of fitting one family to one sample.
struct FitResult {
  Family family;
  std::unique_ptr<Distribution> model;  ///< never null
  double nll = 0.0;      ///< negative log-likelihood
  double aic = 0.0;      ///< 2k + 2 * nll
  double ks = 0.0;       ///< Kolmogorov-Smirnov distance
  double ks_pvalue = 0.0;
  /// Solver iterations the MLE needed (0 for closed-form families).
  std::uint64_t iterations = 0;

  FitResult() = default;
  FitResult(FitResult&&) = default;
  FitResult& operator=(FitResult&&) = default;
  FitResult(const FitResult& other);
  FitResult& operator=(const FitResult& other);
};

/// The outcome of fitting a set of families to one sample: the successful
/// fits ranked best-first by nll, plus what it cost. Iterates like the
/// ranked vector so result consumers can treat it as the ranking.
struct FitReport {
  std::vector<FitResult> ranked;     ///< successful fits, best first
  std::size_t sample_size = 0;       ///< observations fitted
  double floor_at = 0.0;             ///< resolution floor applied
  std::size_t failed_families = 0;   ///< families whose fit threw
  std::uint64_t total_iterations = 0;  ///< solver steps across families

  const FitResult& best() const { return ranked.front(); }
  bool empty() const noexcept { return ranked.empty(); }
  std::size_t size() const noexcept { return ranked.size(); }
  const FitResult& operator[](std::size_t i) const { return ranked[i]; }
  const FitResult& front() const { return ranked.front(); }
  const FitResult& back() const { return ranked.back(); }
  auto begin() const noexcept { return ranked.begin(); }
  auto end() const noexcept { return ranked.end(); }
};

/// Number of free parameters of a family (for AIC).
int parameter_count(Family family) noexcept;

/// Fits one family by MLE and computes all goodness-of-fit measures.
/// Observations below `floor_at` are floored inside the positive-support
/// fitters; the likelihood is evaluated on the same floored data so
/// families compete on an equal footing. Callers choose the floor from the
/// data's resolution (e.g. 1.0 for second-resolution interarrival times
/// with exact-zero simultaneous failures). Throws InvalidArgument on
/// structurally unusable samples (empty, negative floor) and FitError
/// when the family is degenerate on the sample — e.g. a constant-valued
/// (zero-variance) sample for any two-parameter family; fit_report()
/// counts the latter into failed_families.
FitResult fit(Family family, std::span<const double> xs,
              double floor_at = 1e-9);

/// The paper's four standard reliability distributions (Fig 6, Fig 7a).
std::span<const Family> standard_families() noexcept;

/// The three count-model families of Fig 3(b).
std::span<const Family> count_families() noexcept;

/// Every family the fitter knows, in enum order (the testkit calibration
/// oracles sweep this).
std::span<const Family> all_families() noexcept;

/// Fits every family in `families` and ranks the successes best-first by
/// nll (ties broken by enum order, so the ranking is a deterministic
/// function of the sample alone — independent of the thread count and of
/// the order families were requested in). Families whose fit throws
/// (e.g. degenerate sample for that family) are counted in
/// `failed_families` and skipped; throws FitError if none succeed.
/// Families are fitted concurrently on the shared pool (see
/// common/thread_pool.hpp).
FitReport fit_report(std::span<const double> xs,
                     std::span<const Family> families,
                     double floor_at = 1e-9);

/// Batched fit_report over many independent samples (the paper's per-node
/// interarrival fits of Fig 6 and per-system repair fits of Fig 7),
/// fanned out across the shared pool. Returns one report per sample, in
/// sample order; a sample on which every family fails (or which is
/// empty) yields an empty report instead of throwing, so one degenerate
/// node cannot abort a whole sweep.
std::vector<FitReport> fit_report_many(
    std::span<const std::vector<double>> samples,
    std::span<const Family> families, double floor_at = 1e-9);

/// The families fittable from sufficient statistics alone (exponential,
/// gamma, lognormal) — the streaming daemon's windowed fit set. Weibull
/// is excluded: its profile likelihood needs Σx^k for solver-chosen k,
/// which moments cannot provide.
std::span<const Family> streamable_families() noexcept;

/// Streaming FitReport from sufficient statistics alone — no sample is
/// rescanned or even retained, so windowed live fits are O(1) in the
/// window size. Fits streamable_families(); parameters and nll use the
/// same closed forms as the fused batch path, so a streaming report
/// agrees with fit_report() over the rescanned window sample to float
/// noise (exponential bit-exactly). KS distances are not computable from
/// moments: ks/ks_pvalue are reported as 0. Degenerate families are
/// counted into failed_families; throws FitError when none succeed
/// (including the empty-stats case).
FitReport fit_report_from_stats(const SuffStats& stats);

/// Convenience: best (lowest nll) among the paper's four standard
/// families.
FitResult best_standard_fit(std::span<const double> xs);

}  // namespace hpcfail::dist
