// Sliding-window sufficient statistics for live analytics.
//
// The streaming daemon needs windowed moments ("repair minutes over the
// last 24 hours for system 20, hardware failures") without rescanning the
// trace, and a sliding window cannot be maintained by a single SuffStats
// accumulator because sums cannot be *un*-added. SlidingSuffStats buckets
// observations by a fixed time quantum instead: each bucket holds one
// SuffStats over the values whose timestamps fall in it, so a window
// query merges the covered buckets (oldest first) and eviction drops
// whole buckets off the back. Window edges therefore have bucket
// resolution — a query covers every bucket whose quantum intersects
// [now - window, now], which is exactly reproducible by a brute-force
// rescan bucketing the same way (the calibration oracle does).
//
// Buckets are sparse (quiet quanta occupy nothing) and bounded by
// max_buckets; values older than the retained range, and buckets evicted
// by the bound, are counted into dropped(). Not thread-safe — the daemon
// owns one per (system, node, cause) cell behind its own lock.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>

#include "common/time.hpp"
#include "dist/suffstats.hpp"

namespace hpcfail::dist {

class SlidingSuffStats {
 public:
  struct Options {
    Seconds bucket_seconds = kSecondsPerHour;
    std::size_t max_buckets = 24 * 14;  ///< two weeks of hourly buckets
    double floor_at = 1e-9;
  };

  SlidingSuffStats() : SlidingSuffStats(Options{}) {}
  explicit SlidingSuffStats(Options options);

  /// Records `value` observed at time `at`. Amortized O(1) for
  /// monotonically arriving timestamps; out-of-order arrivals landing in
  /// a retained bucket are folded there, older ones are dropped (and
  /// counted). Same value-domain checks as SuffStats::add.
  void add(Seconds at, double value);

  /// Merged statistics over every bucket intersecting [now - window,
  /// now]; oldest-first merge order, so repeated queries are
  /// deterministic. `window <= 0` yields the empty statistics.
  SuffStats window_stats(Seconds now, Seconds window) const;

  /// Merged statistics over every retained bucket.
  SuffStats total_stats() const;

  /// Evicts every bucket whose quantum lies entirely before `horizon`
  /// (bucket index < horizon's index) and returns their merged
  /// statistics; the evicted observations count into dropped(). The
  /// horizon is remembered as a floor: a late arrival landing on an
  /// evicted bucket's index — even when no buckets remain — is dropped
  /// and counted, never resurrected. This is the retention/compaction
  /// hook: the caller folds the returned stats into its compacted
  /// aggregate so no observation is lost, only de-windowed.
  SuffStats evict_before(Seconds horizon);

  /// Observations lost to eviction or too-old arrival.
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Retained observations across all buckets.
  std::uint64_t size() const noexcept { return size_; }

  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Timestamp of the newest observation seen (0 before the first add) —
  /// the daemon's window-staleness probe.
  Seconds latest_at() const noexcept { return latest_at_; }

  const Options& options() const noexcept { return options_; }

 private:
  struct Bucket {
    std::int64_t index = 0;  ///< floor(at / bucket_seconds)
    SuffStats stats;
  };

  std::int64_t bucket_index(Seconds at) const noexcept;

  Options options_;
  std::deque<Bucket> buckets_;  ///< ascending index, sparse
  /// Smallest bucket index still accepted; everything below was evicted.
  std::int64_t floor_index_ = std::numeric_limits<std::int64_t>::min();
  std::uint64_t dropped_ = 0;
  std::uint64_t size_ = 0;
  Seconds latest_at_ = 0;
};

}  // namespace hpcfail::dist
