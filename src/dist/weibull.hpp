// Weibull distribution — the paper's headline model for time between
// failures: shape 0.7-0.8 fits both per-node and system-wide interarrivals
// late in production, implying a decreasing hazard rate (a long failure-free
// interval makes the next failure *less* imminent).
#pragma once

#include <span>

#include "dist/distribution.hpp"
#include "dist/suffstats.hpp"

namespace hpcfail::dist {

class Weibull final : public Distribution {
 public:
  /// F(x) = 1 - exp(-(x/scale)^shape); both parameters > 0 and finite,
  /// otherwise InvalidArgument.
  Weibull(double shape, double scale);

  /// MLE by profile likelihood in the shape: solve
  ///   g(k) = sum x^k ln x / sum x^k - 1/k - mean(ln x) = 0
  /// with safeguarded Newton, then scale = (mean of x^k)^{1/k}.
  /// Non-positive observations are floored at `floor_at` (failure records
  /// have 1-second resolution; exact-zero interarrivals from simultaneous
  /// failures would otherwise have zero likelihood under any Weibull).
  /// Requires at least 2 observations and non-negative data; a
  /// constant-valued sample throws FitError (the shape is unidentified).
  static Weibull fit_mle(std::span<const double> xs, double floor_at = 1e-9);

  /// MLE sharing a precomputed SuffStats pass (same sample, same floor):
  /// the degeneracy check and the log-mean come from the statistics
  /// instead of a fresh reduction. Agrees with the span overload to
  /// float noise (see dist/suffstats.hpp).
  static Weibull fit_mle(std::span<const double> xs, const SuffStats& stats);

  /// Solver core over cached logarithms: logs[i] = log(max(x_i, floor)),
  /// mean_log their mean. The profile-likelihood iteration touches only
  /// the logs, so batched callers that already hold them (the fused
  /// fit_report path) skip every per-iteration log() call. The logs must
  /// come from a varying sample of size >= 2.
  ///
  /// A positive `shape_hint` (e.g. the Gumbel method-of-moments estimate
  /// (pi/sqrt(6)) / stddev(log x), which callers with SuffStats get for
  /// free) starts the bracket around the hint instead of the cold [1e-3,
  /// 10] interval, roughly halving the solver iterations. The root the
  /// solver converges to is the same to solver tolerance (~1e-12), but
  /// the iterate sequence — and hence the last few bits of the result —
  /// may differ from the cold start.
  static Weibull fit_mle_from_logs(std::span<const double> logs,
                                   double mean_log, double shape_hint = 0.0);

  /// Gumbel method-of-moments shape estimate from precomputed statistics
  /// (the `shape_hint` the overloads above want); 0 when the statistics
  /// cannot produce one (degenerate or empty sample).
  static double shape_hint_from(const SuffStats& stats) noexcept;

  /// MLE with right-censoring: `events` are observed failure intervals,
  /// `censored` are intervals that ended without a failure (e.g. each
  /// node's last failure-free stretch, cut off by the end of
  /// observation). Ignoring censoring biases the shape and scale low;
  /// this maximizes the full likelihood
  ///   sum log f(event) + sum log S(censored)
  /// by Brent search on the profile likelihood in the shape. Requires at
  /// least 2 events; a constant pooled sample throws FitError.
  static Weibull fit_mle_censored(std::span<const double> events,
                                  std::span<const double> censored,
                                  double floor_at = 1e-9);

  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }

  /// True when the hazard rate decreases with time (shape < 1).
  bool decreasing_hazard() const noexcept { return shape_ < 1.0; }

  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  double sample(hpcfail::Rng& rng) const override;
  /// Closed form h(x) = (shape/scale) (x/scale)^{shape-1}, finite for all
  /// x > 0 even where 1 - F(x) underflows.
  double hazard(double x) const override;
  std::string name() const override { return "weibull"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace hpcfail::dist
