#include "dist/fit.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "dist/exponential.hpp"
#include "dist/gamma.hpp"
#include "dist/hyperexp.hpp"
#include "dist/lognormal.hpp"
#include "dist/normal.hpp"
#include "dist/pareto.hpp"
#include "dist/poisson.hpp"
#include "dist/weibull.hpp"
#include "obs/metrics.hpp"
#include "stats/ks.hpp"
#include "stats/solver.hpp"

namespace hpcfail::dist {

namespace {
std::vector<double> floored(std::span<const double> xs, double floor_at) {
  std::vector<double> out(xs.begin(), xs.end());
  for (double& x : out) {
    if (x < floor_at) x = floor_at;
  }
  return out;
}

bool positive_support(Family family) noexcept {
  return family != Family::normal;
}
}  // namespace

std::string to_string(Family family) {
  switch (family) {
    case Family::exponential: return "exponential";
    case Family::weibull: return "weibull";
    case Family::gamma: return "gamma";
    case Family::lognormal: return "lognormal";
    case Family::normal: return "normal";
    case Family::poisson: return "poisson";
    case Family::pareto: return "pareto";
    case Family::hyperexp: return "hyperexp";
  }
  throw InvalidArgument("unknown distribution family");
}

FitResult::FitResult(const FitResult& other)
    : family(other.family),
      model(other.model ? other.model->clone() : nullptr),
      nll(other.nll),
      aic(other.aic),
      ks(other.ks),
      ks_pvalue(other.ks_pvalue),
      iterations(other.iterations) {}

FitResult& FitResult::operator=(const FitResult& other) {
  if (this != &other) {
    family = other.family;
    model = other.model ? other.model->clone() : nullptr;
    nll = other.nll;
    aic = other.aic;
    ks = other.ks;
    ks_pvalue = other.ks_pvalue;
    iterations = other.iterations;
  }
  return *this;
}

int parameter_count(Family family) noexcept {
  switch (family) {
    case Family::exponential:
    case Family::poisson:
      return 1;
    case Family::hyperexp:
      return 3;  // two rates + one mixing weight
    default:
      return 2;
  }
}

FitResult fit(Family family, std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(!xs.empty(), "fit on empty sample");
  HPCFAIL_EXPECTS(floor_at > 0.0, "fit floor must be positive");
  // solver_steps() is thread-local and the family MLE runs on this
  // thread, so the difference is exactly this fit's iteration count.
  const std::uint64_t steps_before = hpcfail::stats::solver_steps();
  FitResult result;
  result.family = family;
  switch (family) {
    case Family::exponential:
      result.model = std::make_unique<Exponential>(Exponential::fit_mle(xs));
      break;
    case Family::weibull:
      result.model =
          std::make_unique<Weibull>(Weibull::fit_mle(xs, floor_at));
      break;
    case Family::gamma:
      result.model =
          std::make_unique<GammaDist>(GammaDist::fit_mle(xs, floor_at));
      break;
    case Family::lognormal:
      result.model =
          std::make_unique<LogNormal>(LogNormal::fit_mle(xs, floor_at));
      break;
    case Family::normal:
      result.model = std::make_unique<Normal>(Normal::fit_mle(xs));
      break;
    case Family::poisson:
      result.model = std::make_unique<Poisson>(Poisson::fit_mle(xs));
      break;
    case Family::pareto:
      result.model = std::make_unique<Pareto>(Pareto::fit_mle(xs, floor_at));
      break;
    case Family::hyperexp:
      result.model =
          std::make_unique<HyperExp>(HyperExp::fit_em(xs, floor_at));
      break;
  }
  result.iterations = hpcfail::stats::solver_steps() - steps_before;

  // Evaluate all families on the same (floored where relevant) data so
  // their likelihoods are comparable.
  const std::vector<double> eval =
      positive_support(family) ? floored(xs, floor_at)
                               : std::vector<double>(xs.begin(), xs.end());
  result.nll = -result.model->log_likelihood(eval);
  result.aic = 2.0 * parameter_count(family) + 2.0 * result.nll;
  const Distribution& model = *result.model;
  result.ks = hpcfail::stats::ks_statistic(
      eval, [&model](double x) { return model.cdf(x); });
  result.ks_pvalue = hpcfail::stats::ks_pvalue(result.ks, eval.size());

  if (hpcfail::obs::enabled()) {
    hpcfail::obs::Registry& reg = hpcfail::obs::registry();
    const std::string label = "{family=" + to_string(family) + "}";
    reg.counter("dist.fit.total" + label).add(1);
    reg.counter("dist.fit.solver_steps" + label).add(result.iterations);
    reg.histogram("dist.fit.sample_size" + label)
        .record(static_cast<double>(xs.size()));
  }
  return result;
}

std::span<const Family> standard_families() noexcept {
  static constexpr std::array<Family, 4> kFamilies = {
      Family::weibull, Family::lognormal, Family::gamma, Family::exponential};
  return kFamilies;
}

std::span<const Family> count_families() noexcept {
  static constexpr std::array<Family, 3> kFamilies = {
      Family::poisson, Family::normal, Family::lognormal};
  return kFamilies;
}

std::span<const Family> all_families() noexcept {
  static constexpr std::array<Family, 8> kFamilies = {
      Family::exponential, Family::weibull,  Family::gamma,
      Family::lognormal,   Family::normal,   Family::poisson,
      Family::pareto,      Family::hyperexp};
  return kFamilies;
}

FitReport fit_report(std::span<const double> xs,
                     std::span<const Family> families, double floor_at) {
  // The families are independent MLE problems on a shared read-only
  // sample; fit them concurrently. Failed fits become nullopt so one
  // family's legitimate failure (e.g. constant sample) does not abort
  // the comparison; collecting in family order before the sort keeps the
  // result independent of the thread count.
  auto fitted = hpcfail::parallel_map(
      families.size(),
      [&families, xs, floor_at](std::size_t i) -> std::optional<FitResult> {
        try {
          return fit(families[i], xs, floor_at);
        } catch (const Error&) {
          if (hpcfail::obs::enabled()) {
            hpcfail::obs::registry()
                .counter("dist.fit.failures{family=" +
                         to_string(families[i]) + "}")
                .add(1);
          }
          return std::nullopt;
        }
      });
  FitReport report;
  report.sample_size = xs.size();
  report.floor_at = floor_at;
  report.ranked.reserve(families.size());
  for (auto& f : fitted) {
    if (f) {
      report.total_iterations += f->iterations;
      report.ranked.push_back(std::move(*f));
    } else {
      ++report.failed_families;
    }
  }
  if (report.ranked.empty()) {
    throw FitError("no distribution family could be fitted");
  }
  // Tie-break equal likelihoods by enum order so the ranking is a pure
  // function of the sample — permutation-stable in the requested family
  // order and reproducible at any thread count.
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const FitResult& a, const FitResult& b) {
              if (a.nll != b.nll) return a.nll < b.nll;
              return a.family < b.family;
            });
  return report;
}

std::vector<FitReport> fit_report_many(
    std::span<const std::vector<double>> samples,
    std::span<const Family> families, double floor_at) {
  // One task per sample; the nested fit_report runs sequentially on the
  // worker (nested parallelism degrades inline), so batched fits scale
  // with the number of samples without oversubscribing the pool.
  return hpcfail::parallel_map(
      samples.size(),
      [samples, families, floor_at](std::size_t i) -> FitReport {
        if (samples[i].empty()) return {};
        try {
          return fit_report(samples[i], families, floor_at);
        } catch (const Error&) {
          FitReport failed;
          failed.sample_size = samples[i].size();
          failed.floor_at = floor_at;
          failed.failed_families = families.size();
          return failed;
        }
      });
}

FitResult best_standard_fit(std::span<const double> xs) {
  auto report = fit_report(xs, standard_families());
  return std::move(report.ranked.front());
}

}  // namespace hpcfail::dist
