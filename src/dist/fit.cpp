#include "dist/fit.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "dist/exponential.hpp"
#include "dist/gamma.hpp"
#include "dist/hyperexp.hpp"
#include "dist/lognormal.hpp"
#include "dist/normal.hpp"
#include "dist/pareto.hpp"
#include "dist/poisson.hpp"
#include "dist/suffstats.hpp"
#include "dist/weibull.hpp"
#include "obs/metrics.hpp"
#include "stats/ks.hpp"
#include "stats/solver.hpp"
#include "stats/special.hpp"

namespace hpcfail::dist {

namespace {
std::vector<double> floored(std::span<const double> xs, double floor_at) {
  std::vector<double> out(xs.begin(), xs.end());
  for (double& x : out) {
    if (x < floor_at) x = floor_at;
  }
  return out;
}

bool positive_support(Family family) noexcept {
  return family != Family::normal;
}
}  // namespace

std::string to_string(Family family) {
  switch (family) {
    case Family::exponential: return "exponential";
    case Family::weibull: return "weibull";
    case Family::gamma: return "gamma";
    case Family::lognormal: return "lognormal";
    case Family::normal: return "normal";
    case Family::poisson: return "poisson";
    case Family::pareto: return "pareto";
    case Family::hyperexp: return "hyperexp";
  }
  throw InvalidArgument("unknown distribution family");
}

FitResult::FitResult(const FitResult& other)
    : family(other.family),
      model(other.model ? other.model->clone() : nullptr),
      nll(other.nll),
      aic(other.aic),
      ks(other.ks),
      ks_pvalue(other.ks_pvalue),
      iterations(other.iterations) {}

FitResult& FitResult::operator=(const FitResult& other) {
  if (this != &other) {
    family = other.family;
    model = other.model ? other.model->clone() : nullptr;
    nll = other.nll;
    aic = other.aic;
    ks = other.ks;
    ks_pvalue = other.ks_pvalue;
    iterations = other.iterations;
  }
  return *this;
}

int parameter_count(Family family) noexcept {
  switch (family) {
    case Family::exponential:
    case Family::poisson:
      return 1;
    case Family::hyperexp:
      return 3;  // two rates + one mixing weight
    default:
      return 2;
  }
}

FitResult fit(Family family, std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(!xs.empty(), "fit on empty sample");
  HPCFAIL_EXPECTS(floor_at > 0.0, "fit floor must be positive");
  // solver_steps() is thread-local and the family MLE runs on this
  // thread, so the difference is exactly this fit's iteration count.
  const std::uint64_t steps_before = hpcfail::stats::solver_steps();
  FitResult result;
  result.family = family;
  switch (family) {
    case Family::exponential:
      result.model = std::make_unique<Exponential>(Exponential::fit_mle(xs));
      break;
    case Family::weibull:
      result.model =
          std::make_unique<Weibull>(Weibull::fit_mle(xs, floor_at));
      break;
    case Family::gamma:
      result.model =
          std::make_unique<GammaDist>(GammaDist::fit_mle(xs, floor_at));
      break;
    case Family::lognormal:
      result.model =
          std::make_unique<LogNormal>(LogNormal::fit_mle(xs, floor_at));
      break;
    case Family::normal:
      result.model = std::make_unique<Normal>(Normal::fit_mle(xs));
      break;
    case Family::poisson:
      result.model = std::make_unique<Poisson>(Poisson::fit_mle(xs));
      break;
    case Family::pareto:
      result.model = std::make_unique<Pareto>(Pareto::fit_mle(xs, floor_at));
      break;
    case Family::hyperexp:
      result.model =
          std::make_unique<HyperExp>(HyperExp::fit_em(xs, floor_at));
      break;
  }
  result.iterations = hpcfail::stats::solver_steps() - steps_before;

  // Evaluate all families on the same (floored where relevant) data so
  // their likelihoods are comparable.
  const std::vector<double> eval =
      positive_support(family) ? floored(xs, floor_at)
                               : std::vector<double>(xs.begin(), xs.end());
  result.nll = -result.model->log_likelihood(eval);
  result.aic = 2.0 * parameter_count(family) + 2.0 * result.nll;
  const Distribution& model = *result.model;
  result.ks = hpcfail::stats::ks_statistic(
      eval, [&model](double x) { return model.cdf(x); });
  result.ks_pvalue = hpcfail::stats::ks_pvalue(result.ks, eval.size());

  if (hpcfail::obs::enabled()) {
    hpcfail::obs::Registry& reg = hpcfail::obs::registry();
    const std::string label = "{family=" + to_string(family) + "}";
    reg.counter("dist.fit.total" + label).add(1);
    reg.counter("dist.fit.solver_steps" + label).add(result.iterations);
    reg.histogram("dist.fit.sample_size" + label)
        .record(static_cast<double>(xs.size()));
  }
  return result;
}

namespace {

// ---------------------------------------------------------------------------
// Fused fit_report engine.
//
// When every requested family is one of the four standard positive-support
// distributions, fitting them independently wastes most of the work: each
// family re-floors the sample, re-reduces the same sums, re-sorts for KS and
// re-evaluates logarithms the previous family already computed. The fused
// path performs the shared work once per sample —
//
//   * one SuffStats pass (sum, sum of logs, sum of squared logs, extrema),
//   * one floored copy + cached elementwise logs,
//   * one sort (+ logs of the order statistics),
//
// — and then derives every family from it: exponential / gamma / lognormal
// MLEs become O(1) in the sample size, the weibull solver iterates over the
// cached logs, likelihoods use their closed forms in the sufficient
// statistics, and the KS loops run over the shared order statistics with the
// family CDF inlined.
//
// Semantics are identical to the scalar path: same MLE parameters and solver
// iteration counts bit-for-bit, same error types and messages per family,
// same obs counters, same ranking rule. The nll/ks values agree to float
// noise (closed-form likelihood vs elementwise summation), which is below
// the precision anything downstream consumes (reports format ~6 significant
// digits; rankings are separated by far more than ulps — the golden analyzer
// outputs are unchanged).
// ---------------------------------------------------------------------------

bool fused_eligible(std::span<const Family> families) noexcept {
  if (families.empty()) return false;
  for (const Family family : families) {
    switch (family) {
      case Family::exponential:
      case Family::weibull:
      case Family::gamma:
      case Family::lognormal:
        break;
      default:
        return false;
    }
  }
  return true;
}

// Per-thread scratch reused across samples in batched sweeps.
struct FusedWorkspace {
  std::vector<double> logs;    ///< log(floored x), sample order
  std::vector<double> sorted;  ///< floored x, ascending
};

void count_fit_failure(Family family) {
  if (hpcfail::obs::enabled()) {
    hpcfail::obs::registry()
        .counter("dist.fit.failures{family=" + to_string(family) + "}")
        .add(1);
  }
}

FitResult fused_fit_family(Family family, std::span<const double> xs,
                           const SuffStats& stats, const FusedWorkspace& ws) {
  const std::size_t size = stats.n;
  const auto n = static_cast<double>(size);
  const std::span<const double> sorted = ws.sorted;

  FitResult result;
  result.family = family;
  // solver_steps() is thread-local and the MLE below runs on this thread,
  // so the delta is exactly this fit's iteration count (matching fit()).
  const std::uint64_t steps_before = hpcfail::stats::solver_steps();

  double nll = 0.0;
  double ks = 0.0;
  switch (family) {
    case Family::exponential: {
      const Exponential model = Exponential::fit_mle(stats);
      result.iterations = hpcfail::stats::solver_steps() - steps_before;
      const double rate = model.rate();
      // sum log f(x) = n ln(rate) - rate * sum x over the floored data.
      nll = -(n * std::log(rate) - rate * stats.sum);
      ks = hpcfail::stats::ks_statistic_sorted(size, [&](std::size_t i) {
        return -std::expm1(-rate * sorted[i]);
      });
      result.model = std::make_unique<Exponential>(model);
      break;
    }
    case Family::weibull: {
      HPCFAIL_EXPECTS(size >= 2, "weibull fit needs at least 2 observations");
      if (stats.constant()) {
        throw FitError("weibull fit is degenerate on a constant sample");
      }
      const Weibull model = Weibull::fit_mle_from_logs(
          ws.logs, stats.sum_log / n, Weibull::shape_hint_from(stats));
      result.iterations = hpcfail::stats::solver_steps() - steps_before;
      const double k = model.shape();
      const double scale = model.scale();
      // sum log f = n ln(k/scale) + (k-1) sum ln(x/scale) - sum (x/scale)^k;
      // the last sum is exactly n at the MLE (the scale equation).
      nll = -(n * std::log(k / scale) +
              (k - 1.0) * (stats.sum_log - n * std::log(scale)) - n);
      ks = hpcfail::stats::ks_statistic_sorted(size, [&](std::size_t i) {
        return -std::expm1(-std::pow(sorted[i] / scale, k));
      });
      result.model = std::make_unique<Weibull>(model);
      break;
    }
    case Family::gamma: {
      HPCFAIL_EXPECTS(size >= 2, "gamma fit needs at least 2 observations");
      const GammaDist model = GammaDist::fit_mle(stats);
      result.iterations = hpcfail::stats::solver_steps() - steps_before;
      const double k = model.shape();
      const double scale = model.scale();
      const double lg = hpcfail::stats::log_gamma_unchecked(k);
      // sum log f = (k-1) sum ln x - sum x / scale - n lnGamma(k)
      //             - n k ln(scale).
      nll = -((k - 1.0) * stats.sum_log - stats.sum / scale - n * lg -
              n * k * std::log(scale));
      ks = hpcfail::stats::ks_statistic_sorted(size, [&](std::size_t i) {
        return hpcfail::stats::reg_gamma_lower_cached(k, sorted[i] / scale, lg);
      });
      result.model = std::make_unique<GammaDist>(model);
      break;
    }
    case Family::lognormal: {
      HPCFAIL_EXPECTS(size >= 2,
                      "lognormal fit needs at least 2 observations");
      if (stats.constant()) {
        throw FitError("lognormal fit is degenerate on a constant sample");
      }
      const double mu = stats.sum_log / n;
      // Two-pass variance over the cached logs: bit-identical to the span
      // fit_mle (same values, same order), unlike the one-pass SuffStats
      // form.
      double ss = 0.0;
      for (const double lx : ws.logs) {
        const double d = lx - mu;
        ss += d * d;
      }
      const double sigma = std::sqrt(ss / n);
      if (!(sigma > 0.0)) {
        throw FitError("lognormal fit is degenerate on a constant sample");
      }
      const LogNormal model(mu, sigma);
      result.iterations = hpcfail::stats::solver_steps() - steps_before;
      // sum log f = -n/2 - sum ln x - n ln(sigma) - n/2 ln(2 pi); the
      // z-score square sum is exactly n at the MLE.
      nll = 0.5 * n + stats.sum_log + n * std::log(sigma) +
            0.5 * n * std::log(2.0 * 3.14159265358979323846);
      // log() runs lazily inside the adaptive KS (which evaluates far
      // fewer points than n), with the same bits as a precomputed table.
      ks = hpcfail::stats::ks_statistic_sorted(size, [&](std::size_t i) {
        return hpcfail::stats::normal_cdf((std::log(sorted[i]) - mu) / sigma);
      });
      result.model = std::make_unique<LogNormal>(model);
      break;
    }
    default:
      throw InvalidArgument("family not supported by the fused fit path");
  }

  result.nll = nll;
  result.aic = 2.0 * parameter_count(family) + 2.0 * nll;
  result.ks = ks;
  result.ks_pvalue = hpcfail::stats::ks_pvalue(ks, size);

  if (hpcfail::obs::enabled()) {
    hpcfail::obs::Registry& reg = hpcfail::obs::registry();
    const std::string label = "{family=" + to_string(family) + "}";
    reg.counter("dist.fit.total" + label).add(1);
    reg.counter("dist.fit.solver_steps" + label).add(result.iterations);
    reg.histogram("dist.fit.sample_size" + label)
        .record(static_cast<double>(xs.size()));
    reg.counter("fit.suffstat_reuse").add(1);
  }
  return result;
}

FitReport fit_report_fused(std::span<const double> xs,
                           std::span<const Family> families, double floor_at) {
  FitReport report;
  report.sample_size = xs.size();
  report.floor_at = floor_at;
  report.ranked.reserve(families.size());

  // Shared precomputation. Anything that fails here (empty sample,
  // non-positive floor, negative data) would fail every family's own
  // precondition checks on the scalar path, so chalk it up against each
  // of them and raise the same all-failed error fit_report would.
  thread_local FusedWorkspace ws;
  SuffStats stats;
  bool shared_ok = !xs.empty() && floor_at > 0.0;
  if (shared_ok) {
    try {
      stats = SuffStats::compute(xs, floor_at);
      const std::size_t n = xs.size();
      ws.logs.clear();
      ws.logs.reserve(n);
      ws.sorted.clear();
      ws.sorted.reserve(n);
      for (const double x : xs) {
        const double v = x < floor_at ? floor_at : x;
        ws.sorted.push_back(v);
        ws.logs.push_back(std::log(v));
      }
      std::sort(ws.sorted.begin(), ws.sorted.end());
    } catch (const Error&) {
      shared_ok = false;
    }
  }
  if (!shared_ok) {
    for (const Family family : families) count_fit_failure(family);
    throw FitError("no distribution family could be fitted");
  }

  // Sequential over the families: they share the workspace, and the whole
  // point is that each one is a few cheap passes over precomputed arrays.
  // Batched sweeps parallelize across samples (fit_report_many).
  for (const Family family : families) {
    try {
      FitResult fitted = fused_fit_family(family, xs, stats, ws);
      report.total_iterations += fitted.iterations;
      report.ranked.push_back(std::move(fitted));
    } catch (const Error&) {
      count_fit_failure(family);
      ++report.failed_families;
    }
  }
  if (report.ranked.empty()) {
    throw FitError("no distribution family could be fitted");
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const FitResult& a, const FitResult& b) {
              if (a.nll != b.nll) return a.nll < b.nll;
              return a.family < b.family;
            });
  return report;
}

}  // namespace

std::span<const Family> standard_families() noexcept {
  static constexpr std::array<Family, 4> kFamilies = {
      Family::weibull, Family::lognormal, Family::gamma, Family::exponential};
  return kFamilies;
}

std::span<const Family> count_families() noexcept {
  static constexpr std::array<Family, 3> kFamilies = {
      Family::poisson, Family::normal, Family::lognormal};
  return kFamilies;
}

std::span<const Family> all_families() noexcept {
  static constexpr std::array<Family, 8> kFamilies = {
      Family::exponential, Family::weibull,  Family::gamma,
      Family::lognormal,   Family::normal,   Family::poisson,
      Family::pareto,      Family::hyperexp};
  return kFamilies;
}

FitReport fit_report(std::span<const double> xs,
                     std::span<const Family> families, double floor_at) {
  // All-standard-family requests (the overwhelmingly common case: the
  // paper's Fig 6/7 sweeps) take the fused path, which shares the sample
  // reductions, the sort and the cached logarithms across the families.
  if (fused_eligible(families)) {
    return fit_report_fused(xs, families, floor_at);
  }
  // The families are independent MLE problems on a shared read-only
  // sample; fit them concurrently. Failed fits become nullopt so one
  // family's legitimate failure (e.g. constant sample) does not abort
  // the comparison; collecting in family order before the sort keeps the
  // result independent of the thread count.
  auto fitted = hpcfail::parallel_map(
      families.size(),
      [&families, xs, floor_at](std::size_t i) -> std::optional<FitResult> {
        try {
          return fit(families[i], xs, floor_at);
        } catch (const Error&) {
          if (hpcfail::obs::enabled()) {
            hpcfail::obs::registry()
                .counter("dist.fit.failures{family=" +
                         to_string(families[i]) + "}")
                .add(1);
          }
          return std::nullopt;
        }
      });
  FitReport report;
  report.sample_size = xs.size();
  report.floor_at = floor_at;
  report.ranked.reserve(families.size());
  for (auto& f : fitted) {
    if (f) {
      report.total_iterations += f->iterations;
      report.ranked.push_back(std::move(*f));
    } else {
      ++report.failed_families;
    }
  }
  if (report.ranked.empty()) {
    throw FitError("no distribution family could be fitted");
  }
  // Tie-break equal likelihoods by enum order so the ranking is a pure
  // function of the sample — permutation-stable in the requested family
  // order and reproducible at any thread count.
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const FitResult& a, const FitResult& b) {
              if (a.nll != b.nll) return a.nll < b.nll;
              return a.family < b.family;
            });
  return report;
}

std::vector<FitReport> fit_report_many(
    std::span<const std::vector<double>> samples,
    std::span<const Family> families, double floor_at) {
  // One task per sample; the nested fit_report runs sequentially on the
  // worker (nested parallelism degrades inline), so batched fits scale
  // with the number of samples without oversubscribing the pool.
  return hpcfail::parallel_map(
      samples.size(),
      [samples, families, floor_at](std::size_t i) -> FitReport {
        if (samples[i].empty()) return {};
        try {
          return fit_report(samples[i], families, floor_at);
        } catch (const Error&) {
          FitReport failed;
          failed.sample_size = samples[i].size();
          failed.floor_at = floor_at;
          failed.failed_families = families.size();
          return failed;
        }
      });
}

std::span<const Family> streamable_families() noexcept {
  static constexpr std::array<Family, 3> kFamilies = {
      Family::exponential, Family::gamma, Family::lognormal};
  return kFamilies;
}

FitReport fit_report_from_stats(const SuffStats& stats) {
  FitReport report;
  report.sample_size = stats.n;
  report.floor_at = stats.floor_at;
  const std::span<const Family> families = streamable_families();
  if (stats.n == 0) {
    for (const Family family : families) count_fit_failure(family);
    report.failed_families = families.size();
    throw FitError("no distribution family could be fitted");
  }

  const auto n = static_cast<double>(stats.n);
  for (const Family family : families) {
    try {
      FitResult result;
      result.family = family;
      const std::uint64_t steps_before = hpcfail::stats::solver_steps();
      double nll = 0.0;
      switch (family) {
        case Family::exponential: {
          const Exponential model = Exponential::fit_mle(stats);
          const double rate = model.rate();
          nll = -(n * std::log(rate) - rate * stats.sum);
          result.model = std::make_unique<Exponential>(model);
          break;
        }
        case Family::gamma: {
          const GammaDist model = GammaDist::fit_mle(stats);
          const double k = model.shape();
          const double scale = model.scale();
          const double lg = hpcfail::stats::log_gamma_unchecked(k);
          nll = -((k - 1.0) * stats.sum_log - stats.sum / scale - n * lg -
                  n * k * std::log(scale));
          result.model = std::make_unique<GammaDist>(model);
          break;
        }
        case Family::lognormal: {
          const LogNormal model = LogNormal::fit_mle(stats);
          // Same closed form as the fused path; the z-score square sum is
          // exactly n at the (one-pass) MLE sigma.
          nll = 0.5 * n + stats.sum_log + n * std::log(model.sigma()) +
                0.5 * n * std::log(2.0 * 3.14159265358979323846);
          result.model = std::make_unique<LogNormal>(model);
          break;
        }
        default:
          throw InvalidArgument("family is not streamable");
      }
      result.iterations = hpcfail::stats::solver_steps() - steps_before;
      result.nll = nll;
      result.aic = 2.0 * parameter_count(family) + 2.0 * nll;
      // KS needs the order statistics, which a moment accumulator does
      // not retain; 0 marks "not computed" (ks_pvalue likewise).
      result.ks = 0.0;
      result.ks_pvalue = 0.0;
      report.total_iterations += result.iterations;

      if (hpcfail::obs::enabled()) {
        hpcfail::obs::Registry& reg = hpcfail::obs::registry();
        const std::string label = "{family=" + to_string(family) + "}";
        reg.counter("dist.fit.total" + label).add(1);
        reg.counter("dist.fit.solver_steps" + label).add(result.iterations);
        reg.histogram("dist.fit.sample_size" + label).record(n);
        reg.counter("fit.streaming_fits").add(1);
      }
      report.ranked.push_back(std::move(result));
    } catch (const Error&) {
      count_fit_failure(family);
      ++report.failed_families;
    }
  }
  if (report.ranked.empty()) {
    throw FitError("no distribution family could be fitted");
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const FitResult& a, const FitResult& b) {
              if (a.nll != b.nll) return a.nll < b.nll;
              return a.family < b.family;
            });
  return report;
}

FitResult best_standard_fit(std::span<const double> xs) {
  auto report = fit_report(xs, standard_families());
  return std::move(report.ranked.front());
}

}  // namespace hpcfail::dist
