#include "dist/fit.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "dist/exponential.hpp"
#include "dist/gamma.hpp"
#include "dist/lognormal.hpp"
#include "dist/normal.hpp"
#include "dist/poisson.hpp"
#include "dist/weibull.hpp"
#include "stats/ks.hpp"

namespace hpcfail::dist {

namespace {
std::vector<double> floored(std::span<const double> xs, double floor_at) {
  std::vector<double> out(xs.begin(), xs.end());
  for (double& x : out) {
    if (x < floor_at) x = floor_at;
  }
  return out;
}

bool positive_support(Family family) noexcept {
  return family != Family::normal;
}
}  // namespace

std::string to_string(Family family) {
  switch (family) {
    case Family::exponential: return "exponential";
    case Family::weibull: return "weibull";
    case Family::gamma: return "gamma";
    case Family::lognormal: return "lognormal";
    case Family::normal: return "normal";
    case Family::poisson: return "poisson";
  }
  throw InvalidArgument("unknown distribution family");
}

FitResult::FitResult(const FitResult& other)
    : family(other.family),
      model(other.model ? other.model->clone() : nullptr),
      neg_log_likelihood(other.neg_log_likelihood),
      aic(other.aic),
      ks(other.ks),
      ks_pvalue(other.ks_pvalue) {}

FitResult& FitResult::operator=(const FitResult& other) {
  if (this != &other) {
    family = other.family;
    model = other.model ? other.model->clone() : nullptr;
    neg_log_likelihood = other.neg_log_likelihood;
    aic = other.aic;
    ks = other.ks;
    ks_pvalue = other.ks_pvalue;
  }
  return *this;
}

int parameter_count(Family family) noexcept {
  switch (family) {
    case Family::exponential:
    case Family::poisson:
      return 1;
    default:
      return 2;
  }
}

FitResult fit(Family family, std::span<const double> xs, double floor_at) {
  HPCFAIL_EXPECTS(!xs.empty(), "fit on empty sample");
  HPCFAIL_EXPECTS(floor_at > 0.0, "fit floor must be positive");
  FitResult result;
  result.family = family;
  switch (family) {
    case Family::exponential:
      result.model = std::make_unique<Exponential>(Exponential::fit_mle(xs));
      break;
    case Family::weibull:
      result.model =
          std::make_unique<Weibull>(Weibull::fit_mle(xs, floor_at));
      break;
    case Family::gamma:
      result.model =
          std::make_unique<GammaDist>(GammaDist::fit_mle(xs, floor_at));
      break;
    case Family::lognormal:
      result.model =
          std::make_unique<LogNormal>(LogNormal::fit_mle(xs, floor_at));
      break;
    case Family::normal:
      result.model = std::make_unique<Normal>(Normal::fit_mle(xs));
      break;
    case Family::poisson:
      result.model = std::make_unique<Poisson>(Poisson::fit_mle(xs));
      break;
  }

  // Evaluate all families on the same (floored where relevant) data so
  // their likelihoods are comparable.
  const std::vector<double> eval =
      positive_support(family) ? floored(xs, floor_at)
                               : std::vector<double>(xs.begin(), xs.end());
  result.neg_log_likelihood = -result.model->log_likelihood(eval);
  result.aic =
      2.0 * parameter_count(family) + 2.0 * result.neg_log_likelihood;
  const Distribution& model = *result.model;
  result.ks = hpcfail::stats::ks_statistic(
      eval, [&model](double x) { return model.cdf(x); });
  result.ks_pvalue = hpcfail::stats::ks_pvalue(result.ks, eval.size());
  return result;
}

std::span<const Family> standard_families() noexcept {
  static constexpr std::array<Family, 4> kFamilies = {
      Family::weibull, Family::lognormal, Family::gamma, Family::exponential};
  return kFamilies;
}

std::span<const Family> count_families() noexcept {
  static constexpr std::array<Family, 3> kFamilies = {
      Family::poisson, Family::normal, Family::lognormal};
  return kFamilies;
}

std::vector<FitResult> fit_all(std::span<const double> xs,
                               std::span<const Family> families,
                               double floor_at) {
  // The families are independent MLE problems on a shared read-only
  // sample; fit them concurrently. Failed fits become nullopt so one
  // family's legitimate failure (e.g. constant sample) does not abort
  // the comparison; collecting in family order before the sort keeps the
  // result independent of the thread count.
  auto fitted = hpcfail::parallel_map(
      families.size(),
      [&families, xs, floor_at](std::size_t i) -> std::optional<FitResult> {
        try {
          return fit(families[i], xs, floor_at);
        } catch (const Error&) {
          return std::nullopt;
        }
      });
  std::vector<FitResult> results;
  results.reserve(families.size());
  for (auto& f : fitted) {
    if (f) results.push_back(std::move(*f));
  }
  if (results.empty()) {
    throw NumericError("no distribution family could be fitted");
  }
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) {
              return a.neg_log_likelihood < b.neg_log_likelihood;
            });
  return results;
}

std::vector<std::vector<FitResult>> fit_many(
    std::span<const std::vector<double>> samples,
    std::span<const Family> families, double floor_at) {
  // One task per sample; the nested fit_all runs sequentially on the
  // worker (nested parallelism degrades inline), so batched fits scale
  // with the number of samples without oversubscribing the pool.
  return hpcfail::parallel_map(
      samples.size(),
      [samples, families, floor_at](std::size_t i) -> std::vector<FitResult> {
        if (samples[i].empty()) return {};
        try {
          return fit_all(samples[i], families, floor_at);
        } catch (const Error&) {
          return {};
        }
      });
}

FitResult best_standard_fit(std::span<const double> xs) {
  auto results = fit_all(xs, standard_families());
  return std::move(results.front());
}

}  // namespace hpcfail::dist
