#include "dist/window.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hpcfail::dist {

SlidingSuffStats::SlidingSuffStats(Options options) : options_(options) {
  HPCFAIL_EXPECTS(options_.bucket_seconds > 0,
                  "bucket_seconds must be positive");
  HPCFAIL_EXPECTS(options_.max_buckets > 0, "max_buckets must be positive");
  HPCFAIL_EXPECTS(options_.floor_at > 0.0, "floor_at must be positive");
}

std::int64_t SlidingSuffStats::bucket_index(Seconds at) const noexcept {
  // Floor division (timestamps before the epoch are valid Seconds).
  std::int64_t q = at / options_.bucket_seconds;
  if (at % options_.bucket_seconds != 0 && at < 0) --q;
  return q;
}

void SlidingSuffStats::add(Seconds at, double value) {
  const std::int64_t idx = bucket_index(at);
  if (idx < floor_index_ ||
      (!buckets_.empty() && idx < buckets_.front().index)) {
    ++dropped_;  // older than everything retained (or already evicted)
    return;
  }
  if (at > latest_at_ || size_ == 0) latest_at_ = at;

  if (buckets_.empty() || idx > buckets_.back().index) {
    Bucket b;
    b.index = idx;
    b.stats.floor_at = options_.floor_at;
    buckets_.push_back(std::move(b));
    buckets_.back().stats.add(value);
  } else {
    // In a retained bucket: usually the newest, occasionally an
    // out-of-order arrival further back.
    const auto it = std::lower_bound(
        buckets_.begin(), buckets_.end(), idx,
        [](const Bucket& b, std::int64_t i) { return b.index < i; });
    if (it != buckets_.end() && it->index == idx) {
      it->stats.add(value);
    } else {
      Bucket b;
      b.index = idx;
      b.stats.floor_at = options_.floor_at;
      b.stats.add(value);
      buckets_.insert(it, std::move(b));
    }
  }
  ++size_;

  while (buckets_.size() > options_.max_buckets) {
    dropped_ += buckets_.front().stats.n;
    size_ -= buckets_.front().stats.n;
    floor_index_ = buckets_.front().index + 1;
    buckets_.pop_front();
  }
}

SuffStats SlidingSuffStats::evict_before(Seconds horizon) {
  SuffStats evicted;
  evicted.floor_at = options_.floor_at;
  const std::int64_t idx = bucket_index(horizon);
  if (idx > floor_index_) floor_index_ = idx;
  while (!buckets_.empty() && buckets_.front().index < idx) {
    const Bucket& front = buckets_.front();
    evicted.merge(front.stats);
    dropped_ += front.stats.n;
    size_ -= front.stats.n;
    buckets_.pop_front();
  }
  return evicted;
}

SuffStats SlidingSuffStats::window_stats(Seconds now, Seconds window) const {
  SuffStats merged;
  merged.floor_at = options_.floor_at;
  if (window <= 0) return merged;
  const std::int64_t min_idx = bucket_index(now - window);
  const std::int64_t max_idx = bucket_index(now);
  const auto first = std::lower_bound(
      buckets_.begin(), buckets_.end(), min_idx,
      [](const Bucket& b, std::int64_t i) { return b.index < i; });
  for (auto it = first; it != buckets_.end() && it->index <= max_idx; ++it) {
    merged.merge(it->stats);
  }
  return merged;
}

SuffStats SlidingSuffStats::total_stats() const {
  SuffStats merged;
  merged.floor_at = options_.floor_at;
  for (const Bucket& b : buckets_) merged.merge(b.stats);
  return merged;
}

}  // namespace hpcfail::dist
