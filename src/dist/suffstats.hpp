// Shared sufficient statistics for the standard positive-support MLE
// families (exponential, weibull, gamma, lognormal).
//
// All four fits reduce the sample through the same handful of sums — Σx,
// Σlog x, Σlog²x, the floored extrema — and the batched per-node fitting
// path used to recompute each of them once per family (and, for the
// iterative fits, once per solver step). SuffStats::compute performs every
// reduction in ONE streaming pass over the sample; the family overloads
// taking a SuffStats then derive their parameters from the precomputed
// sums, turning the exponential, gamma, and lognormal fits into O(1) (or
// one cheap residual pass) and sparing the weibull profile-likelihood
// solver its redundant reductions.
//
// Contract: parameters derived from SuffStats agree with the direct
// span-based fit_mle overloads to floating-point noise (the accumulation
// orders are the same single forward pass, so most agree bit for bit; the
// lognormal sigma uses the one-pass variance form and may differ in the
// last ulps). The testkit calibration oracle asserts this tolerance.
#pragma once

#include <cstddef>
#include <span>

namespace hpcfail::dist {

struct SuffStats {
  std::size_t n = 0;        ///< sample size
  double floor_at = 1e-9;   ///< resolution floor applied to the sums below
  double sum_raw = 0.0;     ///< Σ x over the raw (unfloored) sample
  double sum = 0.0;         ///< Σ max(x, floor_at)
  double sum_sq = 0.0;      ///< Σ max(x, floor_at)² (windowed mean/cv²)
  double sum_log = 0.0;     ///< Σ log(max(x, floor_at))
  double sum_log_sq = 0.0;  ///< Σ log²(max(x, floor_at))
  double min = 0.0;         ///< floored minimum (0 when n == 0)
  double max = 0.0;         ///< floored maximum (0 when n == 0)

  /// True when the floored sample is constant (every two-parameter family
  /// is degenerate on it).
  bool constant() const noexcept { return min == max; }

  /// Mean of the floored sample (NaN when empty).
  double mean() const noexcept {
    return sum / static_cast<double>(n);
  }

  /// Biased (1/n) variance of the floored sample via the one-pass form;
  /// clamped at zero against cancellation (NaN when empty).
  double variance() const noexcept {
    const double m = mean();
    const double v = sum_sq / static_cast<double>(n) - m * m;
    return v < 0.0 ? 0.0 : v;
  }

  /// Squared coefficient of variation, the paper's C² statistic (NaN when
  /// empty or zero-mean).
  double cv_squared() const noexcept {
    const double m = mean();
    return variance() / (m * m);
  }

  /// One streaming pass over the sample. Requires floor_at > 0 and
  /// non-negative data (InvalidArgument otherwise) — the same domain as
  /// the positive-support fit_mle overloads.
  static SuffStats compute(std::span<const double> xs,
                           double floor_at = 1e-9);

  /// Streaming single-observation update; the per-element arithmetic is
  /// the same sequence as compute(), so accumulating one at a time equals
  /// one compute() pass bit for bit. Same domain checks as compute().
  void add(double x);

  /// Pools another accumulator computed with the same floor (throws
  /// InvalidArgument on a floor mismatch). Sums combine by one addition
  /// each, so a merged result matches a single pass to float noise (not
  /// bit-exactly — addition order differs).
  void merge(const SuffStats& other);
};

}  // namespace hpcfail::dist
