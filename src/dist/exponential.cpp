#include "dist/exponential.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/descriptive.hpp"

namespace hpcfail::dist {

Exponential::Exponential(double rate) : rate_(rate) {
  HPCFAIL_EXPECTS(rate > 0.0 && std::isfinite(rate),
                  "exponential rate must be positive and finite");
}

Exponential Exponential::fit_mle(std::span<const double> xs) {
  HPCFAIL_EXPECTS(!xs.empty(), "exponential fit on empty sample");
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0, "exponential fit requires non-negative data");
  }
  const double m = hpcfail::stats::mean(xs);
  HPCFAIL_EXPECTS(m > 0.0, "exponential fit requires positive sample mean");
  return Exponential(1.0 / m);
}

Exponential Exponential::fit_mle(const SuffStats& stats) {
  HPCFAIL_EXPECTS(stats.n > 0, "exponential fit on empty sample");
  // Same accumulation order as stats::mean over the raw sample, so the
  // rate matches the span overload bit for bit.
  const double m = stats.sum_raw / static_cast<double>(stats.n);
  HPCFAIL_EXPECTS(m > 0.0, "exponential fit requires positive sample mean");
  return Exponential(1.0 / m);
}

double Exponential::log_pdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(rate_) - rate_ * x;
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-rate_ * x);
}

double Exponential::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(hpcfail::Rng& rng) const {
  return -std::log(rng.uniform_pos()) / rate_;
}

double Exponential::hazard(double x) const {
  return x >= 0.0 ? rate_ : 0.0;
}

std::string Exponential::describe() const {
  return "exponential(rate=" + hpcfail::format_double(rate_) + ")";
}

std::unique_ptr<Distribution> Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

}  // namespace hpcfail::dist
