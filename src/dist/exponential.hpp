// Exponential distribution — the paper's baseline model, consistently the
// worst fit for both time-between-failures and repair times (its C^2 is
// pinned at 1 while the data's is 1.9-294).
#pragma once

#include <span>

#include "dist/distribution.hpp"
#include "dist/suffstats.hpp"

namespace hpcfail::dist {

class Exponential final : public Distribution {
 public:
  /// Rate lambda > 0 (mean 1/lambda). Throws InvalidArgument otherwise.
  explicit Exponential(double rate);

  static Exponential from_mean(double mean) { return Exponential(1.0 / mean); }

  /// Closed-form MLE: lambda = 1 / sample mean. Requires a non-empty
  /// sample of non-negative values with positive mean.
  static Exponential fit_mle(std::span<const double> xs);

  /// MLE from precomputed sufficient statistics: lambda = n / sum of the
  /// raw (unfloored) sample, bit-identical to the span overload.
  static Exponential fit_mle(const SuffStats& stats);

  double rate() const noexcept { return rate_; }

  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return 1.0 / rate_; }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  double sample(hpcfail::Rng& rng) const override;
  /// Memoryless: h(x) = rate for every x in the support.
  double hazard(double x) const override;
  std::string name() const override { return "exponential"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double rate_;
};

}  // namespace hpcfail::dist
