// Lognormal distribution — the paper's best model for repair times
// (Fig 7a) and for per-node time between failures early in production
// (Fig 6a), where variability is too high for a Weibull/gamma.
#pragma once

#include <span>

#include "dist/distribution.hpp"
#include "dist/suffstats.hpp"

namespace hpcfail::dist {

class LogNormal final : public Distribution {
 public:
  /// ln X ~ N(mu, sigma^2); sigma > 0 and both finite, otherwise
  /// InvalidArgument.
  LogNormal(double mu, double sigma);

  /// Constructs from the distribution's own mean and median
  /// (mu = ln median, sigma = sqrt(2 ln(mean/median))); requires
  /// mean > median > 0. This is how the synthetic generator turns
  /// Table 2's reported repair-time moments into samplers.
  static LogNormal from_mean_median(double mean, double median);

  /// Closed-form MLE: mu/sigma are the mean/stddev of ln x (with the
  /// population 1/n variance, as MLE prescribes). Non-positive values are
  /// floored at `floor_at`. Requires >= 2 observations; a constant
  /// sample throws FitError (sigma would be zero).
  static LogNormal fit_mle(std::span<const double> xs, double floor_at = 1e-9);

  /// MLE from precomputed sufficient statistics: O(1) in the sample size,
  /// using the one-pass variance form sigma^2 = sum_log_sq/n - mu^2.
  /// Agrees with the span overload (two-pass variance) to float noise;
  /// mu is bit-identical.
  static LogNormal fit_mle(const SuffStats& stats);

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }
  double median() const noexcept;

  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  double sample(hpcfail::Rng& rng) const override;
  std::string name() const override { return "lognormal"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace hpcfail::dist
