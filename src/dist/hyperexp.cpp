#include "dist/hyperexp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/descriptive.hpp"
#include "stats/solver.hpp"

namespace hpcfail::dist {

HyperExp::HyperExp(double p, double rate1, double rate2)
    : p_(p), rate1_(rate1), rate2_(rate2) {
  HPCFAIL_EXPECTS(p >= 0.0 && p <= 1.0, "mixture weight must be in [0,1]");
  HPCFAIL_EXPECTS(rate1 > 0.0 && std::isfinite(rate1),
                  "rate1 must be positive and finite");
  HPCFAIL_EXPECTS(rate2 > 0.0 && std::isfinite(rate2),
                  "rate2 must be positive and finite");
}

HyperExp HyperExp::fit_em(std::span<const double> xs, double floor_at,
                          HyperExpEmOptions options) {
  HPCFAIL_EXPECTS(xs.size() >= 4, "H2 fit needs at least 4 observations");
  HPCFAIL_EXPECTS(floor_at > 0.0, "H2 fit floor must be positive");
  std::vector<double> data;
  data.reserve(xs.size());
  for (const double x : xs) {
    HPCFAIL_EXPECTS(x >= 0.0, "H2 fit requires non-negative data");
    data.push_back(x < floor_at ? floor_at : x);
  }
  const auto n = static_cast<double>(data.size());

  // Initialize by splitting at the median: the fast phase explains the
  // lower half, the slow phase the upper half.
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t half = sorted.size() / 2;
  double lower_mean = 0.0;
  double upper_mean = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    (i < half ? lower_mean : upper_mean) += sorted[i];
  }
  lower_mean /= static_cast<double>(half);
  upper_mean /= static_cast<double>(sorted.size() - half);
  if (!(upper_mean > lower_mean)) {
    throw FitError("H2 fit is degenerate on a (near-)constant sample");
  }

  double p = 0.5;
  double r1 = 1.0 / lower_mean;
  double r2 = 1.0 / upper_mean;

  double prev_ll = -std::numeric_limits<double>::infinity();
  std::vector<double> resp(data.size());
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // E-step: responsibility of phase 1 for each observation, computed in
    // log space for numerical safety on second-scale data.
    double ll = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double l1 = std::log(p) + std::log(r1) - r1 * data[i];
      const double l2 = std::log1p(-p) + std::log(r2) - r2 * data[i];
      const double mx = std::max(l1, l2);
      const double log_f =
          mx + std::log(std::exp(l1 - mx) + std::exp(l2 - mx));
      resp[i] = std::exp(l1 - log_f);
      ll += log_f;
    }
    // M-step.
    double sum_r = 0.0;
    double sum_rx = 0.0;
    double sum_qx = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      sum_r += resp[i];
      sum_rx += resp[i] * data[i];
      sum_qx += (1.0 - resp[i]) * data[i];
    }
    // A collapsed phase means a single exponential explains the data.
    if (sum_r < 1e-9 || n - sum_r < 1e-9 || sum_rx <= 0.0 ||
        sum_qx <= 0.0) {
      break;
    }
    p = std::clamp(sum_r / n, 1e-9, 1.0 - 1e-9);
    r1 = sum_r / sum_rx;
    r2 = (n - sum_r) / sum_qx;

    if (ll - prev_ll < options.log_likelihood_tolerance * n && iter > 0) {
      break;
    }
    prev_ll = ll;
  }
  // Canonical order: phase 1 is the faster (higher-rate) phase.
  if (r1 < r2) {
    std::swap(r1, r2);
    p = 1.0 - p;
  }
  return HyperExp(p, r1, r2);
}

double HyperExp::log_pdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  const double f = p_ * rate1_ * std::exp(-rate1_ * x) +
                   (1.0 - p_) * rate2_ * std::exp(-rate2_ * x);
  return f > 0.0 ? std::log(f)
                 : -std::numeric_limits<double>::infinity();
}

double HyperExp::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - p_ * std::exp(-rate1_ * x) -
         (1.0 - p_) * std::exp(-rate2_ * x);
}

double HyperExp::quantile(double prob) const {
  HPCFAIL_EXPECTS(prob > 0.0 && prob < 1.0, "quantile requires p in (0,1)");
  // Bracket with the slower phase's exponential quantile and solve.
  const double slow_rate = std::min(rate1_, rate2_);
  double hi = -std::log1p(-prob) / slow_rate + 1.0;
  const auto f = [this, prob](double x) { return cdf(x) - prob; };
  double lo = 0.0;
  hpcfail::stats::expand_bracket(f, lo, hi, /*positive_only=*/false);
  return hpcfail::stats::brent(f, lo, hi);
}

double HyperExp::mean() const {
  return p_ / rate1_ + (1.0 - p_) / rate2_;
}

double HyperExp::variance() const {
  const double m = mean();
  const double second_moment = 2.0 * (p_ / (rate1_ * rate1_) +
                                      (1.0 - p_) / (rate2_ * rate2_));
  return second_moment - m * m;
}

double HyperExp::sample(hpcfail::Rng& rng) const {
  const double rate = rng.bernoulli(p_) ? rate1_ : rate2_;
  return -std::log(rng.uniform_pos()) / rate;
}

std::string HyperExp::describe() const {
  return "hyperexp(p=" + hpcfail::format_double(p_) +
         ", rate1=" + hpcfail::format_double(rate1_) +
         ", rate2=" + hpcfail::format_double(rate2_) + ")";
}

std::unique_ptr<Distribution> HyperExp::clone() const {
  return std::make_unique<HyperExp>(*this);
}

}  // namespace hpcfail::dist
