// Pareto (power-law tail) distribution.
//
// Footnote 1 of the paper: "We also considered the Pareto
// distribution [22, 15], but didn't find it to be a better fit than any
// of the four standard distributions." Implemented so that claim can be
// re-tested (bench_ext_pareto) -- heavy-tail advocates proposed Pareto
// interarrivals for machine availability (Nurmi et al.) and self-similar
// traffic (Willinger et al.), the works the footnote cites.
#pragma once

#include <span>

#include "dist/distribution.hpp"

namespace hpcfail::dist {

class Pareto final : public Distribution {
 public:
  /// F(x) = 1 - (x_min / x)^alpha for x >= x_min; both parameters
  /// positive and finite, otherwise InvalidArgument.
  Pareto(double alpha, double x_min);

  /// MLE with known support start min(xs): alpha = n / sum ln(x/x_min).
  /// Values below `floor_at` are floored first (so x_min > 0). Requires
  /// >= 2 observations; a constant sample throws FitError.
  static Pareto fit_mle(std::span<const double> xs, double floor_at = 1e-9);

  double alpha() const noexcept { return alpha_; }
  double x_min() const noexcept { return x_min_; }

  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  /// Infinite for alpha <= 1.
  double mean() const override;
  /// Infinite for alpha <= 2.
  double variance() const override;
  double sample(hpcfail::Rng& rng) const override;
  /// h(x) = alpha / x on the support: always decreasing.
  double hazard(double x) const override;
  std::string name() const override { return "pareto"; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double alpha_;
  double x_min_;
};

}  // namespace hpcfail::dist
