#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpcfail::report {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HPCFAIL_EXPECTS(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  HPCFAIL_EXPECTS(row.size() == header_.size(),
                  "row width differs from header");
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) {
    row.push_back(hpcfail::format_double(v, precision));
  }
  add_row(std::move(row));
}

void TextTable::render(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      // First column left-aligned (labels), the rest right-aligned.
      const auto pad = width[c] - row[c].size();
      if (c == 0) {
        out << row[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << row[c];
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace hpcfail::report
