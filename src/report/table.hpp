// Aligned text tables for the bench harness's reproduction of the paper's
// tables (Table 1, Table 2) and figure-backing data.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpcfail::report {

/// A simple column-aligned table. Numeric cells are formatted by the
/// caller (keeps formatting decisions, e.g. significant digits, at the
/// call site where the paper's precision is known).
class TextTable {
 public:
  /// Sets the header row; resets alignment to right for every column.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row. Throws InvalidArgument when the width differs from
  /// the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant digits.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a separator line under the header.
  void render(std::ostream& out) const;

  /// Rendered string (for tests).
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpcfail::report
