// CSV export of figure data series (gnuplot/matplotlib-ready), so every
// reproduced figure can also be re-plotted outside the terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpcfail::report {

/// A named numeric column.
struct Column {
  std::string name;
  std::vector<double> values;
};

/// Writes columns side by side as CSV (header = column names). Columns
/// may have different lengths; missing cells are left empty. Throws
/// InvalidArgument when no columns are given.
void write_series_csv(std::ostream& out, const std::vector<Column>& columns);

/// Writes to a file; throws Error when the file cannot be opened.
void write_series_csv_file(const std::string& path,
                           const std::vector<Column>& columns);

}  // namespace hpcfail::report
