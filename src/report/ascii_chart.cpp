#include "report/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpcfail::report {

void bar_chart(std::ostream& out, const std::string& title,
               const std::vector<std::pair<std::string, double>>& bars,
               std::size_t width) {
  HPCFAIL_EXPECTS(!bars.empty(), "bar chart with no bars");
  out << title << '\n';
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  for (const auto& [label, value] : bars) {
    const auto len =
        max_value > 0.0
            ? static_cast<std::size_t>(std::lround(
                  value / max_value * static_cast<double>(width)))
            : 0;
    out << "  " << label << std::string(label_width - label.size(), ' ')
        << " |" << std::string(len, '#')
        << std::string(width - len, ' ') << ' '
        << hpcfail::format_double(value, 4) << '\n';
  }
}

void stacked_bar_chart(std::ostream& out, const std::string& title,
                       const std::vector<std::string>& labels,
                       const std::vector<StackSeries>& series,
                       std::size_t width) {
  HPCFAIL_EXPECTS(!labels.empty(), "stacked chart with no rows");
  HPCFAIL_EXPECTS(!series.empty(), "stacked chart with no series");
  for (const StackSeries& s : series) {
    HPCFAIL_EXPECTS(s.values.size() == labels.size(),
                    "series length differs from label count");
  }
  static constexpr char kGlyphs[] = {'#', '+', 'o', '~', '=', '.'};

  double max_total = 0.0;
  std::size_t label_width = 0;
  for (std::size_t row = 0; row < labels.size(); ++row) {
    double total = 0.0;
    for (const StackSeries& s : series) total += s.values[row];
    max_total = std::max(max_total, total);
    label_width = std::max(label_width, labels[row].size());
  }

  out << title << '\n';
  for (std::size_t row = 0; row < labels.size(); ++row) {
    out << "  " << labels[row]
        << std::string(label_width - labels[row].size(), ' ') << " |";
    double total = 0.0;
    std::size_t drawn = 0;
    for (std::size_t si = 0; si < series.size(); ++si) {
      total += series[si].values[row];
      // Cumulative rounding keeps each row's length proportional to its
      // total even when individual layers round to zero characters.
      const auto end = max_total > 0.0
                           ? static_cast<std::size_t>(std::lround(
                                 total / max_total *
                                 static_cast<double>(width)))
                           : 0;
      if (end > drawn) {
        out << std::string(end - drawn,
                           kGlyphs[si % sizeof kGlyphs]);
        drawn = end;
      }
    }
    out << std::string(width - drawn, ' ') << ' '
        << hpcfail::format_double(total, 4) << '\n';
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "      '" << kGlyphs[si % sizeof kGlyphs] << "' "
        << series[si].name << '\n';
  }
}

void cdf_plot(std::ostream& out, const std::string& title,
              const std::vector<CdfSeries>& series, bool log_x,
              std::size_t width, std::size_t height) {
  HPCFAIL_EXPECTS(!series.empty(), "cdf plot with no series");
  double x_lo = 0.0;
  double x_hi = 0.0;
  bool have_range = false;
  for (const CdfSeries& s : series) {
    for (const auto& [x, p] : s.points) {
      if (log_x && x <= 0.0) continue;
      if (!have_range) {
        x_lo = x_hi = x;
        have_range = true;
      } else {
        x_lo = std::min(x_lo, x);
        x_hi = std::max(x_hi, x);
      }
      (void)p;
    }
  }
  HPCFAIL_EXPECTS(have_range, "cdf plot with no plottable points");
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;

  const auto to_col = [&](double x) -> std::size_t {
    double t;
    if (log_x) {
      t = (std::log10(x) - std::log10(x_lo)) /
          (std::log10(x_hi) - std::log10(x_lo));
    } else {
      t = (x - x_lo) / (x_hi - x_lo);
    }
    t = std::clamp(t, 0.0, 1.0);
    return static_cast<std::size_t>(t * static_cast<double>(width - 1));
  };
  const auto to_row = [&](double p) -> std::size_t {
    const double t = std::clamp(p, 0.0, 1.0);
    return static_cast<std::size_t>((1.0 - t) *
                                    static_cast<double>(height - 1));
  };

  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '.', '~'};
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof kGlyphs];
    for (const auto& [x, p] : series[si].points) {
      if (log_x && x <= 0.0) continue;
      grid[to_row(p)][to_col(x)] = glyph;
    }
  }

  out << title << '\n';
  for (std::size_t r = 0; r < height; ++r) {
    const double p =
        1.0 - static_cast<double>(r) / static_cast<double>(height - 1);
    char ylab[8];
    std::snprintf(ylab, sizeof ylab, "%4.2f", p);
    out << ylab << " |" << grid[r] << '\n';
  }
  out << "     +" << std::string(width, '-') << '\n';
  out << "      x: " << hpcfail::format_double(x_lo, 3) << " .. "
      << hpcfail::format_double(x_hi, 3) << (log_x ? " (log scale)" : "")
      << '\n';
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "      '" << kGlyphs[si % sizeof kGlyphs] << "' "
        << series[si].name << '\n';
  }
}

CdfSeries sample_cdf(const std::string& name,
                     const std::function<double(double)>& cdf, double x_min,
                     double x_max, bool log_x, std::size_t n) {
  HPCFAIL_EXPECTS(n >= 2, "sample_cdf needs at least 2 points");
  HPCFAIL_EXPECTS(x_max > x_min, "sample_cdf needs x_max > x_min");
  if (log_x) {
    HPCFAIL_EXPECTS(x_min > 0.0, "log-x sampling needs x_min > 0");
  }
  CdfSeries series;
  series.name = name;
  series.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(n - 1);
    const double x =
        log_x ? std::pow(10.0, std::log10(x_min) +
                                   t * (std::log10(x_max) -
                                        std::log10(x_min)))
              : x_min + t * (x_max - x_min);
    series.points.emplace_back(x, cdf(x));
  }
  return series;
}

}  // namespace hpcfail::report
