#include "report/series.hpp"

#include <fstream>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpcfail::report {

void write_series_csv(std::ostream& out,
                      const std::vector<Column>& columns) {
  HPCFAIL_EXPECTS(!columns.empty(), "series export with no columns");
  CsvWriter writer(out);
  std::vector<std::string> row;
  row.reserve(columns.size());
  for (const Column& c : columns) row.push_back(c.name);
  writer.write_row(row);

  std::size_t length = 0;
  for (const Column& c : columns) length = std::max(length, c.values.size());
  for (std::size_t i = 0; i < length; ++i) {
    row.clear();
    for (const Column& c : columns) {
      row.push_back(i < c.values.size()
                        ? hpcfail::format_double(c.values[i], 10)
                        : std::string());
    }
    writer.write_row(row);
  }
}

void write_series_csv_file(const std::string& path,
                           const std::vector<Column>& columns) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  write_series_csv(out, columns);
  if (!out) throw IoError("write failed for '" + path + "'");
}

}  // namespace hpcfail::report
