// Side-by-side rendering of the cross-study comparison battery
// (analysis/compare.hpp): a metric-per-row, site-per-column text table
// plus a machine-readable CSV with one row per site. Both forms are
// golden-snapshotted (tests/golden/) and emitted by `hpcfail compare`.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/compare.hpp"

namespace hpcfail::report {

/// Renders the side-by-side text report (metrics as rows, sites as
/// columns). Unknown per-processor rates render as "n/a".
void render_compare(std::ostream& out, const analysis::CompareReport& report);

/// Rendered string (for tests and --out capture).
std::string render_compare_text(const analysis::CompareReport& report);

/// Writes the CSV form: a header row then one row per site, same
/// metrics as the text table.
void write_compare_csv(std::ostream& out,
                       const analysis::CompareReport& report);

}  // namespace hpcfail::report
