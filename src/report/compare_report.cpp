#include "report/compare_report.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/strings.hpp"
#include "report/table.hpp"
#include "trace/types.hpp"

namespace hpcfail::report {

namespace {

std::string value_or_na(double value, int precision = 4) {
  if (std::isnan(value)) return "n/a";
  return format_double(value, precision);
}

std::string best_family(const dist::FitReport& fits) {
  if (fits.empty()) return "n/a";
  return dist::to_string(fits.best().family);
}

/// "weibull > lognormal > gamma > exponential" — the paper's ranked
/// goodness-of-fit verdict, per site.
std::string ranking(const dist::FitReport& fits) {
  if (fits.empty()) return "n/a";
  std::string joined;
  for (const dist::FitResult& fit : fits) {
    if (!joined.empty()) joined += " > ";
    joined += dist::to_string(fit.family);
  }
  return joined;
}

/// One table row: the metric label plus one formatted cell per site.
template <typename Extract>
void metric_row(TextTable& table, const analysis::CompareReport& report,
                const std::string& label, Extract&& extract) {
  std::vector<std::string> row;
  row.reserve(report.sites.size() + 1);
  row.push_back(label);
  for (const analysis::CompareSite& site : report.sites) {
    row.push_back(extract(site));
  }
  table.add_row(std::move(row));
}

}  // namespace

void render_compare(std::ostream& out,
                    const analysis::CompareReport& report) {
  out << "hpcfail site comparison: " << report.sites.size()
      << " site(s)\n\n";

  std::vector<std::string> header = {"metric"};
  for (const analysis::CompareSite& site : report.sites) {
    header.push_back(site.label);
  }
  TextTable table(std::move(header));

  metric_row(table, report, "records", [](const auto& s) {
    return std::to_string(s.records);
  });
  metric_row(table, report, "nodes observed", [](const auto& s) {
    return std::to_string(s.nodes);
  });
  metric_row(table, report, "span (years)", [](const auto& s) {
    return format_double(s.span_years, 4);
  });
  metric_row(table, report, "failures / node-year", [](const auto& s) {
    return format_double(s.failures_per_node_year, 4);
  });
  metric_row(table, report, "failures / proc-year", [](const auto& s) {
    return value_or_na(s.failures_per_proc_year);
  });
  for (const trace::RootCause cause : trace::kAllRootCauses) {
    metric_row(table, report, trace::to_string(cause) + " %",
               [cause](const auto& s) {
                 return format_double(
                     s.cause_fraction[trace::cause_index(cause)] * 100.0, 4);
               });
  }
  metric_row(table, report, "repair mean (min)", [](const auto& s) {
    return format_double(s.repair_minutes.mean, 4);
  });
  metric_row(table, report, "repair median (min)", [](const auto& s) {
    return format_double(s.repair_minutes.median, 4);
  });
  metric_row(table, report, "repair C^2", [](const auto& s) {
    return format_double(s.repair_minutes.cv2, 4);
  });
  metric_row(table, report, "repair best family", [](const auto& s) {
    return best_family(s.repair_fits);
  });
  metric_row(table, report, "repair lognormal mu", [](const auto& s) {
    return value_or_na(s.repair_lognormal_mu);
  });
  metric_row(table, report, "repair lognormal sigma", [](const auto& s) {
    return value_or_na(s.repair_lognormal_sigma);
  });
  metric_row(table, report, "gap mean (h)", [](const auto& s) {
    return format_double(s.gaps_seconds.mean / 3600.0, 4);
  });
  metric_row(table, report, "gap median (h)", [](const auto& s) {
    return format_double(s.gaps_seconds.median / 3600.0, 4);
  });
  metric_row(table, report, "gap C^2", [](const auto& s) {
    return format_double(s.gaps_seconds.cv2, 4);
  });
  metric_row(table, report, "interarrival best family", [](const auto& s) {
    return best_family(s.gap_fits);
  });
  metric_row(table, report, "weibull shape", [](const auto& s) {
    return value_or_na(s.weibull_shape);
  });
  metric_row(table, report, "weibull scale (h)", [](const auto& s) {
    return value_or_na(s.weibull_scale / 3600.0);
  });
  metric_row(table, report, "interarrival ranking", [](const auto& s) {
    return ranking(s.gap_fits);
  });

  table.render(out);
}

std::string render_compare_text(const analysis::CompareReport& report) {
  std::ostringstream out;
  render_compare(out, report);
  return out.str();
}

void write_compare_csv(std::ostream& out,
                       const analysis::CompareReport& report) {
  out << "site,records,nodes,span_years,failures_per_node_year,"
         "failures_per_proc_year,pct_hardware,pct_software,pct_network,"
         "pct_environment,pct_human,pct_unknown,repair_mean_min,"
         "repair_median_min,repair_cv2,repair_best_family,"
         "repair_lognormal_mu,repair_lognormal_sigma,gap_mean_hours,"
         "gap_median_hours,gap_cv2,gap_best_family,weibull_shape,"
         "weibull_scale_hours,gap_ranking\n";
  for (const analysis::CompareSite& s : report.sites) {
    out << s.label << ',' << s.records << ',' << s.nodes << ','
        << format_double(s.span_years, 6) << ','
        << format_double(s.failures_per_node_year, 6) << ','
        << value_or_na(s.failures_per_proc_year, 6);
    for (const trace::RootCause cause : trace::kAllRootCauses) {
      out << ','
          << format_double(
                 s.cause_fraction[trace::cause_index(cause)] * 100.0, 6);
    }
    out << ',' << format_double(s.repair_minutes.mean, 6) << ','
        << format_double(s.repair_minutes.median, 6) << ','
        << format_double(s.repair_minutes.cv2, 6) << ','
        << best_family(s.repair_fits) << ','
        << value_or_na(s.repair_lognormal_mu, 6) << ','
        << value_or_na(s.repair_lognormal_sigma, 6) << ','
        << format_double(s.gaps_seconds.mean / 3600.0, 6) << ','
        << format_double(s.gaps_seconds.median / 3600.0, 6) << ','
        << format_double(s.gaps_seconds.cv2, 6) << ','
        << best_family(s.gap_fits) << ','
        << value_or_na(s.weibull_shape, 6) << ','
        << value_or_na(s.weibull_scale / 3600.0, 6) << ','
        << ranking(s.gap_fits) << '\n';
  }
}

}  // namespace hpcfail::report
