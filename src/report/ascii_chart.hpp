// ASCII renderings of the paper's figure types: labelled bar charts
// (Figs 1, 2, 3a, 5, 7b/c) and multi-series CDF plots with optional log-x
// (Figs 3b, 6, 7a). These substitute for the authors' Matlab plots; the
// CSV emitters in series.hpp export the same data for external plotting.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace hpcfail::report {

/// Horizontal bar chart: one row per (label, value), bars scaled to
/// `width` characters, value printed at the end.
void bar_chart(std::ostream& out, const std::string& title,
               const std::vector<std::pair<std::string, double>>& bars,
               std::size_t width = 50);

/// One layer of a stacked bar chart: a name plus one value per row.
struct StackSeries {
  std::string name;
  std::vector<double> values;
};

/// Horizontal stacked bar chart (Fig 4's failures-per-month stacked by
/// root cause): one row per label, each layer drawn with its own glyph,
/// total printed at the end. Every series must have one value per label;
/// throws InvalidArgument otherwise.
void stacked_bar_chart(std::ostream& out, const std::string& title,
                       const std::vector<std::string>& labels,
                       const std::vector<StackSeries>& series,
                       std::size_t width = 50);

/// One curve of a CDF plot: a name plus (x, p) points with p in [0, 1]
/// non-decreasing.
struct CdfSeries {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Renders several CDFs on one character grid (distinct glyph per
/// series), x linear or log10. Points with x <= 0 are dropped in log
/// mode (the empirical zero-gap mass still shows as the curve starting
/// above 0). Throws InvalidArgument when there is nothing to plot.
void cdf_plot(std::ostream& out, const std::string& title,
              const std::vector<CdfSeries>& series, bool log_x = true,
              std::size_t width = 72, std::size_t height = 20);

/// Samples a model CDF at `n` log- or linearly-spaced points in
/// [x_min, x_max] for use as a CdfSeries.
CdfSeries sample_cdf(const std::string& name,
                     const std::function<double(double)>& cdf, double x_min,
                     double x_max, bool log_x = true, std::size_t n = 120);

}  // namespace hpcfail::report
