#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace hpcfail::stats {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sorted_copy(sample)) {
  HPCFAIL_EXPECTS(!sorted_.empty(), "Ecdf of empty sample");
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  HPCFAIL_EXPECTS(p > 0.0 && p <= 1.0, "Ecdf quantile requires p in (0,1]");
  const auto n = static_cast<double>(sorted_.size());
  // Smallest k with k/n >= p, i.e. k = ceil(p * n); 1-based.
  auto k = static_cast<std::size_t>(std::ceil(p * n - 1e-9));
  if (k == 0) k = 1;
  if (k > sorted_.size()) k = sorted_.size();
  return sorted_[k - 1];
}

std::vector<std::pair<double, double>> Ecdf::step_points() const {
  std::vector<std::pair<double, double>> pts;
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    // Emit only the last point of a run of ties.
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    pts.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
  }
  return pts;
}

double Ecdf::mass_at(double x) const noexcept {
  const auto lo = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  const auto hi = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(hi - lo) / static_cast<double>(sorted_.size());
}

}  // namespace hpcfail::stats
