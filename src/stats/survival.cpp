#include "stats/survival.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpcfail::stats {

namespace {

// Sorted copy with events ordered before censorings at tied times.
std::vector<SurvivalObservation> prepared(
    std::span<const SurvivalObservation> sample) {
  HPCFAIL_EXPECTS(!sample.empty(), "survival estimate of empty sample");
  bool any_event = false;
  for (const SurvivalObservation& obs : sample) {
    HPCFAIL_EXPECTS(obs.time >= 0.0, "survival times must be non-negative");
    any_event = any_event || obs.observed;
  }
  HPCFAIL_EXPECTS(any_event, "survival estimate needs at least one event");
  std::vector<SurvivalObservation> out(sample.begin(), sample.end());
  std::sort(out.begin(), out.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.observed && !b.observed;
            });
  return out;
}

// Shared sweep: calls `step(time, events, at_risk)` once per distinct
// event time.
template <typename Step>
void sweep_event_times(const std::vector<SurvivalObservation>& sorted,
                       Step step) {
  std::size_t i = 0;
  std::size_t at_risk = sorted.size();
  while (i < sorted.size()) {
    const double t = sorted[i].time;
    std::size_t events = 0;
    std::size_t leaving = 0;
    while (i < sorted.size() && sorted[i].time == t) {
      if (sorted[i].observed) ++events;
      ++leaving;
      ++i;
    }
    if (events > 0) step(t, events, at_risk);
    at_risk -= leaving;
  }
}

}  // namespace

std::vector<SurvivalPoint> kaplan_meier(
    std::span<const SurvivalObservation> sample) {
  const auto sorted = prepared(sample);
  std::vector<SurvivalPoint> curve;
  double survival = 1.0;
  sweep_event_times(sorted, [&](double t, std::size_t events,
                                std::size_t at_risk) {
    survival *= 1.0 - static_cast<double>(events) /
                          static_cast<double>(at_risk);
    curve.push_back({t, survival});
  });
  return curve;
}

std::vector<SurvivalPoint> nelson_aalen(
    std::span<const SurvivalObservation> sample) {
  const auto sorted = prepared(sample);
  std::vector<SurvivalPoint> curve;
  double cumulative = 0.0;
  sweep_event_times(sorted, [&](double t, std::size_t events,
                                std::size_t at_risk) {
    cumulative +=
        static_cast<double>(events) / static_cast<double>(at_risk);
    curve.push_back({t, cumulative});
  });
  return curve;
}

std::vector<SurvivalObservation> fully_observed(
    std::span<const double> times) {
  std::vector<SurvivalObservation> out;
  out.reserve(times.size());
  for (const double t : times) out.push_back({t, true});
  return out;
}

double log_log_hazard_slope(std::span<const SurvivalObservation> sample,
                            std::size_t min_events) {
  const auto hazard = nelson_aalen(sample);
  // Use strictly positive times and hazards (log domain).
  std::vector<double> xs;
  std::vector<double> ys;
  for (const SurvivalPoint& p : hazard) {
    if (p.time > 0.0 && p.value > 0.0) {
      xs.push_back(std::log(p.time));
      ys.push_back(std::log(p.value));
    }
  }
  HPCFAIL_EXPECTS(xs.size() >= min_events,
                  "too few events for a hazard-slope estimate");
  const auto n = static_cast<double>(xs.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  HPCFAIL_EXPECTS(sxx > 0.0, "degenerate event times");
  return sxy / sxx;
}

}  // namespace hpcfail::stats
