// Kolmogorov-Smirnov goodness-of-fit statistic.
//
// The paper judges fits by negative log-likelihood and visual inspection;
// we additionally report the KS distance D_n = sup_x |F_n(x) - F(x)| and
// its asymptotic p-value as a second, scale-free goodness-of-fit measure.
#pragma once

#include <functional>
#include <span>

namespace hpcfail::stats {

/// KS distance between a sample and a model CDF. The sample is copied and
/// sorted internally. Throws InvalidArgument on an empty sample.
double ks_statistic(std::span<const double> sample,
                    const std::function<double(double)>& model_cdf);

/// Asymptotic two-sided p-value for KS distance `d` on `n` observations,
/// using the Kolmogorov distribution with the usual small-sample
/// correction sqrt(n) -> sqrt(n) + 0.12 + 0.11/sqrt(n).
double ks_pvalue(double d, std::size_t n);

}  // namespace hpcfail::stats
