// Kolmogorov-Smirnov goodness-of-fit statistic.
//
// The paper judges fits by negative log-likelihood and visual inspection;
// we additionally report the KS distance D_n = sup_x |F_n(x) - F(x)| and
// its asymptotic p-value as a second, scale-free goodness-of-fit measure.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace hpcfail::stats {

/// KS distance between a sample and a model CDF. The sample is copied and
/// sorted internally. Throws InvalidArgument on an empty sample.
double ks_statistic(std::span<const double> sample,
                    const std::function<double(double)>& model_cdf);

/// KS distance for an already-sorted sample of size n, with the model CDF
/// supplied as an indexed callable: cdf_at(i) must return F(sorted[i]) and
/// therefore be non-decreasing in i (true for any CDF over ascending order
/// statistics — this is a REQUIREMENT, not a hint).
///
/// Batched fitting sorts once and evaluates several families against the
/// same order statistics; the callable form lets the caller inline
/// family-specific CDFs (no std::function dispatch per point).
///
/// The sup is found by adaptive interval pruning instead of a full scan:
/// for interior points lo < i < hi of a bracket with known F(x_lo), F(x_hi),
/// monotonicity bounds the deviations
///   (i+1)/n - F(x_i) <= hi/n - F(x_lo)   and
///   F(x_i) - i/n     <= F(x_hi) - (lo+1)/n,
/// so any bracket whose bounds cannot beat the best deviation seen so far
/// is skipped without evaluating its CDFs. Every point that could attain
/// the max IS evaluated (with the exact same arithmetic as the full scan,
/// and max() is order-independent), so the result is bit-identical to the
/// brute-force loop while typically costing O(D^-1 log n) CDF evaluations
/// instead of n — the big win for the expensive gamma CDF.
template <typename CdfAt>
double ks_statistic_sorted(std::size_t size, CdfAt&& cdf_at) {
  HPCFAIL_EXPECTS(size > 0, "ks_statistic of empty sample");
  const auto n = static_cast<double>(size);
  double d = 0.0;
  const auto consider = [&](std::size_t i) {
    const double fx = cdf_at(i);
    // Compare against the ECDF from above and below the step at x_i.
    const double above = static_cast<double>(i + 1) / n - fx;
    const double below = fx - static_cast<double>(i) / n;
    d = std::max({d, above, below});
    return fx;
  };
  const double f_first = consider(0);
  if (size == 1) return d;
  const double f_last = consider(size - 1);

  struct Bracket {
    std::size_t lo, hi;
    double f_lo, f_hi;
  };
  // Depth-first over subdivided brackets; splitting at the midpoint keeps
  // the stack logarithmic in n.
  std::vector<Bracket> stack;
  stack.reserve(64);
  stack.push_back({0, size - 1, f_first, f_last});
  while (!stack.empty()) {
    const Bracket b = stack.back();
    stack.pop_back();
    if (b.hi - b.lo <= 1) continue;  // no interior points
    const double above_bound = static_cast<double>(b.hi) / n - b.f_lo;
    const double below_bound = b.f_hi - static_cast<double>(b.lo + 1) / n;
    if (above_bound <= d && below_bound <= d) continue;  // cannot beat d
    const std::size_t mid = b.lo + (b.hi - b.lo) / 2;
    const double f_mid = consider(mid);
    stack.push_back({b.lo, mid, b.f_lo, f_mid});
    stack.push_back({mid, b.hi, f_mid, b.f_hi});
  }
  return d;
}

/// Asymptotic two-sided p-value for KS distance `d` on `n` observations,
/// using the Kolmogorov distribution with the usual small-sample
/// correction sqrt(n) -> sqrt(n) + 0.12 + 0.11/sqrt(n).
double ks_pvalue(double d, std::size_t n);

}  // namespace hpcfail::stats
