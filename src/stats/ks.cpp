#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace hpcfail::stats {

double ks_statistic(std::span<const double> sample,
                    const std::function<double(double)>& model_cdf) {
  HPCFAIL_EXPECTS(!sample.empty(), "ks_statistic of empty sample");
  const auto sorted = sorted_copy(sample);
  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double fx = model_cdf(sorted[i]);
    // Compare against the ECDF from above and below the step at x_i.
    const double above = static_cast<double>(i + 1) / n - fx;
    const double below = fx - static_cast<double>(i) / n;
    d = std::max({d, above, below});
  }
  return d;
}

double ks_pvalue(double d, std::size_t n) {
  HPCFAIL_EXPECTS(n > 0, "ks_pvalue requires n > 0");
  HPCFAIL_EXPECTS(d >= 0.0, "ks_pvalue requires d >= 0");
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  return kolmogorov_q(lambda);
}

}  // namespace hpcfail::stats
