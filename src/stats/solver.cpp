#include "stats/solver.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hpcfail::stats {

namespace {
bool bracketed(double flo, double fhi) noexcept {
  return (flo <= 0.0 && fhi >= 0.0) || (flo >= 0.0 && fhi <= 0.0);
}

thread_local std::uint64_t tl_solver_steps = 0;
}  // namespace

std::uint64_t solver_steps() noexcept { return tl_solver_steps; }

void expand_bracket(const Fn& f, double& lo, double& hi, double& f_lo,
                    double& f_hi, bool positive_only, int max_expansions) {
  HPCFAIL_EXPECTS(lo < hi, "expand_bracket requires lo < hi");
  f_lo = f(lo);
  f_hi = f(hi);
  for (int i = 0; i < max_expansions; ++i) {
    if (bracketed(f_lo, f_hi)) return;
    ++tl_solver_steps;
    // Grow in the direction of the smaller |f|, geometrically.
    if (std::fabs(f_lo) < std::fabs(f_hi)) {
      lo -= (hi - lo);
      if (positive_only && lo <= 0.0) lo = (hi - lo > 1.0 ? 1e-12 : lo / 2.0);
      if (positive_only && lo <= 0.0) lo = 1e-12;
      f_lo = f(lo);
    } else {
      hi += (hi - lo);
      f_hi = f(hi);
    }
  }
  throw NumericError("expand_bracket: no sign change found");
}

void expand_bracket(const Fn& f, double& lo, double& hi, bool positive_only,
                    int max_expansions) {
  double f_lo = 0.0;
  double f_hi = 0.0;
  expand_bracket(f, lo, hi, f_lo, f_hi, positive_only, max_expansions);
}

double bisect(const Fn& f, double lo, double hi, SolverOptions opts) {
  HPCFAIL_EXPECTS(lo <= hi, "bisect requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  HPCFAIL_EXPECTS(bracketed(flo, fhi), "bisect requires a sign change");
  for (int i = 0; i < opts.max_iterations; ++i) {
    ++tl_solver_steps;
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (std::fabs(fmid) < opts.f_tol || hi - lo < opts.x_tol) return mid;
    if ((flo < 0.0) == (fmid < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  throw NumericError("bisect: did not converge");
}

double newton_bracketed(const Fn& f, const Fn& df, double lo, double hi,
                        SolverOptions opts) {
  HPCFAIL_EXPECTS(lo <= hi, "newton_bracketed requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  HPCFAIL_EXPECTS(bracketed(flo, fhi),
                  "newton_bracketed requires a sign change");
  double x = 0.5 * (lo + hi);
  for (int i = 0; i < opts.max_iterations; ++i) {
    ++tl_solver_steps;
    const double fx = f(x);
    if (std::fabs(fx) < opts.f_tol) return x;
    // Maintain the bracket.
    if ((flo < 0.0) == (fx < 0.0)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
    }
    const double dfx = df(x);
    double next = (dfx != 0.0) ? x - fx / dfx : lo - 1.0;  // force bisection
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < opts.x_tol) return next;
    x = next;
  }
  throw NumericError("newton_bracketed: did not converge");
}

double newton_bracketed_fdf(const FnWithSlope& fdf, double lo, double hi,
                            double f_lo, double f_hi, SolverOptions opts) {
  HPCFAIL_EXPECTS(lo <= hi, "newton_bracketed requires lo <= hi");
  if (f_lo == 0.0) return lo;
  if (f_hi == 0.0) return hi;
  HPCFAIL_EXPECTS(bracketed(f_lo, f_hi),
                  "newton_bracketed requires a sign change");
  // Mirrors newton_bracketed step for step — f(x) and df(x) are the same
  // values, just produced by one callback — so the iterates (and the
  // returned root) are bit-identical to the two-callback form.
  double x = 0.5 * (lo + hi);
  for (int i = 0; i < opts.max_iterations; ++i) {
    ++tl_solver_steps;
    double dfx = 0.0;
    const double fx = fdf(x, dfx);
    if (std::fabs(fx) < opts.f_tol) return x;
    if ((f_lo < 0.0) == (fx < 0.0)) {
      lo = x;
      f_lo = fx;
    } else {
      hi = x;
    }
    double next = (dfx != 0.0) ? x - fx / dfx : lo - 1.0;  // force bisection
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < opts.x_tol) return next;
    x = next;
  }
  throw NumericError("newton_bracketed: did not converge");
}

double brent(const Fn& f, double lo, double hi, SolverOptions opts) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  HPCFAIL_EXPECTS(bracketed(fa, fb), "brent requires a sign change");
  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ++tl_solver_steps;
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * 2.2204460492503131e-16 * std::fabs(b) +
                        0.5 * opts.x_tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0 || std::fabs(fb) < opts.f_tol) {
      return b;
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      const double s = fb / fa;
      double p;
      double q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      if (2.0 * p < std::fmin(3.0 * xm * q - std::fabs(tol1 * q),
                              std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if ((fb < 0.0) == (fc < 0.0)) {
      c = a;
      fc = fa;
      e = b - a;
      d = e;
    }
  }
  throw NumericError("brent: did not converge");
}

}  // namespace hpcfail::stats
