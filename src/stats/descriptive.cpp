#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hpcfail::stats {

double mean(std::span<const double> xs) {
  HPCFAIL_EXPECTS(!xs.empty(), "mean of empty sample");
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  HPCFAIL_EXPECTS(!xs.empty(), "variance of empty sample");
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double cv_squared(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return variance(xs) / (m * m);
}

double quantile_sorted(std::span<const double> sorted, double p) {
  HPCFAIL_EXPECTS(!sorted.empty(), "quantile of empty sample");
  HPCFAIL_EXPECTS(p >= 0.0 && p <= 1.0, "quantile p must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double median(std::span<const double> xs) {
  auto sorted = sorted_copy(xs);
  return quantile_sorted(sorted, 0.5);
}

Summary summarize(std::span<const double> xs) {
  HPCFAIL_EXPECTS(!xs.empty(), "summarize of empty sample");
  auto sorted = sorted_copy(xs);
  Summary s;
  s.n = xs.size();
  // Fused moments: one sum pass, then one squared-deviation pass reusing
  // the mean (the standalone variance() recomputes it — same value, same
  // accumulation order, so the results are bit-identical).
  s.mean = mean(xs);
  if (xs.size() == 1) {
    s.variance = 0.0;
  } else {
    double ss = 0.0;
    for (const double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.variance = ss / static_cast<double>(xs.size() - 1);
  }
  s.stddev = std::sqrt(s.variance);
  s.cv2 = (s.mean != 0.0) ? s.variance / (s.mean * s.mean)
                          : std::numeric_limits<double>::quiet_NaN();
  s.median = quantile_sorted(sorted, 0.5);
  s.q25 = quantile_sorted(sorted, 0.25);
  s.q75 = quantile_sorted(sorted, 0.75);
  s.min = sorted.front();
  s.max = sorted.back();
  if (s.n >= 3 && s.stddev > 0.0) {
    double cubed = 0.0;
    for (const double x : xs) {
      const double z = (x - s.mean) / s.stddev;
      cubed += z * z * z;
    }
    const auto n = static_cast<double>(s.n);
    s.skewness = cubed * n / ((n - 1.0) * (n - 2.0));
  }
  return s;
}

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hpcfail::stats
