#include "stats/special.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hpcfail::stats {

double digamma(double x) {
  HPCFAIL_EXPECTS(x > 0.0, "digamma requires x > 0");
  // Recur upward until x is large enough for the asymptotic series.
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion: ln x - 1/(2x) - sum B_{2n} / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 -
                                            inv2 * (1.0 / 132.0)))));
  return result;
}

double trigamma(double x) {
  HPCFAIL_EXPECTS(x > 0.0, "trigamma requires x > 0");
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // psi'(x) ~ 1/x + 1/(2x^2) + sum B_{2n} / x^{2n+1}.
  result += inv * (1.0 +
                   inv * (0.5 +
                          inv * (1.0 / 6.0 -
                                 inv2 * (1.0 / 30.0 -
                                         inv2 * (1.0 / 42.0 -
                                                 inv2 * (1.0 / 30.0))))));
  return result;
}

namespace {

// Series representation of P(a, x), valid/fast for x < a + 1. `lg` is the
// caller-supplied ln Gamma(a), hoisted so repeated evaluations at a fixed
// shape (KS loops over a sorted sample) compute it once.
double gamma_p_series(double a, double x, double lg) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) {
      return sum * std::exp(-x + a * std::log(x) - lg);
    }
  }
  throw hpcfail::NumericError("incomplete gamma series did not converge");
}

// Continued-fraction representation of Q(a, x) (modified Lentz), for
// x >= a + 1.
double gamma_q_cont_fraction(double a, double x, double lg) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) {
      return h * std::exp(-x + a * std::log(x) - lg);
    }
  }
  throw hpcfail::NumericError(
      "incomplete gamma continued fraction did not converge");
}

}  // namespace

double reg_gamma_lower(double a, double x) {
  HPCFAIL_EXPECTS(a > 0.0, "reg_gamma_lower requires a > 0");
  HPCFAIL_EXPECTS(x >= 0.0, "reg_gamma_lower requires x >= 0");
  if (x == 0.0) return 0.0;
  const double lg = log_gamma_unchecked(a);
  if (x < a + 1.0) return gamma_p_series(a, x, lg);
  return 1.0 - gamma_q_cont_fraction(a, x, lg);
}

double reg_gamma_lower_cached(double a, double x, double log_gamma_a) {
  HPCFAIL_EXPECTS(a > 0.0, "reg_gamma_lower requires a > 0");
  HPCFAIL_EXPECTS(x >= 0.0, "reg_gamma_lower requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x, log_gamma_a);
  return 1.0 - gamma_q_cont_fraction(a, x, log_gamma_a);
}

double reg_gamma_upper(double a, double x) {
  HPCFAIL_EXPECTS(a > 0.0, "reg_gamma_upper requires a > 0");
  HPCFAIL_EXPECTS(x >= 0.0, "reg_gamma_upper requires x >= 0");
  if (x == 0.0) return 1.0;
  const double lg = log_gamma_unchecked(a);
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x, lg);
  return gamma_q_cont_fraction(a, x, lg);
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  HPCFAIL_EXPECTS(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double log_gamma(double x) {
  HPCFAIL_EXPECTS(x > 0.0, "log_gamma requires x > 0");
  return log_gamma_unchecked(x);
}

#if defined(__GLIBC__) || defined(__APPLE__) || defined(__FreeBSD__)
// Strict -std=c++20 hides the POSIX declaration; the symbol is always in
// libm on these platforms.
extern "C" double lgamma_r(double, int*);
#endif

double log_gamma_unchecked(double x) noexcept {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(__FreeBSD__)
  // std::lgamma writes the process-global `signgam`, which is a data
  // race when MLE fits and trace generation run on the worker pool.
  // lgamma_r is the same implementation with the sign returned through
  // an out-parameter, so values are identical and the call is
  // thread-safe.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double kolmogorov_q(double lambda) noexcept {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  if (q < 0.0) return 0.0;
  if (q > 1.0) return 1.0;
  return q;
}

}  // namespace hpcfail::stats
