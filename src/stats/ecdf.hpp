// Empirical cumulative distribution functions.
//
// Every "Cumulative probability" plot in the paper (Figs 3b, 6a-d, 7a) is
// an empirical CDF overlaid with fitted parametric CDFs; Ecdf is the
// library's representation of the empirical side.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace hpcfail::stats {

/// Immutable empirical CDF of a sample. Ties are handled exactly: F(x) is
/// the fraction of observations <= x.
class Ecdf {
 public:
  /// Copies and sorts the sample. Throws InvalidArgument on empty input.
  explicit Ecdf(std::span<const double> sample);

  /// F(x): fraction of the sample <= x. Right-continuous step function.
  double operator()(double x) const noexcept;

  /// Empirical quantile (inverse CDF): smallest sample value v with
  /// F(v) >= p. Throws InvalidArgument for p outside (0, 1].
  double quantile(double p) const;

  std::size_t size() const noexcept { return sorted_.size(); }
  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }
  std::span<const double> sorted_sample() const noexcept { return sorted_; }

  /// Step points (x_i, F(x_i)) with duplicates collapsed, suitable for
  /// plotting or export.
  std::vector<std::pair<double, double>> step_points() const;

  /// Fraction of observations exactly equal to `x` (used for the
  /// simultaneous-failure analysis, where >30% of interarrival times are 0).
  double mass_at(double x) const noexcept;

 private:
  std::vector<double> sorted_;
};

}  // namespace hpcfail::stats
