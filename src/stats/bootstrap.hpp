// Nonparametric bootstrap: resample-with-replacement confidence intervals
// for any statistic of a sample.
//
// The paper reports point estimates (means, medians, C^2, fitted shapes)
// without uncertainty. A reproduction working from finite synthetic traces
// needs error bars to say whether "0.71 vs the paper's 0.7" is agreement;
// this module supplies percentile bootstrap intervals for exactly that.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace hpcfail::stats {

/// A statistic of a sample (e.g. the mean, or a fitted Weibull shape).
using Statistic = std::function<double(std::span<const double>)>;

struct BootstrapResult {
  double point = 0.0;   ///< statistic of the original sample
  double lo = 0.0;      ///< lower percentile bound
  double hi = 0.0;      ///< upper percentile bound
  double std_error = 0.0;  ///< standard deviation across replicates
  std::size_t replicates = 0;  ///< replicates that evaluated successfully
};

struct BootstrapOptions {
  std::size_t replicates = 1000;
  double confidence = 0.95;  ///< central interval mass, in (0, 1)
};

/// Percentile-bootstrap interval for `statistic` on `sample`. Replicates
/// on which the statistic throws (e.g. a degenerate resample for an MLE)
/// are skipped; at least 10% of replicates must succeed or NumericError
/// is thrown. Deterministic given `rng`'s state. Throws InvalidArgument
/// on an empty sample or bad options.
BootstrapResult bootstrap(std::span<const double> sample,
                          const Statistic& statistic, hpcfail::Rng& rng,
                          BootstrapOptions options = {});

}  // namespace hpcfail::stats
