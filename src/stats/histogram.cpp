#include "stats/histogram.hpp"

#include <numeric>

#include "common/error.hpp"

namespace hpcfail::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  HPCFAIL_EXPECTS(lo < hi, "Histogram requires lo < hi");
  HPCFAIL_EXPECTS(bins >= 1, "Histogram requires at least one bin");
}

void Histogram::add(double x, double weight) noexcept {
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const auto idx = static_cast<std::size_t>(
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  counts_[idx < counts_.size() ? idx : counts_.size() - 1] += weight;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

double Histogram::bin_width() const noexcept {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_lo(std::size_t i) const {
  HPCFAIL_EXPECTS(i < counts_.size(), "histogram bin out of range");
  return lo_ + static_cast<double>(i) * bin_width();
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width(); }

double Histogram::bin_center(std::size_t i) const {
  return bin_lo(i) + 0.5 * bin_width();
}

double Histogram::count(std::size_t i) const {
  HPCFAIL_EXPECTS(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::total() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0) + underflow_ +
         overflow_;
}

void CategoryCounts::add(std::size_t category, double weight) {
  if (category >= counts_.size()) counts_.resize(category + 1, 0.0);
  counts_[category] += weight;
}

double CategoryCounts::count(std::size_t category) const noexcept {
  return category < counts_.size() ? counts_[category] : 0.0;
}

double CategoryCounts::total() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

}  // namespace hpcfail::stats
