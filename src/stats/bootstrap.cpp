#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace hpcfail::stats {

BootstrapResult bootstrap(std::span<const double> sample,
                          const Statistic& statistic, hpcfail::Rng& rng,
                          BootstrapOptions options) {
  HPCFAIL_EXPECTS(!sample.empty(), "bootstrap of empty sample");
  HPCFAIL_EXPECTS(options.replicates >= 10,
                  "bootstrap needs at least 10 replicates");
  HPCFAIL_EXPECTS(options.confidence > 0.0 && options.confidence < 1.0,
                  "confidence must be in (0,1)");

  BootstrapResult result;
  result.point = statistic(sample);

  std::vector<double> resample(sample.size());
  std::vector<double> values;
  values.reserve(options.replicates);
  for (std::size_t rep = 0; rep < options.replicates; ++rep) {
    for (double& x : resample) {
      x = sample[rng.uniform_index(sample.size())];
    }
    try {
      const double v = statistic(resample);
      if (std::isfinite(v)) values.push_back(v);
    } catch (const Error&) {
      // Degenerate resample for this statistic; skip it.
    }
  }
  if (values.size() < options.replicates / 10) {
    throw NumericError("bootstrap: statistic failed on most replicates");
  }

  std::sort(values.begin(), values.end());
  const double alpha = (1.0 - options.confidence) / 2.0;
  result.lo = quantile_sorted(values, alpha);
  result.hi = quantile_sorted(values, 1.0 - alpha);
  result.replicates = values.size();
  if (values.size() >= 2) {
    result.std_error = std::sqrt(variance(values));
  }
  return result;
}

}  // namespace hpcfail::stats
