// Hand-rolled special functions needed for MLE fitting and CDF evaluation.
//
// The paper fits exponential / Weibull / gamma / lognormal distributions by
// maximum likelihood; gamma fitting needs digamma and trigamma, the gamma
// CDF needs the regularized incomplete gamma function, and normal/lognormal
// quantiles need an inverse normal CDF. None of these are in the C++
// standard library, so they are implemented here with well-known
// series/continued-fraction expansions accurate to ~1e-12.
#pragma once

namespace hpcfail::stats {

/// Digamma function psi(x) = d/dx ln Gamma(x). Defined for x > 0; throws
/// InvalidArgument otherwise. Accuracy ~1e-12 via upward recurrence into the
/// asymptotic regime.
double digamma(double x);

/// Trigamma function psi'(x). Defined for x > 0; throws InvalidArgument
/// otherwise.
double trigamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// for a > 0, x >= 0. Series expansion for x < a + 1, Lentz continued
/// fraction otherwise. Throws InvalidArgument outside the domain and
/// NumericError on (unreachable in practice) non-convergence.
double reg_gamma_lower(double a, double x);

/// reg_gamma_lower with ln Gamma(a) precomputed by the caller (pass
/// log_gamma_unchecked(a)). Evaluating the gamma CDF over a whole sample
/// at a fixed shape pays the lgamma once instead of per point; results
/// are bit-identical to reg_gamma_lower.
double reg_gamma_lower_cached(double a, double x, double log_gamma_a);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double reg_gamma_upper(double a, double x);

/// Standard normal CDF Phi(z), accurate over the full double range.
double normal_cdf(double z) noexcept;

/// Standard normal quantile Phi^{-1}(p) for p in (0, 1); Acklam's rational
/// approximation refined by one Halley step (~1e-15 relative error).
/// Throws InvalidArgument for p outside (0, 1).
double normal_quantile(double p);

/// ln Gamma(x) for x > 0 (throws on the poles). Thread-safe: unlike a
/// bare std::lgamma call it never touches the global `signgam`, so it is
/// safe from worker-pool tasks (parallel fitting / generation).
double log_gamma(double x);

/// log_gamma without the domain check, for call sites that already
/// guarantee x > 0 (hot loops, internal series). Same thread-safety.
double log_gamma_unchecked(double x) noexcept;

/// Asymptotic Kolmogorov distribution complement
/// Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2);
/// used to turn a KS statistic into an approximate p-value.
double kolmogorov_q(double lambda) noexcept;

}  // namespace hpcfail::stats
