// Fixed-bin histograms used by the rate analyses (failures per month,
// per hour-of-day, per day-of-week) and by the report layer's bar charts.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace hpcfail::stats {

/// Histogram over [lo, hi) with `bins` equal-width bins. Out-of-range
/// values are counted in underflow/overflow, never silently dropped.
class Histogram {
 public:
  /// Throws InvalidArgument unless lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  double bin_width() const noexcept;
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Exclusive upper edge of bin i.
  double bin_hi(std::size_t i) const;
  /// Bin center, convenient for plotting.
  double bin_center(std::size_t i) const;
  double count(std::size_t i) const;
  double underflow() const noexcept { return underflow_; }
  double overflow() const noexcept { return overflow_; }
  double total() const noexcept;
  std::span<const double> counts() const noexcept { return counts_; }

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

/// Counter over small integer categories (hours 0-23, weekdays 0-6,
/// months-in-production, node ids). Grows on demand.
class CategoryCounts {
 public:
  void add(std::size_t category, double weight = 1.0);
  double count(std::size_t category) const noexcept;
  std::size_t size() const noexcept { return counts_.size(); }
  double total() const noexcept;
  std::span<const double> counts() const noexcept { return counts_; }

 private:
  std::vector<double> counts_;
};

}  // namespace hpcfail::stats
