#include "stats/qq.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace hpcfail::stats {

std::vector<std::pair<double, double>> qq_points(
    std::span<const double> sample,
    const std::function<double(double)>& model_quantile,
    std::size_t points) {
  HPCFAIL_EXPECTS(!sample.empty(), "qq_points of empty sample");
  HPCFAIL_EXPECTS(points >= 2, "qq_points needs at least 2 points");
  const auto sorted = sorted_copy(sample);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(points);
    out.emplace_back(model_quantile(p), quantile_sorted(sorted, p));
  }
  return out;
}

double qq_max_relative_deviation(
    std::span<const double> sample,
    const std::function<double(double)>& model_quantile,
    double band_lo, double band_hi, std::size_t points) {
  HPCFAIL_EXPECTS(band_lo > 0.0 && band_hi < 1.0 && band_lo < band_hi,
                  "need 0 < band_lo < band_hi < 1");
  const auto pairs = qq_points(sample, model_quantile, points);
  double worst = 0.0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const double p = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(points);
    if (p < band_lo || p > band_hi) continue;
    const auto& [model, empirical] = pairs[i];
    if (model > 0.0) {
      worst = std::max(worst, std::fabs(empirical - model) / model);
    }
  }
  return worst;
}

}  // namespace hpcfail::stats
