// Nonparametric survival analysis: Kaplan-Meier survival estimation and
// the Nelson-Aalen cumulative hazard, both with right-censoring support.
//
// The paper argues about hazard rates through the fitted Weibull shape
// (0.7-0.8 => decreasing). These estimators let the library make the same
// statement *without* picking a family: a concave Nelson-Aalen cumulative
// hazard is model-free evidence of a decreasing hazard rate. Censoring
// matters because every node's final failure-free interval is cut off by
// the end of observation, and ignoring it biases hazard estimates upward.
#pragma once

#include <span>
#include <vector>

namespace hpcfail::stats {

/// One observed duration; `observed` is false for right-censored entries
/// (the event had not happened yet when observation stopped).
struct SurvivalObservation {
  double time = 0.0;
  bool observed = true;
};

/// A step of an estimated curve: value on [time, next step's time).
struct SurvivalPoint {
  double time = 0.0;
  double value = 0.0;
};

/// Kaplan-Meier product-limit estimate of the survival function S(t).
/// Input may be unordered; ties between events and censorings at the same
/// time follow the usual convention (events first). Throws
/// InvalidArgument when the sample is empty, has negative times, or
/// contains no observed events.
std::vector<SurvivalPoint> kaplan_meier(
    std::span<const SurvivalObservation> sample);

/// Nelson-Aalen estimate of the cumulative hazard H(t).
/// Same input contract as kaplan_meier().
std::vector<SurvivalPoint> nelson_aalen(
    std::span<const SurvivalObservation> sample);

/// Convenience: wraps fully-observed durations.
std::vector<SurvivalObservation> fully_observed(
    std::span<const double> times);

/// Model-free test for a decreasing hazard rate: fits the best
/// least-squares slope to log H(t) vs log t over the Nelson-Aalen steps;
/// a slope < 1 means H is concave in t, i.e. the hazard decreases (for a
/// Weibull this slope *is* the shape parameter). Returns the slope.
/// Throws InvalidArgument when fewer than `min_events` events exist.
double log_log_hazard_slope(std::span<const SurvivalObservation> sample,
                            std::size_t min_events = 8);

}  // namespace hpcfail::stats
