// One-dimensional root finding used by the MLE fitters.
//
// The Weibull shape and gamma shape likelihood equations have no closed
// form; both are solved with safeguarded Newton iteration that falls back
// to bisection whenever a Newton step would leave the current bracket.
#pragma once

#include <cstdint>
#include <functional>

namespace hpcfail::stats {

/// Scalar function of one variable.
using Fn = std::function<double(double)>;

struct SolverOptions {
  double x_tol = 1e-12;      ///< absolute tolerance on the root position
  double f_tol = 1e-13;      ///< absolute tolerance on |f(root)|
  int max_iterations = 200;  ///< throw NumericError beyond this
};

/// Expands [lo, hi] geometrically (keeping lo > `floor` when positive_only)
/// until f(lo) and f(hi) have opposite signs. Throws NumericError when no
/// sign change is found within max_expansions doublings.
void expand_bracket(const Fn& f, double& lo, double& hi,
                    bool positive_only = true, int max_expansions = 80);

/// Bisection on a bracketing interval [lo, hi] (f(lo)*f(hi) <= 0 required;
/// throws InvalidArgument otherwise).
double bisect(const Fn& f, double lo, double hi, SolverOptions opts = {});

/// Safeguarded Newton: uses derivative steps but keeps the iterate inside
/// a maintained bracket [lo, hi], bisecting whenever Newton misbehaves.
/// Requires a bracket like bisect().
double newton_bracketed(const Fn& f, const Fn& df, double lo, double hi,
                        SolverOptions opts = {});

/// Brent's method (inverse quadratic interpolation + secant + bisection).
/// Requires a bracket like bisect().
double brent(const Fn& f, double lo, double hi, SolverOptions opts = {});

/// Iterations performed by the solvers above *on the calling thread*
/// since thread start (every bisection/Newton/Brent step and bracket
/// expansion counts one). Thread-local, so a caller can meter one fit by
/// differencing around it regardless of what other threads solve
/// concurrently — dist::fit uses this to fill FitResult::iterations.
std::uint64_t solver_steps() noexcept;

}  // namespace hpcfail::stats
