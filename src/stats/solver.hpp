// One-dimensional root finding used by the MLE fitters.
//
// The Weibull shape and gamma shape likelihood equations have no closed
// form; both are solved with safeguarded Newton iteration that falls back
// to bisection whenever a Newton step would leave the current bracket.
#pragma once

#include <cstdint>
#include <functional>

namespace hpcfail::stats {

/// Scalar function of one variable.
using Fn = std::function<double(double)>;

struct SolverOptions {
  double x_tol = 1e-12;      ///< absolute tolerance on the root position
  double f_tol = 1e-13;      ///< absolute tolerance on |f(root)|
  int max_iterations = 200;  ///< throw NumericError beyond this
};

/// Expands [lo, hi] geometrically (keeping lo > `floor` when positive_only)
/// until f(lo) and f(hi) have opposite signs. Throws NumericError when no
/// sign change is found within max_expansions doublings.
void expand_bracket(const Fn& f, double& lo, double& hi,
                    bool positive_only = true, int max_expansions = 80);

/// expand_bracket that also hands back the endpoint values f(lo), f(hi),
/// so a caller chaining into newton_bracketed_fdf need not re-evaluate
/// them. Identical expansion sequence to the overload above.
void expand_bracket(const Fn& f, double& lo, double& hi, double& f_lo,
                    double& f_hi, bool positive_only = true,
                    int max_expansions = 80);

/// Bisection on a bracketing interval [lo, hi] (f(lo)*f(hi) <= 0 required;
/// throws InvalidArgument otherwise).
double bisect(const Fn& f, double lo, double hi, SolverOptions opts = {});

/// Safeguarded Newton: uses derivative steps but keeps the iterate inside
/// a maintained bracket [lo, hi], bisecting whenever Newton misbehaves.
/// Requires a bracket like bisect().
double newton_bracketed(const Fn& f, const Fn& df, double lo, double hi,
                        SolverOptions opts = {});

/// Function and derivative from one evaluation: returns f(x), writes f'(x).
using FnWithSlope = std::function<double(double, double&)>;

/// newton_bracketed for objectives whose derivative falls out of the same
/// pass as the value (the Weibull profile score: one sweep over the data
/// yields both). `f_lo`/`f_hi` are the caller's already-computed endpoint
/// values (e.g. from the expand_bracket overload above). The iterate
/// sequence — and therefore the returned root, bit for bit — matches
/// newton_bracketed(f, df, ...); each step just costs one data pass
/// instead of two, and the endpoints cost zero instead of two.
double newton_bracketed_fdf(const FnWithSlope& fdf, double lo, double hi,
                            double f_lo, double f_hi,
                            SolverOptions opts = {});

/// Brent's method (inverse quadratic interpolation + secant + bisection).
/// Requires a bracket like bisect().
double brent(const Fn& f, double lo, double hi, SolverOptions opts = {});

/// Iterations performed by the solvers above *on the calling thread*
/// since thread start (every bisection/Newton/Brent step and bracket
/// expansion counts one). Thread-local, so a caller can meter one fit by
/// differencing around it regardless of what other threads solve
/// concurrently — dist::fit uses this to fill FitResult::iterations.
std::uint64_t solver_steps() noexcept;

}  // namespace hpcfail::stats
