// Descriptive statistics in the form the paper reports them.
//
// Section 3 (Methodology) characterizes every empirical distribution by its
// mean, median, and squared coefficient of variation C^2 = var / mean^2;
// Table 2 adds the standard deviation. `Summary` carries exactly those
// plus the usual extras used in the analysis chapters.
#pragma once

#include <span>
#include <vector>

namespace hpcfail::stats {

/// Moments and order statistics of one empirical sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double variance = 0.0;   ///< unbiased (n-1) sample variance
  double stddev = 0.0;
  double cv2 = 0.0;        ///< var/mean^2; NaN for a zero-mean sample
  double min = 0.0;
  double max = 0.0;
  double q25 = 0.0;        ///< lower quartile
  double q75 = 0.0;        ///< upper quartile
  double skewness = 0.0;   ///< sample skewness (g1)
};

/// Arithmetic mean. Throws InvalidArgument on an empty sample.
double mean(std::span<const double> xs);

/// Unbiased sample variance; 0 for n == 1. Throws on empty.
double variance(std::span<const double> xs);

/// Squared coefficient of variation var/mean^2. Throws on an empty
/// sample; returns quiet NaN for a zero-mean sample, where C^2 is
/// undefined (same contract as Summary::cv2).
double cv_squared(std::span<const double> xs);

/// Linear-interpolation quantile of a sorted sample, p in [0, 1].
/// Throws InvalidArgument when the span is empty, unsorted inputs are the
/// caller's responsibility.
double quantile_sorted(std::span<const double> sorted, double p);

/// Median (copies and sorts internally). Throws on empty.
double median(std::span<const double> xs);

/// Full summary (copies and sorts once internally). Throws on empty.
Summary summarize(std::span<const double> xs);

/// Returns a sorted copy; convenience for the quantile/ECDF entry points.
std::vector<double> sorted_copy(std::span<const double> xs);

}  // namespace hpcfail::stats
