// Quantile-quantile comparison: the standard visual companion to the
// paper's CDF-overlay fit assessment. For a perfect fit the points lie
// on the diagonal; systematic bowing exposes tail mismatch (exactly how
// the exponential fails on repair times).
#pragma once

#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace hpcfail::stats {

/// (model quantile, empirical quantile) pairs at `points` evenly spaced
/// probability levels in (0, 1). Throws InvalidArgument on an empty
/// sample or points < 2.
std::vector<std::pair<double, double>> qq_points(
    std::span<const double> sample,
    const std::function<double(double)>& model_quantile,
    std::size_t points = 50);

/// Worst relative quantile deviation max |empirical - model| / model over
/// the central probability band [band_lo, band_hi] (tails excluded: the
/// extreme empirical quantiles of a finite sample are noise). A compact
/// scalar summary of the QQ plot.
double qq_max_relative_deviation(
    std::span<const double> sample,
    const std::function<double(double)>& model_quantile,
    double band_lo = 0.05, double band_hi = 0.95,
    std::size_t points = 50);

}  // namespace hpcfail::stats
