// Property-test engine: random-input checking with greedy shrinking.
//
// A Gen<T> couples a sampler (driven by the library's deterministic
// common/rng, so every run is reproducible from one seed) with a shrinker
// that proposes strictly simpler candidates for a failing value. A
// Property binds a generator to a predicate; check() samples `cases`
// inputs, and on the first failure walks the shrink tree greedily —
// repeatedly taking the first simpler candidate that still fails — until
// no candidate fails, then reports the minimal counterexample together
// with the seed that reproduces the original failing draw.
//
// The engine replaced the ad-hoc parameter sweeps in
// tests/dist/property_test.cpp; it is deliberately gtest-free so any test
// (or a future fuzz driver) can embed it. Typical use:
//
//   auto r = check_property(positive_reals(100.0),
//                           [](double x) { return f(x) >= 0.0; });
//   EXPECT_TRUE(r.passed) << r.message;
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/rng.hpp"

namespace hpcfail::testkit {

namespace detail {

template <typename T>
std::string default_show(const T& value) {
  if constexpr (std::is_arithmetic_v<T>) {
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
  } else {
    return "<value>";
  }
}

template <typename E>
std::string default_show(const std::vector<E>& values) {
  std::ostringstream out;
  out.precision(17);
  out << "[";
  const std::size_t shown = values.size() < 16 ? values.size() : 16;
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    if constexpr (std::is_arithmetic_v<E>) {
      out << values[i];
    } else {
      out << default_show(values[i]);
    }
  }
  if (shown < values.size()) {
    out << ", ... " << values.size() - shown << " more";
  }
  out << "] (size " << values.size() << ")";
  return out.str();
}

}  // namespace detail

/// A reproducible random generator of T plus a shrinker. The shrinker
/// returns candidate simplifications of a failing value, simplest first;
/// an empty vector means the value is already minimal. `show` renders the
/// value for failure messages.
template <typename T>
struct Gen {
  std::function<T(hpcfail::Rng&)> sample;
  std::function<std::vector<T>(const T&)> shrink = [](const T&) {
    return std::vector<T>{};
  };
  std::function<std::string(const T&)> show = [](const T& v) {
    return detail::default_show(v);
  };
};

struct PropertyOptions {
  std::size_t cases = 200;          ///< random inputs to try
  std::uint64_t seed = 0x7e57c0de;  ///< base seed; case i uses mix_seed(seed, i)
  std::size_t max_shrink_steps = 10'000;
};

/// Outcome of one check() run. On failure, `counterexample` is the
/// shrunk (minimal) failing value and `failing_seed` reproduces the
/// *original* draw: Gen::sample(Rng(failing_seed)) yields it again.
template <typename T>
struct PropertyResult {
  bool passed = true;
  std::size_t cases_run = 0;
  std::optional<T> counterexample;
  std::uint64_t failing_seed = 0;
  std::size_t failing_case = 0;
  std::size_t shrink_steps = 0;  ///< candidates evaluated while shrinking
  std::string message;           ///< human-readable failure report
  explicit operator bool() const noexcept { return passed; }
};

/// A named random-input law: `holds` must return true for every generated
/// value.
template <typename T>
class Property {
 public:
  Property(std::string name, Gen<T> gen, std::function<bool(const T&)> holds)
      : name_(std::move(name)), gen_(std::move(gen)), holds_(std::move(holds)) {}

  PropertyResult<T> check(const PropertyOptions& options = {}) const {
    PropertyResult<T> result;
    for (std::size_t i = 0; i < options.cases; ++i) {
      const std::uint64_t case_seed =
          hpcfail::mix_seed(options.seed, static_cast<std::uint64_t>(i));
      hpcfail::Rng rng(case_seed);
      T value = gen_.sample(rng);
      ++result.cases_run;
      if (holds_safe(value)) continue;

      // Greedy shrink: take the first simpler candidate that still
      // fails; stop when none does (local minimum) or on the step cap.
      T minimal = std::move(value);
      bool improved = true;
      while (improved && result.shrink_steps < options.max_shrink_steps) {
        improved = false;
        for (T& candidate : gen_.shrink(minimal)) {
          ++result.shrink_steps;
          if (!holds_safe(candidate)) {
            minimal = std::move(candidate);
            improved = true;
            break;
          }
          if (result.shrink_steps >= options.max_shrink_steps) break;
        }
      }

      result.passed = false;
      result.failing_seed = case_seed;
      result.failing_case = i;
      std::ostringstream out;
      out << "property \"" << name_ << "\" falsified on case " << i << " of "
          << options.cases << "\n  minimal counterexample: "
          << gen_.show(minimal) << "\n  after " << result.shrink_steps
          << " shrink steps; reproduce the original draw with seed 0x"
          << std::hex << case_seed << std::dec;
      result.message = out.str();
      result.counterexample = std::move(minimal);
      return result;
    }
    return result;
  }

 private:
  // A throwing predicate counts as a failure of the property, so shrink
  // also works toward minimal throwing inputs.
  bool holds_safe(const T& value) const {
    try {
      return holds_(value);
    } catch (...) {
      return false;
    }
  }

  std::string name_;
  Gen<T> gen_;
  std::function<bool(const T&)> holds_;
};

/// One-shot form: check an anonymous property.
template <typename T, typename Predicate>
PropertyResult<T> check_property(const Gen<T>& gen, Predicate&& holds,
                                 const PropertyOptions& options = {}) {
  return Property<T>("<anonymous>", gen,
                     std::function<bool(const T&)>(std::forward<Predicate>(holds)))
      .check(options);
}

}  // namespace hpcfail::testkit
