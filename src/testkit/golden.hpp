// Golden-snapshot comparison with a regeneration mode.
//
// golden_compare(path, actual) checks `actual` against the snapshot file
// at `path`. With HPCFAIL_UPDATE_GOLDENS=1 in the environment it instead
// (re)writes the snapshot and reports `updated` — the workflow for
// intentional output changes is: set the variable, run the golden tests,
// review the diff with git, commit. On a mismatch (and only then) the
// observed text is written next to the snapshot as `<path>.actual`, so CI
// can upload the pair as a diffable artifact.
//
// By default the comparison is byte-exact. Setting abs_tol/rel_tol turns
// on token-wise numeric diffing: both texts are split into whitespace
// tokens per line, tokens that parse fully as numbers are compared within
// |a - e| <= abs_tol + rel_tol * |e|, and everything else (including the
// line/token structure itself) must still match exactly. That keeps
// layout drift loud while absorbing last-ulp noise in printed numbers.
#pragma once

#include <string>

namespace hpcfail::testkit {

struct GoldenOptions {
  double abs_tol = 0.0;  ///< absolute numeric tolerance (0 = byte-exact)
  double rel_tol = 0.0;  ///< relative numeric tolerance (0 = byte-exact)
  /// Write `<path>.actual` on mismatch so CI can ship the diff.
  bool write_actual_on_mismatch = true;
};

struct GoldenResult {
  bool matched = false;  ///< actual agreed with the snapshot
  bool updated = false;  ///< snapshot (re)written in update mode
  std::string message;   ///< first difference, or what was updated
  /// Success either way the run was configured.
  explicit operator bool() const noexcept { return matched || updated; }
};

/// True when HPCFAIL_UPDATE_GOLDENS=1 is set (the regeneration mode).
bool update_goldens();

/// Compares `actual` against the snapshot at `path` (see file comment).
GoldenResult golden_compare(const std::string& path, const std::string& actual,
                            const GoldenOptions& options = {});

}  // namespace hpcfail::testkit
