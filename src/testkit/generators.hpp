// Stock generators for the property engine: scalars, vectors, and the
// domain types (FailureRecord, FailureDataset). All sampling goes through
// common/rng so a property run is a pure function of its seed; shrinkers
// move toward the conventional "simplest" value of each type (the lower
// bound for scalars, shorter vectors, fewer records, earlier/rounder
// failure times).
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"
#include "testkit/property.hpp"
#include "trace/dataset.hpp"
#include "trace/record.hpp"

namespace hpcfail::testkit {

/// Uniform double in [lo, hi]; shrinks toward lo through halvings and
/// integer rounding. Requires lo <= hi.
Gen<double> reals(double lo, double hi);

/// Strictly positive double with an exponential tail of the given scale
/// (median ~ 0.7 * scale, occasional values many times larger); shrinks
/// downward. The natural generator for durations and interarrival gaps.
Gen<double> positive_reals(double scale = 1.0);

/// Uniform int in [lo, hi]; shrinks toward lo.
Gen<int> ints(int lo, int hi);

/// Vector of `elem` draws with size uniform in [min_size, max_size];
/// shrinks by dropping chunks/elements first, then shrinking elements.
Gen<std::vector<double>> vectors(Gen<double> elem, std::size_t min_size,
                                 std::size_t max_size);

/// vectors() post-sorted ascending; shrink candidates are re-sorted so
/// the invariant survives shrinking.
Gen<std::vector<double>> sorted_vectors(Gen<double> elem, std::size_t min_size,
                                        std::size_t max_size);

/// Bounds for the failure-record generators.
struct RecordGenOptions {
  int systems = 4;            ///< system ids drawn from [1, systems]
  int nodes_per_system = 8;   ///< node ids drawn from [0, nodes_per_system)
  Seconds horizon = 2 * 365 * 24 * 3600;  ///< starts within [t0, t0+horizon)
  Seconds max_repair = 48 * 3600;         ///< downtime within [0, max_repair]
};

/// A single consistent failure record: a valid (cause, detail) pair, a
/// start inside the horizon, end >= start. Shrinks toward system 1 /
/// node 0 / the epoch start / zero downtime.
Gen<trace::FailureRecord> failure_records(RecordGenOptions options = {});

/// A batch of consistent records with size in [min_records, max_records];
/// shrinks like vectors() (drop records first, then simplify them).
Gen<std::vector<trace::FailureRecord>> record_batches(
    std::size_t min_records, std::size_t max_records,
    RecordGenOptions options = {});

/// A whole dataset built from record_batches(); the constructor sorts and
/// validates, so every generated dataset is well-formed by construction.
Gen<trace::FailureDataset> datasets(std::size_t min_records,
                                    std::size_t max_records,
                                    RecordGenOptions options = {});

}  // namespace hpcfail::testkit
