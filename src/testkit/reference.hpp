// Brute-force reference implementations of the dataset extractions
// (differential oracles for trace/index.hpp).
//
// Each function is the textbook O(n) filter-and-scan over the raw records
// table, written with none of the index machinery — no partitions, posting
// lists, or binary searches — so an index bug cannot hide in its own
// reference. The index/view tests and the testkit calibration suite
// assert the optimized extractors match these bit-identically.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "sim/campaign.hpp"
#include "trace/columns.hpp"
#include "trace/record.hpp"

namespace hpcfail::testkit {

/// Records of one system, in input (start-sorted) order.
std::vector<trace::FailureRecord> ref_for_system(
    trace::ColumnsView records, int system_id);

/// Records with start in [from, to), in input order.
std::vector<trace::FailureRecord> ref_between(
    trace::ColumnsView records, Seconds from, Seconds to);

/// Gaps between consecutive failures of one (system, node), in seconds.
std::vector<double> ref_node_interarrivals(
    trace::ColumnsView records, int system_id,
    int node_id);

/// Gaps between consecutive failures anywhere in one system, in seconds.
std::vector<double> ref_system_interarrivals(
    trace::ColumnsView records, int system_id);

/// Failure count per node of one system (zero-failure nodes absent).
std::map<int, std::size_t> ref_failures_per_node(
    trace::ColumnsView records, int system_id);

/// Naive aggregate of one campaign cell's runs: plain accumulation-loop
/// means in replicate order. The campaign summary's bootstrap point
/// estimates must match these bit-identically (the bootstrap evaluates
/// its statistic on the original sample), so a summary bug cannot hide
/// in a shared implementation.
struct CampaignAggregate {
  std::size_t runs = 0;
  std::uint64_t faults_injected = 0;
  double mean_makespan = 0.0;
  double mean_waste_fraction = 0.0;
  double mean_interruptions = 0.0;

  friend bool operator==(const CampaignAggregate&,
                         const CampaignAggregate&) = default;
};

/// Aggregates `runs` (one cell, replicate order) with textbook loops.
CampaignAggregate ref_campaign_aggregate(
    std::span<const sim::CampaignRunResult> runs);

}  // namespace hpcfail::testkit
