#include "testkit/golden.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace hpcfail::testkit {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= text.size()) {
    const std::string::size_type nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

bool parse_number(const std::string& token, double& value) {
  const char* begin = token.c_str();
  char* end = nullptr;
  value = std::strtod(begin, &end);
  return end == begin + token.size() && !token.empty();
}

bool tokens_match(const std::string& expected, const std::string& actual,
                  const GoldenOptions& options) {
  if (expected == actual) return true;
  double e = 0.0;
  double a = 0.0;
  if (!parse_number(expected, e) || !parse_number(actual, a)) return false;
  return std::abs(a - e) <= options.abs_tol + options.rel_tol * std::abs(e);
}

GoldenResult golden_mismatch(const std::string& path, const std::string& actual,
                      const GoldenOptions& options, std::string detail) {
  GoldenResult result;
  std::ostringstream out;
  out << "golden mismatch against " << path << ": " << detail;
  if (options.write_actual_on_mismatch) {
    std::ofstream dump(path + ".actual", std::ios::binary);
    dump << actual;
    out << "\n  observed output written to " << path << ".actual";
  }
  out << "\n  (set HPCFAIL_UPDATE_GOLDENS=1 to regenerate snapshots)";
  result.message = out.str();
  return result;
}

}  // namespace

bool update_goldens() {
  const char* env = std::getenv("HPCFAIL_UPDATE_GOLDENS");
  return env != nullptr && std::string(env) == "1";
}

GoldenResult golden_compare(const std::string& path, const std::string& actual,
                            const GoldenOptions& options) {
  if (update_goldens()) {
    GoldenResult result;
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
      std::filesystem::create_directories(target.parent_path());
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      result.message = "failed to write golden " + path;
      return result;
    }
    out << actual;
    out.close();
    result.updated = true;
    result.message = "golden updated: " + path;
    return result;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return golden_mismatch(path, actual, options,
                    "snapshot file missing (never generated?)");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();

  if (expected == actual) {
    GoldenResult result;
    result.matched = true;
    return result;
  }
  if (options.abs_tol == 0.0 && options.rel_tol == 0.0) {
    // Byte-exact mode: report the first differing line.
    const auto exp_lines = split_lines(expected);
    const auto act_lines = split_lines(actual);
    const std::size_t common =
        exp_lines.size() < act_lines.size() ? exp_lines.size()
                                            : act_lines.size();
    for (std::size_t i = 0; i < common; ++i) {
      if (exp_lines[i] != act_lines[i]) {
        std::ostringstream detail;
        detail << "line " << i + 1 << " differs\n  expected: " << exp_lines[i]
               << "\n  actual:   " << act_lines[i];
        return golden_mismatch(path, actual, options, detail.str());
      }
    }
    std::ostringstream detail;
    detail << "line counts differ (expected " << exp_lines.size()
           << ", actual " << act_lines.size() << ")";
    return golden_mismatch(path, actual, options, detail.str());
  }

  // Tolerant mode: line and token structure must match exactly; numeric
  // tokens may differ within tolerance.
  const auto exp_lines = split_lines(expected);
  const auto act_lines = split_lines(actual);
  if (exp_lines.size() != act_lines.size()) {
    std::ostringstream detail;
    detail << "line counts differ (expected " << exp_lines.size()
           << ", actual " << act_lines.size() << ")";
    return golden_mismatch(path, actual, options, detail.str());
  }
  for (std::size_t i = 0; i < exp_lines.size(); ++i) {
    const auto exp_tokens = split_tokens(exp_lines[i]);
    const auto act_tokens = split_tokens(act_lines[i]);
    if (exp_tokens.size() != act_tokens.size()) {
      std::ostringstream detail;
      detail << "line " << i + 1 << " token counts differ\n  expected: "
             << exp_lines[i] << "\n  actual:   " << act_lines[i];
      return golden_mismatch(path, actual, options, detail.str());
    }
    for (std::size_t t = 0; t < exp_tokens.size(); ++t) {
      if (!tokens_match(exp_tokens[t], act_tokens[t], options)) {
        std::ostringstream detail;
        detail << "line " << i + 1 << ", token " << t + 1
               << " out of tolerance\n  expected: " << exp_lines[i]
               << "\n  actual:   " << act_lines[i];
        return golden_mismatch(path, actual, options, detail.str());
      }
    }
  }
  GoldenResult result;
  result.matched = true;
  return result;
}

}  // namespace hpcfail::testkit
