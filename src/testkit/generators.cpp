#include "testkit/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "trace/types.hpp"

namespace hpcfail::testkit {

namespace {

const Seconds kEpoch = to_epoch(2000, 1, 1);

// Every detailed cause the vocabulary knows; cause is derived via
// category_of so generated records are consistent by construction.
constexpr std::array<trace::DetailCause, 16> kAllDetails = {
    trace::DetailCause::memory_dimm,    trace::DetailCause::cpu,
    trace::DetailCause::node_interconnect,
    trace::DetailCause::power_supply,   trace::DetailCause::disk,
    trace::DetailCause::other_hardware, trace::DetailCause::operating_system,
    trace::DetailCause::parallel_fs,    trace::DetailCause::scheduler,
    trace::DetailCause::other_software, trace::DetailCause::network_switch,
    trace::DetailCause::nic,            trace::DetailCause::power_outage,
    trace::DetailCause::ac_failure,     trace::DetailCause::operator_error,
    trace::DetailCause::undetermined,
};

void push_unique(std::vector<double>& out, double candidate, double current) {
  if (candidate == current) return;
  if (std::find(out.begin(), out.end(), candidate) != out.end()) return;
  out.push_back(candidate);
}

// Generic vector generator over any element generator: size uniform in
// [min_size, max_size], shrinking by dropping elements before
// simplifying them (shorter counterexamples first).
template <typename T>
Gen<std::vector<T>> vectors_of(Gen<T> elem, std::size_t min_size,
                               std::size_t max_size) {
  Gen<std::vector<T>> gen;
  gen.sample = [elem, min_size, max_size](hpcfail::Rng& rng) {
    const std::size_t size =
        min_size + static_cast<std::size_t>(
                       rng.uniform_index(max_size - min_size + 1));
    std::vector<T> out;
    out.reserve(size);
    for (std::size_t i = 0; i < size; ++i) out.push_back(elem.sample(rng));
    return out;
  };
  gen.shrink = [elem, min_size](const std::vector<T>& v) {
    std::vector<std::vector<T>> candidates;
    // Structural shrinks first: prefix of minimal size, first half,
    // drop-last.
    if (v.size() > min_size) {
      candidates.emplace_back(
          v.begin(), v.begin() + static_cast<std::ptrdiff_t>(min_size));
      const std::size_t half = std::max(min_size, v.size() / 2);
      if (half < v.size() && half > min_size) {
        candidates.emplace_back(v.begin(),
                                v.begin() + static_cast<std::ptrdiff_t>(half));
      }
      candidates.emplace_back(v.begin(), v.end() - 1);
      // Drop each single position, so a failing element anywhere in the
      // vector can be isolated one removal at a time.
      const std::size_t drop_probe = std::min<std::size_t>(v.size(), 16);
      for (std::size_t i = 0; i < drop_probe; ++i) {
        std::vector<T> copy = v;
        copy.erase(copy.begin() + static_cast<std::ptrdiff_t>(i));
        candidates.push_back(std::move(copy));
      }
    }
    // Then element shrinks: the first shrink candidate of each of the
    // leading elements.
    const std::size_t probe = std::min<std::size_t>(v.size(), 8);
    for (std::size_t i = 0; i < probe; ++i) {
      auto elem_candidates = elem.shrink(v[i]);
      if (elem_candidates.empty()) continue;
      std::vector<T> copy = v;
      copy[i] = std::move(elem_candidates.front());
      candidates.push_back(std::move(copy));
    }
    return candidates;
  };
  return gen;
}

}  // namespace

Gen<double> reals(double lo, double hi) {
  Gen<double> gen;
  gen.sample = [lo, hi](hpcfail::Rng& rng) { return rng.uniform(lo, hi); };
  gen.shrink = [lo, hi](const double& v) {
    std::vector<double> out;
    push_unique(out, lo, v);
    push_unique(out, (lo + v) / 2.0, v);
    const double rounded = std::nearbyint(v);
    if (rounded >= lo && rounded <= hi &&
        std::abs(rounded - lo) < std::abs(v - lo)) {
      push_unique(out, rounded, v);
    }
    return out;
  };
  return gen;
}

Gen<double> positive_reals(double scale) {
  Gen<double> gen;
  gen.sample = [scale](hpcfail::Rng& rng) {
    return scale * -std::log(rng.uniform_pos());
  };
  gen.shrink = [](const double& v) {
    std::vector<double> out;
    if (v > 1.0) push_unique(out, 1.0, v);
    const double floored = std::floor(v);
    if (floored > 0.0 && floored < v) push_unique(out, floored, v);
    push_unique(out, v / 2.0, v);
    return out;
  };
  return gen;
}

Gen<int> ints(int lo, int hi) {
  Gen<int> gen;
  gen.sample = [lo, hi](hpcfail::Rng& rng) {
    return lo + static_cast<int>(
                    rng.uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  };
  gen.shrink = [lo](const int& v) {
    std::vector<int> out;
    if (v == lo) return out;
    out.push_back(lo);
    const int mid = lo + (v - lo) / 2;
    if (mid != lo && mid != v) out.push_back(mid);
    if (v - 1 != lo && v - 1 != mid) out.push_back(v - 1);
    return out;
  };
  return gen;
}

Gen<std::vector<double>> vectors(Gen<double> elem, std::size_t min_size,
                                 std::size_t max_size) {
  return vectors_of(std::move(elem), min_size, max_size);
}

Gen<std::vector<double>> sorted_vectors(Gen<double> elem, std::size_t min_size,
                                        std::size_t max_size) {
  Gen<std::vector<double>> base =
      vectors_of(std::move(elem), min_size, max_size);
  Gen<std::vector<double>> gen;
  gen.sample = [base](hpcfail::Rng& rng) {
    std::vector<double> out = base.sample(rng);
    std::sort(out.begin(), out.end());
    return out;
  };
  gen.shrink = [base](const std::vector<double>& v) {
    std::vector<std::vector<double>> candidates = base.shrink(v);
    for (std::vector<double>& c : candidates) std::sort(c.begin(), c.end());
    return candidates;
  };
  return gen;
}

Gen<trace::FailureRecord> failure_records(RecordGenOptions options) {
  Gen<trace::FailureRecord> gen;
  gen.sample = [options](hpcfail::Rng& rng) {
    trace::FailureRecord r;
    r.system_id = 1 + static_cast<int>(rng.uniform_index(
                          static_cast<std::uint64_t>(options.systems)));
    r.node_id = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(options.nodes_per_system)));
    r.start = kEpoch + static_cast<Seconds>(rng.uniform_index(
                           static_cast<std::uint64_t>(options.horizon)));
    r.end = r.start + static_cast<Seconds>(rng.uniform_index(
                          static_cast<std::uint64_t>(options.max_repair) + 1));
    r.detail = kAllDetails[rng.uniform_index(kAllDetails.size())];
    r.cause = trace::category_of(r.detail);
    r.workload = rng.bernoulli(0.8)     ? trace::Workload::compute
                 : rng.bernoulli(0.5)   ? trace::Workload::graphics
                                        : trace::Workload::frontend;
    return r;
  };
  gen.shrink = [](const trace::FailureRecord& r) {
    std::vector<trace::FailureRecord> out;
    const auto with = [&out, &r](auto mutate) {
      trace::FailureRecord copy = r;
      mutate(copy);
      if (!(copy == r)) out.push_back(copy);
    };
    with([](trace::FailureRecord& c) { c.system_id = 1; });
    with([](trace::FailureRecord& c) { c.node_id = 0; });
    with([](trace::FailureRecord& c) {
      c.end -= c.start - kEpoch;  // keep the duration, move to the epoch
      c.start = kEpoch;
    });
    with([](trace::FailureRecord& c) {
      const Seconds duration = c.downtime_seconds();
      c.start = kEpoch + (c.start - kEpoch) / 2;
      c.end = c.start + duration;
    });
    with([](trace::FailureRecord& c) { c.end = c.start; });
    with([](trace::FailureRecord& c) {
      c.end = c.start + c.downtime_seconds() / 2;
    });
    with([](trace::FailureRecord& c) {
      c.detail = trace::DetailCause::memory_dimm;
      c.cause = trace::RootCause::hardware;
    });
    with(
        [](trace::FailureRecord& c) { c.workload = trace::Workload::compute; });
    return out;
  };
  gen.show = [](const trace::FailureRecord& r) {
    std::ostringstream out;
    out << "{sys " << r.system_id << " node " << r.node_id << " start "
        << r.start << " end " << r.end << " " << trace::to_string(r.detail)
        << "}";
    return out.str();
  };
  return gen;
}

Gen<std::vector<trace::FailureRecord>> record_batches(
    std::size_t min_records, std::size_t max_records,
    RecordGenOptions options) {
  Gen<std::vector<trace::FailureRecord>> gen =
      vectors_of(failure_records(options), min_records, max_records);
  gen.show = [](const std::vector<trace::FailureRecord>& v) {
    std::ostringstream out;
    out << v.size() << " records";
    if (!v.empty()) {
      out << ", first " << failure_records().show(v.front());
    }
    return out.str();
  };
  return gen;
}

Gen<trace::FailureDataset> datasets(std::size_t min_records,
                                    std::size_t max_records,
                                    RecordGenOptions options) {
  Gen<std::vector<trace::FailureRecord>> batch =
      record_batches(min_records, max_records, options);
  Gen<trace::FailureDataset> gen;
  gen.sample = [batch](hpcfail::Rng& rng) {
    return trace::FailureDataset(batch.sample(rng));
  };
  gen.shrink = [batch](const trace::FailureDataset& ds) {
    const trace::ColumnsView records = ds.records();
    const std::vector<trace::FailureRecord> as_vector(records.begin(),
                                                      records.end());
    std::vector<trace::FailureDataset> out;
    for (std::vector<trace::FailureRecord>& c : batch.shrink(as_vector)) {
      out.emplace_back(std::move(c));
    }
    return out;
  };
  gen.show = [batch](const trace::FailureDataset& ds) {
    const trace::ColumnsView records = ds.records();
    return batch.show(
        std::vector<trace::FailureRecord>(records.begin(), records.end()));
  };
  return gen;
}

}  // namespace hpcfail::testkit
