// Simulation-based calibration oracles for the MLE fitters.
//
// The statistical analogue of a round-trip test: draw samples from a
// distribution with *known* parameters, refit with dist::fit, and measure
// how well the fit recovers the truth. recovery_curve() sweeps the sample
// size and reports relative bias and RMSE of two moment functionals (the
// mean and the squared coefficient of variation — a scale and a shape
// quantity, comparable across every family); a correct, consistent
// estimator must drive both toward zero as n grows. bootstrap_coverage()
// checks the other half of the inference stack: that stats/bootstrap
// percentile intervals contain the true value of a statistic at close to
// their nominal rate.
//
// Everything is a pure function of its seed (samples are drawn through
// common/rng streams forked per replicate), so the calibration tier is
// byte-reproducible at any thread count. Tolerances asserted by the tests
// are recorded in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "dist/distribution.hpp"
#include "dist/fit.hpp"
#include "stats/bootstrap.hpp"

namespace hpcfail::testkit {

/// Recovery quality at one sample size, aggregated over replicates.
/// Biases and RMSEs are relative to the truth (dimensionless), so one
/// tolerance works across families and parameter scales.
struct RecoveryPoint {
  std::size_t n = 0;
  double mean_bias = 0.0;   ///< mean of (fitted mean - true mean) / true mean
  double mean_rmse = 0.0;   ///< RMSE of the same relative error
  double cv2_bias = 0.0;    ///< same for the squared coefficient of variation
  double cv2_rmse = 0.0;
  std::size_t failed_fits = 0;  ///< replicates where the fit threw
};

/// recovery_curve() output: one point per requested size, ascending n.
struct RecoveryCurve {
  dist::Family family = dist::Family::exponential;
  std::vector<RecoveryPoint> points;

  /// True when the RMSE of both functionals shrinks from the first to
  /// the last point by at least `factor` — the consistency signature. A
  /// functional already at float-noise RMSE (pinned by the family, like
  /// the exponential's cv^2) counts as converged.
  bool rmse_shrinks(double factor = 2.0) const;
};

/// Samples `replicates` datasets of each size from `truth`, refits
/// `family` on each with dist::fit, and aggregates the recovery error.
/// Deterministic given `seed`; replicates run on this thread.
RecoveryCurve recovery_curve(const dist::Distribution& truth,
                             dist::Family family,
                             std::span<const std::size_t> sizes,
                             std::size_t replicates, std::uint64_t seed,
                             double floor_at = 1e-9);

/// Observed coverage of bootstrap percentile intervals.
struct CoverageResult {
  double coverage = 0.0;   ///< fraction of trials whose CI contained truth
  std::size_t trials = 0;
  double nominal = 0.0;    ///< the interval's target confidence
};

/// Draws `trials` samples of size n from `truth`, bootstraps `statistic`
/// on each (stats/bootstrap with a per-trial forked rng), and counts how
/// often [lo, hi] contains `true_value`. Deterministic given `seed`.
CoverageResult bootstrap_coverage(const dist::Distribution& truth,
                                  double true_value,
                                  const stats::Statistic& statistic,
                                  std::size_t n, std::size_t trials,
                                  stats::BootstrapOptions options,
                                  std::uint64_t seed);

/// Runs `compute()` once per parallelism level and reports whether every
/// result is equal (operator==) to the first. Restores the default
/// parallelism before returning. The workhorse of the serial-vs-parallel
/// differential oracles.
template <typename Compute>
bool identical_across_threads(Compute&& compute,
                              std::initializer_list<unsigned> counts = {1u, 2u,
                                                                        8u}) {
  bool first = true;
  bool identical = true;
  decltype(compute()) reference{};
  for (const unsigned threads : counts) {
    hpcfail::set_parallelism(threads);
    auto result = compute();
    if (first) {
      reference = std::move(result);
      first = false;
    } else if (!(result == reference)) {
      identical = false;
      break;
    }
  }
  hpcfail::set_parallelism(0);
  return identical;
}

}  // namespace hpcfail::testkit
