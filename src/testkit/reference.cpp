#include "testkit/reference.hpp"

namespace hpcfail::testkit {

std::vector<trace::FailureRecord> ref_for_system(
    trace::ColumnsView records, int system_id) {
  std::vector<trace::FailureRecord> out;
  for (const trace::FailureRecord& r : records) {
    if (r.system_id == system_id) out.push_back(r);
  }
  return out;
}

std::vector<trace::FailureRecord> ref_between(
    trace::ColumnsView records, Seconds from, Seconds to) {
  std::vector<trace::FailureRecord> out;
  for (const trace::FailureRecord& r : records) {
    if (r.start >= from && r.start < to) out.push_back(r);
  }
  return out;
}

std::vector<double> ref_node_interarrivals(
    trace::ColumnsView records, int system_id,
    int node_id) {
  std::vector<Seconds> starts;
  for (const trace::FailureRecord& r : records) {
    if (r.system_id == system_id && r.node_id == node_id) {
      starts.push_back(r.start);
    }
  }
  std::vector<double> gaps;
  for (std::size_t i = 1; i < starts.size(); ++i) {
    gaps.push_back(static_cast<double>(starts[i] - starts[i - 1]));
  }
  return gaps;
}

std::vector<double> ref_system_interarrivals(
    trace::ColumnsView records, int system_id) {
  std::vector<Seconds> starts;
  for (const trace::FailureRecord& r : records) {
    if (r.system_id == system_id) starts.push_back(r.start);
  }
  std::vector<double> gaps;
  for (std::size_t i = 1; i < starts.size(); ++i) {
    gaps.push_back(static_cast<double>(starts[i] - starts[i - 1]));
  }
  return gaps;
}

std::map<int, std::size_t> ref_failures_per_node(
    trace::ColumnsView records, int system_id) {
  std::map<int, std::size_t> counts;
  for (const trace::FailureRecord& r : records) {
    if (r.system_id == system_id) ++counts[r.node_id];
  }
  return counts;
}

CampaignAggregate ref_campaign_aggregate(
    std::span<const sim::CampaignRunResult> runs) {
  CampaignAggregate agg;
  agg.runs = runs.size();
  if (runs.empty()) return agg;
  double makespan = 0.0;
  double waste = 0.0;
  double interruptions = 0.0;
  for (const sim::CampaignRunResult& r : runs) {
    agg.faults_injected += r.faults_injected;
    makespan += r.makespan;
    waste += r.waste_fraction();
    interruptions += static_cast<double>(r.interruptions);
  }
  const auto n = static_cast<double>(runs.size());
  agg.mean_makespan = makespan / n;
  agg.mean_waste_fraction = waste / n;
  agg.mean_interruptions = interruptions / n;
  return agg;
}

}  // namespace hpcfail::testkit
