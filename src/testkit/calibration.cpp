#include "testkit/calibration.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::testkit {

namespace {

std::vector<double> draw(const dist::Distribution& truth, std::size_t n,
                         hpcfail::Rng& rng) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(truth.sample(rng));
  return xs;
}

}  // namespace

bool RecoveryCurve::rmse_shrinks(double factor) const {
  if (points.size() < 2) return false;
  // A functional the family pins by construction (e.g. the exponential's
  // cv^2 == 1 identically) sits at float-noise RMSE at every n and has
  // nothing left to shrink; treat that as already converged.
  constexpr double kNoise = 1e-12;
  const auto shrinks = [factor](double first, double last) {
    return first <= kNoise || first >= factor * last;
  };
  const RecoveryPoint& first = points.front();
  const RecoveryPoint& last = points.back();
  return shrinks(first.mean_rmse, last.mean_rmse) &&
         shrinks(first.cv2_rmse, last.cv2_rmse);
}

RecoveryCurve recovery_curve(const dist::Distribution& truth,
                             dist::Family family,
                             std::span<const std::size_t> sizes,
                             std::size_t replicates, std::uint64_t seed,
                             double floor_at) {
  HPCFAIL_EXPECTS(!sizes.empty(), "recovery_curve needs at least one size");
  HPCFAIL_EXPECTS(replicates > 0, "recovery_curve needs replicates");
  const double true_mean = truth.mean();
  const double true_cv2 = truth.cv_squared();
  HPCFAIL_EXPECTS(std::isfinite(true_mean) && true_mean != 0.0,
                  "recovery_curve truth must have a finite nonzero mean");
  HPCFAIL_EXPECTS(std::isfinite(true_cv2) && true_cv2 != 0.0,
                  "recovery_curve truth must have a finite nonzero cv^2");

  RecoveryCurve curve;
  curve.family = family;
  for (const std::size_t n : sizes) {
    RecoveryPoint point;
    point.n = n;
    double sum_mean_err = 0.0;
    double sum_mean_sq = 0.0;
    double sum_cv2_err = 0.0;
    double sum_cv2_sq = 0.0;
    std::size_t ok = 0;
    for (std::size_t r = 0; r < replicates; ++r) {
      hpcfail::Rng rng(
          hpcfail::mix_seed(seed, static_cast<std::uint64_t>(n),
                            static_cast<std::uint64_t>(r)));
      const std::vector<double> xs = draw(truth, n, rng);
      try {
        const dist::FitResult fit = dist::fit(family, xs, floor_at);
        const double mean_err = (fit.model->mean() - true_mean) / true_mean;
        const double cv2_err =
            (fit.model->cv_squared() - true_cv2) / true_cv2;
        sum_mean_err += mean_err;
        sum_mean_sq += mean_err * mean_err;
        sum_cv2_err += cv2_err;
        sum_cv2_sq += cv2_err * cv2_err;
        ++ok;
      } catch (const Error&) {
        ++point.failed_fits;
      }
    }
    if (ok > 0) {
      const double count = static_cast<double>(ok);
      point.mean_bias = sum_mean_err / count;
      point.mean_rmse = std::sqrt(sum_mean_sq / count);
      point.cv2_bias = sum_cv2_err / count;
      point.cv2_rmse = std::sqrt(sum_cv2_sq / count);
    }
    curve.points.push_back(point);
  }
  return curve;
}

CoverageResult bootstrap_coverage(const dist::Distribution& truth,
                                  double true_value,
                                  const stats::Statistic& statistic,
                                  std::size_t n, std::size_t trials,
                                  stats::BootstrapOptions options,
                                  std::uint64_t seed) {
  HPCFAIL_EXPECTS(n > 0 && trials > 0, "bootstrap_coverage needs n, trials");
  CoverageResult result;
  result.nominal = options.confidence;
  std::size_t covered = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    hpcfail::Rng rng(
        hpcfail::mix_seed(seed, 0xc0feu, static_cast<std::uint64_t>(t)));
    const std::vector<double> xs = draw(truth, n, rng);
    hpcfail::Rng boot_rng = rng.fork(1);
    try {
      const stats::BootstrapResult ci =
          stats::bootstrap(xs, statistic, boot_rng, options);
      ++result.trials;
      if (ci.lo <= true_value && true_value <= ci.hi) ++covered;
    } catch (const Error&) {
      // A degenerate resample run is skipped, not counted against
      // coverage; the tests assert trials stayed close to the request.
    }
  }
  result.coverage =
      result.trials > 0 ? static_cast<double>(covered) /
                              static_cast<double>(result.trials)
                        : 0.0;
  return result;
}

}  // namespace hpcfail::testkit
