#include "synth/profile.hpp"

#include <map>

#include "common/error.hpp"

namespace hpcfail::synth {

using trace::DetailCause;
using trace::RootCause;

namespace {

// Table 2's repair moments (minutes), per high-level cause, in the
// cause_index order. These are the site-wide anchors; per-type scaling
// below reproduces Fig 7(b)/(c)'s "repair time depends on hardware type".
constexpr RepairMoments kBaseRepair[6] = {
    {342.0, 64.0},   // hardware
    {369.0, 33.0},   // software
    {247.0, 70.0},   // network
    {572.0, 269.0},  // environment
    {163.0, 44.0},   // human
    {398.0, 32.0},   // unknown (overridden per type below)
};

DetailMix default_hardware_detail() {
  return {{DetailCause::memory_dimm, 0.35}, {DetailCause::cpu, 0.15},
          {DetailCause::node_interconnect, 0.15},
          {DetailCause::power_supply, 0.10}, {DetailCause::disk, 0.15},
          {DetailCause::other_hardware, 0.10}};
}

DetailMix default_software_detail() {
  return {{DetailCause::operating_system, 0.35},
          {DetailCause::parallel_fs, 0.15},
          {DetailCause::scheduler, 0.15},
          {DetailCause::other_software, 0.35}};
}

HardwareProfile make_profile(char type) {
  HardwareProfile p;
  p.hw_type = type;

  // High-level mixtures (Fig 1a): hardware is the largest everywhere
  // (30-60%), software second (5-24%); type D has hardware and software
  // nearly equal; type E has <5% unknown while most others have 20-30%.
  switch (type) {
    case 'A':
    case 'B':
    case 'C':
      p.cause_mix = {0.50, 0.20, 0.05, 0.05, 0.05, 0.15};
      break;
    case 'D':
      p.cause_mix = {0.37, 0.27, 0.06, 0.04, 0.02, 0.24};
      break;
    case 'E':
      p.cause_mix = {0.62, 0.18, 0.06, 0.05, 0.05, 0.04};
      break;
    case 'F':
      p.cause_mix = {0.58, 0.15, 0.03, 0.02, 0.02, 0.20};
      break;
    case 'G':
      p.cause_mix = {0.59, 0.10, 0.03, 0.02, 0.02, 0.24};
      break;
    case 'H':
      p.cause_mix = {0.45, 0.20, 0.05, 0.05, 0.02, 0.23};
      break;
    default:
      throw InvalidArgument(std::string("unknown hardware type '") + type +
                            "'");
  }

  // Detailed hardware causes (Section 4): memory is the most common
  // low-level cause everywhere except type E, whose CPU design flaw makes
  // CPU >50% of *all* type-E failures; types F and H see >25% of all
  // failures from memory.
  switch (type) {
    case 'E':
      p.detail_mix[0] = {{DetailCause::cpu, 0.82},
                         {DetailCause::memory_dimm, 0.17},
                         {DetailCause::other_hardware, 0.01}};
      break;
    case 'F':
      p.detail_mix[0] = {{DetailCause::memory_dimm, 0.45},
                         {DetailCause::cpu, 0.15},
                         {DetailCause::node_interconnect, 0.12},
                         {DetailCause::power_supply, 0.08},
                         {DetailCause::disk, 0.12},
                         {DetailCause::other_hardware, 0.08}};
      break;
    case 'H':
      p.detail_mix[0] = {{DetailCause::memory_dimm, 0.60},
                         {DetailCause::cpu, 0.10},
                         {DetailCause::node_interconnect, 0.10},
                         {DetailCause::power_supply, 0.05},
                         {DetailCause::disk, 0.10},
                         {DetailCause::other_hardware, 0.05}};
      break;
    case 'G':
      p.detail_mix[0] = {{DetailCause::memory_dimm, 0.30},
                         {DetailCause::cpu, 0.15},
                         {DetailCause::node_interconnect, 0.20},
                         {DetailCause::power_supply, 0.10},
                         {DetailCause::disk, 0.15},
                         {DetailCause::other_hardware, 0.10}};
      break;
    default:
      p.detail_mix[0] = default_hardware_detail();
  }

  // Detailed software causes: OS tops type E, the parallel file system
  // tops type F, the scheduler tops type H; D and G mostly unspecified.
  switch (type) {
    case 'E':
      p.detail_mix[1] = {{DetailCause::operating_system, 0.55},
                         {DetailCause::parallel_fs, 0.15},
                         {DetailCause::scheduler, 0.10},
                         {DetailCause::other_software, 0.20}};
      break;
    case 'F':
      p.detail_mix[1] = {{DetailCause::parallel_fs, 0.50},
                         {DetailCause::operating_system, 0.20},
                         {DetailCause::scheduler, 0.10},
                         {DetailCause::other_software, 0.20}};
      break;
    case 'H':
      p.detail_mix[1] = {{DetailCause::scheduler, 0.50},
                         {DetailCause::operating_system, 0.20},
                         {DetailCause::parallel_fs, 0.10},
                         {DetailCause::other_software, 0.20}};
      break;
    case 'D':
    case 'G':
      p.detail_mix[1] = {{DetailCause::other_software, 0.60},
                         {DetailCause::operating_system, 0.20},
                         {DetailCause::parallel_fs, 0.10},
                         {DetailCause::scheduler, 0.10}};
      break;
    default:
      p.detail_mix[1] = default_software_detail();
  }

  p.detail_mix[2] = {{DetailCause::network_switch, 0.6},
                     {DetailCause::nic, 0.4}};
  p.detail_mix[3] = {{DetailCause::power_outage, 0.7},
                     {DetailCause::ac_failure, 0.3}};
  p.detail_mix[4] = {{DetailCause::operator_error, 1.0}};
  p.detail_mix[5] = {{DetailCause::undetermined, 1.0}};

  // Per-type repair scaling (Fig 7b/c): repair times cluster by hardware
  // type -- the small early systems repaired fastest, the big NUMA
  // machines slowest -- and are insensitive to system size.
  double scale = 1.0;
  switch (type) {
    case 'A':
    case 'B':
    case 'C':
      scale = 0.6;
      break;
    case 'D':
      scale = 1.1;
      break;
    case 'E':
      scale = 0.85;
      break;
    case 'F':
      scale = 1.0;
      break;
    case 'G':
      scale = 1.8;
      break;
    case 'H':
      scale = 1.4;
      break;
    default:
      break;
  }
  for (std::size_t i = 0; i < 5; ++i) {
    p.repair[i] = {kBaseRepair[i].mean_minutes * scale,
                   kBaseRepair[i].median_minutes * scale};
  }
  // Unknown-cause repairs are *not* scaled with the type: most systems
  // resolve undiagnosed failures quickly (Fig 1b: <5% of downtime), but
  // the first-of-their-kind D and G systems accumulated long undiagnosed
  // outages during their painful early years (>5% of downtime).
  if (type == 'D' || type == 'G') {
    p.repair[5] = {250.0, 35.0};
  } else {
    p.repair[5] = {60.0, 15.0};
  }
  return p;
}

}  // namespace

const HardwareProfile& profile_for(char hw_type) {
  static const std::map<char, HardwareProfile> kProfiles = [] {
    std::map<char, HardwareProfile> m;
    for (const char t : {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}) {
      m.emplace(t, make_profile(t));
    }
    return m;
  }();
  const auto it = kProfiles.find(hw_type);
  if (it == kProfiles.end()) {
    throw InvalidArgument(std::string("unknown hardware type '") + hw_type +
                          "'");
  }
  return it->second;
}

}  // namespace hpcfail::synth
