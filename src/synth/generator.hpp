// Synthetic failure-trace generator.
//
// Each node's failure process is a renewal process in *operational time*,
// mapped to wall-clock time through the cumulative modulated intensity
// (lifecycle curve x diurnal x weekly, integrated hourly). This
// time-rescaling construction gives, by design, every statistical property
// the paper reports:
//   * late-era interarrivals are Weibull with shape < 1 (decreasing
//     hazard), early-era interarrivals lognormal-like with high C^2;
//   * failure counts follow the Fig 4 lifetime curves and the Fig 5
//     hour-of-day / day-of-week profiles;
//   * per-node rates are heterogeneous (workload factors + jitter), making
//     per-node counts overdispersed relative to Poisson (Fig 3b);
//   * "pioneer" systems emit correlated simultaneous multi-node failures
//     early on (>30% zero interarrivals in Fig 6c).
// Root causes, detailed causes, and lognormal repair times come from the
// per-hardware-type profiles.
//
// Generation is deterministic: every (scenario seed, system, node) triple
// seeds an independent PRNG stream, so any subset of systems regenerates
// bit-identically, in any order.
#pragma once

#include "synth/profile.hpp"
#include "synth/scenario.hpp"
#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::synth {

class TraceGenerator {
 public:
  /// `catalog` must outlive the generator. Throws InvalidArgument when a
  /// scenario entry names a system missing from the catalog, or a
  /// scenario parameter is out of range.
  TraceGenerator(const trace::SystemCatalog& catalog, ScenarioConfig config);

  /// Generates the full trace (every system in the scenario).
  trace::FailureDataset generate() const;

  /// Generates one system's records (same records the full trace would
  /// contain for that system). Throws InvalidArgument for ids not in the
  /// scenario.
  std::vector<trace::FailureRecord> generate_system(int system_id) const;

  const ScenarioConfig& config() const noexcept { return config_; }

 private:
  const trace::SystemCatalog& catalog_;
  ScenarioConfig config_;
};

/// Convenience: the full calibrated LANL trace.
trace::FailureDataset generate_lanl_trace(std::uint64_t seed = 42);

}  // namespace hpcfail::synth
