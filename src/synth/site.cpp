#include "synth/site.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"
#include "trace/types.hpp"

namespace hpcfail::synth {

namespace {

using trace::DetailCause;
using trace::RootCause;

// The three profiles below anchor to the statistics the source papers
// publish (rate per processor-year, interarrival Weibull shape, repair
// mean/median, cause mix); EXPERIMENTS.md records the anchors next to
// the calibration tolerances, with full citations. The geometries are
// scaled-down stand-ins for the studied machines so the default corpus
// stays test-sized; duration_scale stretches the window when an oracle
// needs tighter estimator variance.

const SiteProfile& lu_profile() {
  static const SiteProfile kProfile = [] {
    SiteProfile p;
    p.name = "lu";
    p.study = "Lu, Failure Data Analysis of HPC Systems (arXiv:1302.4779)";
    p.format = "lu";
    p.system_id = 1;
    p.nodes = 64;
    p.procs = 128;  // dual-processor commodity nodes
    p.start = to_epoch(2010, 6, 1);
    p.duration_years = 2.0;  // top of the study's 8-24 month span
    p.failures_per_proc_year = 1.8;
    p.weibull_shape = 0.78;
    p.repair = {120.0, 45.0};
    p.cause_mix = {0.50, 0.25, 0.10, 0.03, 0.04, 0.08};
    p.detail_mix[trace::cause_index(RootCause::hardware)] = {
        {DetailCause::memory_dimm, 0.6}, {DetailCause::disk, 0.4}};
    p.detail_mix[trace::cause_index(RootCause::software)] = {
        {DetailCause::operating_system, 0.7},
        {DetailCause::other_software, 0.3}};
    p.detail_mix[trace::cause_index(RootCause::network)] = {
        {DetailCause::nic, 0.6}, {DetailCause::network_switch, 0.4}};
    p.detail_mix[trace::cause_index(RootCause::environment)] = {
        {DetailCause::power_outage, 0.8}, {DetailCause::ac_failure, 0.2}};
    p.detail_mix[trace::cause_index(RootCause::human)] = {
        {DetailCause::operator_error, 1.0}};
    p.detail_mix[trace::cause_index(RootCause::unknown)] = {
        {DetailCause::undetermined, 1.0}};
    return p;
  }();
  return kProfile;
}

const SiteProfile& tan_profile() {
  static const SiteProfile kProfile = [] {
    SiteProfile p;
    p.name = "tan";
    p.study =
        "Tan & DeBardeleben, Failure Analysis and Quantification for "
        "Contemporary and Future Supercomputers (arXiv:1911.02118)";
    p.format = "tan";
    p.system_id = 2;
    p.nodes = 128;
    p.procs = 4096;  // 32 cores per contemporary node
    p.start = to_epoch(2016, 1, 1);
    p.duration_years = 2.0;
    p.failures_per_proc_year = 0.25;
    p.weibull_shape = 0.71;
    p.repair = {180.0, 64.0};
    p.cause_mix = {0.62, 0.18, 0.08, 0.04, 0.02, 0.06};
    p.detail_mix[trace::cause_index(RootCause::hardware)] = {
        {DetailCause::memory_dimm, 0.65},
        {DetailCause::node_interconnect, 0.35}};
    p.detail_mix[trace::cause_index(RootCause::software)] = {
        {DetailCause::parallel_fs, 0.5},
        {DetailCause::operating_system, 0.5}};
    p.detail_mix[trace::cause_index(RootCause::network)] = {
        {DetailCause::network_switch, 0.7}, {DetailCause::nic, 0.3}};
    p.detail_mix[trace::cause_index(RootCause::environment)] = {
        {DetailCause::power_outage, 0.6}, {DetailCause::ac_failure, 0.4}};
    p.detail_mix[trace::cause_index(RootCause::human)] = {
        {DetailCause::operator_error, 1.0}};
    p.detail_mix[trace::cause_index(RootCause::unknown)] = {
        {DetailCause::undetermined, 1.0}};
    return p;
  }();
  return kProfile;
}

const SiteProfile& mistral_profile() {
  static const SiteProfile kProfile = [] {
    SiteProfile p;
    p.name = "mistral";
    p.study =
        "Zasadzinski et al., Mistral supercomputer job-history analysis "
        "(arXiv:1801.07624)";
    p.format = "mistral";
    p.system_id = 3;
    p.nodes = 96;
    p.procs = 2304;  // 24 cores per node (Mistral's Broadwell partition)
    p.start = to_epoch(2017, 1, 1);
    p.duration_years = 1.5;
    p.failures_per_proc_year = 0.5;
    p.weibull_shape = 0.85;
    p.repair = {85.0, 30.0};
    p.cause_mix = {0.30, 0.45, 0.08, 0.02, 0.05, 0.10};
    p.detail_mix[trace::cause_index(RootCause::hardware)] = {
        {DetailCause::disk, 0.5}, {DetailCause::memory_dimm, 0.5}};
    p.detail_mix[trace::cause_index(RootCause::software)] = {
        {DetailCause::scheduler, 0.6}, {DetailCause::other_software, 0.4}};
    p.detail_mix[trace::cause_index(RootCause::network)] = {
        {DetailCause::nic, 1.0}};
    p.detail_mix[trace::cause_index(RootCause::environment)] = {
        {DetailCause::ac_failure, 1.0}};
    p.detail_mix[trace::cause_index(RootCause::human)] = {
        {DetailCause::operator_error, 1.0}};
    p.detail_mix[trace::cause_index(RootCause::unknown)] = {
        {DetailCause::undetermined, 1.0}};
    return p;
  }();
  return kProfile;
}

RootCause sample_cause(Rng& rng, const std::array<double, 6>& mix) {
  double total = 0.0;
  for (const double w : mix) total += w;
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    r -= mix[i];
    if (r <= 0.0) return trace::kAllRootCauses[i];
  }
  return RootCause::unknown;
}

DetailCause sample_detail(Rng& rng, const DetailMix& mix) {
  HPCFAIL_ASSERT(!mix.empty());
  double total = 0.0;
  for (const auto& [detail, w] : mix) total += w;
  double r = rng.uniform() * total;
  for (const auto& [detail, w] : mix) {
    r -= w;
    if (r <= 0.0) return detail;
  }
  return mix.back().first;
}

}  // namespace

std::span<const SiteProfile* const> all_site_profiles() noexcept {
  static const SiteProfile* const kAll[] = {&lu_profile(), &mistral_profile(),
                                            &tan_profile()};
  return kAll;
}

std::string site_profile_names() {
  std::string joined;
  for (const SiteProfile* profile : all_site_profiles()) {
    if (!joined.empty()) joined += ", ";
    joined += profile->name;
  }
  return joined;
}

const SiteProfile& site_profile(std::string_view name) {
  for (const SiteProfile* profile : all_site_profiles()) {
    if (profile->name == name) return *profile;
  }
  throw ValidationError("unknown site profile '" + std::string(name) +
                        "' (known sites: " + site_profile_names() + ")");
}

trace::FailureDataset generate_site_trace(const SiteProfile& profile,
                                          std::uint64_t seed,
                                          double duration_scale) {
  HPCFAIL_EXPECTS(duration_scale > 0.0 && std::isfinite(duration_scale),
                  "duration_scale must be positive and finite");
  const double span_seconds =
      profile.duration_years * duration_scale * kSecondsPerYear;
  const Seconds window_end =
      profile.start + static_cast<Seconds>(std::llround(span_seconds));

  // The published rate is per processor-year; each node fails as a
  // Weibull renewal process whose mean gap realizes that rate for the
  // node's share of the processors.
  const double failures_per_node_year =
      profile.failures_per_proc_year * profile.procs /
      static_cast<double>(profile.nodes);
  HPCFAIL_EXPECTS(failures_per_node_year > 0.0,
                  "profile rate must be positive");
  const double mean_gap_seconds = kSecondsPerYear / failures_per_node_year;
  const double scale =
      mean_gap_seconds / std::tgamma(1.0 + 1.0 / profile.weibull_shape);
  const dist::Weibull gap_dist(profile.weibull_shape, scale);
  const dist::LogNormal repair_dist = dist::LogNormal::from_mean_median(
      profile.repair.mean_minutes, profile.repair.median_minutes);

  std::vector<trace::FailureRecord> records;
  records.reserve(static_cast<std::size_t>(
      failures_per_node_year * profile.nodes * profile.duration_years *
      duration_scale * 1.2));
  for (int node = 0; node < profile.nodes; ++node) {
    // Independent per-node stream: node order and node count changes
    // never perturb other nodes' draws.
    Rng rng(mix_seed(seed, static_cast<std::uint64_t>(profile.system_id),
                     static_cast<std::uint64_t>(node)));
    Seconds t = profile.start;
    while (true) {
      const double gap = gap_dist.sample(rng);
      t += std::max<Seconds>(1, static_cast<Seconds>(std::llround(gap)));
      if (t >= window_end) break;
      trace::FailureRecord record;
      record.system_id = profile.system_id;
      record.node_id = node;
      record.start = t;
      const double repair_minutes = repair_dist.sample(rng);
      record.end = t + std::max<Seconds>(
                           0, static_cast<Seconds>(
                                  std::llround(repair_minutes * 60.0)));
      record.cause = sample_cause(rng, profile.cause_mix);
      record.detail = sample_detail(
          rng, profile.detail_mix[trace::cause_index(record.cause)]);
      record.workload = trace::Workload::compute;
      records.push_back(record);
    }
  }
  return trace::FailureDataset(std::move(records));
}

}  // namespace hpcfail::synth
