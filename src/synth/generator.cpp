#include "synth/generator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dist/lognormal.hpp"
#include "obs/span.hpp"
#include "stats/special.hpp"
#include "trace/columns.hpp"
#include "trace/merge.hpp"

namespace hpcfail::synth {

using trace::ColumnStore;
using trace::MergeKeySpec;
using trace::DetailCause;
using trace::FailureRecord;
using trace::NodeCategory;
using trace::RootCause;
using trace::SystemInfo;
using trace::Workload;

namespace {

// Hourly cumulative modulated intensity over one system's production
// window. C[i] is the integral of lifecycle x diurnal x weekly over the
// first i hours, in "modulated hours"; index 0 is the production start.
struct IntensityGrid {
  Seconds start = 0;
  std::vector<double> cumulative;  // size = hours + 1

  Seconds end() const noexcept {
    return start +
           static_cast<Seconds>(cumulative.size() - 1) * kSecondsPerHour;
  }

  /// Cumulative modulated hours from grid start to absolute time t
  /// (clamped to the grid).
  double at(Seconds t) const {
    if (t <= start) return 0.0;
    const auto max_idx = static_cast<Seconds>(cumulative.size()) - 1;
    Seconds hours = (t - start) / kSecondsPerHour;
    if (hours >= max_idx) return cumulative.back();
    const auto i = static_cast<std::size_t>(hours);
    const double frac =
        static_cast<double>((t - start) % kSecondsPerHour) /
        static_cast<double>(kSecondsPerHour);
    return cumulative[i] + frac * (cumulative[i + 1] - cumulative[i]);
  }
};

/// Monotone inverse of the cumulative intensity. Each node queries its
/// event times in increasing order, so instead of a full binary search
/// over the whole grid (~80k hours for a 9-year system) per event, the
/// cursor gallops forward from the previous hit and binary-searches only
/// the overshoot window. Returns the same value, bit for bit, as an
/// upper_bound over the whole grid.
class InvertCursor {
 public:
  explicit InvertCursor(const IntensityGrid& grid) noexcept : grid_(&grid) {}

  /// Absolute time where the cumulative intensity reaches c. Requires
  /// 0 <= c <= cumulative.back() and c non-decreasing across calls.
  Seconds operator()(double c) {
    const std::vector<double>& cum = grid_->cumulative;
    const std::size_t size = cum.size();
    std::size_t lo = pos_;  // invariant: cum[lo] <= c
    std::size_t step = 1;
    while (lo + step < size && cum[lo + step] <= c) {
      lo += step;
      step <<= 1;
    }
    const auto it = std::upper_bound(
        cum.begin() + static_cast<std::ptrdiff_t>(lo + 1),
        cum.begin() + static_cast<std::ptrdiff_t>(std::min(lo + step, size)),
        c);
    if (it == cum.end()) return grid_->end();
    const auto i = static_cast<std::size_t>(it - cum.begin()) - 1;
    pos_ = i;
    const double span = cum[i + 1] - cum[i];
    const double frac = span > 0.0 ? (c - cum[i]) / span : 0.0;
    return grid_->start + static_cast<Seconds>(i) * kSecondsPerHour +
           static_cast<Seconds>(frac * static_cast<double>(kSecondsPerHour));
  }

 private:
  const IntensityGrid* grid_;
  std::size_t pos_ = 0;
};

IntensityGrid build_grid(const SystemInfo& sys, const Lifecycle& lifecycle) {
  IntensityGrid grid;
  grid.start = sys.production_start();
  const Seconds end = sys.production_end();
  const auto hours =
      static_cast<std::size_t>((end - grid.start) / kSecondsPerHour) + 1;
  grid.cumulative.resize(hours + 1);
  grid.cumulative[0] = 0.0;
  // The diurnal and weekly factors repeat with a one-week (168-hour)
  // period whatever the grid's phase, so resolve them through a per-week
  // table instead of two calendar conversions per grid hour. The
  // multiplication order (lifecycle x diurnal x weekly) is unchanged, so
  // the cumulative sums match the direct evaluation bit for bit.
  constexpr std::size_t kWeekHours = 168;
  std::array<double, kWeekHours> diurnal;
  std::array<double, kWeekHours> weekly;
  for (std::size_t i = 0; i < kWeekHours; ++i) {
    const Seconds t = grid.start + static_cast<Seconds>(i) * kSecondsPerHour;
    diurnal[i] = diurnal_factor(hour_of_day(t));
    weekly[i] = weekly_factor(day_of_week(t));
  }
  std::size_t week_idx = 0;
  for (std::size_t i = 0; i < hours; ++i) {
    const Seconds t = grid.start + static_cast<Seconds>(i) * kSecondsPerHour;
    const double months =
        static_cast<double>(t - grid.start) / kSecondsPerMonth;
    const double rate = lifecycle_factor(lifecycle, months) *
                        diurnal[week_idx] * weekly[week_idx];
    grid.cumulative[i + 1] = grid.cumulative[i] + rate;
    if (++week_idx == kWeekHours) week_idx = 0;
  }
  return grid;
}

// Mean-1 renewal gap samplers for the two eras. The Weibull scale and the
// reciprocal shape are pure functions of the scenario, computed once per
// SystemPlan; a unit shape (the exponential stress configuration) skips
// the pow entirely, which is exact because pow(x, 1.0) == x.
double weibull_gap(hpcfail::Rng& rng, double inv_shape, double scale,
                   bool unit_shape) {
  const double e = -std::log(rng.uniform_pos());
  return scale * (unit_shape ? e : std::pow(e, inv_shape));
}

double lognormal_gap(hpcfail::Rng& rng, double sigma) {
  // mu = -sigma^2/2 makes the mean exactly 1.
  double u1;
  double u2;
  double s;
  do {
    u1 = rng.uniform(-1.0, 1.0);
    u2 = rng.uniform(-1.0, 1.0);
    s = u1 * u1 + u2 * u2;
  } while (s >= 1.0 || s == 0.0);
  const double z = u1 * std::sqrt(-2.0 * std::log(s) / s);
  return std::exp(-0.5 * sigma * sigma + sigma * z);
}

// Standard normal draw for the per-node jitter.
double normal_draw(hpcfail::Rng& rng) {
  double u1;
  double u2;
  double s;
  do {
    u1 = rng.uniform(-1.0, 1.0);
    u2 = rng.uniform(-1.0, 1.0);
    s = u1 * u1 + u2 * u2;
  } while (s >= 1.0 || s == 0.0);
  return u1 * std::sqrt(-2.0 * std::log(s) / s);
}

RootCause sample_cause(hpcfail::Rng& rng, const HardwareProfile& profile,
                       double total) {
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < profile.cause_mix.size(); ++i) {
    r -= profile.cause_mix[i];
    if (r <= 0.0) return trace::kAllRootCauses[i];
  }
  return RootCause::unknown;
}

DetailCause sample_detail(hpcfail::Rng& rng, const DetailMix& mix,
                          double total) {
  HPCFAIL_ASSERT(!mix.empty());
  double r = rng.uniform() * total;
  for (const auto& [detail, w] : mix) {
    r -= w;
    if (r <= 0.0) return detail;
  }
  return mix.back().first;
}

/// The in-production candidate list a burst picks follower nodes from —
/// categories in catalog order, node ids ascending, the primary excluded —
/// resolved index-to-node on demand. Emulating the swap-remove draws on
/// the virtual list keeps the picked sequence identical to materializing
/// the list, at O(followers * categories) per burst instead of O(nodes).
class BurstCandidates {
 public:
  BurstCandidates(const SystemInfo& sys, Seconds t, int exclude) noexcept
      : sys_(&sys), t_(t), exclude_(exclude) {
    for (const NodeCategory& c : sys.categories) {
      if (t < c.production_start || t >= c.production_end) continue;
      size_ += static_cast<std::uint64_t>(c.node_count);
      if (exclude >= c.first_node && exclude < c.first_node + c.node_count) {
        --size_;
      }
    }
  }

  std::uint64_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Removes and returns the element at index `pick`, emulating
  /// `candidates[pick] = candidates.back(); candidates.pop_back();`.
  int take(std::uint64_t pick) noexcept {
    const int value = value_at(pick);
    const int back = value_at(size_ - 1);
    --size_;
    if (pick < size_) set_override(pick, back);
    return value;
  }

 private:
  int value_at(std::uint64_t j) const noexcept {
    for (int k = overrides_ - 1; k >= 0; --k) {
      if (override_idx_[static_cast<std::size_t>(k)] == j) {
        return override_val_[static_cast<std::size_t>(k)];
      }
    }
    for (const NodeCategory& c : sys_->categories) {
      if (t_ < c.production_start || t_ >= c.production_end) continue;
      const bool holds_excluded =
          exclude_ >= c.first_node && exclude_ < c.first_node + c.node_count;
      auto m = static_cast<std::uint64_t>(c.node_count);
      if (holds_excluded) --m;
      if (j < m) {
        int node = c.first_node + static_cast<int>(j);
        if (holds_excluded && node >= exclude_) ++node;
        return node;
      }
      j -= m;
    }
    HPCFAIL_ASSERT(false);  // j < size() always resolves to a node
    return exclude_;
  }

  void set_override(std::uint64_t idx, int value) noexcept {
    for (int k = 0; k < overrides_; ++k) {
      if (override_idx_[static_cast<std::size_t>(k)] == idx) {
        override_val_[static_cast<std::size_t>(k)] = value;
        return;
      }
    }
    override_idx_[static_cast<std::size_t>(overrides_)] = idx;
    override_val_[static_cast<std::size_t>(overrides_)] = value;
    ++overrides_;
  }

  const SystemInfo* sys_;
  Seconds t_;
  int exclude_;
  std::uint64_t size_ = 0;
  // A burst draws at most 4 followers, so at most 4 swap overrides.
  std::array<std::uint64_t, 4> override_idx_{};
  std::array<int, 4> override_val_{};
  int overrides_ = 0;
};

// Everything node generation needs about one system, computed once and
// then shared read-only across worker threads. The cached mixture totals,
// repair lognormals, and reciprocal shape keep every per-record sampling
// step free of re-derivation; all cached values are computed with the
// same arithmetic (same summation order, same divisions) the per-record
// path used, so the draws are bit-identical.
struct SystemPlan {
  const SystemScenario* scen = nullptr;
  const SystemInfo* sys = nullptr;
  const HardwareProfile* profile = nullptr;
  IntensityGrid grid;
  std::vector<double> weight;  // per-node rate weights
  double base = 0.0;           // calibrated base intensity
  double target_total = 0.0;   // expected record count (for reserve)
  double weibull_scale = 1.0;  // mean-1 scale for the late-era gaps
  double inv_shape = 1.0;      // 1 / interarrival_weibull_shape
  bool unit_shape = false;     // shape == 1 (gap sampling skips the pow)
  double cause_total = 0.0;    // sum of the profile's cause mixture
  std::array<double, 6> detail_total{};  // per-cause detail mixture sums
  // Repair lognormal parameters per cause, resolved eagerly so the hot
  // path samples inline from two doubles. A cause whose moments reject
  // construction stays invalid and reproduces the original throw on
  // first sample.
  std::array<double, 6> repair_mu{};
  std::array<double, 6> repair_sigma{};
  std::array<bool, 6> repair_valid{};
};

Seconds sample_repair_seconds(hpcfail::Rng& rng, const SystemPlan& plan,
                              RootCause cause) {
  // Records have minute-scale resolution; repairs take at least a minute.
  // The lognormal tail is capped at 45 days: open tickets were eventually
  // closed, and the public release contains no multi-month repairs.
  constexpr double kMaxMinutes = 45.0 * 24.0 * 60.0;
  const std::size_t idx = cause_index(cause);
  if (!plan.repair_valid[idx]) {
    // Construct on demand, reproducing the throw the plan swallowed.
    const RepairMoments& m = plan.profile->repair[idx];
    const double minutes = hpcfail::dist::LogNormal::from_mean_median(
                               m.mean_minutes, m.median_minutes)
                               .sample(rng);
    return std::max<Seconds>(
        60, static_cast<Seconds>(std::min(minutes, kMaxMinutes) * 60.0));
  }
  // Marsaglia polar normal, the same draw sequence LogNormal::sample
  // uses, fed from the plan's cached (mu, sigma).
  double u1;
  double u2;
  double s;
  do {
    u1 = rng.uniform(-1.0, 1.0);
    u2 = rng.uniform(-1.0, 1.0);
    s = u1 * u1 + u2 * u2;
  } while (s >= 1.0 || s == 0.0);
  const double z = u1 * std::sqrt(-2.0 * std::log(s) / s);
  const double minutes =
      std::exp(plan.repair_mu[idx] + plan.repair_sigma[idx] * z);
  return std::max<Seconds>(
      60, static_cast<Seconds>(std::min(minutes, kMaxMinutes) * 60.0));
}

SystemPlan build_plan(std::uint64_t seed, const SystemInfo& sys,
                      const SystemScenario& scen) {
  SystemPlan plan;
  plan.scen = &scen;
  plan.sys = &sys;
  plan.profile = &profile_for(sys.hw_type);
  plan.grid = build_grid(sys, scen.lifecycle);
  const IntensityGrid& grid = plan.grid;

  // Per-node rate weights: workload factor x lognormal jitter.
  plan.weight.assign(static_cast<std::size_t>(sys.nodes), 0.0);
  for (int node = 0; node < sys.nodes; ++node) {
    hpcfail::Rng wrng(hpcfail::mix_seed(seed,
                                        static_cast<std::uint64_t>(sys.id),
                                        0xA110C000ULL +
                                            static_cast<std::uint64_t>(node)));
    double w = 1.0;
    switch (sys.workload_of(node)) {
      case Workload::graphics: w = scen.graphics_factor; break;
      case Workload::frontend: w = scen.frontend_factor; break;
      case Workload::compute: break;
    }
    w *= std::exp(scen.node_jitter_sigma * normal_draw(wrng));
    plan.weight[static_cast<std::size_t>(node)] = w;
  }

  // Calibrate the base rate so the expected total (including correlated
  // burst followers) matches failures_per_year * production_years.
  double ops_total = 0.0;
  double ops_early = 0.0;
  for (int node = 0; node < sys.nodes; ++node) {
    const NodeCategory& c = sys.category_for_node(node);
    const double lo = grid.at(c.production_start);
    const double hi = grid.at(c.production_end);
    const double w = plan.weight[static_cast<std::size_t>(node)];
    ops_total += w * (hi - lo);
    if (scen.early_era_end > c.production_start) {
      const double mid = grid.at(std::min(scen.early_era_end,
                                          c.production_end));
      ops_early += w * (mid - lo);
    }
  }
  HPCFAIL_ASSERT(ops_total > 0.0);
  const double early_fraction = ops_early / ops_total;
  const double mean_followers = 2.5;  // uniform 1..4 extra nodes
  const double inflation =
      1.0 + mean_followers * (early_fraction * scen.early_burst_probability +
                              (1.0 - early_fraction) *
                                  scen.late_burst_probability);
  const double target_total =
      scen.failures_per_year * sys.production_years();
  // Renewal-process excess: for a renewal process with mean-1 gaps and
  // squared CV C^2, E[N(tau)] ~ tau + (C^2 - 1)/2 for tau >> 1. With
  // overdispersed gaps (C^2 > 1) every node contributes that constant
  // extra, which is material for many-node systems; deduct it from the
  // calibration target (clamped so small targets stay positive).
  const auto weibull_cv2 = [](double k) {
    const double g1 =
        std::exp(hpcfail::stats::log_gamma_unchecked(1.0 + 1.0 / k));
    const double g2 =
        std::exp(hpcfail::stats::log_gamma_unchecked(1.0 + 2.0 / k));
    return g2 / (g1 * g1) - 1.0;
  };
  const double cv2_late = weibull_cv2(scen.interarrival_weibull_shape);
  const double cv2_early =
      std::expm1(scen.early_lognormal_sigma * scen.early_lognormal_sigma);
  // The asymptotic constant overstates the excess for nodes with few
  // events and for very heavy-tailed early-era gaps; cap it.
  const double excess_per_node =
      std::min(2.0, 0.5 * (early_fraction * (cv2_early - 1.0) +
                           (1.0 - early_fraction) * (cv2_late - 1.0)));
  const double corrected_total =
      std::max(0.5 * target_total,
               target_total - static_cast<double>(sys.nodes) *
                                  std::max(0.0, excess_per_node));
  plan.base = corrected_total / (ops_total * inflation);
  plan.target_total = target_total;
  plan.weibull_scale = std::exp(-hpcfail::stats::log_gamma_unchecked(
      1.0 + 1.0 / scen.interarrival_weibull_shape));
  plan.inv_shape = 1.0 / scen.interarrival_weibull_shape;
  plan.unit_shape = scen.interarrival_weibull_shape == 1.0;
  plan.cause_total = 0.0;
  for (const double w : plan.profile->cause_mix) plan.cause_total += w;
  for (std::size_t ci = 0; ci < plan.profile->detail_mix.size(); ++ci) {
    double total = 0.0;
    for (const auto& [detail, w] : plan.profile->detail_mix[ci]) total += w;
    plan.detail_total[ci] = total;
    const RepairMoments& m = plan.profile->repair[ci];
    try {
      const hpcfail::dist::LogNormal ln =
          hpcfail::dist::LogNormal::from_mean_median(m.mean_minutes,
                                                     m.median_minutes);
      plan.repair_mu[ci] = ln.mu();
      plan.repair_sigma[ci] = ln.sigma();
      plan.repair_valid[ci] = true;
    } catch (const Error&) {
      // Stays invalid; sampling this cause reproduces the original throw.
    }
  }
  return plan;
}

// Key layout for the seal-time merge (trace/merge.hpp), fixed before
// emission from the catalog's ranges — which may be wider than the data
// actually emitted; pack() only needs to cover it. Computing keys during
// emission fuses the key pass into the generation loop.
MergeKeySpec make_key_spec(const std::vector<SystemPlan>& plans) {
  if (plans.empty()) return MergeKeySpec{};
  Seconds lo = std::numeric_limits<Seconds>::max();
  Seconds hi = std::numeric_limits<Seconds>::min();
  std::int64_t max_sys = 0;
  std::int64_t max_node = 0;
  for (const SystemPlan& p : plans) {
    if (p.sys->id < 0 || p.sys->nodes <= 0) return MergeKeySpec{};
    lo = std::min(lo, p.grid.start);
    hi = std::max(hi, p.grid.end());
    max_sys = std::max(max_sys, static_cast<std::int64_t>(p.sys->id));
    max_node =
        std::max(max_node, static_cast<std::int64_t>(p.sys->nodes - 1));
  }
  if (hi < lo) return MergeKeySpec{};
  return trace::make_merge_key_spec(lo, hi, max_sys, max_node);
}

// One shard's records in emission order, stored as columns, plus the
// packed merge key of every record when the generate() path requested
// them (generate_system() skips the keys).
struct ShardOut {
  ColumnStore columns;
  std::vector<std::uint64_t> keys;
};

// Column write cursors with one capacity check per record instead of one
// per column. The store is resized up front to the shard's estimated row
// count (doubling when the estimate is exceeded); finish() shrinks it to
// the rows actually written, which for trivially-destructible columns
// never touches the written rows.
class EmitBuffer {
 public:
  EmitBuffer(ColumnStore& out, std::vector<std::uint64_t>* keys,
             std::size_t capacity)
      : out_(&out), keys_(keys), cap_(capacity > 0 ? capacity : 16) {
    resize_all();
  }

  void push(int system, int node, Seconds start, Seconds end, Workload w,
            RootCause cause, DetailCause detail, std::uint64_t key) {
    if (n_ == cap_) {
      cap_ *= 2;
      resize_all();
    }
    system_[n_] = system;
    node_[n_] = node;
    start_[n_] = start;
    end_[n_] = end;
    workload_[n_] = w;
    cause_[n_] = cause;
    detail_[n_] = detail;
    if (key_ != nullptr) key_[n_] = key;
    ++n_;
  }

  void finish() {
    out_->resize(n_);
    if (keys_ != nullptr) keys_->resize(n_);
  }

 private:
  void resize_all() {
    out_->resize(cap_);
    if (keys_ != nullptr) keys_->resize(cap_);
    system_ = out_->system_id.data();
    node_ = out_->node_id.data();
    start_ = out_->start.data();
    end_ = out_->end.data();
    workload_ = out_->workload.data();
    cause_ = out_->cause.data();
    detail_ = out_->detail.data();
    key_ = keys_ != nullptr ? keys_->data() : nullptr;
  }

  ColumnStore* out_;
  std::vector<std::uint64_t>* keys_;
  std::size_t cap_ = 0;
  std::size_t n_ = 0;
  int* system_ = nullptr;
  int* node_ = nullptr;
  Seconds* start_ = nullptr;
  Seconds* end_ = nullptr;
  Workload* workload_ = nullptr;
  RootCause* cause_ = nullptr;
  DetailCause* detail_ = nullptr;
  std::uint64_t* key_ = nullptr;
};

// Generates the records of nodes [node_begin, node_end) of one system —
// exactly the records the sequential per-node loop would produce for that
// range, because every node draws from its own (seed, system, node) PRNG
// stream. Records land directly in the shard's columns; no AoS staging.
ShardOut generate_node_range(const SystemPlan& plan, std::uint64_t seed,
                             int node_begin, int node_end,
                             const MergeKeySpec* keyspec) {
  const SystemScenario& scen = *plan.scen;
  const SystemInfo& sys = *plan.sys;
  const HardwareProfile& profile = *plan.profile;
  const IntensityGrid& grid = plan.grid;

  ShardOut shard;
  const double share =
      static_cast<double>(node_end - node_begin) /
      static_cast<double>(std::max(1, sys.nodes));
  EmitBuffer buf(
      shard.columns, keyspec != nullptr ? &shard.keys : nullptr,
      static_cast<std::size_t>(plan.target_total * share * 1.2) + 16);

  const auto emit = [&](int node_id, Seconds start, Seconds end, Workload w,
                        RootCause cause, DetailCause detail) {
    buf.push(sys.id, node_id, start, end, w, cause, detail,
             keyspec != nullptr ? keyspec->pack(start, sys.id, node_id) : 0);
  };

  // Past the decay window the unknown-cause boost is exactly zero and
  // bernoulli(0) consumes no draw, so later records can skip the months
  // arithmetic entirely. The cutoff carries a two-hour guard band so the
  // skip only covers instants where the computed boost is exactly zero.
  const Seconds boost_cutoff =
      grid.start +
      static_cast<Seconds>(
          std::ceil(scen.unknown_decay_months * kSecondsPerMonth)) +
      2 * kSecondsPerHour;

  for (int node = node_begin; node < node_end; ++node) {
    const NodeCategory& cat = sys.category_for_node(node);
    const double rate = plan.base * plan.weight[static_cast<std::size_t>(node)];
    const double tau_lo = grid.at(cat.production_start);
    const double tau_end = rate * (grid.at(cat.production_end) - tau_lo);
    if (tau_end <= 0.0) continue;

    const Workload node_workload = sys.workload_of(node);
    hpcfail::Rng rng(hpcfail::mix_seed(seed,
                                       static_cast<std::uint64_t>(sys.id),
                                       static_cast<std::uint64_t>(node)));
    InvertCursor invert(grid);
    double tau = 0.0;
    Seconds now = cat.production_start;
    for (;;) {
      const bool early = now < scen.early_era_end;
      const double gap =
          early ? lognormal_gap(rng, scen.early_lognormal_sigma)
                : weibull_gap(rng, plan.inv_shape, plan.weibull_scale,
                              plan.unit_shape);
      tau += gap;
      if (tau >= tau_end) break;
      now = invert(tau_lo + tau / rate);

      // Section 4: pioneer systems initially recorded most causes as
      // unknown; the boost decays as administrators learn the platform.
      double unknown_boost = 0.0;
      if (now < boost_cutoff) {
        const double months_in =
            static_cast<double>(now - grid.start) / kSecondsPerMonth;
        unknown_boost =
            scen.early_unknown_boost *
            std::max(0.0, 1.0 - months_in / scen.unknown_decay_months);
      }

      RootCause cause = RootCause::unknown;
      DetailCause detail = DetailCause::undetermined;
      if (!rng.bernoulli(unknown_boost)) {
        cause = sample_cause(rng, profile, plan.cause_total);
        detail = sample_detail(rng, profile.detail_mix[cause_index(cause)],
                               plan.detail_total[cause_index(cause)]);
      }
      const Seconds repair = sample_repair_seconds(rng, plan, cause);
      emit(node, now, now + repair, node_workload, cause, detail);

      // Correlated multi-node events: a site-level incident (power,
      // interconnect fabric) takes down additional nodes at the same
      // instant.
      const double burst_p = early ? scen.early_burst_probability
                                   : scen.late_burst_probability;
      if (burst_p > 0.0 && rng.bernoulli(burst_p)) {
        const auto followers = 1 + rng.uniform_index(4);  // 1..4 nodes
        BurstCandidates candidates(sys, now, node);
        for (std::uint64_t k = 0;
             k < followers && !candidates.empty(); ++k) {
          const auto pick = rng.uniform_index(candidates.size());
          const int other = candidates.take(pick);

          RootCause fcause = RootCause::unknown;
          DetailCause fdetail = DetailCause::undetermined;
          if (!rng.bernoulli(unknown_boost)) {
            fcause = rng.bernoulli(0.5) ? RootCause::environment
                                        : RootCause::network;
            fdetail = sample_detail(rng,
                                    profile.detail_mix[cause_index(fcause)],
                                    plan.detail_total[cause_index(fcause)]);
          }
          const Seconds frepair = sample_repair_seconds(rng, plan, fcause);
          emit(other, now, now + frepair, sys.workload_of(other), fcause,
               fdetail);
        }
      }
    }
  }
  buf.finish();
  return shard;
}

// Shard size for splitting one system's nodes across workers. Small
// enough that a 1024-node system yields many shards to balance, large
// enough that per-shard overhead stays negligible.
constexpr int kShardNodes = 64;

struct NodeShard {
  const SystemPlan* plan = nullptr;
  int node_begin = 0;
  int node_end = 0;
};

void append_shards(const SystemPlan& plan, std::vector<NodeShard>& shards) {
  for (int b = 0; b < plan.sys->nodes; b += kShardNodes) {
    shards.push_back(
        {&plan, b, std::min(b + kShardNodes, plan.sys->nodes)});
  }
}

// Runs the shards on the shared pool. The generate() path passes a key
// spec so every record's packed merge key is emitted alongside the
// columns; the generate_system() path passes none and reads the columns
// in emission order.
//
// Each shard's wall time and record count go to the per-system obs
// histograms ("synth.shard_seconds{system=N}" / "synth.shard_records{...}");
// timing is measured around the deterministic generation, never fed back
// into it, so the output is bit-identical with obs on or off.
std::vector<ShardOut> run_shards(const std::vector<NodeShard>& shards,
                                 std::uint64_t seed, const MergeKeySpec* keyspec) {
  const bool observed = hpcfail::obs::enabled();
  auto parts = hpcfail::parallel_map(
      shards.size(), [&shards, seed, keyspec, observed](std::size_t k) {
        const NodeShard& s = shards[k];
        if (!observed) {
          return generate_node_range(*s.plan, seed, s.node_begin, s.node_end,
                                     keyspec);
        }
        const auto t0 = std::chrono::steady_clock::now();
        ShardOut shard = generate_node_range(*s.plan, seed, s.node_begin,
                                             s.node_end, keyspec);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const std::string label =
            "{system=" + std::to_string(s.plan->sys->id) + "}";
        hpcfail::obs::Registry& reg = hpcfail::obs::registry();
        reg.histogram("synth.shard_seconds" + label).record(elapsed);
        reg.histogram("synth.shard_records" + label)
            .record(static_cast<double>(shard.columns.size()));
        return shard;
      });
  if (observed) {
    std::size_t total = 0;
    for (const auto& part : parts) total += part.columns.size();
    hpcfail::obs::registry().counter("synth.records_total").add(total);
  }
  return parts;
}

}  // namespace

TraceGenerator::TraceGenerator(const trace::SystemCatalog& catalog,
                               ScenarioConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  HPCFAIL_EXPECTS(!config_.systems.empty(),
                  "scenario must configure at least one system");
  for (const SystemScenario& s : config_.systems) {
    HPCFAIL_EXPECTS(catalog_.contains(s.system_id),
                    "scenario references a system missing from the catalog");
    HPCFAIL_EXPECTS(s.failures_per_year > 0.0,
                    "failures_per_year must be positive");
    HPCFAIL_EXPECTS(s.interarrival_weibull_shape > 0.0,
                    "interarrival Weibull shape must be positive");
    HPCFAIL_EXPECTS(s.early_lognormal_sigma > 0.0,
                    "early lognormal sigma must be positive");
    HPCFAIL_EXPECTS(
        s.early_burst_probability >= 0.0 && s.early_burst_probability < 1.0,
        "burst probability must be in [0,1)");
    HPCFAIL_EXPECTS(
        s.late_burst_probability >= 0.0 && s.late_burst_probability < 1.0,
        "burst probability must be in [0,1)");
    HPCFAIL_EXPECTS(
        s.early_unknown_boost >= 0.0 && s.early_unknown_boost <= 1.0,
        "unknown boost must be in [0,1]");
    HPCFAIL_EXPECTS(s.unknown_decay_months > 0.0,
                    "unknown decay window must be positive");
  }
}

std::vector<FailureRecord> TraceGenerator::generate_system(
    int system_id) const {
  const SystemScenario* scen = nullptr;
  for (const SystemScenario& s : config_.systems) {
    if (s.system_id == system_id) {
      scen = &s;
      break;
    }
  }
  HPCFAIL_EXPECTS(scen != nullptr, "system not present in the scenario");

  obs::Span span("synth.generate_system");
  const SystemPlan plan =
      build_plan(config_.seed, catalog_.system(system_id), *scen);
  std::vector<NodeShard> shards;
  append_shards(plan, shards);
  // Emission order, shard by shard — the exact vector the sequential
  // per-node loop builds; AoS records are reconstituted at this edge.
  auto parts = run_shards(shards, config_.seed, /*keyspec=*/nullptr);
  std::size_t total = 0;
  for (const auto& part : parts) total += part.columns.size();
  std::vector<FailureRecord> all;
  all.reserve(total);
  for (const auto& part : parts) {
    const std::size_t n = part.columns.size();
    for (std::size_t i = 0; i < n; ++i) all.push_back(part.columns.row(i));
  }
  return all;
}

trace::FailureDataset TraceGenerator::generate() const {
  // Plans (hourly intensity grid, per-node weights, calibration) are
  // cheap; build them up front so the expensive event generation can fan
  // out per (system, node-range) shard across the shared pool. Workers
  // emit columns plus a packed (start, system, node) key per record; a
  // stable radix sort of the keys then merges the shards into globally
  // sorted columns with a single copy of the rows, which from_columns
  // adopts without re-sorting — the whole pipeline never builds an AoS
  // copy of the trace.
  obs::Span span("synth.generate");
  obs::StageTimer stage("synth.generate");
  std::vector<SystemPlan> plans;
  plans.reserve(config_.systems.size());
  for (const SystemScenario& s : config_.systems) {
    plans.push_back(build_plan(config_.seed, catalog_.system(s.system_id), s));
  }
  const MergeKeySpec spec = make_key_spec(plans);
  std::vector<NodeShard> shards;
  for (const SystemPlan& plan : plans) append_shards(plan, shards);
  auto parts =
      run_shards(shards, config_.seed, spec.packable ? &spec : nullptr);
  std::vector<trace::MergeInput> inputs;
  inputs.reserve(parts.size());
  for (ShardOut& p : parts) {
    inputs.push_back({&p.columns, std::move(p.keys)});
  }
  trace::FailureDataset dataset = trace::FailureDataset::from_columns(
      trace::merge_sorted(std::move(inputs), spec));
  stage.stop();
  if (obs::enabled() && stage.wall_seconds() > 0.0) {
    obs::registry()
        .gauge("synth.generate.records_per_sec")
        .set(static_cast<double>(dataset.size()) / stage.wall_seconds());
  }
  return dataset;
}

trace::FailureDataset generate_lanl_trace(std::uint64_t seed) {
  const TraceGenerator generator(trace::SystemCatalog::lanl(),
                                 lanl_scenario(seed));
  return generator.generate();
}

}  // namespace hpcfail::synth
