#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <chrono>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dist/lognormal.hpp"
#include "obs/span.hpp"
#include "stats/special.hpp"

namespace hpcfail::synth {

using trace::DetailCause;
using trace::FailureRecord;
using trace::NodeCategory;
using trace::RootCause;
using trace::SystemInfo;
using trace::Workload;

namespace {

// Hourly cumulative modulated intensity over one system's production
// window. C[i] is the integral of lifecycle x diurnal x weekly over the
// first i hours, in "modulated hours"; index 0 is the production start.
struct IntensityGrid {
  Seconds start = 0;
  std::vector<double> cumulative;  // size = hours + 1

  Seconds end() const noexcept {
    return start +
           static_cast<Seconds>(cumulative.size() - 1) * kSecondsPerHour;
  }

  /// Cumulative modulated hours from grid start to absolute time t
  /// (clamped to the grid).
  double at(Seconds t) const {
    if (t <= start) return 0.0;
    const auto max_idx = static_cast<Seconds>(cumulative.size()) - 1;
    Seconds hours = (t - start) / kSecondsPerHour;
    if (hours >= max_idx) return cumulative.back();
    const auto i = static_cast<std::size_t>(hours);
    const double frac =
        static_cast<double>((t - start) % kSecondsPerHour) /
        static_cast<double>(kSecondsPerHour);
    return cumulative[i] + frac * (cumulative[i + 1] - cumulative[i]);
  }

  /// Inverse of at(): the absolute time where the cumulative intensity
  /// reaches c. Requires 0 <= c <= cumulative.back().
  Seconds invert(double c) const {
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), c);
    if (it == cumulative.begin()) return start;
    if (it == cumulative.end()) return end();
    const auto i = static_cast<std::size_t>(it - cumulative.begin()) - 1;
    const double span = cumulative[i + 1] - cumulative[i];
    const double frac = span > 0.0 ? (c - cumulative[i]) / span : 0.0;
    return start + static_cast<Seconds>(i) * kSecondsPerHour +
           static_cast<Seconds>(frac * static_cast<double>(kSecondsPerHour));
  }
};

IntensityGrid build_grid(const SystemInfo& sys, const Lifecycle& lifecycle) {
  IntensityGrid grid;
  grid.start = sys.production_start();
  const Seconds end = sys.production_end();
  const auto hours =
      static_cast<std::size_t>((end - grid.start) / kSecondsPerHour) + 1;
  grid.cumulative.resize(hours + 1);
  grid.cumulative[0] = 0.0;
  for (std::size_t i = 0; i < hours; ++i) {
    const Seconds t = grid.start + static_cast<Seconds>(i) * kSecondsPerHour;
    const double months =
        static_cast<double>(t - grid.start) / kSecondsPerMonth;
    const double rate = lifecycle_factor(lifecycle, months) *
                        diurnal_factor(hour_of_day(t)) *
                        weekly_factor(day_of_week(t));
    grid.cumulative[i + 1] = grid.cumulative[i] + rate;
  }
  return grid;
}

// Mean-1 renewal gap samplers for the two eras. The Weibull scale
// (1 / Gamma(1 + 1/shape)) is a pure function of the scenario shape, so
// it is computed once per SystemPlan instead of per draw.
double weibull_gap(hpcfail::Rng& rng, double shape, double scale) {
  return scale * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape);
}

double lognormal_gap(hpcfail::Rng& rng, double sigma) {
  // mu = -sigma^2/2 makes the mean exactly 1.
  double u1;
  double u2;
  double s;
  do {
    u1 = rng.uniform(-1.0, 1.0);
    u2 = rng.uniform(-1.0, 1.0);
    s = u1 * u1 + u2 * u2;
  } while (s >= 1.0 || s == 0.0);
  const double z = u1 * std::sqrt(-2.0 * std::log(s) / s);
  return std::exp(-0.5 * sigma * sigma + sigma * z);
}

// Standard normal draw for the per-node jitter.
double normal_draw(hpcfail::Rng& rng) {
  double u1;
  double u2;
  double s;
  do {
    u1 = rng.uniform(-1.0, 1.0);
    u2 = rng.uniform(-1.0, 1.0);
    s = u1 * u1 + u2 * u2;
  } while (s >= 1.0 || s == 0.0);
  return u1 * std::sqrt(-2.0 * std::log(s) / s);
}

RootCause sample_cause(hpcfail::Rng& rng, const HardwareProfile& profile) {
  double total = 0.0;
  for (const double w : profile.cause_mix) total += w;
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < profile.cause_mix.size(); ++i) {
    r -= profile.cause_mix[i];
    if (r <= 0.0) return trace::kAllRootCauses[i];
  }
  return RootCause::unknown;
}

DetailCause sample_detail(hpcfail::Rng& rng, const HardwareProfile& profile,
                          RootCause cause) {
  const DetailMix& mix = profile.detail_mix[cause_index(cause)];
  HPCFAIL_ASSERT(!mix.empty());
  double total = 0.0;
  for (const auto& [detail, w] : mix) total += w;
  double r = rng.uniform() * total;
  for (const auto& [detail, w] : mix) {
    r -= w;
    if (r <= 0.0) return detail;
  }
  return mix.back().first;
}

Seconds sample_repair_seconds(hpcfail::Rng& rng,
                              const HardwareProfile& profile,
                              RootCause cause) {
  const RepairMoments& m = profile.repair[cause_index(cause)];
  const auto ln =
      hpcfail::dist::LogNormal::from_mean_median(m.mean_minutes,
                                                 m.median_minutes);
  const double minutes = ln.sample(rng);
  // Records have minute-scale resolution; repairs take at least a minute.
  // The lognormal tail is capped at 45 days: open tickets were eventually
  // closed, and the public release contains no multi-month repairs.
  constexpr double kMaxMinutes = 45.0 * 24.0 * 60.0;
  return std::max<Seconds>(
      60, static_cast<Seconds>(std::min(minutes, kMaxMinutes) * 60.0));
}

// Nodes of `sys` in production at time t, excluding `exclude`.
std::vector<int> nodes_in_production(const SystemInfo& sys, Seconds t,
                                     int exclude) {
  std::vector<int> out;
  for (const NodeCategory& c : sys.categories) {
    if (t < c.production_start || t >= c.production_end) continue;
    for (int n = c.first_node; n < c.first_node + c.node_count; ++n) {
      if (n != exclude) out.push_back(n);
    }
  }
  return out;
}

// Everything node generation needs about one system, computed once and
// then shared read-only across worker threads.
struct SystemPlan {
  const SystemScenario* scen = nullptr;
  const SystemInfo* sys = nullptr;
  const HardwareProfile* profile = nullptr;
  IntensityGrid grid;
  std::vector<double> weight;  // per-node rate weights
  double base = 0.0;           // calibrated base intensity
  double target_total = 0.0;   // expected record count (for reserve)
  double weibull_scale = 1.0;  // mean-1 scale for the late-era gaps
};

SystemPlan build_plan(std::uint64_t seed, const SystemInfo& sys,
                      const SystemScenario& scen) {
  SystemPlan plan;
  plan.scen = &scen;
  plan.sys = &sys;
  plan.profile = &profile_for(sys.hw_type);
  plan.grid = build_grid(sys, scen.lifecycle);
  const IntensityGrid& grid = plan.grid;

  // Per-node rate weights: workload factor x lognormal jitter.
  plan.weight.assign(static_cast<std::size_t>(sys.nodes), 0.0);
  for (int node = 0; node < sys.nodes; ++node) {
    hpcfail::Rng wrng(hpcfail::mix_seed(seed,
                                        static_cast<std::uint64_t>(sys.id),
                                        0xA110C000ULL +
                                            static_cast<std::uint64_t>(node)));
    double w = 1.0;
    switch (sys.workload_of(node)) {
      case Workload::graphics: w = scen.graphics_factor; break;
      case Workload::frontend: w = scen.frontend_factor; break;
      case Workload::compute: break;
    }
    w *= std::exp(scen.node_jitter_sigma * normal_draw(wrng));
    plan.weight[static_cast<std::size_t>(node)] = w;
  }

  // Calibrate the base rate so the expected total (including correlated
  // burst followers) matches failures_per_year * production_years.
  double ops_total = 0.0;
  double ops_early = 0.0;
  for (int node = 0; node < sys.nodes; ++node) {
    const NodeCategory& c = sys.category_for_node(node);
    const double lo = grid.at(c.production_start);
    const double hi = grid.at(c.production_end);
    const double w = plan.weight[static_cast<std::size_t>(node)];
    ops_total += w * (hi - lo);
    if (scen.early_era_end > c.production_start) {
      const double mid = grid.at(std::min(scen.early_era_end,
                                          c.production_end));
      ops_early += w * (mid - lo);
    }
  }
  HPCFAIL_ASSERT(ops_total > 0.0);
  const double early_fraction = ops_early / ops_total;
  const double mean_followers = 2.5;  // uniform 1..4 extra nodes
  const double inflation =
      1.0 + mean_followers * (early_fraction * scen.early_burst_probability +
                              (1.0 - early_fraction) *
                                  scen.late_burst_probability);
  const double target_total =
      scen.failures_per_year * sys.production_years();
  // Renewal-process excess: for a renewal process with mean-1 gaps and
  // squared CV C^2, E[N(tau)] ~ tau + (C^2 - 1)/2 for tau >> 1. With
  // overdispersed gaps (C^2 > 1) every node contributes that constant
  // extra, which is material for many-node systems; deduct it from the
  // calibration target (clamped so small targets stay positive).
  const auto weibull_cv2 = [](double k) {
    const double g1 = std::exp(hpcfail::stats::log_gamma_unchecked(1.0 + 1.0 / k));
    const double g2 = std::exp(hpcfail::stats::log_gamma_unchecked(1.0 + 2.0 / k));
    return g2 / (g1 * g1) - 1.0;
  };
  const double cv2_late = weibull_cv2(scen.interarrival_weibull_shape);
  const double cv2_early =
      std::expm1(scen.early_lognormal_sigma * scen.early_lognormal_sigma);
  // The asymptotic constant overstates the excess for nodes with few
  // events and for very heavy-tailed early-era gaps; cap it.
  const double excess_per_node =
      std::min(2.0, 0.5 * (early_fraction * (cv2_early - 1.0) +
                           (1.0 - early_fraction) * (cv2_late - 1.0)));
  const double corrected_total =
      std::max(0.5 * target_total,
               target_total - static_cast<double>(sys.nodes) *
                                  std::max(0.0, excess_per_node));
  plan.base = corrected_total / (ops_total * inflation);
  plan.target_total = target_total;
  plan.weibull_scale = std::exp(-hpcfail::stats::log_gamma_unchecked(
      1.0 + 1.0 / scen.interarrival_weibull_shape));
  return plan;
}

// Generates the records of nodes [node_begin, node_end) of one system —
// exactly the records the sequential per-node loop would produce for that
// range, because every node draws from its own (seed, system, node) PRNG
// stream.
std::vector<FailureRecord> generate_node_range(const SystemPlan& plan,
                                               std::uint64_t seed,
                                               int node_begin, int node_end) {
  const SystemScenario& scen = *plan.scen;
  const SystemInfo& sys = *plan.sys;
  const HardwareProfile& profile = *plan.profile;
  const IntensityGrid& grid = plan.grid;

  std::vector<FailureRecord> records;
  const double share =
      static_cast<double>(node_end - node_begin) /
      static_cast<double>(std::max(1, sys.nodes));
  records.reserve(
      static_cast<std::size_t>(plan.target_total * share * 1.2) + 16);

  for (int node = node_begin; node < node_end; ++node) {
    const NodeCategory& cat = sys.category_for_node(node);
    const double rate = plan.base * plan.weight[static_cast<std::size_t>(node)];
    const double tau_lo = grid.at(cat.production_start);
    const double tau_end = rate * (grid.at(cat.production_end) - tau_lo);
    if (tau_end <= 0.0) continue;

    hpcfail::Rng rng(hpcfail::mix_seed(seed,
                                       static_cast<std::uint64_t>(sys.id),
                                       static_cast<std::uint64_t>(node)));
    double tau = 0.0;
    Seconds now = cat.production_start;
    for (;;) {
      const bool early = now < scen.early_era_end;
      const double gap =
          early ? lognormal_gap(rng, scen.early_lognormal_sigma)
                : weibull_gap(rng, scen.interarrival_weibull_shape,
                              plan.weibull_scale);
      tau += gap;
      if (tau >= tau_end) break;
      now = grid.invert(tau_lo + tau / rate);

      // Section 4: pioneer systems initially recorded most causes as
      // unknown; the boost decays as administrators learn the platform.
      const double months_in =
          static_cast<double>(now - grid.start) / kSecondsPerMonth;
      const double unknown_boost =
          scen.early_unknown_boost *
          std::max(0.0, 1.0 - months_in / scen.unknown_decay_months);

      FailureRecord primary;
      primary.system_id = sys.id;
      primary.node_id = node;
      primary.start = now;
      primary.workload = sys.workload_of(node);
      if (rng.bernoulli(unknown_boost)) {
        primary.cause = RootCause::unknown;
        primary.detail = DetailCause::undetermined;
      } else {
        primary.cause = sample_cause(rng, profile);
        primary.detail = sample_detail(rng, profile, primary.cause);
      }
      primary.end = now + sample_repair_seconds(rng, profile, primary.cause);
      records.push_back(primary);

      // Correlated multi-node events: a site-level incident (power,
      // interconnect fabric) takes down additional nodes at the same
      // instant.
      const double burst_p = early ? scen.early_burst_probability
                                   : scen.late_burst_probability;
      if (burst_p > 0.0 && rng.bernoulli(burst_p)) {
        const auto followers = 1 + rng.uniform_index(4);  // 1..4 nodes
        std::vector<int> candidates = nodes_in_production(sys, now, node);
        for (std::uint64_t k = 0;
             k < followers && !candidates.empty(); ++k) {
          const auto pick = rng.uniform_index(candidates.size());
          const int other = candidates[pick];
          candidates[pick] = candidates.back();
          candidates.pop_back();

          FailureRecord follower;
          follower.system_id = sys.id;
          follower.node_id = other;
          follower.start = now;
          follower.workload = sys.workload_of(other);
          if (rng.bernoulli(unknown_boost)) {
            follower.cause = RootCause::unknown;
            follower.detail = DetailCause::undetermined;
          } else {
            follower.cause = rng.bernoulli(0.5) ? RootCause::environment
                                                : RootCause::network;
            follower.detail = sample_detail(rng, profile, follower.cause);
          }
          follower.end =
              now + sample_repair_seconds(rng, profile, follower.cause);
          records.push_back(follower);
        }
      }
    }
  }
  return records;
}

// Shard size for splitting one system's nodes across workers. Small
// enough that a 1024-node system yields many shards to balance, large
// enough that per-shard overhead stays negligible.
constexpr int kShardNodes = 64;

struct NodeShard {
  const SystemPlan* plan = nullptr;
  int node_begin = 0;
  int node_end = 0;
};

void append_shards(const SystemPlan& plan, std::vector<NodeShard>& shards) {
  for (int b = 0; b < plan.sys->nodes; b += kShardNodes) {
    shards.push_back(
        {&plan, b, std::min(b + kShardNodes, plan.sys->nodes)});
  }
}

// Runs the shards on the shared pool and concatenates their records in
// shard order — the exact vector a sequential (system-order, node-order)
// loop builds, so the result is identical at any thread count.
//
// Each shard's wall time and record count go to the per-system obs
// histograms ("synth.shard_seconds{system=N}" / "synth.shard_records{...}");
// timing is measured around the deterministic generation, never fed back
// into it, so the output is bit-identical with obs on or off.
std::vector<FailureRecord> run_shards(const std::vector<NodeShard>& shards,
                                      std::uint64_t seed) {
  const bool observed = hpcfail::obs::enabled();
  auto parts = hpcfail::parallel_map(
      shards.size(), [&shards, seed, observed](std::size_t k) {
        const NodeShard& s = shards[k];
        if (!observed) {
          return generate_node_range(*s.plan, seed, s.node_begin,
                                     s.node_end);
        }
        const auto t0 = std::chrono::steady_clock::now();
        auto records =
            generate_node_range(*s.plan, seed, s.node_begin, s.node_end);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const std::string label =
            "{system=" + std::to_string(s.plan->sys->id) + "}";
        hpcfail::obs::Registry& reg = hpcfail::obs::registry();
        reg.histogram("synth.shard_seconds" + label).record(elapsed);
        reg.histogram("synth.shard_records" + label)
            .record(static_cast<double>(records.size()));
        return records;
      });
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  if (observed) {
    hpcfail::obs::registry().counter("synth.records_total").add(total);
  }
  std::vector<FailureRecord> all;
  all.reserve(total);
  for (auto& part : parts) {
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

}  // namespace

TraceGenerator::TraceGenerator(const trace::SystemCatalog& catalog,
                               ScenarioConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  HPCFAIL_EXPECTS(!config_.systems.empty(),
                  "scenario must configure at least one system");
  for (const SystemScenario& s : config_.systems) {
    HPCFAIL_EXPECTS(catalog_.contains(s.system_id),
                    "scenario references a system missing from the catalog");
    HPCFAIL_EXPECTS(s.failures_per_year > 0.0,
                    "failures_per_year must be positive");
    HPCFAIL_EXPECTS(s.interarrival_weibull_shape > 0.0,
                    "interarrival Weibull shape must be positive");
    HPCFAIL_EXPECTS(s.early_lognormal_sigma > 0.0,
                    "early lognormal sigma must be positive");
    HPCFAIL_EXPECTS(
        s.early_burst_probability >= 0.0 && s.early_burst_probability < 1.0,
        "burst probability must be in [0,1)");
    HPCFAIL_EXPECTS(
        s.late_burst_probability >= 0.0 && s.late_burst_probability < 1.0,
        "burst probability must be in [0,1)");
    HPCFAIL_EXPECTS(
        s.early_unknown_boost >= 0.0 && s.early_unknown_boost <= 1.0,
        "unknown boost must be in [0,1]");
    HPCFAIL_EXPECTS(s.unknown_decay_months > 0.0,
                    "unknown decay window must be positive");
  }
}

std::vector<FailureRecord> TraceGenerator::generate_system(
    int system_id) const {
  const SystemScenario* scen = nullptr;
  for (const SystemScenario& s : config_.systems) {
    if (s.system_id == system_id) {
      scen = &s;
      break;
    }
  }
  HPCFAIL_EXPECTS(scen != nullptr, "system not present in the scenario");

  obs::Span span("synth.generate_system");
  const SystemPlan plan =
      build_plan(config_.seed, catalog_.system(system_id), *scen);
  std::vector<NodeShard> shards;
  append_shards(plan, shards);
  return run_shards(shards, config_.seed);
}

trace::FailureDataset TraceGenerator::generate() const {
  // Plans (hourly intensity grid, per-node weights, calibration) are
  // cheap; build them up front so the expensive event generation can fan
  // out per (system, node-range) shard across the shared pool. run_shards
  // concatenates in (scenario order, node order) — the same vector the
  // sequential path builds — so output is bit-identical at any thread
  // count.
  obs::Span span("synth.generate");
  obs::StageTimer stage("synth.generate");
  std::vector<SystemPlan> plans;
  plans.reserve(config_.systems.size());
  for (const SystemScenario& s : config_.systems) {
    plans.push_back(build_plan(config_.seed, catalog_.system(s.system_id), s));
  }
  std::vector<NodeShard> shards;
  for (const SystemPlan& plan : plans) append_shards(plan, shards);
  trace::FailureDataset dataset(run_shards(shards, config_.seed));
  stage.stop();
  if (obs::enabled() && stage.wall_seconds() > 0.0) {
    obs::registry()
        .gauge("synth.generate.records_per_sec")
        .set(static_cast<double>(dataset.size()) / stage.wall_seconds());
  }
  return dataset;
}

trace::FailureDataset generate_lanl_trace(std::uint64_t seed) {
  const TraceGenerator generator(trace::SystemCatalog::lanl(),
                                 lanl_scenario(seed));
  return generator.generate();
}

}  // namespace hpcfail::synth
