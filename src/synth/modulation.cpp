#include "synth/modulation.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hpcfail::synth {

double diurnal_factor(int hour) {
  HPCFAIL_EXPECTS(hour >= 0 && hour <= 23, "hour must be in 0..23");
  constexpr double kAmplitude = 0.34;  // peak/trough = 1.34/0.66 ~ 2
  constexpr double kPeakHour = 14.0;
  return 1.0 + kAmplitude *
                   std::cos(2.0 * 3.14159265358979323846 *
                            (static_cast<double>(hour) - kPeakHour) / 24.0);
}

double weekly_factor(int day_of_week) {
  HPCFAIL_EXPECTS(day_of_week >= 0 && day_of_week <= 6,
                  "day_of_week must be in 0..6");
  // (5 * 1.14 + 2 * 0.65) / 7 = 1.0: mean-1 with weekday/weekend ~ 1.75.
  return (day_of_week == 0 || day_of_week == 6) ? 0.65 : 1.14;
}

double workload_modulation(Seconds t) {
  return diurnal_factor(hour_of_day(t)) * weekly_factor(day_of_week(t));
}

double lifecycle_factor(const Lifecycle& lifecycle, double months) {
  if (months < 0.0) months = 0.0;
  switch (lifecycle.shape) {
    case LifecycleShape::burn_in:
      return 1.0 + lifecycle.amplitude * std::exp(-months /
                                                  lifecycle.tau_months);
    case LifecycleShape::ramp_up: {
      const double x = months / lifecycle.peak_month;
      return lifecycle.low + (lifecycle.peak - lifecycle.low) * x * x *
                                 std::exp(2.0 * (1.0 - x));
    }
  }
  throw InvalidArgument("invalid LifecycleShape");
}

}  // namespace hpcfail::synth
