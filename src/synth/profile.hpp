// Per-hardware-type failure profiles: the root-cause mixtures of Fig 1,
// the detailed-cause findings of Section 4 (memory dominant everywhere,
// the type-E CPU design flaw, per-type top software causes), and
// repair-time moments per cause anchored to Table 2 with the per-type
// scaling of Fig 7(b)/(c).
#pragma once

#include <array>
#include <utility>
#include <vector>

#include "trace/types.hpp"

namespace hpcfail::synth {

/// Lognormal repair-time moments in minutes (Table 2's units). The
/// generator converts these to a LogNormal via mean/median matching.
struct RepairMoments {
  double mean_minutes = 0.0;
  double median_minutes = 0.0;
};

/// Discrete mixture over detailed causes, conditional on one high-level
/// cause. Weights need not be normalized.
using DetailMix = std::vector<std::pair<trace::DetailCause, double>>;

struct HardwareProfile {
  char hw_type = '?';

  /// Probability of each high-level root cause, indexed in the order of
  /// trace::kAllRootCauses (hardware, software, network, environment,
  /// human, unknown). Sums to 1.
  std::array<double, 6> cause_mix{};

  /// Detailed-cause mixtures per high-level cause (same index order).
  std::array<DetailMix, 6> detail_mix{};

  /// Repair moments per high-level cause (same index order).
  std::array<RepairMoments, 6> repair{};
};

/// Index of a cause in the profile arrays (= trace::cause_index).
using trace::cause_index;

/// The profile for hardware type 'A'..'H'. Throws InvalidArgument for an
/// unknown type. Returned reference is to an immutable singleton.
const HardwareProfile& profile_for(char hw_type);

}  // namespace hpcfail::synth
