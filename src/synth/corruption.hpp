// Data-quality corruption injector for robustness testing.
//
// Section 2.3 discusses the limits of operator-entered data (under-
// reporting, misdiagnosis). This module deliberately damages a clean
// synthetic trace in controlled ways so the validation and ingest layers
// can be tested against realistic dirt -- records dropped, repairs
// stretched into overlaps, causes relabeled as unknown, ids corrupted.
#pragma once

#include <cstdint>

#include "trace/dataset.hpp"

namespace hpcfail::synth {

struct CorruptionConfig {
  std::uint64_t seed = 1;
  double drop_probability = 0.0;         ///< silently lose records
  double relabel_unknown_probability = 0.0;  ///< cause -> unknown
  double stretch_repair_probability = 0.0;   ///< multiply a repair by 50x
  double corrupt_node_probability = 0.0;     ///< node id pushed out of range
};

/// Returns a damaged copy of `dataset`. Corruptions are independent per
/// record and deterministic given the seed. The result intentionally may
/// violate catalog invariants (that is the point) but every record still
/// satisfies FailureRecord::is_consistent(), so it survives dataset
/// construction and must be caught by trace::validate instead.
trace::FailureDataset corrupt(const trace::FailureDataset& dataset,
                              const CorruptionConfig& config);

}  // namespace hpcfail::synth
