// Failure-intensity modulation in time, encoding three findings of
// Section 5.2:
//   * failure rates correlate with workload intensity: ~2x higher during
//     peak daytime hours than at night, and nearly 2x higher on weekdays
//     than weekends (Fig 5);
//   * over a system's lifetime the rate follows one of two shapes (Fig 4):
//     an infant-mortality "burn-in" decay (types E/F), or a slow ramp to a
//     peak near month 20 followed by decay (types D/G, the site's first
//     clusters of their kind).
// All factors are dimensionless multipliers with mean approximately 1, so
// the generator's base-rate calibration stays interpretable.
#pragma once

#include "common/time.hpp"

namespace hpcfail::synth {

/// Daytime/night workload factor; peaks at 14:00 with peak/trough ratio
/// ~2 (Fig 5 left). `hour` in 0..23; throws InvalidArgument otherwise.
double diurnal_factor(int hour);

/// Weekday/weekend workload factor, ratio ~1.8 (Fig 5 right).
/// `day_of_week` with 0 = Sunday; throws InvalidArgument outside 0..6.
double weekly_factor(int day_of_week);

/// Combined workload modulation at an absolute instant.
double workload_modulation(Seconds t);

/// The two lifetime shapes of Fig 4.
enum class LifecycleShape {
  burn_in,  ///< high infant mortality decaying within months (Fig 4a)
  ramp_up,  ///< slow rise to a peak near month ~20, then decay (Fig 4b)
};

/// Parameters of a lifecycle intensity curve.
struct Lifecycle {
  LifecycleShape shape = LifecycleShape::burn_in;
  // burn_in: factor(m) = 1 + amplitude * exp(-m / tau_months)
  double amplitude = 3.0;
  double tau_months = 3.0;
  // ramp_up: factor(m) = low + (peak - low) * (m/peak_month)^2
  //                        * exp(2 * (1 - m/peak_month))
  double low = 0.35;
  double peak = 2.6;
  double peak_month = 20.0;
};

/// Lifecycle factor at `months` since production start (fractional months
/// allowed; months < 0 is clamped to 0).
double lifecycle_factor(const Lifecycle& lifecycle, double months);

}  // namespace hpcfail::synth
