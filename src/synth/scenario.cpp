#include "synth/scenario.hpp"

#include "trace/catalog.hpp"

namespace hpcfail::synth {

namespace {

Lifecycle burn_in(double amplitude = 3.0, double tau_months = 3.0) {
  Lifecycle lc;
  lc.shape = LifecycleShape::burn_in;
  lc.amplitude = amplitude;
  lc.tau_months = tau_months;
  return lc;
}

Lifecycle ramp_up() {
  Lifecycle lc;
  lc.shape = LifecycleShape::ramp_up;
  lc.low = 0.35;
  lc.peak = 2.6;
  lc.peak_month = 20.0;
  return lc;
}

SystemScenario base_scenario(int id, double per_year, Lifecycle lc) {
  SystemScenario s;
  s.system_id = id;
  s.failures_per_year = per_year;
  s.lifecycle = lc;
  s.late_burst_probability = 0.01;
  return s;
}

// The first-of-their-kind systems (type D's first big SMP cluster, type
// G's first NUMA clusters) had a painful multi-year shakeout: rising
// failure rates for ~20 months (Fig 4b), very high early variability and
// frequent simultaneous multi-node failures (Fig 6a/6c).
SystemScenario pioneer_scenario(int id, double per_year,
                                Seconds early_era_end,
                                double burst_probability) {
  SystemScenario s = base_scenario(id, per_year, ramp_up());
  s.early_era_end = early_era_end;
  s.early_burst_probability = burst_probability;
  // Fig 6(a): per-node interarrival C^2 of ~3.9 in the early years.
  s.early_lognormal_sigma = 1.9;
  // Section 4: ">90% unknown root causes initially, <10% within 2 years".
  s.early_unknown_boost = 0.9;
  s.unknown_decay_months = 24.0;
  return s;
}

}  // namespace

ScenarioConfig lanl_scenario(std::uint64_t seed) {
  const auto ym = [](int year, int month) {
    return hpcfail::to_epoch(year, month, 1);
  };
  ScenarioConfig cfg;
  cfg.seed = seed;
  auto& v = cfg.systems;
  v.reserve(22);

  // Small single-node systems (types A-C). System 2 is the paper's quoted
  // minimum of 17 failures/year.
  v.push_back(base_scenario(1, 20.0, burn_in()));
  v.push_back(base_scenario(2, 17.0, burn_in()));
  v.push_back(base_scenario(3, 8.0, burn_in()));

  // System 4 (type D): pioneer shape; early era through 2002. An SMP
  // cluster, so site-wide simultaneous failures were rarer than on the
  // tightly-coupled NUMA machines.
  {
    // The type D shakeout was shorter than type G's: "initially the
    // number of unknown root causes was high, but then quickly dropped".
    SystemScenario s = pioneer_scenario(4, 250.0, ym(2003, 1), 0.10);
    s.early_unknown_boost = 0.6;
    s.unknown_decay_months = 12.0;
    v.push_back(s);
  }

  // Type E clusters. Systems 5-6 were the first of the type and carry a
  // stronger burn-in (footnote 3); system 7 is the paper's quoted maximum
  // of 1159 failures/year.
  v.push_back(base_scenario(5, 460.0, burn_in(5.0, 3.0)));
  v.push_back(base_scenario(6, 230.0, burn_in(5.0, 3.0)));
  v.push_back(base_scenario(7, 1159.0, burn_in()));
  v.push_back(base_scenario(8, 1050.0, burn_in()));
  v.push_back(base_scenario(9, 140.0, burn_in()));
  v.push_back(base_scenario(10, 140.0, burn_in()));
  v.push_back(base_scenario(11, 140.0, burn_in()));
  v.push_back(base_scenario(12, 38.0, burn_in()));

  // Type F clusters.
  v.push_back(base_scenario(13, 90.0, burn_in()));
  v.push_back(base_scenario(14, 180.0, burn_in()));
  v.push_back(base_scenario(15, 180.0, burn_in()));
  v.push_back(base_scenario(16, 180.0, burn_in()));
  v.push_back(base_scenario(17, 180.0, burn_in()));
  v.push_back(base_scenario(18, 360.0, burn_in()));

  // Type G NUMA systems. 19 and 20 are pioneers with early eras spanning
  // their first ~3 years; system 21 arrived two years later and behaves
  // like a conventional burn-in system (Section 5.2).
  v.push_back(pioneer_scenario(19, 500.0, ym(2000, 1), 0.30));
  v.push_back(pioneer_scenario(20, 650.0, ym(2000, 1), 0.30));
  v.push_back(base_scenario(21, 100.0, burn_in()));

  // System 22 (type H), one year of production.
  v.push_back(base_scenario(22, 90.0, burn_in()));
  return cfg;
}

}  // namespace hpcfail::synth
