// Per-study synthetic site profiles (ROADMAP item 4): generators
// calibrated to the published statistics of the foreign failure studies
// the adapter layer ingests — failure rate per processor-year, Weibull
// interarrival shape, lognormal repair moments, and root-cause mix. Each
// profile gives its adapter an unbounded self-describing test corpus:
// generate_site_trace() draws per-node Weibull renewal processes plus
// lognormal repairs deterministically from (profile, seed), and the
// calibration oracles (tests/calibration/site_calibration_test.cpp)
// verify the fitted parameters recover the published anchors within the
// tolerances recorded in EXPERIMENTS.md.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/time.hpp"
#include "synth/profile.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::synth {

/// One study's published statistics, plus the system geometry the rates
/// are normalized by.
struct SiteProfile {
  std::string_view name;    ///< registry key; also the adapter name
  std::string_view study;   ///< citation (shown in reports and docs)
  std::string_view format;  ///< native foreign format (adapter name)

  int system_id = 1;
  int nodes = 0;
  int procs = 0;
  Seconds start = 0;            ///< observation window start
  double duration_years = 0.0;  ///< observation window length

  double failures_per_proc_year = 0.0;  ///< published rate anchor
  double weibull_shape = 0.0;           ///< interarrival shape anchor
  RepairMoments repair;                 ///< lognormal moment anchors (min)

  /// Root-cause probabilities, kAllRootCauses order; sums to 1.
  std::array<double, 6> cause_mix{};

  /// Detailed-cause mixtures per high-level cause (same index order).
  std::array<DetailMix, 6> detail_mix{};
};

/// Every registered site profile, ascending by name ("lu", "mistral",
/// "tan"). Immutable singletons.
std::span<const SiteProfile* const> all_site_profiles() noexcept;

/// The registered names joined with ", " (for --help and errors).
std::string site_profile_names();

/// Looks a profile up by name. Throws ValidationError listing the known
/// names on a miss.
const SiteProfile& site_profile(std::string_view name);

/// Generates a trace from the profile: per-node Weibull renewal
/// interarrivals (scale chosen so the mean gap matches the published
/// per-processor rate), lognormal repairs from the published
/// mean/median, and categorical cause/detail draws from the mixes.
/// Deterministic in (profile, seed, duration_scale); independent
/// per-node streams via mix_seed. `duration_scale` stretches the
/// observation window (the calibration oracles use > 1 to tighten
/// estimator tolerances). Throws InvalidArgument on a non-positive
/// scale.
trace::FailureDataset generate_site_trace(const SiteProfile& profile,
                                          std::uint64_t seed,
                                          double duration_scale = 1.0);

}  // namespace hpcfail::synth
