#include "synth/corruption.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpcfail::synth {

trace::FailureDataset corrupt(const trace::FailureDataset& dataset,
                              const CorruptionConfig& config) {
  for (const double p :
       {config.drop_probability, config.relabel_unknown_probability,
        config.stretch_repair_probability,
        config.corrupt_node_probability}) {
    HPCFAIL_EXPECTS(p >= 0.0 && p <= 1.0,
                    "corruption probabilities must be in [0,1]");
  }
  hpcfail::Rng rng(config.seed);
  std::vector<trace::FailureRecord> out;
  out.reserve(dataset.size());
  for (trace::FailureRecord r : dataset.records()) {
    if (rng.bernoulli(config.drop_probability)) continue;
    if (rng.bernoulli(config.relabel_unknown_probability)) {
      r.cause = trace::RootCause::unknown;
      r.detail = trace::DetailCause::undetermined;
    }
    if (rng.bernoulli(config.stretch_repair_probability)) {
      r.end = r.start + r.downtime_seconds() * 50;
    }
    if (rng.bernoulli(config.corrupt_node_probability)) {
      r.node_id += 100000;  // clearly out of any system's range
    }
    out.push_back(r);
  }
  return trace::FailureDataset(std::move(out));
}

}  // namespace hpcfail::synth
