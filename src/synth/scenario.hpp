// Scenario configuration: per-system failure-rate targets, lifecycle
// shapes, and interarrival-process character, plus the calibrated LANL
// scenario that reproduces the paper's reported statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "synth/modulation.hpp"

namespace hpcfail::synth {

/// Generation parameters for one system.
struct SystemScenario {
  int system_id = 0;

  /// Average failures per year over the system's production time
  /// (Fig 2a's y-axis). The generator calibrates its base intensity so the
  /// expected total matches failures_per_year * production_years.
  double failures_per_year = 100.0;

  /// Lifetime shape (Fig 4).
  Lifecycle lifecycle{};

  /// Absolute end of the system's "early era". Before it, interarrivals
  /// are lognormal-like with high variability and simultaneous multi-node
  /// failures are common (Fig 6a/6c); after it, Weibull renewals with
  /// decreasing hazard (Fig 6b/6d). Set <= production start to disable.
  Seconds early_era_end = 0;

  /// Probability that a failure is a correlated multi-node event, per era.
  double early_burst_probability = 0.0;
  double late_burst_probability = 0.0;

  /// Weibull shape of late-era operational-time interarrivals (the paper
  /// reports fitted shapes of 0.7-0.8).
  double interarrival_weibull_shape = 0.75;

  /// Lognormal sigma of early-era operational-time interarrivals (C^2 of
  /// 3.9 at node 22 of system 20 early on corresponds to sigma ~ 1.25).
  double early_lognormal_sigma = 1.25;

  /// Extra probability that a failure's root cause is recorded as
  /// "unknown", at its maximum on the system's first day and decaying
  /// linearly to zero over unknown_decay_months. Models Section 4's
  /// observation that the pioneer systems started with >90% unknown
  /// causes, dropping within ~2 years as administrators learned the
  /// platform.
  double early_unknown_boost = 0.0;
  double unknown_decay_months = 24.0;

  /// Multiplicative lognormal sigma of per-node rate heterogeneity among
  /// compute nodes (Fig 3b: per-node counts are overdispersed vs Poisson).
  double node_jitter_sigma = 0.25;

  /// Rate multipliers for non-compute workloads (Section 5.1: graphics
  /// nodes 21-23 hold 20% of system 20's failures with 6% of its nodes;
  /// E/F front-end nodes fail much more often than compute nodes).
  double graphics_factor = 3.8;
  double frontend_factor = 2.5;
};

/// A full generation scenario: one entry per system plus the master seed.
struct ScenarioConfig {
  std::uint64_t seed = 42;
  std::vector<SystemScenario> systems;
};

/// The calibrated 22-system LANL scenario (see DESIGN.md for the
/// calibration targets). Systems 2 and 7 are pinned to the paper's quoted
/// extremes (17 and 1159 failures/year).
ScenarioConfig lanl_scenario(std::uint64_t seed = 42);

}  // namespace hpcfail::synth
