#include "trace/io.hpp"

#include <fstream>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "trace/source.hpp"

namespace hpcfail::trace {

const char* const kCsvHeader = "system,node,start,end,workload,cause,detail";

void write_csv(std::ostream& out, const FailureDataset& dataset) {
  out << kCsvHeader << '\n';
  CsvWriter writer(out);
  for (const FailureRecord& r : dataset.records()) {
    writer.write_row({
        std::to_string(r.system_id),
        std::to_string(r.node_id),
        format_timestamp(r.start),
        format_timestamp(r.end),
        to_string(r.workload),
        to_string(r.cause),
        to_string(r.detail),
    });
  }
}

void write_csv_file(const std::string& path, const FailureDataset& dataset) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  write_csv(out, dataset);
  if (!out) throw IoError("write failed for '" + path + "'");
}

FailureDataset read_csv(std::istream& in) {
  // Thin wrapper over the strict CsvSource: identical header checks,
  // error messages, and blank-line handling as the historical inline
  // parser (see trace/source.cpp).
  CsvSource source(in, CsvSource::OnError::throw_);
  std::vector<FailureRecord> records;
  FailureRecord r;
  while (source.next(r) == SourceStatus::event) records.push_back(r);
  return FailureDataset(std::move(records));
}

FailureDataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return read_csv(in);
}

}  // namespace hpcfail::trace
