#include "trace/io.hpp"

#include <fstream>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpcfail::trace {

const char* const kCsvHeader = "system,node,start,end,workload,cause,detail";

void write_csv(std::ostream& out, const FailureDataset& dataset) {
  out << kCsvHeader << '\n';
  CsvWriter writer(out);
  for (const FailureRecord& r : dataset.records()) {
    writer.write_row({
        std::to_string(r.system_id),
        std::to_string(r.node_id),
        format_timestamp(r.start),
        format_timestamp(r.end),
        to_string(r.workload),
        to_string(r.cause),
        to_string(r.detail),
    });
  }
}

void write_csv_file(const std::string& path, const FailureDataset& dataset) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  write_csv(out, dataset);
  if (!out) throw IoError("write failed for '" + path + "'");
}

FailureDataset read_csv(std::istream& in) {
  CsvReader reader(in);
  std::vector<std::string> row;
  if (!reader.next_row(row)) {
    throw ParseError("empty trace file (missing header)");
  }
  {
    std::string joined;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) joined += ',';
      joined += trim(row[i]);
    }
    if (joined != kCsvHeader) {
      throw ParseError("unexpected trace header: '" + joined + "'");
    }
  }

  std::vector<FailureRecord> records;
  while (reader.next_row(row)) {
    const std::size_t line = reader.line_number();
    if (row.size() == 1 && trim(row[0]).empty()) continue;  // blank line
    if (row.size() != 7) {
      throw ParseError("line " + std::to_string(line) + ": expected 7 " +
                       "fields, got " + std::to_string(row.size()));
    }
    try {
      FailureRecord r;
      r.system_id = static_cast<int>(parse_i64(trim(row[0])));
      r.node_id = static_cast<int>(parse_i64(trim(row[1])));
      r.start = parse_timestamp(trim(row[2]));
      r.end = parse_timestamp(trim(row[3]));
      r.workload = workload_from_string(row[4]);
      r.cause = root_cause_from_string(row[5]);
      r.detail = detail_cause_from_string(row[6]);
      if (!r.is_consistent()) {
        throw ParseError("inconsistent record (end < start, bad ids, or "
                         "cause/detail mismatch)");
      }
      records.push_back(r);
    } catch (const ParseError& e) {
      throw ParseError("line " + std::to_string(line) + ": " + e.what());
    }
  }
  return FailureDataset(std::move(records));
}

FailureDataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return read_csv(in);
}

}  // namespace hpcfail::trace
