// FailureDataset: an immutable, start-time-sorted collection of failure
// records with the extraction views every analysis needs — per-node and
// system-wide interarrival times (Section 5.3's two views of the failure
// process), repair-time samples, and per-node counts.
//
// Storage is columnar (trace/columns.hpp): the dataset owns one
// ColumnStore, records() exposes it as a ColumnsView, and the numeric
// extractors (repair times, downtime totals) run as fused passes over the
// start/end columns instead of per-record helper calls. Row-oriented
// callers still iterate FailureRecord values; AoS vectors are
// reconstituted only at the edges (CSV I/O, golden snapshots).
//
// Querying goes through the zero-copy view layer (trace/index.hpp):
// view() exposes column-backed slices and indexed extractors over a
// DatasetIndex that is built lazily, once per dataset. The original
// copying query methods are gone; callers narrow a view() and
// materialize() only when they need a standalone dataset.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/columns.hpp"
#include "trace/record.hpp"

namespace hpcfail::trace {

class DatasetIndex;
class DatasetView;

class FailureDataset {
 public:
  /// Takes ownership of the records and sorts them by (start, system,
  /// node). Throws InvalidArgument if any record has end < start or a
  /// cause/detail mismatch; the offending index is reported.
  explicit FailureDataset(std::vector<FailureRecord> records);

  /// Takes ownership of already-columnar storage — the zero-copy path the
  /// trace generator feeds. Validation is one fused pass over the columns
  /// (same per-row rule and error message as the record constructor);
  /// columns that arrive (start, system, node)-sorted are adopted as-is,
  /// anything else is sorted through a one-time AoS round trip.
  static FailureDataset from_columns(ColumnStore columns);

  /// The empty dataset.
  FailureDataset();
  ~FailureDataset();

  /// Copies columns only; the copy builds its own index on first use.
  FailureDataset(const FailureDataset& other);
  FailureDataset& operator=(const FailureDataset& other);
  /// Moving invalidates the source's index and any views borrowed from
  /// either object. The move itself holds both index mutexes, so it
  /// serializes against concurrent index()/view() calls — but views
  /// handed out *before* the move still dangle; callers must not use
  /// them afterwards.
  FailureDataset(FailureDataset&& other) noexcept;
  FailureDataset& operator=(FailureDataset&& other) noexcept;

  /// All records as a columnar view, (start, system, node)-sorted.
  /// Iterating yields FailureRecord values; column spans are available
  /// through the view's typed accessors.
  ColumnsView records() const noexcept { return ColumnsView(columns_); }

  /// The underlying column storage.
  const ColumnStore& columns() const noexcept { return columns_; }

  std::size_t size() const noexcept { return columns_.size(); }
  bool empty() const noexcept { return columns_.empty(); }

  /// The dataset's acceleration index, built on first use (thread-safe)
  /// and reused by every subsequent query.
  const DatasetIndex& index() const;

  /// Zero-copy root view over all records; the preferred query surface.
  /// Views borrow this dataset and must not outlive it (or survive a
  /// move/assignment of it).
  DatasetView view() const;

  /// Earliest start / latest end across all records. Throws on empty.
  Seconds first_start() const;
  Seconds last_end() const;

  /// New dataset with the records satisfying `keep` (records are copied;
  /// order is preserved, so the result is already sorted).
  FailureDataset filter(
      const std::function<bool(const FailureRecord&)>& keep) const;

  /// Repair times (end - start) in minutes, the unit of Table 2/Fig 7,
  /// over all records — one fused pass over the start/end columns.
  std::vector<double> repair_times_minutes() const;

  /// Distinct system ids present, ascending.
  std::vector<int> system_ids() const;

  /// Sum of downtime over all records, in minutes.
  double total_downtime_minutes() const noexcept;

 private:
  friend class DatasetView;  // materialize() rebuilds without revalidating

  /// Adopts columns that are already (start, system, node)-sorted and
  /// validated — the internal fast path behind filter()/materialize().
  static FailureDataset from_sorted_columns(ColumnStore columns);

  ColumnStore columns_;             // sorted by (start, system, node)
  mutable std::mutex index_mutex_;  // guards lazy index_ creation
  mutable std::unique_ptr<DatasetIndex> index_;
};

}  // namespace hpcfail::trace
