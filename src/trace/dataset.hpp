// FailureDataset: an immutable, start-time-sorted collection of failure
// records with the extraction views every analysis needs — per-node and
// system-wide interarrival times (Section 5.3's two views of the failure
// process), repair-time samples, and per-node counts.
//
// Querying goes through the zero-copy view layer (trace/index.hpp):
// view() exposes span-backed slices and indexed extractors over a
// DatasetIndex that is built lazily, once per dataset. The original
// copying query methods are gone; callers narrow a view() and
// materialize() only when they need a standalone dataset.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "trace/record.hpp"

namespace hpcfail::trace {

class DatasetIndex;
class DatasetView;

class FailureDataset {
 public:
  /// Takes ownership of the records and sorts them by (start, system,
  /// node). Throws InvalidArgument if any record has end < start or a
  /// cause/detail mismatch; the offending index is reported.
  explicit FailureDataset(std::vector<FailureRecord> records);

  /// The empty dataset.
  FailureDataset();
  ~FailureDataset();

  /// Copies records only; the copy builds its own index on first use.
  FailureDataset(const FailureDataset& other);
  FailureDataset& operator=(const FailureDataset& other);
  /// Moving invalidates the source's index and any views borrowed from
  /// either object. The move itself holds both index mutexes, so it
  /// serializes against concurrent index()/view() calls — but views
  /// handed out *before* the move still dangle; callers must not use
  /// them afterwards.
  FailureDataset(FailureDataset&& other) noexcept;
  FailureDataset& operator=(FailureDataset&& other) noexcept;

  std::span<const FailureRecord> records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  /// The dataset's acceleration index, built on first use (thread-safe)
  /// and reused by every subsequent query.
  const DatasetIndex& index() const;

  /// Zero-copy root view over all records; the preferred query surface.
  /// Views borrow this dataset and must not outlive it (or survive a
  /// move/assignment of it).
  DatasetView view() const;

  /// Earliest start / latest end across all records. Throws on empty.
  Seconds first_start() const;
  Seconds last_end() const;

  /// New dataset with the records satisfying `keep` (records are copied;
  /// order is preserved, so the result is already sorted).
  FailureDataset filter(
      const std::function<bool(const FailureRecord&)>& keep) const;

  /// Repair times (end - start) in minutes, the unit of Table 2/Fig 7,
  /// over all records in the dataset.
  std::vector<double> repair_times_minutes() const;

  /// Distinct system ids present, ascending.
  std::vector<int> system_ids() const;

  /// Sum of downtime over all records, in minutes.
  double total_downtime_minutes() const noexcept;

 private:
  friend class DatasetView;  // materialize() rebuilds without revalidating

  /// Adopts records that are already (start, system, node)-sorted and
  /// validated — the internal fast path behind filter()/materialize().
  static FailureDataset from_sorted(std::vector<FailureRecord> records);

  std::vector<FailureRecord> records_;  // sorted by (start, system, node)
  mutable std::mutex index_mutex_;      // guards lazy index_ creation
  mutable std::unique_ptr<DatasetIndex> index_;
};

}  // namespace hpcfail::trace
