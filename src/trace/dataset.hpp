// FailureDataset: an immutable, start-time-sorted collection of failure
// records with the extraction views every analysis needs — per-node and
// system-wide interarrival times (Section 5.3's two views of the failure
// process), repair-time samples, and per-node counts.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "trace/record.hpp"

namespace hpcfail::trace {

class FailureDataset {
 public:
  /// Takes ownership of the records and sorts them by (start, system,
  /// node). Throws InvalidArgument if any record has end < start or a
  /// cause/detail mismatch; the offending index is reported.
  explicit FailureDataset(std::vector<FailureRecord> records);

  /// The empty dataset.
  FailureDataset() = default;

  std::span<const FailureRecord> records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  /// Earliest start / latest end across all records. Throws on empty.
  Seconds first_start() const;
  Seconds last_end() const;

  /// New dataset with the records satisfying `keep` (records are copied;
  /// order is preserved, so the result is already sorted).
  FailureDataset filter(
      const std::function<bool(const FailureRecord&)>& keep) const;

  /// Records of one system.
  FailureDataset for_system(int system_id) const;

  /// Records inside [from, to).
  FailureDataset between(Seconds from, Seconds to) const;

  /// Time between consecutive failures *of one node*, in seconds
  /// (Section 5.3 view (i)). Empty when the node has fewer than 2 records.
  std::vector<double> node_interarrivals(int system_id, int node_id) const;

  /// Time between consecutive failures anywhere in one system, in seconds
  /// (Section 5.3 view (ii)). Simultaneous failures yield exact zeros.
  std::vector<double> system_interarrivals(int system_id) const;

  /// Repair times (end - start) in minutes, the unit of Table 2/Fig 7,
  /// over all records in the dataset.
  std::vector<double> repair_times_minutes() const;

  /// Number of failures per node of one system (nodes with zero failures
  /// are absent; callers that need zeros consult the catalog).
  std::map<int, std::size_t> failures_per_node(int system_id) const;

  /// Distinct system ids present, ascending.
  std::vector<int> system_ids() const;

  /// Sum of downtime over all records, in minutes.
  double total_downtime_minutes() const noexcept;

 private:
  std::vector<FailureRecord> records_;  // sorted by (start, system, node)
};

}  // namespace hpcfail::trace
