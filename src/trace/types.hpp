// Failure-record vocabulary, mirroring the public LANL release.
//
// Root causes fall into the six high-level categories of Section 2.3
// (human, environment, network, software, hardware, unknown). The release
// also carries detailed root-cause strings (99 distinct hardware categories
// alone); we model the detailed level with the specific causes the paper
// discusses plus catch-alls, which is the granularity every analysis needs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace hpcfail::trace {

/// High-level root-cause categories (Section 2.3). The explicit one-byte
/// underlying type keeps the columnar trace layout (trace/columns.hpp) at
/// one byte per categorical column instead of four.
enum class RootCause : std::uint8_t {
  hardware,
  software,
  network,
  environment,
  human,
  unknown,
};

inline constexpr std::array<RootCause, 6> kAllRootCauses = {
    RootCause::hardware, RootCause::software,    RootCause::network,
    RootCause::environment, RootCause::human,    RootCause::unknown,
};

/// Detailed root causes the paper's Section 4 discusses explicitly.
enum class DetailCause : std::uint8_t {
  // hardware
  memory_dimm,        ///< the most common low-level cause in every system
  cpu,                ///< dominant in type E (design flaw, >50% of failures)
  node_interconnect,
  power_supply,
  disk,
  other_hardware,
  // software
  operating_system,   ///< top software cause for system E
  parallel_fs,        ///< top software cause for system F
  scheduler,          ///< top software cause for system H
  other_software,     ///< unspecified software (common for D and G)
  // network
  network_switch,
  nic,
  // environment (the release has exactly two)
  power_outage,
  ac_failure,
  // human
  operator_error,
  // unknown
  undetermined,
};

/// Workload running on the failed node (Section 2.3).
enum class Workload : std::uint8_t {
  compute,
  graphics,
  frontend,
};

/// The high-level category a detailed cause belongs to.
RootCause category_of(DetailCause detail) noexcept;

/// Stable index of a cause in kAllRootCauses order (hardware=0 ...
/// unknown=5); used wherever per-cause arrays appear.
std::size_t cause_index(RootCause cause) noexcept;

std::string to_string(RootCause cause);
std::string to_string(DetailCause detail);
std::string to_string(Workload workload);

/// Inverse of to_string (case-insensitive). Throws ParseError on unknown
/// spellings.
RootCause root_cause_from_string(std::string_view text);
DetailCause detail_cause_from_string(std::string_view text);
Workload workload_from_string(std::string_view text);

}  // namespace hpcfail::trace
