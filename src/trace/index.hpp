// Zero-copy query surface over a FailureDataset.
//
// Every analyzer reproducing Figs 1-7 funnels through the same handful of
// extractions — "one system's records", "a time window", "one node's
// interarrival times" — and the original FailureDataset answered each by
// re-scanning and deep-copying the whole trace. At the 23k-record LANL
// scale that was invisible; at the millions-of-records traces the roadmap
// targets it dominates every pipeline stage (the per-node Fig 6 sweep was
// O(records x nodes)).
//
// DatasetIndex is built once per dataset (lazily, see
// FailureDataset::view()) and holds three structures:
//
//   * the base view: the dataset's columns, globally start-sorted, so any
//     time window is a contiguous range found by binary search over the
//     start column;
//   * a per-system contiguous partition: the columns re-grouped by system
//     (start-sorted within each system), so one system's records are one
//     column range;
//   * per-(system, node) posting lists: each node's failure start times,
//     ascending, so per-node interarrival extraction never rescans.
//
// DatasetView is a cheap value type (a ColumnsView plus scope metadata)
// backed by the index. for_system()/between() return narrower views in
// O(log n) without copying a record; the grouped extractor
// node_interarrival_groups() produces *all* nodes' interarrival vectors in
// one sweep over the posting lists. Views borrow the dataset: they are
// invalidated when the dataset is destroyed, moved, or assigned.
//
// Index construction parallelizes over systems on the shared thread pool
// and is deterministic at any thread count. Build time is exported as the
// obs gauge "dataset.index_build_ms"; every view-producing query counts
// into "dataset.view_hits".
//
// Memory cost: the per-system partition stores a columnar copy of every
// record and the posting lists store one Seconds per record, so an indexed
// dataset occupies roughly twice the raw trace. The duplication is what
// makes per-system views contiguous (a column range cannot express a
// permutation); callers that never query can avoid it entirely by not
// calling view()/index(), since the index is built lazily.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "trace/columns.hpp"
#include "trace/dataset.hpp"
#include "trace/record.hpp"

namespace hpcfail::obs {
class Counter;
}  // namespace hpcfail::obs

namespace hpcfail::trace {

class DatasetIndex;

/// One node's interarrival sample, as produced by the grouped extractor.
struct NodeInterarrivalGroup {
  int node_id = 0;
  std::vector<double> gaps_seconds;  ///< consecutive-failure gaps, ordered
};

/// A non-owning, start-sorted slice of a dataset: all records, one
/// system, a time window, or both. Copying a view copies a few pointers.
class DatasetView {
 public:
  /// The empty view (no index, no records).
  DatasetView() = default;

  /// The records in this view, start-ascending, as a columnar view.
  /// Iteration yields FailureRecord values; starts()/ends()/causes()...
  /// expose the raw column spans.
  ColumnsView records() const noexcept { return view_; }
  std::size_t size() const noexcept { return view_.size(); }
  bool empty() const noexcept { return view_.empty(); }

  /// The system this view is scoped to, if any.
  std::optional<int> system() const noexcept { return system_; }

  /// Earliest start / latest end in the view. Throw on an empty view.
  Seconds first_start() const;
  Seconds last_end() const;

  /// This view narrowed to one system, in O(log n). On a view already
  /// scoped to a different system the result is empty.
  DatasetView for_system(int system_id) const;

  /// This view narrowed to records with start in [from, to), in
  /// O(log n). An inverted window (from >= to) yields an empty view;
  /// callers that consider that an error validate before narrowing.
  DatasetView between(Seconds from, Seconds to) const;

  /// Gaps between consecutive failures of one node, in seconds (Section
  /// 5.3 view (i)). Requires a system-scoped view; O(log n + gaps) via
  /// the node's posting list.
  std::vector<double> node_interarrivals(int node_id) const;

  /// Gaps between consecutive failures anywhere in the view's system, in
  /// seconds (Section 5.3 view (ii)). Requires a system-scoped view.
  /// Simultaneous failures yield exact zeros.
  std::vector<double> system_interarrivals() const;

  /// The single-pass grouped form of node_interarrivals(): every node's
  /// interarrival vector (nodes with fewer than `min_gaps` gaps omitted),
  /// ascending node id, in one sweep over the posting lists. Replaces the
  /// O(records x nodes) per-node rescan. Requires a system-scoped view.
  std::vector<NodeInterarrivalGroup> node_interarrival_groups(
      std::size_t min_gaps = 0) const;

  /// Failure count per node of the view's system (zero-failure nodes are
  /// absent). Requires a system-scoped view; O(nodes log n).
  std::map<int, std::size_t> failures_per_node() const;

  /// Repair times (end - start) in minutes over the view's records — one
  /// fused pass over the start/end columns.
  std::vector<double> repair_times_minutes() const;

  /// Sum of downtime over the view's records, in minutes.
  double total_downtime_minutes() const noexcept;

  /// Deep copy of the view into a standalone dataset (the bridge to the
  /// pre-view copying API; records are already sorted and validated).
  FailureDataset materialize() const;

 private:
  friend class DatasetIndex;

  const DatasetIndex* index_ = nullptr;
  std::optional<int> system_;
  Seconds from_ = 0;  ///< window, meaningful only when windowed_
  Seconds to_ = 0;
  bool windowed_ = false;
  ColumnsView view_;
};

/// The immutable acceleration structure behind DatasetView. Built from
/// (start, system, node)-sorted columns — exactly the order
/// FailureDataset maintains — normally through FailureDataset::view()
/// rather than directly.
class DatasetIndex {
 public:
  /// Builds the partition and posting lists; parallelizes over systems on
  /// the shared pool. The index holds views into `columns`, so the caller
  /// owns keeping that storage valid for the index's lifetime.
  /// FailureDataset provides this not by pinning its columns in place but
  /// by serializing moves against index()/view() on index_mutex_ and
  /// dropping the moved-from dataset's index (the destination rebuilds
  /// lazily on next access) — so moving a FailureDataset with a built
  /// index is safe; it just costs one rebuild. Direct constructors of
  /// DatasetIndex must provide the same guarantee themselves.
  explicit DatasetIndex(const ColumnStore& columns);

  /// The root view: every record.
  DatasetView all() const noexcept;

  /// Distinct system ids, ascending. O(systems).
  std::vector<int> system_ids() const;

  std::size_t record_count() const noexcept { return base_.size(); }

 private:
  friend class DatasetView;

  /// Posting list of one (system, node): starts_[begin, end) are the
  /// node's failure start times, ascending.
  struct NodeSlice {
    int node_id = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// One system's contiguous slice of the partition, plus its node range.
  struct SystemSlice {
    int system_id = 0;
    std::size_t begin = 0;        ///< into by_system_
    std::size_t end = 0;
    std::size_t nodes_begin = 0;  ///< into node_slices_
    std::size_t nodes_end = 0;
  };

  const SystemSlice* find_system(int system_id) const noexcept;
  void count_view_hit() const noexcept;

  ColumnsView base_;                    ///< globally start-sorted
  ColumnStore by_system_;               ///< partitioned by system
  std::vector<SystemSlice> systems_;    ///< ascending system id
  std::vector<NodeSlice> node_slices_;  ///< grouped by system
  std::vector<Seconds> node_starts_;    ///< the posting-list storage
  /// Resolved on first counted hit (not at build time, so enabling obs
  /// after a lazy index build still records hits); atomic because
  /// concurrent const queries may race the resolution.
  mutable std::atomic<obs::Counter*> view_hits_{nullptr};
};

}  // namespace hpcfail::trace
